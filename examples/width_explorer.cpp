// Width explorer: compute every width of a chosen query class at a chosen
// MM exponent — the "what does the theory promise for my query?" tool.
//
//   $ ./build/examples/width_explorer triangle 2371552/1000000
//   $ ./build/examples/width_explorer clique4 5/2
//   $ ./build/examples/width_explorer cycle4 2
//
// Classes: triangle, clique4, clique5, cycle4, cycle5, cycle6, pyramid3,
//          pyramid4, double-triangle, lemma-c15.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/api.h"
#include "entropy/witnesses.h"

int main(int argc, char** argv) {
  using namespace fmmsw;
  const std::string cls = argc > 1 ? argv[1] : "triangle";
  const Rational omega =
      argc > 2 ? Rational::Parse(argv[2]) : Rational(2371552, 1000000);

  Hypergraph h = Hypergraph::Triangle();
  OmegaSubwOptions opts;
  if (cls == "triangle") {
    h = Hypergraph::Triangle();
  } else if (cls == "clique4") {
    h = Hypergraph::Clique(4);
  } else if (cls == "clique5") {
    h = Hypergraph::Clique(5);
  } else if (cls == "cycle4") {
    h = Hypergraph::Cycle(4);
    opts.witnesses.push_back(FourCycleWitnessHigh());
    if (omega <= Rational(5, 2)) {
      opts.witnesses.push_back(FourCycleWitnessLow(omega));
    }
  } else if (cls == "cycle5") {
    h = Hypergraph::Cycle(5);
  } else if (cls == "cycle6") {
    h = Hypergraph::Cycle(6);
  } else if (cls == "pyramid3") {
    h = Hypergraph::Pyramid(3);
  } else if (cls == "pyramid4") {
    h = Hypergraph::Pyramid(4);
  } else if (cls == "double-triangle") {
    h = Hypergraph::DoubleTriangle();
  } else if (cls == "lemma-c15") {
    h = Hypergraph::LemmaC15();
  } else {
    std::fprintf(stderr, "unknown query class '%s'\n", cls.c_str());
    return 2;
  }

  WidthReport report = ComputeWidths(h, omega, opts);
  std::printf("%s", FormatWidthReport(h, omega, report).c_str());
  std::printf("clustered  : %s\n", h.IsClustered() ? "yes (exact w-subw)"
                                                   : "no (certified bounds)");
  std::printf("MM terms   : %d\n", report.num_mm_terms);
  std::printf("LPs solved : %ld\n", report.lps_solved);
  return 0;
}
