// Domain example: triangle counting in a skewed "who-follows-whom" social
// graph — the workload the paper's introduction motivates. Power-law
// degree distributions create exactly the heavy/light split that the
// Figure-1 algorithm exploits: celebrity accounts (heavy) go through the
// matrix product, the long tail (light) through cheap joins.
//
//   $ ./build/examples/social_triangles [num_edges]

#include <cstdio>
#include <cstdlib>

#include "core/exec_context.h"
#include "engine/triangle.h"
#include "engine/wcoj.h"
#include "relation/degree.h"
#include "relation/generators.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace fmmsw;
  const int64_t edges = argc > 1 ? std::atoll(argv[1]) : 50000;
  const double omega = 2.371552;
  ExecContext ctx;  // pool + arenas + stats for every call below

  // One Zipf edge relation, used tripartitely (R, S, T are copies over
  // different variable pairs — the standard encoding of graph triangle
  // counting as the Q_triangle join).
  Rng rng(2026);
  Relation graph_r = ZipfRelation(VarSet{0, 1}, edges, edges / 8, 1.3, &rng);
  Relation graph_s(VarSet{1, 2});
  Relation graph_t(VarSet{0, 2});
  for (size_t i = 0; i < graph_r.size(); ++i) {
    graph_s.Add({graph_r.Row(i)[0], graph_r.Row(i)[1]});
    graph_t.Add({graph_r.Row(i)[0], graph_r.Row(i)[1]});
  }
  graph_s.SortAndDedupe();
  graph_t.SortAndDedupe();
  QueryInput db;
  db.relations = {graph_r, graph_s, graph_t};
  std::printf("social graph: %zu follow edges (Zipf 1.3)\n", graph_r.size());
  std::printf("max out-degree deg(Y|X) = %lld\n",
              static_cast<long long>(Degree(graph_r, VarSet{1}, VarSet{0})));

  Stopwatch sw;
  const bool any = TriangleMm(db, omega, MmKernel::kBoolean, nullptr, &ctx);
  const double mm_s = sw.Seconds();
  // Counters accumulate across runs on one context; snapshot before the
  // stats run so the printed probe count covers that run alone.
  const int64_t probed_before = ctx.stats().fused_probe_tuples.load();
  TriangleStats stats;
  TriangleMm(db, omega, MmKernel::kBoolean, &stats, &ctx);
  std::printf("\nMM hybrid: triangle %s in %.4f s\n",
              any ? "found" : "absent", mm_s);
  std::printf("  heavy accounts: |Xh|=%lld |Yh|=%lld |Zh|=%lld\n",
              static_cast<long long>(stats.heavy_x),
              static_cast<long long>(stats.heavy_y),
              static_cast<long long>(stats.heavy_z));
  std::printf("  light-path candidates probed (not materialized): %lld\n",
              static_cast<long long>(ctx.stats().fused_probe_tuples.load() -
                                     probed_before));

  sw.Reset();
  const bool base = TriangleCombinatorial(db, &ctx);
  std::printf("combinatorial WCOJ: %s in %.4f s\n",
              base ? "found" : "absent", sw.Seconds());

  sw.Reset();
  const int64_t count = TriangleCountMm(db, MmKernel::kStrassen, &ctx);
  std::printf("exact triangle count (counting MM): %lld in %.4f s\n",
              static_cast<long long>(count), sw.Seconds());
  return any == base ? 0 : 1;
}
