// Quickstart: define a Boolean conjunctive query, compute all of its
// widths (rho*, fhtw, subw, w-subw), and evaluate it with both the
// combinatorial engine and the paper's MM-hybrid triangle algorithm.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/api.h"
#include "engine/triangle.h"
#include "relation/generators.h"

int main() {
  using namespace fmmsw;

  // 1. The triangle query Q() :- R(X,Y), S(Y,Z), T(X,Z)   (paper Eq. 2).
  Hypergraph q = Hypergraph::Triangle();
  std::printf("Query: %s\n\n", q.ToString().c_str());

  // 2. Widths at the current best MM exponent w = 2.371552.
  const Rational omega(2371552, 1000000);
  WidthReport report = ComputeWidths(q, omega);
  std::printf("%s\n", FormatWidthReport(q, omega, report).c_str());

  // 3. An execution context: thread pool (FMMSW_THREADS), reusable
  //    scratch arenas, and per-op stats shared by everything below.
  ExecContext ctx;

  // A skewed instance with a planted triangle.
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = 5000;
  opts.domain = 1200;
  opts.plant_witness = true;
  QueryInput db = MakeWorkload(q, opts);
  std::printf("instance: N = %zu tuples\n", db.TotalSize());

  // 4. Evaluate: generic worst-case-optimal join vs the Figure-1
  //    MM-hybrid algorithm (they must agree). Both run on the context.
  const bool combinatorial =
      EvaluateBoolean(q, db, EvalStrategy::kWcoj, &ctx);
  const bool mm_hybrid =
      TriangleMm(db, omega.ToDouble(), MmKernel::kBoolean, nullptr, &ctx);
  std::printf("combinatorial WCOJ answer : %s\n",
              combinatorial ? "true" : "false");
  std::printf("Figure-1 MM hybrid answer : %s\n",
              mm_hybrid ? "true" : "false");

  // 5. The context's per-op trace of everything that just ran.
  std::printf("\nexecution stats:\n%s", ctx.stats().ToString().c_str());
  return combinatorial == mm_hybrid ? 0 : 1;
}
