// Domain example: 4-cycle detection across a star-schema-ish pipeline —
// "customers who bought a product also reviewed by a customer in the same
// city" style chains close into 4-cycles. Compares the three plans the
// paper discusses for Q_square: the single tree decomposition (N^2), the
// degree-partitioned combinatorial plan (N^{3/2}, the submodular-width
// story of Section 1.1.1), and the MM hybrid.
//
//   $ ./build/examples/cycle_analytics [tuples_per_relation]

#include <cstdio>
#include <cstdlib>

#include "core/exec_context.h"
#include "engine/four_cycle.h"
#include "relation/generators.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace fmmsw;
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;

  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = n;
  opts.domain = n / 4;
  opts.zipf_alpha = 1.3;
  opts.seed = 99;
  Hypergraph q = Hypergraph::Cycle(4);
  QueryInput db = MakeWorkload(q, opts);
  std::printf("4-cycle query %s\n", q.ToString().c_str());
  std::printf("instance: N = %zu tuples (Zipf)\n\n", db.TotalSize());
  ExecContext ctx;

  Stopwatch sw;
  const bool a = FourCycleTd(db, &ctx);
  std::printf("%-34s %-6s %.4f s\n", "single TD (fhtw plan, N^2):",
              a ? "true" : "false", sw.Seconds());

  sw.Reset();
  FourCycleStats cstats;
  const bool b = FourCycleCombinatorial(db, &cstats, &ctx);
  std::printf("%-34s %-6s %.4f s  (heavy probes %lld, light pairs %lld)\n",
              "degree-partitioned (subw, N^1.5):", b ? "true" : "false",
              sw.Seconds(), static_cast<long long>(cstats.heavy_probes),
              static_cast<long long>(cstats.light_pairs));

  sw.Reset();
  FourCycleStats mstats;
  const bool c = FourCycleMm(db, 2.371552, MmKernel::kBoolean, &mstats,
                             &ctx);
  std::printf("%-34s %-6s %.4f s  (mm dims %lldx%lldx%lld)\n",
              "MM hybrid (w-subw):", c ? "true" : "false", sw.Seconds(),
              static_cast<long long>(mstats.mm_dims[0]),
              static_cast<long long>(mstats.mm_dims[1]),
              static_cast<long long>(mstats.mm_dims[2]));

  std::printf("\nexecution stats:\n%s", ctx.stats().ToString().c_str());
  return (a == b && b == c) ? 0 : 1;
}
