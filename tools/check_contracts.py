#!/usr/bin/env python3
"""In-tree contract linter: machine-enforces the repo's written invariants.

The codebase carries a set of contracts that used to live only in doc
comments and PR descriptions. This linter turns them into build failures
(it runs as the `check_contracts` ctest target and as a CI step):

  stats-coverage      Every counter declared in `struct ExecStats`
                      (core/exec_context.h) must carry a doc comment and
                      appear in both ExecStats::Reset() and
                      ExecStats::ToString() (core/exec_context.cc).
                      Forgetting one silently breaks stat resets between
                      queries and hides the counter from traces/benches.

  ctx-threading       Every namespace-scope entry point declared in
                      src/relation/ops.h and src/engine/*.h must thread
                      an ExecContext (pointer or reference) so stats,
                      arenas and guardrails reach every operator.

  no-comparator-sort  std::sort / std::stable_sort are banned in the
                      data-plane hot paths (src/relation, src/engine,
                      src/mm, src/util/radix.*): PRs 1-5 migrated them to
                      the comparator-free wide-key radix layer. The radix
                      fallbacks themselves and schema-sized sorts carry
                      explicit allow markers.

  no-node-map         std::map / std::unordered_map / unordered_multimap
                      are banned in the same hot paths: PRs 1-3 replaced
                      them with flat open-addressing indexes
                      (relation/flat_index.h). Plan-level structures
                      keyed by schema carry allow markers.

  relaxed-justified   Every `memory_order_relaxed` in src/ must have an
                      adjacent `// relaxed:` comment stating the
                      invariant that makes relaxed safe (stats-only sum,
                      work-claim RMW, one-way latch, published by the
                      pool fan-in, ...). A site nobody can justify must
                      be upgraded, not waved through.

  tsa-escape          Every FMMSW_NO_THREAD_SAFETY_ANALYSIS use must have
                      an adjacent comment explaining the unchecked
                      invariant.

  no-nondeterminism   rand()/srand()/std::random_device/time()/clock()
                      are banned in src/: results must be bit-identical
                      across runs and thread counts. Seeded mt19937
                      (util/random.h) and the steady clock (timing stats)
                      are the sanctioned tools.

  queryabort-status   Every `throw QueryAbort(...)` in src/ must name an
                      ExecStatus (so core/recovery.h can classify it as
                      retryable or terminal) and carry a human-readable
                      message with at least one string literal. A bare or
                      status-less abort is unroutable by the recovery
                      plane and undiagnosable in logs.

  no-catalog-mutation Registered relation versions are immutable: the
                      catalog (core/database.h) publishes them as
                      shared_ptr<const Relation>, and snapshot isolation
                      holds only if nobody casts the const away. Hence
                      `const_cast<Relation` and `const_pointer_cast` are
                      banned in src/ outside core/database.cc (which is
                      itself clean today; the carve-out exists so a
                      future in-place compaction under the catalog lock
                      lands in the one file the reviewers watch). Code
                      that needs a mutable copy takes one:
                      RelationList::Materialize() or Relation's copy
                      constructor.

  fault-site-coverage Every site tag registered in kFaultSiteNames
                      (core/exec_context.cc) must appear at >= 1
                      Poll(FaultSite::...) / ParallelFor(..., FaultSite::...)
                      call site outside core/exec_context.*. A registered
                      tag nobody polls makes FMMSW_FAULT_PLAN silently
                      inert for that plane — the CI soak would test
                      nothing.

Allow marker: a site that legitimately violates a rule carries, on the
same line or the line directly above,

    // contracts: allow(<rule-id>) <reason>

The reason is mandatory; an empty reason is itself a violation. Run with
--self-test to execute the linter's own injected-violation tests.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Shared helpers


ALLOW_RE = re.compile(r"//\s*contracts:\s*allow\(([a-z0-9-]+)\)\s*(.*)")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based, 0 = whole file
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.rule}] {self.message}"


def allow_markers(lines):
    """Maps 1-based line number -> set of rule ids allowed at that line.

    A marker covers its own line and — skipping over the comment lines
    its reason wraps onto — the first code line below it, so it can sit
    at the top of a multi-line explanatory comment above the flagged
    statement. A marker with an empty reason covers nothing — the reason
    is the point.
    """
    allowed = {}
    bad = []
    for i, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if not reason:
            bad.append(i)
            continue
        j = i + 1
        while j <= len(lines) and lines[j - 1].strip().startswith("//"):
            j += 1
        for covered in range(i, j + 1):
            allowed.setdefault(covered, set()).add(rule)
    return allowed, bad


def strip_line_comment(line):
    """Drops a trailing // comment (naive: fine for this codebase, which
    does not put // inside string literals on banned-token lines)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def strip_block_comments(text):
    """Replaces /* ... */ spans with spaces, preserving line structure."""
    out = []
    i = 0
    while i < len(text):
        j = text.find("/*", i)
        if j < 0:
            out.append(text[i:])
            break
        out.append(text[i:j])
        k = text.find("*/", j + 2)
        if k < 0:
            k = len(text) - 2
        out.append("".join(c if c == "\n" else " " for c in text[j:k + 2]))
        i = k + 2
    return "".join(out)


# --------------------------------------------------------------------------
# Rule: stats-coverage


FIELD_RE = re.compile(r"std::atomic<int64_t>\s+(\w+)\s*\{")


def stats_counter_fields(header_text):
    """Names of the counters declared in struct ExecStats, with their
    1-based line numbers and whether the declaration line carries an
    inline ///< doc."""
    m = re.search(r"struct\s+ExecStats\s*\{(.*?)\n\};", header_text, re.S)
    if not m:
        return None
    body = m.group(1)
    offset = header_text[:m.start(1)].count("\n") + 1
    fields = []
    for i, line in enumerate(body.split("\n")):
        fm = FIELD_RE.search(line)
        if fm:
            fields.append((fm.group(1), offset + i, "///<" in line))
    return fields


def check_stats_coverage(header_text, impl_text, header_path, impl_path):
    violations = []
    fields = stats_counter_fields(header_text)
    if fields is None:
        return [Violation("stats-coverage", header_path, 0,
                          "struct ExecStats not found")]

    def body_of(name):
        m = re.search(r"ExecStats::" + name + r"\s*\(\)[^{]*\{(.*?)\n\}",
                      impl_text, re.S)
        return m.group(1) if m else None

    reset = body_of("Reset")
    tostr = body_of("ToString")
    if reset is None or tostr is None:
        return [Violation("stats-coverage", impl_path, 0,
                          "ExecStats::Reset()/ToString() not found")]
    for name, line, documented in fields:
        if not documented:
            violations.append(Violation(
                "stats-coverage", header_path, line,
                f"ExecStats counter '{name}' has no ///< doc comment"))
        if not re.search(r"\b" + name + r"\b", reset):
            violations.append(Violation(
                "stats-coverage", impl_path, 0,
                f"ExecStats counter '{name}' missing from Reset()"))
        if not re.search(r"\b" + name + r"\b", tostr):
            violations.append(Violation(
                "stats-coverage", impl_path, 0,
                f"ExecStats counter '{name}' missing from ToString()"))
    return violations


# --------------------------------------------------------------------------
# Rule: ctx-threading


# Declarations that legitimately take no ExecContext: pure metadata or
# plan-shaping helpers with no execution side.
CTX_EXEMPT = {
    "StatusString",          # enum -> string, no execution
    "ForLoopPlan",           # pure plan construction from the hypergraph
    "TriangleCountLadder",   # strategy capability metadata, no execution
    "TriangleBooleanLadder", # strategy capability metadata, no execution
    "GenericBooleanLadder",  # strategy capability metadata, no execution
    "IsTriangleQuery",       # pure shape predicate on the hypergraph
}

DECL_NAME_RE = re.compile(r"(\w+)\s*\($")


def namespace_scope_decls(text):
    """Yields (name, params, line) for ;-terminated function declarations
    at namespace scope (brace depth 1) in a header."""
    text = strip_block_comments(text)
    lines = text.split("\n")
    depth = 0
    stmt = []
    stmt_line = 1
    for ln, raw in enumerate(lines, start=1):
        line = strip_line_comment(raw)
        for ch in line:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
        if not line.strip():
            continue
        if line.lstrip().startswith("#"):
            continue
        if not stmt:
            stmt_line = ln
        stmt.append(line.strip())
        joined = " ".join(stmt)
        if joined.endswith(";"):
            stmt = []
            # depth at statement end; member decls sit deeper than 1.
            if depth != 1:
                continue
            if "(" not in joined or ")" not in joined:
                continue
            head, params = joined.split("(", 1)
            if re.search(r"\b(struct|class|enum|using|typedef|namespace|"
                         r"return|if|while|for)\b", head):
                continue
            if "=" in head:  # variable with initializer
                continue
            name_m = re.search(r"(\w+)\s*$", head)
            if not name_m:
                continue
            yield name_m.group(1), params, stmt_line


def check_ctx_threading(text, path):
    violations = []
    for name, params, line in namespace_scope_decls(text):
        if name in CTX_EXEMPT:
            continue
        if "ExecContext" not in params:
            violations.append(Violation(
                "ctx-threading", path, line,
                f"entry point '{name}' does not thread an ExecContext*"))
    return violations


# --------------------------------------------------------------------------
# Rules: banned tokens (comparator sorts, node maps, nondeterminism)


BANNED = {
    "no-comparator-sort": re.compile(r"std::(?:stable_)?sort\s*\("),
    "no-node-map": re.compile(
        r"std::(?:unordered_map|unordered_multimap|map)\s*<"),
}

NONDET = re.compile(
    r"(?<![\w:])(?:rand|srand|time|clock)\s*\(|std::random_device")


def check_banned_tokens(text, path, rules):
    violations = []
    lines = strip_block_comments(text).split("\n")
    allowed, bad_markers = allow_markers(lines)
    for i in bad_markers:
        violations.append(Violation(
            "allow-marker", path, i,
            "contracts: allow(...) marker with an empty reason"))
    for i, raw in enumerate(lines, start=1):
        code = strip_line_comment(raw)
        for rule, pat in rules.items():
            if pat.search(code) and rule not in allowed.get(i, ()):
                violations.append(Violation(
                    rule, path, i,
                    f"banned construct {pat.pattern!r} in a data-plane "
                    "hot path (see tools/check_contracts.py; add a "
                    "'// contracts: allow' marker only with a reason)"))
    return violations


def check_nondeterminism(text, path):
    violations = []
    lines = strip_block_comments(text).split("\n")
    allowed, _ = allow_markers(lines)
    for i, raw in enumerate(lines, start=1):
        code = strip_line_comment(raw)
        m = NONDET.search(code)
        if m and "no-nondeterminism" not in allowed.get(i, ()):
            violations.append(Violation(
                "no-nondeterminism", path, i,
                f"nondeterminism source {m.group(0)!r} in src/ "
                "(results must be bit-identical across runs)"))
    return violations


# --------------------------------------------------------------------------
# Rule: no-catalog-mutation


CATALOG_MUTATION_RE = re.compile(
    r"const_cast\s*<\s*Relation\b|std::const_pointer_cast\s*<")


def check_catalog_mutation(text, path):
    """Casting the const off a Relation (or any shared_ptr pointee) breaks
    the immutable-version contract the snapshot plane rests on; only
    core/database.cc may ever hold such a cast, under the catalog lock."""
    violations = []
    lines = strip_block_comments(text).split("\n")
    allowed, _ = allow_markers(lines)
    for i, raw in enumerate(lines, start=1):
        code = strip_line_comment(raw)
        m = CATALOG_MUTATION_RE.search(code)
        if m and "no-catalog-mutation" not in allowed.get(i, ()):
            violations.append(Violation(
                "no-catalog-mutation", path, i,
                f"{m.group(0).strip()!r} mutates a published relation "
                "version; registered versions are immutable (copy via "
                "RelationList::Materialize() instead, or move the code "
                "into core/database.cc under the catalog lock)"))
    return violations


# --------------------------------------------------------------------------
# Rule: queryabort-status


THROW_ABORT_RE = re.compile(r"\bthrow\s+QueryAbort\s*\(")


def check_queryabort_status(text, path):
    """Every throw QueryAbort(...) names an ExecStatus and carries a
    string-literal message. Throw statements wrap; join lines up to the
    terminating ';' before checking."""
    violations = []
    lines = strip_block_comments(text).split("\n")
    allowed, _ = allow_markers(lines)
    i = 0
    while i < len(lines):
        code = strip_line_comment(lines[i])
        m = THROW_ABORT_RE.search(code)
        if not m or "queryabort-status" in allowed.get(i + 1, ()):
            i += 1
            continue
        stmt = code[m.start():]
        j = i
        while ";" not in stmt and j + 1 < len(lines):
            j += 1
            stmt += " " + strip_line_comment(lines[j])
        stmt = stmt.split(";", 1)[0]
        if "ExecStatus::k" not in stmt:
            violations.append(Violation(
                "queryabort-status", path, i + 1,
                "throw QueryAbort(...) without an ExecStatus::k* status "
                "(the recovery plane cannot classify it)"))
        if '"' not in stmt:
            violations.append(Violation(
                "queryabort-status", path, i + 1,
                "throw QueryAbort(...) without a string-literal message"))
        i = j + 1
    return violations


# --------------------------------------------------------------------------
# Rule: fault-site-coverage


SITE_TABLE_RE = re.compile(
    r"kFaultSiteNames\s*\[[^\]]*\]\s*=\s*\{(.*?)\}", re.S)
SITE_USE_RE = re.compile(r"FaultSite::k(\w+)")


def registered_fault_sites(impl_text):
    """Site tags from the kFaultSiteNames table in exec_context.cc, in
    order; None if the table is missing."""
    m = SITE_TABLE_RE.search(strip_block_comments(impl_text))
    if not m:
        return None
    return re.findall(r'"([a-z0-9]+)"', m.group(1))


def check_fault_site_coverage(impl_text, uses_text, impl_path):
    """`uses_text` is the concatenation of every src/ file outside
    core/exec_context.* — each registered tag must be polled somewhere
    out there, or the fault plan for that plane tests nothing."""
    sites = registered_fault_sites(impl_text)
    if sites is None:
        return [Violation("fault-site-coverage", impl_path, 0,
                          "kFaultSiteNames table not found")]
    used = {u.lower() for u in SITE_USE_RE.findall(uses_text)}
    violations = []
    for tag in sites:
        if tag not in used:
            violations.append(Violation(
                "fault-site-coverage", impl_path, 0,
                f"fault site '{tag}' is registered but never polled "
                "(no Poll(FaultSite::...) / site-tagged ParallelFor "
                "outside core/exec_context.*)"))
    return violations


# --------------------------------------------------------------------------
# Rule: relaxed-justified


RELAXED_WINDOW = 12  # lines above that may hold the // relaxed: comment


def check_relaxed_justified(text, path):
    violations = []
    lines = text.split("\n")
    for i, line in enumerate(lines, start=1):
        if "memory_order_relaxed" not in line:
            continue
        window = lines[max(0, i - 1 - RELAXED_WINDOW):i]
        if not any("relaxed:" in w for w in window):
            violations.append(Violation(
                "relaxed-justified", path, i,
                "memory_order_relaxed without an adjacent '// relaxed:' "
                "comment stating the invariant that makes relaxed safe"))
    return violations


def check_tsa_escape(text, path):
    violations = []
    lines = text.split("\n")
    for i, line in enumerate(lines, start=1):
        if "FMMSW_NO_THREAD_SAFETY_ANALYSIS" not in line:
            continue
        if "#define" in line or "define FMMSW" in line:
            continue
        window = lines[max(0, i - 1 - RELAXED_WINDOW):i]
        if not any("//" in w for w in window):
            violations.append(Violation(
                "tsa-escape", path, i,
                "FMMSW_NO_THREAD_SAFETY_ANALYSIS without an adjacent "
                "comment stating the unchecked invariant"))
    return violations


# --------------------------------------------------------------------------
# Repo walk


HOT_PATH_DIRS = ("src/relation", "src/engine", "src/mm")
HOT_PATH_FILES = ("src/util/radix.h", "src/util/radix.cc")


def is_hot_path(rel):
    rel = rel.replace(os.sep, "/")
    return rel.startswith(HOT_PATH_DIRS) or rel in HOT_PATH_FILES


def lint_repo(repo):
    violations = []
    src = os.path.join(repo, "src")
    header = os.path.join(src, "core", "exec_context.h")
    impl = os.path.join(src, "core", "exec_context.cc")
    with open(header) as f:
        header_text = f.read()
    with open(impl) as f:
        impl_text = f.read()
    violations += check_stats_coverage(
        header_text, impl_text, "src/core/exec_context.h",
        "src/core/exec_context.cc")

    site_uses = []
    for root, _, files in os.walk(src):
        for fname in sorted(files):
            if not fname.endswith((".h", ".cc")):
                continue
            path = os.path.join(root, fname)
            rel = os.path.relpath(path, repo)
            with open(path) as f:
                text = f.read()
            violations += check_relaxed_justified(text, rel)
            violations += check_tsa_escape(text, rel)
            violations += check_nondeterminism(text, rel)
            violations += check_queryabort_status(text, rel)
            if rel.replace(os.sep, "/") != "src/core/database.cc":
                violations += check_catalog_mutation(text, rel)
            if rel.replace(os.sep, "/") not in (
                    "src/core/exec_context.h", "src/core/exec_context.cc"):
                site_uses.append(text)
            if is_hot_path(rel):
                violations += check_banned_tokens(text, rel, BANNED)
    violations += check_fault_site_coverage(
        impl_text, "\n".join(site_uses), "src/core/exec_context.cc")

    for rel in ["src/relation/ops.h"] + sorted(
            "src/engine/" + f for f in os.listdir(os.path.join(src, "engine"))
            if f.endswith(".h")):
        with open(os.path.join(repo, rel)) as f:
            violations += check_ctx_threading(f.read(), rel)
    return violations


# --------------------------------------------------------------------------
# Self-test: feed each rule a known-violating and a known-clean snippet
# and assert it fires exactly on the former.


def self_test():
    failures = []

    def expect(label, violations, rule, count):
        got = [v for v in violations if v.rule == rule]
        if len(got) != count:
            failures.append(
                f"{label}: expected {count} x {rule}, got "
                f"{[str(v) for v in violations]}")

    # stats-coverage: counter missing from Reset(), undocumented counter.
    header = """
struct ExecStats {
  std::atomic<int64_t> good_calls{0};   ///< documented
  std::atomic<int64_t> bad_calls{0};
};
"""
    impl = """
void ExecStats::Reset() {
  good_calls = 0;
}

std::string ExecStats::ToString() const {
  row("good_calls", good_calls);
  return out;
}
"""
    v = check_stats_coverage(header, impl, "h", "cc")
    # bad_calls: undocumented + missing from Reset + missing from ToString.
    expect("stats", v, "stats-coverage", 3)
    clean_impl = impl.replace("good_calls = 0;",
                              "good_calls = 0;\n  bad_calls = 0;").replace(
        'row("good_calls", good_calls);',
        'row("good_calls", good_calls);\n  row("bad_calls", bad_calls);')
    v = check_stats_coverage(header.replace(
        "bad_calls{0};", "bad_calls{0};  ///< now documented"),
        clean_impl, "h", "cc")
    expect("stats-clean", v, "stats-coverage", 0)

    # ctx-threading: entry point without ExecContext fires; with, doesn't;
    # struct members don't.
    hdr = """
namespace fmmsw {
struct Opts {
  bool flag = false;
  int Helper(int x);
};
Relation Naked(const Relation& a, const Relation& b);
Relation Threaded(const Relation& a, ExecContext* ctx = nullptr);
}  // namespace fmmsw
"""
    v = check_ctx_threading(hdr, "hdr")
    expect("ctx", v, "ctx-threading", 1)

    # no-node-map / no-comparator-sort: bare use fires; comment mention
    # and allow-marked use don't; empty-reason marker fires.
    src = """
std::map<int, int> hot;             // banned
// std::unordered_map in a comment is fine
// contracts: allow(no-node-map) schema-keyed plan structure, O(edges)
std::map<VarSet, Relation> pool;
std::sort(v.begin(), v.end());
std::stable_sort(w.begin(), w.end());  // contracts: allow(no-comparator-sort) radix fallback below kRadixMinN
// contracts: allow(no-node-map)
std::map<int, int> empty_reason;
// contracts: allow(no-node-map) a reason that wraps onto a
// second comment line before the statement it covers
std::map<int, int> wrapped_ok;
"""
    v = check_banned_tokens(src, "src", BANNED)
    expect("map", v, "no-node-map", 2)  # hot + empty_reason line
    expect("sort", v, "no-comparator-sort", 1)
    expect("marker", v, "allow-marker", 1)

    # relaxed-justified: unjustified relaxed fires, justified doesn't.
    src = """
x.fetch_add(1, std::memory_order_relaxed);
// relaxed: stats-only sum read after the fan-in.
y.fetch_add(1, std::memory_order_relaxed);
"""
    v = check_relaxed_justified(src, "src")
    expect("relaxed", v, "relaxed-justified", 1)

    # tsa-escape: bare escape fires, commented doesn't, #define doesn't.
    src = """
#define FMMSW_NO_THREAD_SAFETY_ANALYSIS x
void Bare() FMMSW_NO_THREAD_SAFETY_ANALYSIS;
// invariant: hook_ only written while no query runs.
void Documented() FMMSW_NO_THREAD_SAFETY_ANALYSIS;
"""
    v = check_tsa_escape(src, "src")
    expect("tsa", v, "tsa-escape", 1)

    # no-nondeterminism: rand()/time() fire; mt19937 seeded and
    # steady_clock don't; Rand-like identifiers don't.
    src = """
int a = rand();
std::srand(time(nullptr));
std::mt19937_64 gen(seed);
auto t = std::chrono::steady_clock::now();
int b = MyRand();
uint64_t c = SplitMixRandom(x);
"""
    v = check_nondeterminism(src, "src")
    # rand() + srand( + time( -> note srand/time share one line: both
    # patterns are alternatives of one regex, first match per line wins.
    expect("nondet", v, "no-nondeterminism", 2)

    # queryabort-status: status-less and message-less throws fire (also
    # across wrapped lines); a conforming throw and a comment mention
    # don't; an allow-marked site doesn't.
    src = """
throw QueryAbort(ExecStatus::kCancelled, "query cancelled");
throw QueryAbort(ExecStatus::kMemoryLimitExceeded,
                 "memory budget exceeded: " + std::to_string(now) +
                     " bytes");
throw QueryAbort("no status here");
throw QueryAbort(ExecStatus::kCancelled,
                 status_only_variable_message);
// a doc comment may say `throw QueryAbort` without firing
// contracts: allow(queryabort-status) rethrow helper, status attached upstream
throw QueryAbort(wrapped);
"""
    v = check_queryabort_status(src, "src")
    # "no status here": missing status; variable-message throw: missing
    # string literal.
    expect("abort", v, "queryabort-status", 2)

    # no-catalog-mutation: const_cast<Relation and const_pointer_cast
    # fire; a const_cast to another type, a comment mention, and an
    # allow-marked site don't.
    src = """
Relation& r = const_cast<Relation&>(snap.Find("R"));
auto p = std::const_pointer_cast<Relation>(versioned);
int& i = const_cast<int&>(ci);
// a doc comment may mention const_cast<Relation without firing
// contracts: allow(no-catalog-mutation) private pre-publication buffer
auto q = std::const_pointer_cast<Relation>(unpublished);
"""
    v = check_catalog_mutation(src, "src")
    expect("catalog", v, "no-catalog-mutation", 2)

    # fault-site-coverage: a registered-but-never-polled tag fires; the
    # polled tags (via Poll or site-tagged ParallelFor) don't; a missing
    # table is itself a violation.
    impl = """
const char* const kFaultSiteNames[kNumFaultSites] = {
    "wcoj", "sort", "mm",
};
"""
    uses = """
guard.Poll(FaultSite::kWcoj);
ParallelFor(ec, FaultSite::kSort, n, chunk);
"""
    v = check_fault_site_coverage(impl, uses, "cc")
    expect("site", v, "fault-site-coverage", 1)  # "mm" never polled
    v = check_fault_site_coverage(impl, uses + "g.Poll(FaultSite::kMm);",
                                  "cc")
    expect("site-clean", v, "fault-site-coverage", 0)
    v = check_fault_site_coverage("// no table", uses, "cc")
    expect("site-notable", v, "fault-site-coverage", 1)

    if failures:
        for f in failures:
            print("SELF-TEST FAIL:", f)
        return 1
    print("check_contracts.py self-test: all rules fire as expected")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true",
                    help="run the linter's injected-violation tests")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    violations = lint_repo(args.repo)
    for v in violations:
        print(v)
    if violations:
        print(f"\ncheck_contracts: {len(violations)} violation(s)")
        return 1
    print("check_contracts: all contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
