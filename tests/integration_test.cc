// Cross-module integration tests: the Section 4.1 multi-variable MM
// options executed end-to-end, width/engine consistency on the
// double-triangle query, and randomized plan-vs-plan equivalence sweeps.

#include "core/api.h"
#include "engine/elimination.h"
#include "engine/wcoj.h"
#include "entropy/witnesses.h"
#include "gtest/gtest.h"
#include "relation/generators.h"
#include "width/closed_forms.h"
#include "width/emm.h"
#include "width/omega_subw.h"
#include "width/subw.h"

namespace fmmsw {
namespace {

// --- Section 4.1, Option 2: eliminate Y treating (Z, Z') as one
// dimension: MM(X; ZZ'; Y) on the double-triangle query. The interpreter
// must join S(Y,Z) and S'(Y,Z') into one matrix side and produce the same
// Boolean answer as pure for-loops.
TEST(MultiVarMmTest, DoubleTriangleCombinedDimension) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    WorkloadOptions opts;
    opts.tuples_per_relation = 50;
    opts.domain = 8;
    opts.seed = seed + 1000;
    opts.plant_witness = seed % 2 == 0;
    Hypergraph h = Hypergraph::DoubleTriangle();
    QueryInput db = MakeWorkload(h, opts);

    EliminationPlan plan;
    PlanStep mm_step;
    mm_step.block = VarSet{1};  // Y
    mm_step.method = StepMethod::kMm;
    // x = {X}, y = {Z, Z'}: S and S' fuse into the (Y x ZZ') matrix.
    mm_step.mm = MmExpr{VarSet{0}, VarSet{2, 3}, VarSet{1}, VarSet::Empty()};
    plan.steps.push_back(mm_step);
    for (int v : {0, 2, 3}) {
      PlanStep s;
      s.block = VarSet::Singleton(v);
      s.method = StepMethod::kForLoop;
      plan.steps.push_back(s);
    }
    EliminationStats stats;
    EXPECT_EQ(ExecutePlan(h, db, plan, {}, &stats), WcojBoolean(h, db))
        << "seed=" << seed;
    EXPECT_EQ(stats.mm_steps, 1);
  }
}

// The alternative grouping MM(XZ; Z'; Y)... wait — Section 2.2 lists
// MM(XZ; Y; Z') as an option for eliminating *Y*; here we exercise the
// group-by variant MM(Z; Z'; Y | X) from the enumerated options instead.
TEST(MultiVarMmTest, DoubleTriangleGroupByOption) {
  Hypergraph h = Hypergraph::DoubleTriangle();
  auto options = EnumerateMmOptions(h, VarSet{1});
  // Find a group-by option (G = {X}).
  const MmExpr* pick = nullptr;
  for (const auto& o : options) {
    if (o.g == VarSet{0}) pick = &o;
  }
  ASSERT_NE(pick, nullptr) << "expected a G={X} option for eliminating Y";
  for (uint64_t seed = 0; seed < 6; ++seed) {
    WorkloadOptions opts;
    opts.tuples_per_relation = 40;
    opts.domain = 7;
    opts.seed = seed + 2000;
    QueryInput db = MakeWorkload(h, opts);
    EliminationPlan plan;
    PlanStep mm_step;
    mm_step.block = VarSet{1};
    mm_step.method = StepMethod::kMm;
    mm_step.mm = *pick;
    plan.steps.push_back(mm_step);
    for (int v : {0, 2, 3}) {
      PlanStep s;
      s.block = VarSet::Singleton(v);
      s.method = StepMethod::kForLoop;
      plan.steps.push_back(s);
    }
    EXPECT_EQ(ExecutePlan(h, db, plan), WcojBoolean(h, db))
        << "seed=" << seed;
  }
}

// Eliminating two variables at once by for-loops (a GVEO block of size 2)
// must agree with one-at-a-time elimination.
TEST(GveoBlockTest, BlockEliminationMatchesSingleton) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    WorkloadOptions opts;
    opts.tuples_per_relation = 40;
    opts.domain = 8;
    opts.seed = seed + 3000;
    Hypergraph h = Hypergraph::Cycle(4);
    QueryInput db = MakeWorkload(h, opts);
    EliminationPlan block_plan;
    PlanStep s1;
    s1.block = VarSet{1, 3};  // eliminate Y and W together
    s1.method = StepMethod::kForLoop;
    block_plan.steps.push_back(s1);
    PlanStep s2;
    s2.block = VarSet{0, 2};
    s2.method = StepMethod::kForLoop;
    block_plan.steps.push_back(s2);
    EXPECT_EQ(ExecutePlan(h, db, block_plan), WcojBoolean(h, db))
        << "seed=" << seed;
  }
}

// --- Width/engine consistency on the double-triangle: subw = 3/2 and the
// query is answerable by the TD plan with triangle bags.
TEST(DoubleTriangleTest, WidthsAndBounds) {
  Hypergraph h = Hypergraph::DoubleTriangle();
  const Rational omega(2371552, 1000000);
  OmegaSubwOptions opts;
  // The triangle witness extends: reuse the LP-found candidates only.
  auto r = OmegaSubw(h, omega, opts);
  // w-subw(double-triangle) <= subw = 3/2; and at least the triangle's
  // w-subw (the triangle embeds as a subquery on {X, Y, Z}).
  EXPECT_LE(r.lower, r.upper);
  EXPECT_LE(r.upper, Rational(2));
  EXPECT_GE(r.upper, closed_forms::OmegaSubwTriangle(omega));
}

// --- The GVEO cost of the paper's preferred triangle plan on the
// triangle witness equals the width (spot check of Definition 4.7 inner
// expression).
TEST(GveoCostTest, TriangleWitnessPlanCosts) {
  const Rational omega(5, 2);
  auto w = TriangleWitness(omega);
  Gveo g;
  g.blocks = {VarSet{1}, VarSet{0}, VarSet{2}};
  const Rational cost = GveoCostOn(Hypergraph::Triangle(), g, w, omega);
  EXPECT_EQ(cost, closed_forms::OmegaSubwTriangle(omega));
}

// --- Randomized equivalence sweep across all engines on all paper query
// classes (small instances, many seeds).
class AllEnginesTest : public ::testing::TestWithParam<int> {};

TEST_P(AllEnginesTest, EverythingAgreesWithBruteForce) {
  const int seed = GetParam();
  for (const Hypergraph& h :
       {Hypergraph::Triangle(), Hypergraph::Cycle(4), Hypergraph::Cycle(5),
        Hypergraph::Pyramid(3), Hypergraph::DoubleTriangle(),
        Hypergraph::Clique(4)}) {
    WorkloadOptions opts;
    opts.kind = seed % 3 == 0 ? WorkloadKind::kUniform
                : seed % 3 == 1 ? WorkloadKind::kZipf
                                : WorkloadKind::kDense;
    opts.tuples_per_relation = 35;
    opts.domain = opts.kind == WorkloadKind::kDense ? 6 : 9;
    opts.seed = static_cast<uint64_t>(seed) * 7919 + 13;
    opts.plant_witness = seed % 2 == 0;
    QueryInput db = MakeWorkload(h, opts);
    const bool expect = BruteForceBoolean(h, db);
    EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kWcoj), expect)
        << h.ToString() << " seed=" << seed;
    EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kBestTd), expect)
        << h.ToString() << " seed=" << seed;
    EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kElimination), expect)
        << h.ToString() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllEnginesTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace fmmsw
