// Engine correctness tests: every evaluation strategy (WCOJ, TD plans, the
// GVEO interpreter with and without MM steps, and the specialized
// triangle / 4-cycle / clique / pyramid algorithms) must agree with brute
// force on randomized instances across workload regimes.

#include "core/api.h"
#include "engine/clique.h"
#include "engine/elimination.h"
#include "engine/four_cycle.h"
#include "engine/pyramid.h"
#include "engine/td_eval.h"
#include "engine/triangle.h"
#include "engine/wcoj.h"
#include "gtest/gtest.h"
#include "relation/generators.h"
#include "relation/ops.h"

namespace fmmsw {
namespace {

Relation MakeRel(VarSet schema, std::vector<std::vector<Value>> rows) {
  Relation r(schema);
  for (const auto& row : rows) r.Add(row);
  return r;
}

QueryInput TriangleDb(std::vector<std::vector<Value>> r,
                    std::vector<std::vector<Value>> s,
                    std::vector<std::vector<Value>> t) {
  QueryInput db;
  db.relations.push_back(MakeRel(VarSet{0, 1}, std::move(r)));
  db.relations.push_back(MakeRel(VarSet{1, 2}, std::move(s)));
  db.relations.push_back(MakeRel(VarSet{0, 2}, std::move(t)));
  return db;
}

// ------------------------------------------------------------------ WCOJ --

TEST(WcojTest, TriangleHandChecked) {
  // Triangle (1, 10, 100) present.
  QueryInput db = TriangleDb({{1, 10}, {2, 20}}, {{10, 100}, {20, 300}},
                           {{1, 100}, {2, 200}});
  EXPECT_TRUE(WcojBoolean(Hypergraph::Triangle(), db));
  // Remove T(1,100): no triangle.
  db.relations.Set(2, MakeRel(VarSet{0, 2}, {{2, 200}}));
  EXPECT_FALSE(WcojBoolean(Hypergraph::Triangle(), db));
}

TEST(WcojTest, CountMatchesJoinSize) {
  Rng rng(21);
  WorkloadOptions opts;
  opts.tuples_per_relation = 60;
  opts.domain = 10;
  Hypergraph h = Hypergraph::Triangle();
  QueryInput db = MakeWorkload(h, opts);
  Relation full = WcojJoin(h, db, VarSet::Full(3));
  EXPECT_EQ(WcojCount(h, db), static_cast<int64_t>(full.size()));
}

TEST(WcojTest, AgreesWithBruteForceAcrossQueries) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    for (const Hypergraph& h :
         {Hypergraph::Triangle(), Hypergraph::Cycle(4),
          Hypergraph::Pyramid(3), Hypergraph::DoubleTriangle()}) {
      WorkloadOptions opts;
      opts.tuples_per_relation = 40;
      opts.domain = 8;
      opts.seed = seed;
      QueryInput db = MakeWorkload(h, opts);
      EXPECT_EQ(WcojBoolean(h, db), BruteForceBoolean(h, db))
          << h.ToString() << " seed=" << seed;
    }
  }
}

// --------------------------------------------------------------- TD eval --

TEST(TdEvalTest, AgreesWithWcoj) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    for (const Hypergraph& h :
         {Hypergraph::Triangle(), Hypergraph::Cycle(4), Hypergraph::Cycle(5),
          Hypergraph::DoubleTriangle()}) {
      WorkloadOptions opts;
      opts.tuples_per_relation = 50;
      opts.domain = 9;
      opts.seed = seed + 100;
      QueryInput db = MakeWorkload(h, opts);
      EXPECT_EQ(TdBooleanBest(h, db), WcojBoolean(h, db))
          << h.ToString() << " seed=" << seed;
    }
  }
}

TEST(TdEvalTest, PositiveOnPlantedWitness) {
  WorkloadOptions opts;
  opts.tuples_per_relation = 30;
  opts.domain = 500;
  opts.plant_witness = true;
  Hypergraph h = Hypergraph::Cycle(4);
  QueryInput db = MakeWorkload(h, opts);
  EXPECT_TRUE(TdBooleanBest(h, db));
}

// --------------------------------------------------- elimination interp. --

TEST(EliminationTest, ForLoopPlanMatchesWcoj) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    for (const Hypergraph& h :
         {Hypergraph::Triangle(), Hypergraph::Cycle(4),
          Hypergraph::Pyramid(3)}) {
      WorkloadOptions opts;
      opts.tuples_per_relation = 40;
      opts.domain = 8;
      opts.seed = seed + 7;
      QueryInput db = MakeWorkload(h, opts);
      EliminationPlan plan = ForLoopPlan(h);
      EXPECT_EQ(ExecutePlan(h, db, plan), WcojBoolean(h, db))
          << h.ToString() << " seed=" << seed;
    }
  }
}

TEST(EliminationTest, MmStepMatchesForLoopOnTriangle) {
  // Plan: eliminate Y by MM(X;Z;Y), then X, Z by for-loops.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    WorkloadOptions opts;
    opts.tuples_per_relation = 50;
    opts.domain = 9;
    opts.seed = seed + 31;
    Hypergraph h = Hypergraph::Triangle();
    QueryInput db = MakeWorkload(h, opts);
    EliminationPlan plan;
    PlanStep mm_step;
    mm_step.block = VarSet{1};
    mm_step.method = StepMethod::kMm;
    mm_step.mm = MmExpr{VarSet{0}, VarSet{2}, VarSet{1}, VarSet::Empty()};
    plan.steps.push_back(mm_step);
    PlanStep s2;
    s2.block = VarSet{0};
    s2.method = StepMethod::kForLoop;
    plan.steps.push_back(s2);
    PlanStep s3;
    s3.block = VarSet{2};
    s3.method = StepMethod::kForLoop;
    plan.steps.push_back(s3);
    EliminationStats stats;
    EXPECT_EQ(ExecutePlan(h, db, plan, {}, &stats), WcojBoolean(h, db))
        << "seed=" << seed;
    EXPECT_EQ(stats.mm_steps, 1);
  }
}

TEST(EliminationTest, MmWithGroupByOnFourClique) {
  // Eliminate X0 from the 4-clique by MM(X1; X2; X0 | X3) — a group-by MM
  // option from Example 4.6 — then finish with for-loops.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    WorkloadOptions opts;
    opts.tuples_per_relation = 40;
    opts.domain = 6;
    opts.seed = seed + 53;
    Hypergraph h = Hypergraph::Clique(4);
    QueryInput db = MakeWorkload(h, opts);
    EliminationPlan plan;
    PlanStep mm_step;
    mm_step.block = VarSet{0};
    mm_step.method = StepMethod::kMm;
    mm_step.mm = MmExpr{VarSet{1}, VarSet{2}, VarSet{0}, VarSet{3}};
    plan.steps.push_back(mm_step);
    for (int v : {1, 2, 3}) {
      PlanStep s;
      s.block = VarSet::Singleton(v);
      s.method = StepMethod::kForLoop;
      plan.steps.push_back(s);
    }
    EXPECT_EQ(ExecutePlan(h, db, plan), WcojBoolean(h, db))
        << "seed=" << seed;
  }
}

TEST(EliminationTest, StrassenKernelMatchesBoolean) {
  WorkloadOptions opts;
  opts.tuples_per_relation = 60;
  opts.domain = 10;
  opts.seed = 77;
  Hypergraph h = Hypergraph::Triangle();
  QueryInput db = MakeWorkload(h, opts);
  EliminationPlan plan;
  PlanStep mm_step;
  mm_step.block = VarSet{1};
  mm_step.method = StepMethod::kMm;
  mm_step.mm = MmExpr{VarSet{0}, VarSet{2}, VarSet{1}, VarSet::Empty()};
  plan.steps.push_back(mm_step);
  PlanStep s2;
  s2.block = VarSet{0, 2};
  s2.method = StepMethod::kForLoop;
  plan.steps.push_back(s2);
  EliminationOptions bool_opts, strassen_opts;
  strassen_opts.kernel = MmKernel::kStrassen;
  EXPECT_EQ(ExecutePlan(h, db, plan, bool_opts),
            ExecutePlan(h, db, plan, strassen_opts));
}

// ---------------------------------------------------------- triangle ----

class TriangleRegimeTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, int>> {};

TEST_P(TriangleRegimeTest, AllAlgorithmsAgree) {
  auto [kind, seed] = GetParam();
  WorkloadOptions opts;
  opts.kind = kind;
  opts.tuples_per_relation = 80;
  opts.domain = kind == WorkloadKind::kDense ? 12 : 20;
  opts.seed = static_cast<uint64_t>(seed);
  opts.plant_witness = (seed % 2 == 0);
  Hypergraph h = Hypergraph::Triangle();
  QueryInput db = MakeWorkload(h, opts);
  const bool expect = BruteForceBoolean(h, db);
  EXPECT_EQ(TriangleCombinatorial(db), expect);
  EXPECT_EQ(TriangleMm(db, 2.0), expect);
  EXPECT_EQ(TriangleMm(db, 2.371552), expect);
  EXPECT_EQ(TriangleMm(db, 2.8073549, MmKernel::kStrassen), expect);
  EXPECT_EQ(TriangleMm(db, 2.8073549, MmKernel::kBitSliced), expect);
  EXPECT_EQ(TriangleMm(db, 3.0), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, TriangleRegimeTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kUniform,
                                         WorkloadKind::kZipf,
                                         WorkloadKind::kDense),
                       ::testing::Range(0, 6)));

TEST(TriangleTest, CountMatchesWcojCount) {
  WorkloadOptions opts;
  opts.tuples_per_relation = 120;
  opts.domain = 15;
  opts.seed = 5;
  Hypergraph h = Hypergraph::Triangle();
  QueryInput db = MakeWorkload(h, opts);
  EXPECT_EQ(TriangleCountMm(db, MmKernel::kNaive), WcojCount(h, db));
  EXPECT_EQ(TriangleCountMm(db, MmKernel::kStrassen), WcojCount(h, db));
  EXPECT_EQ(TriangleCountMm(db, MmKernel::kBitSliced), WcojCount(h, db));
}

TEST(TriangleTest, HeavyPartSizeBound) {
  // |heavy| <= N / Delta for each partitioned relation (Section 2.5).
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = 2000;
  opts.domain = 300;
  opts.seed = 11;
  QueryInput db = MakeWorkload(Hypergraph::Triangle(), opts);
  TriangleStats stats;
  TriangleMm(db, 2.371552, MmKernel::kBoolean, &stats);
  const double n = static_cast<double>(db.TotalSize());
  const double delta = std::pow(n, (2.371552 - 1) / (2.371552 + 1));
  EXPECT_LE(stats.heavy_x, static_cast<int64_t>(n / delta) + 1);
  EXPECT_LE(stats.heavy_y, static_cast<int64_t>(n / delta) + 1);
  EXPECT_LE(stats.heavy_z, static_cast<int64_t>(n / delta) + 1);
}

// ----------------------------------------------------------- 4-cycle ----

class FourCycleRegimeTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, int>> {};

TEST_P(FourCycleRegimeTest, AllAlgorithmsAgree) {
  auto [kind, seed] = GetParam();
  WorkloadOptions opts;
  opts.kind = kind;
  opts.tuples_per_relation = 70;
  opts.domain = kind == WorkloadKind::kDense ? 10 : 16;
  opts.seed = static_cast<uint64_t>(seed) + 900;
  opts.plant_witness = (seed % 2 == 1);
  Hypergraph h = Hypergraph::Cycle(4);
  QueryInput db = MakeWorkload(h, opts);
  const bool expect = BruteForceBoolean(h, db);
  EXPECT_EQ(FourCycleTd(db), expect) << "seed=" << seed;
  EXPECT_EQ(FourCycleCombinatorial(db), expect) << "seed=" << seed;
  EXPECT_EQ(FourCycleMm(db, 2.0), expect) << "seed=" << seed;
  EXPECT_EQ(FourCycleMm(db, 2.371552), expect) << "seed=" << seed;
  EXPECT_EQ(FourCycleMm(db, 2.8073549, MmKernel::kStrassen), expect)
      << "seed=" << seed;
  EXPECT_EQ(FourCycleMm(db, 2.8073549, MmKernel::kBitSliced), expect)
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, FourCycleRegimeTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kUniform,
                                         WorkloadKind::kZipf,
                                         WorkloadKind::kDense),
                       ::testing::Range(0, 6)));

// ------------------------------------------------------------ cliques ----

class CliqueRegimeTest : public ::testing::TestWithParam<int> {};

TEST_P(CliqueRegimeTest, MmAgreesWithCombinatorial) {
  const int k = GetParam();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    WorkloadOptions opts;
    opts.kind = seed % 2 == 0 ? WorkloadKind::kUniform : WorkloadKind::kDense;
    opts.tuples_per_relation = 40;
    opts.domain = opts.kind == WorkloadKind::kDense ? 7 : 10;
    opts.seed = seed + 17 * k;
    opts.plant_witness = (seed == 3);
    Hypergraph h = Hypergraph::Clique(k);
    QueryInput db = MakeWorkload(h, opts);
    const bool expect = CliqueCombinatorial(k, db);
    EXPECT_EQ(CliqueMm(k, db), expect) << "k=" << k << " seed=" << seed;
    EXPECT_EQ(CliqueMm(k, db, MmKernel::kStrassen), expect)
        << "k=" << k << " seed=" << seed;
    EXPECT_EQ(CliqueMm(k, db, MmKernel::kBitSliced), expect)
        << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(K, CliqueRegimeTest, ::testing::Values(3, 4, 5, 6));

TEST(CliqueTest, GroupDimensionsReported) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kDense;
  opts.domain = 8;
  opts.seed = 3;
  QueryInput db = MakeWorkload(Hypergraph::Clique(6), opts);
  CliqueStats stats;
  CliqueMm(6, db, MmKernel::kBoolean, &stats);
  EXPECT_GT(stats.group_cliques[0], 0);
  EXPECT_GT(stats.group_cliques[1], 0);
  EXPECT_GT(stats.group_cliques[2], 0);
}

// ------------------------------------------------------------ pyramid ----

class PyramidRegimeTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, int>> {};

TEST_P(PyramidRegimeTest, MmAgreesWithCombinatorial) {
  auto [kind, seed] = GetParam();
  WorkloadOptions opts;
  opts.kind = kind;
  opts.tuples_per_relation = 60;
  opts.domain = kind == WorkloadKind::kDense ? 8 : 12;
  opts.seed = static_cast<uint64_t>(seed) + 400;
  opts.plant_witness = (seed % 3 == 0);
  Hypergraph h = Hypergraph::Pyramid(3);
  QueryInput db = MakeWorkload(h, opts);
  const bool expect = Pyramid3Combinatorial(db);
  EXPECT_EQ(Pyramid3Mm(db, 2.0), expect) << "seed=" << seed;
  EXPECT_EQ(Pyramid3Mm(db, 2.371552), expect) << "seed=" << seed;
  EXPECT_EQ(Pyramid3Mm(db, 3.0), expect) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, PyramidRegimeTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kUniform,
                                         WorkloadKind::kZipf,
                                         WorkloadKind::kDense),
                       ::testing::Range(0, 6)));

// ----------------------------------------------------------- facade -----

TEST(ApiTest, ComputeWidthsTriangle) {
  const Rational omega(2371552, 1000000);
  auto report = ComputeWidths(Hypergraph::Triangle(), omega);
  EXPECT_EQ(report.rho_star, Rational(3, 2));
  EXPECT_EQ(report.subw, Rational(3, 2));
  EXPECT_TRUE(report.omega_subw_exact);
  EXPECT_EQ(report.omega_subw_upper,
            Rational(2) * omega / (omega + Rational(1)));
  std::string text = FormatWidthReport(Hypergraph::Triangle(), omega, report);
  EXPECT_NE(text.find("w-subw"), std::string::npos);
}

TEST(ApiTest, EvaluateStrategiesAgree) {
  WorkloadOptions opts;
  opts.tuples_per_relation = 50;
  opts.domain = 9;
  opts.seed = 12;
  Hypergraph h = Hypergraph::Cycle(4);
  QueryInput db = MakeWorkload(h, opts);
  const bool expect = BruteForceBoolean(h, db);
  EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kWcoj), expect);
  EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kBestTd), expect);
  EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kElimination), expect);
}

}  // namespace
}  // namespace fmmsw
