// Tests for the ExecContext pipeline: fused join–semijoin probes (the
// exist_filter / SemijoinAll contracts of relation/ops.h), the parallel
// WCOJ fan-out (identical canonical output across thread counts, including
// skewed heavy-hitter inputs), the partition sort-order cache, and the
// radix-sort path of SortAndDedupe.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "core/exec_context.h"
#include "engine/four_cycle.h"
#include "engine/triangle.h"
#include "engine/wcoj.h"
#include "gtest/gtest.h"
#include "relation/degree.h"
#include "relation/flat_index.h"
#include "relation/generators.h"
#include "relation/ops.h"
#include "util/random.h"

namespace fmmsw {
namespace {

std::vector<std::vector<Value>> Rows(const Relation& r) {
  std::vector<std::vector<Value>> out;
  out.reserve(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    out.emplace_back(r.Row(i), r.Row(i) + r.arity());
  }
  return out;
}

Relation Sorted(Relation r) {
  r.SortAndDedupe();
  return r;
}

// ------------------------------------------------- fused-probe contract --

TEST(FusedJoinTest, ExistFilterMatchesSemijoinOfJoin) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Relation a = UniformRelation(VarSet{0, 1}, 120, 25, &rng);
    Relation b = UniformRelation(VarSet{1, 2}, 120, 25, &rng);
    Relation c = UniformRelation(VarSet{0, 2}, 80, 25, &rng);
    Relation fused = Join(a, b, {.exist_filter = &c});
    Relation reference = Semijoin(Join(a, b), c);
    EXPECT_EQ(Rows(Sorted(fused)), Rows(Sorted(reference)))
        << "trial " << trial;
  }
}

TEST(FusedJoinTest, MultipleFiltersMatchSemijoinChain) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Relation a = UniformRelation(VarSet{0, 1}, 150, 20, &rng);
    Relation b = UniformRelation(VarSet{1, 2}, 150, 20, &rng);
    Relation c = UniformRelation(VarSet{0, 2}, 60, 20, &rng);
    Relation d = UniformRelation(VarSet{2}, 12, 20, &rng);
    Relation fused = Join(a, b, {.exist_filters = {&c, &d}});
    Relation reference = Semijoin(Semijoin(Join(a, b), c), d);
    EXPECT_EQ(Rows(Sorted(fused)), Rows(Sorted(reference)))
        << "trial " << trial;
  }
}

TEST(FusedJoinTest, LimitCapsSurvivors) {
  Rng rng(13);
  Relation a = UniformRelation(VarSet{0, 1}, 200, 10, &rng);
  Relation b = UniformRelation(VarSet{1, 2}, 200, 10, &rng);
  Relation c = UniformRelation(VarSet{0, 2}, 90, 10, &rng);
  Relation full = Join(a, b, {.exist_filter = &c});
  Relation one = Join(a, b, {.exist_filter = &c, .limit = 1});
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(one.size(), 1u);
  // The survivor is a genuine result tuple.
  EXPECT_TRUE(full.Contains({one.Row(0)[0], one.Row(0)[1], one.Row(0)[2]}));
  // An unsatisfiable filter yields an empty result regardless of limit.
  Relation never(VarSet{0, 2});
  EXPECT_TRUE(Join(a, b, {.exist_filter = &never, .limit = 1}).empty());
}

TEST(FusedJoinTest, NullaryFilterActsAsBooleanConstant) {
  Rng rng(17);
  Relation a = UniformRelation(VarSet{0, 1}, 50, 8, &rng);
  Relation b = UniformRelation(VarSet{1, 2}, 50, 8, &rng);
  Relation truth(VarSet::Empty());
  truth.Add({});
  Relation falsity(VarSet::Empty());
  EXPECT_EQ(Join(a, b, {.exist_filter = &truth}).size(), Join(a, b).size());
  EXPECT_TRUE(Join(a, b, {.exist_filter = &falsity}).empty());
}

TEST(SemijoinAllTest, MatchesSemijoinChain) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    Relation a = UniformRelation(VarSet{0, 1, 2}, 200, 12, &rng);
    Relation b = UniformRelation(VarSet{0}, 8, 12, &rng);
    Relation c = UniformRelation(VarSet{1, 2}, 100, 12, &rng);
    Relation fused = SemijoinAll(a, {&b, &c});
    Relation reference = Semijoin(Semijoin(a, b), c);
    EXPECT_EQ(Rows(fused), Rows(reference)) << "trial " << trial;
  }
  // Empty filter list is the identity; an empty filter annihilates.
  Relation a = UniformRelation(VarSet{0, 1}, 40, 9, &rng);
  EXPECT_EQ(Rows(SemijoinAll(a, std::vector<const Relation*>{})), Rows(a));
  Relation empty_filter(VarSet{1});
  EXPECT_TRUE(SemijoinAll(a, {&empty_filter}).empty());
}

// The acceptance check for the fused light paths: on a negative instance
// the triangle/4-cycle engines probe light-join candidates but materialize
// none of them (the old pipeline allocated the full filtered-away join).
TEST(FusedStatsTest, TriangleLightPathMaterializesNothingWhenNegative) {
  // Dense-square triangle-free instance: S carries even Z, T odd Z.
  Rng rng(19);
  QueryInput db;
  const int64_t n = 3000, d = 55;
  db.relations.push_back(UniformRelation(VarSet{0, 1}, n, d, &rng));
  Relation raw_s = UniformRelation(VarSet{1, 2}, n, d, &rng);
  Relation raw_t = UniformRelation(VarSet{0, 2}, n, d, &rng);
  Relation s(VarSet{1, 2}), t(VarSet{0, 2});
  for (size_t i = 0; i < raw_s.size(); ++i) {
    s.Add({raw_s.Row(i)[0], 2 * raw_s.Row(i)[1]});
  }
  for (size_t i = 0; i < raw_t.size(); ++i) {
    t.Add({raw_t.Row(i)[0], 2 * raw_t.Row(i)[1] + 1});
  }
  db.relations.push_back(std::move(s));
  db.relations.push_back(std::move(t));

  ExecContext ec(1);
  TriangleStats stats;
  EXPECT_FALSE(TriangleMm(db, 2.371552, MmKernel::kBoolean, &stats, &ec));
  EXPECT_FALSE(stats.answer_from_light);
  EXPECT_EQ(stats.light_join_tuples, 0);  // nothing materialized
  const ExecStats& st = ec.stats();
  EXPECT_GE(st.fused_joins.load(), 3);       // one per light corner
  EXPECT_GT(st.fused_probe_tuples.load(), 0);  // candidates were probed...
  EXPECT_EQ(st.fused_emit_tuples.load(), 0);   // ...but none survived
  EXPECT_EQ(st.fused_probe_tuples.load(), st.fused_drop_tuples.load());
}

TEST(FusedStatsTest, FourCycleResidualIsFused) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kUniform;
  opts.tuples_per_relation = 400;
  opts.domain = 900;  // sparse: likely negative, light middles
  opts.seed = 5;
  QueryInput db = MakeWorkload(Hypergraph::Cycle(4), opts);
  ExecContext ec(1);
  FourCycleStats stats;
  const bool ans = FourCycleCombinatorial(db, &stats, &ec);
  EXPECT_EQ(ans, BruteForceBoolean(Hypergraph::Cycle(4), db));
  EXPECT_GE(ec.stats().fused_joins.load(), 1);
  if (!ans) {
    EXPECT_EQ(ec.stats().fused_emit_tuples.load(), 0);
  }
}

// ------------------------------------------------- sharded index builds --

TEST(ShardedIndexTest, TableCapacityComputedIn64Bits) {
  using flat_internal::TableCapacity;
  EXPECT_EQ(TableCapacity(0), 8u);
  EXPECT_EQ(TableCapacity(4), 8u);
  EXPECT_EQ(TableCapacity(5), 16u);
  EXPECT_EQ(TableCapacity(size_t{1} << 29), uint32_t{1} << 30);
  // The boundary where a 32-bit `cap <<= 1` wrapped to 0 and hung the
  // build loop forever (no allocation here — capacity math only).
  EXPECT_EQ(TableCapacity((size_t{1} << 30) - 1), 2147483648u);
  EXPECT_EQ(TableCapacity(size_t{1} << 30), 2147483648u);
}

/// Binary relation above the sharded-build threshold with a planted
/// heavy-hitter key in the first column.
Relation SkewedBinary(VarSet schema, size_t n, int domain, Value hot,
                      size_t hot_rows, uint64_t seed) {
  Rng rng(seed);
  Relation r(schema);
  for (size_t i = 0; i < n; ++i) {
    const Value k = i < hot_rows
                        ? hot
                        : static_cast<Value>(rng.Uniform(0, domain - 1));
    r.Add({k, static_cast<Value>(rng.Uniform(-domain, domain))});
  }
  return r;
}

TEST(ShardedIndexTest, MultimapChainsIdenticalToSerial) {
  const size_t n = 20000;
  ASSERT_GE(n, flat_internal::kShardedBuildMinRows);
  Relation r = SkewedBinary(VarSet{0, 1}, n, 4000, /*hot=*/77,
                            /*hot_rows=*/3000, /*seed=*/51);
  const KeySpec spec(r, VarSet{0});
  const FlatMultimap serial(r, spec);
  for (int threads : {1, 2, 4, 8}) {
    ExecContext ec(threads);
    const FlatMultimap built(r, spec, &ec);
    EXPECT_EQ(built.sharded(), threads > 1) << "threads=" << threads;
    for (Value v = -2; v < 4000; ++v) {
      const uint64_t key = static_cast<uint32_t>(v);
      int32_t a = serial.First(key);
      int32_t b = built.First(key);
      while (a >= 0 && b >= 0) {
        ASSERT_EQ(a, b) << "key=" << v << " threads=" << threads;
        a = serial.Next(a);
        b = built.Next(b);
      }
      ASSERT_EQ(a, b) << "key=" << v << " threads=" << threads;
    }
    if (threads > 1) {
      EXPECT_GE(ec.stats().index_sharded_builds.load(), 1);
    }
    EXPECT_GE(ec.stats().index_builds.load(), 1);
    EXPECT_EQ(ec.stats().index_build_rows.load(),
              static_cast<int64_t>(n));
  }
}

TEST(ShardedIndexTest, OpsBitIdenticalAcrossThreadCounts) {
  // Join / fused Join / Semijoin / Antijoin / SemijoinAll over
  // sharded-size skewed inputs: outputs must be byte-identical to the
  // 1-thread serial-build outputs (same row order, not just same set),
  // because equal-key chains keep their reverse-row order.
  Relation a = SkewedBinary(VarSet{0, 1}, 20000, 4000, 7, 2000, 61);
  Relation b = SkewedBinary(VarSet{1, 2}, 16000, 4000, 9, 1500, 62);
  Relation c = SkewedBinary(VarSet{0, 2}, 12000, 4000, 7, 1000, 63);
  ExecContext base(1);
  const Relation jref = Join(a, b, {}, &base);
  const Relation fref = Join(a, b, {.exist_filter = &c}, &base);
  const Relation sref = Semijoin(a, b, &base);
  const Relation aref = Antijoin(a, b, &base);
  const Relation mref = SemijoinAll(a, {&b, &c}, &base);
  EXPECT_EQ(base.stats().index_sharded_builds.load(), 0);
  for (int threads : {2, 4, 8}) {
    ExecContext ec(threads);
    EXPECT_EQ(Rows(Join(a, b, {}, &ec)), Rows(jref)) << threads;
    EXPECT_EQ(Rows(Join(a, b, {.exist_filter = &c}, &ec)), Rows(fref))
        << threads;
    EXPECT_EQ(Rows(Semijoin(a, b, &ec)), Rows(sref)) << threads;
    EXPECT_EQ(Rows(Antijoin(a, b, &ec)), Rows(aref)) << threads;
    EXPECT_EQ(Rows(SemijoinAll(a, {&b, &c}, &ec)), Rows(mref)) << threads;
    EXPECT_GT(ec.stats().index_sharded_builds.load(), 0) << threads;
  }
}

TEST(ShardedIndexTest, BulkInternerMatchesSerialFirstOccurrenceOrder) {
  Rng rng(52);
  Relation r(VarSet{3});
  for (int i = 0; i < 20000; ++i) {
    r.Add({static_cast<Value>(rng.Uniform(-3000, 3000))});
  }
  FlatInterner ref(r.size());
  for (size_t i = 0; i < r.size(); ++i) ref.InternValue(r.Row(i)[0]);
  const KeySpec spec(r, r.schema());
  for (int threads : {1, 2, 4, 8}) {
    ExecContext ec(threads);
    const FlatInterner built(r, spec, &ec);
    ASSERT_EQ(built.size(), ref.size()) << "threads=" << threads;
    EXPECT_EQ(built.sharded(), threads > 1) << "threads=" << threads;
    for (Value v = -3001; v <= 3001; ++v) {
      ASSERT_EQ(built.FindValue(v), ref.FindValue(v))
          << "v=" << v << " threads=" << threads;
    }
  }
}

TEST(ExecContextTest, ScratchArenaMovePreservesBuffersWhenFree) {
  ScratchArena a;
  ASSERT_TRUE(a.TryAcquire());
  a.u64().assign(100, 7);
  a.Release();
  ScratchArena b(std::move(a));
  EXPECT_EQ(b.u64().size(), 100u);
  EXPECT_TRUE(b.TryAcquire());
  b.Release();
}

// -------------------------------------------- parallel WCOJ determinism --

/// Runs WcojJoin/WcojCount/WcojBoolean under private pools of 1, 2, 4 and
/// 8 threads (the in-process equivalent of FMMSW_THREADS=1,2,4,8) and
/// checks the canonical outputs are identical.
void ExpectDeterministicAcrossThreadCounts(const Hypergraph& h,
                                           const QueryInput& db,
                                           VarSet output_vars) {
  ExecContext base(1);
  Relation ref = WcojJoin(h, db, output_vars, nullptr, &base);
  const int64_t ref_count = WcojCount(h, db, &base);
  const bool ref_bool = WcojBoolean(h, db, &base);
  for (int threads : {2, 4, 8}) {
    ExecContext ec(threads);
    Relation got = WcojJoin(h, db, output_vars, nullptr, &ec);
    EXPECT_EQ(Rows(got), Rows(ref)) << "threads=" << threads;
    EXPECT_EQ(WcojCount(h, db, &ec), ref_count) << "threads=" << threads;
    EXPECT_EQ(WcojBoolean(h, db, &ec), ref_bool) << "threads=" << threads;
    // Inputs are sized to actually exercise the task fan-out.
    EXPECT_GT(ec.stats().wcoj_parallel_runs.load(), 0)
        << "threads=" << threads;
  }
}

/// Plants a heavy hitter: `hot` appears in the first column of the first
/// relation against many partners (skew regime of the paper).
void PlantHeavyHitter(QueryInput* db, Value hot, int fanout) {
  Relation r = db->relations[0];  // copy-on-write: edit a copy, swap it in
  for (int i = 0; i < fanout; ++i) {
    r.Add({hot, static_cast<Value>(i)});
  }
  db->relations.Set(0, std::move(r));
}

TEST(ParallelWcojTest, TriangleDeterministicAcrossThreadCounts) {
  for (uint64_t seed : {1u, 2u}) {
    WorkloadOptions opts;
    opts.kind = WorkloadKind::kUniform;
    opts.tuples_per_relation = 1500;
    opts.domain = 120;
    opts.seed = seed;
    opts.plant_witness = true;
    Hypergraph h = Hypergraph::Triangle();
    QueryInput db = MakeWorkload(h, opts);
    ExpectDeterministicAcrossThreadCounts(h, db, h.vertices());
  }
}

TEST(ParallelWcojTest, TriangleSkewedHeavyHitter) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = 1200;
  opts.domain = 100;
  opts.zipf_alpha = 1.4;
  opts.seed = 3;
  Hypergraph h = Hypergraph::Triangle();
  QueryInput db = MakeWorkload(h, opts);
  PlantHeavyHitter(&db, /*hot=*/0, /*fanout=*/100);
  ExpectDeterministicAcrossThreadCounts(h, db, h.vertices());
  // Projected outputs too (exercises the merge + canonical sort).
  ExpectDeterministicAcrossThreadCounts(h, db, VarSet{0, 2});
}

TEST(ParallelWcojTest, FourCycleDeterministicAcrossThreadCounts) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kUniform;
  opts.tuples_per_relation = 1100;
  opts.domain = 70;
  opts.seed = 4;
  Hypergraph h = Hypergraph::Cycle(4);
  QueryInput db = MakeWorkload(h, opts);
  ExpectDeterministicAcrossThreadCounts(h, db, h.vertices());
}

TEST(ParallelWcojTest, FiveVariableGenericQuery) {
  // 5-cycle: a 5-variable query with no specialized engine.
  for (WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kZipf}) {
    WorkloadOptions opts;
    opts.kind = kind;
    opts.tuples_per_relation = 900;
    opts.domain = 60;
    opts.zipf_alpha = 1.3;
    opts.seed = 9;
    Hypergraph h = Hypergraph::Cycle(5);
    QueryInput db = MakeWorkload(h, opts);
    PlantHeavyHitter(&db, /*hot=*/1, /*fanout=*/80);
    ExpectDeterministicAcrossThreadCounts(h, db, h.vertices());
  }
}

TEST(ParallelWcojTest, SubLevelStealingOnDominantTask) {
  // One top-level X value whose depth-1 fanout dwarfs every other task:
  // without sub-level splitting this single task serializes the join.
  // The dominant task must run cooperatively (claimed in depth-1 blocks)
  // and the output must stay bit-identical across thread counts.
  Hypergraph h = Hypergraph::Triangle();
  Rng rng(61);
  Relation r(VarSet{0, 1}), s(VarSet{1, 2}), t(VarSet{0, 2});
  for (int i = 0; i < 3000; ++i) {
    r.Add({0, static_cast<Value>(i)});  // hot x = 0: depth-1 span 3000
  }
  for (Value x = 1; x <= 40; ++x) {
    for (int j = 0; j < 5; ++j) {
      r.Add({x, static_cast<Value>(rng.Uniform(0, 2999))});
    }
  }
  for (int i = 0; i < 6000; ++i) {
    s.Add({static_cast<Value>(rng.Uniform(0, 2999)),
           static_cast<Value>(rng.Uniform(0, 399))});
  }
  for (int i = 0; i < 4000; ++i) {
    t.Add({static_cast<Value>(rng.Uniform(0, 40)),
           static_cast<Value>(rng.Uniform(0, 399))});
  }
  r.SortAndDedupe();
  s.SortAndDedupe();
  t.SortAndDedupe();
  QueryInput db;
  db.relations = {r, s, t};
  ExpectDeterministicAcrossThreadCounts(h, db, h.vertices());
  ExpectDeterministicAcrossThreadCounts(h, db, VarSet{1, 2});
  ExecContext ec(4);
  Relation out = WcojJoin(h, db, h.vertices(), nullptr, &ec);
  EXPECT_FALSE(out.empty());
  EXPECT_GT(ec.stats().wcoj_coop_tasks.load(), 0);
}

TEST(ParallelWcojTest, StealCursorsStableUnderRepeatedEightWorkerRuns) {
  // Regression pinned at 8 workers — oversubscribed on the dev sandboxes,
  // so the coop morsel cursors and depth-1 steal claims race under real
  // preemption. Repeated runs must stay bit-identical to the serial
  // reference; the CI tsan job runs this under TSan, which validates the
  // work-claim cursors' relaxed fetch_adds empirically.
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = 1200;
  opts.domain = 100;
  opts.zipf_alpha = 1.4;
  opts.seed = 9;
  Hypergraph h = Hypergraph::Triangle();
  QueryInput db = MakeWorkload(h, opts);
  PlantHeavyHitter(&db, /*hot=*/0, /*fanout=*/150);
  ExecContext ref(1);
  const Relation expect = WcojJoin(h, db, h.vertices(), nullptr, &ref);
  for (int round = 0; round < 5; ++round) {
    ExecContext ec(8);
    Relation got = WcojJoin(h, db, h.vertices(), nullptr, &ec);
    EXPECT_EQ(Rows(got), Rows(expect)) << "round " << round;
    EXPECT_GT(ec.stats().wcoj_parallel_runs.load(), 0);
  }
}

TEST(ParallelWcojTest, EnginesAgreeUnderParallelContext) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = 800;
  opts.domain = 90;
  opts.seed = 21;
  Hypergraph h = Hypergraph::Triangle();
  QueryInput db = MakeWorkload(h, opts);
  ExecContext ec(4);
  const bool expect = TriangleCombinatorial(db, &ec);
  EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kWcoj, &ec), expect);
  EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kBestTd, &ec), expect);
  EXPECT_EQ(EvaluateBoolean(h, db, EvalStrategy::kElimination, &ec), expect);
  EXPECT_EQ(TriangleMm(db, 2.371552, MmKernel::kBoolean, nullptr, &ec),
            expect);
}

// --------------------------------------------------- sort-order cache ----

TEST(ExecContextTest, SortOrderCacheReusedAcrossPartitions) {
  Rng rng(31);
  Relation r = UniformRelation(VarSet{0, 1}, 500, 40, &rng);
  ExecContext ec(1);
  DegreePartition no_cache2 = PartitionByDegree(r, VarSet{1}, VarSet{0}, 2);
  DegreePartition no_cache9 = PartitionByDegree(r, VarSet{1}, VarSet{0}, 9);
  {
    ExecContext::SortOrderScope scope(ec);
    DegreePartition p2 = PartitionByDegree(r, VarSet{1}, VarSet{0}, 2, &ec);
    // Second partition of the same pinned relation: different threshold,
    // same grouping order — served from the cache.
    DegreePartition p9 = PartitionByDegree(r, VarSet{1}, VarSet{0}, 9, &ec);
    EXPECT_GE(ec.stats().sort_order_hits.load(), 1);
    EXPECT_EQ(Rows(Sorted(p2.heavy)), Rows(Sorted(no_cache2.heavy)));
    EXPECT_EQ(Rows(Sorted(p2.light)), Rows(Sorted(no_cache2.light)));
    EXPECT_EQ(Rows(Sorted(p9.heavy)), Rows(Sorted(no_cache9.heavy)));
    EXPECT_EQ(Rows(Sorted(p9.light)), Rows(Sorted(no_cache9.light)));
  }
  // Outside the scope the cache is inert.
  const int64_t hits = ec.stats().sort_order_hits.load();
  PartitionByDegree(r, VarSet{1}, VarSet{0}, 2, &ec);
  PartitionByDegree(r, VarSet{1}, VarSet{0}, 2, &ec);
  EXPECT_EQ(ec.stats().sort_order_hits.load(), hits);
}

// ------------------------------------------------------- radix sorting ---

TEST(RadixSortTest, LargeSortAndDedupeMatchesReference) {
  Rng rng(41);
  // Arity 2 with negative and extreme values: crosses the radix threshold.
  Relation r(VarSet{0, 1});
  std::set<std::pair<Value, Value>> ref;
  for (int i = 0; i < 60000; ++i) {
    Value a = static_cast<Value>(rng.Uniform(-50000, 50000));
    Value b = static_cast<Value>(rng.Uniform(-50000, 50000));
    if (i % 997 == 0) a = std::numeric_limits<Value>::min();
    if (i % 991 == 0) b = std::numeric_limits<Value>::max();
    r.Add({a, b});
    r.Add({a, b});  // duplicates must collapse
    ref.emplace(a, b);
  }
  r.SortAndDedupe();
  ASSERT_EQ(r.size(), ref.size());
  size_t i = 0;
  for (const auto& [a, b] : ref) {
    EXPECT_EQ(r.Row(i)[0], a);
    EXPECT_EQ(r.Row(i)[1], b);
    ++i;
  }
  // Arity 1, same treatment.
  Relation u(VarSet{3});
  std::set<Value> uref;
  for (int i = 0; i < 30000; ++i) {
    const Value v = static_cast<Value>(rng.Uniform(-40000, 40000));
    u.Add({v});
    uref.insert(v);
  }
  u.SortAndDedupe();
  ASSERT_EQ(u.size(), uref.size());
  size_t j = 0;
  for (Value v : uref) EXPECT_EQ(u.Row(j++)[0], v);
}

// --------------------------------------------------- wide-key sort layer --

/// Dup-heavy arity-4 relation large enough to cross the pool-parallel
/// radix floor, with a skewed hot key so bucket sizes are uneven.
Relation WideSortInput(size_t n, uint64_t seed) {
  Rng rng(seed);
  Relation r(VarSet{0, 1, 2, 3});
  Value row[4];
  for (size_t i = 0; i < n; ++i) {
    const bool hot = rng.Uniform(0, 9) < 3;
    row[0] = hot ? 7 : static_cast<Value>(rng.Uniform(-300, 300));
    row[1] = static_cast<Value>(rng.Uniform(-40, 40));
    row[2] = static_cast<Value>(rng.Uniform(-40, 40));
    row[3] = static_cast<Value>(rng.Zipf(200, 1.3));
    r.AddRow(row);
  }
  return r;
}

TEST(WideSortTest, ParallelSortAndDedupeBitIdenticalAcrossThreadCounts) {
  const Relation input = WideSortInput(70000, 51);
  ExecContext base(1);
  Relation ref = input;
  ref.SortAndDedupe(&base);
  EXPECT_EQ(base.stats().sort_parallel.load(), 0);  // 1 worker: serial
  for (int threads : {2, 4, 8}) {
    ExecContext ec(threads);
    Relation got = input;
    got.SortAndDedupe(&ec);
    EXPECT_EQ(Rows(got), Rows(ref)) << "threads=" << threads;
    // 70000 rows on an idle multi-worker pool must take the parallel
    // radix path.
    EXPECT_EQ(ec.stats().sort_parallel.load(), 1) << "threads=" << threads;
    EXPECT_EQ(ec.stats().sort_calls.load(), 1) << "threads=" << threads;
  }
}

TEST(WideSortTest, SortStatsAccounted) {
  ExecContext ec(1);
  Relation r = WideSortInput(3000, 52);
  const size_t n = r.size();
  r.SortAndDedupe(&ec);
  EXPECT_EQ(ec.stats().sort_calls.load(), 1);
  EXPECT_EQ(ec.stats().sort_rows.load(), static_cast<int64_t>(n));
  EXPECT_GE(ec.stats().sort_ns.load(), 0);
  // A WCOJ run sorts each relation's trie buffer plus the canonical
  // output sort.
  ec.stats().Reset();
  Rng rng(53);
  QueryInput db;
  Hypergraph h = Hypergraph::Triangle();
  for (int e = 0; e < 3; ++e) {
    db.relations.push_back(
        UniformRelation(h.edges()[e], 400, 30, &rng));
  }
  WcojJoin(h, db, h.vertices(), nullptr, &ec);
  EXPECT_GE(ec.stats().sort_calls.load(), 4);
}

// ------------------------------------------------ execution guardrails --

/// Triangle workload big enough that every engine layer (index builds,
/// trie sorts, WCOJ fan-out, canonical output sort) passes many poll
/// points.
QueryInput GuardWorkload(uint64_t seed) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kUniform;
  opts.tuples_per_relation = 4000;
  opts.domain = 90;
  opts.seed = seed;
  opts.plant_witness = true;
  return MakeWorkload(Hypergraph::Triangle(), opts);
}

TEST(GuardrailTest, FaultInjectionUnwindsAndContextIsReusable) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = GuardWorkload(71);
  ExecContext ref_ec(1);
  const Relation ref = WcojJoin(h, db, h.vertices(), nullptr, &ref_ec);
  ASSERT_FALSE(ref.empty());
  for (int threads : {1, 2, 4, 8}) {
    ExecContext ec(threads);
    // The serial run crosses ~a dozen morsel boundaries on this input;
    // the parallel runs (task + coop block claims) cross ~100. Sweep
    // fault points across the span each regime actually reaches.
    std::vector<int64_t> fault_points = {1, 3, 10};
    if (threads > 1) {
      fault_points.push_back(40);
      fault_points.push_back(90);
    }
    for (int64_t fault_at : fault_points) {
      ec.guard().SetFaultAt(fault_at);
      Relation out;
      const ExecResult r =
          WcojJoinGuarded(h, db, h.vertices(), &out, nullptr, &ec);
      ASSERT_EQ(r.status, ExecStatus::kCancelled)
          << "threads=" << threads << " fault_at=" << fault_at;
      EXPECT_NE(r.message.find("fault injection"), std::string::npos);
      // The unwind must leave the context balanced: no leaked memory
      // charges, every scratch arena released.
      EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0)
          << "threads=" << threads << " fault_at=" << fault_at;
      for (int w = 0; w < ec.threads(); ++w) {
        EXPECT_TRUE(ec.scratch(w).TryAcquire()) << "arena " << w << " stuck";
        ec.scratch(w).Release();
      }
      // The same context runs the same query to completion,
      // bit-identically (Disarm cleared the fault).
      Relation again;
      const ExecResult ok =
          WcojJoinGuarded(h, db, h.vertices(), &again, nullptr, &ec);
      ASSERT_TRUE(ok.ok()) << StatusString(ok.status) << ": " << ok.message;
      EXPECT_EQ(Rows(again), Rows(ref))
          << "threads=" << threads << " fault_at=" << fault_at;
    }
  }
}

TEST(GuardrailTest, FaultInjectionMidSortAndMidIndexBuild) {
  // Target the sort layer and the sharded index build directly: both run
  // enough polls on their own for early fault points to land inside them.
  const Relation input = WideSortInput(70000, 72);
  Relation big = SkewedBinary(VarSet{0, 1}, 40000, 5000, 7, 4000, 73);
  const KeySpec spec(big, VarSet{0});
  for (int threads : {1, 4}) {
    ExecContext ec(threads);
    ec.guard().SetFaultAt(2);
    ExecResult r = RunGuarded(ec, {}, [&] {
      Relation s = input;
      s.SortAndDedupe(&ec);
    });
    EXPECT_EQ(r.status, ExecStatus::kCancelled) << "threads=" << threads;
    EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
    ec.guard().SetFaultAt(2);
    r = RunGuarded(ec, {}, [&] { FlatMultimap idx(big, spec, &ec); });
    // Poll points sit at the sharded build's chunk claims; the 1-thread
    // serial build is a poll-free tight loop and completes.
    EXPECT_EQ(r.status, threads > 1 ? ExecStatus::kCancelled
                                    : ExecStatus::kOk)
        << "threads=" << threads;
    EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
    // The context still sorts and builds correctly afterwards.
    Relation s = input;
    ExecResult ok = RunGuarded(ec, {}, [&] { s.SortAndDedupe(&ec); });
    ASSERT_TRUE(ok.ok()) << ok.message;
    Relation ref = input;
    ref.SortAndDedupe();
    EXPECT_EQ(Rows(s), Rows(ref)) << "threads=" << threads;
  }
}

// Driven by the CI sanitizer job: FMMSW_FAULT_AT=<n> in the environment
// is read at Arm() time and must abort the guarded run at poll n exactly
// like the in-process SetFaultAt. Run standalone (gtest_filter) — the env
// var poisons every other guarded re-run in this file.
TEST(GuardrailTest, EnvFaultInjection) {
  if (std::getenv("FMMSW_FAULT_AT") == nullptr) {
    GTEST_SKIP() << "set FMMSW_FAULT_AT=<poll#> to run";
  }
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = GuardWorkload(79);
  ExecContext ec(4);
  Relation out;
  const ExecResult r = WcojJoinGuarded(h, db, h.vertices(), &out, nullptr,
                                       &ec, {});
  EXPECT_EQ(r.status, ExecStatus::kCancelled);
  EXPECT_NE(r.message.find("fault injection"), std::string::npos);
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
  // With the env fault gone, the same context completes the same query.
  unsetenv("FMMSW_FAULT_AT");
  Relation again;
  const ExecResult ok =
      WcojJoinGuarded(h, db, h.vertices(), &again, nullptr, &ec);
  ASSERT_TRUE(ok.ok()) << ok.message;
  ExecContext ref_ec(1);
  EXPECT_EQ(Rows(again),
            Rows(WcojJoin(h, db, h.vertices(), nullptr, &ref_ec)));
}

TEST(GuardrailTest, CancellationViaPollHook) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = GuardWorkload(74);
  ExecContext ec(4);
  ec.guard().SetPollHook([&ec](int64_t poll) {
    if (poll == 10) ec.guard().Cancel();
  });
  int64_t count = -1;
  const ExecResult r = WcojCountGuarded(h, db, &count, &ec);
  ec.guard().SetPollHook(nullptr);
  EXPECT_EQ(r.status, ExecStatus::kCancelled);
  EXPECT_EQ(count, -1);  // output untouched on failure
  EXPECT_GE(ec.guard().polls(), 10);
  // Reusable afterwards, and cancellation did not stick.
  const ExecResult ok = WcojCountGuarded(h, db, &count, &ec);
  ASSERT_TRUE(ok.ok()) << ok.message;
  ExecContext ref_ec(1);
  EXPECT_EQ(count, WcojCount(h, db, &ref_ec));
}

TEST(GuardrailTest, PollHookFiresConcurrentlyAtEightWorkers) {
  // Regression for the hook_mu_ handshake: the poll hook is a non-atomic
  // std::function invoked from every worker's PollSlow, serialized by
  // hook_mu_ behind the relaxed has_hook_ gate. With 8 oversubscribed
  // workers polling, the CI tsan job checks the gate/lock pairing
  // empirically; the counts check that every armed poll fired the hook
  // exactly once.
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = GuardWorkload(76);
  ExecContext ec(8);
  std::atomic<int64_t> fires(0);
  ec.guard().SetPollHook([&fires](int64_t) { fires.fetch_add(1); });
  int64_t count = -1;
  const ExecResult r = WcojCountGuarded(h, db, &count, &ec);
  ec.guard().SetPollHook(nullptr);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_GT(fires.load(), 0);
  EXPECT_EQ(fires.load(), ec.guard().polls());
  ExecContext ref_ec(1);
  EXPECT_EQ(count, WcojCount(h, db, &ref_ec));
}

TEST(GuardrailTest, DeadlineExceededTerminatesEarly) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = GuardWorkload(75);
  ExecContext ec(4);
  // Each armed poll sleeps ~1ms and an armed deadline reads the clock at
  // every poll, so the 5ms budget expires within the first handful of
  // polls — deterministic regardless of machine speed.
  ec.guard().SetPollHook([](int64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // A count visits the whole join (no witness short-circuit), so the run
  // is guaranteed to keep polling until the deadline trips.
  int64_t count = -1;
  const ExecResult r =
      WcojCountGuarded(h, db, &count, &ec, {.deadline_ms = 5});
  ec.guard().SetPollHook(nullptr);
  EXPECT_EQ(r.status, ExecStatus::kDeadlineExceeded);
  EXPECT_EQ(count, -1);
  // Fresh run on the same context succeeds.
  bool answer = false;
  const ExecResult ok =
      EvaluateBooleanGuarded(h, db, &answer, EvalStrategy::kWcoj, &ec);
  ASSERT_TRUE(ok.ok()) << ok.message;
  EXPECT_TRUE(answer);  // witness planted
}

TEST(GuardrailTest, MemoryBudgetExceededAndBalancedAfter) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = GuardWorkload(76);
  ExecContext ec(2);
  Relation out;
  // The trie build alone charges ~3 * 4000 rows * 2 cols * 8 bytes.
  const ExecResult r = WcojJoinGuarded(h, db, h.vertices(), &out, nullptr,
                                       &ec, {.memory_budget_bytes = 16384});
  EXPECT_EQ(r.status, ExecStatus::kMemoryLimitExceeded);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
  EXPECT_GT(ec.stats().mem_peak_bytes.load(), 0);
  // An ample budget lets the same query through on the same context.
  const ExecResult ok =
      WcojJoinGuarded(h, db, h.vertices(), &out, nullptr, &ec,
                      {.memory_budget_bytes = int64_t{1} << 32});
  ASSERT_TRUE(ok.ok()) << ok.message;
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
}

TEST(GuardrailTest, RowLimitExceeded) {
  // A join with a huge output: every a-row matches every b-row on y=0.
  Relation a(VarSet{0, 1}), b(VarSet{1, 2});
  for (Value i = 0; i < 300; ++i) {
    a.Add({i, 0});
    b.Add({0, i});
  }
  ExecContext ec(1);
  const ExecResult r = RunGuarded(ec, {.max_output_rows = 1000},
                                  [&] { Join(a, b, {}, &ec); });
  EXPECT_EQ(r.status, ExecStatus::kCapacityExceeded);
  EXPECT_NE(r.message.find("max_output_rows"), std::string::npos);
  // 90000 output rows pass well within budget when no limit is armed.
  const ExecResult ok = RunGuarded(ec, {}, [&] {
    EXPECT_EQ(Join(a, b, {}, &ec).size(), 90000u);
  });
  ASSERT_TRUE(ok.ok()) << ok.message;
}

TEST(GuardrailTest, InvalidArgumentFromValidation) {
  const Hypergraph h = Hypergraph::Triangle();
  QueryInput db = GuardWorkload(77);
  bool answer = false;
  // Relation-count mismatch.
  QueryInput short_db;
  short_db.relations.push_back(db.relations.ptr(0));
  EXPECT_EQ(EvaluateBooleanGuarded(h, short_db, &answer).status,
            ExecStatus::kInvalidArgument);
  // Schema mismatch: swap two relations so schemas disagree with edges.
  QueryInput swapped = db;
  swapped.relations.Swap(0, 1);
  EXPECT_EQ(EvaluateBooleanGuarded(h, swapped, &answer).status,
            ExecStatus::kInvalidArgument);
  EXPECT_EQ(ValidateQuery(h, swapped).status, ExecStatus::kInvalidArgument);
  // The untouched database validates and evaluates.
  EXPECT_TRUE(ValidateQuery(h, db).ok());
  const ExecResult ok = EvaluateBooleanGuarded(h, db, &answer);
  ASSERT_TRUE(ok.ok()) << ok.message;
  EXPECT_TRUE(answer);
}

TEST(GuardrailTest, GuardedMatchesUnguardedForEveryStrategy) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = GuardWorkload(78);
  for (EvalStrategy strategy : {EvalStrategy::kWcoj, EvalStrategy::kBestTd,
                                EvalStrategy::kElimination}) {
    ExecContext ec(4);
    const bool plain = EvaluateBoolean(h, db, strategy, &ec);
    bool guarded = !plain;
    const ExecResult r = EvaluateBooleanGuarded(h, db, &guarded, strategy,
                                                &ec, {.deadline_ms = 60000});
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_EQ(guarded, plain);
  }
}

TEST(GuardrailTest, FlatIndexCapacityOverflowThrowsQueryAbort) {
  // Beyond the 2^30-entry cap the build reports kCapacityExceeded
  // instead of aborting the process (capacity math only, no allocation).
  try {
    flat_internal::TableCapacity(size_t{1} << 31);
    FAIL() << "expected QueryAbort";
  } catch (const QueryAbort& e) {
    EXPECT_EQ(e.status(), ExecStatus::kCapacityExceeded);
    EXPECT_NE(std::string(e.what()).find("2^30"), std::string::npos);
  }
  // The boundary itself still fits.
  EXPECT_EQ(flat_internal::TableCapacity(size_t{1} << 30), 2147483648u);
}

TEST(WideSortTest, TrieBuildOrderInvariantUnderColumnPermutation) {
  // An instantiation order that reverses the relations' column order
  // forces the trie sort to run (no presorted short-circuit); results
  // must agree with the default order's canonical output.
  Rng rng(54);
  Hypergraph h = Hypergraph::Triangle();
  QueryInput db;
  for (int e = 0; e < 3; ++e) {
    db.relations.push_back(
        UniformRelation(h.edges()[e], 2500, 45, &rng));
  }
  ExecContext ec(1);
  Relation ref = WcojJoin(h, db, h.vertices(), nullptr, &ec);
  const std::vector<int> reversed = {2, 1, 0};
  Relation got = WcojJoin(h, db, h.vertices(), &reversed, &ec);
  EXPECT_EQ(Rows(got), Rows(ref));
}

}  // namespace
}  // namespace fmmsw
