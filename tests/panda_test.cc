// Tests for the PANDA machinery: w-Shannon inequalities (Definition E.3),
// LP certification of validity, proof-sequence verification (Theorem E.8),
// and the proof-sequence executor reproducing Figure 1.

#include <limits>

#include "core/exec_context.h"
#include "engine/triangle.h"
#include "gtest/gtest.h"
#include "panda/executor.h"
#include "panda/inequality.h"
#include "entropy/witnesses.h"
#include "panda/proof.h"
#include "relation/generators.h"
#include "util/random.h"

namespace fmmsw {
namespace {

class OmegaParamTest : public ::testing::TestWithParam<Rational> {};

TEST_P(OmegaParamTest, TriangleInequalityIsDominantAndValid) {
  const Rational omega = GetParam();
  auto ineq = TriangleInequality(omega);
  EXPECT_TRUE(CheckDominance(ineq, omega));
  // Eq. (13) is a Shannon inequality: certified by LP over the cone.
  EXPECT_TRUE(VerifyShannon(ineq, VarSet::Full(3)));
}

TEST_P(OmegaParamTest, TriangleProofSequenceVerifies) {
  const Rational omega = GetParam();
  auto ineq = TriangleInequality(omega);
  auto seq = TriangleProofSequence(omega);
  EXPECT_TRUE(VerifyProofSequence(ineq, seq, omega));
}

INSTANTIATE_TEST_SUITE_P(Omegas, OmegaParamTest,
                         ::testing::Values(Rational(2), Rational(9, 4),
                                           Rational(2371552, 1000000),
                                           Rational(5, 2), Rational(3)));

TEST(InequalityTest, BogusInequalityRejectedByLp) {
  // h(XYZ) <= h(X) is not a Shannon inequality.
  OmegaShannonInequality bogus;
  bogus.plain.push_back(PlainLhsTerm{VarSet::Full(3), Rational(1)});
  bogus.rhs.push_back(CondTerm{VarSet{0}, VarSet::Empty(), Rational(1)});
  EXPECT_FALSE(VerifyShannon(bogus, VarSet::Full(3)));
}

TEST(InequalityTest, DominanceRejectsBadTriples) {
  const Rational omega(5, 2);
  auto ineq = TriangleInequality(omega);
  // Corrupt the MM triple: alpha/kappa < 1 violates Definition E.1.
  ineq.mm[0].alpha = Rational(1, 2);
  EXPECT_FALSE(CheckDominance(ineq, omega));
}

TEST(InequalityTest, SlackNonNegativeOnRandomPolymatroids) {
  // Property check of Eq. (13): RHS - LHS >= 0 on atom-composition
  // polymatroids (which are entropic, hence in the Shannon cone).
  const Rational omega(2371552, 1000000);
  auto ineq = TriangleInequality(omega);
  Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    AtomComposition c;
    const int atoms = static_cast<int>(rng.Uniform(1, 5));
    for (int a = 0; a < atoms; ++a) {
      int id = c.AddAtom(Rational(rng.Uniform(0, 6), 3));
      for (int v = 0; v < 3; ++v) {
        if (rng.Flip(0.6)) c.Attach(v, id);
      }
    }
    auto h = c.Build(VarSet::Full(3));
    EXPECT_LE(InequalitySlack(ineq, h), Rational(0)) << "trial " << trial;
  }
}

TEST(ProofTest, TruncatedSequenceFailsVerification) {
  const Rational omega(5, 2);
  auto ineq = TriangleInequality(omega);
  auto seq = TriangleProofSequence(omega);
  seq.steps.pop_back();  // drop the last composition
  EXPECT_FALSE(VerifyProofSequence(ineq, seq, omega));
}

TEST(ProofTest, OverconsumingSequenceFails) {
  const Rational omega(5, 2);
  auto ineq = TriangleInequality(omega);
  auto seq = TriangleProofSequence(omega);
  // Duplicate the first decomposition: consumes h(XY) weight 2 total plus
  // the composition's use — exceeding the available 2.
  seq.steps.insert(seq.steps.begin(), seq.steps[0]);
  EXPECT_FALSE(VerifyProofSequence(ineq, seq, omega));
}

TEST(ExecutorTest, DerivedTriangleAlgorithmMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    for (WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kZipf,
                              WorkloadKind::kDense}) {
      WorkloadOptions opts;
      opts.kind = kind;
      opts.tuples_per_relation = 70;
      opts.domain = kind == WorkloadKind::kDense ? 10 : 16;
      opts.seed = seed + 600;
      opts.plant_witness = (seed % 2 == 0);
      Hypergraph h = Hypergraph::Triangle();
      QueryInput db = MakeWorkload(h, opts);
      const bool expect = BruteForceBoolean(h, db);
      EXPECT_EQ(PandaTriangleBoolean(db, 2.371552), expect)
          << "seed=" << seed;
      EXPECT_EQ(PandaTriangleBoolean(db, 2.0), expect) << "seed=" << seed;
      EXPECT_EQ(PandaTriangleBoolean(db, 3.0), expect) << "seed=" << seed;
    }
  }
}

TEST(ExecutorTest, MatchesSpecializedTriangleAlgorithm) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    WorkloadOptions opts;
    opts.kind = WorkloadKind::kZipf;
    opts.tuples_per_relation = 120;
    opts.domain = 40;
    opts.seed = seed + 70;
    QueryInput db = MakeWorkload(Hypergraph::Triangle(), opts);
    EXPECT_EQ(PandaTriangleBoolean(db, 2.371552),
              TriangleMm(db, 2.371552))
        << "seed=" << seed;
  }
}

TEST(ExecutorTest, StatsReportFigureOneShape) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = 300;
  opts.domain = 60;
  opts.seed = 1;
  QueryInput db = MakeWorkload(Hypergraph::Triangle(), opts);
  PandaStats stats;
  PandaTriangleBoolean(db, 2.371552, MmKernel::kBoolean, &stats);
  // Figure 1: three partitions (R, S, T) and three light-join
  // compositions; the MM group executes once (unless a light table
  // answered first).
  EXPECT_EQ(stats.partitions, 3);
  EXPECT_LE(stats.joins, 3);
  EXPECT_LE(stats.mm_executed, 1);
}

TEST(ExecutorTest, FlatInternedDimensionsHandleExtremeValues) {
  // Regression for the flat-index port of the executor's matrix-dimension
  // interning (was std::unordered_map<Value, int>): negative values and
  // the int32 boundaries must round-trip through the packed 64-bit keys.
  const Value lo = std::numeric_limits<Value>::min();
  const Value hi = std::numeric_limits<Value>::max();
  for (bool plant : {false, true}) {
    QueryInput db;
    Relation r(VarSet{0, 1}), s(VarSet{1, 2}), t(VarSet{0, 2});
    // Dense small-domain skeleton over extreme values so every value is
    // heavy and the MM group executes.
    const Value xs[4] = {lo, -7, 7, hi};
    for (Value a : xs) {
      for (Value b : xs) {
        if (a == b && !plant) continue;  // kill the diagonal witnesses
        r.Add({a, b});
        s.Add({a, b});
        t.Add({a, b});
      }
    }
    db.relations.push_back(r);
    db.relations.push_back(s);
    db.relations.push_back(t);
    const bool expect = BruteForceBoolean(Hypergraph::Triangle(), db);
    for (double omega : {2.0, 2.371552, 3.0}) {
      PandaStats stats;
      EXPECT_EQ(PandaTriangleBoolean(db, omega, MmKernel::kBoolean, &stats),
                expect)
          << "plant=" << plant << " omega=" << omega;
      EXPECT_EQ(PandaTriangleBoolean(db, omega, MmKernel::kNaive), expect)
          << "plant=" << plant << " omega=" << omega;
    }
  }
}

TEST(ExecutorTest, ProofSequenceRunsUnderSortOrderScope) {
  // The executor opens an ExecContext::SortOrderScope; repeated executions
  // on the same context must not leak cache state across calls (each call
  // clears the cache on entry and exit).
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kZipf;
  opts.tuples_per_relation = 200;
  opts.domain = 50;
  opts.seed = 12;
  QueryInput db = MakeWorkload(Hypergraph::Triangle(), opts);
  ExecContext ec(1);
  const bool expect = BruteForceBoolean(Hypergraph::Triangle(), db);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(
        PandaTriangleBoolean(db, 2.371552, MmKernel::kBoolean, nullptr, &ec),
        expect);
  }
  EXPECT_GE(ec.stats().partition_calls.load(), 9);
}

}  // namespace
}  // namespace fmmsw
