// Tests for relations, relational operators, degree statistics /
// partitioning (Definition E.9), and the workload generators.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "relation/degree.h"
#include "relation/flat_index.h"
#include "relation/generators.h"
#include "relation/ops.h"
#include "relation/relation.h"

namespace fmmsw {
namespace {

Relation MakeRel(VarSet schema, std::vector<std::vector<Value>> rows) {
  Relation r(schema);
  for (const auto& row : rows) r.Add(row);
  return r;
}

TEST(RelationTest, SchemaAndColumns) {
  Relation r(VarSet{1, 3});
  EXPECT_EQ(r.arity(), 2);
  EXPECT_EQ(r.ColumnOf(1), 0);
  EXPECT_EQ(r.ColumnOf(3), 1);
  r.Add({10, 30});
  EXPECT_EQ(r.Get(0, 1), 10);
  EXPECT_EQ(r.Get(0, 3), 30);
}

TEST(RelationTest, SortAndDedupe) {
  Relation r = MakeRel(VarSet{0, 1}, {{2, 1}, {1, 1}, {2, 1}, {1, 0}});
  r.SortAndDedupe();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.Contains({1, 0}));
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_TRUE(r.Contains({2, 1}));
  EXPECT_FALSE(r.Contains({0, 0}));
}

std::vector<std::vector<Value>> RowsOf(const Relation& r) {
  std::vector<std::vector<Value>> out;
  out.reserve(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    out.emplace_back(r.Row(i), r.Row(i) + r.arity());
  }
  return out;
}

// SortAndDedupe routes every arity through the wide-key radix layer;
// the differential reference is the mathematical spec itself: sorted
// unique rows under signed lexicographic order.
TEST(RelationTest, WideSortAndDedupeMatchesReferenceAcrossArities) {
  Rng rng(31);
  for (int arity : {1, 2, 3, 5, 8, 16}) {
    const VarSet schema = VarSet::Full(arity);
    // Below and above the radix threshold (fallback and LSD regimes);
    // small signed domain -> dup-heavy rows and negative values.
    for (size_t n : {size_t{60}, size_t{5000}}) {
      Relation r(schema);
      std::vector<Value> row(arity);
      std::vector<std::vector<Value>> ref;
      ref.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        for (int c = 0; c < arity; ++c) {
          row[c] = static_cast<Value>(rng.Uniform(-6, 6));
        }
        r.AddRow(row.data());
        ref.push_back(row);
      }
      std::sort(ref.begin(), ref.end());
      ref.erase(std::unique(ref.begin(), ref.end()), ref.end());
      r.SortAndDedupe();
      EXPECT_EQ(RowsOf(r), ref) << "arity=" << arity << " n=" << n;
      // Idempotence: the presorted pre-scan must leave it unchanged.
      Relation again = r;
      again.SortAndDedupe();
      EXPECT_EQ(RowsOf(again), ref) << "arity=" << arity << " n=" << n;
    }
  }
}

TEST(RelationTest, WideSortAndDedupeExtremeValues) {
  // Full-int32 extremes exercise every key byte and the signed/unsigned
  // bias at both ends.
  Relation r = MakeRel(VarSet{0, 1, 2},
                       {{INT32_MAX, 0, INT32_MIN},
                        {INT32_MIN, INT32_MIN, INT32_MIN},
                        {-1, 1, 0},
                        {INT32_MIN, INT32_MIN, INT32_MIN},
                        {0, -1, INT32_MAX},
                        {INT32_MAX, INT32_MAX, INT32_MAX}});
  r.SortAndDedupe();
  const std::vector<std::vector<Value>> want = {
      {INT32_MIN, INT32_MIN, INT32_MIN},
      {-1, 1, 0},
      {0, -1, INT32_MAX},
      {INT32_MAX, 0, INT32_MIN},
      {INT32_MAX, INT32_MAX, INT32_MAX}};
  EXPECT_EQ(RowsOf(r), want);
}

TEST(RelationTest, ToStringClampsNegativeMaxRows) {
  Relation r = MakeRel(VarSet{0, 1}, {{1, 2}, {3, 4}, {5, 6}});
  // A negative max_rows used to widen to a huge size_t and print every
  // row; it must clamp to zero rows instead.
  EXPECT_EQ(r.ToString(-1), r.ToString(0));
  EXPECT_EQ(r.ToString(-1000000), r.ToString(0));
  EXPECT_EQ(r.ToString(-1).find("(1,2)"), std::string::npos);
  EXPECT_NE(r.ToString(2).find("(1,2)"), std::string::npos);
}

TEST(RelationTest, NullaryBooleanSemantics) {
  Relation false_rel(VarSet::Empty());
  EXPECT_TRUE(false_rel.empty());
  Relation true_rel(VarSet::Empty());
  true_rel.Add({});
  EXPECT_FALSE(true_rel.empty());
  EXPECT_EQ(true_rel.size(), 1u);
}

TEST(OpsTest, NaturalJoin) {
  // R(X,Y) join S(Y,Z).
  Relation r = MakeRel(VarSet{0, 1}, {{1, 10}, {2, 10}, {3, 20}});
  Relation s = MakeRel(VarSet{1, 2}, {{10, 100}, {20, 200}, {30, 300}});
  Relation j = Join(r, s);
  EXPECT_EQ(j.schema(), VarSet({0, 1, 2}));
  EXPECT_EQ(j.size(), 3u);
  EXPECT_TRUE(j.Contains({1, 10, 100}));
  EXPECT_TRUE(j.Contains({2, 10, 100}));
  EXPECT_TRUE(j.Contains({3, 20, 200}));
}

TEST(OpsTest, JoinNoSharedVarsIsCrossProduct) {
  Relation r = MakeRel(VarSet{0}, {{1}, {2}});
  Relation s = MakeRel(VarSet{1}, {{7}, {8}, {9}});
  EXPECT_EQ(Join(r, s).size(), 6u);
}

TEST(OpsTest, JoinWithNullary) {
  Relation r = MakeRel(VarSet{0}, {{1}, {2}});
  Relation t(VarSet::Empty());
  t.Add({});
  EXPECT_EQ(Join(r, t).size(), 2u);
  Relation f(VarSet::Empty());
  EXPECT_TRUE(Join(r, f).empty());
}

TEST(OpsTest, SemijoinAndAntijoinPartition) {
  Relation r = MakeRel(VarSet{0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  Relation s = MakeRel(VarSet{1}, {{10}, {30}});
  Relation semi = Semijoin(r, s);
  Relation anti = Antijoin(r, s);
  EXPECT_EQ(semi.size(), 2u);
  EXPECT_EQ(anti.size(), 1u);
  EXPECT_TRUE(anti.Contains({2, 20}));
  EXPECT_EQ(semi.size() + anti.size(), r.size());
}

TEST(OpsTest, ProjectDeduplicates) {
  Relation r = MakeRel(VarSet{0, 1}, {{1, 10}, {1, 20}, {2, 10}});
  Relation p = Project(r, VarSet{0});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.Contains({1}));
  EXPECT_TRUE(p.Contains({2}));
}

TEST(OpsTest, ProjectToNullaryIsExistence) {
  Relation r = MakeRel(VarSet{0}, {{5}});
  EXPECT_FALSE(Project(r, VarSet::Empty()).empty());
  Relation e(VarSet{0});
  EXPECT_TRUE(Project(e, VarSet::Empty()).empty());
}

TEST(OpsTest, UnionIntersect) {
  Relation a = MakeRel(VarSet{0}, {{1}, {2}});
  Relation b = MakeRel(VarSet{0}, {{2}, {3}});
  EXPECT_EQ(Union(a, b).size(), 3u);
  Relation i = Intersect(a, b);
  EXPECT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.Contains({2}));
}

TEST(OpsTest, JoinAssociativityOnRandomData) {
  Rng rng(3);
  Relation r = UniformRelation(VarSet{0, 1}, 80, 12, &rng);
  Relation s = UniformRelation(VarSet{1, 2}, 80, 12, &rng);
  Relation t = UniformRelation(VarSet{2, 3}, 80, 12, &rng);
  Relation left = Join(Join(r, s), t);
  Relation right = Join(r, Join(s, t));
  left.SortAndDedupe();
  right.SortAndDedupe();
  EXPECT_EQ(left.size(), right.size());
  for (size_t i = 0; i < left.size(); ++i) {
    std::vector<Value> row(left.Row(i), left.Row(i) + left.arity());
    EXPECT_TRUE(right.Contains(row));
  }
}

// ------------------------------------------- nullary/empty edge cases --

TEST(OpsEdgeTest, JoinWithEmptyRelation) {
  Relation r = MakeRel(VarSet{0, 1}, {{1, 10}});
  Relation e(VarSet{1, 2});
  EXPECT_TRUE(Join(r, e).empty());
  EXPECT_TRUE(Join(e, r).empty());
  EXPECT_EQ(Join(r, e).schema(), VarSet({0, 1, 2}));
}

TEST(OpsEdgeTest, JoinNullaryBothSides) {
  Relation t(VarSet::Empty());
  t.Add({});
  Relation f(VarSet::Empty());
  EXPECT_FALSE(Join(t, t).empty());  // true AND true
  EXPECT_TRUE(Join(t, f).empty());   // true AND false
  EXPECT_TRUE(Join(f, t).empty());
  EXPECT_TRUE(Join(f, f).empty());
}

TEST(OpsEdgeTest, SemijoinAntijoinEmptyAndNullary) {
  Relation r = MakeRel(VarSet{0}, {{1}, {2}});
  Relation e(VarSet{0});
  EXPECT_TRUE(Semijoin(r, e).empty());
  EXPECT_EQ(Antijoin(r, e).size(), 2u);
  EXPECT_TRUE(Semijoin(e, r).empty());
  EXPECT_TRUE(Antijoin(e, r).empty());
  Relation t(VarSet::Empty());
  t.Add({});
  Relation f(VarSet::Empty());
  EXPECT_EQ(Semijoin(r, t).size(), 2u);  // true keeps everything
  EXPECT_TRUE(Semijoin(r, f).empty());   // false drops everything
  EXPECT_TRUE(Antijoin(r, t).empty());
  EXPECT_EQ(Antijoin(r, f).size(), 2u);
}

TEST(OpsEdgeTest, ProjectEmptyInput) {
  Relation e(VarSet{0, 1});
  EXPECT_TRUE(Project(e, VarSet{0}).empty());
  EXPECT_TRUE(Project(e, VarSet::Empty()).empty());
  // Projection onto vars outside the schema ignores them.
  Relation r = MakeRel(VarSet{0, 1}, {{1, 10}});
  Relation p = Project(r, VarSet{1, 5});
  EXPECT_EQ(p.schema(), VarSet{1});
  EXPECT_EQ(p.size(), 1u);
}

TEST(OpsEdgeTest, UnionEmptyAndNullary) {
  Relation a = MakeRel(VarSet{0}, {{1}});
  Relation e(VarSet{0});
  EXPECT_EQ(Union(a, e).size(), 1u);
  EXPECT_EQ(Union(e, a).size(), 1u);
  EXPECT_TRUE(Union(e, e).empty());
  Relation t(VarSet::Empty());
  t.Add({});
  Relation f(VarSet::Empty());
  EXPECT_FALSE(Union(t, f).empty());  // true OR false
  EXPECT_TRUE(Union(f, f).empty());
}

// FlatSet capacity contract (flat_index.h): builders that presize — via
// the constructor or Reserve — never rehash mid-insert; under-provisioned
// incremental callers still grow safely.
TEST(FlatSetTest, PresizedBuildNeverRehashes) {
  FlatSet s(1000);
  const size_t cap = s.capacity();
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(s.Insert(k * 0x9e3779b97f4a7c15ULL));
  }
  EXPECT_EQ(s.capacity(), cap);
  EXPECT_EQ(s.size(), 1000u);
}

TEST(FlatSetTest, ReserveThenInsertKeepsCapacity) {
  FlatSet s;  // default: minimal table
  s.Reserve(5000);
  const size_t cap = s.capacity();
  EXPECT_GE(cap, 2 * 5000u);
  for (uint64_t k = 0; k < 5000; ++k) s.Insert(k);
  EXPECT_EQ(s.capacity(), cap);
  for (uint64_t k = 0; k < 5000; ++k) EXPECT_TRUE(s.Contains(k));
  EXPECT_FALSE(s.Contains(5000));
  // Reserving less than the current capacity is a no-op.
  s.Reserve(10);
  EXPECT_EQ(s.capacity(), cap);
}

// The grow_rehashes() stat distinguishes a planned Reserve resize from
// insert-time growth: the production builders (Project's dedup set, the
// clique pair sets) Reserve their row-count bound up front and must show
// zero — this is the stats-backed half of the presize-no-rehash contract.
TEST(FlatSetTest, GrowRehashCounterSeparatesPresizeFromGrowth) {
  FlatSet presized;
  presized.Reserve(4096);  // the PairSet / Project pattern
  for (uint64_t k = 0; k < 4096; ++k) {
    presized.Insert(k * 0x9e3779b97f4a7c15ULL);
  }
  EXPECT_EQ(presized.grow_rehashes(), 0);
  EXPECT_EQ(presized.size(), 4096u);

  FlatSet incremental;  // same keys, no presize: must have grown
  for (uint64_t k = 0; k < 4096; ++k) {
    incremental.Insert(k * 0x9e3779b97f4a7c15ULL);
  }
  EXPECT_GT(incremental.grow_rehashes(), 0);
  EXPECT_EQ(incremental.size(), 4096u);
}

TEST(FlatSetTest, UnderProvisionedGrowsAndKeepsContents) {
  FlatSet s(0);
  const size_t cap0 = s.capacity();
  for (uint64_t k = 0; k < 10000; ++k) {
    EXPECT_TRUE(s.Insert(k ^ 0xdeadbeefULL));
  }
  EXPECT_GT(s.capacity(), cap0);
  EXPECT_EQ(s.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    EXPECT_TRUE(s.Contains(k ^ 0xdeadbeefULL));
    EXPECT_FALSE(s.Insert(k ^ 0xdeadbeefULL));  // duplicate
  }
  // Reserve after growth mid-stream also works (rehash preserves keys).
  s.Reserve(40000);
  for (uint64_t k = 0; k < 10000; ++k) {
    EXPECT_TRUE(s.Contains(k ^ 0xdeadbeefULL));
  }
}

TEST(OpsEdgeTest, IntersectEmpty) {
  Relation a = MakeRel(VarSet{0}, {{1}, {2}});
  Relation e(VarSet{0});
  EXPECT_TRUE(Intersect(a, e).empty());
  EXPECT_TRUE(Intersect(e, a).empty());
}

TEST(OpsEdgeTest, SelectEqEmptyInputAndNoMatch) {
  Relation e(VarSet{0, 1});
  EXPECT_TRUE(SelectEq(e, 0, 5).empty());
  Relation r = MakeRel(VarSet{0, 1}, {{1, 10}});
  EXPECT_TRUE(SelectEq(r, 0, 2).empty());
  EXPECT_EQ(SelectEq(r, 0, 1).size(), 1u);
}

// Contract: SelectEq is a pure filter — it preserves duplicate input
// tuples instead of deduplicating like the set-producing ops (see ops.h).
TEST(OpsEdgeTest, SelectEqPreservesMultiplicity) {
  Relation r = MakeRel(VarSet{0, 1}, {{1, 10}, {1, 10}, {2, 20}});
  EXPECT_EQ(SelectEq(r, 0, 1).size(), 2u);
  // Union over the same input dedupes (set semantics).
  EXPECT_EQ(Union(r, r).size(), 2u);
}

TEST(OpsEdgeTest, JoinSetSemanticsOption) {
  // Duplicate-carrying inputs: default Join keeps the duplicate pairs,
  // set_semantics collapses them.
  Relation r = MakeRel(VarSet{0, 1}, {{1, 10}, {1, 10}});
  Relation s = MakeRel(VarSet{1, 2}, {{10, 100}});
  EXPECT_EQ(Join(r, s).size(), 2u);
  EXPECT_EQ(Join(r, s, JoinOpts{.set_semantics = true}).size(), 1u);
}

// ------------------------------------------------- differential tests --

/// Reference nested-loop natural join (no hashing, no indexes).
Relation NaiveJoin(const Relation& a, const Relation& b) {
  const std::vector<int> shared = (a.schema() & b.schema()).Members();
  const VarSet out_schema = a.schema() | b.schema();
  Relation out(out_schema);
  const std::vector<int> out_vars = out_schema.Members();
  std::vector<Value> tuple(out_vars.size());
  for (size_t ra = 0; ra < a.size(); ++ra) {
    for (size_t rb = 0; rb < b.size(); ++rb) {
      bool match = true;
      for (int v : shared) {
        if (a.Get(ra, v) != b.Get(rb, v)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      for (size_t i = 0; i < out_vars.size(); ++i) {
        const int v = out_vars[i];
        tuple[i] = a.schema().Contains(v) ? a.Get(ra, v) : b.Get(rb, v);
      }
      out.Add(tuple);
    }
  }
  return out;
}

/// Reference semijoin/antijoin by nested-loop matching.
Relation NaiveFilter(const Relation& a, const Relation& b, bool keep) {
  const std::vector<int> shared = (a.schema() & b.schema()).Members();
  Relation out(a.schema());
  for (size_t ra = 0; ra < a.size(); ++ra) {
    bool match = false;
    for (size_t rb = 0; rb < b.size() && !match; ++rb) {
      match = true;
      for (int v : shared) {
        if (a.Get(ra, v) != b.Get(rb, v)) {
          match = false;
          break;
        }
      }
    }
    if (match == keep) out.AddRow(a.Row(ra));
  }
  return out;
}

void ExpectSameSet(Relation got, Relation want, const char* what) {
  got.SortAndDedupe();
  want.SortAndDedupe();
  ASSERT_EQ(got.size(), want.size()) << what;
  ASSERT_EQ(got.schema(), want.schema()) << what;
  for (size_t r = 0; r < got.size(); ++r) {
    for (int c = 0; c < got.arity(); ++c) {
      ASSERT_EQ(got.Row(r)[c], want.Row(r)[c]) << what << " row " << r;
    }
  }
}

TEST(OpsDifferentialTest, FlatJoinMatchesNaiveReference) {
  Rng rng(17);
  // Shared-key widths 1, 2 and 3 — width 3 exercises the non-injective
  // hashed-key path of the flat index (candidate verification).
  const struct {
    VarSet sa, sb;
  } shapes[] = {
      {VarSet{0, 1}, VarSet{1, 2}},
      {VarSet{0, 1, 2}, VarSet{1, 2, 3}},
      {VarSet{0, 1, 2, 3}, VarSet{1, 2, 3, 4}},
      {VarSet{0}, VarSet{1}},  // no shared vars: cross product
  };
  for (const auto& shape : shapes) {
    for (int trial = 0; trial < 4; ++trial) {
      Relation a = UniformRelation(shape.sa, 120, 4, &rng);
      Relation b = UniformRelation(shape.sb, 120, 4, &rng);
      ExpectSameSet(Join(a, b), NaiveJoin(a, b), "join");
      ExpectSameSet(Semijoin(a, b), NaiveFilter(a, b, true), "semijoin");
      ExpectSameSet(Antijoin(a, b), NaiveFilter(a, b, false), "antijoin");
    }
  }
}

TEST(OpsDifferentialTest, SemijoinAntijoinPartitionRandom) {
  Rng rng(18);
  Relation a = UniformRelation(VarSet{0, 1, 2}, 300, 6, &rng);
  Relation b = UniformRelation(VarSet{1, 2, 3}, 300, 6, &rng);
  EXPECT_EQ(Semijoin(a, b).size() + Antijoin(a, b).size(), a.size());
}

// ------------------------------------------------------------- degrees --

TEST(DegreeTest, DefinitionE9) {
  // R(X=0, Y=1): X-value 1 has 3 Y's, value 2 has 1.
  Relation r =
      MakeRel(VarSet{0, 1}, {{1, 10}, {1, 20}, {1, 30}, {2, 10}});
  EXPECT_EQ(Degree(r, VarSet{1}, VarSet{0}), 3);
  EXPECT_EQ(Degree(r, VarSet{0}, VarSet{1}), 2);  // Y=10 pairs with X=1,2
  // Unconditional: number of distinct Y values overall.
  EXPECT_EQ(Degree(r, VarSet{1}, VarSet::Empty()), 3);
  EXPECT_EQ(Degree(r, VarSet{0, 1}, VarSet::Empty()), 4);
}

TEST(DegreeTest, PartitionHeavyLight) {
  Relation r = MakeRel(VarSet{0, 1},
                       {{1, 10}, {1, 20}, {1, 30}, {2, 10}, {3, 10}, {3, 20}});
  auto part = PartitionByDegree(r, VarSet{1}, VarSet{0}, 2);
  // X=1 has degree 3 > 2 -> heavy; X=2 (1), X=3 (2) -> light.
  EXPECT_EQ(part.heavy.schema(), VarSet{0});
  EXPECT_EQ(part.heavy.size(), 1u);
  EXPECT_TRUE(part.heavy.Contains({1}));
  EXPECT_EQ(part.light.size(), 3u);
  // Invariants of the Decomposition Step: the light part's degree is
  // bounded by the threshold.
  EXPECT_LE(Degree(part.light, VarSet{1}, VarSet{0}), 2);
}

TEST(DegreeTest, PartitionSizesBound) {
  // |heavy| <= |R| / threshold (Section 2.5).
  Rng rng(9);
  Relation r = ZipfRelation(VarSet{0, 1}, 4000, 500, 1.3, &rng);
  for (int64_t thresh : {2, 8, 32}) {
    auto part = PartitionByDegree(r, VarSet{1}, VarSet{0}, thresh);
    EXPECT_LE(part.heavy.size(), r.size() / thresh + 1) << thresh;
    EXPECT_LE(Degree(part.light, VarSet{1}, VarSet{0}), thresh);
  }
}

TEST(DegreeTest, BucketsCoverRelation) {
  Rng rng(10);
  Relation r = ZipfRelation(VarSet{0, 1}, 2000, 300, 1.2, &rng);
  auto buckets = DegreeBuckets(r, VarSet{1}, VarSet{0});
  size_t total = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    total += buckets[i].size();
    if (buckets[i].empty()) continue;
    const int64_t deg = Degree(buckets[i], VarSet{1}, VarSet{0});
    EXPECT_LT(deg, 1LL << (i + 1));
  }
  EXPECT_EQ(total, r.size());
  EXPECT_LE(buckets.size(), 1 + static_cast<size_t>(std::log2(r.size())) + 1);
}

// ----------------------------------------------------------- generators --

TEST(GeneratorTest, UniformBounds) {
  Rng rng(1);
  Relation r = UniformRelation(VarSet{0, 1}, 500, 50, &rng);
  EXPECT_LE(r.size(), 500u);
  EXPECT_GT(r.size(), 300u);  // few collisions at domain 50x50
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_GE(r.Row(i)[0], 0);
    EXPECT_LT(r.Row(i)[0], 50);
  }
}

TEST(GeneratorTest, DenseDensity) {
  Rng rng(2);
  Relation r = DenseRelation(VarSet{0, 1}, 40, 0.5, &rng);
  EXPECT_GT(r.size(), 600u);
  EXPECT_LT(r.size(), 1000u);
}

TEST(GeneratorTest, PlantedWitnessMakesQueryTrue) {
  WorkloadOptions opts;
  opts.tuples_per_relation = 30;
  opts.domain = 1000;  // sparse: almost surely no triangle by chance
  opts.plant_witness = true;
  Hypergraph tri = Hypergraph::Triangle();
  QueryInput db = MakeWorkload(tri, opts);
  EXPECT_TRUE(BruteForceBoolean(tri, db));
  opts.plant_witness = false;
  QueryInput db2 = MakeWorkload(tri, opts);
  EXPECT_FALSE(BruteForceBoolean(tri, db2));
}

TEST(GeneratorTest, WorkloadHasOneRelationPerEdge) {
  Hypergraph h = Hypergraph::Pyramid(3);
  WorkloadOptions opts;
  opts.tuples_per_relation = 50;
  opts.domain = 20;
  QueryInput db = MakeWorkload(h, opts);
  ASSERT_EQ(db.relations.size(), h.edges().size());
  for (size_t e = 0; e < h.edges().size(); ++e) {
    EXPECT_EQ(db.relations[e].schema(), h.edges()[e]);
  }
}

TEST(GeneratorTest, DeterministicSeeds) {
  WorkloadOptions opts;
  opts.tuples_per_relation = 100;
  opts.domain = 30;
  opts.seed = 7;
  Hypergraph h = Hypergraph::Cycle(4);
  QueryInput a = MakeWorkload(h, opts);
  QueryInput b = MakeWorkload(h, opts);
  for (size_t e = 0; e < a.relations.size(); ++e) {
    EXPECT_EQ(a.relations[e].size(), b.relations[e].size());
  }
}

}  // namespace
}  // namespace fmmsw
