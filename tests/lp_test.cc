// Tests for the two-phase simplex (double and exact-rational modes):
// hand-checked LPs, duality, degenerate/infeasible/unbounded cases, and a
// randomized cross-check between the two solvers.

#include <vector>

#include "gtest/gtest.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/random.h"
#include "util/rational.h"

namespace fmmsw {
namespace {

template <typename T>
LpModel<T> MakeProductionLp() {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic; opt 36).
  LpModel<T> m;
  int x = m.AddVar(), y = m.AddVar();
  m.AddObjective(x, T(3));
  m.AddObjective(y, T(5));
  m.AddRow(Sense::kLe, T(4)).coeffs = {{x, T(1)}};
  m.AddRow(Sense::kLe, T(12)).coeffs = {{y, T(2)}};
  m.AddRow(Sense::kLe, T(18)).coeffs = {{x, T(3)}, {y, T(2)}};
  return m;
}

TEST(SimplexDoubleTest, ClassicProductionLp) {
  auto res = SolveSimplex(MakeProductionLp<double>());
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 36.0, 1e-9);
  EXPECT_NEAR(res.primal[0], 2.0, 1e-9);
  EXPECT_NEAR(res.primal[1], 6.0, 1e-9);
}

TEST(SimplexExactTest, ClassicProductionLp) {
  auto res = SolveSimplex(MakeProductionLp<Rational>());
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_EQ(res.objective, Rational(36));
  EXPECT_EQ(res.primal[0], Rational(2));
  EXPECT_EQ(res.primal[1], Rational(6));
}

TEST(SimplexExactTest, DualsSatisfyStrongDuality) {
  auto model = MakeProductionLp<Rational>();
  auto res = SolveSimplex(model);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  // Strong duality: y.b == objective, and y >= 0 for <= rows of a max LP.
  Rational yb(0);
  for (size_t i = 0; i < model.rows.size(); ++i) {
    EXPECT_GE(res.duals[i], Rational(0));
    yb += res.duals[i] * model.rows[i].rhs;
  }
  EXPECT_EQ(yb, res.objective);
  // Dual feasibility: for each variable j, sum_i y_i a_ij >= c_j.
  for (int j = 0; j < model.num_vars; ++j) {
    Rational lhs(0);
    for (size_t i = 0; i < model.rows.size(); ++i) {
      for (const auto& [var, coeff] : model.rows[i].coeffs) {
        if (var == j) lhs += res.duals[i] * coeff;
      }
    }
    Rational cj(0);
    for (const auto& [var, coeff] : model.objective) {
      if (var == j) cj += coeff;
    }
    EXPECT_GE(lhs, cj);
  }
}

TEST(SimplexExactTest, GeRowsAndEquality) {
  // min x + 2y s.t. x + y >= 3, x - y == 1, x,y >= 0. Optimum x=2, y=1 -> 4.
  LpModel<Rational> m;
  m.maximize = false;
  int x = m.AddVar(), y = m.AddVar();
  m.AddObjective(x, Rational(1));
  m.AddObjective(y, Rational(2));
  m.AddRow(Sense::kGe, Rational(3)).coeffs = {{x, Rational(1)},
                                              {y, Rational(1)}};
  m.AddRow(Sense::kEq, Rational(1)).coeffs = {{x, Rational(1)},
                                              {y, Rational(-1)}};
  auto res = SolveSimplex(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_EQ(res.objective, Rational(4));
  EXPECT_EQ(res.primal[0], Rational(2));
  EXPECT_EQ(res.primal[1], Rational(1));
}

TEST(SimplexExactTest, Infeasible) {
  LpModel<Rational> m;
  int x = m.AddVar();
  m.AddObjective(x, Rational(1));
  m.AddRow(Sense::kLe, Rational(1)).coeffs = {{x, Rational(1)}};
  m.AddRow(Sense::kGe, Rational(2)).coeffs = {{x, Rational(1)}};
  EXPECT_EQ(SolveSimplex(m).status, LpStatus::kInfeasible);
}

TEST(SimplexExactTest, Unbounded) {
  LpModel<Rational> m;
  int x = m.AddVar(), y = m.AddVar();
  m.AddObjective(x, Rational(1));
  m.AddRow(Sense::kLe, Rational(5)).coeffs = {{y, Rational(1)}};
  EXPECT_EQ(SolveSimplex(m).status, LpStatus::kUnbounded);
}

TEST(SimplexExactTest, NegativeRhsNormalization) {
  // max -x s.t. -x <= -2 (i.e. x >= 2). Optimum -2 at x=2.
  LpModel<Rational> m;
  int x = m.AddVar();
  m.AddObjective(x, Rational(-1));
  m.AddRow(Sense::kLe, Rational(-2)).coeffs = {{x, Rational(-1)}};
  auto res = SolveSimplex(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_EQ(res.objective, Rational(-2));
  EXPECT_EQ(res.primal[0], Rational(2));
}

TEST(SimplexExactTest, DegenerateVertexTerminates) {
  // A classic degenerate LP (multiple bases at the optimum); Bland's rule
  // must still terminate with the right value.
  LpModel<Rational> m;
  int x = m.AddVar(), y = m.AddVar(), z = m.AddVar();
  m.AddObjective(x, Rational(2));
  m.AddObjective(y, Rational(3));
  m.AddObjective(z, Rational(1));
  m.AddRow(Sense::kLe, Rational(0)).coeffs = {
      {x, Rational(1)}, {y, Rational(1)}, {z, Rational(-2)}};
  m.AddRow(Sense::kLe, Rational(2)).coeffs = {{z, Rational(1)}};
  m.AddRow(Sense::kLe, Rational(4)).coeffs = {{x, Rational(1)},
                                              {y, Rational(2)}};
  auto res = SolveSimplex(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  // z = 2 allows x + y <= 4 and x + 2y <= 4; best corner is x = 4, y = 0,
  // giving 2*4 + 3*0 + 1*2 = 10.
  EXPECT_EQ(res.objective, Rational(10));
}

TEST(SimplexExactTest, FractionalAnswerIsExact) {
  // max t s.t. t <= h, t <= 3 - 2h  -> optimum t = h = 1 at h = 1 (t=1)?
  // Actually equalize: h = 3 - 2h -> h = 1, t = 1. Use coefficients that
  // force a non-integer answer instead: t <= h, t <= 2 - 3h ->
  // h = 1/2, t = 1/2.
  LpModel<Rational> m;
  int t = m.AddVar(), h = m.AddVar();
  m.AddObjective(t, Rational(1));
  m.AddRow(Sense::kLe, Rational(0)).coeffs = {{t, Rational(1)},
                                              {h, Rational(-1)}};
  m.AddRow(Sense::kLe, Rational(2)).coeffs = {{t, Rational(1)},
                                              {h, Rational(3)}};
  auto res = SolveSimplex(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_EQ(res.objective, Rational(1, 2));
}

TEST(SimplexCrossCheckTest, RandomSmallLpsAgree) {
  Rng rng(99);
  int optimal_seen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    LpModel<Rational> em;
    LpModel<double> dm;
    const int n = static_cast<int>(rng.Uniform(1, 4));
    const int rows = static_cast<int>(rng.Uniform(1, 6));
    for (int j = 0; j < n; ++j) {
      em.AddVar();
      dm.AddVar();
      int64_t c = rng.Uniform(-4, 4);
      em.AddObjective(j, Rational(c));
      dm.AddObjective(j, static_cast<double>(c));
    }
    for (int i = 0; i < rows; ++i) {
      int64_t b = rng.Uniform(0, 10);
      Sense s = rng.Flip(0.7) ? Sense::kLe : Sense::kGe;
      if (s == Sense::kGe) b = rng.Uniform(0, 3);
      auto& er = em.AddRow(s, Rational(b));
      auto& dr = dm.AddRow(s, static_cast<double>(b));
      for (int j = 0; j < n; ++j) {
        int64_t a = rng.Uniform(-2, 4);
        if (a == 0) continue;
        er.coeffs.emplace_back(j, Rational(a));
        dr.coeffs.emplace_back(j, static_cast<double>(a));
      }
    }
    auto re = SolveSimplex(em);
    auto rd = SolveSimplex(dm);
    ASSERT_EQ(re.status, rd.status) << "trial " << trial;
    if (re.status == LpStatus::kOptimal) {
      ++optimal_seen;
      EXPECT_NEAR(re.objective.ToDouble(), rd.objective, 1e-6)
          << "trial " << trial;
    }
  }
  EXPECT_GT(optimal_seen, 20);  // the generator must exercise the main path
}

TEST(SimplexOptionsTest, PivotLimitIsRecoverable) {
  // A tiny budget must surface as LpStatus::kPivotLimit — a status the
  // caller can handle — not a process abort.
  SimplexOptions opts;
  opts.max_pivots = 1;
  auto res = SolveSimplex(MakeProductionLp<Rational>(), nullptr, opts);
  EXPECT_EQ(res.status, LpStatus::kPivotLimit);
  // The same model solves fine once the budget is restored.
  opts.max_pivots = 200000;
  EXPECT_EQ(SolveSimplex(MakeProductionLp<Rational>(), nullptr, opts).status,
            LpStatus::kOptimal);
}

TEST(WarmStartTest, ReplaysPreviousBasis) {
  WarmStart ws;
  SimplexOptions opts;
  auto first = SolveSimplex(MakeProductionLp<Rational>(), &ws, opts);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  EXPECT_FALSE(first.warm_started);
  ASSERT_TRUE(ws.valid);
  // Re-solving the same model from its own optimal basis takes 0 pivots.
  auto second = SolveSimplex(MakeProductionLp<Rational>(), &ws, opts);
  ASSERT_EQ(second.status, LpStatus::kOptimal);
  EXPECT_TRUE(second.warm_started);
  EXPECT_EQ(second.pivots, 0);
  EXPECT_EQ(second.objective, first.objective);
}

TEST(WarmStartTest, GarbageBasisFallsBackToColdStart) {
  WarmStart ws;
  auto first = SolveSimplex(MakeProductionLp<Rational>(), &ws);
  ASSERT_TRUE(ws.valid);
  // Corrupt the snapshot: every row claims column 0. The replay is
  // singular, so the solve must silently cold-start and still be right.
  for (int& c : ws.basis_cols) c = 0;
  auto res = SolveSimplex(MakeProductionLp<Rational>(), &ws);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_FALSE(res.warm_started);
  EXPECT_EQ(res.objective, first.objective);
  EXPECT_TRUE(ws.valid);  // refreshed from the (cold) optimal solve
}

TEST(WarmStartTest, ShapeMismatchFallsBackToColdStart) {
  WarmStart ws;
  SolveSimplex(MakeProductionLp<Rational>(), &ws);
  ASSERT_TRUE(ws.valid);
  // A model with one extra row cannot reuse the snapshot.
  auto m = MakeProductionLp<Rational>();
  m.AddRow(Sense::kLe, Rational(100)).coeffs = {{0, Rational(1)}};
  auto res = SolveSimplex(m, &ws);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_FALSE(res.warm_started);
  EXPECT_EQ(res.objective, Rational(36));
}

// The warm-start contract the planner relies on: over a chain of
// perturbed models sharing one constraint shape, a warm-started solve
// with lex canonicalization returns *identical* objective, primal, and
// duals to a cold solve of the same model — the basis replay can only
// change the pivot path, never the answer. Rational mode demands exact
// equality; double mode allows the last-ulp drift different pivot
// orders accumulate.
void ExpectSameValue(const Rational& a, const Rational& b) {
  EXPECT_EQ(a, b);
}
void ExpectSameValue(double a, double b) { EXPECT_NEAR(a, b, 1e-9); }

template <typename T>
void RunWarmVsColdDifferential() {
  Rng rng(4242);
  SimplexOptions opts;
  opts.lex_canonical = true;
  int warm_hits = 0;
  long cold_pivots = 0, warm_pivots = 0;
  for (int family = 0; family < 8; ++family) {
    const int n = static_cast<int>(rng.Uniform(2, 5));
    const int rows = static_cast<int>(rng.Uniform(2, 6));
    // Base shape: random <= rows plus a box per variable, so every
    // perturbed instance stays feasible (origin) and bounded.
    std::vector<std::vector<int64_t>> a(rows, std::vector<int64_t>(n));
    for (auto& row : a) {
      for (int64_t& v : row) v = rng.Uniform(-2, 4);
    }
    std::vector<int64_t> c(n), b(rows);
    for (int64_t& v : c) v = rng.Uniform(0, 5);
    for (int64_t& v : b) v = rng.Uniform(2, 10);

    WarmStart ws;
    for (int step = 0; step < 6; ++step) {
      LpModel<T> m;
      for (int j = 0; j < n; ++j) {
        m.AddVar();
        m.AddObjective(j, T(c[j]));
      }
      for (int i = 0; i < rows; ++i) {
        auto& r = m.AddRow(Sense::kLe, T(b[i]));
        for (int j = 0; j < n; ++j) {
          if (a[i][j] != 0) r.coeffs.emplace_back(j, T(a[i][j]));
        }
      }
      for (int j = 0; j < n; ++j) {
        m.AddRow(Sense::kLe, T(12)).coeffs = {{j, T(1)}};
      }
      auto cold = SolveSimplex(m, nullptr, opts);
      auto warm = SolveSimplex(m, &ws, opts);
      ASSERT_EQ(cold.status, warm.status) << "family " << family;
      if (cold.status == LpStatus::kOptimal) {
        ExpectSameValue(cold.objective, warm.objective);
        ASSERT_EQ(cold.primal.size(), warm.primal.size());
        for (size_t j = 0; j < cold.primal.size(); ++j) {
          ExpectSameValue(cold.primal[j], warm.primal[j]);
        }
        ASSERT_EQ(cold.duals.size(), warm.duals.size());
        for (size_t i = 0; i < cold.duals.size(); ++i) {
          ExpectSameValue(cold.duals[i], warm.duals[i]);
        }
        cold_pivots += cold.pivots;
        warm_pivots += warm.pivots;
        if (warm.warm_started) ++warm_hits;
      }
      // Perturb rhs and objective; the shape (and thus the warm basis
      // structure) is unchanged.
      for (int64_t& v : b) v = rng.Uniform(2, 10);
      for (int64_t& v : c) v = rng.Uniform(0, 5);
    }
  }
  EXPECT_GT(warm_hits, 10);  // the chain must actually replay bases
  EXPECT_LT(warm_pivots, cold_pivots);  // ...and save pivots overall
}

TEST(WarmStartTest, WarmVsColdDifferentialExact) {
  RunWarmVsColdDifferential<Rational>();
}

TEST(WarmStartTest, WarmVsColdDifferentialDouble) {
  RunWarmVsColdDifferential<double>();
}

TEST(ToExactModelTest, SnapsSimpleFractions) {
  LpModel<double> dm;
  int x = dm.AddVar();
  dm.AddObjective(x, 0.5);
  dm.AddRow(Sense::kLe, 1.0 / 3.0).coeffs = {{x, 2.0 / 7.0}};
  auto em = ToExactModel(dm);
  EXPECT_EQ(em.objective[0].second, Rational(1, 2));
  EXPECT_EQ(em.rows[0].rhs, Rational(1, 3));
  EXPECT_EQ(em.rows[0].coeffs[0].second, Rational(2, 7));
}

}  // namespace
}  // namespace fmmsw
