// Unit and property tests for src/util: VarSet, BigInt, Rational, Rng,
// and the radix-sort stability contracts (keyed pairs and the wide-key
// record sorter behind the data plane's packed row sorts).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/bigint.h"
#include "util/parallel.h"
#include "util/radix.h"
#include "util/random.h"
#include "util/rational.h"
#include "util/varset.h"

namespace fmmsw {
namespace {

// ---------------------------------------------------------------- VarSet --

TEST(VarSetTest, BasicOps) {
  VarSet a{0, 2, 5};
  EXPECT_EQ(a.size(), 3);
  EXPECT_TRUE(a.Contains(0));
  EXPECT_TRUE(a.Contains(2));
  EXPECT_FALSE(a.Contains(1));
  VarSet b{2, 3};
  EXPECT_EQ((a | b).size(), 4);
  EXPECT_EQ((a & b), VarSet({2}));
  EXPECT_EQ((a - b), VarSet({0, 5}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(VarSet{1, 3}));
  EXPECT_TRUE(a.ContainsAll(VarSet{0, 5}));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(VarSetTest, EmptyAndFull) {
  EXPECT_TRUE(VarSet::Empty().empty());
  EXPECT_EQ(VarSet::Full(4).size(), 4);
  EXPECT_EQ(VarSet::Full(4).mask(), 0xfu);
  EXPECT_EQ(VarSet::Singleton(3).mask(), 8u);
}

TEST(VarSetTest, MembersRoundTrip) {
  VarSet a{1, 4, 7, 9};
  auto members = a.Members();
  VarSet b;
  for (int v : members) b.Add(v);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.First(), 1);
}

TEST(VarSetTest, ToString) {
  std::vector<std::string> names = {"X", "Y", "Z"};
  EXPECT_EQ(VarSet({0, 2}).ToString(&names), "{X,Z}");
  EXPECT_EQ(VarSet({0, 2}).ToString(), "{0,2}");
  EXPECT_EQ(VarSet::Empty().ToString(), "{}");
}

TEST(VarSetTest, SubsetsEnumeratesAll) {
  VarSet u{0, 1, 3};
  std::set<uint32_t> seen;
  for (VarSet s : Subsets(u)) {
    EXPECT_TRUE(u.ContainsAll(s));
    seen.insert(s.mask());
  }
  EXPECT_EQ(seen.size(), 8u);  // 2^3 subsets
}

TEST(VarSetTest, SubsetsOfEmpty) {
  int count = 0;
  for (VarSet s : Subsets(VarSet::Empty())) {
    EXPECT_TRUE(s.empty());
    ++count;
  }
  EXPECT_EQ(count, 1);
}

// ---------------------------------------------------------------- BigInt --

TEST(BigIntTest, SmallArithmetic) {
  BigInt a(12), b(-5);
  EXPECT_EQ((a + b).ToInt64(), 7);
  EXPECT_EQ((a - b).ToInt64(), 17);
  EXPECT_EQ((a * b).ToInt64(), -60);
  EXPECT_EQ((a / b).ToInt64(), -2);   // truncation toward zero
  EXPECT_EQ((a % b).ToInt64(), 2);    // sign follows dividend
  EXPECT_EQ((b % a).ToInt64(), -5);
}

TEST(BigIntTest, Zero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.Sign(), 0);
  EXPECT_EQ((z + BigInt(3)).ToInt64(), 3);
  EXPECT_EQ((BigInt(3) * z).ToInt64(), 0);
  EXPECT_EQ((-z).ToInt64(), 0);
}

TEST(BigIntTest, Int64Extremes) {
  BigInt max_v(INT64_MAX), min_v(INT64_MIN);
  EXPECT_EQ(max_v.ToInt64(), INT64_MAX);
  EXPECT_EQ(min_v.ToInt64(), INT64_MIN);
  EXPECT_FALSE((max_v + BigInt(1)).FitsInt64());
  EXPECT_FALSE((min_v - BigInt(1)).FitsInt64());
  EXPECT_EQ(max_v.ToString(), "9223372036854775807");
  EXPECT_EQ(min_v.ToString(), "-9223372036854775808");
}

TEST(BigIntTest, LargeMultiplyAndDivide) {
  // (2^80 + 17) and verify divmod round trips.
  BigInt two_80(1);
  for (int i = 0; i < 80; ++i) two_80 = two_80 * BigInt(2);
  BigInt v = two_80 + BigInt(17);
  BigInt d(1000003);
  BigInt q, r;
  BigInt::DivMod(v, d, &q, &r);
  EXPECT_EQ(q * d + r, v);
  EXPECT_TRUE(r.Abs() < d.Abs());
  EXPECT_EQ(v.ToString(), "1208925819614629174706193");
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-3), BigInt(2));
  EXPECT_LT(BigInt(-3), BigInt(-2));
  EXPECT_LT(BigInt(2), BigInt(3));
  BigInt big = BigInt(1) ;
  for (int i = 0; i < 100; ++i) big = big * BigInt(3);
  EXPECT_GT(big, BigInt(INT64_MAX));
  EXPECT_LT(-big, BigInt(INT64_MIN));
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(0)).ToInt64(), 7);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToInt64(), 0);
  EXPECT_EQ(BigInt::Gcd(BigInt(1) , BigInt(INT64_MAX)).ToInt64(), 1);
}

TEST(BigIntTest, DivModRandomizedRoundTrip) {
  Rng rng(7);
  for (int t = 0; t < 200; ++t) {
    BigInt a(rng.Uniform(-1000000000, 1000000000));
    BigInt b(rng.Uniform(-1000000000, 1000000000));
    a = a * BigInt(rng.Uniform(-1000000, 1000000));
    if (b.IsZero()) continue;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
  }
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1 << 20).ToDouble(), 1048576.0);
  EXPECT_DOUBLE_EQ(BigInt(-42).ToDouble(), -42.0);
}

// -------------------------------------------------------------- Rational --

TEST(RationalTest, NormalizationInvariant) {
  Rational r(6, -8);
  EXPECT_EQ(r.ToString(), "-3/4");
  EXPECT_EQ(Rational(0, 17).ToString(), "0");
  EXPECT_EQ(Rational(4, 2).ToString(), "2");
}

TEST(RationalTest, Arithmetic) {
  Rational a(1, 3), b(1, 6);
  EXPECT_EQ((a + b), Rational(1, 2));
  EXPECT_EQ((a - b), Rational(1, 6));
  EXPECT_EQ((a * b), Rational(1, 18));
  EXPECT_EQ((a / b), Rational(2));
  EXPECT_EQ((-a), Rational(-1, 3));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(5, 3), Rational(3, 2));
  EXPECT_EQ(Rational::Min(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
  EXPECT_EQ(Rational::Max(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
}

TEST(RationalTest, TriangleWidthFormulaExact) {
  // 2w/(w+1) at w = 2371552/1000000 — the paper's headline triangle width.
  Rational w(2371552, 1000000);
  Rational width = (Rational(2) * w) / (w + Rational(1));
  EXPECT_EQ(width, Rational(2 * 2371552, 3371552));
  EXPECT_NEAR(width.ToDouble(), 1.406804, 1e-5);
}

TEST(RationalTest, Parse) {
  EXPECT_EQ(Rational::Parse("3/4"), Rational(3, 4));
  EXPECT_EQ(Rational::Parse("-7"), Rational(-7));
  EXPECT_EQ(Rational::Parse("2371552/1000000"), Rational(2371552, 1000000));
}

TEST(RationalTest, RandomizedFieldAxioms) {
  Rng rng(13);
  for (int t = 0; t < 100; ++t) {
    Rational a(rng.Uniform(-50, 50), rng.Uniform(1, 20));
    Rational b(rng.Uniform(-50, 50), rng.Uniform(1, 20));
    Rational c(rng.Uniform(-50, 50), rng.Uniform(1, 20));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!b.IsZero()) {
      EXPECT_EQ((a / b) * b, a);
    }
  }
}

// ------------------------------------------------------------- RadixSort --

/// Keys with many duplicates and payloads deliberately NOT monotone in
/// input order, so an unstable sort (or one that tiebreaks on the
/// payload) is caught: the contract is "equal keys keep their input
/// order", i.e. the result must match std::stable_sort by key only.
std::vector<std::pair<uint64_t, uint32_t>> NonMonotoneKeyed(size_t n,
                                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint32_t>> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Few distinct keys -> long equal-key groups; payloads descending
    // then arbitrary, so payload order contradicts input order.
    const uint64_t key = static_cast<uint64_t>(rng.Uniform(0, 13)) << 17;
    const uint32_t payload = static_cast<uint32_t>(
        (n - i) * 7 + static_cast<size_t>(rng.Uniform(0, 3)));
    v.push_back({key, payload});
  }
  return v;
}

void ExpectStableByKey(std::vector<std::pair<uint64_t, uint32_t>> v) {
  std::vector<std::pair<uint64_t, uint32_t>> ref = v;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const std::pair<uint64_t, uint32_t>& a,
                      const std::pair<uint64_t, uint32_t>& b) {
                     return a.first < b.first;
                   });
  RadixSortKeyed(v);
  EXPECT_EQ(v, ref);
}

TEST(RadixSortTest, KeyedStableOnSmallInputFallback) {
  ASSERT_LT(300u, kRadixMinN);  // exercises the std::sort fallback path
  ExpectStableByKey(NonMonotoneKeyed(300, 5));
}

TEST(RadixSortTest, KeyedStableOnLsdPath) {
  const size_t n = kRadixMinN * 2;  // exercises the counting-pass path
  ExpectStableByKey(NonMonotoneKeyed(n, 6));
}

TEST(RadixSortTest, LsdSortHandlesEmptyInput) {
  std::vector<uint64_t> v, scratch;
  radix_internal::LsdSort(v, scratch, 8, [](uint64_t x) { return x; });
  EXPECT_TRUE(v.empty());
  std::vector<std::pair<uint64_t, uint32_t>> kv, kscratch;
  radix_internal::LsdSort(kv, kscratch, 8,
                          [](const std::pair<uint64_t, uint32_t>& x) {
                            return x.first;
                          });
  EXPECT_TRUE(kv.empty());
}

// ---------------------------------------------------- RadixSortRecords --

uint64_t RandomWord(Rng* rng) {
  return (static_cast<uint64_t>(rng->Uniform(0, 0xffffffffLL)) << 32) |
         static_cast<uint64_t>(rng->Uniform(0, 0xffffffffLL));
}

/// n records of `stride` words; key words masked by `key_mask` (sparse
/// masks leave constant bytes, exercising the pass-skip), payload words
/// set to the input position so stability violations are visible.
std::vector<uint64_t> RandomRecords(size_t n, int stride, int key_words,
                                    uint64_t key_mask, Rng* rng) {
  std::vector<uint64_t> buf(n * stride);
  for (size_t i = 0; i < n; ++i) {
    for (int w = 0; w < key_words; ++w) {
      buf[i * stride + w] = RandomWord(rng) & key_mask;
    }
    for (int w = key_words; w < stride; ++w) buf[i * stride + w] = i;
  }
  return buf;
}

/// The contract: RadixSortRecords must equal a stable sort comparing only
/// the key words (payload order within equal keys == input order).
void ExpectMatchesStableReference(std::vector<uint64_t> buf, size_t n,
                                  int stride, int key_words,
                                  ThreadPool* pool = nullptr) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return std::lexicographical_compare(
        buf.begin() + a * stride, buf.begin() + a * stride + key_words,
        buf.begin() + b * stride, buf.begin() + b * stride + key_words);
  });
  std::vector<uint64_t> want;
  want.reserve(buf.size());
  for (size_t i : idx) {
    want.insert(want.end(), buf.begin() + i * stride,
                buf.begin() + (i + 1) * stride);
  }
  std::vector<uint64_t> scratch;
  RadixSortRecords(buf.data(), n, stride, key_words, scratch, pool);
  ASSERT_EQ(buf, want) << "n=" << n << " stride=" << stride
                       << " key_words=" << key_words;
}

TEST(RadixRecordsTest, MatchesReferenceAcrossShapesAndRegimes) {
  Rng rng(21);
  // Dense and byte-sparse keys (high bits set half the time — the biased
  // image of negative values), below and above the LSD threshold.
  for (uint64_t mask : {~uint64_t{0}, uint64_t{0x00ff00070000ffffULL}}) {
    for (int stride = 1; stride <= 9; ++stride) {
      const int key_words = stride > 1 ? stride - 1 : 1;  // payload word
      for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{500},
                       kRadixMinN * 2}) {
        ExpectMatchesStableReference(
            RandomRecords(n, stride, key_words, mask, &rng), n, stride,
            key_words);
      }
      // All words are key (no payload): the SortAndDedupe shape.
      ExpectMatchesStableReference(
          RandomRecords(kRadixMinN + 33, stride, stride, mask, &rng),
          kRadixMinN + 33, stride, stride);
    }
  }
}

TEST(RadixRecordsTest, DupHeavyKeysStayStable) {
  Rng rng(22);
  for (size_t n : {size_t{300}, kRadixMinN * 2}) {
    // 5 distinct keys -> long equal runs; payload word records input
    // order, which the reference demands be preserved.
    std::vector<uint64_t> buf(n * 3);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t k = static_cast<uint64_t>(rng.Uniform(0, 4));
      buf[i * 3 + 0] = k << 40;
      buf[i * 3 + 1] = k;
      buf[i * 3 + 2] = i;
    }
    ExpectMatchesStableReference(buf, n, 3, 2);
  }
}

TEST(RadixRecordsTest, PresortedInputShortCircuitsUnchanged) {
  const size_t n = kRadixMinN * 2;
  std::vector<uint64_t> buf(n * 2);
  for (size_t i = 0; i < n; ++i) {
    buf[i * 2 + 0] = i / 3;  // sorted with duplicate runs
    buf[i * 2 + 1] = i;      // payload in input order
  }
  std::vector<uint64_t> want = buf;
  std::vector<uint64_t> scratch;
  EXPECT_FALSE(RadixSortRecords(buf.data(), n, 2, 1, scratch, nullptr));
  EXPECT_EQ(buf, want);
  EXPECT_TRUE(scratch.empty());  // the pre-scan never touches scratch
}

TEST(RadixRecordsTest, ParallelBitIdenticalToSerial) {
  Rng rng(23);
  const size_t n = kRadixParallelMinRecords + 1234;
  for (uint64_t mask :
       {uint64_t{0xffff}, uint64_t{0x00ff00070000ffffULL}}) {
    std::vector<uint64_t> buf = RandomRecords(n, 3, 2, mask, &rng);
    std::vector<uint64_t> serial = buf;
    std::vector<uint64_t> scratch;
    EXPECT_FALSE(RadixSortRecords(serial.data(), n, 3, 2, scratch, nullptr));
    for (int threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      std::vector<uint64_t> par = buf;
      std::vector<uint64_t> pscratch;
      EXPECT_TRUE(RadixSortRecords(par.data(), n, 3, 2, pscratch, &pool));
      EXPECT_EQ(par, serial) << "threads=" << threads;
    }
  }
  // Below the parallel floor the pool is declined even when offered.
  ThreadPool pool(4);
  std::vector<uint64_t> small =
      RandomRecords(kRadixMinN * 2, 2, 2, ~uint64_t{0}, &rng);
  std::vector<uint64_t> scratch;
  EXPECT_FALSE(RadixSortRecords(small.data(), kRadixMinN * 2, 2, 2, scratch,
                                &pool));
}

// ------------------------------------------------------- pool exceptions --

TEST(ThreadPoolTest, CallerThrowLeavesPoolReusable) {
  // Regression: a throw from fn(0) used to skip the in_parallel_ release,
  // wedging every later Run into the serial fallback forever.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.Run([](int t) {
        if (t == 0) throw std::runtime_error("caller boom");
      }),
      std::runtime_error);
  EXPECT_FALSE(pool.busy());
  std::atomic<int> ran(0);
  pool.Run([&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);  // all workers participate again
}

TEST(ThreadPoolTest, WorkerThrowRethrownOnCaller) {
  // Regression: an exception escaping a worker thread called
  // std::terminate; it must be captured and rethrown on the caller.
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    try {
      pool.Run([](int t) {
        if (t == 2) throw std::runtime_error("worker boom");
      });
      FAIL() << "expected rethrow, round " << round;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "worker boom");
    }
    EXPECT_FALSE(pool.busy());
  }
  std::atomic<int> ran(0);
  pool.Run([&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, CallerExceptionWinsOverWorkerException) {
  ThreadPool pool(4);
  try {
    pool.Run([](int t) {
      if (t == 0) throw std::runtime_error("caller");
      throw std::runtime_error("worker");
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "caller");
  }
  EXPECT_FALSE(pool.busy());
}

TEST(ThreadPoolTest, ParallelForPropagatesChunkException) {
  ThreadPool pool(4);
  std::atomic<int64_t> done(0);
  EXPECT_THROW(ParallelFor(
                   pool, 100000,
                   [&](int64_t begin, int64_t end) {
                     if (begin >= 50000) throw std::runtime_error("chunk");
                     done.fetch_add(end - begin);
                   },
                   1),
               std::runtime_error);
  EXPECT_FALSE(pool.busy());
  // The loop still works afterwards.
  done = 0;
  ParallelFor(pool, 1000,
              [&](int64_t begin, int64_t end) { done.fetch_add(end - begin); });
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPoolTest, OversubscribedExceptionHammerAtEightWorkers) {
  // Regression pinned at 8 workers — more than the dev sandboxes have
  // cores, so fan-outs, throws and the fan-in handshake interleave under
  // real preemption. Several workers throw concurrently every round; the
  // pool must capture exactly one exception, rethrow it on the caller,
  // and come back fully reusable. Under TSan (CI tsan job) this also
  // validates the error_ / pending_ mutex handshake empirically.
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran(0);
    try {
      pool.Run([&](int t) {
        ran.fetch_add(1);
        if (t % 3 == 1) throw std::runtime_error("hammer");
      });
      FAIL() << "expected rethrow, round " << round;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "hammer");
    }
    EXPECT_FALSE(pool.busy());
    EXPECT_EQ(ran.load(), 8) << "round " << round;
  }
  std::atomic<int> ran(0);
  pool.Run([&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(2);
  int low = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    int64_t v = rng.Zipf(1000, 1.5);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
    if (v < 10) ++low;
  }
  // With alpha=1.5 the first decile of the head dominates.
  EXPECT_GT(low, kTrials / 3);
}

}  // namespace
}  // namespace fmmsw
