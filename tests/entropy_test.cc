// Tests for the polymatroid cone: elemental Shannon inequalities, validity
// checks, edge domination, and the Appendix-C witness polymatroids
// (Figures 2-4).

#include "entropy/polymatroid.h"
#include "entropy/witnesses.h"
#include "gtest/gtest.h"
#include "hypergraph/hypergraph.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace fmmsw {
namespace {

TEST(ElementalTest, CountsMatchFormula) {
  // k monotonicities + C(k,2) * 2^(k-2) submodularities.
  for (int k = 2; k <= 5; ++k) {
    auto ineqs = ElementalInequalities(VarSet::Full(k));
    const size_t expect = k + (k * (k - 1) / 2) * (1u << (k - 2));
    EXPECT_EQ(ineqs.size(), expect) << "k=" << k;
  }
}

TEST(PolymatroidTest, CardinalityIsPolymatroid) {
  SetFn<Rational> h(VarSet::Full(4));
  for (VarSet s : Subsets(VarSet::Full(4))) h[s] = Rational(s.size());
  EXPECT_TRUE(IsPolymatroid(h));
}

TEST(PolymatroidTest, NonMonotoneRejected) {
  SetFn<Rational> h(VarSet::Full(3));
  for (VarSet s : Subsets(VarSet::Full(3))) h[s] = Rational(s.size());
  h[VarSet::Full(3)] = Rational(1);  // below h of a subset
  EXPECT_FALSE(IsPolymatroid(h));
}

TEST(PolymatroidTest, NonSubmodularRejected) {
  SetFn<Rational> h(VarSet::Full(2));
  h[VarSet{0}] = Rational(1);
  h[VarSet{1}] = Rational(1);
  h[VarSet{0, 1}] = Rational(3);  // superadditive
  EXPECT_FALSE(IsPolymatroid(h));
}

TEST(PolymatroidTest, NonzeroEmptySetRejected) {
  SetFn<Rational> h(VarSet::Full(2));
  h[VarSet::Empty()] = Rational(1);
  h[VarSet{0}] = h[VarSet{1}] = h[VarSet{0, 1}] = Rational(1);
  EXPECT_FALSE(IsPolymatroid(h));
}

TEST(PolymatroidTest, EdgeDomination) {
  Hypergraph tri = Hypergraph::Triangle();
  SetFn<Rational> h(VarSet::Full(3));
  for (VarSet s : Subsets(VarSet::Full(3))) h[s] = Rational(s.size(), 2);
  EXPECT_TRUE(IsEdgeDominated(tri, h));
  h[VarSet{0, 1}] = Rational(3, 2);
  EXPECT_FALSE(IsEdgeDominated(tri, h));
}

TEST(AtomCompositionTest, IndependentAtomsAreModular) {
  AtomComposition c;
  int a = c.AddAtom(Rational(1, 3));
  int b = c.AddAtom(Rational(2, 3));
  c.Attach(0, a);
  c.Attach(1, b);
  auto h = c.Build(VarSet::Full(2));
  EXPECT_EQ(h[VarSet{0}], Rational(1, 3));
  EXPECT_EQ(h[VarSet{1}], Rational(2, 3));
  EXPECT_EQ(h[VarSet({0, 1})], Rational(1));
  EXPECT_TRUE(IsPolymatroid(h));
}

TEST(AtomCompositionTest, SharedAtomCreatesCorrelation) {
  AtomComposition c;
  int shared = c.AddAtom(Rational(1));
  c.Attach(0, shared);
  c.Attach(1, shared);
  auto h = c.Build(VarSet::Full(2));
  EXPECT_EQ(h[VarSet({0, 1})], Rational(1));  // = h(X) = h(Y): fully shared
  EXPECT_TRUE(IsPolymatroid(h));
}

class WitnessOmegaTest : public ::testing::TestWithParam<Rational> {};

TEST_P(WitnessOmegaTest, TriangleWitnessValidAndMatchesFigure2) {
  const Rational omega = GetParam();
  auto h = TriangleWitness(omega);
  EXPECT_TRUE(IsPolymatroid(h));
  EXPECT_TRUE(IsEdgeDominated(Hypergraph::Triangle(), h));
  const Rational denom = omega + Rational(1);
  EXPECT_EQ(h[VarSet{0}], Rational(2) / denom);
  EXPECT_EQ(h[VarSet({0, 1})], Rational(1));
  EXPECT_EQ(h[VarSet::Full(3)], Rational(2) * omega / denom);
}

TEST_P(WitnessOmegaTest, FourCycleLowWitnessValid) {
  const Rational omega = GetParam();
  if (omega > Rational(5, 2)) return;  // Case 2 applies for w < 5/2
  auto h = FourCycleWitnessLow(omega);
  EXPECT_TRUE(IsPolymatroid(h));
  EXPECT_TRUE(IsEdgeDominated(Hypergraph::Cycle(4), h));
  const Rational denom = Rational(2) * omega + Rational(1);
  // Lemma C.9: h(W)=h(Z)=(w+2)/(2w+1), h(X)=h(Y)=3/(2w+1), h(all)=(4w-1)/..
  EXPECT_EQ(h[VarSet{0}], Rational(3) / denom);
  EXPECT_EQ(h[VarSet{2}], (omega + Rational(2)) / denom);
  EXPECT_EQ(h[VarSet::Full(4)],
            (Rational(4) * omega - Rational(1)) / denom);
}

TEST_P(WitnessOmegaTest, Pyramid3WitnessValidAndMatchesFigure4) {
  const Rational omega = GetParam();
  auto h = Pyramid3Witness(omega);
  EXPECT_TRUE(IsPolymatroid(h));
  EXPECT_TRUE(IsEdgeDominated(Hypergraph::Pyramid(3), h));
  EXPECT_EQ(h[VarSet{1}], Rational(1) / omega);
  EXPECT_EQ(h[VarSet{0}], Rational(1) - Rational(1) / omega);
  EXPECT_EQ(h[VarSet({1, 2, 3})], Rational(1));
  EXPECT_EQ(h[VarSet::Full(4)], Rational(2) - Rational(1) / omega);
}

INSTANTIATE_TEST_SUITE_P(OmegaSweep, WitnessOmegaTest,
                         ::testing::Values(Rational(2), Rational(9, 4),
                                           Rational(2371552, 1000000),
                                           Rational(5, 2), Rational(14, 5),
                                           Rational(3)));

TEST(WitnessTest, FourCycleHighWitnessValid) {
  auto h = FourCycleWitnessHigh();
  EXPECT_TRUE(IsPolymatroid(h));
  EXPECT_TRUE(IsEdgeDominated(Hypergraph::Cycle(4), h));
  EXPECT_EQ(h[VarSet{0}], Rational(1, 2));
  EXPECT_EQ(h[VarSet{2}], Rational(3, 4));
  EXPECT_EQ(h[VarSet::Full(4)], Rational(3, 2));
}

TEST(WitnessTest, CliqueWitnessValues) {
  for (int k = 3; k <= 6; ++k) {
    auto h = CliqueWitness(k);
    EXPECT_TRUE(IsPolymatroid(h));
    EXPECT_TRUE(IsEdgeDominated(Hypergraph::Clique(k), h));
    EXPECT_EQ(h[VarSet::Full(k)], Rational(k, 2));
  }
}

TEST(PolymatroidLpTest, MaxEntropyOfTriangleIsAgmBound) {
  // max h(XYZ) over Gamma cap ED = rho*(triangle) = 3/2 (Prop. C.2 tight).
  PolymatroidLp<Rational> lp(Hypergraph::Triangle());
  lp.model().AddObjective(lp.Var(VarSet::Full(3)), Rational(1));
  auto res = SolveSimplex(lp.model());
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_EQ(res.objective, Rational(3, 2));
  // The attained h must itself be a valid edge-dominated polymatroid.
  auto h = lp.ExtractSolution(res);
  EXPECT_TRUE(IsPolymatroid(h));
  EXPECT_TRUE(IsEdgeDominated(Hypergraph::Triangle(), h));
}

TEST(PolymatroidLpTest, MaxEntropyCycleFour) {
  // rho*(C4) = 2: two opposite edges cover all vertices.
  PolymatroidLp<Rational> lp(Hypergraph::Cycle(4));
  lp.model().AddObjective(lp.Var(VarSet::Full(4)), Rational(1));
  auto res = SolveSimplex(lp.model());
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_EQ(res.objective, Rational(2));
}

TEST(PolymatroidLpTest, ConditionalHelper) {
  // max h(Y|X) subject to ED on edge {X,Y} is 1 (h(XY)<=1, h(X)>=0).
  Hypergraph h(2, {"X", "Y"});
  h.AddEdge({0, 1});
  PolymatroidLp<Rational> lp(h);
  const int t = lp.model().AddVar();
  lp.model().AddObjective(t, Rational(1));
  auto& row = lp.model().AddRow(Sense::kLe, Rational(0), "t<=h(Y|X)");
  row.coeffs.emplace_back(t, Rational(1));
  lp.AppendConditional(&row.coeffs, VarSet{1}, VarSet{0}, Rational(-1));
  auto res = SolveSimplex(lp.model());
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_EQ(res.objective, Rational(1));
}

TEST(PolymatroidLpTest, RandomLpSolutionsAreValidPolymatroids) {
  // Property: any optimum of an LP over Gamma cap ED extracts to a function
  // passing IsPolymatroid + IsEdgeDominated (sanity of constraint set).
  Rng rng(5);
  Hypergraph hg = Hypergraph::Cycle(4);
  for (int trial = 0; trial < 20; ++trial) {
    PolymatroidLp<Rational> lp(hg);
    // Random objective over singletons and the full set.
    for (int v = 0; v < 4; ++v) {
      lp.model().AddObjective(lp.Var(VarSet::Singleton(v)),
                              Rational(rng.Uniform(0, 3)));
    }
    lp.model().AddObjective(lp.Var(VarSet::Full(4)),
                            Rational(rng.Uniform(0, 2)));
    auto res = SolveSimplex(lp.model());
    ASSERT_EQ(res.status, LpStatus::kOptimal);
    auto h = lp.ExtractSolution(res);
    EXPECT_TRUE(IsPolymatroid(h));
    EXPECT_TRUE(IsEdgeDominated(hg, h));
  }
}

}  // namespace
}  // namespace fmmsw
