// Tests for the matrix substrate: all kernels agree with the naive
// reference on random inputs, Strassen is exact, the rectangular
// square-blocking scheme matches Eq. (6)'s cost model, and BitMatrix
// implements the (OR, AND) semiring.

#include <atomic>
#include <cstdlib>
#include <vector>

#include "gtest/gtest.h"
#include "mm/cost_model.h"
#include "mm/matrix.h"
#include "util/parallel.h"
#include "util/random.h"

namespace fmmsw {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng, int64_t lo = -9,
                    int64_t hi = 9) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m.At(i, j) = rng->Uniform(lo, hi);
  }
  return m;
}

TEST(MatrixTest, NaiveKnownProduct) {
  Matrix a(2, 3), b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]].
  int64_t av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) a.At(i, j) = av[i * 3 + j];
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) b.At(i, j) = bv[i * 2 + j];
  }
  Matrix c = MultiplyNaive(a, b);
  EXPECT_EQ(c.At(0, 0), 58);
  EXPECT_EQ(c.At(0, 1), 64);
  EXPECT_EQ(c.At(1, 0), 139);
  EXPECT_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, BlockedMatchesNaiveRandom) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = static_cast<int>(rng.Uniform(1, 90));
    const int k = static_cast<int>(rng.Uniform(1, 90));
    const int n = static_cast<int>(rng.Uniform(1, 90));
    Matrix a = RandomMatrix(m, k, &rng), b = RandomMatrix(k, n, &rng);
    EXPECT_EQ(MultiplyBlocked(a, b), MultiplyNaive(a, b));
  }
}

TEST(MatrixTest, StrassenMatchesNaiveRandom) {
  Rng rng(12);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = static_cast<int>(rng.Uniform(1, 140));
    Matrix a = RandomMatrix(n, n, &rng), b = RandomMatrix(n, n, &rng);
    EXPECT_EQ(MultiplyStrassen(a, b, 16), MultiplyNaive(a, b)) << n;
  }
}

TEST(MatrixTest, StrassenNonSquare) {
  Rng rng(13);
  Matrix a = RandomMatrix(37, 91, &rng), b = RandomMatrix(91, 11, &rng);
  EXPECT_EQ(MultiplyStrassen(a, b, 8), MultiplyNaive(a, b));
}

TEST(MatrixTest, RectangularMatchesNaiveRandom) {
  Rng rng(14);
  for (int trial = 0; trial < 8; ++trial) {
    const int m = static_cast<int>(rng.Uniform(1, 120));
    const int k = static_cast<int>(rng.Uniform(1, 40));
    const int n = static_cast<int>(rng.Uniform(1, 120));
    Matrix a = RandomMatrix(m, k, &rng), b = RandomMatrix(k, n, &rng);
    EXPECT_EQ(MultiplyRectangular(a, b, 16), MultiplyNaive(a, b));
  }
}

TEST(MatrixTest, AnyNonZero) {
  Matrix z(3, 3);
  EXPECT_FALSE(z.AnyNonZero());
  z.At(2, 1) = -5;
  EXPECT_TRUE(z.AnyNonZero());
}

TEST(BitMatrixTest, MultiplyMatchesIntegerSign) {
  Rng rng(15);
  for (int trial = 0; trial < 8; ++trial) {
    const int m = static_cast<int>(rng.Uniform(1, 100));
    const int k = static_cast<int>(rng.Uniform(1, 100));
    const int n = static_cast<int>(rng.Uniform(1, 150));
    Matrix a(m, k), b(k, n);
    BitMatrix ba(m, k), bb(k, n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < k; ++j) {
        if (rng.Flip(0.2)) {
          a.At(i, j) = 1;
          ba.Set(i, j);
        }
      }
    }
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rng.Flip(0.2)) {
          b.At(i, j) = 1;
          bb.Set(i, j);
        }
      }
    }
    Matrix c = MultiplyNaive(a, b);
    BitMatrix bc = BitMatrix::Multiply(ba, bb);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(bc.Get(i, j), c.At(i, j) > 0);
      }
    }
  }
}

TEST(BitMatrixTest, AnyNonZero) {
  BitMatrix m(5, 70);
  EXPECT_FALSE(m.AnyNonZero());
  m.Set(4, 69);
  EXPECT_TRUE(m.AnyNonZero());
  EXPECT_TRUE(m.Get(4, 69));
  EXPECT_FALSE(m.Get(4, 68));
}

// --------------------------------------------- parallel differentials --
// ctest runs this binary with FMMSW_THREADS=4, so the pooled kernels
// (MultiplyBlocked, BitMatrix::Multiply, MultiplyRectangular) execute
// multi-threaded here and are checked against the serial naive reference.

TEST(ParallelKernelTest, BlockedMatchesNaiveLarge) {
  Rng rng(21);
  for (int trial = 0; trial < 3; ++trial) {
    const int m = static_cast<int>(rng.Uniform(150, 260));
    const int k = static_cast<int>(rng.Uniform(150, 260));
    const int n = static_cast<int>(rng.Uniform(150, 260));
    Matrix a = RandomMatrix(m, k, &rng), b = RandomMatrix(k, n, &rng);
    EXPECT_EQ(MultiplyBlocked(a, b), MultiplyNaive(a, b));
  }
}

TEST(ParallelKernelTest, RectangularMatchesNaiveLarge) {
  Rng rng(22);
  Matrix a = RandomMatrix(210, 60, &rng), b = RandomMatrix(60, 240, &rng);
  EXPECT_EQ(MultiplyRectangular(a, b, 16), MultiplyNaive(a, b));
}

TEST(ParallelKernelTest, BitMatrixMatchesIntegerSignLarge) {
  Rng rng(23);
  const int m = 220, k = 200, n = 260;
  Matrix a(m, k), b(k, n);
  BitMatrix ba(m, k), bb(k, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      if (rng.Flip(0.1)) {
        a.At(i, j) = 1;
        ba.Set(i, j);
      }
    }
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.Flip(0.1)) {
        b.At(i, j) = 1;
        bb.Set(i, j);
      }
    }
  }
  Matrix c = MultiplyNaive(a, b);
  BitMatrix bc = BitMatrix::Multiply(ba, bb);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(bc.Get(i, j), c.At(i, j) > 0) << i << "," << j;
    }
  }
}

TEST(ParallelKernelTest, ParallelForCoversEveryIndex) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelKernelTest, ParallelAnyOfFindsWitness) {
  EXPECT_TRUE(ParallelAnyOf(5000, [](int64_t i) { return i == 4321; }));
  EXPECT_FALSE(ParallelAnyOf(5000, [](int64_t) { return false; }));
  EXPECT_FALSE(ParallelAnyOf(0, [](int64_t) { return true; }));
}

TEST(ParallelKernelTest, ThreadCountHonorsEnvironment) {
  // ctest sets FMMSW_THREADS=4 for this binary; non-positive or garbage
  // values fall back to hardware_concurrency, so only assert on valid
  // settings.
  if (const char* env = std::getenv("FMMSW_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) {
      EXPECT_EQ(ThreadPool::ConfiguredThreads(), n);
      EXPECT_EQ(ThreadPool::Global().threads(), n);
    } else {
      EXPECT_GE(ThreadPool::ConfiguredThreads(), 1);
    }
  }
}

TEST(CostModelTest, OmegaSquareExponent) {
  // Eq. (6): square case gives omega, degenerate min gives linear I/O.
  EXPECT_DOUBLE_EQ(OmegaSquareExponent(1, 1, 1, 2.371552), 2.371552);
  EXPECT_DOUBLE_EQ(OmegaSquareExponent(1, 1, 0, 2.371552), 2.0);
  EXPECT_DOUBLE_EQ(OmegaSquareExponent(1, 0.5, 0.25, 2.0), 1.5);
  // omega = 3 degenerates to the naive product a+b+c.
  EXPECT_DOUBLE_EQ(OmegaSquareExponent(0.5, 0.7, 0.9, 3.0), 2.1);
}

TEST(CostModelTest, PredictedOpsScalesLikeOmega) {
  // Doubling n multiplies the square-MM cost by ~2^omega.
  const double omega = 2.807;
  const double r = PredictedMmOps(512, 512, 512, omega) /
                   PredictedMmOps(256, 256, 256, omega);
  EXPECT_NEAR(std::log2(r), omega, 1e-9);
}

TEST(CostModelTest, RectangularBlockCount) {
  // (m/d)(k/d)(n/d) * d^omega with d = min dimension.
  const double v = PredictedMmOps(100, 10, 1000, 2.0);
  EXPECT_DOUBLE_EQ(v, 10.0 * 1.0 * 100.0 * 100.0);
}

}  // namespace
}  // namespace fmmsw
