// Tests for the matrix substrate: all kernels agree with the naive
// reference on random inputs, Strassen is exact, the rectangular
// square-blocking scheme matches Eq. (6)'s cost model, and BitMatrix
// implements the (OR, AND) semiring.

#include <atomic>
#include <cstdlib>
#include <vector>

#include "core/exec_context.h"
#include "gtest/gtest.h"
#include "mm/cost_model.h"
#include "mm/kernel.h"
#include "mm/matrix.h"
#include "util/parallel.h"
#include "util/random.h"

namespace fmmsw {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng, int64_t lo = -9,
                    int64_t hi = 9) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m.At(i, j) = rng->Uniform(lo, hi);
  }
  return m;
}

TEST(MatrixTest, NaiveKnownProduct) {
  Matrix a(2, 3), b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]].
  int64_t av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) a.At(i, j) = av[i * 3 + j];
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) b.At(i, j) = bv[i * 2 + j];
  }
  Matrix c = MultiplyNaive(a, b);
  EXPECT_EQ(c.At(0, 0), 58);
  EXPECT_EQ(c.At(0, 1), 64);
  EXPECT_EQ(c.At(1, 0), 139);
  EXPECT_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, BlockedMatchesNaiveRandom) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = static_cast<int>(rng.Uniform(1, 90));
    const int k = static_cast<int>(rng.Uniform(1, 90));
    const int n = static_cast<int>(rng.Uniform(1, 90));
    Matrix a = RandomMatrix(m, k, &rng), b = RandomMatrix(k, n, &rng);
    EXPECT_EQ(MultiplyBlocked(a, b), MultiplyNaive(a, b));
  }
}

TEST(MatrixTest, StrassenMatchesNaiveRandom) {
  Rng rng(12);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = static_cast<int>(rng.Uniform(1, 140));
    Matrix a = RandomMatrix(n, n, &rng), b = RandomMatrix(n, n, &rng);
    EXPECT_EQ(MultiplyStrassen(a, b, 16), MultiplyNaive(a, b)) << n;
  }
}

TEST(MatrixTest, StrassenNonSquare) {
  Rng rng(13);
  Matrix a = RandomMatrix(37, 91, &rng), b = RandomMatrix(91, 11, &rng);
  EXPECT_EQ(MultiplyStrassen(a, b, 8), MultiplyNaive(a, b));
}

TEST(MatrixTest, RectangularMatchesNaiveRandom) {
  Rng rng(14);
  for (int trial = 0; trial < 8; ++trial) {
    const int m = static_cast<int>(rng.Uniform(1, 120));
    const int k = static_cast<int>(rng.Uniform(1, 40));
    const int n = static_cast<int>(rng.Uniform(1, 120));
    Matrix a = RandomMatrix(m, k, &rng), b = RandomMatrix(k, n, &rng);
    EXPECT_EQ(MultiplyRectangular(a, b, 16), MultiplyNaive(a, b));
  }
}

TEST(MatrixTest, AnyNonZero) {
  Matrix z(3, 3);
  EXPECT_FALSE(z.AnyNonZero());
  z.At(2, 1) = -5;
  EXPECT_TRUE(z.AnyNonZero());
}

TEST(BitMatrixTest, MultiplyMatchesIntegerSign) {
  Rng rng(15);
  for (int trial = 0; trial < 8; ++trial) {
    const int m = static_cast<int>(rng.Uniform(1, 100));
    const int k = static_cast<int>(rng.Uniform(1, 100));
    const int n = static_cast<int>(rng.Uniform(1, 150));
    Matrix a(m, k), b(k, n);
    BitMatrix ba(m, k), bb(k, n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < k; ++j) {
        if (rng.Flip(0.2)) {
          a.At(i, j) = 1;
          ba.Set(i, j);
        }
      }
    }
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rng.Flip(0.2)) {
          b.At(i, j) = 1;
          bb.Set(i, j);
        }
      }
    }
    Matrix c = MultiplyNaive(a, b);
    BitMatrix bc = BitMatrix::Multiply(ba, bb);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(bc.Get(i, j), c.At(i, j) > 0);
      }
    }
  }
}

TEST(BitMatrixTest, AnyNonZero) {
  BitMatrix m(5, 70);
  EXPECT_FALSE(m.AnyNonZero());
  m.Set(4, 69);
  EXPECT_TRUE(m.AnyNonZero());
  EXPECT_TRUE(m.Get(4, 69));
  EXPECT_FALSE(m.Get(4, 68));
}

// --------------------------------------------- parallel differentials --
// ctest runs this binary with FMMSW_THREADS=4, so the pooled kernels
// (MultiplyBlocked, BitMatrix::Multiply, MultiplyRectangular) execute
// multi-threaded here and are checked against the serial naive reference.

TEST(ParallelKernelTest, BlockedMatchesNaiveLarge) {
  Rng rng(21);
  for (int trial = 0; trial < 3; ++trial) {
    const int m = static_cast<int>(rng.Uniform(150, 260));
    const int k = static_cast<int>(rng.Uniform(150, 260));
    const int n = static_cast<int>(rng.Uniform(150, 260));
    Matrix a = RandomMatrix(m, k, &rng), b = RandomMatrix(k, n, &rng);
    EXPECT_EQ(MultiplyBlocked(a, b), MultiplyNaive(a, b));
  }
}

TEST(ParallelKernelTest, RectangularMatchesNaiveLarge) {
  Rng rng(22);
  Matrix a = RandomMatrix(210, 60, &rng), b = RandomMatrix(60, 240, &rng);
  EXPECT_EQ(MultiplyRectangular(a, b, 16), MultiplyNaive(a, b));
}

TEST(ParallelKernelTest, BitMatrixMatchesIntegerSignLarge) {
  Rng rng(23);
  const int m = 220, k = 200, n = 260;
  Matrix a(m, k), b(k, n);
  BitMatrix ba(m, k), bb(k, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      if (rng.Flip(0.1)) {
        a.At(i, j) = 1;
        ba.Set(i, j);
      }
    }
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) {
      if (rng.Flip(0.1)) {
        b.At(i, j) = 1;
        bb.Set(i, j);
      }
    }
  }
  Matrix c = MultiplyNaive(a, b);
  BitMatrix bc = BitMatrix::Multiply(ba, bb);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(bc.Get(i, j), c.At(i, j) > 0) << i << "," << j;
    }
  }
}

TEST(ParallelKernelTest, ParallelForCoversEveryIndex) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelKernelTest, ParallelAnyOfFindsWitness) {
  EXPECT_TRUE(ParallelAnyOf(5000, [](int64_t i) { return i == 4321; }));
  EXPECT_FALSE(ParallelAnyOf(5000, [](int64_t) { return false; }));
  EXPECT_FALSE(ParallelAnyOf(0, [](int64_t) { return true; }));
}

TEST(ParallelKernelTest, ThreadCountHonorsEnvironment) {
  // ctest sets FMMSW_THREADS=4 for this binary; non-positive or garbage
  // values fall back to hardware_concurrency, so only assert on valid
  // settings.
  if (const char* env = std::getenv("FMMSW_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) {
      EXPECT_EQ(ThreadPool::ConfiguredThreads(), n);
      EXPECT_EQ(ThreadPool::Global().threads(), n);
    } else {
      EXPECT_GE(ThreadPool::ConfiguredThreads(), 1);
    }
  }
}

// ------------------------------------------- micro-kernel layer --------
// The packed micro-kernel (mm/kernel.h) must be bit-identical to
// MultiplyNaive at every SIMD level. ctest runs this binary once with the
// host's ActiveSimdLevel (AVX2 where supported) and CI re-runs it under
// FMMSW_SIMD=off; the tests below additionally drive both levels
// in-process via GemmAddAt, so the scalar fallback is exercised even on
// AVX2 hosts and vice versa.

std::vector<SimdLevel> TestableLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (MaxSimdLevel() != SimdLevel::kScalar) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

Matrix GemmVia(SimdLevel level, const Matrix& a, const Matrix& b,
               ExecContext* ec = nullptr) {
  Matrix out(a.rows(), b.cols());
  MmPackScratch pack;
  // RowPtr(0) on a degenerate 0-cell matrix would index into an empty
  // vector before GemmAddAt's shape guard runs; pass nullptr instead
  // (the guard returns before any dereference).
  GemmAddAt(level, a.empty() ? nullptr : a.RowPtr(0), a.cols(),
            b.empty() ? nullptr : b.RowPtr(0), b.cols(),
            out.empty() ? nullptr : out.RowPtr(0), out.cols(), a.rows(),
            a.cols(), b.cols(), ec, &pack);
  return out;
}

TEST(MicroKernelTest, MatchesNaiveAcrossEdgeShapes) {
  // Shapes straddling the MR x NR tile and the KC chunk boundary,
  // including single-row / single-column panels.
  const struct {
    int m, k, n;
  } shapes[] = {{1, 1, 1},   {1, 7, 1},    {7, 1, 7},    {1, 200, 1},
                {200, 1, 3}, {4, 16, 8},   {5, 16, 9},   {3, 384, 5},
                {3, 385, 5}, {65, 33, 47}, {64, 770, 24}};
  Rng rng(31);
  for (SimdLevel level : TestableLevels()) {
    for (const auto& s : shapes) {
      Matrix a = RandomMatrix(s.m, s.k, &rng), b = RandomMatrix(s.k, s.n, &rng);
      EXPECT_EQ(GemmVia(level, a, b), MultiplyNaive(a, b))
          << SimdLevelName(level) << " " << s.m << "x" << s.k << "x" << s.n;
    }
  }
}

TEST(MicroKernelTest, WideValuesUseTheFullKernel) {
  // Values outside int32 disable the narrow single-multiply path; the
  // emulated 64-bit multiply must still match scalar imul exactly
  // (including negatives). Products stay within int64, no UB.
  Rng rng(32);
  Matrix a = RandomMatrix(19, 41, &rng), b = RandomMatrix(41, 23, &rng);
  a.At(3, 7) = (int64_t{1} << 40) + 12345;
  a.At(18, 40) = -(int64_t{1} << 52) - 7;
  b.At(12, 11) = (int64_t{1} << 38) - 1;
  b.At(0, 0) = -(int64_t{1} << 34);
  const Matrix ref = MultiplyNaive(a, b);
  for (SimdLevel level : TestableLevels()) {
    EXPECT_EQ(GemmVia(level, a, b), ref) << SimdLevelName(level);
  }
}

TEST(MicroKernelTest, MixedNarrowAndWideChunks) {
  // k spans three KC chunks; only the middle chunk holds a wide value, so
  // the per-chunk dispatch must switch kernels mid-product.
  Rng rng(33);
  Matrix a = RandomMatrix(9, 900, &rng), b = RandomMatrix(900, 12, &rng);
  a.At(5, 500) = int64_t{1} << 44;
  b.At(450, 3) = -(int64_t{1} << 41);
  const Matrix ref = MultiplyNaive(a, b);
  for (SimdLevel level : TestableLevels()) {
    EXPECT_EQ(GemmVia(level, a, b), ref) << SimdLevelName(level);
  }
}

TEST(MicroKernelTest, AccumulatesIntoExistingOutput) {
  Rng rng(34);
  Matrix a = RandomMatrix(10, 17, &rng), b = RandomMatrix(17, 13, &rng);
  Matrix expect = MultiplyNaive(a, b);
  Matrix out(10, 13);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 13; ++j) {
      out.At(i, j) = 100 * i + j;
      expect.At(i, j) += 100 * i + j;
    }
  }
  for (SimdLevel level : TestableLevels()) {
    Matrix c = out;
    MmPackScratch pack;
    GemmAddAt(level, a.RowPtr(0), 17, b.RowPtr(0), 13, c.RowPtr(0), 13, 10,
              17, 13, nullptr, &pack);
    EXPECT_EQ(c, expect) << SimdLevelName(level);
  }
}

TEST(MicroKernelTest, StridedViewsMatchContiguous) {
  // Sub-panels addressed with lda/ldb/ldc larger than the panel width —
  // the shape MultiplyRectangular and the Strassen quadrants produce.
  Rng rng(35);
  Matrix a = RandomMatrix(40, 50, &rng), b = RandomMatrix(50, 60, &rng);
  const int m = 13, k = 21, n = 17, i0 = 5, k0 = 9, j0 = 31;
  Matrix asub(m, k), bsub(k, n);
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) asub.At(i, kk) = a.At(i0 + i, k0 + kk);
  }
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) bsub.At(kk, j) = b.At(k0 + kk, j0 + j);
  }
  const Matrix ref = MultiplyNaive(asub, bsub);
  for (SimdLevel level : TestableLevels()) {
    Matrix out(40, 60);
    MmPackScratch pack;
    GemmAddAt(level, a.RowPtr(i0) + k0, a.cols(), b.RowPtr(k0) + j0,
              b.cols(), out.RowPtr(i0) + j0, out.cols(), m, k, n, nullptr,
              &pack);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(out.At(i0 + i, j0 + j), ref.At(i, j))
            << SimdLevelName(level) << " " << i << "," << j;
      }
    }
  }
}

TEST(MicroKernelTest, KernelStatsAccounting) {
  ExecContext ec(1);
  Rng rng(36);
  Matrix a = RandomMatrix(96, 96, &rng), b = RandomMatrix(96, 96, &rng);
  EXPECT_EQ(MultiplyBlocked(a, b, &ec), MultiplyNaive(a, b));
  EXPECT_GT(ec.stats().mm_base_calls.load(), 0);
  if (ActiveSimdLevel() == SimdLevel::kScalar) {
    EXPECT_EQ(ec.stats().mm_simd_calls.load(), 0);
  } else {
    EXPECT_GT(ec.stats().mm_simd_calls.load(), 0);
  }
  EXPECT_EQ(ec.stats().mm_bitsliced_calls.load(), 0);
}

// --------------------------------------------- bit-sliced counting -----

Matrix RandomIndicator(int rows, int cols, double density, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng->Flip(density)) m.At(i, j) = 1;
    }
  }
  return m;
}

TEST(BitSlicedTest, MatchesNaiveAcrossShapes) {
  // Inner dimensions straddling the 64-bit word boundary.
  const struct {
    int m, k, n;
  } shapes[] = {{1, 1, 1},  {3, 63, 5},  {3, 64, 5},   {3, 65, 5},
                {9, 128, 7}, {40, 200, 31}, {1, 300, 1}};
  Rng rng(41);
  for (const auto& s : shapes) {
    Matrix a = RandomIndicator(s.m, s.k, 0.4, &rng);
    Matrix b = RandomIndicator(s.k, s.n, 0.4, &rng);
    EXPECT_EQ(MultiplyBitSliced(a, b), MultiplyNaive(a, b))
        << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(BitSlicedTest, CountsNotJustExistence) {
  // All-ones inputs: every entry of the product must equal k exactly.
  Matrix a(3, 70), b(70, 4);
  for (int i = 0; i < 3; ++i) {
    for (int k = 0; k < 70; ++k) a.At(i, k) = 1;
  }
  for (int k = 0; k < 70; ++k) {
    for (int j = 0; j < 4; ++j) b.At(k, j) = 1;
  }
  Matrix p = MultiplyBitSliced(a, b);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) ASSERT_EQ(p.At(i, j), 70);
  }
}

TEST(BitSlicedTest, CountingProductDispatch) {
  Rng rng(42);
  ExecContext ec(1);
  Matrix a = RandomIndicator(20, 90, 0.3, &rng);
  Matrix b = RandomIndicator(90, 25, 0.3, &rng);
  const Matrix ref = MultiplyNaive(a, b);
  EXPECT_EQ(CountingProduct(a, b, MmKernel::kBitSliced, &ec), ref);
  EXPECT_EQ(ec.stats().mm_bitsliced_calls.load(), 1);
  // Non-0/1 input falls back to the cubic micro-kernel path.
  Matrix c = RandomMatrix(20, 90, &rng);
  EXPECT_EQ(CountingProduct(c, b, MmKernel::kBitSliced, &ec),
            MultiplyNaive(c, b));
  EXPECT_EQ(ec.stats().mm_bitsliced_calls.load(), 1);
  // Every kernel choice agrees with the naive reference.
  EXPECT_EQ(CountingProduct(a, b, MmKernel::kNaive, &ec), ref);
  EXPECT_EQ(CountingProduct(a, b, MmKernel::kStrassen, &ec), ref);
  EXPECT_EQ(CountingProduct(a, b, MmKernel::kBoolean, &ec), ref);
}

TEST(BitSlicedTest, IsZeroOne) {
  Matrix m(2, 2);
  EXPECT_TRUE(IsZeroOne(m));
  m.At(0, 1) = 1;
  EXPECT_TRUE(IsZeroOne(m));
  m.At(1, 0) = 2;
  EXPECT_FALSE(IsZeroOne(m));
  m.At(1, 0) = -1;
  EXPECT_FALSE(IsZeroOne(m));
  EXPECT_TRUE(IsZeroOne(Matrix(0, 3)));
}

// --------------------------------------------- degenerate shapes -------

TEST(DegenerateShapeTest, ZeroDimensionProductsAcrossKernels) {
  // 0-row / 0-col / 0-inner products must return correctly shaped
  // all-zero matrices from every kernel.
  const struct {
    int m, k, n;
  } shapes[] = {{0, 0, 0}, {0, 5, 3}, {3, 0, 4}, {4, 6, 0}, {0, 0, 7}};
  for (const auto& s : shapes) {
    Matrix a(s.m, s.k), b(s.k, s.n);
    const Matrix ref = MultiplyNaive(a, b);
    EXPECT_EQ(ref.rows(), s.m);
    EXPECT_EQ(ref.cols(), s.n);
    EXPECT_FALSE(ref.AnyNonZero());
    EXPECT_EQ(MultiplyBlocked(a, b), ref);
    EXPECT_EQ(MultiplyStrassen(a, b), ref);
    EXPECT_EQ(MultiplyRectangular(a, b), ref);
    EXPECT_EQ(MultiplyBitSliced(a, b), ref);
    for (SimdLevel level : TestableLevels()) {
      EXPECT_EQ(GemmVia(level, a, b), ref) << SimdLevelName(level);
    }
  }
}

TEST(DegenerateShapeTest, AnyNonZeroAndEmptyOnDegenerateMatrices) {
  EXPECT_TRUE(Matrix(0, 0).empty());
  EXPECT_TRUE(Matrix(0, 5).empty());
  EXPECT_TRUE(Matrix(5, 0).empty());
  EXPECT_FALSE(Matrix(1, 1).empty());
  EXPECT_FALSE(Matrix(0, 0).AnyNonZero());
  EXPECT_FALSE(Matrix(0, 5).AnyNonZero());
  EXPECT_FALSE(Matrix(5, 0).AnyNonZero());
  EXPECT_FALSE(BitMatrix(0, 0).AnyNonZero());
  EXPECT_FALSE(BitMatrix(0, 9).AnyNonZero());
}

TEST(CostModelTest, OmegaSquareExponent) {
  // Eq. (6): square case gives omega, degenerate min gives linear I/O.
  EXPECT_DOUBLE_EQ(OmegaSquareExponent(1, 1, 1, 2.371552), 2.371552);
  EXPECT_DOUBLE_EQ(OmegaSquareExponent(1, 1, 0, 2.371552), 2.0);
  EXPECT_DOUBLE_EQ(OmegaSquareExponent(1, 0.5, 0.25, 2.0), 1.5);
  // omega = 3 degenerates to the naive product a+b+c.
  EXPECT_DOUBLE_EQ(OmegaSquareExponent(0.5, 0.7, 0.9, 3.0), 2.1);
}

TEST(CostModelTest, PredictedOpsScalesLikeOmega) {
  // Doubling n multiplies the square-MM cost by ~2^omega.
  const double omega = 2.807;
  const double r = PredictedMmOps(512, 512, 512, omega) /
                   PredictedMmOps(256, 256, 256, omega);
  EXPECT_NEAR(std::log2(r), omega, 1e-9);
}

TEST(CostModelTest, RectangularBlockCount) {
  // (m/d)(k/d)(n/d) * d^omega with d = min dimension.
  const double v = PredictedMmOps(100, 10, 1000, 2.0);
  EXPECT_DOUBLE_EQ(v, 10.0 * 1.0 * 100.0 * 100.0);
}

}  // namespace
}  // namespace fmmsw
