// Tests for hypergraphs, elimination sequences (Definition 4.1 and the
// worked Examples A.1-A.4), and tree-decomposition enumeration.

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "hypergraph/decomposition.h"
#include "hypergraph/hypergraph.h"

namespace fmmsw {
namespace {

TEST(HypergraphTest, NeighborhoodOperatorsExampleA1) {
  // Example A.1: V = {A,B,C,D,E}, E = {ABC, ABD, CDE}.
  Hypergraph h(5, {"A", "B", "C", "D", "E"});
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 1, 3});
  h.AddEdge({2, 3, 4});
  EXPECT_EQ(h.IncidentEdges(VarSet{0}).size(), 2u);
  EXPECT_EQ(h.U(VarSet{0}), VarSet({0, 1, 2, 3}));
  EXPECT_EQ(h.N(VarSet{0}), VarSet({1, 2, 3}));
}

TEST(HypergraphTest, SetNeighborhoods) {
  Hypergraph h = Hypergraph::Cycle(4);
  // del({X0, X2}) touches all four edges; U = all vertices.
  EXPECT_EQ(h.IncidentEdges(VarSet{0, 2}).size(), 4u);
  EXPECT_EQ(h.U(VarSet{0, 2}), VarSet::Full(4));
  EXPECT_EQ(h.N(VarSet{0, 2}), VarSet({1, 3}));
}

TEST(HypergraphTest, EliminationSequenceExampleA3) {
  // 4-cycle A,B,C,D with edges AB, BC, CD, DA; order (B, C, D, A).
  Hypergraph h = Hypergraph::Cycle(4);  // 0-1, 1-2, 2-3, 3-0
  Gveo order;
  order.blocks = {VarSet{1}, VarSet{2}, VarSet{3}, VarSet{0}};
  auto steps = EliminationSequence(h, order);
  ASSERT_EQ(steps.size(), 4u);
  // After eliminating B=1: edges {A,C}, {C,D}, {D,A}.
  EXPECT_EQ(steps[0].u, VarSet({0, 1, 2}));
  EXPECT_EQ(steps[1].before.edges().size(), 3u);
  EXPECT_EQ(steps[1].u, VarSet({0, 2, 3}));
  // Third step: only edge {D, A} remains.
  EXPECT_EQ(steps[2].before.edges().size(), 1u);
  EXPECT_EQ(steps[2].u, VarSet({0, 3}));
  // Proposition 4.11: steps 3 and 4 are subsumed by earlier U's.
  EXPECT_TRUE(steps[0].required);
  EXPECT_TRUE(steps[1].required);
  EXPECT_FALSE(steps[2].required);
  EXPECT_FALSE(steps[3].required);
}

TEST(HypergraphTest, GeneralizedEliminationBlocks) {
  Hypergraph h = Hypergraph::Clique(4);
  Gveo g;
  g.blocks = {VarSet{0, 1}, VarSet{2}, VarSet{3}};
  auto steps = EliminationSequence(h, g);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].u, VarSet::Full(4));
  EXPECT_FALSE(steps[1].required);  // clustered: everything inside U_1
  EXPECT_FALSE(steps[2].required);
}

TEST(HypergraphTest, IsClustered) {
  EXPECT_TRUE(Hypergraph::Triangle().IsClustered());
  EXPECT_TRUE(Hypergraph::Clique(5).IsClustered());
  EXPECT_TRUE(Hypergraph::Pyramid(3).IsClustered());
  EXPECT_TRUE(Hypergraph::Pyramid(5).IsClustered());
  EXPECT_FALSE(Hypergraph::Cycle(4).IsClustered());
  EXPECT_FALSE(Hypergraph::Cycle(6).IsClustered());
  EXPECT_FALSE(Hypergraph::DoubleTriangle().IsClustered());
  // Every pair of Lemma C.15's five vertices co-occurs in one of
  // {XYW, XYL, XZ, YZ, ZWL}: the hypergraph is clustered, so the exact
  // Eq. (40) path applies to it.
  EXPECT_TRUE(Hypergraph::LemmaC15().IsClustered());
}

TEST(HypergraphTest, EliminatePreservesIndices) {
  Hypergraph h = Hypergraph::Triangle();
  Hypergraph h2 = h.Eliminate(VarSet{1});  // eliminate Y
  EXPECT_EQ(h2.vertices(), VarSet({0, 2}));
  // R(X,Y) and S(Y,Z) replaced by {X,Z}; T(X,Z) already there -> one edge.
  EXPECT_EQ(h2.edges().size(), 1u);
  EXPECT_EQ(h2.edges()[0], VarSet({0, 2}));
}

TEST(HypergraphTest, WithoutSubsumedEdges) {
  Hypergraph h(3);
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 1});
  h.AddEdge({2});
  Hypergraph slim = h.WithoutSubsumedEdges();
  EXPECT_EQ(slim.edges().size(), 1u);
  EXPECT_EQ(slim.edges()[0], VarSet::Full(3));
}

TEST(GveoTest, AllVeosCount) {
  EXPECT_EQ(AllVeos(Hypergraph::Triangle()).size(), 6u);
  EXPECT_EQ(AllVeos(Hypergraph::Cycle(4)).size(), 24u);
}

TEST(GveoTest, AllGveosFubiniCounts) {
  // Ordered set partitions: Fubini numbers 13, 75, 541.
  EXPECT_EQ(AllGveos(Hypergraph::Triangle()).size(), 13u);
  EXPECT_EQ(AllGveos(Hypergraph::Cycle(4)).size(), 75u);
  EXPECT_EQ(AllGveos(Hypergraph::Clique(5)).size(), 541u);
}

TEST(GveoTest, BlocksPartitionVertices) {
  for (const Gveo& g : AllGveos(Hypergraph::Cycle(4))) {
    VarSet all;
    for (const VarSet& b : g.blocks) {
      EXPECT_FALSE(b.empty());
      EXPECT_FALSE(all.Intersects(b));
      all = all | b;
    }
    EXPECT_EQ(all, VarSet::Full(4));
  }
}

TEST(TdTest, FourCycleHasTwoTds) {
  // Example A.2: exactly the two bag-pairs {ABC, ACD} and {BCD, ABD}.
  auto tds = EnumerateTds(Hypergraph::Cycle(4));
  ASSERT_EQ(tds.size(), 2u);
  std::set<std::set<uint32_t>> got;
  for (const auto& td : tds) {
    std::set<uint32_t> bags;
    for (VarSet b : td.bags) bags.insert(b.mask());
    got.insert(bags);
  }
  std::set<std::set<uint32_t>> want = {
      {VarSet({0, 1, 2}).mask(), VarSet({0, 2, 3}).mask()},
      {VarSet({1, 2, 3}).mask(), VarSet({0, 1, 3}).mask()}};
  EXPECT_EQ(got, want);
}

TEST(TdTest, TriangleHasOnlyTrivialTd) {
  auto tds = EnumerateTds(Hypergraph::Triangle());
  ASSERT_EQ(tds.size(), 1u);
  ASSERT_EQ(tds[0].bags.size(), 1u);
  EXPECT_EQ(tds[0].bags[0], VarSet::Full(3));
}

TEST(TdTest, CliqueHasOnlyTrivialTd) {
  for (int k = 3; k <= 6; ++k) {
    auto tds = EnumerateTds(Hypergraph::Clique(k));
    ASSERT_EQ(tds.size(), 1u) << "k=" << k;
    EXPECT_EQ(tds[0].bags[0], VarSet::Full(k));
  }
}

TEST(TdTest, AllEnumeratedTdsAreValid) {
  for (const Hypergraph& h :
       {Hypergraph::Triangle(), Hypergraph::Cycle(4), Hypergraph::Cycle(5),
        Hypergraph::Cycle(6), Hypergraph::Pyramid(3),
        Hypergraph::DoubleTriangle(), Hypergraph::LemmaC15()}) {
    for (const auto& td : EnumerateTds(h)) {
      EXPECT_TRUE(IsValidTd(h, td)) << h.ToString();
    }
  }
}

TEST(TdTest, DoubleTriangleBestTdHasTriangleBags) {
  // Section 1.1: Q_double-triangle decomposes into bags {X,Y,Z}, {X,Y,Z'}.
  auto tds = EnumerateTds(Hypergraph::DoubleTriangle());
  bool found = false;
  for (const auto& td : tds) {
    std::set<uint32_t> bags;
    for (VarSet b : td.bags) bags.insert(b.mask());
    if (bags == std::set<uint32_t>{VarSet({0, 1, 2}).mask(),
                                   VarSet({0, 1, 3}).mask()}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TdTest, CycleBagCountsGrow) {
  // k-cycle TDs have ceil(k/2) ... bags; just sanity-check the counts grow
  // and every TD is non-redundant (no bag contains another).
  for (int k = 4; k <= 7; ++k) {
    auto tds = EnumerateTds(Hypergraph::Cycle(k));
    EXPECT_GE(tds.size(), 2u);
    for (const auto& td : tds) {
      for (const VarSet& a : td.bags) {
        for (const VarSet& b : td.bags) {
          if (a != b) {
            EXPECT_FALSE(a.ContainsAll(b));
          }
        }
      }
    }
  }
}

TEST(TdTest, TreeEdgesFormTree) {
  auto tds = EnumerateTds(Hypergraph::Cycle(6));
  for (const auto& td : tds) {
    auto edges = TreeEdges(td);
    EXPECT_EQ(edges.size(), td.bags.size() - 1);
  }
}

}  // namespace
}  // namespace fmmsw
