// Reproduction tests for the width calculators: rho*, fhtw, subw (Eq. 19)
// and w-subw (Definition 4.7) against the closed forms of Appendix C /
// Table 2 — all exact over rationals.

#include "core/exec_context.h"
#include "core/exec_status.h"
#include "entropy/witnesses.h"
#include "gtest/gtest.h"
#include "hypergraph/hypergraph.h"
#include "util/parallel.h"
#include "util/rational.h"
#include "width/closed_forms.h"
#include "width/cycle_dp.h"
#include "width/emm.h"
#include "width/mm_expr.h"
#include "width/omega_subw.h"
#include "width/subw.h"
#include "width/width_cache.h"

namespace fmmsw {
namespace {

namespace cf = closed_forms;

// ---------------------------------------------------------------- rho* --

TEST(RhoStarTest, KnownValues) {
  EXPECT_EQ(RhoStar(Hypergraph::Triangle()), Rational(3, 2));
  EXPECT_EQ(RhoStar(Hypergraph::Cycle(4)), Rational(2));
  EXPECT_EQ(RhoStar(Hypergraph::Cycle(5)), Rational(5, 2));
  for (int k = 3; k <= 7; ++k) {
    EXPECT_EQ(RhoStar(Hypergraph::Clique(k)), Rational(k, 2)) << k;
  }
  // Pyramid: base edge at weight 1 - 1/k plus 1/k on each {Y, X_i}.
  EXPECT_EQ(RhoStar(Hypergraph::Pyramid(3)), Rational(5, 3));
  EXPECT_EQ(RhoStar(Hypergraph::Pyramid(4)), Rational(7, 4));
}

// ---------------------------------------------------------------- fhtw --

TEST(FhtwTest, KnownValues) {
  EXPECT_EQ(Fhtw(Hypergraph::Triangle()), Rational(3, 2));
  // fhtw(C4) = 2 while subw(C4) = 3/2: the gap data partitioning closes.
  EXPECT_EQ(Fhtw(Hypergraph::Cycle(4)), Rational(2));
  EXPECT_EQ(Fhtw(Hypergraph::DoubleTriangle()), Rational(3, 2));
}

// ---------------------------------------------------------------- subw --

TEST(SubwTest, Triangle) {
  auto r = SubmodularWidth(Hypergraph::Triangle());
  EXPECT_EQ(r.value, cf::SubwTriangle());
  EXPECT_GE(r.lps_solved, 1);
}

TEST(SubwTest, FourCycleExampleA5) {
  auto r = SubmodularWidth(Hypergraph::Cycle(4));
  EXPECT_EQ(r.value, Rational(3, 2));
  EXPECT_GE(r.lps_solved, 1);
}

TEST(SubwTest, Cliques) {
  for (int k = 3; k <= 6; ++k) {
    EXPECT_EQ(SubmodularWidth(Hypergraph::Clique(k)).value,
              cf::SubwClique(k))
        << "k=" << k;
  }
}

TEST(SubwTest, Cycles) {
  for (int k = 4; k <= 6; ++k) {
    EXPECT_EQ(SubmodularWidth(Hypergraph::Cycle(k)).value, cf::SubwCycle(k))
        << "k=" << k;
  }
}

TEST(SubwTest, Pyramids) {
  EXPECT_EQ(SubmodularWidth(Hypergraph::Pyramid(3)).value, Rational(5, 3));
  EXPECT_EQ(SubmodularWidth(Hypergraph::Pyramid(4)).value, Rational(7, 4));
}

TEST(SubwTest, DoubleTriangle) {
  EXPECT_EQ(SubmodularWidth(Hypergraph::DoubleTriangle()).value,
            Rational(3, 2));
}

TEST(SubwTest, LemmaC15) {
  EXPECT_EQ(SubmodularWidth(Hypergraph::LemmaC15()).value,
            cf::SubwLemmaC15());
}

TEST(SubwTest, WorstCaseIsValidWitness) {
  auto r = SubmodularWidth(Hypergraph::Cycle(4));
  EXPECT_TRUE(IsPolymatroid(r.worst_case));
  EXPECT_TRUE(IsEdgeDominated(Hypergraph::Cycle(4), r.worst_case));
}

// ------------------------------------------------------------- MM / EMM --

TEST(MmExprTest, BranchesMatchEquation21) {
  MmExpr e{VarSet{0}, VarSet{1}, VarSet{2}, VarSet{}};
  const Rational gamma(1, 2);
  auto branches = e.Branches(gamma);
  ASSERT_EQ(branches.size(), 3u);
  // Evaluate on the cardinality polymatroid: h(S) = |S|.
  SetFn<Rational> card(VarSet::Full(3));
  for (VarSet s : Subsets(VarSet::Full(3))) card[s] = Rational(s.size());
  for (const auto& lc : branches) {
    EXPECT_EQ(EvaluateLinComb(lc, card), Rational(2) + gamma);
  }
  EXPECT_EQ(e.Evaluate(card, gamma), Rational(2) + gamma);
}

TEST(MmExprTest, GroupByConditioning) {
  // MM(X;Y;Z|G) on the cardinality polymatroid: every conditional is 1,
  // so each branch = 2 + gamma + h(G) = 3 + gamma.
  MmExpr e{VarSet{0}, VarSet{1}, VarSet{2}, VarSet{3}};
  SetFn<Rational> card(VarSet::Full(4));
  for (VarSet s : Subsets(VarSet::Full(4))) card[s] = Rational(s.size());
  EXPECT_EQ(e.Evaluate(card, Rational(1, 3)),
            Rational(3) + Rational(1, 3));
}

TEST(MmExprTest, SymmetryOfMeasure) {
  // The measure is symmetric in x, y, z (footnote 7).
  SetFn<Rational> h(VarSet::Full(3));
  h[VarSet{0}] = Rational(1, 3);
  h[VarSet{1}] = Rational(1, 2);
  h[VarSet{2}] = Rational(1);
  h[VarSet{0, 1}] = Rational(2, 3);
  h[VarSet{0, 2}] = Rational(1);
  h[VarSet{1, 2}] = Rational(5, 4);
  h[VarSet::Full(3)] = Rational(3, 2);
  const Rational gamma(2, 5);
  MmExpr a{VarSet{0}, VarSet{1}, VarSet{2}, VarSet{}};
  MmExpr b{VarSet{2}, VarSet{0}, VarSet{1}, VarSet{}};
  MmExpr c{VarSet{1}, VarSet{2}, VarSet{0}, VarSet{}};
  EXPECT_EQ(a.Evaluate(h, gamma), b.Evaluate(h, gamma));
  EXPECT_EQ(b.Evaluate(h, gamma), c.Evaluate(h, gamma));
}

TEST(EmmTest, TriangleSingleOption) {
  // Eliminating Y from the triangle: the only non-trivial option is
  // MM(X;Z;Y) (Section 2.2).
  auto options = EnumerateMmOptions(Hypergraph::Triangle(), VarSet{1});
  ASSERT_EQ(options.size(), 1u);
  EXPECT_EQ(options[0].z, VarSet{1});
  EXPECT_EQ(options[0].x | options[0].y, VarSet({0, 2}));
  EXPECT_TRUE(options[0].g.empty());
}

TEST(EmmTest, FourCliqueSixOptionsExample46) {
  // Example 4.6: eliminating X from the 4-clique yields exactly 6 options:
  // MM(YZ;W;X), MM(YW;Z;X), MM(ZW;Y;X), MM(Y;Z;X|W), MM(Y;W;X|Z),
  // MM(Z;W;X|Y).
  auto options = EnumerateMmOptions(Hypergraph::Clique(4), VarSet{0});
  EXPECT_EQ(options.size(), 6u);
  int with_groupby = 0;
  for (const auto& o : options) {
    EXPECT_EQ(o.z, VarSet{0});
    if (!o.g.empty()) ++with_groupby;
  }
  EXPECT_EQ(with_groupby, 3);
}

TEST(EmmTest, DoubleTriangleEliminatingYHasCombinedOption) {
  // Section 2.2: eliminating Y from Q_double-triangle allows treating
  // (Z, Z') as one dimension: MM(X;ZZ';Y) must be among the options.
  Hypergraph h = Hypergraph::DoubleTriangle();
  auto options = EnumerateMmOptions(h, VarSet{1});
  bool found = false;
  for (const auto& o : options) {
    if ((o.x == VarSet{0} && o.y == VarSet({2, 3})) ||
        (o.y == VarSet{0} && o.x == VarSet({2, 3}))) {
      found = o.g.empty();
    }
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------- clustered terms --

TEST(ClusteredTermsTest, TriangleHasOneTerm) {
  auto terms = ClusteredMmTerms(Hypergraph::Triangle());
  ASSERT_EQ(terms.size(), 1u);  // MM(X;Y;Z) up to symmetry
}

TEST(ClusteredTermsTest, FourCliqueHasTenTermsEq28) {
  auto terms = ClusteredMmTerms(Hypergraph::Clique(4));
  EXPECT_EQ(terms.size(), 10u);
  int with_groupby = 0;
  for (const auto& t : terms) {
    if (!t.g.empty()) ++with_groupby;
  }
  EXPECT_EQ(with_groupby, 4);  // MM(.;.;.|X) for each of the 4 vertices
}

// ------------------------------------------------------------- w-subw ----

class OmegaSweepTest : public ::testing::TestWithParam<Rational> {};

TEST_P(OmegaSweepTest, TriangleMatchesLemmaC5) {
  const Rational omega = GetParam();
  auto r = OmegaSubw(Hypergraph::Triangle(), omega);
  EXPECT_TRUE(r.exact);
  EXPECT_TRUE(r.used_clustered_form);
  EXPECT_EQ(r.value, cf::OmegaSubwTriangle(omega)) << omega.ToString();
}

TEST_P(OmegaSweepTest, FourCliqueMatchesLemmaC6) {
  const Rational omega = GetParam();
  auto r = OmegaSubw(Hypergraph::Clique(4), omega);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.value, cf::OmegaSubwClique4(omega)) << omega.ToString();
}

TEST_P(OmegaSweepTest, Pyramid3MatchesLemmaC13) {
  const Rational omega = GetParam();
  auto r = OmegaSubw(Hypergraph::Pyramid(3), omega);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.value, cf::OmegaSubwPyramid3(omega)) << omega.ToString();
}

INSTANTIATE_TEST_SUITE_P(OmegaValues, OmegaSweepTest,
                         ::testing::Values(Rational(2), Rational(9, 4),
                                           Rational(2371552, 1000000),
                                           Rational(5, 2), Rational(3)));

TEST(OmegaSubwTest, FiveCliqueMatchesLemmaC7) {
  const Rational omega(2371552, 1000000);
  auto r = OmegaSubw(Hypergraph::Clique(5), omega);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.value, cf::OmegaSubwClique5(omega));
}

TEST(OmegaSubwTest, CollapsesToSubwAtOmega3) {
  // Proposition 4.10.
  for (const Hypergraph& h : {Hypergraph::Triangle(), Hypergraph::Clique(4),
                              Hypergraph::Pyramid(3)}) {
    auto subw = SubmodularWidth(h);
    auto osubw = OmegaSubw(h, Rational(3));
    EXPECT_TRUE(osubw.exact);
    EXPECT_EQ(osubw.value, subw.value) << h.ToString();
  }
}

TEST(OmegaSubwTest, NeverExceedsSubw) {
  // Proposition 4.9, at the current best omega.
  const Rational omega(2371552, 1000000);
  for (const Hypergraph& h : {Hypergraph::Triangle(), Hypergraph::Clique(4),
                              Hypergraph::Pyramid(3)}) {
    EXPECT_LE(OmegaSubw(h, omega).value, SubmodularWidth(h).value);
  }
}

TEST(OmegaSubwTest, WorstCasePolymatroidIsValid) {
  const Rational omega(5, 2);
  auto r = OmegaSubw(Hypergraph::Clique(4), omega);
  EXPECT_TRUE(IsPolymatroid(r.worst_case));
  EXPECT_TRUE(IsEdgeDominated(Hypergraph::Clique(4), r.worst_case));
}

TEST(OmegaSubwTest, FullEnumerationMatchesBranchAndBound) {
  // Example D.1 (scaled down: exact agreement of the two solvers on the
  // triangle and 4-clique).
  const Rational omega(7, 3);
  OmegaSubwOptions full;
  full.full_enumeration = true;
  auto a = OmegaSubwClustered(Hypergraph::Clique(4), omega, full);
  auto b = OmegaSubwClustered(Hypergraph::Clique(4), omega);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.num_mm_terms, 10);
  // Full enumeration solves 3^10 leaf LPs plus one exact certification.
  EXPECT_GE(a.lps_solved, 59049);
  EXPECT_LT(b.lps_solved, a.lps_solved / 50);  // B&B must prune hard
}

// ------------------------------------------- witness-based lower bounds --

TEST(WidthAtTest, TriangleWitnessAttainsWidth) {
  for (const Rational& omega :
       {Rational(2), Rational(2371552, 1000000), Rational(3)}) {
    auto w = TriangleWitness(omega);
    EXPECT_EQ(WidthAt(Hypergraph::Triangle(), w, omega),
              cf::OmegaSubwTriangle(omega))
        << omega.ToString();
  }
}

TEST(WidthAtTest, CliqueWitnessAttainsWidth) {
  const Rational omega(2371552, 1000000);
  EXPECT_EQ(WidthAt(Hypergraph::Clique(4), CliqueWitness(4), omega),
            cf::OmegaSubwClique4(omega));
}

TEST(WidthAtTest, FourCycleWitnessesMatchLemmaC9) {
  // High-omega witness attains 3/2 for w >= 5/2 ...
  for (const Rational& omega : {Rational(5, 2), Rational(14, 5),
                                Rational(3)}) {
    EXPECT_EQ(
        WidthAt(Hypergraph::Cycle(4), FourCycleWitnessHigh(), omega),
        Rational(3, 2))
        << omega.ToString();
  }
  // ... and the low-omega witness attains (4w-1)/(2w+1) for w <= 5/2.
  for (const Rational& omega :
       {Rational(2), Rational(9, 4), Rational(2371552, 1000000)}) {
    EXPECT_EQ(
        WidthAt(Hypergraph::Cycle(4), FourCycleWitnessLow(omega), omega),
        cf::OmegaSubwCycle4(omega))
        << omega.ToString();
  }
}

TEST(WidthAtTest, Pyramid3WitnessAttainsWidth) {
  const Rational omega(5, 2);
  EXPECT_EQ(WidthAt(Hypergraph::Pyramid(3), Pyramid3Witness(omega), omega),
            cf::OmegaSubwPyramid3(omega));
}

TEST(OmegaSubwTest, FourCycleBoundsBracketClosedForm) {
  // The 4-cycle is not clustered; the general path must produce certified
  // bounds with lower == the Lemma C.9 value (via the witnesses).
  const Rational omega(2371552, 1000000);
  OmegaSubwOptions opts;
  opts.witnesses.push_back(FourCycleWitnessLow(omega));
  opts.witnesses.push_back(FourCycleWitnessHigh());
  auto r = OmegaSubw(Hypergraph::Cycle(4), omega, opts);
  EXPECT_FALSE(r.used_clustered_form);
  EXPECT_EQ(r.lower, cf::OmegaSubwCycle4(omega));
  EXPECT_GE(r.upper, r.lower);
}

// ------------------------------------- planner determinism, warmth, cache --

// The full OmegaSubwResult must be bit-identical at every thread count —
// values, bounds, witness polymatroid, and all planner counters. The
// search is phase-structured so parallel fan-outs fill disjoint slots and
// every reduction runs serially; this test is the contract.
void ExpectSameResult(const OmegaSubwResult& a, const OmegaSubwResult& b,
                      bool compare_counters) {
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.lower, b.lower);
  EXPECT_EQ(a.upper, b.upper);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.used_clustered_form, b.used_clustered_form);
  EXPECT_EQ(a.num_mm_terms, b.num_mm_terms);
  EXPECT_TRUE(a.worst_case == b.worst_case);
  if (compare_counters) {
    EXPECT_EQ(a.lps_solved, b.lps_solved);
    EXPECT_EQ(a.lp_warm_starts, b.lp_warm_starts);
    EXPECT_EQ(a.lp_pivots, b.lp_pivots);
  }
}

TEST(PlannerDeterminismTest, ParallelMatchesSerialClusteredForm) {
  const Rational omega(2371552, 1000000);
  OmegaSubwOptions opts;
  opts.use_width_cache = false;
  for (const Hypergraph& h :
       {Hypergraph::Clique(4), Hypergraph::Pyramid(3)}) {
    ExecContext serial(1);
    const auto reference = OmegaSubw(h, omega, opts, &serial);
    ASSERT_TRUE(reference.used_clustered_form);
    for (int threads : {2, 4, 8}) {
      ExecContext ec(threads);
      ExpectSameResult(reference, OmegaSubw(h, omega, opts, &ec),
                       /*compare_counters=*/true);
    }
  }
}

TEST(PlannerDeterminismTest, ParallelMatchesSerialGeneralForm) {
  const Rational omega(2371552, 1000000);
  OmegaSubwOptions opts;
  opts.use_width_cache = false;
  opts.witnesses.push_back(FourCycleWitnessLow(omega));
  opts.witnesses.push_back(FourCycleWitnessHigh());
  ExecContext serial(1);
  const auto reference =
      OmegaSubw(Hypergraph::Cycle(4), omega, opts, &serial);
  ASSERT_FALSE(reference.used_clustered_form);
  for (int threads : {2, 4, 8}) {
    ExecContext ec(threads);
    ExpectSameResult(reference,
                     OmegaSubw(Hypergraph::Cycle(4), omega, opts, &ec),
                     /*compare_counters=*/true);
  }
}

TEST(PlannerDeterminismTest, WidthAtThreadCountInvariant) {
  const Rational omega(2371552, 1000000);
  const auto w = FourCycleWitnessHigh();
  OmegaSubwOptions opts;
  ExecContext serial(1);
  const Rational reference =
      WidthAt(Hypergraph::Cycle(4), w, omega, opts, &serial);
  for (int threads : {2, 4, 8}) {
    ExecContext ec(threads);
    EXPECT_EQ(reference, WidthAt(Hypergraph::Cycle(4), w, omega, opts, &ec))
        << threads;
  }
}

TEST(PlannerWarmStartTest, ColdSolveMatchesWarmSolve) {
  // Warm starting may change LP trajectories (and so lps_solved /
  // lp_pivots) but never the answer: value, bounds, and the canonical
  // witness polymatroid must be exactly equal.
  const Rational omega(2371552, 1000000);
  OmegaSubwOptions warm;
  warm.use_width_cache = false;
  OmegaSubwOptions cold = warm;
  cold.warm_start = false;
  {
    const auto rw = OmegaSubw(Hypergraph::Clique(4), omega, warm);
    const auto rc = OmegaSubw(Hypergraph::Clique(4), omega, cold);
    ExpectSameResult(rw, rc, /*compare_counters=*/false);
    EXPECT_GT(rw.lp_warm_starts, 0);
    EXPECT_EQ(rc.lp_warm_starts, 0);
    EXPECT_LT(rw.lp_pivots, rc.lp_pivots);
  }
  {
    OmegaSubwOptions warm_g = warm, cold_g = cold;
    warm_g.witnesses.push_back(FourCycleWitnessHigh());
    cold_g.witnesses.push_back(FourCycleWitnessHigh());
    const auto rw = OmegaSubw(Hypergraph::Cycle(4), omega, warm_g);
    const auto rc = OmegaSubw(Hypergraph::Cycle(4), omega, cold_g);
    ExpectSameResult(rw, rc, /*compare_counters=*/false);
    EXPECT_GT(rw.lp_warm_starts, 0);
    EXPECT_EQ(rc.lp_warm_starts, 0);
  }
}

TEST(WidthCacheTest, SecondSolveIsServedFromCache) {
  const Rational omega(2371552, 1000000);
  WidthCache::Global().Clear();
  ExecContext ec(1);
  OmegaSubwOptions opts;  // cache on by default
  const auto first = OmegaSubw(Hypergraph::Clique(4), omega, opts, &ec);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(ec.stats().width_cache_hits.load(), 0);
  const auto second = OmegaSubw(Hypergraph::Clique(4), omega, opts, &ec);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(ec.stats().width_cache_hits.load(), 1);
  EXPECT_EQ(WidthCache::Global().hits(), 1);
  ExpectSameResult(first, second, /*compare_counters=*/true);
  // Distinct options key distinct entries: full enumeration is a miss.
  OmegaSubwOptions full = opts;
  full.full_enumeration = true;
  ExecContext ec2(1);
  // (Use the triangle so the full enumeration stays cheap.)
  const auto tri = OmegaSubw(Hypergraph::Triangle(), omega, full, &ec2);
  EXPECT_FALSE(tri.from_cache);
  WidthCache::Global().Clear();
  EXPECT_EQ(WidthCache::Global().size(), 0u);
}

TEST(WidthCacheTest, ConcurrentLookupInsertAtEightThreads) {
  // Regression pinned at 8 threads (oversubscribed on the dev sandboxes):
  // planners racing on the global cache — mixed Lookup/Insert/size/hits
  // on overlapping keys — must be free of data races (the CI tsan job
  // runs this under TSan) and converge to exactly one entry per distinct
  // key. Duplicate Insert keeps the first entry, so a key's stored value
  // is whichever thread won; all writers store the same bounds here,
  // mirroring the determinism contract real solvers obey.
  WidthCache::Global().Clear();
  constexpr int kKeys = 8;
  ThreadPool pool(8);
  pool.Run([&](int t) {
    for (int i = 0; i < 200; ++i) {
      const std::string key =
          std::string("hammer-key-") + std::to_string((i + t) % kKeys);
      OmegaSubwResult r;
      if (!WidthCache::Global().Lookup(key, &r)) {
        r.value = Rational(3, 2);
        r.exact = true;
        WidthCache::Global().Insert(key, r);
      } else {
        EXPECT_EQ(r.value, Rational(3, 2));
        EXPECT_TRUE(r.exact);
      }
      (void)WidthCache::Global().size();
      (void)WidthCache::Global().hits();
    }
  });
  EXPECT_EQ(WidthCache::Global().size(), static_cast<size_t>(kKeys));
  EXPECT_GT(WidthCache::Global().hits(), 0);
  WidthCache::Global().Clear();
}

TEST(PlannerGuardrailTest, PivotBudgetRaisesRecoverableAbort) {
  // An absurdly small per-LP pivot budget must surface as a catchable
  // QueryAbort(kCapacityExceeded), not a process abort.
  OmegaSubwOptions opts;
  opts.use_width_cache = false;
  opts.max_pivots = 1;
  try {
    OmegaSubw(Hypergraph::Clique(4), Rational(5, 2), opts);
    FAIL() << "expected QueryAbort";
  } catch (const QueryAbort& e) {
    EXPECT_EQ(e.status(), ExecStatus::kCapacityExceeded);
  }
}

TEST(PlannerGuardrailTest, FaultMidSolveNeverCachesPartialResults) {
  // A QueryAbort unwinding out of OmegaSubw mid-solve must never insert
  // a partial entry into the process WidthCache: fault the lp plane at
  // several poll ordinals, then verify a clean re-solve is a cache
  // *miss* that computes the correct exact value.
  const Rational omega(5, 2);
  OmegaSubwOptions opts;  // use_width_cache = true by default
  ExecContext ec(2);
  for (int64_t k : {1, 2, 5}) {
    WidthCache::Global().Clear();
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(ParseFaultPlan("lp:" + std::to_string(k), &plan, &err))
        << err;
    ec.guard().SetFaultPlan(plan);
    const ExecResult r = RunGuarded(ec, {}, [&] {
      OmegaSubw(Hypergraph::Clique(4), omega, opts, &ec);
    });
    EXPECT_EQ(r.status, ExecStatus::kMemoryLimitExceeded) << "lp:" << k;
    EXPECT_EQ(WidthCache::Global().size(), 0u)
        << "aborted solve leaked a partial cache entry at lp:" << k;
    ec.guard().SetFaultPlan(FaultPlan{});
    const auto clean = OmegaSubw(Hypergraph::Clique(4), omega, opts, &ec);
    EXPECT_FALSE(clean.from_cache) << "lp:" << k;
    EXPECT_TRUE(clean.exact);
    EXPECT_EQ(clean.value, cf::OmegaSubwClique4(omega));
    EXPECT_EQ(WidthCache::Global().size(), 1u);
  }
  WidthCache::Global().Clear();
}

TEST(PlannerGuardrailTest, PivotLimitRecoversToClosedForm) {
  // With recover_pivot_limit set, the same starved pivot budget degrades
  // to the Table 2 closed form instead of aborting — exact, witness-free
  // and (deliberately) never cached.
  WidthCache::Global().Clear();
  ExecContext ec(1);
  OmegaSubwOptions opts;
  opts.use_width_cache = true;  // on, to prove the degraded result skips it
  opts.max_pivots = 1;
  opts.recover_pivot_limit = true;
  const auto r = OmegaSubw(Hypergraph::Clique(4), Rational(5, 2), opts, &ec);
  EXPECT_TRUE(r.degraded_closed_form);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.value, cf::OmegaSubwClique4(Rational(5, 2)));
  EXPECT_EQ(r.lower, r.value);
  EXPECT_EQ(r.upper, r.value);
  EXPECT_FALSE(r.from_cache);
  EXPECT_EQ(WidthCache::Global().size(), 0u)
      << "degraded result must not be cached";
  EXPECT_GE(ec.stats().degraded_runs.load(), 1);
}

TEST(PlannerStatsTest, CountersFlowIntoExecContext) {
  const Rational omega(2371552, 1000000);
  ExecContext ec(1);
  OmegaSubwOptions opts;
  opts.use_width_cache = false;
  const auto r = OmegaSubw(Hypergraph::Clique(4), omega, opts, &ec);
  EXPECT_GT(r.lps_solved, 0);
  EXPECT_GT(r.plan_ns, 0);
  EXPECT_EQ(ec.stats().lp_solves.load(), r.lps_solved);
  EXPECT_EQ(ec.stats().lp_warm_starts.load(), r.lp_warm_starts);
  EXPECT_EQ(ec.stats().lp_pivots.load(), r.lp_pivots);
  EXPECT_GE(ec.stats().plan_ns.load(), r.plan_ns);
}

// ------------------------------------------------------- closed forms ----

TEST(ClosedFormsTest, Table2AtOmega2) {
  // At w = 2 (optimal MM), Table 2 collapses to the well-known values.
  const Rational two(2);
  EXPECT_EQ(cf::OmegaSubwTriangle(two), Rational(4, 3));
  EXPECT_EQ(cf::OmegaSubwClique4(two), Rational(3, 2));
  EXPECT_EQ(cf::OmegaSubwClique5(two), Rational(2));
  EXPECT_EQ(cf::OmegaSubwCycle4(two), Rational(7, 5));
  EXPECT_EQ(cf::OmegaSubwPyramid3(two), Rational(3, 2));
  EXPECT_EQ(cf::OmegaSubwClique(6, two), Rational(3, 2) + Rational(1, 2));
}

TEST(ClosedFormsTest, Table2AtOmega3CollapsesToSubw) {
  const Rational three(3);
  EXPECT_EQ(cf::OmegaSubwTriangle(three), cf::SubwTriangle());
  EXPECT_EQ(cf::OmegaSubwClique4(three), cf::SubwClique(4));
  EXPECT_EQ(cf::OmegaSubwClique5(three), cf::SubwClique(5));
  EXPECT_EQ(cf::OmegaSubwCycle4(three), cf::SubwCycle(4));
  EXPECT_EQ(cf::OmegaSubwPyramid3(three), cf::SubwPyramid(3));
  for (int k = 6; k <= 9; ++k) {
    EXPECT_EQ(cf::OmegaSubwClique(k, three), cf::SubwClique(k)) << k;
  }
}

TEST(ClosedFormsTest, OmegaSquareBasics) {
  const Rational omega(2371552, 1000000);
  // Square case: omega-square(1,1,1) = omega.
  EXPECT_EQ(cf::OmegaSquare(Rational(1), Rational(1), Rational(1), omega),
            omega);
  // Degenerate inner dimension: linear cost.
  EXPECT_EQ(
      cf::OmegaSquare(Rational(1), Rational(1), Rational(0), omega),
      Rational(2));
  // At omega = 2 it is simply a + b + c - min.
  EXPECT_EQ(cf::OmegaSquare(Rational(1), Rational(1, 2), Rational(1, 4),
                            Rational(2)),
            Rational(3, 2));
}

TEST(ClosedFormsTest, PyramidUpperBoundBeatsPanda) {
  // Table 1's new-algorithm row: for w < 3 the k-pyramid bound improves on
  // PANDA's 2 - 1/k.
  const Rational omega(2371552, 1000000);
  for (int k = 3; k <= 6; ++k) {
    EXPECT_LT(cf::OmegaSubwPyramidUpper(k, omega), cf::PriorPyramid(k)) << k;
  }
  for (int k = 3; k <= 6; ++k) {
    EXPECT_EQ(cf::OmegaSubwPyramidUpper(k, Rational(3)),
              cf::PriorPyramid(k));
  }
}

// ------------------------------------------------------------ cycle DP ---

TEST(CycleDpTest, FourCycleBracketsClosedForm) {
  // Our realizable DP composes sub-paths with a full inner dimension (no
  // light-split-vertex bookkeeping), so it upper-bounds c-square_4 =
  // 2 - 3/(2 min(w, 5/2) + 1) and never exceeds subw(C4) = 3/2; for
  // w >= 5/2 the closed form equals 3/2 and the DP is tight.
  for (double omega : {2.0, 2.371552, 2.5, 2.8, 3.0}) {
    const double closed = 2.0 - 3.0 / (2.0 * std::min(omega, 2.5) + 1.0);
    auto r = CycleCsquare(4, omega, 40);
    EXPECT_GE(r.value, closed - 0.02) << "omega=" << omega;
    EXPECT_LE(r.value, 1.5 + 0.02) << "omega=" << omega;
    if (omega >= 2.5) {
      EXPECT_NEAR(r.value, closed, 0.02) << "omega=" << omega;
    }
  }
}

TEST(CycleDpTest, MonotoneInOmega) {
  for (int k = 4; k <= 6; ++k) {
    double prev = 0;
    for (double omega : {2.0, 2.4, 2.8}) {
      double v = CycleCsquare(k, omega, 24).value;
      EXPECT_GE(v + 1e-9, prev) << "k=" << k << " omega=" << omega;
      prev = v;
    }
  }
}

TEST(CycleDpTest, BoundedBySubw) {
  // c-square_k <= subw(C_k) = 2 - 1/ceil(k/2) at omega = 3 (no MM gain).
  for (int k = 4; k <= 7; ++k) {
    double v = CycleCsquare(k, 3.0, 24).value;
    EXPECT_LE(v, cf::SubwCycle(k).ToDouble() + 0.02) << k;
  }
}

TEST(CycleDpTest, OddCycleAtOmega2) {
  // Known value (Table 2 of [12] at omega=2): c_5 = 2 - 2/5? For odd k,
  // c_k = 2 - 2/k at omega = 2. Allow grid slack.
  auto r = CycleCsquare(5, 2.0, 30);
  EXPECT_NEAR(r.value, 2.0 - 2.0 / 5.0, 0.03);
}

}  // namespace
}  // namespace fmmsw
