// Tests for the versioned catalog / snapshot plane (PR 10): epoch-stamped
// immutable relation versions, snapshot isolation (readers pin an epoch
// while commits stream past), copy-on-write staging with atomic
// commit/rollback under fault injection, the version-digest-keyed and
// LRU-bounded WidthCache, fuzz coverage for the FMMSW_FAULT_PLAN parser
// and ValidateQuery, and the headline reader/writer torture harness:
// concurrent readers at 1/4/8 threads during a stream of commits must
// each return results bit-identical to *some* single pinned epoch.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "core/database.h"
#include "core/exec_context.h"
#include "core/exec_status.h"
#include "engine/wcoj.h"
#include "gtest/gtest.h"
#include "hypergraph/hypergraph.h"
#include "relation/generators.h"
#include "relation/relation.h"
#include "util/random.h"
#include "util/rational.h"
#include "width/width_cache.h"

namespace fmmsw {
namespace {

Relation MakeRel(VarSet schema, const std::vector<std::vector<Value>>& rows) {
  Relation r(schema);
  for (const auto& t : rows) r.Add(t);
  r.SortAndDedupe();
  return r;
}

std::vector<std::vector<Value>> Rows(const Relation& r) {
  std::vector<std::vector<Value>> out;
  for (size_t i = 0; i < r.size(); ++i) {
    out.emplace_back(r.Row(i), r.Row(i) + r.arity());
  }
  return out;
}

const std::vector<std::string> kTriangleAtoms = {"R", "S", "T"};

/// Deterministic triangle relations for torture/atomicity tests: edge
/// lists over a small domain so appends keep changing the count.
Relation TriangleSide(VarSet schema, uint64_t seed, int tuples, int domain) {
  Rng rng(seed);
  return UniformRelation(schema, tuples, domain, &rng);
}

/// The deterministic per-epoch delta: rows planted into every relation
/// at epoch `e` (same function in the writer and in the serial oracle).
Relation EpochDelta(VarSet schema, int e) {
  Relation d(schema);
  // A tiny clique on two fresh vertices far above every seed domain used
  // in this file, so the delta rows never dedupe against the base and the
  // triangle count strictly changes every epoch.
  const Value a = static_cast<Value>(100000 + 3 * e);
  const Value b = static_cast<Value>(100000 + 3 * e + 1);
  d.Add({a, b});
  d.Add({a, a});
  d.Add({b, b});
  return d;
}

// ---------------------------------------------------------------------
// Catalog basics

TEST(CatalogTest, EmptyCatalogAndFirstCommit) {
  ExecContext ec(1);
  Database db;
  EXPECT_EQ(db.epoch(), 0);
  Snapshot s0 = db.snapshot(&ec);
  EXPECT_EQ(s0.epoch(), 0);
  EXPECT_EQ(s0.num_relations(), 0u);
  EXPECT_EQ(s0.Find("R"), nullptr);
  EXPECT_EQ(ec.stats().snapshots_pinned.load(), 1);

  const int64_t mem_before = ec.stats().mem_current_bytes.load();
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{1, 2}, {2, 3}}));
    // Nothing visible before the swap.
    EXPECT_EQ(db.epoch(), 0);
    EXPECT_EQ(db.snapshot(&ec).Find("R"), nullptr);
    txn.Commit();
    EXPECT_FALSE(txn.active());
  }
  EXPECT_EQ(db.epoch(), 1);
  EXPECT_EQ(ec.stats().commits.load(), 1);
  // Staged bytes graduated to catalog-owned state: transient balance
  // returns to its pre-transaction level.
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), mem_before);

  Snapshot s1 = db.snapshot(&ec);
  EXPECT_EQ(s1.epoch(), 1);
  ASSERT_NE(s1.Find("R"), nullptr);
  EXPECT_EQ(s1.Find("R")->size(), 2u);
  EXPECT_NE(s1.VersionDigest("R"), 0u);
  // The pre-commit snapshot still sees the empty catalog.
  EXPECT_EQ(s0.Find("R"), nullptr);
  EXPECT_EQ(s0.epoch(), 0);
}

TEST(CatalogTest, SnapshotPinsEpochAcrossCommits) {
  ExecContext ec(1);
  Database db;
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{1, 10}}));
    txn.Commit();
  }
  Snapshot pinned = db.snapshot(&ec);
  RelationPtr v1 = pinned.Share("R");
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{7, 70}, {8, 80}}));
    txn.Commit();
  }
  // The pinned snapshot still reads version 1, pointer-identical.
  EXPECT_EQ(pinned.epoch(), 1);
  EXPECT_EQ(pinned.Share("R").get(), v1.get());
  EXPECT_EQ(pinned.Find("R")->size(), 1u);
  // A fresh snapshot reads version 2.
  Snapshot fresh = db.snapshot(&ec);
  EXPECT_EQ(fresh.epoch(), 2);
  EXPECT_EQ(fresh.Find("R")->size(), 2u);
  EXPECT_NE(fresh.Share("R").get(), v1.get());
  EXPECT_NE(fresh.VersionDigest("R"), pinned.VersionDigest("R"));
}

TEST(CatalogTest, UntouchedVersionsAreSharedByPointer) {
  ExecContext ec(1);
  Database db;
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{1, 2}}));
    txn.Replace("S", MakeRel(VarSet{1, 2}, {{2, 3}}));
    txn.Commit();
  }
  Snapshot before = db.snapshot(&ec);
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{5, 6}}));
    txn.Commit();
  }
  Snapshot after = db.snapshot(&ec);
  // Copy-on-write: S was untouched, so epoch 2 shares epoch 1's version.
  EXPECT_EQ(after.Share("S").get(), before.Share("S").get());
  EXPECT_NE(after.Share("R").get(), before.Share("R").get());
  EXPECT_EQ(ec.stats().versions_retired.load(), 1);
}

TEST(CatalogTest, VersionsFreeWhenLastSnapshotDrops) {
  ExecContext ec(1);
  Database db;
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{1, 2}}));
    txn.Commit();
  }
  std::weak_ptr<const Relation> v1_watch;
  {
    Snapshot pinned = db.snapshot(&ec);
    v1_watch = pinned.Share("R");
    {
      Database::Transaction txn = db.Begin(&ec);
      txn.Replace("R", MakeRel(VarSet{0, 1}, {{9, 9}}));
      txn.Commit();
    }
    // Retired version survives while the snapshot pins it.
    EXPECT_FALSE(v1_watch.expired());
  }
  // Last reference gone: the retired version is freed.
  EXPECT_TRUE(v1_watch.expired());
}

TEST(CatalogTest, AppendBuildsUnionDropRemoves) {
  ExecContext ec(1);
  Database db;
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{1, 2}, {3, 4}}));
    txn.Commit();
  }
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Append("R", MakeRel(VarSet{0, 1}, {{3, 4}, {5, 6}}));  // {3,4} dupe
    txn.Commit();
  }
  Snapshot s = db.snapshot(&ec);
  EXPECT_EQ(Rows(*s.Find("R")),
            (std::vector<std::vector<Value>>{{1, 2}, {3, 4}, {5, 6}}));
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Drop("R");
    txn.Commit();
  }
  EXPECT_EQ(db.snapshot(&ec).Find("R"), nullptr);
  // The dropped version stays pinned by the older snapshot.
  EXPECT_EQ(s.Find("R")->size(), 3u);
}

TEST(CatalogTest, AppendSchemaMismatchAndDropMissingThrow) {
  ExecContext ec(1);
  Database db;
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{1, 2}}));
    txn.Commit();
  }
  Database::Transaction txn = db.Begin(&ec);
  try {
    txn.Append("R", MakeRel(VarSet{1, 2}, {{1, 2}}));
    FAIL() << "schema mismatch must throw";
  } catch (const QueryAbort& e) {
    EXPECT_EQ(e.status(), ExecStatus::kInvalidArgument);
  }
  try {
    txn.Drop("nope");
    FAIL() << "dropping an unknown relation must throw";
  } catch (const QueryAbort& e) {
    EXPECT_EQ(e.status(), ExecStatus::kInvalidArgument);
  }
  // The transaction is still usable and rolls back cleanly.
  EXPECT_TRUE(txn.active());
}

TEST(CatalogTest, RollbackExplicitAndOnDestruction) {
  ExecContext ec(1);
  Database db;
  const int64_t mem_before = ec.stats().mem_current_bytes.load();
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("R", MakeRel(VarSet{0, 1}, {{1, 2}}));
    txn.Rollback();
    EXPECT_FALSE(txn.active());
  }
  EXPECT_EQ(db.epoch(), 0);
  EXPECT_EQ(ec.stats().rollbacks.load(), 1);
  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Replace("S", MakeRel(VarSet{1, 2}, {{2, 3}}));
    // No Commit: destructor rolls back.
  }
  EXPECT_EQ(db.epoch(), 0);
  EXPECT_EQ(db.snapshot(&ec).num_relations(), 0u);
  EXPECT_EQ(ec.stats().rollbacks.load(), 2);
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), mem_before);
}

// ---------------------------------------------------------------------
// Fault-injected mid-commit atomicity sweep (satellite): for every
// staging/commit fault ordinal, the catalog equals the pre-transaction
// version (pointer-identical entries = bit-identical), the memory
// balance is restored, and an immediate retry of the same transaction
// succeeds.

void SeedTriangleCatalog(Database* db, ExecContext* ec, int tuples,
                         int domain) {
  Database::Transaction txn = db->Begin(ec);
  txn.Replace("R", TriangleSide(VarSet{0, 1}, 11, tuples, domain));
  txn.Replace("S", TriangleSide(VarSet{1, 2}, 22, tuples, domain));
  txn.Replace("T", TriangleSide(VarSet{0, 2}, 33, tuples, domain));
  txn.Commit();
}

/// One full update transaction: append the epoch-2 delta to every side,
/// drop nothing. Shared by the faulted attempt and the clean retry.
void StageUpdate(Database::Transaction* txn) {
  txn->Append("R", EpochDelta(VarSet{0, 1}, 2));
  txn->Append("S", EpochDelta(VarSet{1, 2}, 2));
  txn->Append("T", EpochDelta(VarSet{0, 2}, 2));
  txn->Commit();
}

TEST(AtomicityTest, FaultAtEveryStagingOrdinalRollsBackBitIdentical) {
  int faulted_ordinals = 0;
  bool exhausted = false;
  for (int ordinal = 1; ordinal <= 64 && !exhausted; ++ordinal) {
    ExecContext ec(1);
    Database db;
    SeedTriangleCatalog(&db, &ec, 6000, 80);  // > kStageChunkRows rows
    Snapshot before = db.snapshot(&ec);
    const RelationPtr r0 = before.Share("R");
    const RelationPtr s0 = before.Share("S");
    const RelationPtr t0 = before.Share("T");
    const int64_t mem_before = ec.stats().mem_current_bytes.load();
    const int64_t rollbacks_before = ec.stats().rollbacks.load();

    FaultPlan plan;
    plan.at[static_cast<int>(FaultSite::kOps)] = ordinal;
    ec.guard().SetFaultPlan(plan);
    bool threw = false;
    try {
      Database::Transaction txn = db.Begin(&ec);
      StageUpdate(&txn);
    } catch (const QueryAbort& e) {
      threw = true;
      EXPECT_EQ(e.status(), ExecStatus::kMemoryLimitExceeded)
          << "plan faults are retryable resource pressure";
    }
    ec.guard().SetFaultPlan(FaultPlan{});  // clear the sticky plan
    ec.guard().Disarm();

    if (!threw) {
      // Ordinal beyond the transaction's last poll: the sweep is done.
      exhausted = true;
      EXPECT_EQ(db.epoch(), 2);
      continue;
    }
    ++faulted_ordinals;
    // Catalog bit-identical to the pre-transaction state: same epoch,
    // same version pointers (shared_ptr identity implies identical
    // bytes — versions are immutable).
    Snapshot after = db.snapshot(&ec);
    EXPECT_EQ(after.epoch(), 1);
    EXPECT_EQ(after.Share("R").get(), r0.get());
    EXPECT_EQ(after.Share("S").get(), s0.get());
    EXPECT_EQ(after.Share("T").get(), t0.get());
    // Memory balance restored; the rollback was counted.
    EXPECT_EQ(ec.stats().mem_current_bytes.load(), mem_before);
    EXPECT_EQ(ec.stats().rollbacks.load(), rollbacks_before + 1);
    // An immediate retry of the same transaction succeeds.
    {
      Database::Transaction txn = db.Begin(&ec);
      StageUpdate(&txn);
    }
    EXPECT_EQ(db.epoch(), 2);
    EXPECT_GT(db.snapshot(&ec).Find("R")->size(), r0->size());
  }
  // The sweep must actually have exercised faults at several ordinals
  // and found the end of the transaction's poll stream.
  EXPECT_GE(faulted_ordinals, 5);
  EXPECT_TRUE(exhausted) << "64 ordinals did not exhaust the transaction";
}

// ---------------------------------------------------------------------
// Service entry points: snapshot-bound queries match direct evaluation
// and compose admission.

TEST(ServiceTest, QueryEntryPointsMatchDirectEvaluate) {
  ExecContext ec(1);
  Database db;
  SeedTriangleCatalog(&db, &ec, 1500, 60);
  Snapshot snap = db.snapshot(&ec);
  const Hypergraph h = Hypergraph::Triangle();

  QueryInput direct;
  ASSERT_TRUE(snap.Bind(kTriangleAtoms, &direct).ok());

  bool direct_bool = false;
  ASSERT_TRUE(EvaluateBooleanGuarded(h, direct, &direct_bool).ok());
  int64_t direct_count = -1;
  ASSERT_TRUE(EvaluateCountGuarded(h, direct, &direct_count, &ec).ok());
  Relation direct_join;
  ASSERT_TRUE(
      EvaluateJoinGuarded(h, direct, h.vertices(), &direct_join, &ec).ok());

  for (bool recovery : {false, true}) {
    QueryOptions opts;
    opts.use_recovery = recovery;
    bool b = !direct_bool;
    ASSERT_TRUE(db.QueryBoolean(snap, h, kTriangleAtoms, &b, opts, &ec).ok());
    EXPECT_EQ(b, direct_bool);
    int64_t c = -1;
    ASSERT_TRUE(db.QueryCount(snap, h, kTriangleAtoms, &c, opts, &ec).ok());
    EXPECT_EQ(c, direct_count);
    Relation j;
    ASSERT_TRUE(
        db.QueryJoin(snap, h, kTriangleAtoms, h.vertices(), &j, opts, &ec)
            .ok());
    EXPECT_EQ(Rows(j), Rows(direct_join));
  }
  EXPECT_GE(ec.stats().admitted.load(), 6);

  // Unknown atom name: clean kInvalidArgument from the binding step.
  int64_t c = -1;
  ExecResult bad =
      db.QueryCount(snap, h, {"R", "S", "missing"}, &c, {}, &ec);
  EXPECT_EQ(bad.status, ExecStatus::kInvalidArgument);
  EXPECT_EQ(c, -1);
}

TEST(ServiceTest, AdmissionShedsWhenSaturated) {
  ExecContext ec(1);
  AdmissionConfig cfg;
  cfg.small_slots = 1;
  cfg.heavy_slots = 1;
  cfg.max_queued = 0;  // no queue: a busy slot sheds immediately
  Database db(cfg);
  SeedTriangleCatalog(&db, &ec, 200, 30);
  Snapshot snap = db.snapshot(&ec);

  AdmissionController::Ticket held;
  ASSERT_TRUE(
      db.admission().Admit(QueryClass::kSmallProbe, {}, ec, &held).ok());
  int64_t c = -1;
  ExecResult shed =
      db.QueryCount(snap, Hypergraph::Triangle(), kTriangleAtoms, &c, {}, &ec);
  EXPECT_EQ(shed.status, ExecStatus::kRejected);
  EXPECT_GE(ec.stats().shed.load(), 1);
}

// ---------------------------------------------------------------------
// WidthCache: version-digest keying + LRU bounding (satellites).

TEST(WidthCachePlaneTest, SnapshotDigestKeysPlansAcrossCommits) {
  ExecContext ec(1);
  WidthCache::Global().Clear();
  Database db;
  SeedTriangleCatalog(&db, &ec, 300, 40);
  const Hypergraph h = Hypergraph::Triangle();
  const Rational omega(3, 1);

  Snapshot snap1 = db.snapshot(&ec);
  WidthReport rep;
  ASSERT_TRUE(
      db.PlanWidths(snap1, h, kTriangleAtoms, omega, &rep, {}, &ec).ok());
  EXPECT_FALSE(rep.from_cache);
  ASSERT_TRUE(
      db.PlanWidths(snap1, h, kTriangleAtoms, omega, &rep, {}, &ec).ok());
  EXPECT_TRUE(rep.from_cache) << "same snapshot -> cache hit";

  {
    Database::Transaction txn = db.Begin(&ec);
    txn.Append("R", EpochDelta(VarSet{0, 1}, 5));
    txn.Commit();
  }
  Snapshot snap2 = db.snapshot(&ec);
  ASSERT_TRUE(
      db.PlanWidths(snap2, h, kTriangleAtoms, omega, &rep, {}, &ec).ok());
  EXPECT_FALSE(rep.from_cache)
      << "a commit to a bound relation must miss the cache";
  // The pinned old snapshot still hits its own keyed entry.
  ASSERT_TRUE(
      db.PlanWidths(snap1, h, kTriangleAtoms, omega, &rep, {}, &ec).ok());
  EXPECT_TRUE(rep.from_cache);
}

TEST(WidthCachePlaneTest, LruEvictionBoundsTheCache) {
  WidthCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  OmegaSubwResult r;
  EXPECT_EQ(cache.Insert("k1", r), 0u);
  EXPECT_EQ(cache.Insert("k2", r), 0u);
  EXPECT_EQ(cache.size(), 2u);
  OmegaSubwResult out;
  EXPECT_TRUE(cache.Lookup("k1", &out));  // k1 -> MRU; k2 is now LRU
  EXPECT_EQ(cache.Insert("k3", r), 1u);   // evicts k2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("k2", &out));
  EXPECT_TRUE(cache.Lookup("k1", &out));
  EXPECT_TRUE(cache.Lookup("k3", &out));
  EXPECT_EQ(cache.evictions(), 1);
  // Re-inserting an existing key refreshes recency without growth.
  EXPECT_EQ(cache.Insert("k1", r), 0u);
  EXPECT_EQ(cache.size(), 2u);
  // Rebounding evicts down immediately; capacity 0 holds nothing.
  EXPECT_EQ(cache.SetCapacity(1), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.SetCapacity(0), 1u);
  EXPECT_EQ(cache.Insert("k4", r), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(WidthCachePlaneTest, GlobalEvictionsLandInExecStats) {
  ExecContext ec(1);
  WidthCache::Global().Clear();
  const size_t old_cap = WidthCache::Global().capacity();
  WidthCache::Global().SetCapacity(1);
  const Rational omega(3, 1);
  OmegaSubwOptions opts;
  // Two distinct shapes through a capacity-1 cache: the second insert
  // evicts the first, and the planner call site reports it.
  ComputeWidths(Hypergraph::Triangle(), omega, opts, &ec);
  ComputeWidths(Hypergraph::Cycle(4), omega, opts, &ec);
  EXPECT_GE(ec.stats().width_cache_evictions.load(), 1);
  WidthCache::Global().SetCapacity(old_cap);
  WidthCache::Global().Clear();
}

// ---------------------------------------------------------------------
// Fuzz/property tests (satellite): hostile FMMSW_FAULT_PLAN specs and
// malformed query/database pairs surface clean errors, never UB/abort.

TEST(FuzzTest, FaultPlanParserSurvivesHostileSpecs) {
  const std::vector<std::string> sites = {"wcoj", "sort",  "index", "mm",
                                          "lp",   "panda", "ops",   "bogus",
                                          "",     "OPS",   "ops "};
  const std::vector<std::string> counts = {
      "1",
      "64",
      "0",
      "-3",
      "",
      "7x",
      "every-8",
      "every-",
      "every-0",
      "99999999999999999999999999",  // overflow ordinal
      "184467440737095516150",       // > uint64 range
      "000000000000000000000000001",
      std::string(1, '\0'),
      std::string("1\0003", 3),  // embedded NUL
  };
  Rng rng(1234);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string spec;
    const int clauses = static_cast<int>(rng.Uniform(0, 4));
    for (int c = 0; c < clauses; ++c) {
      if (c > 0 || rng.Flip(0.2)) spec += ";";
      if (rng.Flip(0.1)) continue;  // empty segment
      spec += sites[rng.Uniform(0, sites.size() - 1)];
      if (rng.Flip(0.9)) spec += ":";
      spec += counts[rng.Uniform(0, counts.size() - 1)];
    }
    if (rng.Flip(0.05)) spec += std::string(1, '\0');
    FaultPlan plan;
    std::string error;
    const bool ok = ParseFaultPlan(spec, &plan, &error);
    if (!ok) {
      EXPECT_FALSE(error.empty()) << "spec: " << spec;
    } else {
      // Parsed plans carry only positive ordinals.
      for (int s = 0; s < kNumFaultSites; ++s) {
        EXPECT_GE(plan.at[s], 0);
        EXPECT_GE(plan.every[s], 0);
      }
    }
  }
  // Property anchors: known-good and known-bad specs.
  FaultPlan plan;
  EXPECT_TRUE(ParseFaultPlan("wcoj:7;sort:every-64", &plan, nullptr));
  EXPECT_EQ(plan.at[static_cast<int>(FaultSite::kWcoj)], 7);
  EXPECT_EQ(plan.every[static_cast<int>(FaultSite::kSort)], 64);
  EXPECT_TRUE(ParseFaultPlan(";;;", &plan, nullptr));
  EXPECT_FALSE(ParseFaultPlan("ops:99999999999999999999999999", &plan,
                              nullptr));
  EXPECT_FALSE(ParseFaultPlan(std::string("ops:1\0003", 7), &plan, nullptr));
  EXPECT_FALSE(ParseFaultPlan(std::string("ops:1\0", 6), &plan, nullptr));
}

TEST(FuzzTest, ValidateQueryRejectsMalformedPairsCleanly) {
  Rng rng(77);
  const Hypergraph shapes[] = {Hypergraph::Triangle(), Hypergraph::Cycle(4),
                               Hypergraph::Clique(4)};
  for (int iter = 0; iter < 500; ++iter) {
    const Hypergraph& h = shapes[rng.Uniform(0, 2)];
    QueryInput db;
    // Random structural corruption: wrong relation count, shuffled or
    // junk schemas, or a fully valid pair.
    const size_t n_rel =
        rng.Flip(0.3) ? rng.Uniform(0, h.edges().size() + 2)
                      : h.edges().size();
    bool valid = n_rel == h.edges().size();
    for (size_t i = 0; i < n_rel; ++i) {
      VarSet schema = i < h.edges().size() ? h.edges()[i] : VarSet{0, 1};
      if (rng.Flip(0.25)) {
        schema = VarSet(static_cast<uint32_t>(
            rng.Uniform(0, (1u << kMaxVars) - 1)));
        if (i < h.edges().size() && schema != h.edges()[i]) valid = false;
      }
      Relation r(schema);
      if (rng.Flip(0.5)) {
        std::vector<Value> row(static_cast<size_t>(r.arity()), 1);
        r.Add(row);
      }
      db.relations.push_back(std::move(r));
    }
    const ExecResult res = ValidateQuery(h, db);
    if (valid) {
      EXPECT_TRUE(res.ok()) << "iter " << iter;
    } else {
      EXPECT_EQ(res.status, ExecStatus::kInvalidArgument) << "iter " << iter;
      EXPECT_FALSE(res.message.empty());
    }
    // The guarded entry point converts the same corruption to a status,
    // never an abort, and leaves the output untouched.
    bool out = false;
    const ExecResult guarded = EvaluateBooleanGuarded(h, db, &out);
    EXPECT_EQ(guarded.status, res.status);
  }
}

// ---------------------------------------------------------------------
// Headline torture harness: concurrent readers during a stream of
// commits each return results bit-identical to some single pinned epoch.

struct EpochOracle {
  std::vector<int64_t> count;                           // by epoch
  std::vector<std::vector<std::vector<Value>>> rows;    // join rows by epoch
};

/// Serially precomputes the expected triangle count and join rows for
/// every epoch the torture writer will commit.
EpochOracle BuildOracle(int base_tuples, int domain, int last_epoch) {
  EpochOracle oracle;
  oracle.count.resize(last_epoch + 1, -1);
  oracle.rows.resize(last_epoch + 1);
  ExecContext ec(1);
  const Hypergraph h = Hypergraph::Triangle();
  Relation r = TriangleSide(VarSet{0, 1}, 11, base_tuples, domain);
  Relation s = TriangleSide(VarSet{1, 2}, 22, base_tuples, domain);
  Relation t = TriangleSide(VarSet{0, 2}, 33, base_tuples, domain);
  for (int e = 1; e <= last_epoch; ++e) {
    if (e > 1) {
      // Same deltas the writer commits for epoch e.
      Relation dr = EpochDelta(VarSet{0, 1}, e);
      Relation ds = EpochDelta(VarSet{1, 2}, e);
      Relation dt = EpochDelta(VarSet{0, 2}, e);
      for (size_t i = 0; i < dr.size(); ++i) r.AddRow(dr.Row(i));
      for (size_t i = 0; i < ds.size(); ++i) s.AddRow(ds.Row(i));
      for (size_t i = 0; i < dt.size(); ++i) t.AddRow(dt.Row(i));
      r.SortAndDedupe(&ec);
      s.SortAndDedupe(&ec);
      t.SortAndDedupe(&ec);
    }
    QueryInput db;
    db.relations = {r, s, t};
    oracle.count[e] = WcojCount(h, db, &ec);
    oracle.rows[e] = Rows(WcojJoin(h, db, h.vertices(), nullptr, &ec));
  }
  return oracle;
}

/// Readers loop {pin snapshot, query, check against the oracle at the
/// pinned epoch} while the writer commits epochs 2..last. `fault_plan`
/// additionally injects a sticky ops-site fault into every first commit
/// attempt, proving aborted transactions stay invisible to readers.
void RunTorture(int reader_threads, int last_epoch, bool fault_plan) {
  const int kBaseTuples = 1200;
  const int kDomain = 50;
  const EpochOracle oracle = BuildOracle(kBaseTuples, kDomain, last_epoch);

  Database db;
  ExecContext writer_ec(1);
  SeedTriangleCatalog(&db, &writer_ec, kBaseTuples, kDomain);
  ASSERT_EQ(db.epoch(), 1);
  const Hypergraph h = Hypergraph::Triangle();

  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(reader_threads));
  for (int i = 0; i < reader_threads; ++i) {
    readers.emplace_back([&db, &h, &oracle, &done, &reads, i]() {
      ExecContext ec(1);
      uint64_t iter = 0;
      while (!done.load(std::memory_order_acquire)) {
        Snapshot snap = db.snapshot(&ec);
        const int64_t epoch = snap.epoch();
        ASSERT_GE(epoch, 1);
        ASSERT_LT(epoch, static_cast<int64_t>(oracle.count.size()));
        if ((iter + static_cast<uint64_t>(i)) % 4 == 0) {
          // Full-join read: bit-identical rows for the pinned epoch.
          Relation j;
          ASSERT_TRUE(db.QueryJoin(snap, h, kTriangleAtoms, h.vertices(),
                                   &j, {}, &ec)
                          .ok());
          ASSERT_EQ(Rows(j), oracle.rows[static_cast<size_t>(epoch)])
              << "reader " << i << " epoch " << epoch;
        } else {
          int64_t c = -1;
          ASSERT_TRUE(
              db.QueryCount(snap, h, kTriangleAtoms, &c, {}, &ec).ok());
          ASSERT_EQ(c, oracle.count[static_cast<size_t>(epoch)])
              << "reader " << i << " epoch " << epoch;
        }
        ++iter;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int e = 2; e <= last_epoch; ++e) {
    if (fault_plan) {
      // First attempt aborts at a staging ordinal: readers must never
      // observe it. The retry below lands the epoch.
      FaultPlan plan;
      plan.at[static_cast<int>(FaultSite::kOps)] = 2;
      writer_ec.guard().SetFaultPlan(plan);
      // Arm resets the per-site poll ordinals so the one-shot at=2 fault
      // fires for THIS attempt (ordinals are cumulative while armed).
      writer_ec.guard().Arm(QueryLimits{});
      bool threw = false;
      try {
        Database::Transaction txn = db.Begin(&writer_ec);
        txn.Append("R", EpochDelta(VarSet{0, 1}, e));
        txn.Append("S", EpochDelta(VarSet{1, 2}, e));
        txn.Append("T", EpochDelta(VarSet{0, 2}, e));
        txn.Commit();
      } catch (const QueryAbort&) {
        threw = true;
      }
      writer_ec.guard().SetFaultPlan(FaultPlan{});
      writer_ec.guard().Disarm();
      ASSERT_TRUE(threw);
      ASSERT_EQ(db.epoch(), e - 1);
    }
    {
      Database::Transaction txn = db.Begin(&writer_ec);
      txn.Append("R", EpochDelta(VarSet{0, 1}, e));
      txn.Append("S", EpochDelta(VarSet{1, 2}, e));
      txn.Append("T", EpochDelta(VarSet{0, 2}, e));
      txn.Commit();
    }
    ASSERT_EQ(db.epoch(), e);
    std::this_thread::yield();
  }

  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(writer_ec.stats().commits.load(), last_epoch);
  if (fault_plan) {
    EXPECT_EQ(writer_ec.stats().rollbacks.load(), last_epoch - 1);
  }
  // Final state: one more reader validates the last epoch serially.
  ExecContext ec(1);
  int64_t c = -1;
  Snapshot fin = db.snapshot(&ec);
  EXPECT_EQ(fin.epoch(), last_epoch);
  ASSERT_TRUE(db.QueryCount(fin, h, kTriangleAtoms, &c, {}, &ec).ok());
  EXPECT_EQ(c, oracle.count[static_cast<size_t>(last_epoch)]);
}

TEST(TortureTest, SingleReaderDuringCommitStream) { RunTorture(1, 10, false); }

TEST(TortureTest, FourReadersDuringCommitStream) { RunTorture(4, 10, false); }

TEST(TortureTest, EightReadersDuringCommitStream) { RunTorture(8, 10, false); }

TEST(TortureTest, FourReadersUnderSiteKeyedFaultPlan) {
  RunTorture(4, 8, true);
}

}  // namespace
}  // namespace fmmsw
