// Tests for the recovery plane (PR 9): ExecStatus exhaustiveness, the
// site-keyed deterministic fault harness (FaultPlan / FMMSW_FAULT_PLAN),
// degraded-plan retry down the strategy ladder (RunWithRecovery + the
// core/api *WithRecovery entry points), and admission control.
//
// The load-bearing contract: under injected retryable faults, a recovered
// run returns results bit-identical to a clean run of the fallback
// strategy — at every thread count — with the retries/degraded_runs
// counters proving the ladder was actually exercised.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.h"
#include "core/api.h"
#include "core/exec_context.h"
#include "core/recovery.h"
#include "engine/strategy.h"
#include "engine/triangle.h"
#include "engine/wcoj.h"
#include "gtest/gtest.h"
#include "mm/matrix.h"
#include "relation/generators.h"
#include "util/rational.h"
#include "width/closed_forms.h"
#include "width/omega_subw.h"
#include "width/width_cache.h"

namespace fmmsw {
namespace {

constexpr ExecStatus kAllStatuses[] = {
    ExecStatus::kOk,
    ExecStatus::kCancelled,
    ExecStatus::kDeadlineExceeded,
    ExecStatus::kMemoryLimitExceeded,
    ExecStatus::kCapacityExceeded,
    ExecStatus::kInvalidArgument,
    ExecStatus::kRejected,
    ExecStatus::kRetryExhausted,
};

QueryInput TriangleWorkload(uint64_t seed) {
  WorkloadOptions opts;
  opts.kind = WorkloadKind::kUniform;
  opts.tuples_per_relation = 4000;
  opts.domain = 90;
  opts.seed = seed;
  opts.plant_witness = true;
  return MakeWorkload(Hypergraph::Triangle(), opts);
}

FaultPlan MustParse(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(ParseFaultPlan(spec, &plan, &error)) << error;
  return plan;
}

// -------------------------------------------------- status taxonomy --

TEST(StatusTest, StatusStringRoundTripCoversEveryValue) {
  // The switch in StatusString is total (no default) so a new enum value
  // fails -Wswitch at compile time; this test pins the name set and its
  // injectivity, so logs/bench JSON stay unambiguous.
  std::set<std::string> names;
  for (ExecStatus s : kAllStatuses) {
    const std::string name = StatusString(s);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << "unnamed status";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllStatuses));
  EXPECT_STREQ(StatusString(ExecStatus::kRejected), "rejected");
  EXPECT_STREQ(StatusString(ExecStatus::kRetryExhausted), "retry_exhausted");
}

TEST(StatusTest, RetryableClassification) {
  for (ExecStatus s : kAllStatuses) {
    const bool retryable = s == ExecStatus::kMemoryLimitExceeded ||
                           s == ExecStatus::kCapacityExceeded;
    EXPECT_EQ(IsRetryable(s), retryable) << StatusString(s);
  }
}

// ------------------------------------------------ fault-plan grammar --

TEST(FaultPlanTest, ParseGrammar) {
  FaultPlan plan = MustParse("wcoj:7;sort:every-64;lp:100");
  EXPECT_EQ(plan.at[static_cast<int>(FaultSite::kWcoj)], 7);
  EXPECT_EQ(plan.every[static_cast<int>(FaultSite::kSort)], 64);
  EXPECT_EQ(plan.at[static_cast<int>(FaultSite::kLp)], 100);
  EXPECT_EQ(plan.at[static_cast<int>(FaultSite::kMm)], 0);
  EXPECT_FALSE(plan.empty());

  // Empty spec and stray separators are fine.
  EXPECT_TRUE(MustParse("").empty());
  EXPECT_EQ(MustParse("mm:3;").at[static_cast<int>(FaultSite::kMm)], 3);

  // Every registered site name parses.
  for (int s = 0; s < kNumFaultSites; ++s) {
    const std::string spec = std::string(FaultSiteName(
                                 static_cast<FaultSite>(s))) + ":5";
    EXPECT_EQ(MustParse(spec).at[s], 5) << spec;
  }
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(ParseFaultPlan("bogus:3", &plan, &error));
  EXPECT_NE(error.find("unknown site"), std::string::npos);
  EXPECT_FALSE(ParseFaultPlan("mm", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("mm:", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("mm:0", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("mm:-3", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("mm:every-", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("mm:every-x", &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("sort:3x", &plan, &error));
}

TEST(FaultPlanTest, PlanFaultIsRetryableAndSiteKeyed) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(91);
  ExecContext ec(2);
  ec.guard().SetFaultPlan(MustParse("mm:1"));
  // An MM-plane fault aborts the MM engine with retryable status...
  int64_t count = -1;
  const ExecResult mm = RunGuarded(ec, {}, [&] {
    count = TriangleCountMm(db, MmKernel::kNaive, &ec);
  });
  EXPECT_EQ(mm.status, ExecStatus::kMemoryLimitExceeded);
  EXPECT_NE(mm.message.find("fault plan fired at site mm"),
            std::string::npos);
  EXPECT_EQ(count, -1) << "aborted rung must not publish a result";
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
  // ...while a strategy that never enters the MM plane is untouched.
  const ExecResult wcoj = RunGuarded(ec, {}, [&] {
    count = WcojCount(h, db, &ec);
  });
  ASSERT_TRUE(wcoj.ok()) << wcoj.message;
  ec.guard().SetFaultPlan(FaultPlan{});
  ExecContext ref_ec(1);
  EXPECT_EQ(count, WcojCount(h, db, &ref_ec));
}

// ----------------------------------------------- degraded-plan retry --

TEST(RecoveryTest, LadderFallsBackUnderMmPressureAtEveryThreadCount) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(101);
  ExecContext ref_ec(1);
  const int64_t clean_count = WcojCount(h, db, &ref_ec);
  ASSERT_GT(clean_count, 0);
  for (int threads : {1, 2, 4, 8}) {
    ExecContext ec(threads);
    ec.guard().SetFaultPlan(MustParse("mm:1"));
    int64_t count = -1;
    RecoveryReport report;
    const ExecResult r =
        EvaluateCountWithRecovery(h, db, &count, &ec, {}, {}, &report);
    ASSERT_TRUE(r.ok()) << r.message;
    // Bit-identical to a clean run of the fallback strategy.
    EXPECT_EQ(count, clean_count) << "threads=" << threads;
    EXPECT_EQ(report.winning_rung, "wcoj");
    // Every MM rung (strassen, blocked, bit-sliced) failed retryably.
    EXPECT_EQ(report.attempts, 4);
    EXPECT_EQ(report.degraded_runs, 3);
    ASSERT_EQ(report.failures.size(), 3u);
    for (const ExecResult& f : report.failures) {
      EXPECT_EQ(f.status, ExecStatus::kMemoryLimitExceeded);
    }
    EXPECT_EQ(ec.stats().retries.load(), 3);
    EXPECT_EQ(ec.stats().degraded_runs.load(), 3);
    EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
    // The plan is sticky until cleared: a clean rerun works afterwards.
    ec.guard().SetFaultPlan(FaultPlan{});
    int64_t again = -1;
    ASSERT_TRUE(EvaluateCountWithRecovery(h, db, &again, &ec).ok());
    EXPECT_EQ(again, clean_count);
  }
}

TEST(RecoveryTest, BooleanLadderRecoversAndMatches) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(103);
  ExecContext ref_ec(1);
  const bool clean = WcojBoolean(h, db, &ref_ec);
  for (int threads : {1, 4}) {
    ExecContext ec(threads);
    // An "mm" fault alone cannot reliably kill the Boolean hybrids: their
    // light-corner joins may answer before any matrix work (that clean
    // early exit under an irrelevant plan is covered by the per-site
    // soak). The degree-split phase, however, always runs through the
    // relational-ops plane — which the WCOJ rung never polls — so an
    // "ops" fault deterministically fails both hybrid rungs.
    ec.guard().SetFaultPlan(MustParse("ops:1"));
    bool result = !clean;
    RecoveryReport report;
    const ExecResult r =
        EvaluateBooleanWithRecovery(h, db, &result, &ec, {}, {}, &report);
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_EQ(result, clean);
    EXPECT_EQ(report.winning_rung, "wcoj");
    EXPECT_EQ(report.attempts, 3);
    EXPECT_EQ(report.degraded_runs, 2);
    ec.guard().SetFaultPlan(FaultPlan{});
  }
}

TEST(RecoveryTest, TerminalStatusIsNotRetried) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(105);
  ExecContext ec(2);
  ec.guard().Cancel();
  int64_t count = -1;
  RecoveryReport report;
  const ExecResult r =
      EvaluateCountWithRecovery(h, db, &count, &ec, {}, {}, &report);
  EXPECT_EQ(r.status, ExecStatus::kCancelled);
  EXPECT_NE(r.message.find("rung 'mm-strassen'"), std::string::npos);
  EXPECT_EQ(report.attempts, 1) << "terminal failures must not retry";
  EXPECT_EQ(count, -1);
  EXPECT_EQ(ec.stats().retries.load(), 0);
  // The context is immediately reusable.
  ASSERT_TRUE(EvaluateCountWithRecovery(h, db, &count, &ec).ok());
  ExecContext ref_ec(1);
  EXPECT_EQ(count, WcojCount(h, db, &ref_ec));
}

TEST(RecoveryTest, RetryExhaustedWhenEveryRungFaults) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(107);
  ExecContext ec(4);
  // Kill every plane: no rung can survive.
  ec.guard().SetFaultPlan(
      MustParse("wcoj:1;sort:1;index:1;mm:1;lp:1;panda:1;ops:1"));
  int64_t count = -42;
  RecoveryReport report;
  const ExecResult r =
      EvaluateCountWithRecovery(h, db, &count, &ec, {}, {}, &report);
  EXPECT_EQ(r.status, ExecStatus::kRetryExhausted);
  EXPECT_EQ(count, -42) << "no rung succeeded, output must be untouched";
  EXPECT_EQ(report.winning_rung, "");
  EXPECT_EQ(static_cast<size_t>(report.attempts), report.failures.size());
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
  ec.guard().SetFaultPlan(FaultPlan{});
}

TEST(RecoveryTest, MaxAttemptsCapsTheLadder) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(109);
  ExecContext ec(2);
  ec.guard().SetFaultPlan(MustParse("mm:1"));
  RetryPolicy policy;
  policy.max_attempts = 2;  // strassen + blocked only; never reaches wcoj
  int64_t count = -1;
  RecoveryReport report;
  const ExecResult r =
      EvaluateCountWithRecovery(h, db, &count, &ec, {}, policy, &report);
  EXPECT_EQ(r.status, ExecStatus::kRetryExhausted);
  EXPECT_NE(r.message.find("retry budget exhausted"), std::string::npos);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(count, -1);
  ec.guard().SetFaultPlan(FaultPlan{});
}

TEST(RecoveryTest, DeadlineBudgetIsSharedAcrossAttempts) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(111);
  ExecContext ec(2);
  // min_remaining_ms above the whole deadline: the walk must refuse to
  // launch even the first attempt rather than start with too little
  // budget — proving the deadline is re-derived, not restarted.
  QueryLimits limits;
  limits.deadline_ms = 40;
  RetryPolicy policy;
  policy.min_remaining_ms = 1000;
  int64_t count = -1;
  RecoveryReport report;
  const ExecResult r =
      EvaluateCountWithRecovery(h, db, &count, &ec, limits, policy, &report);
  EXPECT_EQ(r.status, ExecStatus::kDeadlineExceeded);
  EXPECT_EQ(report.attempts, 0);
  EXPECT_EQ(count, -1);
  // With a sane policy the same deadline admits a full recovery walk.
  ec.guard().SetFaultPlan(MustParse("mm:1"));
  limits.deadline_ms = 60000;
  const ExecResult ok =
      EvaluateCountWithRecovery(h, db, &count, &ec, limits, {}, &report);
  ASSERT_TRUE(ok.ok()) << ok.message;
  EXPECT_EQ(report.winning_rung, "wcoj");
  ExecContext ref_ec(1);
  EXPECT_EQ(count, WcojCount(h, db, &ref_ec));
  ec.guard().SetFaultPlan(FaultPlan{});
}

TEST(RecoveryTest, EmptyLadderIsInvalidArgument) {
  ExecContext ec(1);
  const ExecResult r = RunWithRecovery(ec, {}, {}, {});
  EXPECT_EQ(r.status, ExecStatus::kInvalidArgument);
}

TEST(RecoveryTest, JoinWithRecoveryMatchesCleanJoin) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(113);
  ExecContext ref_ec(1);
  const Relation ref = WcojJoin(h, db, h.vertices(), nullptr, &ref_ec);
  ExecContext ec(4);
  Relation out;
  ASSERT_TRUE(
      EvaluateJoinWithRecovery(h, db, h.vertices(), &out, &ec).ok());
  ASSERT_EQ(out.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    for (int c = 0; c < ref.arity(); ++c) {
      ASSERT_EQ(out.Row(i)[c], ref.Row(i)[c]) << "row " << i;
    }
  }
}

// Regression: MemCharge's converting constructor used to leak its bytes
// when ChargeMem threw over-budget inside it (a throwing constructor
// never runs its destructor). The leaked charge survived the unwind and
// shrank the budget seen by every later attempt on the same context, so
// a degradation ladder could exhaust even though its cheapest rung fit
// comfortably.
TEST(RecoveryTest, BudgetAbortLeavesMemoryChargesBalanced) {
  ExecContext ec(2);
  // 300 > the 256 recursion cutoff: Strassen pads to 512x512 and
  // charges ~8.4 MB for pads + scratch up front, tripping the 4 MB
  // budget inside the MemCharge constructor itself.
  const Matrix a(300, 300);
  const Matrix b(300, 300);
  QueryLimits tight;
  tight.memory_budget_bytes = 4 << 20;
  const ExecResult aborted = RunGuarded(ec, tight, [&] {
    const Matrix c = MultiplyStrassen(a, b, /*cutoff=*/256, &ec);
    (void)c;
  });
  ASSERT_EQ(aborted.status, ExecStatus::kMemoryLimitExceeded);
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0)
      << "budget abort leaked tracked memory charges";
  // The same context, under the same budget, must immediately admit a
  // plan that fits (cutoff 512 keeps 300x300 in the packed base case).
  const ExecResult ok = RunGuarded(ec, tight, [&] {
    const Matrix c = MultiplyStrassen(a, b, /*cutoff=*/512, &ec);
    (void)c;
  });
  EXPECT_TRUE(ok.ok()) << ok.message;
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
}

// ------------------------------------------------- per-site soaking --

// Recovery must hold under a fault at *any* site, not just mm: sweep
// every registered tag. Sites the count ladder never polls (e.g. panda)
// simply never fire — the run then matches the clean answer trivially,
// which is itself part of the contract (a plan for an untouched plane
// must not perturb results).
TEST(FaultPlanTest, PerSiteSoakRecoversOrMatchesCleanRun) {
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(115);
  ExecContext ref_ec(1);
  const int64_t clean_count = WcojCount(h, db, &ref_ec);
  const Rational omega(5, 2);
  for (int s = 0; s < kNumFaultSites; ++s) {
    const std::string site = FaultSiteName(static_cast<FaultSite>(s));
    ExecContext ec(4);
    ec.guard().SetFaultPlan(MustParse(site + ":3"));
    // Count ladder: either some rung avoids the faulted plane and the
    // recovered answer is bit-identical to the clean run, or every rung
    // faults and the output is untouched. Which one happens depends on
    // the plan alone, never on timing.
    int64_t count = -1;
    const ExecResult r = EvaluateCountWithRecovery(h, db, &count, &ec);
    if (r.ok()) {
      EXPECT_EQ(count, clean_count) << "site " << site;
    } else {
      EXPECT_EQ(r.status, ExecStatus::kRetryExhausted)
          << "site " << site << ": " << r.message;
      EXPECT_EQ(count, -1) << "site " << site;
    }
    // Planner ladder: exercises the lp plane with a closed-form rung as
    // the fallback.
    Rational width;
    std::vector<PlanRung> ladder;
    ladder.push_back({"lp-full", [&](ExecContext& lec) {
                        OmegaSubwOptions o;
                        o.use_width_cache = false;
                        width = OmegaSubw(Hypergraph::Clique(4), omega, o,
                                          &lec).value;
                      }});
    ladder.push_back({"closed-form", [&](ExecContext&) {
                        width = closed_forms::OmegaSubwClique4(omega);
                      }});
    RecoveryReport report;
    const ExecResult rw = RunWithRecovery(ec, {}, {}, ladder, &report);
    ASSERT_TRUE(rw.ok()) << "site " << site << ": " << rw.message;
    EXPECT_EQ(width, closed_forms::OmegaSubwClique4(omega))
        << "site " << site;
    if (site == "lp") {
      EXPECT_EQ(report.winning_rung, "closed-form");
      EXPECT_GE(report.degraded_runs, 1);
    }
    ec.guard().SetFaultPlan(FaultPlan{});
  }
}

// CI soak hook: FMMSW_FAULT_PLAN is injected by the workflow (sweeping
// site tags under ASan and TSan at several thread counts); the guard
// re-reads it at every Arm. Recovered answers must match unguarded runs
// (which never arm, hence never fault).
TEST(FaultPlanTest, EnvFaultPlanSoak) {
  const char* spec = std::getenv("FMMSW_FAULT_PLAN");
  if (spec == nullptr || *spec == '\0') {
    GTEST_SKIP() << "set FMMSW_FAULT_PLAN to run the env soak";
  }
  const Hypergraph h = Hypergraph::Triangle();
  const QueryInput db = TriangleWorkload(117);
  const int64_t clean_count = WcojCount(h, db);
  const bool clean_bool = WcojBoolean(h, db);
  ExecContext ec;  // process pool, sized by FMMSW_THREADS
  MustParse(spec);  // the plan must at least be well-formed
  // The recovery invariant under an *arbitrary* plan: either the ladder
  // finds a rung the plan does not touch and returns the clean answer
  // bit-identically, or every rung faults and the outputs are untouched.
  // Which of the two happens is a function of the plan alone (per-site
  // ordinals are deterministic), never of timing or thread count.
  int64_t count = -1;
  bool result = !clean_bool;
  const ExecResult rc = EvaluateCountWithRecovery(h, db, &count, &ec);
  const ExecResult rb = EvaluateBooleanWithRecovery(h, db, &result, &ec);
  if (rc.ok()) {
    EXPECT_EQ(count, clean_count);
  } else {
    EXPECT_EQ(rc.status, ExecStatus::kRetryExhausted) << rc.message;
    EXPECT_EQ(count, -1) << "failed recovery leaked a partial count";
  }
  if (rb.ok()) {
    EXPECT_EQ(result, clean_bool);
  } else {
    EXPECT_EQ(rb.status, ExecStatus::kRetryExhausted) << rb.message;
    EXPECT_EQ(result, !clean_bool) << "failed recovery leaked a result";
  }
  EXPECT_EQ(ec.stats().mem_current_bytes.load(), 0);
  // Planner ladder under the same plan: full LP solve with a closed-form
  // fallback rung.
  const Rational omega(5, 2);
  Rational width;
  std::vector<PlanRung> ladder;
  ladder.push_back({"lp-full", [&](ExecContext& lec) {
                      OmegaSubwOptions o;
                      o.use_width_cache = false;
                      width = OmegaSubw(Hypergraph::Clique(4), omega, o,
                                        &lec).value;
                    }});
  ladder.push_back({"closed-form", [&](ExecContext&) {
                      width = closed_forms::OmegaSubwClique4(omega);
                    }});
  const ExecResult rw = RunWithRecovery(ec, {}, {}, ladder);
  ASSERT_TRUE(rw.ok()) << rw.message;
  EXPECT_EQ(width, closed_forms::OmegaSubwClique4(omega));
}

// ---------------------------------------------------- admission control --

TEST(AdmissionTest, HeavySlotGatesQueueTimesOutDeterministically) {
  AdmissionConfig cfg;
  cfg.heavy_slots = 1;
  cfg.max_queued = 2;
  AdmissionController ctrl(cfg);
  ExecContext ec(1);
  AdmissionController::Ticket first;
  ASSERT_TRUE(
      ctrl.Admit(QueryClass::kHeavyAnalytic, {}, ec, &first).ok());
  EXPECT_TRUE(first.admitted());
  EXPECT_EQ(ctrl.active(QueryClass::kHeavyAnalytic), 1);
  EXPECT_EQ(ec.stats().admitted.load(), 1);
  // A deadline-bounded waiter times out while the slot is held, leaves
  // the queue, and reports the wait in queued_ns.
  AdmissionController::Ticket blocked;
  QueryLimits limits;
  limits.deadline_ms = 30;
  const ExecResult r =
      ctrl.Admit(QueryClass::kHeavyAnalytic, limits, ec, &blocked);
  EXPECT_EQ(r.status, ExecStatus::kDeadlineExceeded);
  EXPECT_FALSE(blocked.admitted());
  EXPECT_EQ(ctrl.queued(QueryClass::kHeavyAnalytic), 0);
  EXPECT_GE(ec.stats().queued_ns.load(), 30'000'000);
  // A patient waiter is admitted the moment the slot frees.
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    AdmissionController::Ticket t;
    const ExecResult wr = ctrl.Admit(QueryClass::kHeavyAnalytic, {}, ec, &t);
    EXPECT_TRUE(wr.ok()) << wr.message;
    admitted.store(true);
  });
  while (ctrl.queued(QueryClass::kHeavyAnalytic) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(admitted.load());
  first = AdmissionController::Ticket();  // release the slot
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ctrl.active(QueryClass::kHeavyAnalytic), 0);
  EXPECT_EQ(ec.stats().admitted.load(), 2);
}

TEST(AdmissionTest, ShedsImmediatelyWhenQueueFull) {
  AdmissionConfig cfg;
  cfg.heavy_slots = 1;
  cfg.max_queued = 0;  // no queue at all: busy means shed
  AdmissionController ctrl(cfg);
  ExecContext ec(1);
  AdmissionController::Ticket first;
  ASSERT_TRUE(
      ctrl.Admit(QueryClass::kHeavyAnalytic, {}, ec, &first).ok());
  AdmissionController::Ticket second;
  const ExecResult r =
      ctrl.Admit(QueryClass::kHeavyAnalytic, {}, ec, &second);
  EXPECT_EQ(r.status, ExecStatus::kRejected);
  EXPECT_FALSE(second.admitted());
  EXPECT_EQ(ec.stats().shed.load(), 1);
  // Small probes are an independent class: the heavy congestion does
  // not affect them.
  AdmissionController::Ticket probe;
  EXPECT_TRUE(ctrl.Admit(QueryClass::kSmallProbe, {}, ec, &probe).ok());
}

TEST(AdmissionTest, FifoOrderIsArrivalOrder) {
  AdmissionConfig cfg;
  cfg.heavy_slots = 1;
  cfg.max_queued = 8;
  AdmissionController ctrl(cfg);
  ExecContext ec(1);
  AdmissionController::Ticket gate;
  ASSERT_TRUE(ctrl.Admit(QueryClass::kHeavyAnalytic, {}, ec, &gate).ok());
  std::mutex order_mu;
  std::vector<int> order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&, i] {
      AdmissionController::Ticket t;
      const ExecResult r =
          ctrl.Admit(QueryClass::kHeavyAnalytic, {}, ec, &t);
      EXPECT_TRUE(r.ok()) << r.message;
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
      // Ticket released at scope exit, admitting the next waiter.
    });
    // Serialize arrival order so FIFO order is fully determined.
    while (ctrl.queued(QueryClass::kHeavyAnalytic) != i + 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  gate = AdmissionController::Ticket();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ctrl.active(QueryClass::kHeavyAnalytic), 0);
  EXPECT_EQ(ctrl.queued(QueryClass::kHeavyAnalytic), 0);
  EXPECT_EQ(ec.stats().admitted.load(), 4);
}

TEST(AdmissionTest, SmallProbeSlotsRunConcurrently) {
  AdmissionConfig cfg;
  cfg.small_slots = 4;
  cfg.max_queued = 0;
  AdmissionController ctrl(cfg);
  ExecContext ec(1);
  std::vector<AdmissionController::Ticket> tickets(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        ctrl.Admit(QueryClass::kSmallProbe, {}, ec, &tickets[i]).ok())
        << i;
  }
  EXPECT_EQ(ctrl.active(QueryClass::kSmallProbe), 4);
  AdmissionController::Ticket overflow;
  EXPECT_EQ(ctrl.Admit(QueryClass::kSmallProbe, {}, ec, &overflow).status,
            ExecStatus::kRejected);
  tickets.clear();
  EXPECT_EQ(ctrl.active(QueryClass::kSmallProbe), 0);
}

// ------------------------------------------------- strategy metadata --

TEST(StrategyTest, LaddersDescendByMemoryRankAndEndInWcoj) {
  for (const auto* ladder :
       {&TriangleCountLadder(), &TriangleBooleanLadder(),
        &GenericBooleanLadder()}) {
    ASSERT_FALSE(ladder->empty());
    for (size_t i = 1; i < ladder->size(); ++i) {
      EXPECT_LT((*ladder)[i].memory_rank, (*ladder)[i - 1].memory_rank);
    }
    EXPECT_FALSE(ladder->back().uses_mm)
        << "the last rung must be the memory-lightest combinatorial plan";
  }
  EXPECT_EQ(TriangleCountLadder().back().name, "wcoj");
  EXPECT_TRUE(IsTriangleQuery(Hypergraph::Triangle()));
  EXPECT_FALSE(IsTriangleQuery(Hypergraph::Cycle(4)));
  EXPECT_FALSE(IsTriangleQuery(Hypergraph::Clique(4)));
}

}  // namespace
}  // namespace fmmsw
