#include "util/rational.h"

#include <cstdlib>

#include "util/check.h"

namespace fmmsw {

void Rational::Normalize() {
  FMMSW_CHECK(!den_.IsZero());
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Rational Rational::operator-() const {
  Rational out;
  out.num_ = -num_;
  out.den_ = den_;
  return out;
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  FMMSW_CHECK(!o.IsZero());
  return Rational(num_ * o.den_, den_ * o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // Denominators are positive by invariant.
  return num_ * o.den_ < o.num_ * den_;
}

std::string Rational::ToString() const {
  if (den_ == BigInt(1)) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

Rational Rational::Parse(const std::string& s) {
  size_t slash = s.find('/');
  if (slash == std::string::npos) {
    return Rational(std::strtoll(s.c_str(), nullptr, 10));
  }
  int64_t p = std::strtoll(s.substr(0, slash).c_str(), nullptr, 10);
  int64_t q = std::strtoll(s.substr(slash + 1).c_str(), nullptr, 10);
  FMMSW_CHECK(q != 0);
  return Rational(p, q);
}

}  // namespace fmmsw
