#include "util/bigint.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fmmsw {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
}  // namespace

BigInt::BigInt(int64_t v) : negative_(v < 0) {
  uint64_t mag;
  if (v < 0) {
    // Careful with INT64_MIN.
    mag = static_cast<uint64_t>(-(v + 1)) + 1;
  } else {
    mag = static_cast<uint64_t>(v);
  }
  if (mag != 0) limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffULL));
  if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::AddMagnitude(const BigInt& a, const BigInt& b) {
  BigInt out;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(s & 0xffffffffULL);
    carry = s >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::SubMagnitude(const BigInt& a, const BigInt& b) {
  FMMSW_DCHECK(CompareMagnitude(a, b) >= 0);
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t d = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) d -= static_cast<int64_t>(b.limbs_[i]);
    if (d < 0) {
      d += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(d);
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  if (negative_ == o.negative_) {
    BigInt out = AddMagnitude(*this, o);
    out.negative_ = negative_ && !out.IsZero();
    return out;
  }
  int cmp = CompareMagnitude(*this, o);
  if (cmp == 0) return BigInt();
  if (cmp > 0) {
    BigInt out = SubMagnitude(*this, o);
    out.negative_ = negative_ && !out.IsZero();
    return out;
  }
  BigInt out = SubMagnitude(o, *this);
  out.negative_ = o.negative_ && !out.IsZero();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  if (IsZero() || o.IsZero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(limbs_[i]) * o.limbs_[j] +
                     out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + o.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  out.negative_ = negative_ != o.negative_;
  out.Trim();
  return out;
}

void BigInt::ShlBit() {
  uint32_t carry = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint32_t next = limbs_[i] >> 31;
    limbs_[i] = (limbs_[i] << 1) | carry;
    carry = next;
  }
  if (carry != 0) limbs_.push_back(carry);
}

void BigInt::ShrBit() {
  uint32_t carry = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    uint32_t next = limbs_[i] & 1u;
    limbs_[i] = (limbs_[i] >> 1) | (carry << 31);
    carry = next;
  }
  Trim();
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r) {
  FMMSW_CHECK(!b.IsZero());
  // Long division on magnitudes, bit by bit (schoolbook; fine for the limb
  // counts reached by simplex pivoting on small LPs).
  BigInt quot, rem;
  const size_t nbits = a.limbs_.size() * 32;
  quot.limbs_.assign(a.limbs_.size(), 0);
  for (size_t i = nbits; i-- > 0;) {
    rem.ShlBit();
    uint32_t bit = (i / 32 < a.limbs_.size())
                       ? ((a.limbs_[i / 32] >> (i % 32)) & 1u)
                       : 0u;
    if (bit != 0) {
      if (rem.limbs_.empty()) rem.limbs_.push_back(0);
      rem.limbs_[0] |= 1u;
    }
    if (CompareMagnitude(rem, b) >= 0) {
      rem = SubMagnitude(rem, b);
      quot.limbs_[i / 32] |= (1u << (i % 32));
    }
  }
  quot.Trim();
  rem.Trim();
  quot.negative_ = (a.negative_ != b.negative_) && !quot.IsZero();
  rem.negative_ = a.negative_ && !rem.IsZero();
  *q = std::move(quot);
  *r = std::move(rem);
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q, r;
  DivMod(*this, o, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt q, r;
  DivMod(*this, o, &q, &r);
  return r;
}

bool BigInt::operator==(const BigInt& o) const {
  return negative_ == o.negative_ && limbs_ == o.limbs_;
}

bool BigInt::operator<(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_;
  int cmp = CompareMagnitude(*this, o);
  return negative_ ? cmp > 0 : cmp < 0;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  if (a.IsZero()) return b;
  if (b.IsZero()) return a;
  // Binary GCD.
  int shift = 0;
  while (a.IsEven() && b.IsEven()) {
    a.ShrBit();
    b.ShrBit();
    ++shift;
  }
  while (a.IsEven()) a.ShrBit();
  while (!b.IsZero()) {
    while (b.IsEven()) b.ShrBit();
    if (CompareMagnitude(a, b) > 0) std::swap(a, b);
    b = SubMagnitude(b, a);
  }
  for (int i = 0; i < shift; ++i) a.ShlBit();
  return a;
}

double BigInt::ToDouble() const {
  double v = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    v = v * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -v : v;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  uint64_t mag = 0;
  if (limbs_.size() >= 1) mag |= limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) return mag <= (1ULL << 63);
  return mag < (1ULL << 63);
}

int64_t BigInt::ToInt64() const {
  FMMSW_CHECK(FitsInt64());
  uint64_t mag = 0;
  if (limbs_.size() >= 1) mag |= limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) return -static_cast<int64_t>(mag - 1) - 1;
  return static_cast<int64_t>(mag);
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  BigInt ten(10), cur = Abs();
  std::string digits;
  while (!cur.IsZero()) {
    BigInt q, r;
    DivMod(cur, ten, &q, &r);
    int d = r.IsZero() ? 0 : static_cast<int>(r.limbs_[0]);
    digits.push_back(static_cast<char>('0' + d));
    cur = q;
  }
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace fmmsw
