#ifndef FMMSW_UTIL_VARSET_H_
#define FMMSW_UTIL_VARSET_H_

/// \file
/// VarSet: a set of query variables represented as a 32-bit bitmask.
///
/// Queries in this library have at most kMaxVars variables, so every subset
/// of vars(Q) fits in a machine word and set-function tables (polymatroids,
/// entropy vectors) are plain vectors indexed by mask. All hypergraph,
/// width and entropy code builds on this type.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace fmmsw {

/// Maximum number of distinct variables in a query hypergraph.
inline constexpr int kMaxVars = 16;

/// A set of variables, each identified by an index in [0, kMaxVars).
class VarSet {
 public:
  constexpr VarSet() : mask_(0) {}
  constexpr explicit VarSet(uint32_t mask) : mask_(mask) {}
  VarSet(std::initializer_list<int> vars) : mask_(0) {
    for (int v : vars) Add(v);
  }

  /// The singleton set {v}.
  static constexpr VarSet Singleton(int v) { return VarSet(1u << v); }
  /// The full set {0, ..., k-1}.
  static constexpr VarSet Full(int k) {
    return VarSet(k == 32 ? ~0u : ((1u << k) - 1));
  }
  static constexpr VarSet Empty() { return VarSet(); }

  constexpr uint32_t mask() const { return mask_; }
  constexpr bool empty() const { return mask_ == 0; }
  int size() const { return __builtin_popcount(mask_); }

  bool Contains(int v) const {
    FMMSW_DCHECK(v >= 0 && v < 32);
    return (mask_ >> v) & 1u;
  }
  constexpr bool ContainsAll(VarSet s) const {
    return (mask_ & s.mask_) == s.mask_;
  }
  constexpr bool Intersects(VarSet s) const { return (mask_ & s.mask_) != 0; }

  void Add(int v) {
    FMMSW_DCHECK(v >= 0 && v < kMaxVars);
    mask_ |= (1u << v);
  }
  void Remove(int v) { mask_ &= ~(1u << v); }

  constexpr VarSet Union(VarSet s) const { return VarSet(mask_ | s.mask_); }
  constexpr VarSet Intersect(VarSet s) const {
    return VarSet(mask_ & s.mask_);
  }
  constexpr VarSet Minus(VarSet s) const { return VarSet(mask_ & ~s.mask_); }

  constexpr VarSet operator|(VarSet s) const { return Union(s); }
  constexpr VarSet operator&(VarSet s) const { return Intersect(s); }
  constexpr VarSet operator-(VarSet s) const { return Minus(s); }
  constexpr bool operator==(VarSet s) const { return mask_ == s.mask_; }
  constexpr bool operator!=(VarSet s) const { return mask_ != s.mask_; }
  constexpr bool operator<(VarSet s) const { return mask_ < s.mask_; }

  /// Index of the lowest-numbered variable; the set must be non-empty.
  int First() const {
    FMMSW_DCHECK(!empty());
    return __builtin_ctz(mask_);
  }

  /// All member variable indices in increasing order.
  std::vector<int> Members() const {
    std::vector<int> out;
    out.reserve(size());
    uint32_t m = mask_;
    while (m != 0) {
      int v = __builtin_ctz(m);
      out.push_back(v);
      m &= m - 1;
    }
    return out;
  }

  /// Human-readable form using the given variable names (or indices).
  std::string ToString(const std::vector<std::string>* names = nullptr) const {
    if (empty()) return "{}";
    std::string out = "{";
    bool first = true;
    for (int v : Members()) {
      if (!first) out += ",";
      first = false;
      if (names != nullptr && v < static_cast<int>(names->size())) {
        out += (*names)[v];
      } else {
        out += std::to_string(v);
      }
    }
    out += "}";
    return out;
  }

 private:
  uint32_t mask_;
};

/// Iterates over all subsets of `universe` (including empty and full), in
/// increasing mask order. Usage: for (VarSet s : Subsets(u)) { ... }.
class Subsets {
 public:
  explicit Subsets(VarSet universe) : universe_(universe) {}

  class Iterator {
   public:
    Iterator(uint32_t sub, uint32_t universe, bool done)
        : sub_(sub), universe_(universe), done_(done) {}
    VarSet operator*() const { return VarSet(sub_); }
    Iterator& operator++() {
      if (sub_ == universe_) {
        done_ = true;
      } else {
        sub_ = (sub_ - universe_) & universe_;
      }
      return *this;
    }
    bool operator!=(const Iterator& o) const {
      if (done_ != o.done_) return true;
      return !done_ && sub_ != o.sub_;
    }

   private:
    uint32_t sub_;
    uint32_t universe_;
    bool done_;
  };

  Iterator begin() const { return Iterator(0, universe_.mask(), false); }
  Iterator end() const { return Iterator(0, universe_.mask(), true); }

 private:
  VarSet universe_;
};

}  // namespace fmmsw

#endif  // FMMSW_UTIL_VARSET_H_
