#ifndef FMMSW_UTIL_THREAD_SAFETY_H_
#define FMMSW_UTIL_THREAD_SAFETY_H_

/// \file
/// Clang thread-safety-analysis annotations plus an annotated mutex.
///
/// The repo's standing concurrency contract — bit-identical results at
/// every thread count — rests on a small set of synchronization
/// disciplines (the ThreadPool fan-out handshake, the WidthCache mutex,
/// the QueryGuard arm/disarm protocol). The FMMSW_* macros below attach
/// those disciplines to the code so `clang -Wthread-safety -Werror`
/// (the CI `clang-checks` job) rejects any access that violates them;
/// under gcc (and any compiler without the attribute) they compile away
/// to nothing.
///
/// libstdc++'s std::mutex carries no capability attributes, so locking
/// it through std::lock_guard is invisible to the analysis. The Mutex /
/// MutexLock pair wraps std::mutex with annotated lock()/unlock() and a
/// scoped lock that exposes the underlying std::unique_lock for
/// condition-variable waits (cv.wait re-acquires before returning, so
/// the capability is genuinely held whenever MutexLock is alive).
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define FMMSW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FMMSW_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define FMMSW_CAPABILITY(x) FMMSW_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime equals holding a capability.
#define FMMSW_SCOPED_CAPABILITY FMMSW_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define FMMSW_GUARDED_BY(x) FMMSW_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define FMMSW_PT_GUARDED_BY(x) FMMSW_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability/-ies to be held on entry.
#define FMMSW_REQUIRES(...) \
  FMMSW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define FMMSW_ACQUIRE(...) \
  FMMSW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define FMMSW_RELEASE(...) \
  FMMSW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define FMMSW_TRY_ACQUIRE(b, ...) \
  FMMSW_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called while holding the capability
/// (self-deadlock guard for non-reentrant locks).
#define FMMSW_EXCLUDES(...) \
  FMMSW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is a reference to data guarded by the capability.
#define FMMSW_RETURN_CAPABILITY(x) FMMSW_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment stating the invariant that makes the unchecked access
/// safe (enforced by tools/check_contracts.py).
#define FMMSW_NO_THREAD_SAFETY_ANALYSIS \
  FMMSW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fmmsw {

/// std::mutex with capability annotations (see file comment). native()
/// exposes the wrapped mutex for std::unique_lock / condition_variable
/// interop; callers going through native() take responsibility for the
/// capability bookkeeping (normally via MutexLock below).
class FMMSW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FMMSW_ACQUIRE() { mu_.lock(); }
  void unlock() FMMSW_RELEASE() { mu_.unlock(); }
  bool try_lock() FMMSW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex, annotated so the analysis knows the
/// capability is held for the object's lifetime. Holds a real
/// std::unique_lock so condition variables can wait on it:
///
///   MutexLock lock(&mu_);
///   cv_.wait(lock.native(), [&] { return ready_; });   // reacquires
///
/// cv.wait releases and re-acquires native() internally; the capability
/// is held again by the time wait returns, so guarded accesses after the
/// wait are sound (the analysis treats the capability as held
/// throughout, which matches every point where user code actually runs).
class FMMSW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FMMSW_ACQUIRE(mu) : lock_(mu->native()) {}
  ~MutexLock() FMMSW_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace fmmsw

#endif  // FMMSW_UTIL_THREAD_SAFETY_H_
