#ifndef FMMSW_UTIL_BIGINT_H_
#define FMMSW_UTIL_BIGINT_H_

/// \file
/// BigInt: arbitrary-precision signed integers.
///
/// The exact-rational simplex (src/lp/exact_simplex.cc) certifies width
/// values like 2w/(w+1) at w = 2371552/1000000 with zero rounding error;
/// tableau entries grow well beyond int64 during pivoting, hence this class.
/// Magnitude is stored as base-2^32 limbs, little-endian. The API covers
/// exactly what Rational needs: +, -, *, divmod, gcd, comparison, printing.

#include <cstdint>
#include <string>
#include <vector>

namespace fmmsw {

class BigInt {
 public:
  BigInt() : negative_(false) {}
  BigInt(int64_t v);  // NOLINT(google-explicit-constructor): numeric literal.

  bool IsZero() const { return limbs_.empty(); }
  bool IsNegative() const { return negative_; }
  int Sign() const { return IsZero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated division (rounds toward zero), like C++ int64 division.
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  bool operator==(const BigInt& o) const;
  bool operator!=(const BigInt& o) const { return !(*this == o); }
  bool operator<(const BigInt& o) const;
  bool operator<=(const BigInt& o) const { return !(o < *this); }
  bool operator>(const BigInt& o) const { return o < *this; }
  bool operator>=(const BigInt& o) const { return !(*this < o); }

  BigInt Abs() const;

  /// Greatest common divisor of |a| and |b|; Gcd(0,0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  /// Quotient and remainder with |r| < |b| and sign(r) == sign(a) (or zero).
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r);

  /// Best-effort conversion; exact when the value fits in a double mantissa.
  double ToDouble() const;

  /// Returns the value if it fits in int64, otherwise aborts (CHECK).
  int64_t ToInt64() const;

  /// True if the value fits in int64.
  bool FitsInt64() const;

  std::string ToString() const;

 private:
  void Trim();
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  static BigInt AddMagnitude(const BigInt& a, const BigInt& b);
  /// Requires |a| >= |b|.
  static BigInt SubMagnitude(const BigInt& a, const BigInt& b);
  /// Shift magnitude left by one bit (multiply by 2), in place.
  void ShlBit();
  /// Shift magnitude right by one bit (divide by 2), in place.
  void ShrBit();
  bool IsEven() const { return limbs_.empty() || (limbs_[0] & 1u) == 0; }

  // Magnitude limbs, little-endian base 2^32; empty means zero.
  std::vector<uint32_t> limbs_;
  bool negative_;
};

}  // namespace fmmsw

#endif  // FMMSW_UTIL_BIGINT_H_
