#ifndef FMMSW_UTIL_PARALLEL_H_
#define FMMSW_UTIL_PARALLEL_H_

/// \file
/// A small shared thread pool for data-parallel loops: matrix row blocks
/// and the per-heavy-value probe loops of the engine algorithms.
///
/// Thread count comes from FMMSW_THREADS (default: hardware_concurrency).
/// The pool is lazily created on first use and shared process-wide; loops
/// fall back to plain serial execution when the pool has one thread, the
/// iteration count is tiny, or the caller is already inside a parallel
/// region (no nested parallelism).

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_safety.h"

namespace fmmsw {

class ThreadPool {
 public:
  explicit ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
    for (int t = 1; t < threads_; ++t) {
      workers_.emplace_back([this, t] { WorkerLoop(t); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&mu_);
      stop_ = true;
      ++generation_;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  int threads() const { return threads_; }

  /// True while a fan-out is active on this pool (racy snapshot). Callers
  /// about to *start* a parallel phase use it to pick a cheaper serial
  /// algorithm instead of running the parallel one on a single worker; a
  /// stale answer only costs speed, never correctness (Run still degrades
  /// nested calls safely).
  // relaxed: advisory snapshot only — a stale value changes which
  // algorithm a caller picks, never what it computes (documented above).
  bool busy() const { return in_parallel_.load(std::memory_order_relaxed); }

  /// Runs fn(t) for every t in [0, threads()); the caller executes t = 0.
  /// Returns when all invocations finished. Only one fan-out runs at a
  /// time: nested calls AND calls racing in from other threads (e.g. a
  /// private-pool worker invoking a matrix kernel that targets the global
  /// pool) atomically fail the acquire and run fn(0) serially instead of
  /// corrupting the in-flight job.
  ///
  /// Exception contract: a throw from any invocation of fn — the
  /// caller's own fn(0) or a worker's fn(t) — is held until every worker
  /// has drained (they share fn and the caller's stack), then rethrown
  /// on the calling thread; when several invocations throw, the caller's
  /// exception wins, else the first worker's. The pool itself is left
  /// fully reusable: in_parallel_ is released via RAII and no worker is
  /// ever left wedged on pending_.
  void Run(const std::function<void(int)>& fn) {
    bool expected = false;
    if (threads_ == 1 ||
        !in_parallel_.compare_exchange_strong(expected, true)) {
      fn(0);
      return;
    }
    // Released on every exit path, including an unwind out of the
    // rethrows below. Runs after the fan-in, so the slot is never handed
    // to another caller while workers still reference this job.
    struct ParallelRegion {
      std::atomic<bool>& flag;
      // release: pairs with the acquire CAS above — the next winner of
      // in_parallel_ must observe this fan-out's completed fan-in
      // (pending_ == 0 handshake) before reusing job_/error_.
      ~ParallelRegion() { flag.store(false, std::memory_order_release); }
    } region{in_parallel_};
    {
      MutexLock lock(&mu_);
      job_ = &fn;
      pending_ = threads_ - 1;
      error_ = nullptr;
      ++generation_;
    }
    wake_.notify_all();
    std::exception_ptr caller_error;
    try {
      fn(0);
    } catch (...) {
      caller_error = std::current_exception();
    }
    std::exception_ptr worker_error;
    {
      MutexLock lock(&mu_);
      done_.wait(lock.native(), [this]() FMMSW_REQUIRES(mu_) {
        return pending_ == 0;
      });
      job_ = nullptr;
      worker_error = error_;
      error_ = nullptr;
    }
    if (caller_error) std::rethrow_exception(caller_error);
    if (worker_error) std::rethrow_exception(worker_error);
  }

  /// The process-wide pool, sized by FMMSW_THREADS.
  static ThreadPool& Global() {
    static ThreadPool pool(ConfiguredThreads());
    return pool;
  }

  static int ConfiguredThreads() {
    if (const char* env = std::getenv("FMMSW_THREADS")) {
      const int n = std::atoi(env);
      if (n >= 1) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

 private:
  void WorkerLoop(int index) {
    uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* job = nullptr;
      {
        MutexLock lock(&mu_);
        wake_.wait(lock.native(), [&]() FMMSW_REQUIRES(mu_) {
          return stop_ || generation_ != seen;
        });
        seen = generation_;
        if (stop_) return;
        job = job_;
      }
      std::exception_ptr err;
      if (job != nullptr) {
        try {
          (*job)(index);
        } catch (...) {
          // Letting the exception escape the worker thread would call
          // std::terminate; capture it for the caller instead.
          err = std::current_exception();
        }
      }
      {
        MutexLock lock(&mu_);
        if (err && !error_) error_ = err;
        // Drop this worker's reference *before* the pending_ decrement:
        // once pending_ hits 0 the caller may rethrow and destroy the
        // exception, and the exception_ptr refcount lives in libstdc++
        // internals outside mu_. Releasing under the lock keeps every
        // worker-side touch of the exception object ordered before the
        // caller's use, so the final destroy always runs on the caller.
        err = nullptr;
        if (--pending_ == 0) done_.notify_one();
      }
    }
  }

  const int threads_;
  std::vector<std::thread> workers_;
  Mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  /// The fan-out handshake state: one job at a time, published to the
  /// workers and fanned back in entirely under mu_ (the lock acquisition
  /// in WorkerLoop is what makes the caller-side writes to `fn`'s
  /// closure — and, transitively, all data the job reads — visible to
  /// every worker, and the workers' writes visible to the caller after
  /// the pending_ == 0 wait).
  const std::function<void(int)>* job_ FMMSW_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ FMMSW_GUARDED_BY(mu_) = 0;
  int pending_ FMMSW_GUARDED_BY(mu_) = 0;
  bool stop_ FMMSW_GUARDED_BY(mu_) = false;
  /// First exception thrown by a worker in the current fan-out;
  /// rethrown on the caller by Run.
  std::exception_ptr error_ FMMSW_GUARDED_BY(mu_);
  // Held (via compare-exchange) while a fan-out is active on this pool;
  // losers of the acquire — nested calls and concurrent callers from
  // other threads — run their job serially. The winning CAS is seq_cst
  // (acquire): it pairs with the releasing store in ParallelRegion so a
  // new fan-out observes the previous one's completed fan-in.
  std::atomic<bool> in_parallel_ = false;
};

/// Splits [0, n) into chunks and runs `chunk(begin, end)` across `pool`.
/// `grain` is the minimum work per chunk — below 2 * grain total the loop
/// runs serially on the caller.
inline void ParallelFor(ThreadPool& pool, int64_t n,
                        const std::function<void(int64_t, int64_t)>& chunk,
                        int64_t grain = 1) {
  if (n <= 0) return;
  if (pool.threads() == 1 || n < 2 * grain) {
    chunk(0, n);
    return;
  }
  std::atomic<int64_t> next(0);
  const int64_t step =
      std::max<int64_t>(grain, n / (4 * static_cast<int64_t>(pool.threads())));
  pool.Run([&](int) {
    while (true) {
      const int64_t begin = next.fetch_add(step);
      if (begin >= n) return;
      chunk(begin, std::min(begin + step, n));
    }
  });
}

/// ParallelFor over the process-wide pool.
inline void ParallelFor(int64_t n,
                        const std::function<void(int64_t, int64_t)>& chunk,
                        int64_t grain = 1) {
  ParallelFor(ThreadPool::Global(), n, chunk, grain);
}

/// Parallel short-circuiting any-of: returns true as soon as some
/// `item(i)` returns true. Iterations already in flight finish; no new
/// chunks start after a hit.
inline bool ParallelAnyOf(ThreadPool& pool, int64_t n,
                          const std::function<bool(int64_t)>& item,
                          int64_t grain = 1) {
  if (n <= 0) return false;
  if (pool.threads() == 1 || n < 2 * grain) {
    for (int64_t i = 0; i < n; ++i) {
      if (item(i)) return true;
    }
    return false;
  }
  std::atomic<int64_t> next(0);
  std::atomic<bool> found(false);
  const int64_t step =
      std::max<int64_t>(grain, n / (8 * static_cast<int64_t>(pool.threads())));
  pool.Run([&](int) {
    // relaxed: early-exit hint only — a worker missing the flag for a
    // few iterations does redundant (side-effect-free) probes; the
    // authoritative read below is ordered by the pool's fan-in.
    while (!found.load(std::memory_order_relaxed)) {
      const int64_t begin = next.fetch_add(step);
      if (begin >= n) return;
      const int64_t end = std::min(begin + step, n);
      for (int64_t i = begin; i < end; ++i) {
        if (item(i)) {
          // relaxed: idempotent one-way latch (false -> true), read for
          // real only after the fan-in below.
          found.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  });
  return found.load();
}

/// ParallelAnyOf over the process-wide pool.
inline bool ParallelAnyOf(int64_t n, const std::function<bool(int64_t)>& item,
                          int64_t grain = 1) {
  return ParallelAnyOf(ThreadPool::Global(), n, item, grain);
}

}  // namespace fmmsw

#endif  // FMMSW_UTIL_PARALLEL_H_
