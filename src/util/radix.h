#ifndef FMMSW_UTIL_RADIX_H_
#define FMMSW_UTIL_RADIX_H_

/// \file
/// LSD radix sorts over packed sort keys. The data plane packs rows into
/// order-preserving multi-word records (see BiasValue in relation.h and
/// relation/row_sort.h) sorted by RadixSortRecords below — the inner loop
/// of SortAndDedupe, degree grouping, and the generic-WCOJ trie build —
/// while RadixSortKeyed orders (packed key, payload) pairs for the
/// sharded interner ranking. Below kRadixMinN the functions fall back to
/// std::sort/std::stable_sort (introsort wins on small inputs); above it
/// they run byte-wise counting
/// passes, skipping passes whose byte is constant across the whole input —
/// for keys drawn from small domains most passes are skipped and the sort
/// degenerates to one or two linear scatters.
///
/// All variants are stable and accept optional caller-owned scratch
/// buffers so arenas (ExecContext::scratch) can absorb the ping-pong
/// allocation. RadixSortRecords additionally takes a thread pool: above
/// kRadixParallelMinRecords each counting pass runs chunk-parallel
/// (per-chunk histograms, prefix-summed global offsets, chunk-ordered
/// scatter), which preserves stability exactly, so the parallel sort is
/// bit-identical to the serial one at every thread count.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace fmmsw {

class ThreadPool;
class QueryGuard;

inline constexpr size_t kRadixMinN = 2048;

/// Minimum record count before RadixSortRecords engages the pool: each
/// byte pass costs two pool fan-outs (histogram + scatter), which only
/// amortize on inputs well past the serial radix threshold.
inline constexpr size_t kRadixParallelMinRecords = size_t{1} << 15;

/// Stable sort of `n` fixed-width records stored back to back in `buf`
/// (`stride` uint64 words each), ordered lexicographically by the leading
/// `key_words` words (word 0 most significant, unsigned word compare);
/// trailing words are payload carried along unsorted. This is the wide-key
/// engine behind the data plane's packed row sorts: arities 3..kMaxVars
/// pack to 2..8 key words (see relation/row_sort.h) and an optional row
/// index rides as one payload word.
///
/// Regimes: a presorted pre-scan returns immediately; below kRadixMinN a
/// key-only std::stable_sort wins; otherwise LSD counting passes over the
/// varying key bytes run serially, or chunk-parallel on `pool` (nullable)
/// when it has idle workers and n >= kRadixParallelMinRecords. Every
/// regime produces the identical stable permutation. `scratch` is the
/// caller-owned ping-pong buffer (resized to n * stride words). Returns
/// true iff the pool-parallel regime was entered (its chunk work is
/// claimed from a shared cursor, so a fan-out racing in on the shared
/// pool can still degrade individual passes to the caller alone — the
/// result is unaffected, only the realized concurrency).
///
/// `guard` (nullable) is polled at every counting pass of the serial
/// regime and at every chunk claim of the parallel regime; a guardrail
/// violation throws QueryAbort out of the sort. The input buffer is left
/// in an unspecified permutation of its records in that case — callers
/// treat it as transient state discarded during the unwind.
bool RadixSortRecords(uint64_t* buf, size_t n, int stride, int key_words,
                      std::vector<uint64_t>& scratch, ThreadPool* pool,
                      QueryGuard* guard = nullptr);

namespace radix_internal {

template <typename T, typename KeyFn>
void LsdSort(std::vector<T>& v, std::vector<T>& scratch, int key_bytes,
             const KeyFn& key_of) {
  const size_t n = v.size();
  if (n == 0) return;  // the varying-byte scan below reads v[0]
  scratch.resize(n);
  // Pass 1: which key bytes vary at all? Packed keys from small domains
  // leave most bytes constant, and a constant byte needs no pass.
  const uint64_t first = key_of(v[0]);
  uint64_t varying = 0;
  for (const T& x : v) varying |= key_of(x) ^ first;
  int passes[8];
  int n_passes = 0;
  for (int p = 0; p < key_bytes; ++p) {
    if ((varying >> (8 * p)) & 0xff) passes[n_passes++] = p;
  }
  if (n_passes == 0) return;
  // Pass 2: histograms for the active bytes only, in one scan.
  size_t hist[8][256] = {};
  for (const T& x : v) {
    const uint64_t k = key_of(x);
    for (int a = 0; a < n_passes; ++a) {
      ++hist[a][(k >> (8 * passes[a])) & 0xff];
    }
  }
  T* src = v.data();
  T* dst = scratch.data();
  for (int a = 0; a < n_passes; ++a) {
    const int shift = 8 * passes[a];
    size_t sum = 0;
    size_t offs[256];
    for (int b = 0; b < 256; ++b) {
      offs[b] = sum;
      sum += hist[a][b];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[offs[(key_of(src[i]) >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != v.data()) {
    std::copy(src, src + n, v.data());
  }
}

}  // namespace radix_internal

/// Stable sort of (key, payload) pairs by key; equal keys keep their input
/// order, so sorting (key, row-index) pairs yields a deterministic
/// permutation.
inline void RadixSortKeyed(
    std::vector<std::pair<uint64_t, uint32_t>>& v,
    std::vector<std::pair<uint64_t, uint32_t>>* scratch = nullptr) {
  // Already-sorted-by-key inputs (with payloads in input order) are the
  // common case for freshly deduped relations; the scan is ~free.
  if (std::is_sorted(v.begin(), v.end(),
                     [](const std::pair<uint64_t, uint32_t>& a,
                        const std::pair<uint64_t, uint32_t>& b) {
                       return a.first < b.first;
                     })) {
    return;
  }
  if (v.size() < kRadixMinN) {
    // Key-only comparison under stable_sort: a plain std::sort over the
    // pairs would order equal keys by payload, breaking the documented
    // input-order guarantee the deterministic permutations rely on.
    // contracts: allow(no-comparator-sort) the sub-kRadixMinN fallback of
    // the radix layer itself; introsort wins below the threshold.
    std::stable_sort(v.begin(), v.end(),
                     [](const std::pair<uint64_t, uint32_t>& a,
                        const std::pair<uint64_t, uint32_t>& b) {
                       return a.first < b.first;
                     });
    return;
  }
  std::vector<std::pair<uint64_t, uint32_t>> local;
  radix_internal::LsdSort(v, scratch != nullptr ? *scratch : local, 8,
                          [](const std::pair<uint64_t, uint32_t>& x) {
                            return x.first;
                          });
}

}  // namespace fmmsw

#endif  // FMMSW_UTIL_RADIX_H_
