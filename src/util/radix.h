#ifndef FMMSW_UTIL_RADIX_H_
#define FMMSW_UTIL_RADIX_H_

/// \file
/// LSD radix sorts over packed sort keys. The data plane packs rows of
/// arity <= 2 into order-preserving 32/64-bit keys (see BiasValue in
/// relation.h); sorting those keys is the inner loop of SortAndDedupe and
/// of degree grouping. Below kRadixMinN the functions fall back to
/// std::sort (introsort wins on small inputs); above it they run byte-wise
/// counting passes, skipping passes whose byte is constant across the
/// whole input — for keys drawn from small domains most passes are skipped
/// and the sort degenerates to one or two linear scatters.
///
/// All variants are stable and accept optional caller-owned scratch
/// buffers so arenas (ExecContext::scratch) can absorb the ping-pong
/// allocation.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace fmmsw {

inline constexpr size_t kRadixMinN = 2048;

namespace radix_internal {

template <typename T, typename KeyFn>
void LsdSort(std::vector<T>& v, std::vector<T>& scratch, int key_bytes,
             const KeyFn& key_of) {
  const size_t n = v.size();
  if (n == 0) return;  // the varying-byte scan below reads v[0]
  scratch.resize(n);
  // Pass 1: which key bytes vary at all? Packed keys from small domains
  // leave most bytes constant, and a constant byte needs no pass.
  const uint64_t first = key_of(v[0]);
  uint64_t varying = 0;
  for (const T& x : v) varying |= key_of(x) ^ first;
  int passes[8];
  int n_passes = 0;
  for (int p = 0; p < key_bytes; ++p) {
    if ((varying >> (8 * p)) & 0xff) passes[n_passes++] = p;
  }
  if (n_passes == 0) return;
  // Pass 2: histograms for the active bytes only, in one scan.
  size_t hist[8][256] = {};
  for (const T& x : v) {
    const uint64_t k = key_of(x);
    for (int a = 0; a < n_passes; ++a) {
      ++hist[a][(k >> (8 * passes[a])) & 0xff];
    }
  }
  T* src = v.data();
  T* dst = scratch.data();
  for (int a = 0; a < n_passes; ++a) {
    const int shift = 8 * passes[a];
    size_t sum = 0;
    size_t offs[256];
    for (int b = 0; b < 256; ++b) {
      offs[b] = sum;
      sum += hist[a][b];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[offs[(key_of(src[i]) >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != v.data()) {
    std::memcpy(v.data(), src, n * sizeof(T));
  }
}

}  // namespace radix_internal

/// Sorts 64-bit keys ascending.
inline void RadixSortU64(std::vector<uint64_t>& v,
                         std::vector<uint64_t>* scratch = nullptr) {
  // Relations are dedup-sorted upstream, so sort inputs are frequently
  // already ordered: one predictable scan beats any sort.
  if (std::is_sorted(v.begin(), v.end())) return;
  if (v.size() < kRadixMinN) {
    std::sort(v.begin(), v.end());
    return;
  }
  std::vector<uint64_t> local;
  radix_internal::LsdSort(v, scratch != nullptr ? *scratch : local, 8,
                          [](uint64_t x) { return x; });
}

/// Sorts 32-bit keys ascending.
inline void RadixSortU32(std::vector<uint32_t>& v,
                         std::vector<uint32_t>* scratch = nullptr) {
  if (std::is_sorted(v.begin(), v.end())) return;
  if (v.size() < kRadixMinN) {
    std::sort(v.begin(), v.end());
    return;
  }
  std::vector<uint32_t> local;
  radix_internal::LsdSort(v, scratch != nullptr ? *scratch : local, 4,
                          [](uint32_t x) { return static_cast<uint64_t>(x); });
}

/// Stable sort of (key, payload) pairs by key; equal keys keep their input
/// order, so sorting (key, row-index) pairs yields a deterministic
/// permutation.
inline void RadixSortKeyed(
    std::vector<std::pair<uint64_t, uint32_t>>& v,
    std::vector<std::pair<uint64_t, uint32_t>>* scratch = nullptr) {
  // Already-sorted-by-key inputs (with payloads in input order) are the
  // common case for freshly deduped relations; the scan is ~free.
  if (std::is_sorted(v.begin(), v.end(),
                     [](const std::pair<uint64_t, uint32_t>& a,
                        const std::pair<uint64_t, uint32_t>& b) {
                       return a.first < b.first;
                     })) {
    return;
  }
  if (v.size() < kRadixMinN) {
    // Key-only comparison under stable_sort: a plain std::sort over the
    // pairs would order equal keys by payload, breaking the documented
    // input-order guarantee the deterministic permutations rely on.
    std::stable_sort(v.begin(), v.end(),
                     [](const std::pair<uint64_t, uint32_t>& a,
                        const std::pair<uint64_t, uint32_t>& b) {
                       return a.first < b.first;
                     });
    return;
  }
  std::vector<std::pair<uint64_t, uint32_t>> local;
  radix_internal::LsdSort(v, scratch != nullptr ? *scratch : local, 8,
                          [](const std::pair<uint64_t, uint32_t>& x) {
                            return x.first;
                          });
}

}  // namespace fmmsw

#endif  // FMMSW_UTIL_RADIX_H_
