#ifndef FMMSW_UTIL_STOPWATCH_H_
#define FMMSW_UTIL_STOPWATCH_H_

/// \file
/// Wall-clock stopwatch used by the benchmark harnesses for coarse phase
/// timing (google-benchmark handles the fine-grained kernels).

#include <chrono>

namespace fmmsw {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fmmsw

#endif  // FMMSW_UTIL_STOPWATCH_H_
