#ifndef FMMSW_UTIL_CHECK_H_
#define FMMSW_UTIL_CHECK_H_

/// \file
/// Lightweight invariant-checking macros in the spirit of glog/RocksDB
/// assertions. CHECK is always on (cheap conditions guarding correctness of
/// research results); DCHECK compiles out in NDEBUG builds.

#include <cstdio>
#include <cstdlib>

namespace fmmsw {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace fmmsw

#define FMMSW_CHECK(expr)                              \
  do {                                                 \
    if (!(expr)) {                                     \
      ::fmmsw::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                  \
  } while (0)

// FMMSW_FORCE_DCHECK (cmake -DFMMSW_DCHECK=ON) keeps the debug checks in
// optimized builds.
#if defined(NDEBUG) && !defined(FMMSW_FORCE_DCHECK)
#define FMMSW_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define FMMSW_DCHECK(expr) FMMSW_CHECK(expr)
#endif

#endif  // FMMSW_UTIL_CHECK_H_
