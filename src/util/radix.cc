#include "util/radix.h"

#include <atomic>
#include <cstring>

#include "core/exec_context.h"
#include "util/check.h"
#include "util/parallel.h"

namespace fmmsw {

namespace {

/// Fixed-width record view over the caller's flat word buffer. POD so the
/// scatter passes move whole records with one fixed-size copy.
template <int S>
struct Rec {
  uint64_t w[S];
};

template <int S>
inline bool LexLess(const Rec<S>& a, const Rec<S>& b, int key_words) {
  for (int i = 0; i < key_words; ++i) {
    if (a.w[i] != b.w[i]) return a.w[i] < b.w[i];
  }
  return false;
}

struct BytePass {
  int word;
  int shift;
};

/// LSD pass list (least-significant byte of the least-significant key
/// word first) restricted to bytes that vary at all — packed keys from
/// small domains leave most bytes constant, and a constant byte needs no
/// pass.
int CollectPasses(const uint64_t* varying, int key_words, BytePass* passes) {
  int n = 0;
  for (int w = key_words - 1; w >= 0; --w) {
    for (int p = 0; p < 8; ++p) {
      if ((varying[w] >> (8 * p)) & 0xff) passes[n++] = {w, 8 * p};
    }
  }
  return n;
}

/// Runs fn(c) for every chunk c in [0, chunks) across the pool. Chunks
/// are claimed from a shared cursor, so the work completes (and produces
/// the same result) no matter how many workers actually show up — in
/// particular when a racing fan-out degrades Run to the caller alone.
/// `guard` (nullable) is polled at every chunk claim — the sort layer's
/// morsel boundary; a violation throws out of the worker and is rethrown
/// on the caller by ThreadPool::Run.
template <typename Fn>
void RunChunks(ThreadPool& pool, int chunks, QueryGuard* guard,
               const Fn& fn) {
  std::atomic<int> next(0);
  pool.Run([&](int) {
    while (true) {
      // relaxed: work-claim RMW — atomicity alone hands each chunk to
      // exactly one worker; the chunk's results are published by the
      // pool's mutex fan-in, not by this counter.
      const int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (guard != nullptr) guard->Poll(FaultSite::kSort);
      fn(c);
    }
  });
}

template <int S>
void SortSerial(Rec<S>* v, size_t n, int key_words, Rec<S>* tmp,
                QueryGuard* guard) {
  uint64_t varying[S] = {};
  for (size_t i = 1; i < n; ++i) {
    for (int w = 0; w < key_words; ++w) varying[w] |= v[i].w[w] ^ v[0].w[w];
  }
  BytePass passes[8 * S];
  const int n_passes = CollectPasses(varying, key_words, passes);
  if (n_passes == 0) return;  // all keys equal: stable no-op
  // Histograms for every active byte in one scan.
  std::vector<size_t> hist(static_cast<size_t>(n_passes) * 256, 0);
  for (size_t i = 0; i < n; ++i) {
    for (int a = 0; a < n_passes; ++a) {
      ++hist[static_cast<size_t>(a) * 256 +
             ((v[i].w[passes[a].word] >> passes[a].shift) & 0xff)];
    }
  }
  Rec<S>* src = v;
  Rec<S>* dst = tmp;
  for (int a = 0; a < n_passes; ++a) {
    if (guard != nullptr) guard->Poll(FaultSite::kSort);
    const int word = passes[a].word;
    const int shift = passes[a].shift;
    const size_t* h = &hist[static_cast<size_t>(a) * 256];
    size_t offs[256];
    size_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      offs[b] = sum;
      sum += h[b];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[offs[(src[i].w[word] >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != v) std::memcpy(v, src, n * sizeof(Rec<S>));
}

/// Pool-parallel stable LSD: every pass histograms per chunk, prefix-sums
/// bucket offsets in (bucket, chunk) order, then scatters each chunk into
/// its own precomputed slots. Records of one bucket land chunk by chunk in
/// input order — the exact permutation of the serial stable scatter — so
/// the result is bit-identical for any chunk count or worker schedule.
template <int S>
void SortParallel(Rec<S>* v, size_t n, int key_words, Rec<S>* tmp,
                  ThreadPool& pool, QueryGuard* guard) {
  const int chunks = pool.threads();
  auto chunk_lo = [n, chunks](int c) {
    return n * static_cast<size_t>(c) / chunks;
  };
  // Varying-byte masks, chunk-parallel with a serial combine.
  std::vector<uint64_t> chunk_var(static_cast<size_t>(chunks) * S, 0);
  RunChunks(pool, chunks, guard, [&](int c) {
    uint64_t local[S] = {};
    const size_t hi = chunk_lo(c + 1);
    for (size_t i = chunk_lo(c); i < hi; ++i) {
      for (int w = 0; w < key_words; ++w) local[w] |= v[i].w[w] ^ v[0].w[w];
    }
    for (int w = 0; w < key_words; ++w) chunk_var[c * S + w] = local[w];
  });
  uint64_t varying[S] = {};
  for (int c = 0; c < chunks; ++c) {
    for (int w = 0; w < key_words; ++w) varying[w] |= chunk_var[c * S + w];
  }
  BytePass passes[8 * S];
  const int n_passes = CollectPasses(varying, key_words, passes);
  if (n_passes == 0) return;
  std::vector<size_t> chunk_off(static_cast<size_t>(chunks) * 256);
  Rec<S>* src = v;
  Rec<S>* dst = tmp;
  for (int a = 0; a < n_passes; ++a) {
    const int word = passes[a].word;
    const int shift = passes[a].shift;
    RunChunks(pool, chunks, guard, [&](int c) {
      size_t* h = &chunk_off[static_cast<size_t>(c) * 256];
      std::fill(h, h + 256, 0);
      const size_t hi = chunk_lo(c + 1);
      for (size_t i = chunk_lo(c); i < hi; ++i) {
        ++h[(src[i].w[word] >> shift) & 0xff];
      }
    });
    // Global offsets in (bucket, chunk) order; chunk_off becomes each
    // chunk's private write cursors for this pass.
    size_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      for (int c = 0; c < chunks; ++c) {
        const size_t count = chunk_off[static_cast<size_t>(c) * 256 + b];
        chunk_off[static_cast<size_t>(c) * 256 + b] = sum;
        sum += count;
      }
    }
    RunChunks(pool, chunks, guard, [&](int c) {
      size_t* offs = &chunk_off[static_cast<size_t>(c) * 256];
      const size_t hi = chunk_lo(c + 1);
      for (size_t i = chunk_lo(c); i < hi; ++i) {
        dst[offs[(src[i].w[word] >> shift) & 0xff]++] = src[i];
      }
    });
    std::swap(src, dst);
  }
  if (src != v) {
    RunChunks(pool, chunks, guard, [&](int c) {
      const size_t lo = chunk_lo(c);
      std::memcpy(v + lo, src + lo, (chunk_lo(c + 1) - lo) * sizeof(Rec<S>));
    });
  }
}

template <int S>
bool SortRecs(uint64_t* buf, size_t n, int key_words,
              std::vector<uint64_t>& scratch, ThreadPool* pool,
              QueryGuard* guard) {
  Rec<S>* v = reinterpret_cast<Rec<S>*>(buf);
  // Relations are dedup-sorted upstream, so presorted inputs are common:
  // one predictable scan beats any sort.
  bool sorted = true;
  for (size_t i = 1; i < n; ++i) {
    if (LexLess(v[i], v[i - 1], key_words)) {
      sorted = false;
      break;
    }
  }
  if (sorted) return false;
  if (n < kRadixMinN) {
    // Key-only comparison under stable_sort keeps payload words in input
    // order for equal keys, matching the LSD paths above the threshold.
    // contracts: allow(no-comparator-sort) the sub-kRadixMinN fallback of
    // the radix layer itself; introsort wins below the threshold.
    std::stable_sort(v, v + n,
                     [key_words](const Rec<S>& a, const Rec<S>& b) {
                       return LexLess(a, b, key_words);
                     });
    return false;
  }
  scratch.resize(n * S);
  Rec<S>* tmp = reinterpret_cast<Rec<S>*>(scratch.data());
  if (pool != nullptr && pool->threads() > 1 && !pool->busy() &&
      n >= kRadixParallelMinRecords) {
    SortParallel<S>(v, n, key_words, tmp, *pool, guard);
    return true;
  }
  SortSerial<S>(v, n, key_words, tmp, guard);
  return false;
}

}  // namespace

bool RadixSortRecords(uint64_t* buf, size_t n, int stride, int key_words,
                      std::vector<uint64_t>& scratch, ThreadPool* pool,
                      QueryGuard* guard) {
  FMMSW_CHECK(stride >= 1 && key_words >= 1 && key_words <= stride);
  if (n <= 1) return false;
  switch (stride) {
    case 1:
      return SortRecs<1>(buf, n, key_words, scratch, pool, guard);
    case 2:
      return SortRecs<2>(buf, n, key_words, scratch, pool, guard);
    case 3:
      return SortRecs<3>(buf, n, key_words, scratch, pool, guard);
    case 4:
      return SortRecs<4>(buf, n, key_words, scratch, pool, guard);
    case 5:
      return SortRecs<5>(buf, n, key_words, scratch, pool, guard);
    case 6:
      return SortRecs<6>(buf, n, key_words, scratch, pool, guard);
    case 7:
      return SortRecs<7>(buf, n, key_words, scratch, pool, guard);
    case 8:
      return SortRecs<8>(buf, n, key_words, scratch, pool, guard);
    case 9:
      return SortRecs<9>(buf, n, key_words, scratch, pool, guard);
    default:
      // kMaxVars = 16 columns pack to 8 key words; one payload word on
      // top is the widest record the data plane produces.
      FMMSW_CHECK(false && "record stride above 9 words unsupported");
      return false;
  }
}

}  // namespace fmmsw
