#ifndef FMMSW_UTIL_RANDOM_H_
#define FMMSW_UTIL_RANDOM_H_

/// \file
/// Deterministic pseudo-random number generation for workload generators and
/// property tests. A thin wrapper over std::mt19937_64 with convenience
/// helpers; all generators take an explicit seed so experiments reproduce.

#include <cmath>
#include <cstdint>
#include <random>

namespace fmmsw {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(gen_);
  }

  /// Bernoulli with probability p.
  bool Flip(double p) { return UniformReal() < p; }

  /// Zipf-like value in [0, n): P(i) proportional to 1/(i+1)^alpha.
  /// Implemented by rejection against the harmonic envelope; fine for the
  /// modest n used in workload generation.
  int64_t Zipf(int64_t n, double alpha) {
    // Inverse-CDF on a precomputed-free approximation: draw u and invert the
    // continuous envelope integral of x^-alpha.
    if (alpha <= 1.0001) alpha = 1.0001;
    double u = UniformReal();
    double x = std::pow(1.0 - u * (1.0 - std::pow(static_cast<double>(n),
                                                  1.0 - alpha)),
                        1.0 / (1.0 - alpha));
    int64_t i = static_cast<int64_t>(x) - 1;
    if (i < 0) i = 0;
    if (i >= n) i = n - 1;
    return i;
  }

  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace fmmsw

#endif  // FMMSW_UTIL_RANDOM_H_
