#ifndef FMMSW_UTIL_RATIONAL_H_
#define FMMSW_UTIL_RATIONAL_H_

/// \file
/// Rational: exact rational arithmetic over BigInt.
///
/// Widths in the paper are rational functions of the MM exponent w (e.g.
/// 2w/(w+1) for the triangle); the exact simplex computes them with no
/// floating error. Invariant: denominator > 0, gcd(num, den) == 1.

#include <string>

#include "util/bigint.h"

namespace fmmsw {

class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t v) : num_(v), den_(1) {}  // NOLINT: numeric literal.
  Rational(int64_t num, int64_t den) : num_(num), den_(den) { Normalize(); }
  Rational(BigInt num, BigInt den) : num_(std::move(num)), den_(std::move(den)) {
    Normalize();
  }

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  int Sign() const { return num_.Sign(); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  double ToDouble() const { return num_.ToDouble() / den_.ToDouble(); }
  std::string ToString() const;

  static Rational Min(const Rational& a, const Rational& b) {
    return a < b ? a : b;
  }
  static Rational Max(const Rational& a, const Rational& b) {
    return a < b ? b : a;
  }

  /// Parses "p/q" or "p"; aborts on malformed input (test/config use only).
  static Rational Parse(const std::string& s);

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;
};

}  // namespace fmmsw

#endif  // FMMSW_UTIL_RATIONAL_H_
