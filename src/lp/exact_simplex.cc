#include "lp/simplex.h"

#include "lp/simplex_impl.h"

namespace fmmsw {

template LpResult<Rational> SolveSimplex<Rational>(const LpModel<Rational>&,
                                                   WarmStart*,
                                                   const SimplexOptions&);

}  // namespace fmmsw
