#include "lp/simplex.h"

#include "lp/simplex_impl.h"

namespace fmmsw {

template LpResult<double> SolveSimplex<double>(const LpModel<double>&,
                                               WarmStart*,
                                               const SimplexOptions&);

}  // namespace fmmsw
