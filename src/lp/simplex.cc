#include "lp/simplex.h"

#include "lp/simplex_impl.h"

namespace fmmsw {

template LpResult<double> SolveSimplex<double>(const LpModel<double>&);

}  // namespace fmmsw
