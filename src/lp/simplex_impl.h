#ifndef FMMSW_LP_SIMPLEX_IMPL_H_
#define FMMSW_LP_SIMPLEX_IMPL_H_

/// \file
/// Templated body of the two-phase primal simplex. Included by simplex.cc
/// (double instantiation) and exact_simplex.cc (Rational instantiation);
/// callers include lp/simplex.h.
///
/// Layout: the tableau is a single contiguous row-major buffer of
/// num_rows x (num_cols + 1) scalars (the trailing column is the rhs), so
/// the pivot elimination and pricing loops stream linear memory instead of
/// chasing one heap allocation per row.

#include <algorithm>
#include <vector>

#include "lp/simplex.h"

namespace fmmsw {
namespace internal {

enum class PivotOutcome { kOptimal, kUnbounded, kLimit };

template <typename T>
class Tableau {
  using Tr = ScalarTraits<T>;

 public:
  Tableau(const LpModel<T>& model, const SimplexOptions& opts)
      : model_(model), opts_(opts) {
    Build();
  }

  LpResult<T> Solve(WarmStart* warm) {
    LpResult<T> res;
    // Replay a prior optimal basis when the tableau shape matches. The
    // replay path requires an artificial-free build (true for every
    // polymatroid LP: all >=-rows normalize to <=-form); a singular or
    // primal-infeasible replay rebuilds and cold-starts.
    if (warm != nullptr && warm->valid && artificial_cols_.empty() &&
        warm->num_rows == num_rows_ && warm->num_cols == num_cols_) {
      if (ReplayBasis(warm->basis_cols)) {
        res.warm_started = true;
      } else {
        Build();
      }
    }
    // Phase 1: maximize -(sum of artificials).
    if (!artificial_cols_.empty()) {
      std::vector<T> c1(num_cols_, Tr::Zero());
      for (int j : artificial_cols_) c1[j] = -Tr::One();
      SetObjective(c1);
      // Phase 1 is bounded above by zero, so kUnbounded cannot happen.
      if (RunPivots(&res.pivots) == PivotOutcome::kLimit) {
        res.status = LpStatus::kPivotLimit;
        return res;
      }
      if (Tr::IsNeg(Objective())) {
        res.status = LpStatus::kInfeasible;
        return res;
      }
      DriveOutArtificials();
      for (int j : artificial_cols_) allowed_[j] = false;
    }
    // Phase 2: the real objective.
    std::vector<T> c2(num_cols_, Tr::Zero());
    for (const auto& [var, coeff] : model_.objective) {
      c2[var] = model_.maximize ? c2[var] + coeff : c2[var] - coeff;
    }
    SetObjective(c2);
    switch (RunPivots(&res.pivots)) {
      case PivotOutcome::kLimit:
        res.status = LpStatus::kPivotLimit;
        return res;
      case PivotOutcome::kUnbounded:
        res.status = LpStatus::kUnbounded;
        return res;
      case PivotOutcome::kOptimal:
        break;
    }
    // Objective and duals are taken at the first optimal basis (the
    // canonicalization below moves within the optimal face, where duals
    // are not unique anyway).
    const T z = -obj_[num_cols_];
    res.objective = model_.maximize ? z : -z;
    res.duals.assign(num_rows_, Tr::Zero());
    for (int i = 0; i < num_rows_; ++i) {
      // The initial basis column of row i is an identity column with zero
      // phase-2 cost, so its final reduced cost equals -y_i.
      T y = -obj_[dual_col_[i]];
      if (row_flipped_[i]) y = -y;
      if (!model_.maximize) y = -y;
      res.duals[i] = y;
    }
    if (opts_.lex_canonical &&
        LexCanonicalize(&res.pivots) == PivotOutcome::kLimit) {
      res.status = LpStatus::kPivotLimit;
      return res;
    }
    res.status = LpStatus::kOptimal;
    res.primal.assign(model_.num_vars, Tr::Zero());
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < model_.num_vars) res.primal[basis_[i]] = Rhs(i);
    }
    if (warm != nullptr) {
      warm->basis_cols = basis_;
      warm->num_rows = num_rows_;
      warm->num_cols = num_cols_;
      warm->valid = true;
    }
    return res;
  }

 private:
  T* RowPtr(int i) { return tab_.data() + static_cast<size_t>(i) * stride_; }

  void Build() {
    const int n = model_.num_vars;
    const int m = static_cast<int>(model_.rows.size());
    num_rows_ = m;
    row_flipped_.assign(m, false);
    basis_.assign(m, -1);
    dual_col_.assign(m, -1);
    artificial_cols_.clear();
    // First pass: the normalized sense of each row decides its extra
    // columns, so the flat buffer is allocated at its final width.
    std::vector<Sense> sense(m);
    int next = n;
    for (int i = 0; i < m; ++i) {
      const auto& row = model_.rows[i];
      T r = row.rhs;
      Sense s = row.sense;
      bool flipped = false;
      // A >=-row with non-positive rhs is equivalent to a <=-row after
      // negation, and the <=-form needs no artificial variable. This makes
      // the all-slack basis feasible for the polymatroid LPs (all Shannon
      // rows are ">= 0"), eliminating phase 1 entirely.
      if (s == Sense::kGe && !Tr::IsPos(r)) {
        r = -r;
        flipped = !flipped;
        s = Sense::kLe;
      }
      if (Tr::IsNeg(r)) {
        r = -r;
        flipped = !flipped;
        if (s == Sense::kLe) {
          s = Sense::kGe;
        } else if (s == Sense::kGe) {
          s = Sense::kLe;
        }
      }
      sense[i] = s;
      row_flipped_[i] = flipped;
      next += sense[i] == Sense::kGe ? 2 : 1;  // slack | surplus+artificial
    }
    num_cols_ = next;
    stride_ = num_cols_ + 1;
    tab_.assign(static_cast<size_t>(m) * stride_, Tr::Zero());
    allowed_.assign(num_cols_, true);
    obj_.assign(num_cols_ + 1, Tr::Zero());
    next = n;
    for (int i = 0; i < m; ++i) {
      const auto& row = model_.rows[i];
      T* tr = RowPtr(i);
      for (const auto& [var, coeff] : row.coeffs) {
        FMMSW_CHECK(var >= 0 && var < n);
        tr[var] = tr[var] + coeff;
      }
      tr[num_cols_] = row.rhs;
      if (row_flipped_[i]) {
        for (int j = 0; j < n; ++j) tr[j] = -tr[j];
        tr[num_cols_] = -tr[num_cols_];
      }
      if (sense[i] == Sense::kLe) {
        const int slack = next++;
        tr[slack] = Tr::One();
        basis_[i] = slack;
        dual_col_[i] = slack;
      } else if (sense[i] == Sense::kGe) {
        const int surplus = next++;
        tr[surplus] = -Tr::One();
        const int art = next++;
        tr[art] = Tr::One();
        basis_[i] = art;
        dual_col_[i] = art;
        artificial_cols_.push_back(art);
      } else {
        const int art = next++;
        tr[art] = Tr::One();
        basis_[i] = art;
        dual_col_[i] = art;
        artificial_cols_.push_back(art);
      }
    }
  }

  /// Factors the stored basis back in by Gaussian elimination with free
  /// row choice: the basis is a *set* of columns, and a column must pivot
  /// in whatever row still has a nonzero entry for it after the earlier
  /// eliminations — its row index in the previous solve's tableau means
  /// nothing in a fresh build. Columns that are basic in the fresh build
  /// already (slacks) just claim their row. A column with no eligible
  /// nonzero entry means the set is singular (or numerically so): the
  /// replay aborts and the caller rebuilds and cold-starts. Accepts iff
  /// the replayed basis is primal-feasible.
  bool ReplayBasis(const std::vector<int>& cols) {
    if (static_cast<int>(cols.size()) != num_rows_) return false;
    std::vector<char> claimed(num_rows_, 0);
    std::vector<int> pending;
    std::vector<int> row_of(num_cols_, -1);
    for (int i = 0; i < num_rows_; ++i) row_of[basis_[i]] = i;
    for (int c : cols) {
      if (c < 0 || c >= num_cols_) return false;
      const int r = row_of[c];
      if (r >= 0 && !claimed[r]) {
        claimed[r] = 1;
      } else {
        pending.push_back(c);
      }
    }
    for (int c : pending) {
      // Largest-magnitude eligible pivot (lowest row on exact ties) keeps
      // the double replay numerically sane; for rationals any nonzero
      // entry is exact.
      int pick = -1;
      T best = Tr::Zero();
      for (int i = 0; i < num_rows_; ++i) {
        if (claimed[i] || Tr::IsZero(RowPtr(i)[c])) continue;
        T mag = RowPtr(i)[c];
        if (Tr::IsNeg(mag)) mag = -mag;
        if (pick < 0 || best < mag) {
          pick = i;
          best = mag;
        }
      }
      if (pick < 0) return false;
      Pivot(pick, c);
      claimed[pick] = 1;
    }
    for (int i = 0; i < num_rows_; ++i) {
      if (Tr::IsNeg(Rhs(i))) return false;
    }
    return true;
  }

  T Rhs(int i) { return RowPtr(i)[num_cols_]; }
  T Objective() const { return -obj_[num_cols_]; }

  /// Prices out the given cost vector against the current basis.
  void SetObjective(const std::vector<T>& c) {
    cost_ = c;
    cost_.resize(num_cols_, Tr::Zero());
    obj_.assign(num_cols_ + 1, Tr::Zero());
    for (int j = 0; j < num_cols_; ++j) obj_[j] = cost_[j];
    for (int i = 0; i < num_rows_; ++i) {
      const T cb = cost_[basis_[i]];
      if (Tr::IsZero(cb)) continue;
      const T* tr = RowPtr(i);
      for (int j = 0; j <= num_cols_; ++j) {
        obj_[j] = obj_[j] - cb * tr[j];
      }
    }
  }

  /// Pivots until optimal, unbounded, or out of budget. Pricing is
  /// Dantzig's rule (most positive reduced cost, lowest index on ties);
  /// after 2m+16 consecutive pivots without strict objective improvement
  /// it degrades to Bland's rule, whose anti-cycling guarantee restores
  /// termination, and switches back on the next strict improvement.
  PivotOutcome RunPivots(int* pivot_count) {
    const int stall_limit = 2 * num_rows_ + 16;
    int stall = 0;
    T last = Objective();
    while (true) {
      if (*pivot_count >= opts_.max_pivots) return PivotOutcome::kLimit;
      int enter = -1;
      if (stall >= stall_limit) {
        for (int j = 0; j < num_cols_; ++j) {
          if (allowed_[j] && Tr::IsPos(obj_[j])) {
            enter = j;
            break;
          }
        }
      } else {
        for (int j = 0; j < num_cols_; ++j) {
          if (allowed_[j] && Tr::IsPos(obj_[j]) &&
              (enter < 0 || obj_[enter] < obj_[j])) {
            enter = j;
          }
        }
      }
      if (enter < 0) return PivotOutcome::kOptimal;
      int leave = -1;
      for (int i = 0; i < num_rows_; ++i) {
        if (!Tr::IsPos(RowPtr(i)[enter])) continue;
        if (leave < 0) {
          leave = i;
          continue;
        }
        // ratio(i) < ratio(leave)? Cross-multiplied to stay exact.
        const T lhs = Rhs(i) * RowPtr(leave)[enter];
        const T rhs = Rhs(leave) * RowPtr(i)[enter];
        if (lhs < rhs || (!(rhs < lhs) && basis_[i] < basis_[leave])) {
          leave = i;
        }
      }
      if (leave < 0) return PivotOutcome::kUnbounded;
      Pivot(leave, enter);
      ++*pivot_count;
      const T now = Objective();
      if (last < now) {
        stall = 0;
        last = now;
      } else {
        ++stall;
      }
    }
  }

  void Pivot(int pr, int pc) {
    T* prow = RowPtr(pr);
    const T inv_pivot = Tr::One() / prow[pc];
    for (int j = 0; j <= num_cols_; ++j) {
      prow[j] = prow[j] * inv_pivot;
    }
    prow[pc] = Tr::One();  // remove residual rounding in double mode
    for (int i = 0; i < num_rows_; ++i) {
      if (i == pr) continue;
      T* r = RowPtr(i);
      if (Tr::IsZero(r[pc])) continue;
      const T f = r[pc];
      for (int j = 0; j <= num_cols_; ++j) {
        r[j] = r[j] - f * prow[j];
      }
      r[pc] = Tr::Zero();
    }
    if (!Tr::IsZero(obj_[pc])) {
      const T f = obj_[pc];
      for (int j = 0; j <= num_cols_; ++j) {
        obj_[j] = obj_[j] - f * prow[j];
      }
      obj_[pc] = Tr::Zero();
    }
    basis_[pr] = pc;
  }

  /// From an optimal basis, pivots on to the lexicographically-minimal
  /// optimal point: minimize x_0 over the optimal face, then x_1 over
  /// what remains, and so on. Each stage first bars every column whose
  /// current reduced cost is nonzero (entering one would strictly
  /// degrade a previously optimized objective), so all earlier objective
  /// values are preserved exactly. The resulting point is unique, hence
  /// independent of the pivot path — and of whether the solve was cold
  /// or warm-started. Stages are cheap: a single-variable objective
  /// prices in O(rows + cols), and most stages need zero pivots.
  PivotOutcome LexCanonicalize(int* pivot_count) {
    std::vector<T> c(num_cols_, Tr::Zero());
    for (int v = 0; v < model_.num_vars; ++v) {
      for (int j = 0; j < num_cols_; ++j) {
        if (allowed_[j] && !Tr::IsZero(obj_[j])) allowed_[j] = false;
      }
      c[v] = -Tr::One();  // maximize -x_v == minimize x_v (bounded: x >= 0)
      SetObjective(c);
      c[v] = Tr::Zero();
      if (RunPivots(pivot_count) == PivotOutcome::kLimit) {
        return PivotOutcome::kLimit;
      }
    }
    return PivotOutcome::kOptimal;
  }

  /// After phase 1, pivots basic artificials out on any eligible column so
  /// phase 2 starts from a (possibly degenerate) feasible basis.
  void DriveOutArtificials() {
    for (int i = 0; i < num_rows_; ++i) {
      bool is_art = false;
      for (int a : artificial_cols_) {
        if (basis_[i] == a) {
          is_art = true;
          break;
        }
      }
      if (!is_art) continue;
      for (int j = 0; j < num_cols_; ++j) {
        bool j_art = false;
        for (int a : artificial_cols_) {
          if (j == a) {
            j_art = true;
            break;
          }
        }
        if (j_art || Tr::IsZero(RowPtr(i)[j])) continue;
        Pivot(i, j);
        break;
      }
      // If no eligible column exists the row is redundant; the artificial
      // stays basic at value zero, which is harmless once barred from
      // re-entering.
    }
  }

  const LpModel<T>& model_;
  const SimplexOptions opts_;
  int num_rows_ = 0;
  int num_cols_ = 0;
  int stride_ = 0;
  std::vector<T> tab_;   // row-major num_rows_ x stride_, rhs in last slot
  std::vector<T> obj_;   // reduced costs, plus -z in the rhs slot
  std::vector<T> cost_;  // current cost vector
  std::vector<int> basis_;
  std::vector<int> dual_col_;
  std::vector<bool> row_flipped_;
  std::vector<bool> allowed_;
  std::vector<int> artificial_cols_;
};

}  // namespace internal

template <typename T>
LpResult<T> SolveSimplex(const LpModel<T>& model, WarmStart* warm,
                        const SimplexOptions& opts) {
  internal::Tableau<T> tableau(model, opts);
  return tableau.Solve(warm);
}

}  // namespace fmmsw

#endif  // FMMSW_LP_SIMPLEX_IMPL_H_
