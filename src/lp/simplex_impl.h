#ifndef FMMSW_LP_SIMPLEX_IMPL_H_
#define FMMSW_LP_SIMPLEX_IMPL_H_

/// \file
/// Templated body of the two-phase primal simplex. Included by simplex.cc
/// (double instantiation) and exact_simplex.cc (Rational instantiation);
/// callers include lp/simplex.h.

#include <algorithm>
#include <vector>

#include "lp/simplex.h"

namespace fmmsw {
namespace internal {

template <typename T>
class Tableau {
  using Tr = ScalarTraits<T>;

 public:
  explicit Tableau(const LpModel<T>& model) : model_(model) {
    Build();
  }

  LpResult<T> Solve() {
    LpResult<T> res;
    // Phase 1: maximize -(sum of artificials).
    if (!artificial_cols_.empty()) {
      std::vector<T> c1(num_cols_, Tr::Zero());
      for (int j : artificial_cols_) c1[j] = -Tr::One();
      SetObjective(c1);
      RunPivots(&res.pivots);
      if (Tr::IsNeg(Objective())) {
        res.status = LpStatus::kInfeasible;
        return res;
      }
      DriveOutArtificials();
      for (int j : artificial_cols_) allowed_[j] = false;
    }
    // Phase 2: the real objective.
    std::vector<T> c2(num_cols_, Tr::Zero());
    for (const auto& [var, coeff] : model_.objective) {
      c2[var] = model_.maximize ? c2[var] + coeff : c2[var] - coeff;
    }
    SetObjective(c2);
    bool bounded = RunPivots(&res.pivots);
    if (!bounded) {
      res.status = LpStatus::kUnbounded;
      return res;
    }
    res.status = LpStatus::kOptimal;
    T z = -obj_[num_cols_];
    res.objective = model_.maximize ? z : -z;
    res.primal.assign(model_.num_vars, Tr::Zero());
    for (int i = 0; i < num_rows_; ++i) {
      if (basis_[i] < model_.num_vars) res.primal[basis_[i]] = Rhs(i);
    }
    res.duals.assign(num_rows_, Tr::Zero());
    for (int i = 0; i < num_rows_; ++i) {
      // The initial basis column of row i is an identity column with zero
      // phase-2 cost, so its final reduced cost equals -y_i.
      T y = -obj_[dual_col_[i]];
      if (row_flipped_[i]) y = -y;
      if (!model_.maximize) y = -y;
      res.duals[i] = y;
    }
    return res;
  }

 private:
  void Build() {
    const int n = model_.num_vars;
    const int m = static_cast<int>(model_.rows.size());
    num_rows_ = m;
    row_flipped_.assign(m, false);
    // Count extra columns.
    int extra = 0;
    for (const auto& row : model_.rows) {
      extra += (row.sense == Sense::kLe || row.sense == Sense::kGe) ? 1 : 0;
    }
    // Upper bound on artificials: one per row.
    num_cols_ = n + extra + m;
    tab_.assign(m, std::vector<T>(num_cols_ + 1, Tr::Zero()));
    basis_.assign(m, -1);
    dual_col_.assign(m, -1);
    allowed_.assign(num_cols_, true);
    int next = n;
    for (int i = 0; i < m; ++i) {
      const auto& row = model_.rows[i];
      for (const auto& [var, coeff] : row.coeffs) {
        FMMSW_CHECK(var >= 0 && var < n);
        tab_[i][var] = tab_[i][var] + coeff;
      }
      tab_[i][num_cols_] = row.rhs;
      Sense sense = row.sense;
      // A >=-row with non-positive rhs is equivalent to a <=-row after
      // negation, and the <=-form needs no artificial variable. This makes
      // the all-slack basis feasible for the polymatroid LPs (all Shannon
      // rows are ">= 0"), eliminating phase 1 entirely.
      if (sense == Sense::kGe && !Tr::IsPos(tab_[i][num_cols_])) {
        for (int j = 0; j <= num_cols_; ++j) tab_[i][j] = -tab_[i][j];
        row_flipped_[i] = !row_flipped_[i];
        sense = Sense::kLe;
      }
      if (Tr::IsNeg(tab_[i][num_cols_])) {
        for (int j = 0; j <= num_cols_; ++j) tab_[i][j] = -tab_[i][j];
        row_flipped_[i] = !row_flipped_[i];
        if (sense == Sense::kLe) {
          sense = Sense::kGe;
        } else if (sense == Sense::kGe) {
          sense = Sense::kLe;
        }
      }
      if (sense == Sense::kLe) {
        int slack = next++;
        tab_[i][slack] = Tr::One();
        basis_[i] = slack;
        dual_col_[i] = slack;
      } else if (sense == Sense::kGe) {
        int surplus = next++;
        tab_[i][surplus] = -Tr::One();
        int art = next++;
        tab_[i][art] = Tr::One();
        basis_[i] = art;
        dual_col_[i] = art;
        artificial_cols_.push_back(art);
      } else {
        int art = next++;
        tab_[i][art] = Tr::One();
        basis_[i] = art;
        dual_col_[i] = art;
        artificial_cols_.push_back(art);
      }
    }
    // Shrink to the columns actually created.
    for (auto& r : tab_) {
      r[next] = r[num_cols_];  // move rhs next to last used column
      r.resize(next + 1);
    }
    allowed_.resize(next, true);
    num_cols_ = next;
  }

  T Rhs(int i) const { return tab_[i][num_cols_]; }
  T Objective() const { return -obj_[num_cols_]; }

  /// Prices out the given cost vector against the current basis.
  void SetObjective(const std::vector<T>& c) {
    cost_ = c;
    cost_.resize(num_cols_, Tr::Zero());
    obj_.assign(num_cols_ + 1, Tr::Zero());
    for (int j = 0; j < num_cols_; ++j) obj_[j] = cost_[j];
    for (int i = 0; i < num_rows_; ++i) {
      const T cb = cost_[basis_[i]];
      if (Tr::IsZero(cb)) continue;
      for (int j = 0; j <= num_cols_; ++j) {
        obj_[j] = obj_[j] - cb * tab_[i][j];
      }
    }
  }

  /// Bland's rule pivoting until optimal (returns true) or unbounded
  /// (returns false).
  bool RunPivots(int* pivot_count) {
    for (int iter = 0; iter < kMaxPivots; ++iter) {
      int enter = -1;
      for (int j = 0; j < num_cols_; ++j) {
        if (allowed_[j] && Tr::IsPos(obj_[j])) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      int leave = -1;
      for (int i = 0; i < num_rows_; ++i) {
        if (!Tr::IsPos(tab_[i][enter])) continue;
        if (leave < 0) {
          leave = i;
          continue;
        }
        // ratio(i) < ratio(leave)? Cross-multiplied to stay exact.
        const T lhs = Rhs(i) * tab_[leave][enter];
        const T rhs = Rhs(leave) * tab_[i][enter];
        if (lhs < rhs || (!(rhs < lhs) && basis_[i] < basis_[leave])) {
          leave = i;
        }
      }
      if (leave < 0) return false;  // unbounded
      Pivot(leave, enter);
      ++*pivot_count;
    }
    FMMSW_CHECK(false && "simplex pivot limit exceeded");
    return false;
  }

  void Pivot(int pr, int pc) {
    const T inv_pivot = Tr::One() / tab_[pr][pc];
    for (int j = 0; j <= num_cols_; ++j) {
      tab_[pr][j] = tab_[pr][j] * inv_pivot;
    }
    tab_[pr][pc] = Tr::One();  // remove residual rounding in double mode
    for (int i = 0; i < num_rows_; ++i) {
      if (i == pr || Tr::IsZero(tab_[i][pc])) continue;
      const T f = tab_[i][pc];
      for (int j = 0; j <= num_cols_; ++j) {
        tab_[i][j] = tab_[i][j] - f * tab_[pr][j];
      }
      tab_[i][pc] = Tr::Zero();
    }
    if (!Tr::IsZero(obj_[pc])) {
      const T f = obj_[pc];
      for (int j = 0; j <= num_cols_; ++j) {
        obj_[j] = obj_[j] - f * tab_[pr][j];
      }
      obj_[pc] = Tr::Zero();
    }
    basis_[pr] = pc;
  }

  /// After phase 1, pivots basic artificials out on any eligible column so
  /// phase 2 starts from a (possibly degenerate) feasible basis.
  void DriveOutArtificials() {
    for (int i = 0; i < num_rows_; ++i) {
      bool is_art = false;
      for (int a : artificial_cols_) {
        if (basis_[i] == a) {
          is_art = true;
          break;
        }
      }
      if (!is_art) continue;
      for (int j = 0; j < num_cols_; ++j) {
        bool j_art = false;
        for (int a : artificial_cols_) {
          if (j == a) {
            j_art = true;
            break;
          }
        }
        if (j_art || Tr::IsZero(tab_[i][j])) continue;
        Pivot(i, j);
        break;
      }
      // If no eligible column exists the row is redundant; the artificial
      // stays basic at value zero, which is harmless once barred from
      // re-entering.
    }
  }

  static constexpr int kMaxPivots = 200000;

  const LpModel<T>& model_;
  int num_rows_ = 0;
  int num_cols_ = 0;
  std::vector<std::vector<T>> tab_;
  std::vector<T> obj_;   // reduced costs, plus -z in the rhs slot
  std::vector<T> cost_;  // current cost vector
  std::vector<int> basis_;
  std::vector<int> dual_col_;
  std::vector<bool> row_flipped_;
  std::vector<bool> allowed_;
  std::vector<int> artificial_cols_;
};

}  // namespace internal

template <typename T>
LpResult<T> SolveSimplex(const LpModel<T>& model) {
  internal::Tableau<T> tableau(model);
  return tableau.Solve();
}

}  // namespace fmmsw

#endif  // FMMSW_LP_SIMPLEX_IMPL_H_
