#ifndef FMMSW_LP_SIMPLEX_H_
#define FMMSW_LP_SIMPLEX_H_

/// \file
/// Two-phase dense-tableau primal simplex, templated on the scalar type.
///
/// Instantiated for `double` (fast path: the 59049-LP sweep of Example D.1)
/// and for exact `Rational` (certifying Table 2 closed forms). The tableau
/// is one contiguous row-major buffer; pricing is Dantzig's rule (most
/// positive reduced cost) with an automatic Bland fallback on degeneracy
/// stalls, so termination stays guaranteed while the common case pivots far
/// less than pure Bland. The LPs here are tiny (tens of variables), so a
/// dense tableau is the right tool.
///
/// Successive LPs that share a constraint-matrix shape (the MaxMinSolver
/// coordinate-ascent / branch-and-bound tower, the subw term lattice) can
/// chain a WarmStart: the optimal basis of one solve is replayed as the
/// starting basis of the next, collapsing most re-solves to a handful of
/// pivots. The snapshot is scalar-type independent, so the basis found by
/// the double search also seeds the final exact Rational solve.

#include <cmath>
#include <vector>

#include "lp/model.h"
#include "util/check.h"
#include "util/rational.h"

namespace fmmsw {

template <typename T>
struct ScalarTraits;

template <>
struct ScalarTraits<double> {
  static constexpr double kEps = 1e-9;
  static bool IsZero(double v) { return std::fabs(v) < kEps; }
  static bool IsPos(double v) { return v > kEps; }
  static bool IsNeg(double v) { return v < -kEps; }
  static double Zero() { return 0.0; }
  static double One() { return 1.0; }
};

template <>
struct ScalarTraits<Rational> {
  static bool IsZero(const Rational& v) { return v.IsZero(); }
  static bool IsPos(const Rational& v) { return v.Sign() > 0; }
  static bool IsNeg(const Rational& v) { return v.Sign() < 0; }
  static Rational Zero() { return Rational(0); }
  static Rational One() { return Rational(1); }
};

/// Solver controls.
struct SimplexOptions {
  /// Total pivot budget across both phases (and the canonicalization
  /// stages). Exhausting it returns LpStatus::kPivotLimit — a recoverable
  /// status — instead of aborting the process.
  int max_pivots = 200000;
  /// After optimality, continue pivoting to the lexicographically-minimal
  /// optimal point (minimize x_0, then x_1, ... over the optimal face).
  /// That point is unique, so the extracted primal no longer depends on
  /// the pivot path that reached the optimum — the width code relies on
  /// this to make witnesses identical between cold and warm-started
  /// solves. Duals are reported at the first optimal basis.
  bool lex_canonical = false;
};

/// Reusable basis snapshot for warm-starting a solve from the previous
/// optimum. Scalar-type independent (only tableau column indices), valid
/// across models with the same row/column structure; a mismatched,
/// singular, or primal-infeasible replay silently falls back to a cold
/// start. Pass the same object to successive SolveSimplex calls — each
/// optimal solve refreshes it.
struct WarmStart {
  std::vector<int> basis_cols;  ///< per tableau row: its basic column
  int num_rows = 0;
  int num_cols = 0;
  bool valid = false;
};

/// Solves the LP, optionally warm-starting from (and refreshing) `warm`.
/// See LpResult for conventions; `warm` may be nullptr.
template <typename T>
LpResult<T> SolveSimplex(const LpModel<T>& model, WarmStart* warm,
                         const SimplexOptions& opts = {});

/// Cold-start convenience overload.
template <typename T>
LpResult<T> SolveSimplex(const LpModel<T>& model) {
  return SolveSimplex<T>(model, nullptr, SimplexOptions{});
}

extern template LpResult<double> SolveSimplex<double>(
    const LpModel<double>&, WarmStart*, const SimplexOptions&);
extern template LpResult<Rational> SolveSimplex<Rational>(
    const LpModel<Rational>&, WarmStart*, const SimplexOptions&);

/// Convenience: converts a double model to an exact model by snapping each
/// coefficient to the nearest rational with denominator <= kSnapDen. Only
/// used by tests comparing the two solvers on hand-built models.
LpModel<Rational> ToExactModel(const LpModel<double>& model);

}  // namespace fmmsw

#endif  // FMMSW_LP_SIMPLEX_H_
