#ifndef FMMSW_LP_SIMPLEX_H_
#define FMMSW_LP_SIMPLEX_H_

/// \file
/// Two-phase dense-tableau primal simplex, templated on the scalar type.
///
/// Instantiated for `double` (fast path: the 59049-LP sweep of Example D.1)
/// and for exact `Rational` (certifying Table 2 closed forms). Bland's rule
/// guarantees termination; the LPs here are tiny (tens of variables), so a
/// dense tableau is the right tool.

#include <cmath>
#include <vector>

#include "lp/model.h"
#include "util/check.h"
#include "util/rational.h"

namespace fmmsw {

template <typename T>
struct ScalarTraits;

template <>
struct ScalarTraits<double> {
  static constexpr double kEps = 1e-9;
  static bool IsZero(double v) { return std::fabs(v) < kEps; }
  static bool IsPos(double v) { return v > kEps; }
  static bool IsNeg(double v) { return v < -kEps; }
  static double Zero() { return 0.0; }
  static double One() { return 1.0; }
};

template <>
struct ScalarTraits<Rational> {
  static bool IsZero(const Rational& v) { return v.IsZero(); }
  static bool IsPos(const Rational& v) { return v.Sign() > 0; }
  static bool IsNeg(const Rational& v) { return v.Sign() < 0; }
  static Rational Zero() { return Rational(0); }
  static Rational One() { return Rational(1); }
};

/// Solves the LP. See LpResult for conventions.
template <typename T>
LpResult<T> SolveSimplex(const LpModel<T>& model);

extern template LpResult<double> SolveSimplex<double>(const LpModel<double>&);
extern template LpResult<Rational> SolveSimplex<Rational>(
    const LpModel<Rational>&);

/// Convenience: converts a double model to an exact model by snapping each
/// coefficient to the nearest rational with denominator <= kSnapDen. Only
/// used by tests comparing the two solvers on hand-built models.
LpModel<Rational> ToExactModel(const LpModel<double>& model);

}  // namespace fmmsw

#endif  // FMMSW_LP_SIMPLEX_H_
