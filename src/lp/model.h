#ifndef FMMSW_LP_MODEL_H_
#define FMMSW_LP_MODEL_H_

/// \file
/// Linear-program model shared by the double and exact-rational solvers.
///
/// The width calculators (src/width/) reduce submodular-width and
/// w-submodular-width computation to families of small LPs over the
/// polymatroid cone (paper Eq. 34 / Eq. 39); this header defines the model
/// those builders emit. Variables are implicitly non-negative, which matches
/// polymatroid values h(S) >= 0 and the auxiliary objective variable t.

#include <string>
#include <utility>
#include <vector>

namespace fmmsw {

enum class Sense { kLe, kGe, kEq };

/// kPivotLimit: the pivot budget (SimplexOptions::max_pivots) ran out
/// before optimality — a recoverable outcome the width planner surfaces
/// as a kCapacityExceeded QueryAbort instead of aborting the process.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kPivotLimit };

/// A linear program: optimize c.x subject to rows, x >= 0.
template <typename T>
struct LpModel {
  struct Row {
    std::vector<std::pair<int, T>> coeffs;  // (variable index, coefficient)
    Sense sense = Sense::kLe;
    T rhs{};
    std::string name;  // optional, for debugging / dual reporting
  };

  int num_vars = 0;
  bool maximize = true;
  std::vector<std::pair<int, T>> objective;
  std::vector<Row> rows;

  int AddVar() { return num_vars++; }

  void AddObjective(int var, T coeff) { objective.emplace_back(var, coeff); }

  Row& AddRow(Sense sense, T rhs, std::string name = "") {
    rows.push_back(Row{{}, sense, std::move(rhs), std::move(name)});
    return rows.back();
  }
};

/// Solver output. `duals[i]` is the dual multiplier of `rows[i]` under the
/// usual convention for a maximization LP with <=-rows (duals >= 0); rows
/// entered as >= get duals <= 0. Only populated when status == kOptimal.
template <typename T>
struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  T objective{};
  std::vector<T> primal;
  std::vector<T> duals;
  int pivots = 0;
  /// True when the solve started from a replayed WarmStart basis instead
  /// of the all-slack basis.
  bool warm_started = false;
};

}  // namespace fmmsw

#endif  // FMMSW_LP_MODEL_H_
