#include "lp/model.h"

#include <cmath>

#include "lp/simplex.h"
#include "util/check.h"

namespace fmmsw {

namespace {

/// Snaps a double to the nearest p/q with q <= 1e6 via continued fractions.
Rational Snap(double v) {
  const bool neg = v < 0;
  double x = std::fabs(v);
  int64_t p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  for (int iter = 0; iter < 64; ++iter) {
    const double a_f = std::floor(x);
    const int64_t a = static_cast<int64_t>(a_f);
    int64_t p2 = a * p1 + p0;
    int64_t q2 = a * q1 + q0;
    if (q2 > 1000000) break;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    const double frac = x - a_f;
    if (frac < 1e-12) break;
    x = 1.0 / frac;
  }
  FMMSW_CHECK(q1 > 0);
  return Rational(neg ? -p1 : p1, q1);
}

}  // namespace

LpModel<Rational> ToExactModel(const LpModel<double>& model) {
  LpModel<Rational> out;
  out.num_vars = model.num_vars;
  out.maximize = model.maximize;
  for (const auto& [var, coeff] : model.objective) {
    out.objective.emplace_back(var, Snap(coeff));
  }
  for (const auto& row : model.rows) {
    auto& r = out.AddRow(row.sense, Snap(row.rhs), row.name);
    for (const auto& [var, coeff] : row.coeffs) {
      r.coeffs.emplace_back(var, Snap(coeff));
    }
  }
  return out;
}

}  // namespace fmmsw
