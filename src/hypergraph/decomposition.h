#ifndef FMMSW_HYPERGRAPH_DECOMPOSITION_H_
#define FMMSW_HYPERGRAPH_DECOMPOSITION_H_

/// \file
/// Variable elimination orders, generalized elimination orders (GVEOs,
/// Definition 4.1) and tree decompositions (Section 3), plus the
/// enumeration routines the width calculators are built on.

#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/varset.h"

namespace fmmsw {

/// A generalized variable elimination order: an ordered partition
/// (X_1, ..., X_p) of the hypergraph's active vertices. Plain VEOs are the
/// special case of all-singleton blocks.
struct Gveo {
  std::vector<VarSet> blocks;

  bool IsPlainVeo() const {
    for (const VarSet& b : blocks) {
      if (b.size() != 1) return false;
    }
    return true;
  }
};

/// One step of the generalized elimination hypergraph sequence: the
/// hypergraph H_i^sigma *before* eliminating block X_i, together with the
/// derived sets of Definition 4.1 and whether Proposition 4.11 requires the
/// step to be costed (U_i not contained in any earlier U_j).
struct EliminationStep {
  Hypergraph before;  ///< H_i^sigma
  VarSet block;       ///< X_i
  VarSet u;           ///< U_i^sigma = union of edges meeting X_i
  VarSet n;           ///< N_i^sigma = U_i minus X_i
  bool required;      ///< false if U_i is contained in some earlier U_j
};

/// Expands a GVEO into its elimination hypergraph sequence.
std::vector<EliminationStep> EliminationSequence(const Hypergraph& h,
                                                 const Gveo& gveo);

/// All plain VEOs (permutations of the active vertices). k! entries.
std::vector<Gveo> AllVeos(const Hypergraph& h);

/// All GVEOs (ordered set partitions of the active vertices). These grow as
/// the Fubini numbers (75 for k=4, 541 for k=5, 4683 for k=6); callers pass
/// `max_count` as a safety valve and get a CHECK failure on overflow so a
/// truncated enumeration can never silently produce a wrong width.
std::vector<Gveo> AllGveos(const Hypergraph& h, int max_count = 1000000);

/// A tree decomposition represented by its bag sets. For width computation
/// only the bags matter; `TreeEdges` recovers a join tree when one is
/// needed for evaluation.
struct TreeDecomposition {
  std::vector<VarSet> bags;
};

/// Returns a join-tree edge list (pairs of bag indices) realizing the
/// running-intersection property, built as a maximum spanning tree on bag
/// intersections (valid for every TD produced by EnumerateTds).
std::vector<std::pair<int, int>> TreeEdges(const TreeDecomposition& td);

/// Checks the TD axioms: edge coverage and running intersection (via the
/// maximum-spanning-tree characterization of junction trees).
bool IsValidTd(const Hypergraph& h, const TreeDecomposition& td);

/// Enumerates the non-redundant tree decompositions arising from all VEOs
/// (by Proposition 3.1 these dominate all TDs for width purposes), then
/// prunes decompositions dominated bag-wise by another. The result is the
/// small canonical set used by the subw LPs (e.g. the two TDs of the
/// 4-cycle, Example A.2).
std::vector<TreeDecomposition> EnumerateTds(const Hypergraph& h);

}  // namespace fmmsw

#endif  // FMMSW_HYPERGRAPH_DECOMPOSITION_H_
