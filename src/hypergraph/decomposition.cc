#include "hypergraph/decomposition.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace fmmsw {

std::vector<EliminationStep> EliminationSequence(const Hypergraph& h,
                                                 const Gveo& gveo) {
  // The blocks must partition the active vertices.
  VarSet covered;
  for (const VarSet& b : gveo.blocks) {
    FMMSW_CHECK(!b.empty());
    FMMSW_CHECK(!covered.Intersects(b));
    covered = covered | b;
  }
  FMMSW_CHECK(covered == h.vertices());

  std::vector<EliminationStep> steps;
  Hypergraph cur = h;
  for (const VarSet& block : gveo.blocks) {
    EliminationStep step;
    step.before = cur;
    step.block = block;
    step.u = cur.U(block);
    step.n = cur.N(block);
    step.required = true;
    for (const EliminationStep& prev : steps) {
      if (prev.u.ContainsAll(step.u)) {
        step.required = false;
        break;
      }
    }
    cur = cur.Eliminate(block);
    steps.push_back(std::move(step));
  }
  return steps;
}

std::vector<Gveo> AllVeos(const Hypergraph& h) {
  std::vector<int> vars = h.vertices().Members();
  std::sort(vars.begin(), vars.end());
  std::vector<Gveo> out;
  do {
    Gveo g;
    for (int v : vars) g.blocks.push_back(VarSet::Singleton(v));
    out.push_back(std::move(g));
  } while (std::next_permutation(vars.begin(), vars.end()));
  return out;
}

namespace {

void GveoRec(VarSet remaining, Gveo* cur, std::vector<Gveo>* out,
             int max_count) {
  if (remaining.empty()) {
    FMMSW_CHECK(static_cast<int>(out->size()) < max_count &&
                "GVEO enumeration overflow; raise max_count");
    out->push_back(*cur);
    return;
  }
  // To avoid double-counting ordered partitions we let the first block be
  // any non-empty subset of the remaining variables.
  for (VarSet s : Subsets(remaining)) {
    if (s.empty()) continue;
    cur->blocks.push_back(s);
    GveoRec(remaining - s, cur, out, max_count);
    cur->blocks.pop_back();
  }
}

}  // namespace

std::vector<Gveo> AllGveos(const Hypergraph& h, int max_count) {
  std::vector<Gveo> out;
  Gveo cur;
  GveoRec(h.vertices(), &cur, &out, max_count);
  return out;
}

std::vector<std::pair<int, int>> TreeEdges(const TreeDecomposition& td) {
  const int n = static_cast<int>(td.bags.size());
  std::vector<std::pair<int, int>> edges;
  if (n <= 1) return edges;
  // Prim's algorithm, maximizing intersection size.
  std::vector<bool> in_tree(n, false);
  std::vector<int> best_weight(n, -1), best_from(n, -1);
  in_tree[0] = true;
  for (int j = 1; j < n; ++j) {
    best_weight[j] = td.bags[0].Intersect(td.bags[j]).size();
    best_from[j] = 0;
  }
  for (int it = 1; it < n; ++it) {
    int pick = -1;
    for (int j = 0; j < n; ++j) {
      if (!in_tree[j] && (pick < 0 || best_weight[j] > best_weight[pick])) {
        pick = j;
      }
    }
    FMMSW_CHECK(pick >= 0);
    in_tree[pick] = true;
    edges.emplace_back(best_from[pick], pick);
    for (int j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      int w = td.bags[pick].Intersect(td.bags[j]).size();
      if (w > best_weight[j]) {
        best_weight[j] = w;
        best_from[j] = pick;
      }
    }
  }
  return edges;
}

bool IsValidTd(const Hypergraph& h, const TreeDecomposition& td) {
  // Coverage of every hyperedge.
  for (const VarSet& e : h.edges()) {
    bool covered = false;
    for (const VarSet& b : td.bags) {
      if (b.ContainsAll(e)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  if (td.bags.empty()) return h.edges().empty();
  // Running intersection on the max-weight spanning tree (junction-tree
  // theorem: if any tree works, the maximum spanning tree works).
  auto edges = TreeEdges(td);
  const int n = static_cast<int>(td.bags.size());
  std::vector<std::vector<int>> adj(n);
  for (auto [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (int v : h.vertices().Members()) {
    // Bags containing v must form a connected subtree.
    std::vector<int> with_v;
    for (int i = 0; i < n; ++i) {
      if (td.bags[i].Contains(v)) with_v.push_back(i);
    }
    if (with_v.empty()) return false;
    std::vector<bool> seen(n, false);
    std::vector<int> stack = {with_v[0]};
    seen[with_v[0]] = true;
    int reached = 0;
    while (!stack.empty()) {
      int cur = stack.back();
      stack.pop_back();
      ++reached;
      for (int nx : adj[cur]) {
        if (!seen[nx] && td.bags[nx].Contains(v)) {
          seen[nx] = true;
          stack.push_back(nx);
        }
      }
    }
    if (reached != static_cast<int>(with_v.size())) return false;
  }
  return true;
}

std::vector<TreeDecomposition> EnumerateTds(const Hypergraph& h) {
  std::set<std::vector<uint32_t>> seen;
  std::vector<TreeDecomposition> tds;
  for (const Gveo& veo : AllVeos(h)) {
    auto steps = EliminationSequence(h, veo);
    // Bags are the U_i; drop bags contained in other bags (redundant).
    std::vector<VarSet> bags;
    for (const auto& s : steps) {
      if (!s.u.empty()) bags.push_back(s.u);
    }
    std::vector<VarSet> minimal;
    for (const VarSet& b : bags) {
      bool contained = false;
      for (const VarSet& c : bags) {
        if (c != b && c.ContainsAll(b)) {
          contained = true;
          break;
        }
        if (c == b && &c < &b) {  // exact duplicate, keep first
          contained = true;
          break;
        }
      }
      if (!contained) minimal.push_back(b);
    }
    std::vector<uint32_t> key;
    for (const VarSet& b : minimal) key.push_back(b.mask());
    std::sort(key.begin(), key.end());
    key.erase(std::unique(key.begin(), key.end()), key.end());
    if (!seen.insert(key).second) continue;
    TreeDecomposition td;
    for (uint32_t m : key) td.bags.push_back(VarSet(m));
    tds.push_back(std::move(td));
  }
  // Prune dominated TDs: A dominates B if every bag of A is contained in
  // some bag of B (then A's width is never worse for any monotone h).
  std::vector<bool> drop(tds.size(), false);
  for (size_t a = 0; a < tds.size(); ++a) {
    if (drop[a]) continue;
    for (size_t b = 0; b < tds.size(); ++b) {
      if (a == b || drop[b]) continue;
      bool dominates = true;
      for (const VarSet& ba : tds[a].bags) {
        bool found = false;
        for (const VarSet& bb : tds[b].bags) {
          if (bb.ContainsAll(ba)) {
            found = true;
            break;
          }
        }
        if (!found) {
          dominates = false;
          break;
        }
      }
      if (dominates) drop[b] = true;
    }
  }
  std::vector<TreeDecomposition> out;
  for (size_t i = 0; i < tds.size(); ++i) {
    if (!drop[i]) out.push_back(std::move(tds[i]));
  }
  return out;
}

}  // namespace fmmsw
