#ifndef FMMSW_HYPERGRAPH_HYPERGRAPH_H_
#define FMMSW_HYPERGRAPH_HYPERGRAPH_H_

/// \file
/// Query hypergraphs (paper Section 3).
///
/// A Boolean conjunctive query Q maps to the hypergraph H = (V, E) with
/// V = vars(Q) and one hyperedge per atom. All width notions (rho*, fhtw,
/// subw, w-subw) and the evaluation engine operate on this type. During
/// variable elimination (Definition 4.1), hypergraphs over a shrinking
/// vertex set arise; `vertices()` tracks the active set while variable
/// indices stay stable, so polymatroids and relations indexed by the
/// original variables remain valid throughout a plan.

#include <string>
#include <vector>

#include "util/varset.h"

namespace fmmsw {

class Hypergraph {
 public:
  Hypergraph() = default;

  /// A hypergraph with `k` vertices named by `names` (optional) and no edges.
  explicit Hypergraph(int k, std::vector<std::string> names = {});

  int num_vars() const { return num_vars_; }
  VarSet vertices() const { return vertices_; }
  const std::vector<VarSet>& edges() const { return edges_; }
  const std::vector<std::string>& names() const { return names_; }

  /// Adds a hyperedge (duplicates are ignored).
  void AddEdge(VarSet e);

  /// \name Neighborhood operators of Section 3 / 4.1.
  /// @{
  /// Indices of hyperedges that intersect X (the set "del_H(X)").
  std::vector<int> IncidentEdges(VarSet x) const;
  /// Union of all hyperedges intersecting X ("U_H(X)").
  VarSet U(VarSet x) const;
  /// U_H(X) minus X ("N_H(X)").
  VarSet N(VarSet x) const;
  /// @}

  /// The hypergraph after eliminating the variable set X (Definition 4.1):
  /// vertices lose X; edges touching X are replaced by the single edge
  /// N_H(X). Vertex indices are preserved.
  Hypergraph Eliminate(VarSet x) const;

  /// True if every pair of active vertices co-occurs in some hyperedge
  /// (Definition C.11 "clustered"); cliques and pyramids qualify, and for
  /// these the w-submodular width reduces to the first elimination (Eq. 40).
  bool IsClustered() const;

  /// Drops edges strictly contained in other edges (does not change any
  /// width; shrinks EMM enumeration).
  Hypergraph WithoutSubsumedEdges() const;

  std::string ToString() const;

  /// \name The paper's example query classes.
  /// @{
  /// Triangle query, Eq. (2): R(X,Y), S(Y,Z), T(X,Z).
  static Hypergraph Triangle();
  /// The two-triangle query Q_double-triangle, Eq. (3).
  static Hypergraph DoubleTriangle();
  /// k-clique, Eq. (29).
  static Hypergraph Clique(int k);
  /// k-cycle, Eq. (30); Cycle(4) is the 4-cycle query Q_square, Eq. (4).
  static Hypergraph Cycle(int k);
  /// k-pyramid, Eq. (31): edges {Y,X_i} for i in [k] plus {X_1..X_k}.
  /// Variable 0 is the apex Y.
  static Hypergraph Pyramid(int k);
  /// The 5-variable hypergraph of Lemma C.15.
  static Hypergraph LemmaC15();
  /// @}

 private:
  int num_vars_ = 0;
  VarSet vertices_;
  std::vector<VarSet> edges_;
  std::vector<std::string> names_;
};

}  // namespace fmmsw

#endif  // FMMSW_HYPERGRAPH_HYPERGRAPH_H_
