#include "hypergraph/hypergraph.h"

#include <algorithm>

#include "util/check.h"

namespace fmmsw {

Hypergraph::Hypergraph(int k, std::vector<std::string> names)
    : num_vars_(k), vertices_(VarSet::Full(k)), names_(std::move(names)) {
  FMMSW_CHECK(k >= 0 && k <= kMaxVars);
  if (names_.empty()) {
    for (int i = 0; i < k; ++i) names_.push_back("X" + std::to_string(i));
  }
  FMMSW_CHECK(static_cast<int>(names_.size()) == k);
}

void Hypergraph::AddEdge(VarSet e) {
  FMMSW_CHECK(vertices_.ContainsAll(e));
  FMMSW_CHECK(!e.empty());
  if (std::find(edges_.begin(), edges_.end(), e) == edges_.end()) {
    edges_.push_back(e);
  }
}

std::vector<int> Hypergraph::IncidentEdges(VarSet x) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(edges_.size()); ++i) {
    if (edges_[i].Intersects(x)) out.push_back(i);
  }
  return out;
}

VarSet Hypergraph::U(VarSet x) const {
  VarSet u;
  for (const VarSet& e : edges_) {
    if (e.Intersects(x)) u = u | e;
  }
  return u;
}

VarSet Hypergraph::N(VarSet x) const { return U(x) - x; }

Hypergraph Hypergraph::Eliminate(VarSet x) const {
  FMMSW_DCHECK(vertices_.ContainsAll(x));
  Hypergraph out;
  out.num_vars_ = num_vars_;
  out.names_ = names_;
  out.vertices_ = vertices_ - x;
  const VarSet n = N(x);
  for (const VarSet& e : edges_) {
    if (!e.Intersects(x)) out.AddEdge(e);
  }
  if (!n.empty()) out.AddEdge(n);
  return out;
}

bool Hypergraph::IsClustered() const {
  for (int i : vertices_.Members()) {
    for (int j : vertices_.Members()) {
      if (i >= j) continue;
      const VarSet pair{i, j};
      bool covered = false;
      for (const VarSet& e : edges_) {
        if (e.ContainsAll(pair)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }
  return true;
}

Hypergraph Hypergraph::WithoutSubsumedEdges() const {
  Hypergraph out;
  out.num_vars_ = num_vars_;
  out.names_ = names_;
  out.vertices_ = vertices_;
  for (const VarSet& e : edges_) {
    bool subsumed = false;
    for (const VarSet& f : edges_) {
      if (f != e && f.ContainsAll(e)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) out.AddEdge(e);
  }
  return out;
}

std::string Hypergraph::ToString() const {
  std::string out = "H(V=" + vertices_.ToString(&names_) + ", E={";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ", ";
    out += edges_[i].ToString(&names_);
  }
  out += "})";
  return out;
}

Hypergraph Hypergraph::Triangle() {
  Hypergraph h(3, {"X", "Y", "Z"});
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  return h;
}

Hypergraph Hypergraph::DoubleTriangle() {
  // Vars: X=0, Y=1, Z=2, Z'=3. Atoms R(X,Y), S(Y,Z), T(X,Z), S'(Y,Z'),
  // T'(X,Z').
  Hypergraph h(4, {"X", "Y", "Z", "Zp"});
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  h.AddEdge({1, 3});
  h.AddEdge({0, 3});
  return h;
}

Hypergraph Hypergraph::Clique(int k) {
  FMMSW_CHECK(k >= 2 && k <= kMaxVars);
  Hypergraph h(k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) h.AddEdge({i, j});
  }
  return h;
}

Hypergraph Hypergraph::Cycle(int k) {
  FMMSW_CHECK(k >= 3 && k <= kMaxVars);
  Hypergraph h(k);
  for (int i = 0; i < k; ++i) h.AddEdge({i, (i + 1) % k});
  return h;
}

Hypergraph Hypergraph::Pyramid(int k) {
  FMMSW_CHECK(k >= 2 && k + 1 <= kMaxVars);
  std::vector<std::string> names = {"Y"};
  for (int i = 1; i <= k; ++i) names.push_back("X" + std::to_string(i));
  Hypergraph h(k + 1, std::move(names));
  VarSet base;
  for (int i = 1; i <= k; ++i) {
    h.AddEdge({0, i});
    base.Add(i);
  }
  h.AddEdge(base);
  return h;
}

Hypergraph Hypergraph::LemmaC15() {
  // V = {X,Y,Z,W,L}; E = {XYW, XYL, XZ, YZ, ZWL}.
  Hypergraph h(5, {"X", "Y", "Z", "W", "L"});
  h.AddEdge({0, 1, 3});
  h.AddEdge({0, 1, 4});
  h.AddEdge({0, 2});
  h.AddEdge({1, 2});
  h.AddEdge({2, 3, 4});
  return h;
}

}  // namespace fmmsw
