#include "width/mm_expr.h"

#include "util/check.h"

namespace fmmsw {

namespace {

/// Appends coeff * h(s) to a LinComb, dropping empty sets and merging
/// duplicate sets.
void Append(LinComb* lc, VarSet s, const Rational& coeff) {
  if (s.empty() || coeff.IsZero()) return;
  for (LinTerm& t : *lc) {
    if (t.set == s) {
      t.coeff += coeff;
      return;
    }
  }
  lc->push_back(LinTerm{s, coeff});
}

}  // namespace

std::vector<LinComb> MmExpr::Branches(const Rational& gamma) const {
  FMMSW_DCHECK(!x.Intersects(y) && !x.Intersects(z) && !x.Intersects(g));
  FMMSW_DCHECK(!y.Intersects(z) && !y.Intersects(g) && !z.Intersects(g));
  const Rational one(1);
  std::vector<LinComb> out(3);
  const VarSet parts[3] = {x, y, z};
  for (int branch = 0; branch < 3; ++branch) {
    LinComb& lc = out[branch];
    Rational g_coeff(1);  // the +h(G) term
    for (int p = 0; p < 3; ++p) {
      // In branch b the "small" (gamma) coefficient falls on part (2 - b):
      // branch 0 -> gamma on z, branch 1 -> gamma on y, branch 2 -> on x.
      const Rational c = (p == 2 - branch) ? gamma : one;
      Append(&lc, parts[p] | g, c);
      g_coeff -= c;
    }
    Append(&lc, g, g_coeff);
  }
  return out;
}

Rational EvaluateLinComb(const LinComb& lc, const SetFn<Rational>& h) {
  Rational v(0);
  for (const LinTerm& t : lc) v += t.coeff * h[t.set];
  return v;
}

Rational MmExpr::Evaluate(const SetFn<Rational>& h,
                          const Rational& gamma) const {
  Rational best;
  bool first = true;
  for (const LinComb& lc : Branches(gamma)) {
    Rational v = EvaluateLinComb(lc, h);
    if (first || v > best) {
      best = v;
      first = false;
    }
  }
  return best;
}

MmExpr MmExpr::Canonical() const {
  MmExpr out = *this;
  if (out.y.mask() < out.x.mask()) std::swap(out.x, out.y);
  return out;
}

MmExpr MmExpr::WidthCanonical() const {
  MmExpr out = *this;
  if (out.y.mask() < out.x.mask()) std::swap(out.x, out.y);
  if (out.z.mask() < out.y.mask()) std::swap(out.y, out.z);
  if (out.y.mask() < out.x.mask()) std::swap(out.x, out.y);
  return out;
}

bool MmExpr::operator<(const MmExpr& o) const {
  if (x != o.x) return x < o.x;
  if (y != o.y) return y < o.y;
  if (z != o.z) return z < o.z;
  return g < o.g;
}

std::string MmExpr::ToString(const std::vector<std::string>* names) const {
  std::string out = "MM(" + x.ToString(names) + ";" + y.ToString(names) +
                    ";" + z.ToString(names);
  if (!g.empty()) out += "|" + g.ToString(names);
  out += ")";
  return out;
}

}  // namespace fmmsw
