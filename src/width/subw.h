#ifndef FMMSW_WIDTH_SUBW_H_
#define FMMSW_WIDTH_SUBW_H_

/// \file
/// Combinatorial width measures: the fractional edge cover number rho*
/// (Definition C.1), the fractional hypertree width fhtw, and the
/// submodular width subw (Eq. 19), computed exactly over rationals via the
/// TD-tuple LP reduction of Appendix A.4 (Eq. 36-39).

#include <cstdint>
#include <vector>

#include "entropy/polymatroid.h"
#include "hypergraph/decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/rational.h"

namespace fmmsw {

class ExecContext;

/// Fractional edge cover number of the vertices in `target` using all
/// hyperedges of H (min sum of edge weights covering each target vertex).
/// With target == vertices() this is rho*(H), the AGM-bound exponent.
Rational FractionalEdgeCover(const Hypergraph& h, VarSet target,
                             ExecContext* ctx = nullptr);

/// rho*(H) = FractionalEdgeCover over all vertices.
Rational RhoStar(const Hypergraph& h, ExecContext* ctx = nullptr);

/// Fractional hypertree width: min over TDs of max over bags of the
/// fractional edge cover of the bag.
Rational Fhtw(const Hypergraph& h, ExecContext* ctx = nullptr);

struct SubwResult {
  Rational value;
  /// A worst-case polymatroid attaining the value (the argmax h of
  /// Eq. 19), taken from the winning tuple's LP solution.
  SetFn<Rational> worst_case;
  /// The TDs the max-min ranged over.
  std::vector<TreeDecomposition> tds;
  int lps_solved = 0;
  long lp_warm_starts = 0;  ///< LPs that replayed a previous basis
  long lp_pivots = 0;       ///< total simplex pivots
  int64_t plan_ns = 0;      ///< wall time of the computation
};

/// Exact submodular width via one LP per tuple of bags (one bag from each
/// non-redundant TD), Eq. (39).
SubwResult SubmodularWidth(const Hypergraph& h, ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_SUBW_H_
