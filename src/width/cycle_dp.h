#ifndef FMMSW_WIDTH_CYCLE_DP_H_
#define FMMSW_WIDTH_CYCLE_DP_H_

/// \file
/// The square-MM cycle-detection exponent c-square_k of Eq. (45)-(46)
/// (the k-cycle row of Tables 1-2), following the degree-split dynamic
/// program of Dalirrooyfard-Vuong-Williams with omega(a,b,c) replaced by
/// the square-blocking bound omega-square.
///
/// For a fixed degree vector d = (d1-, d1+, ..., dk-, dk+) the DP value
/// P_{i,j} is the exponent of building the path reachability matrix from
/// cycle position i to j (clockwise); the final bound combines both arcs
/// around the cycle or a heavy-degree shortcut:
///
///   c_k(d) = min( min_i (2 - d_i), min_{i<j} max(P_{i,j}, P_{j,i}) ).
///
/// c-square_k = max over d of c_k(d). The maximization is over a continuous
/// box; we search with a coordinate-ascent multi-start over a grid, which
/// lower-bounds c-square_k and in practice lands on the paper's values
/// (for k = 4 it must match 2 - 3/(2 min(w, 5/2) + 1), Lemma C.9/C.10).

#include <vector>

namespace fmmsw {

/// c_k(d) for one degree vector; d has 2k entries in [0, 1] laid out as
/// (d1-, d1+, d2-, d2+, ...).
double CycleDpValue(int k, double omega, const std::vector<double>& d);

struct CycleCsquareResult {
  double value = 0;
  std::vector<double> best_d;
  long evaluations = 0;
};

/// Approximate c-square_k via grid multi-start + coordinate ascent.
/// `grid` is the number of cells per axis (resolution 1/grid).
CycleCsquareResult CycleCsquare(int k, double omega, int grid = 40);

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_CYCLE_DP_H_
