#include "width/width_cache.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace fmmsw {

namespace {

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t GlobalCapacityFromEnv() {
  const char* env = std::getenv("FMMSW_WIDTH_CACHE_CAP");
  if (env == nullptr || *env == '\0') return WidthCache::kDefaultCapacity;
  char* end = nullptr;
  const long long cap = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || cap < 0) {
    return WidthCache::kDefaultCapacity;
  }
  return static_cast<size_t>(cap);
}

}  // namespace

std::string WidthCacheKey(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts) {
  std::vector<uint32_t> edges;
  edges.reserve(h.edges().size());
  for (const VarSet& e : h.edges()) edges.push_back(e.mask());
  std::sort(edges.begin(), edges.end());
  // Commutative 128-bit multiset hash as a cheap discriminating prefix;
  // the full sorted edge list follows, so the key never collides.
  uint64_t ha = 0, hb = 0;
  for (uint32_t e : edges) {
    ha += SplitMix(e);
    hb += SplitMix(static_cast<uint64_t>(e) ^ 0xc2b2ae3d27d4eb4full);
  }
  std::string key;
  key += std::to_string(ha) + ":" + std::to_string(hb) + "|v" +
         std::to_string(h.vertices().mask()) + "|e";
  for (uint32_t e : edges) key += std::to_string(e) + ",";
  key += "|w" + omega.ToString();
  key += opts.full_enumeration ? "|full" : "|bb";
  key += opts.warm_start ? "|warm" : "|cold";
  key += "|cap" + std::to_string(opts.gveo_cap);
  key += "|mie" + std::to_string(opts.emm.max_incident_edges);
  key += "|mp" + std::to_string(opts.max_pivots);
  // Relation-version digest (catalog snapshots): identical shapes over
  // different committed data key separately, so a commit can never
  // serve a stale cached plan. 0 = shape-only (direct ComputeWidths).
  key += "|d" + std::to_string(opts.stats_digest);
  for (const SetFn<Rational>& w : opts.witnesses) {
    key += "|W" + std::to_string(w.universe().mask()) + ":";
    for (VarSet s : Subsets(w.universe())) {
      key += w[s].ToString() + ",";
    }
  }
  return key;
}

WidthCache::WidthCache(size_t capacity) : capacity_(capacity) {}

WidthCache& WidthCache::Global() {
  static WidthCache cache(GlobalCapacityFromEnv());
  return cache;
}

bool WidthCache::Lookup(const std::string& key, OmegaSubwResult* out) {
  MutexLock lock(&mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  *out = it->second.result;
  // Refresh recency: move the key to the MRU front.
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++hits_;
  return true;
}

void WidthCache::EvictOne() {
  map_.erase(lru_.back());
  lru_.pop_back();
  ++evictions_;
}

size_t WidthCache::Insert(const std::string& key,
                          const OmegaSubwResult& result) {
  MutexLock lock(&mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Determinism contract: a concurrent Insert of the same key carries
    // an identical result, so keep the stored one and just refresh.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return 0;
  }
  if (capacity_ == 0) return 0;  // "hold nothing": drop on the floor
  size_t evicted = 0;
  while (map_.size() >= capacity_) {
    EvictOne();
    ++evicted;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{result, lru_.begin()});
  return evicted;
}

void WidthCache::Clear() {
  MutexLock lock(&mu_);
  map_.clear();
  lru_.clear();
  hits_ = 0;
  evictions_ = 0;
}

size_t WidthCache::SetCapacity(size_t capacity) {
  MutexLock lock(&mu_);
  capacity_ = capacity;
  size_t evicted = 0;
  while (map_.size() > capacity_) {
    EvictOne();
    ++evicted;
  }
  return evicted;
}

size_t WidthCache::size() const {
  MutexLock lock(&mu_);
  return map_.size();
}

size_t WidthCache::capacity() const {
  MutexLock lock(&mu_);
  return capacity_;
}

int64_t WidthCache::hits() const {
  MutexLock lock(&mu_);
  return hits_;
}

int64_t WidthCache::evictions() const {
  MutexLock lock(&mu_);
  return evictions_;
}

}  // namespace fmmsw
