#ifndef FMMSW_WIDTH_MM_EXPR_H_
#define FMMSW_WIDTH_MM_EXPR_H_

/// \file
/// The matrix-multiplication information measure MM(X;Y;Z|G) of
/// Definition 4.2. On a log_N scale it is the square-blocking cost of
/// multiplying a |X|-by-|Z| matrix with a |Z|-by-|Y| matrix for every value
/// of the group-by variables G:
///
///   MM(X;Y;Z|G) = max( h(X|G) + h(Y|G) + gamma h(Z|G) + h(G),
///                      h(X|G) + gamma h(Y|G) + h(Z|G) + h(G),
///                      gamma h(X|G) + h(Y|G) + h(Z|G) + h(G) ),
///
/// gamma = omega - 2. Each of the three args is linear in h, so the width
/// LPs treat MM terms by branching over the argmax (Section 6).

#include <string>
#include <vector>

#include "entropy/polymatroid.h"
#include "util/rational.h"
#include "util/varset.h"

namespace fmmsw {

/// A linear combination of set-function values: sum coeff * h(set).
struct LinTerm {
  VarSet set;
  Rational coeff;
};
using LinComb = std::vector<LinTerm>;

/// MM(x;y;z|g) with pairwise-disjoint parts; z is the eliminated dimension.
struct MmExpr {
  VarSet x, y, z, g;

  /// The three linear branches of Eq. (21), rewritten over unconditional
  /// h-terms: e.g. branch 0 is h(xg) + h(yg) + gamma h(zg) - (1+gamma) h(g).
  std::vector<LinComb> Branches(const Rational& gamma) const;

  /// Evaluates MM(x;y;z|g) = max over branches on a concrete polymatroid.
  Rational Evaluate(const SetFn<Rational>& h, const Rational& gamma) const;

  /// Canonical form: x and y are interchangeable (the measure is symmetric
  /// in its first two arguments), so order them by mask. Keeps z in place,
  /// preserving its "eliminated dimension" role for the engine.
  MmExpr Canonical() const;

  /// Width-canonical form: the MM *measure* is symmetric in all three of
  /// x, y, z (paper footnote 7 — the max ranges over all rotations of
  /// gamma), so width computations dedupe terms by sorting all three parts.
  /// With this form the 4-clique yields exactly the 10 terms of Eq. (28).
  MmExpr WidthCanonical() const;

  bool operator==(const MmExpr& o) const {
    return x == o.x && y == o.y && z == o.z && g == o.g;
  }
  bool operator<(const MmExpr& o) const;

  std::string ToString(const std::vector<std::string>* names = nullptr) const;
};

/// Evaluates a linear combination on a concrete polymatroid.
Rational EvaluateLinComb(const LinComb& lc, const SetFn<Rational>& h);

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_MM_EXPR_H_
