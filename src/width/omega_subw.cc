#include "width/omega_subw.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"
#include "width/maxmin_solver.h"

namespace fmmsw {

namespace {

/// Canonical key of a (sub-)hypergraph + elimination block, for memoizing
/// per-step computations shared between GVEOs.
std::vector<uint32_t> StepKey(const Hypergraph& h, VarSet block) {
  std::vector<uint32_t> key;
  key.push_back(h.vertices().mask());
  key.push_back(block.mask());
  std::vector<uint32_t> edges;
  for (const VarSet& e : h.edges()) edges.push_back(e.mask());
  std::sort(edges.begin(), edges.end());
  key.insert(key.end(), edges.begin(), edges.end());
  return key;
}

/// Builds the solver for max_h min(h(cap), MM terms...) — one step (or the
/// clustered form) of the Section-6 computation.
void PopulateSolver(MaxMinSolver* solver, VarSet cap,
                    const std::vector<MmExpr>& terms, const Rational& gamma) {
  if (!cap.empty()) solver->AddCapTerm(cap);
  for (const MmExpr& e : terms) solver->AddTerm(e.Branches(gamma));
}

}  // namespace

std::vector<MmExpr> ClusteredMmTerms(const Hypergraph& h,
                                     const EmmOptions& emm) {
  std::set<MmExpr> terms;
  for (VarSet x : Subsets(h.vertices())) {
    if (x.empty() || x == h.vertices()) continue;
    for (const MmExpr& e : EnumerateMmOptions(h, x, emm)) {
      terms.insert(e.WidthCanonical());
    }
  }
  return std::vector<MmExpr>(terms.begin(), terms.end());
}

Rational GveoCostOn(const Hypergraph& h, const Gveo& gveo,
                    const SetFn<Rational>& hfn, const Rational& omega,
                    const EmmOptions& emm) {
  const Rational gamma = omega - Rational(2);
  Rational worst(0);
  for (const EliminationStep& step : EliminationSequence(h, gveo)) {
    if (!step.required || step.u.empty()) continue;
    Rational cost = hfn[step.u];
    bool defined = false;
    Rational via_mm =
        EvaluateEmm(step.before, step.block, hfn, gamma, &defined, emm);
    if (defined) cost = Rational::Min(cost, via_mm);
    worst = Rational::Max(worst, cost);
  }
  return worst;
}

Rational WidthAt(const Hypergraph& h, const SetFn<Rational>& hfn,
                 const Rational& omega, const OmegaSubwOptions& opts) {
  const Rational gamma = omega - Rational(2);
  // Memoize per-(hypergraph, block) EMM option lists across GVEOs.
  std::map<std::vector<uint32_t>, std::pair<VarSet, std::vector<MmExpr>>>
      step_cache;
  Rational best;
  bool first = true;
  for (const Gveo& gveo : AllGveos(h, opts.gveo_cap)) {
    Rational worst(0);
    Hypergraph cur = h;
    std::vector<VarSet> seen_u;
    for (const VarSet& block : gveo.blocks) {
      auto key = StepKey(cur, block);
      auto it = step_cache.find(key);
      if (it == step_cache.end()) {
        it = step_cache
                 .emplace(key, std::make_pair(
                                   cur.U(block),
                                   EnumerateMmOptions(cur, block, opts.emm)))
                 .first;
      }
      const VarSet u = it->second.first;
      bool required = !u.empty();
      for (VarSet prev : seen_u) {
        if (prev.ContainsAll(u)) {
          required = false;
          break;
        }
      }
      seen_u.push_back(u);
      if (required) {
        Rational cost = hfn[u];
        bool mm_first = true;
        Rational mm_best;
        for (const MmExpr& e : it->second.second) {
          Rational v = e.Evaluate(hfn, gamma);
          if (mm_first || v < mm_best) {
            mm_best = v;
            mm_first = false;
          }
        }
        if (!mm_first) cost = Rational::Min(cost, mm_best);
        worst = Rational::Max(worst, cost);
      }
      cur = cur.Eliminate(block);
    }
    if (first || worst < best) {
      best = worst;
      first = false;
    }
    if (!first && best == Rational(0)) break;
  }
  FMMSW_CHECK(!first);
  return best;
}

OmegaSubwResult OmegaSubwClustered(const Hypergraph& h, const Rational& omega,
                                   const OmegaSubwOptions& opts) {
  FMMSW_CHECK(h.IsClustered());
  OmegaSubwResult out;
  out.used_clustered_form = true;
  std::vector<MmExpr> terms = ClusteredMmTerms(h, opts.emm);
  out.num_mm_terms = static_cast<int>(terms.size());

  MaxMinSolver solver(h);
  PopulateSolver(&solver, h.vertices(), terms, omega - Rational(2));
  if (opts.full_enumeration) {
    solver.FullEnumerate();
  } else {
    solver.CoordinateAscent();
    solver.BranchAndBound();
  }
  out.value = solver.SolveExact(&out.worst_case);
  out.lower = out.upper = out.value;
  out.exact = true;
  out.lps_solved = solver.lps_solved();
  return out;
}

OmegaSubwResult OmegaSubw(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts) {
  if (h.IsClustered()) {
    return OmegaSubwClustered(h, omega, opts);
  }

  OmegaSubwResult out;
  const auto gveos = AllGveos(h, opts.gveo_cap);

  // ---- Upper bound: min over GVEOs of max over required steps of
  //      max_h min(h(U_i), EMM_i), with per-step memoization
  //      (w-subw = max-min <= min-max).
  std::map<std::vector<uint32_t>, std::pair<Rational, SetFn<Rational>>>
      step_value;
  long lps = 0;
  bool first_sigma = true;
  for (const Gveo& gveo : gveos) {
    Rational sigma_ub(0);
    for (const EliminationStep& step : EliminationSequence(h, gveo)) {
      if (!step.required || step.u.empty()) continue;
      auto key = StepKey(step.before, step.block);
      auto it = step_value.find(key);
      if (it == step_value.end()) {
        std::set<MmExpr> dedup;
        for (const MmExpr& e :
             EnumerateMmOptions(step.before, step.block, opts.emm)) {
          dedup.insert(e.WidthCanonical());
        }
        MaxMinSolver solver(h);
        PopulateSolver(&solver, step.u,
                       std::vector<MmExpr>(dedup.begin(), dedup.end()),
                       omega - Rational(2));
        solver.CoordinateAscent();
        solver.BranchAndBound();
        SetFn<Rational> hstar;
        Rational v = solver.SolveExact(&hstar);
        lps += solver.lps_solved();
        it = step_value.emplace(key, std::make_pair(v, std::move(hstar)))
                 .first;
      }
      sigma_ub = Rational::Max(sigma_ub, it->second.first);
      if (!first_sigma && out.upper <= sigma_ub) break;
    }
    if (first_sigma || sigma_ub < out.upper) {
      out.upper = sigma_ub;
      first_sigma = false;
    }
  }
  out.lps_solved = lps;

  // ---- Lower bound: evaluate candidate polymatroids against all GVEOs.
  std::vector<const SetFn<Rational>*> candidates;
  for (const auto& [key, vh] : step_value) candidates.push_back(&vh.second);
  for (const auto& w : opts.witnesses) candidates.push_back(&w);
  bool first_cand = true;
  for (const SetFn<Rational>* cand : candidates) {
    Rational v = WidthAt(h, *cand, omega, opts);
    if (first_cand || v > out.lower) {
      out.lower = v;
      out.worst_case = *cand;
      first_cand = false;
    }
  }
  if (first_cand) out.lower = Rational(0);

  out.exact = (out.lower == out.upper);
  out.value = out.upper;
  return out;
}

}  // namespace fmmsw
