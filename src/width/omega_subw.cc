#include "width/omega_subw.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/exec_context.h"
#include "util/check.h"
#include "util/parallel.h"
#include "width/closed_forms.h"
#include "width/maxmin_solver.h"
#include "width/width_cache.h"

namespace fmmsw {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// 128-bit canonical digest of a (sub-)hypergraph + elimination block,
/// keying the per-step memo shared between GVEOs. Built incrementally —
/// no sorted key vector is materialized per lookup — from two independent
/// mixes of (vertex mask, block mask) plus a commutative sum-mod-2^64
/// multiset hash of the edge masks, so edge order is irrelevant. At 128
/// bits a collision among the few thousand distinct steps of a width
/// computation is beyond astronomically unlikely; digest equality is
/// treated as step equality.
struct StepDigest {
  uint64_t a = 0;
  uint64_t b = 0;
  friend bool operator==(const StepDigest& x, const StepDigest& y) {
    return x.a == y.a && x.b == y.b;
  }
};

struct StepDigestHash {
  size_t operator()(const StepDigest& d) const {
    return static_cast<size_t>(d.a);
  }
};

StepDigest DigestStep(const Hypergraph& h, VarSet block) {
  constexpr uint64_t kLaneB = 0xc2b2ae3d27d4eb4full;
  StepDigest d;
  d.a = SplitMix(h.vertices().mask());
  d.b = SplitMix(static_cast<uint64_t>(h.vertices().mask()) ^ kLaneB);
  d.a = SplitMix(d.a ^ block.mask());
  d.b = SplitMix(d.b ^ block.mask());
  for (const VarSet& e : h.edges()) {
    d.a += SplitMix(e.mask());
    d.b += SplitMix(static_cast<uint64_t>(e.mask()) ^ kLaneB);
  }
  return d;
}

/// One distinct elimination step: the sub-hypergraph it acts on, the block
/// it eliminates, and U = the step's output set.
struct StepSite {
  Hypergraph before;
  VarSet block;
  VarSet u;
};

/// A required step of one GVEO, pointing at its distinct-step slot.
struct StepRef {
  VarSet u;
  int slot = -1;
};

/// The hfn-independent skeleton of the Definition-4.7 min over GVEOs: every
/// GVEO's required steps, deduplicated into first-occurrence-ordered
/// distinct sites. Built once and reused for the upper-bound solves and
/// every lower-bound candidate evaluation.
struct StepPlan {
  std::vector<Gveo> gveos;
  std::vector<std::vector<StepRef>> per_gveo;  ///< required steps per GVEO
  std::vector<StepSite> sites;                 ///< distinct required steps
};

/// Phase 1 of every width computation: fan the elimination walks over the
/// pool (disjoint output slots), then merge the digests serially in GVEO
/// order — the slot numbering is first-occurrence order and therefore
/// independent of thread count. A step is *required* (Proposition 4.11)
/// when its U is non-empty and not contained in any earlier step's U.
StepPlan BuildStepPlan(const Hypergraph& h, const OmegaSubwOptions& opts,
                       ExecContext& ec) {
  StepPlan plan;
  plan.gveos = AllGveos(h, opts.gveo_cap);
  const int64_t ng = static_cast<int64_t>(plan.gveos.size());
  FMMSW_CHECK(ng > 0);

  struct WalkStep {
    StepDigest digest;
    Hypergraph before;
    VarSet block;
    VarSet u;
    bool required = false;
  };
  std::vector<std::vector<WalkStep>> walks(ng);
  ParallelFor(ec, FaultSite::kLp, ng, [&](int64_t lo, int64_t hi) {
    for (int64_t g = lo; g < hi; ++g) {
      Hypergraph cur = h;
      std::vector<VarSet> seen_u;
      for (const VarSet& block : plan.gveos[g].blocks) {
        WalkStep ws;
        ws.u = cur.U(block);
        ws.required = !ws.u.empty();
        for (VarSet prev : seen_u) {
          if (prev.ContainsAll(ws.u)) {
            ws.required = false;
            break;
          }
        }
        seen_u.push_back(ws.u);
        if (ws.required) {
          ws.digest = DigestStep(cur, block);
          ws.before = cur;
          ws.block = block;
        }
        Hypergraph next = cur.Eliminate(block);
        if (ws.required) walks[g].push_back(std::move(ws));
        cur = std::move(next);
      }
    }
  });

  std::unordered_map<StepDigest, int, StepDigestHash> slot_of;
  plan.per_gveo.resize(ng);
  for (int64_t g = 0; g < ng; ++g) {
    for (WalkStep& ws : walks[g]) {
      auto [it, inserted] =
          slot_of.try_emplace(ws.digest, static_cast<int>(plan.sites.size()));
      if (inserted) {
        plan.sites.push_back(
            StepSite{std::move(ws.before), ws.block, ws.u});
      }
      plan.per_gveo[g].push_back(StepRef{ws.u, it->second});
    }
  }
  return plan;
}

/// Phase 2: each distinct site's MM option list, fanned per site.
std::vector<std::vector<MmExpr>> SiteOptions(const StepPlan& plan,
                                             const EmmOptions& emm,
                                             ExecContext& ec) {
  std::vector<std::vector<MmExpr>> options(plan.sites.size());
  ParallelFor(
      ec, FaultSite::kLp, static_cast<int64_t>(plan.sites.size()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          options[i] =
              EnumerateMmOptions(plan.sites[i].before, plan.sites[i].block,
                                 emm);
        }
      },
      /*grain=*/1);
  return options;
}

/// The width a concrete polymatroid attains on a prebuilt plan: min over
/// GVEOs of max over required steps of min(h(U), EMM). Each *distinct*
/// step evaluates exactly once, into its own slot (steps shared by many
/// GVEOs — the common case — are not re-evaluated per GVEO); the min/max
/// reduction over the slots is serial and exact (Rational), so the result
/// is thread-count independent.
Rational EvaluatePlan(const StepPlan& plan,
                      const std::vector<std::vector<MmExpr>>& options,
                      const SetFn<Rational>& hfn, const Rational& gamma,
                      ExecContext& ec) {
  const int64_t nsites = static_cast<int64_t>(plan.sites.size());
  std::vector<Rational> site_cost(nsites);
  ParallelFor(
      ec, FaultSite::kLp, nsites,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          Rational cost = hfn[plan.sites[i].u];
          bool mm_first = true;
          Rational mm_best;
          for (const MmExpr& e : options[i]) {
            Rational v = e.Evaluate(hfn, gamma);
            if (mm_first || v < mm_best) {
              mm_best = std::move(v);
              mm_first = false;
            }
          }
          if (!mm_first) cost = Rational::Min(cost, mm_best);
          site_cost[i] = std::move(cost);
        }
      },
      /*grain=*/1);
  bool first = true;
  Rational best;
  for (const auto& refs : plan.per_gveo) {
    Rational worst(0);
    for (const StepRef& ref : refs) {
      worst = Rational::Max(worst, site_cost[ref.slot]);
    }
    if (first || worst < best) {
      best = std::move(worst);
      first = false;
    }
  }
  FMMSW_CHECK(!first);
  return best;
}

/// Builds the solver for max_h min(h(cap), MM terms...) — one step (or the
/// clustered form) of the Section-6 computation.
void PopulateSolver(MaxMinSolver* solver, VarSet cap,
                    const std::vector<MmExpr>& terms, const Rational& gamma) {
  if (!cap.empty()) solver->AddCapTerm(cap);
  for (const MmExpr& e : terms) solver->AddTerm(e.Branches(gamma));
}

void RecordSolverStats(const MaxMinSolver& solver, OmegaSubwResult* out) {
  out->lps_solved += solver.lps_solved();
  out->lp_warm_starts += solver.lp_warm_starts();
  out->lp_pivots += solver.lp_pivots();
}

OmegaSubwResult OmegaSubwGeneral(const Hypergraph& h, const Rational& omega,
                                 const OmegaSubwOptions& opts,
                                 ExecContext& ec) {
  OmegaSubwResult out;
  const Rational gamma = omega - Rational(2);
  const StepPlan plan = BuildStepPlan(h, opts, ec);
  const auto options = SiteOptions(plan, opts.emm, ec);
  const int64_t nsites = static_cast<int64_t>(plan.sites.size());

  // ---- Upper bound: min over GVEOs of max over required steps of
  //      max_h min(h(U_i), EMM_i) (w-subw = max-min <= min-max). Distinct
  //      steps solve lazily, each at most once into its own slot with a
  //      private warm-start chain; a GVEO stops solving once its running
  //      max reaches the incumbent upper bound (it can no longer be the
  //      argmin). The loop is serial over a fixed order, so the set of
  //      solved steps — hence lps_solved — is identical at every thread
  //      count.
  std::vector<Rational> value(nsites);
  std::vector<SetFn<Rational>> hstar(nsites);
  std::vector<char> solved(nsites, 0);
  std::vector<int> solve_order;
  auto solve_site = [&](int i) {
    std::set<MmExpr> dedup;
    for (const MmExpr& e : options[i]) dedup.insert(e.WidthCanonical());
    MaxMinSolver solver(h, &ec);
    solver.SetWarmStart(opts.warm_start);
    solver.SetMaxPivots(opts.max_pivots);
    PopulateSolver(&solver, plan.sites[i].u,
                   std::vector<MmExpr>(dedup.begin(), dedup.end()), gamma);
    solver.CoordinateAscent();
    solver.BranchAndBound();
    value[i] = solver.SolveExact(&hstar[i]);
    solved[i] = 1;
    solve_order.push_back(i);
    RecordSolverStats(solver, &out);
  };
  bool first_sigma = true;
  for (size_t g = 0; g < plan.gveos.size(); ++g) {
    ec.guard().Poll(FaultSite::kLp);
    Rational sigma_ub(0);
    for (const StepRef& ref : plan.per_gveo[g]) {
      if (!solved[ref.slot]) solve_site(ref.slot);
      sigma_ub = Rational::Max(sigma_ub, value[ref.slot]);
      if (!first_sigma && out.upper <= sigma_ub) break;
    }
    if (first_sigma || sigma_ub < out.upper) {
      out.upper = std::move(sigma_ub);
      first_sigma = false;
    }
  }
  FMMSW_CHECK(!first_sigma);

  // ---- Lower bound: evaluate candidate polymatroids against all GVEOs —
  //      the solved steps' argmaxes (in solve order) then the user
  //      witnesses.
  std::vector<const SetFn<Rational>*> candidates;
  for (int i : solve_order) candidates.push_back(&hstar[i]);
  for (const auto& w : opts.witnesses) candidates.push_back(&w);
  bool first_cand = true;
  for (const SetFn<Rational>* cand : candidates) {
    Rational v = EvaluatePlan(plan, options, *cand, gamma, ec);
    if (first_cand || v > out.lower) {
      out.lower = std::move(v);
      out.worst_case = *cand;
      first_cand = false;
    }
  }
  if (first_cand) out.lower = Rational(0);

  out.exact = (out.lower == out.upper);
  out.value = out.upper;
  return out;
}

}  // namespace

std::vector<MmExpr> ClusteredMmTerms(const Hypergraph& h,
                                     const EmmOptions& emm,
                                     ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  std::vector<VarSet> blocks;
  for (VarSet x : Subsets(h.vertices())) {
    if (x.empty() || x == h.vertices()) continue;
    blocks.push_back(x);
  }
  // Fan the subset sweep; merging into one ordered set is commutative, so
  // the term list is identical at any thread count.
  std::set<MmExpr> terms;
  std::mutex mu;
  ParallelFor(
      ec, FaultSite::kLp, static_cast<int64_t>(blocks.size()),
      [&](int64_t lo, int64_t hi) {
        std::set<MmExpr> local;
        for (int64_t i = lo; i < hi; ++i) {
          for (const MmExpr& e : EnumerateMmOptions(h, blocks[i], emm)) {
            local.insert(e.WidthCanonical());
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        terms.merge(local);
      },
      /*grain=*/4);
  return std::vector<MmExpr>(terms.begin(), terms.end());
}

Rational GveoCostOn(const Hypergraph& h, const Gveo& gveo,
                    const SetFn<Rational>& hfn, const Rational& omega,
                    const EmmOptions& emm) {
  const Rational gamma = omega - Rational(2);
  Rational worst(0);
  for (const EliminationStep& step : EliminationSequence(h, gveo)) {
    if (!step.required || step.u.empty()) continue;
    Rational cost = hfn[step.u];
    bool defined = false;
    Rational via_mm =
        EvaluateEmm(step.before, step.block, hfn, gamma, &defined, emm);
    if (defined) cost = Rational::Min(cost, via_mm);
    worst = Rational::Max(worst, cost);
  }
  return worst;
}

Rational WidthAt(const Hypergraph& h, const SetFn<Rational>& hfn,
                 const Rational& omega, const OmegaSubwOptions& opts,
                 ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  const StepPlan plan = BuildStepPlan(h, opts, ec);
  const auto options = SiteOptions(plan, opts.emm, ec);
  return EvaluatePlan(plan, options, hfn, omega - Rational(2), ec);
}

OmegaSubwResult OmegaSubwClustered(const Hypergraph& h, const Rational& omega,
                                   const OmegaSubwOptions& opts,
                                   ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  const int64_t t0 = NowNs();
  FMMSW_CHECK(h.IsClustered());
  OmegaSubwResult out;
  out.used_clustered_form = true;
  std::vector<MmExpr> terms = ClusteredMmTerms(h, opts.emm, &ec);
  out.num_mm_terms = static_cast<int>(terms.size());

  MaxMinSolver solver(h, &ec);
  solver.SetWarmStart(opts.warm_start);
  solver.SetMaxPivots(opts.max_pivots);
  PopulateSolver(&solver, h.vertices(), terms, omega - Rational(2));
  if (opts.full_enumeration) {
    solver.FullEnumerate();
  } else {
    solver.CoordinateAscent();
    solver.BranchAndBound();
  }
  out.value = solver.SolveExact(&out.worst_case);
  out.lower = out.upper = out.value;
  out.exact = true;
  RecordSolverStats(solver, &out);
  out.plan_ns = NowNs() - t0;
  Bump(ec.stats().plan_ns, out.plan_ns);
  return out;
}

namespace {

/// Shape equality up to edge order (factories are canonical up to the
/// order AddEdge was called in).
bool SameShape(const Hypergraph& a, const Hypergraph& b) {
  if (a.vertices() != b.vertices()) return false;
  std::vector<VarSet> ea = a.edges();
  std::vector<VarSet> eb = b.edges();
  if (ea.size() != eb.size()) return false;
  std::sort(ea.begin(), ea.end());
  std::sort(eb.begin(), eb.end());
  return ea == eb;
}

/// The proven Appendix-C closed form for `h`, if it is one of the
/// canonical shapes (see OmegaSubwOptions::recover_pivot_limit). The
/// returned result is exact in value but witness-free.
bool ClosedFormWidth(const Hypergraph& h, const Rational& omega,
                     OmegaSubwResult* out) {
  const int n = h.vertices().size();
  Rational value;
  if (SameShape(h, Hypergraph::Triangle())) {
    value = closed_forms::OmegaSubwTriangle(omega);
  } else if (n >= 4 && SameShape(h, Hypergraph::Clique(n))) {
    value = n == 4   ? closed_forms::OmegaSubwClique4(omega)
            : n == 5 ? closed_forms::OmegaSubwClique5(omega)
                     : closed_forms::OmegaSubwClique(n, omega);
  } else if (n == 4 && SameShape(h, Hypergraph::Cycle(4))) {
    value = closed_forms::OmegaSubwCycle4(omega);
  } else if (SameShape(h, Hypergraph::Pyramid(3))) {
    value = closed_forms::OmegaSubwPyramid3(omega);
  } else {
    return false;
  }
  OmegaSubwResult r;
  r.lower = r.upper = r.value = value;
  r.exact = true;
  r.degraded_closed_form = true;
  *out = r;
  return true;
}

}  // namespace

OmegaSubwResult OmegaSubw(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  std::string key;
  if (opts.use_width_cache) {
    key = WidthCacheKey(h, omega, opts);
    OmegaSubwResult cached;
    if (WidthCache::Global().Lookup(key, &cached)) {
      Bump(ec.stats().width_cache_hits);
      cached.from_cache = true;
      return cached;
    }
  }

  OmegaSubwResult out;
  const int64_t t0 = NowNs();
  try {
    if (h.IsClustered()) {
      out = OmegaSubwClustered(h, omega, opts, &ec);
    } else {
      out = OmegaSubwGeneral(h, omega, opts, ec);
      out.plan_ns = NowNs() - t0;
      Bump(ec.stats().plan_ns, out.plan_ns);
    }
  } catch (const QueryAbort& e) {
    // Pivot-limit recovery to closed-form bounds: only *capacity* caps
    // are recoverable here (a fault-plan or budget abort is retryable at
    // the recovery-ladder layer, not by swapping in a closed form), and
    // the degraded result is never inserted into the WidthCache — a later
    // clean solve must miss and compute the full certified result.
    OmegaSubwResult degraded;
    if (!opts.recover_pivot_limit ||
        e.status() != ExecStatus::kCapacityExceeded ||
        !ClosedFormWidth(h, omega, &degraded)) {
      throw;
    }
    degraded.plan_ns = NowNs() - t0;
    Bump(ec.stats().plan_ns, degraded.plan_ns);
    Bump(ec.stats().degraded_runs);
    return degraded;
  }
  if (opts.use_width_cache) {
    const size_t evicted = WidthCache::Global().Insert(key, out);
    if (evicted > 0) {
      Bump(ec.stats().width_cache_evictions, static_cast<int64_t>(evicted));
    }
  }
  return out;
}

}  // namespace fmmsw
