#include "width/emm.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace fmmsw {

std::vector<MmExpr> EnumerateMmOptions(const Hypergraph& h, VarSet x,
                                       const EmmOptions& opts) {
  std::vector<VarSet> incident;
  for (int idx : h.IncidentEdges(x)) incident.push_back(h.edges()[idx]);
  if (static_cast<int>(incident.size()) > opts.max_incident_edges) {
    // Fall back to the subsumption-reduced edge list. Every cover of the
    // reduced list is a valid cover of the full list (assign each subsumed
    // edge wherever a subsumer went), so the options remain sound; a few
    // exotic options that place a subsumed edge on the opposite side of its
    // subsumer may be skipped.
    const Hypergraph slim = h.WithoutSubsumedEdges();
    incident.clear();
    for (int idx : slim.IncidentEdges(x)) {
      incident.push_back(slim.edges()[idx]);
    }
  }
  const int m = static_cast<int>(incident.size());
  if (m == 0) return {};
  FMMSW_CHECK(m <= opts.max_incident_edges &&
              "EMM enumeration too large; raise EmmOptions::max_incident_edges");

  std::set<std::pair<uint32_t, uint32_t>> seen_ab;
  std::set<MmExpr> out;
  // Each incident edge goes to A only (0), B only (1), or both (2).
  std::vector<int> assign(m, 0);
  int64_t total = 1;
  for (int i = 0; i < m; ++i) total *= 3;
  for (int64_t code = 0; code < total; ++code) {
    int64_t c = code;
    VarSet va, vb;
    for (int i = 0; i < m; ++i) {
      const int a = static_cast<int>(c % 3);
      c /= 3;
      if (a == 0 || a == 2) va = va | incident[i];
      if (a == 1 || a == 2) vb = vb | incident[i];
    }
    // X must be a shared dimension of the two matrices.
    if (!va.ContainsAll(x) || !vb.ContainsAll(x)) continue;
    // Distinct covers can induce the same vertex pair; dedupe (unordered).
    uint32_t lo = std::min(va.mask(), vb.mask());
    uint32_t hi = std::max(va.mask(), vb.mask());
    if (!seen_ab.insert({lo, hi}).second) continue;

    const VarSet g_base = va.Intersect(vb) - x;
    const VarSet g_room = (va | vb) - x - g_base;
    for (VarSet extra : Subsets(g_room)) {
      const VarSet g = g_base | extra;
      MmExpr e;
      e.x = (va - vb) - g;
      e.y = (vb - va) - g;
      e.z = x;
      e.g = g;
      if (e.x.empty() || e.y.empty()) continue;  // trivial combination
      out.insert(e.Canonical());
    }
  }
  return std::vector<MmExpr>(out.begin(), out.end());
}

Rational EvaluateEmm(const Hypergraph& h, VarSet x, const SetFn<Rational>& hfn,
                     const Rational& gamma, bool* defined,
                     const EmmOptions& opts) {
  auto options = EnumerateMmOptions(h, x, opts);
  if (options.empty()) {
    *defined = false;
    return Rational(0);
  }
  *defined = true;
  Rational best;
  bool first = true;
  for (const MmExpr& e : options) {
    Rational v = e.Evaluate(hfn, gamma);
    if (first || v < best) {
      best = v;
      first = false;
    }
  }
  return best;
}

}  // namespace fmmsw
