#ifndef FMMSW_WIDTH_OMEGA_SUBW_H_
#define FMMSW_WIDTH_OMEGA_SUBW_H_

/// \file
/// The w-submodular width (Definition 4.7) and the Section-6 algorithm for
/// computing it.
///
/// The computation distributes the min over the max in Eq. (27), yielding
/// one LP per selection of an MM branch for every MM term (Eq. 33/34).
/// We solve the resulting LP family three ways:
///   - full enumeration (the paper's "mechanical algorithm", Example D.1:
///     3^10 = 59049 LPs for the 4-clique);
///   - branch-and-bound over branch selections with a coordinate-ascent
///     warm start (orders of magnitude fewer LPs, same value);
///   - exact re-solve of the winning selection over rationals.
///
/// For *clustered* hypergraphs (Definition C.11; cliques, pyramids) the
/// first elimination dominates (Proposition 4.11 / Eq. 40) and the result
/// is exact. For general hypergraphs the routine reports certified
/// [lower, upper] bounds: the upper bound is min over GVEOs of the per-plan
/// max (max-min <= min-max), the lower bound is the best width attained by
/// a concrete polymatroid (LP argmaxes and user witnesses) evaluated
/// against *all* GVEOs.
///
/// The search is phase-structured so it parallelizes deterministically over
/// an ExecContext's thread pool: (1) all GVEO elimination walks fan out and
/// their per-step digests merge serially in GVEO order into a
/// first-occurrence list of *distinct* steps; (2) every distinct step's MM
/// options enumerate, and its max-min LP tower solves, into its own result
/// slot (each step owns a private warm-start chain); (3) the min/max
/// reductions over GVEOs run serially over the slots. The result — values,
/// bounds, witness, and lps_solved — is therefore exactly identical at
/// every thread count, including 1.

#include <cstdint>
#include <vector>

#include "entropy/polymatroid.h"
#include "hypergraph/decomposition.h"
#include "hypergraph/hypergraph.h"
#include "util/rational.h"
#include "width/emm.h"
#include "width/mm_expr.h"

namespace fmmsw {

class ExecContext;

struct OmegaSubwOptions {
  /// Enumerate all 3^J selections instead of branch-and-bound (Example D.1
  /// reproduction; exponential, use only for small J).
  bool full_enumeration = false;
  /// Safety cap on the GVEO enumeration (CHECK on overflow).
  int gveo_cap = 1000000;
  EmmOptions emm;
  /// Extra lower-bound candidate polymatroids (e.g. the Appendix C
  /// witnesses); each must be a valid edge-dominated polymatroid.
  std::vector<SetFn<Rational>> witnesses;
  /// Chain LP warm starts across the selection towers (see MaxMinSolver).
  /// Off, every LP cold-starts; values and witnesses are identical either
  /// way (the simplex canonicalizes its optima) — tests prove it.
  bool warm_start = true;
  /// Consult/populate the process-wide WidthCache (width_cache.h). A hit
  /// returns the stored result with from_cache = true.
  bool use_width_cache = true;
  /// Relation-version digest mixed into the WidthCache key. Width values
  /// depend only on the hypergraph shape, so 0 (shape-only keying) is
  /// always sound for correctness of the widths themselves; the catalog
  /// service layer (core/database.h PlanWidths) sets the snapshot's
  /// binding digest so cached plans are version-aware — a commit to any
  /// bound relation misses the cache by construction.
  uint64_t stats_digest = 0;
  /// Per-LP pivot budget; exceeding it raises QueryAbort(kCapacityExceeded).
  int max_pivots = 200000;
  /// Recovery-plane degradation (core/recovery.h): when the pivot budget
  /// (or another capacity cap) aborts the LP machinery and the query is
  /// one of the canonical shapes with a proven Appendix-C closed form
  /// (triangle, k-clique, 4-cycle, 3-pyramid), return that closed-form
  /// value — flagged degraded_closed_form, never inserted into the
  /// WidthCache, and without a witness polymatroid — instead of
  /// rethrowing. Off by default: unrecovered pivot exhaustion stays a
  /// catchable QueryAbort(kCapacityExceeded).
  bool recover_pivot_limit = false;
};

struct OmegaSubwResult {
  /// Certified bounds: lower <= w-subw(H) <= upper. When exact, both equal
  /// `value`.
  Rational lower;
  Rational upper;
  bool exact = false;
  Rational value;  ///< == upper == lower when exact; else == upper.

  /// A polymatroid attaining `lower`.
  SetFn<Rational> worst_case;
  long lps_solved = 0;
  long lp_warm_starts = 0;  ///< LPs that replayed a previous basis
  long lp_pivots = 0;       ///< total simplex pivots across all LPs
  int64_t plan_ns = 0;      ///< wall time of the width computation
  /// Number of MM terms in the clustered-form min (Example D.1: 10).
  int num_mm_terms = 0;
  bool used_clustered_form = false;
  /// True when served from the WidthCache; the counters above then report
  /// the original (cached) computation.
  bool from_cache = false;
  /// True when the LP solve aborted on a capacity cap and the value came
  /// from the closed-form fallback (opts.recover_pivot_limit). The result
  /// carries no worst_case witness and is never cached.
  bool degraded_closed_form = false;
};

/// The inner cost of Definition 4.7 for one GVEO on a concrete polymatroid:
/// max over Proposition-4.11-required steps of min(h(U_i), EMM_i).
Rational GveoCostOn(const Hypergraph& h, const Gveo& gveo,
                    const SetFn<Rational>& hfn, const Rational& omega,
                    const EmmOptions& emm = {});

/// The width attained by a concrete polymatroid: min over *all* GVEOs of
/// GveoCostOn. This is a certified lower bound on w-subw(H) whenever hfn is
/// a valid edge-dominated polymatroid. Fans the GVEO evaluations across
/// `ctx`'s pool (Default() when null); the exact Rational result is
/// identical at every thread count.
Rational WidthAt(const Hypergraph& h, const SetFn<Rational>& hfn,
                 const Rational& omega, const OmegaSubwOptions& opts = {},
                 ExecContext* ctx = nullptr);

/// w-subw for clustered hypergraphs, exact (Eq. 40).
OmegaSubwResult OmegaSubwClustered(const Hypergraph& h, const Rational& omega,
                                   const OmegaSubwOptions& opts = {},
                                   ExecContext* ctx = nullptr);

/// General entry point: dispatches to the clustered form when applicable,
/// otherwise computes certified bounds. Consults the process-wide
/// WidthCache first (opts.use_width_cache).
OmegaSubwResult OmegaSubw(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts = {},
                          ExecContext* ctx = nullptr);

/// The full clustered-form term list (h(V) is implicit): all distinct MM
/// options over all first elimination blocks, computed by fanning the
/// subset sweep across `ctx`'s pool (result independent of thread count).
/// Exposed for tests (the 4-clique must yield exactly the 10 terms of
/// Eq. 28) and for the Example-D.1 bench.
std::vector<MmExpr> ClusteredMmTerms(const Hypergraph& h,
                                     const EmmOptions& emm = {},
                                     ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_OMEGA_SUBW_H_
