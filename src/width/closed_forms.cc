#include "width/closed_forms.h"

#include "util/check.h"

namespace fmmsw {
namespace closed_forms {

Rational OmegaSquare(const Rational& a, const Rational& b, const Rational& c,
                     const Rational& omega) {
  const Rational d = Rational::Min(a, Rational::Min(b, c));
  return a + b + c - (Rational(3) - omega) * d;
}

Rational SubwTriangle() { return Rational(3, 2); }

Rational SubwClique(int k) {
  FMMSW_CHECK(k >= 3);
  return Rational(k, 2);
}

Rational SubwCycle(int k) {
  FMMSW_CHECK(k >= 4);
  const int64_t half_up = (k + 1) / 2;
  return Rational(2) - Rational(1, half_up);
}

Rational SubwPyramid(int k) {
  FMMSW_CHECK(k >= 3);
  return Rational(2) - Rational(1, k);
}

Rational SubwLemmaC15() { return Rational(9, 5); }

Rational OmegaSubwTriangle(const Rational& omega) {
  return Rational(2) * omega / (omega + Rational(1));
}

Rational OmegaSubwClique4(const Rational& omega) {
  return (omega + Rational(1)) / Rational(2);
}

Rational OmegaSubwClique5(const Rational& omega) {
  return omega / Rational(2) + Rational(1);
}

Rational OmegaSubwClique(int k, const Rational& omega) {
  FMMSW_CHECK(k >= 3);
  if (k == 3) return OmegaSubwTriangle(omega);
  if (k == 4) return OmegaSubwClique4(omega);
  if (k == 5) return OmegaSubwClique5(omega);
  const int64_t a = (k + 2) / 3;  // ceil(k/3)
  const int64_t b = (k + 1) / 3;  // ceil((k-1)/3)
  const int64_t c = k / 3;        // floor(k/3)
  return Rational(a, 2) + Rational(b, 2) +
         Rational(c, 2) * (omega - Rational(2));
}

Rational OmegaSubwCycle4(const Rational& omega) {
  const Rational w = Rational::Min(omega, Rational(5, 2));
  return Rational(2) - Rational(3) / (Rational(2) * w + Rational(1));
}

Rational OmegaSubwPyramid3(const Rational& omega) {
  return Rational(2) - Rational(1) / omega;
}

Rational OmegaSubwPyramidUpper(int k, const Rational& omega) {
  FMMSW_CHECK(k >= 3);
  return Rational(2) -
         Rational(2) / (omega * Rational(k - 1) - Rational(k) + Rational(3));
}

Rational OmegaSubwLemmaC15Upper(const Rational& omega) {
  return Rational(2) -
         Rational(1) / (Rational(2) * (omega - Rational(2)) + Rational(3));
}

Rational PriorClique(int k, const Rational& omega) {
  FMMSW_CHECK(k >= 6);
  return OmegaSquare(Rational((k + 2) / 3, 2), Rational((k + 1) / 3, 2),
                     Rational(k / 3, 2), omega);
}

Rational PriorCycle4(const Rational& omega) {
  return (Rational(4) * omega - Rational(1)) /
         (Rational(2) * omega + Rational(1));
}

Rational PriorPyramid(int k) { return SubwPyramid(k); }

}  // namespace closed_forms
}  // namespace fmmsw
