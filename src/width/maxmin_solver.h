#ifndef FMMSW_WIDTH_MAXMIN_SOLVER_H_
#define FMMSW_WIDTH_MAXMIN_SOLVER_H_

/// \file
/// The common optimization core of the width calculators:
///
///   max over h in Gamma cap ED of  min over terms of
///       (max over the term's alternatives of a linear function of h).
///
/// Distributing the min over the max turns this into one LP per selection
/// of an alternative for every term (paper Section 6 / Appendix A.4). This
/// solver explores the selection space three ways:
///   - FullEnumerate: all prod |alternatives| leaf LPs (the paper's
///     "mechanical algorithm"; Example D.1's 3^10 = 59049 LPs);
///   - CoordinateAscent: re-select each term's argmax alternative at the
///     current LP optimum; monotone, converges to a strong incumbent;
///   - BranchAndBound: exact, with partial-selection LPs as upper bounds
///     and most-binding-term branching.
/// The winning selection is re-solved over exact rationals.
///
/// Every LP in the tower shares one constraint matrix: the polymatroid
/// cone + edge domination + a "t <= h(V)" bounding row + one row per term.
/// The solver builds that model once and rewrites only the term rows
/// between solves (a deselected term's row relaxes to "t <= 2^10", far
/// above any attainable optimum), which keeps the tableau shape constant
/// so successive solves chain a WarmStart: each solve replays the
/// previous optimal basis. The basis of the incumbent (best) selection is
/// kept separately and seeds the exact Rational re-solve — basis indices
/// are scalar-type independent. All solves run with
/// SimplexOptions::lex_canonical, so extracted polymatroids are the
/// unique lexicographically-minimal optima: witnesses do not depend on
/// whether a solve was cold or warm-started.
///
/// subw instantiates terms = tree decompositions (alternatives = bags);
/// w-subw instantiates terms = MM expressions (alternatives = the three
/// gamma-rotations of Eq. 21) plus single-alternative h(U) caps.

#include <memory>
#include <vector>

#include "entropy/polymatroid.h"
#include "hypergraph/hypergraph.h"
#include "lp/simplex.h"
#include "util/rational.h"
#include "width/mm_expr.h"

namespace fmmsw {

class ExecContext;

class MaxMinSolver {
 public:
  /// `orig` supplies the polymatroid cone and edge-domination constraints.
  /// `ctx` (optional) supplies the guardrail polled before every LP solve
  /// and the ExecStats planner counters (lp_solves, lp_warm_starts,
  /// lp_pivots).
  explicit MaxMinSolver(const Hypergraph& orig, ExecContext* ctx = nullptr)
      : orig_(orig), ctx_(ctx) {}

  /// Adds a term: the inner min ranges over terms, each term contributing
  /// max over its alternatives. Alternatives must be non-empty. All terms
  /// must be added before the first solve (the shared LP model freezes).
  void AddTerm(std::vector<LinComb> alternatives);

  /// Convenience: a single-alternative term "t <= h(s)".
  void AddCapTerm(VarSet s);

  /// Disables (or re-enables) warm-start chaining; every LP then cold
  /// starts from the all-slack basis. Values and witnesses are unchanged
  /// either way (witnesses are lex-canonical); tests use this to prove it.
  void SetWarmStart(bool enabled) { warm_enabled_ = enabled; }

  /// Pivot budget per LP; exceeding it throws a kCapacityExceeded
  /// QueryAbort instead of aborting the process.
  void SetMaxPivots(int max_pivots) { max_pivots_ = max_pivots; }

  int num_terms() const { return static_cast<int>(terms_.size()); }
  long lps_solved() const { return lps_; }
  long lp_warm_starts() const { return warm_starts_; }
  long lp_pivots() const { return pivots_; }
  const std::vector<int>& best_selection() const { return best_sel_; }

  /// Enumerates every selection; returns the best double value.
  double FullEnumerate();

  /// Coordinate ascent from the unconstrained optimum.
  double CoordinateAscent();

  /// Exact search seeded with the current best selection (call
  /// CoordinateAscent first). Returns the best double value.
  double BranchAndBound();

  /// Re-solves the given (or best) selection exactly.
  Rational SolveExact(SetFn<Rational>* h_out);
  Rational SolveExactSelection(const std::vector<int>& sel,
                               SetFn<Rational>* h_out);

 private:
  /// The persistent selection LP for one scalar type: the polymatroid
  /// base model plus one rewritable row per term.
  template <typename S>
  struct SelModel {
    std::unique_ptr<PolymatroidLp<S>> lp;
    int t = -1;              ///< the objective variable
    int first_term_row = 0;  ///< index of terms_[0]'s row in the model
  };

  template <typename S>
  void EnsureModel(SelModel<S>* m);
  template <typename S>
  void ApplySelection(SelModel<S>* m, const std::vector<int>& sel);
  template <typename S>
  LpResult<S> RunLp(SelModel<S>* m, const std::vector<int>& sel,
                    WarmStart* warm, bool canonical);

  std::vector<int> InitialSelection() const;
  double SolveDouble(const std::vector<int>& sel, SetFn<double>* h_out);
  int ArgmaxAlternative(int term, const SetFn<double>& h) const;
  double AlternativeValue(int term, int alt, const SetFn<double>& h) const;
  void Recurse(std::vector<int>* sel);
  /// Records an improving incumbent (selection + its basis, which later
  /// seeds the exact re-solve).
  void NoteIncumbent(double v, const std::vector<int>& sel);

  static constexpr double kPruneTol = 1e-7;
  /// Rhs of a deselected term row "t <= kInactiveRhs". Any power of two
  /// comfortably above max h(V) <= |edges| works (exact in double).
  static constexpr int kInactiveRhs = 1 << 10;

  const Hypergraph& orig_;
  ExecContext* ctx_;
  std::vector<std::vector<LinComb>> terms_;
  SelModel<double> dmodel_;
  SelModel<Rational> emodel_;
  WarmStart warm_d_;     ///< chains across the double LP tower
  WarmStart warm_best_;  ///< basis of the incumbent; seeds the exact solve
  bool warm_enabled_ = true;
  int max_pivots_ = 200000;
  double best_ = -1e300;
  std::vector<int> best_sel_;
  long lps_ = 0;
  long warm_starts_ = 0;
  long pivots_ = 0;
};

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_MAXMIN_SOLVER_H_
