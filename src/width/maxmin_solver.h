#ifndef FMMSW_WIDTH_MAXMIN_SOLVER_H_
#define FMMSW_WIDTH_MAXMIN_SOLVER_H_

/// \file
/// The common optimization core of the width calculators:
///
///   max over h in Gamma cap ED of  min over terms of
///       (max over the term's alternatives of a linear function of h).
///
/// Distributing the min over the max turns this into one LP per selection
/// of an alternative for every term (paper Section 6 / Appendix A.4). This
/// solver explores the selection space three ways:
///   - FullEnumerate: all prod |alternatives| leaf LPs (the paper's
///     "mechanical algorithm"; Example D.1's 3^10 = 59049 LPs);
///   - CoordinateAscent: re-select each term's argmax alternative at the
///     current LP optimum; monotone, converges to a strong incumbent;
///   - BranchAndBound: exact, with partial-selection LPs as upper bounds
///     and most-binding-term branching.
/// The winning selection is re-solved over exact rationals.
///
/// subw instantiates terms = tree decompositions (alternatives = bags);
/// w-subw instantiates terms = MM expressions (alternatives = the three
/// gamma-rotations of Eq. 21) plus single-alternative h(U) caps.

#include <vector>

#include "entropy/polymatroid.h"
#include "hypergraph/hypergraph.h"
#include "util/rational.h"
#include "width/mm_expr.h"

namespace fmmsw {

class MaxMinSolver {
 public:
  /// `orig` supplies the polymatroid cone and edge-domination constraints.
  explicit MaxMinSolver(const Hypergraph& orig) : orig_(orig) {}

  /// Adds a term: the inner min ranges over terms, each term contributing
  /// max over its alternatives. Alternatives must be non-empty.
  void AddTerm(std::vector<LinComb> alternatives);

  /// Convenience: a single-alternative term "t <= h(s)".
  void AddCapTerm(VarSet s);

  int num_terms() const { return static_cast<int>(terms_.size()); }
  long lps_solved() const { return lps_; }
  const std::vector<int>& best_selection() const { return best_sel_; }

  /// Enumerates every selection; returns the best double value.
  double FullEnumerate();

  /// Coordinate ascent from the unconstrained optimum.
  double CoordinateAscent();

  /// Exact search seeded with the current best selection (call
  /// CoordinateAscent first). Returns the best double value.
  double BranchAndBound();

  /// Re-solves the given (or best) selection exactly.
  Rational SolveExact(SetFn<Rational>* h_out);
  Rational SolveExactSelection(const std::vector<int>& sel,
                               SetFn<Rational>* h_out);

 private:
  std::vector<int> InitialSelection() const;
  double SolveDouble(const std::vector<int>& sel, SetFn<double>* h_out);
  int ArgmaxAlternative(int term, const SetFn<double>& h) const;
  double AlternativeValue(int term, int alt, const SetFn<double>& h) const;
  void Recurse(std::vector<int>* sel);

  static constexpr double kPruneTol = 1e-7;

  const Hypergraph& orig_;
  std::vector<std::vector<LinComb>> terms_;
  double best_ = -1e300;
  std::vector<int> best_sel_;
  long lps_ = 0;
};

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_MAXMIN_SOLVER_H_
