#ifndef FMMSW_WIDTH_WIDTH_CACHE_H_
#define FMMSW_WIDTH_WIDTH_CACHE_H_

/// \file
/// A process-wide cache of w-subw results keyed by a canonical hypergraph
/// digest. Width computations depend only on the hypergraph's edge
/// *multiset* (as vertex masks), omega, and the solver options, so repeated
/// plans over the same query shape — the common case for a planner serving
/// a workload — skip the whole LP tower.
///
/// The key is a canonical string: the sorted edge masks and every
/// result-affecting option are spelled out in full (plus a 128-bit
/// multiset hash as a cheap prefix), so two distinct inputs can never
/// collide. Lookup/Insert are mutex-protected; the stored results are
/// returned by value.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "util/thread_safety.h"
#include "width/omega_subw.h"

namespace fmmsw {

/// The canonical cache key for OmegaSubw(h, omega, opts). Includes every
/// option that affects the result's value *or* its reported counters
/// (full_enumeration changes lps_solved; warm_start changes lp_pivots).
std::string WidthCacheKey(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts);

/// Thread-safe: every member is mutex-protected (clang -Wthread-safety
/// verifies the discipline via the annotations below). Concurrent
/// Lookup/Insert of the same key are benign — both compute, one wins the
/// emplace, the results are identical by the determinism contract.
class WidthCache {
 public:
  static WidthCache& Global();

  /// Returns true and copies the stored result on a hit (bumping hits()).
  bool Lookup(const std::string& key, OmegaSubwResult* out)
      FMMSW_EXCLUDES(mu_);
  void Insert(const std::string& key, const OmegaSubwResult& result)
      FMMSW_EXCLUDES(mu_);
  void Clear() FMMSW_EXCLUDES(mu_);

  size_t size() const FMMSW_EXCLUDES(mu_);
  int64_t hits() const FMMSW_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, OmegaSubwResult> map_ FMMSW_GUARDED_BY(mu_);
  int64_t hits_ FMMSW_GUARDED_BY(mu_) = 0;
};

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_WIDTH_CACHE_H_
