#ifndef FMMSW_WIDTH_WIDTH_CACHE_H_
#define FMMSW_WIDTH_WIDTH_CACHE_H_

/// \file
/// A process-wide cache of w-subw results keyed by a canonical hypergraph
/// digest. Width computations depend only on the hypergraph's edge
/// *multiset* (as vertex masks), omega, and the solver options, so repeated
/// plans over the same query shape — the common case for a planner serving
/// a workload — skip the whole LP tower.
///
/// The key is a canonical string: the sorted edge masks and every
/// result-affecting option are spelled out in full (plus a 128-bit
/// multiset hash as a cheap prefix), so two distinct inputs can never
/// collide. When the planner runs against a catalog snapshot
/// (core/database.h), the snapshot's relation-version digest
/// (OmegaSubwOptions::stats_digest) is part of the key, so a commit can
/// never serve a stale cached plan to a new query.
///
/// The cache is bounded: entries evict least-recently-used once `size()`
/// would pass `capacity()` (default kDefaultCapacity, overridable via
/// FMMSW_WIDTH_CACHE_CAP for the process-wide instance or SetCapacity
/// in tests), so a service-layer stream of millions of distinct query
/// shapes cannot grow it without limit. Evictions are reported by
/// Insert's return value and land in the `width_cache_evictions`
/// ExecStats counter at the planner call site. Lookup/Insert are
/// mutex-protected; the stored results are returned by value.

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "util/thread_safety.h"
#include "width/omega_subw.h"

namespace fmmsw {

/// The canonical cache key for OmegaSubw(h, omega, opts). Includes every
/// option that affects the result's value *or* its reported counters
/// (full_enumeration changes lps_solved; warm_start changes lp_pivots),
/// plus the relation-version digest when planning against a snapshot.
std::string WidthCacheKey(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts);

/// Thread-safe: every member is mutex-protected (clang -Wthread-safety
/// verifies the discipline via the annotations below). Concurrent
/// Lookup/Insert of the same key are benign — both compute, one wins the
/// insert, the results are identical by the determinism contract.
class WidthCache {
 public:
  /// Default entry cap: generous for any test/bench workload while
  /// keeping worst-case retained results bounded.
  static constexpr size_t kDefaultCapacity = 1024;

  explicit WidthCache(size_t capacity = kDefaultCapacity);

  /// Process-wide instance; capacity from FMMSW_WIDTH_CACHE_CAP (read
  /// once at first use; invalid or missing -> kDefaultCapacity).
  static WidthCache& Global();

  /// Returns true and copies the stored result on a hit (bumping hits()
  /// and refreshing the entry's LRU position).
  bool Lookup(const std::string& key, OmegaSubwResult* out)
      FMMSW_EXCLUDES(mu_);
  /// Inserts (or refreshes the recency of) `key`; returns the number of
  /// entries evicted to stay within capacity (0 or 1) so the caller can
  /// bump the context's width_cache_evictions counter.
  size_t Insert(const std::string& key, const OmegaSubwResult& result)
      FMMSW_EXCLUDES(mu_);
  void Clear() FMMSW_EXCLUDES(mu_);

  /// Rebounds the cache, evicting LRU entries down to `capacity`
  /// immediately (capacity 0 means "hold nothing"). Test hook.
  size_t SetCapacity(size_t capacity) FMMSW_EXCLUDES(mu_);

  size_t size() const FMMSW_EXCLUDES(mu_);
  size_t capacity() const FMMSW_EXCLUDES(mu_);
  int64_t hits() const FMMSW_EXCLUDES(mu_);
  int64_t evictions() const FMMSW_EXCLUDES(mu_);

 private:
  struct Entry {
    OmegaSubwResult result;
    /// Position in lru_ (front = most recent) for O(1) refresh.
    std::list<std::string>::iterator lru_it;
  };

  /// Pops the least-recently-used entry; mu_ must be held.
  void EvictOne() FMMSW_REQUIRES(mu_);

  mutable Mutex mu_;
  size_t capacity_ FMMSW_GUARDED_BY(mu_);
  std::list<std::string> lru_ FMMSW_GUARDED_BY(mu_);
  std::unordered_map<std::string, Entry> map_ FMMSW_GUARDED_BY(mu_);
  int64_t hits_ FMMSW_GUARDED_BY(mu_) = 0;
  int64_t evictions_ FMMSW_GUARDED_BY(mu_) = 0;
};

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_WIDTH_CACHE_H_
