#include "width/subw.h"

#include "lp/simplex.h"
#include "util/check.h"
#include "width/maxmin_solver.h"

namespace fmmsw {

Rational FractionalEdgeCover(const Hypergraph& h, VarSet target) {
  FMMSW_CHECK(!target.empty());
  LpModel<Rational> m;
  m.maximize = false;
  std::vector<int> weight_var;
  for (size_t e = 0; e < h.edges().size(); ++e) {
    int v = m.AddVar();
    weight_var.push_back(v);
    m.AddObjective(v, Rational(1));
  }
  for (int vert : target.Members()) {
    auto& row = m.AddRow(Sense::kGe, Rational(1), "cover");
    for (size_t e = 0; e < h.edges().size(); ++e) {
      if (h.edges()[e].Contains(vert)) {
        row.coeffs.emplace_back(weight_var[e], Rational(1));
      }
    }
    FMMSW_CHECK(!row.coeffs.empty() && "vertex not covered by any edge");
  }
  auto res = SolveSimplex(m);
  FMMSW_CHECK(res.status == LpStatus::kOptimal);
  return res.objective;
}

Rational RhoStar(const Hypergraph& h) {
  return FractionalEdgeCover(h, h.vertices());
}

Rational Fhtw(const Hypergraph& h) {
  auto tds = EnumerateTds(h);
  FMMSW_CHECK(!tds.empty());
  bool first_td = true;
  Rational best;
  for (const auto& td : tds) {
    Rational width(0);
    for (const VarSet& bag : td.bags) {
      width = Rational::Max(width, FractionalEdgeCover(h, bag));
    }
    if (first_td || width < best) {
      best = width;
      first_td = false;
    }
  }
  return best;
}

SubwResult SubmodularWidth(const Hypergraph& h) {
  SubwResult out;
  out.tds = EnumerateTds(h);
  FMMSW_CHECK(!out.tds.empty());

  // One term per TD; the term's alternatives are its bags, matching
  //   subw = max_h min_TD max_bag h(bag)           (Eq. 19)
  // distributed into one LP per bag selection (Eq. 37/39), searched with
  // branch-and-bound instead of full tuple enumeration.
  MaxMinSolver solver(h);
  for (const auto& td : out.tds) {
    std::vector<LinComb> alternatives;
    for (const VarSet& bag : td.bags) {
      alternatives.push_back(LinComb{LinTerm{bag, Rational(1)}});
    }
    solver.AddTerm(std::move(alternatives));
  }
  solver.CoordinateAscent();
  solver.BranchAndBound();
  out.value = solver.SolveExact(&out.worst_case);
  out.lps_solved = static_cast<int>(solver.lps_solved());
  return out;
}

}  // namespace fmmsw
