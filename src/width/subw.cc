#include "width/subw.h"

#include <chrono>

#include "core/exec_context.h"
#include "lp/simplex.h"
#include "util/check.h"
#include "width/maxmin_solver.h"

namespace fmmsw {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Rational FractionalEdgeCover(const Hypergraph& h, VarSet target,
                             ExecContext* ctx) {
  FMMSW_CHECK(!target.empty());
  LpModel<Rational> m;
  m.maximize = false;
  std::vector<int> weight_var;
  for (size_t e = 0; e < h.edges().size(); ++e) {
    int v = m.AddVar();
    weight_var.push_back(v);
    m.AddObjective(v, Rational(1));
  }
  for (int vert : target.Members()) {
    auto& row = m.AddRow(Sense::kGe, Rational(1), "cover");
    for (size_t e = 0; e < h.edges().size(); ++e) {
      if (h.edges()[e].Contains(vert)) {
        row.coeffs.emplace_back(weight_var[e], Rational(1));
      }
    }
    FMMSW_CHECK(!row.coeffs.empty() && "vertex not covered by any edge");
  }
  if (ctx != nullptr) ctx->guard().Poll(FaultSite::kLp);
  auto res = SolveSimplex(m);
  FMMSW_CHECK(res.status == LpStatus::kOptimal);
  if (ctx != nullptr) {
    Bump(ctx->stats().lp_solves);
    Bump(ctx->stats().lp_pivots, res.pivots);
  }
  return res.objective;
}

Rational RhoStar(const Hypergraph& h, ExecContext* ctx) {
  return FractionalEdgeCover(h, h.vertices(), ctx);
}

Rational Fhtw(const Hypergraph& h, ExecContext* ctx) {
  auto tds = EnumerateTds(h);
  FMMSW_CHECK(!tds.empty());
  bool first_td = true;
  Rational best;
  for (const auto& td : tds) {
    Rational width(0);
    for (const VarSet& bag : td.bags) {
      width = Rational::Max(width, FractionalEdgeCover(h, bag, ctx));
    }
    if (first_td || width < best) {
      best = width;
      first_td = false;
    }
  }
  return best;
}

SubwResult SubmodularWidth(const Hypergraph& h, ExecContext* ctx) {
  const int64_t t0 = NowNs();
  SubwResult out;
  out.tds = EnumerateTds(h);
  FMMSW_CHECK(!out.tds.empty());

  // One term per TD; the term's alternatives are its bags, matching
  //   subw = max_h min_TD max_bag h(bag)           (Eq. 19)
  // distributed into one LP per bag selection (Eq. 37/39), searched with
  // branch-and-bound instead of full tuple enumeration.
  MaxMinSolver solver(h, ctx);
  for (const auto& td : out.tds) {
    std::vector<LinComb> alternatives;
    for (const VarSet& bag : td.bags) {
      alternatives.push_back(LinComb{LinTerm{bag, Rational(1)}});
    }
    solver.AddTerm(std::move(alternatives));
  }
  solver.CoordinateAscent();
  solver.BranchAndBound();
  out.value = solver.SolveExact(&out.worst_case);
  out.lps_solved = static_cast<int>(solver.lps_solved());
  out.lp_warm_starts = solver.lp_warm_starts();
  out.lp_pivots = solver.lp_pivots();
  out.plan_ns = NowNs() - t0;
  if (ctx != nullptr) Bump(ctx->stats().plan_ns, out.plan_ns);
  return out;
}

}  // namespace fmmsw
