#include "width/cycle_dp.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace fmmsw {

namespace {

double OmegaSquareD(double a, double b, double c, double omega) {
  return a + b + c - (3.0 - omega) * std::min(a, std::min(b, c));
}

struct Dp {
  int k;
  double omega;
  const std::vector<double>* d;
  // memo[i][len] = P_{i, i+len}; len in [1, k-1]; -1 = unset.
  std::vector<std::vector<double>> memo;

  double dm(int i) const {  // d_i = max(d_i^-, d_i^+)
    i = ((i % k) + k) % k;
    return std::max((*d)[2 * i], (*d)[2 * i + 1]);
  }
  double dminus(int i) const {
    i = ((i % k) + k) % k;
    return (*d)[2 * i];
  }
  double dplus(int i) const {
    i = ((i % k) + k) % k;
    return (*d)[2 * i + 1];
  }

  double P(int i, int len) {
    i = ((i % k) + k) % k;
    if (len == 1) return 1.0;
    double& slot = memo[i][len];
    if (slot >= 0) return slot;
    slot = 1e18;  // break recursion cycles defensively (none expected)
    const int j = (i + len) % k;
    double best = P(i, len - 1) + dplus(j - 1 + k);
    best = std::min(best, P(i + 1, len - 1) + dminus(i + 1));
    for (int step = 1; step < len; ++step) {
      const int r = (i + step) % k;
      if (r == j || step == 0) continue;
      // Compose the two sub-path matrices by a rectangular MM. The outer
      // dimensions are the heavy endpoint classes (<= N^{1-d}); the inner
      // dimension ranges over *all* values of the split vertex r — our
      // realizable square-MM variant does not get [12]'s extra light-r
      // bookkeeping, so this is a sound upper bound that coincides with
      // the Lemma C.9/C.10 closed form at k = 4 (verified in tests).
      const double via =
          std::max(std::max(P(i, step), P(r, len - step)),
                   OmegaSquareD(1.0 - dm(i), 1.0, 1.0 - dm(j), omega));
      best = std::min(best, via);
    }
    slot = best;
    return best;
  }
};

}  // namespace

double CycleDpValue(int k, double omega, const std::vector<double>& d) {
  FMMSW_CHECK(static_cast<int>(d.size()) == 2 * k);
  Dp dp;
  dp.k = k;
  dp.omega = omega;
  dp.d = &d;
  dp.memo.assign(k, std::vector<double>(k, -1.0));
  double value = 1e18;
  for (int i = 0; i < k; ++i) value = std::min(value, 2.0 - dp.dm(i));
  for (int i = 0; i < k; ++i) {
    for (int len = 1; len < k; ++len) {
      const int j = (i + len) % k;
      if (j <= i) continue;  // consider each unordered pair once
      const double both = std::max(dp.P(i, len), dp.P(j, k - len));
      value = std::min(value, both);
    }
  }
  return value;
}

CycleCsquareResult CycleCsquare(int k, double omega, int grid) {
  FMMSW_CHECK(k >= 3 && grid >= 4);
  CycleCsquareResult out;
  const int dims = 2 * k;
  Rng rng(0xc1c1e + k);

  auto eval = [&](const std::vector<double>& d) {
    ++out.evaluations;
    return CycleDpValue(k, omega, d);
  };

  auto ascend = [&](std::vector<double> d) {
    double v = eval(d);
    bool improved = true;
    while (improved) {
      improved = false;
      for (int c = 0; c < dims; ++c) {
        const double saved = d[c];
        double best_val = v, best_x = saved;
        for (int g = 0; g <= grid; ++g) {
          const double x = static_cast<double>(g) / grid;
          if (x == saved) continue;
          d[c] = x;
          const double cand = eval(d);
          if (cand > best_val + 1e-12) {
            best_val = cand;
            best_x = x;
          }
        }
        d[c] = best_x;
        if (best_val > v + 1e-12) {
          v = best_val;
          improved = true;
        }
      }
    }
    if (v > out.value) {
      out.value = v;
      out.best_d = d;
    }
  };

  // Symmetric starts d_i^- = d_i^+ = x for x over a coarse grid.
  for (int g = 0; g <= 8; ++g) {
    ascend(std::vector<double>(dims, g / 8.0));
  }
  // Random multi-starts (snapped to the grid).
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> d(dims);
    for (double& x : d) {
      x = static_cast<double>(rng.Uniform(0, grid)) / grid;
    }
    ascend(std::move(d));
  }
  return out;
}

}  // namespace fmmsw
