#ifndef FMMSW_WIDTH_CLOSED_FORMS_H_
#define FMMSW_WIDTH_CLOSED_FORMS_H_

/// \file
/// The closed-form width values proven in Appendix C (paper Table 2) and
/// the complexity exponents of Table 1, as exact functions of the MM
/// exponent w. These are the reference values our LP machinery is tested
/// against, and the rows the Table-1/Table-2 benches print.

#include "util/rational.h"

namespace fmmsw {
namespace closed_forms {

/// w-square(a,b,c) = a + b + c - (3 - w) min(a,b,c): the square-blocking
/// rectangular MM exponent (Eq. 6).
Rational OmegaSquare(const Rational& a, const Rational& b, const Rational& c,
                     const Rational& omega);

// ------------------------------------------------------- submodular width
Rational SubwTriangle();            // 3/2
Rational SubwClique(int k);         // k/2
Rational SubwCycle(int k);          // 2 - 1/ceil(k/2)
Rational SubwPyramid(int k);        // 2 - 1/k  (3-pyramid: 5/3)
Rational SubwLemmaC15();            // 9/5

// ----------------------------------------------------- w-submodular width
Rational OmegaSubwTriangle(const Rational& omega);  // 2w/(w+1)
Rational OmegaSubwClique4(const Rational& omega);   // (w+1)/2
Rational OmegaSubwClique5(const Rational& omega);   // w/2 + 1
/// k >= 6: ceil(k/3)/2 + ceil((k-1)/3)/2 + floor(k/3)/2 * (w-2).
Rational OmegaSubwClique(int k, const Rational& omega);
Rational OmegaSubwCycle4(const Rational& omega);  // 2 - 3/(2 min(w,5/2) + 1)
Rational OmegaSubwPyramid3(const Rational& omega);  // 2 - 1/w
/// Upper bound for k-pyramids: 2 - 2/(w(k-1) - k + 3).
Rational OmegaSubwPyramidUpper(int k, const Rational& omega);
/// Upper bound of Lemma C.15: 2 - 1/(2(w-2) + 3).
Rational OmegaSubwLemmaC15Upper(const Rational& omega);

// ------------------------------------------------- Table 1 prior exponents
/// Best prior exponent for k-clique detection (Eisenbrand-Grandoni style,
/// realized through square MM): OmegaSquare(ceil(k/3)/2, ceil((k-1)/3)/2,
/// floor(k/3)/2). Coincides with OmegaSubwClique for w = 2.
Rational PriorClique(int k, const Rational& omega);
/// Best prior exponent for the 4-cycle: (4w-1)/(2w+1).
Rational PriorCycle4(const Rational& omega);
/// Best prior (PANDA) exponent for k-pyramids: 2 - 1/k.
Rational PriorPyramid(int k);

}  // namespace closed_forms
}  // namespace fmmsw

#endif  // FMMSW_WIDTH_CLOSED_FORMS_H_
