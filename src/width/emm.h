#ifndef FMMSW_WIDTH_EMM_H_
#define FMMSW_WIDTH_EMM_H_

/// \file
/// Enumeration of the matrix-multiplication options for eliminating a
/// variable set (Definition 4.5):
///
///   EMM_H(X) = min over { MM((A\B)\G ; (B\A)\G ; X | G) :
///                A, B subsets of del(X) with A union B = del(X),
///                X inside VA and VB,
///                (VA cap VB) \ X  <=  G  <=  (VA cup VB) \ X },
///
/// where VA/VB are the vertex unions of the hyperedge families A/B.
/// Trivial options (an empty matrix dimension) are excluded, exactly as the
/// paper notes after Definition 4.5.

#include <vector>

#include "hypergraph/hypergraph.h"
#include "width/mm_expr.h"

namespace fmmsw {

struct EmmOptions {
  /// Hard cap on |del(X)| before enumerating the 3^m covers; incident edge
  /// lists are first shrunk by subsumption. A CHECK fires on overflow so a
  /// truncated enumeration can never silently change a width.
  int max_incident_edges = 14;
};

/// All distinct non-trivial MM options for eliminating X from H. The EMM
/// measure is the minimum of MmExpr::Evaluate over this list.
std::vector<MmExpr> EnumerateMmOptions(const Hypergraph& h, VarSet x,
                                       const EmmOptions& opts = {});

/// EMM_H(X) evaluated on a concrete polymatroid: min over options of the
/// MM measure. Returns false in *defined if there are no options (then X
/// can only be eliminated with for-loops).
Rational EvaluateEmm(const Hypergraph& h, VarSet x, const SetFn<Rational>& hfn,
                     const Rational& gamma, bool* defined,
                     const EmmOptions& opts = {});

}  // namespace fmmsw

#endif  // FMMSW_WIDTH_EMM_H_
