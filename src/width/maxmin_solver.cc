#include "width/maxmin_solver.h"

#include <limits>

#include "lp/simplex.h"
#include "util/check.h"

namespace fmmsw {

void MaxMinSolver::AddTerm(std::vector<LinComb> alternatives) {
  FMMSW_CHECK(!alternatives.empty());
  terms_.push_back(std::move(alternatives));
}

void MaxMinSolver::AddCapTerm(VarSet s) {
  FMMSW_CHECK(!s.empty());
  AddTerm({LinComb{LinTerm{s, Rational(1)}}});
}

double MaxMinSolver::SolveDouble(const std::vector<int>& sel,
                                 SetFn<double>* h_out) {
  PolymatroidLp<double> lp(orig_);
  const int t = lp.model().AddVar();
  lp.model().AddObjective(t, 1.0);
  {
    // Every leaf value is at most max_h h(V) (all terms are monotone
    // h-measures of subsets of V), so this built-in row keeps partial
    // LPs bounded without changing any leaf optimum.
    auto& row = lp.model().AddRow(Sense::kLe, 0.0, "t<=h(V)");
    row.coeffs.emplace_back(t, 1.0);
    lp.AppendH(&row.coeffs, orig_.vertices(), -1.0);
  }
  for (int j = 0; j < num_terms(); ++j) {
    if (sel[j] < 0) continue;
    auto& row = lp.model().AddRow(Sense::kLe, 0.0, "t<=term");
    row.coeffs.emplace_back(t, 1.0);
    for (const LinTerm& lt : terms_[j][sel[j]]) {
      lp.AppendH(&row.coeffs, lt.set, -lt.coeff.ToDouble());
    }
  }
  auto res = SolveSimplex(lp.model());
  FMMSW_CHECK(res.status == LpStatus::kOptimal);
  ++lps_;
  if (h_out != nullptr) *h_out = lp.ExtractSolution(res);
  return res.objective;
}

double MaxMinSolver::AlternativeValue(int term, int alt,
                                      const SetFn<double>& h) const {
  double v = 0;
  for (const LinTerm& lt : terms_[term][alt]) {
    v += lt.coeff.ToDouble() * h[lt.set];
  }
  return v;
}

int MaxMinSolver::ArgmaxAlternative(int term, const SetFn<double>& h) const {
  int best = 0;
  double best_v = -std::numeric_limits<double>::infinity();
  for (int a = 0; a < static_cast<int>(terms_[term].size()); ++a) {
    const double v = AlternativeValue(term, a, h);
    if (v > best_v) {
      best_v = v;
      best = a;
    }
  }
  return best;
}

double MaxMinSolver::FullEnumerate() {
  std::vector<int> sel(num_terms(), 0);
  best_ = -1e300;
  while (true) {
    const double v = SolveDouble(sel, nullptr);
    if (v > best_) {
      best_ = v;
      best_sel_ = sel;
    }
    int i = 0;
    while (i < num_terms() &&
           ++sel[i] == static_cast<int>(terms_[i].size())) {
      sel[i++] = 0;
    }
    if (i == num_terms()) break;
  }
  return best_;
}

std::vector<int> MaxMinSolver::InitialSelection() const {
  // Single-alternative terms carry no choice; keeping them selected from
  // the start also keeps every partial LP bounded (e.g. the h(U) cap).
  std::vector<int> sel(num_terms(), -1);
  for (int j = 0; j < num_terms(); ++j) {
    if (terms_[j].size() == 1) sel[j] = 0;
  }
  return sel;
}

double MaxMinSolver::CoordinateAscent() {
  std::vector<int> sel = InitialSelection();
  SetFn<double> h(orig_.vertices());
  double v = SolveDouble(sel, &h);
  for (int iter = 0; iter < 80; ++iter) {
    std::vector<int> next(num_terms());
    for (int j = 0; j < num_terms(); ++j) next[j] = ArgmaxAlternative(j, h);
    if (next == sel) break;
    sel = next;
    v = SolveDouble(sel, &h);
  }
  if (v > best_) {
    best_ = v;
    best_sel_ = sel;
  }
  return v;
}

double MaxMinSolver::BranchAndBound() {
  if (best_sel_.empty()) CoordinateAscent();
  std::vector<int> sel = InitialSelection();
  Recurse(&sel);
  return best_;
}

void MaxMinSolver::Recurse(std::vector<int>* sel) {
  SetFn<double> h(orig_.vertices());
  const double v = SolveDouble(*sel, &h);
  if (v <= best_ + kPruneTol) return;
  // Branch on the undecided term whose max alternative is most binding.
  int pick = -1;
  double pick_v = std::numeric_limits<double>::infinity();
  for (int j = 0; j < num_terms(); ++j) {
    if ((*sel)[j] >= 0) continue;
    const double bv = AlternativeValue(j, ArgmaxAlternative(j, h), h);
    if (bv < pick_v) {
      pick_v = bv;
      pick = j;
    }
  }
  if (pick < 0) {
    if (v > best_) {
      best_ = v;
      best_sel_ = *sel;
    }
    return;
  }
  // Argmax alternative first: the current h stays feasible, surfacing good
  // incumbents early.
  const int first = ArgmaxAlternative(pick, h);
  std::vector<int> order = {first};
  for (int a = 0; a < static_cast<int>(terms_[pick].size()); ++a) {
    if (a != first) order.push_back(a);
  }
  for (int a : order) {
    (*sel)[pick] = a;
    Recurse(sel);
  }
  (*sel)[pick] = -1;
}

Rational MaxMinSolver::SolveExactSelection(const std::vector<int>& sel,
                                           SetFn<Rational>* h_out) {
  PolymatroidLp<Rational> lp(orig_);
  const int t = lp.model().AddVar();
  lp.model().AddObjective(t, Rational(1));
  for (int j = 0; j < num_terms(); ++j) {
    if (sel[j] < 0) continue;
    auto& row = lp.model().AddRow(Sense::kLe, Rational(0), "t<=term");
    row.coeffs.emplace_back(t, Rational(1));
    for (const LinTerm& lt : terms_[j][sel[j]]) {
      lp.AppendH(&row.coeffs, lt.set, -lt.coeff);
    }
  }
  auto res = SolveSimplex(lp.model());
  FMMSW_CHECK(res.status == LpStatus::kOptimal);
  ++lps_;
  if (h_out != nullptr) *h_out = lp.ExtractSolution(res);
  return res.objective;
}

Rational MaxMinSolver::SolveExact(SetFn<Rational>* h_out) {
  FMMSW_CHECK(!best_sel_.empty());
  return SolveExactSelection(best_sel_, h_out);
}

}  // namespace fmmsw
