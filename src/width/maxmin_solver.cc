#include "width/maxmin_solver.h"

#include <limits>
#include <string>
#include <type_traits>

#include "core/exec_context.h"
#include "core/exec_status.h"
#include "util/check.h"

namespace fmmsw {

namespace {

template <typename S>
S ScalarFrom(const Rational& r) {
  if constexpr (std::is_same_v<S, double>) {
    return r.ToDouble();
  } else {
    return r;
  }
}

}  // namespace

void MaxMinSolver::AddTerm(std::vector<LinComb> alternatives) {
  FMMSW_CHECK(!alternatives.empty());
  FMMSW_CHECK(dmodel_.lp == nullptr && emodel_.lp == nullptr &&
              "terms must be added before the first solve");
  terms_.push_back(std::move(alternatives));
}

void MaxMinSolver::AddCapTerm(VarSet s) {
  FMMSW_CHECK(!s.empty());
  AddTerm({LinComb{LinTerm{s, Rational(1)}}});
}

template <typename S>
void MaxMinSolver::EnsureModel(SelModel<S>* m) {
  if (m->lp != nullptr) return;
  m->lp = std::make_unique<PolymatroidLp<S>>(orig_);
  auto& model = m->lp->model();
  m->t = model.AddVar();
  model.AddObjective(m->t, S(1));
  {
    // Every leaf value is at most max_h h(V) (all terms are monotone
    // h-measures of subsets of V), so this built-in row keeps partial
    // LPs bounded without changing any leaf optimum.
    auto& row = model.AddRow(Sense::kLe, S(0), "t<=h(V)");
    row.coeffs.emplace_back(m->t, S(1));
    m->lp->AppendH(&row.coeffs, orig_.vertices(), S(-1));
  }
  // One rewritable row per term; the rhs toggles between 0 (selected)
  // and kInactiveRhs (deselected), so the tableau shape never changes
  // and warm starts stay valid across the whole selection tower.
  m->first_term_row = static_cast<int>(model.rows.size());
  for (int j = 0; j < num_terms(); ++j) {
    auto& row = model.AddRow(Sense::kLe, S(kInactiveRhs), "t<=term");
    row.coeffs.emplace_back(m->t, S(1));
  }
}

template <typename S>
void MaxMinSolver::ApplySelection(SelModel<S>* m,
                                  const std::vector<int>& sel) {
  auto& model = m->lp->model();
  for (int j = 0; j < num_terms(); ++j) {
    auto& row = model.rows[m->first_term_row + j];
    row.coeffs.clear();
    row.coeffs.emplace_back(m->t, S(1));
    if (sel[j] >= 0) {
      row.rhs = S(0);
      for (const LinTerm& lt : terms_[j][sel[j]]) {
        m->lp->AppendH(&row.coeffs, lt.set, ScalarFrom<S>(-lt.coeff));
      }
    } else {
      row.rhs = S(kInactiveRhs);
    }
  }
}

template <typename S>
LpResult<S> MaxMinSolver::RunLp(SelModel<S>* m, const std::vector<int>& sel,
                                WarmStart* warm, bool canonical) {
  EnsureModel(m);
  ApplySelection(m, sel);
  if (ctx_ != nullptr) ctx_->guard().Poll(FaultSite::kLp);
  SimplexOptions opts;
  opts.max_pivots = max_pivots_;
  opts.lex_canonical = canonical;
  auto res = SolveSimplex<S>(m->lp->model(), warm_enabled_ ? warm : nullptr,
                             opts);
  if (res.status == LpStatus::kPivotLimit) {
    throw QueryAbort(ExecStatus::kCapacityExceeded,
                     "planner LP exceeded its pivot budget (" +
                         std::to_string(max_pivots_) + " pivots)");
  }
  FMMSW_CHECK(res.status == LpStatus::kOptimal);
  ++lps_;
  pivots_ += res.pivots;
  if (res.warm_started) ++warm_starts_;
  if (ctx_ != nullptr) {
    ExecStats& st = ctx_->stats();
    Bump(st.lp_solves);
    Bump(st.lp_pivots, res.pivots);
    if (res.warm_started) Bump(st.lp_warm_starts);
  }
  return res;
}

double MaxMinSolver::SolveDouble(const std::vector<int>& sel,
                                 SetFn<double>* h_out) {
  // Canonicalize only when the primal is consumed: the argmax point must
  // not depend on the pivot path, but value-only solves (FullEnumerate)
  // skip the extra stages.
  auto res = RunLp(&dmodel_, sel, &warm_d_, /*canonical=*/h_out != nullptr);
  if (h_out != nullptr) *h_out = dmodel_.lp->ExtractSolution(res);
  return res.objective;
}

void MaxMinSolver::NoteIncumbent(double v, const std::vector<int>& sel) {
  if (v <= best_) return;
  best_ = v;
  best_sel_ = sel;
  // The incumbent's basis seeds the exact re-solve of best_sel_.
  warm_best_ = warm_d_;
}

double MaxMinSolver::AlternativeValue(int term, int alt,
                                      const SetFn<double>& h) const {
  double v = 0;
  for (const LinTerm& lt : terms_[term][alt]) {
    v += lt.coeff.ToDouble() * h[lt.set];
  }
  return v;
}

int MaxMinSolver::ArgmaxAlternative(int term, const SetFn<double>& h) const {
  int best = 0;
  double best_v = -std::numeric_limits<double>::infinity();
  for (int a = 0; a < static_cast<int>(terms_[term].size()); ++a) {
    const double v = AlternativeValue(term, a, h);
    if (v > best_v) {
      best_v = v;
      best = a;
    }
  }
  return best;
}

double MaxMinSolver::FullEnumerate() {
  std::vector<int> sel(num_terms(), 0);
  best_ = -1e300;
  while (true) {
    const double v = SolveDouble(sel, nullptr);
    NoteIncumbent(v, sel);
    int i = 0;
    while (i < num_terms() &&
           ++sel[i] == static_cast<int>(terms_[i].size())) {
      sel[i++] = 0;
    }
    if (i == num_terms()) break;
  }
  return best_;
}

std::vector<int> MaxMinSolver::InitialSelection() const {
  // Single-alternative terms carry no choice; keeping them selected from
  // the start also keeps every partial LP bounded (e.g. the h(U) cap).
  std::vector<int> sel(num_terms(), -1);
  for (int j = 0; j < num_terms(); ++j) {
    if (terms_[j].size() == 1) sel[j] = 0;
  }
  return sel;
}

double MaxMinSolver::CoordinateAscent() {
  std::vector<int> sel = InitialSelection();
  SetFn<double> h(orig_.vertices());
  double v = SolveDouble(sel, &h);
  for (int iter = 0; iter < 80; ++iter) {
    std::vector<int> next(num_terms());
    for (int j = 0; j < num_terms(); ++j) next[j] = ArgmaxAlternative(j, h);
    if (next == sel) break;
    sel = next;
    v = SolveDouble(sel, &h);
  }
  NoteIncumbent(v, sel);
  return v;
}

double MaxMinSolver::BranchAndBound() {
  if (best_sel_.empty()) CoordinateAscent();
  std::vector<int> sel = InitialSelection();
  Recurse(&sel);
  return best_;
}

void MaxMinSolver::Recurse(std::vector<int>* sel) {
  SetFn<double> h(orig_.vertices());
  const double v = SolveDouble(*sel, &h);
  if (v <= best_ + kPruneTol) return;
  // Branch on the undecided term whose max alternative is most binding.
  int pick = -1;
  double pick_v = std::numeric_limits<double>::infinity();
  for (int j = 0; j < num_terms(); ++j) {
    if ((*sel)[j] >= 0) continue;
    const double bv = AlternativeValue(j, ArgmaxAlternative(j, h), h);
    if (bv < pick_v) {
      pick_v = bv;
      pick = j;
    }
  }
  if (pick < 0) {
    NoteIncumbent(v, *sel);
    return;
  }
  // Argmax alternative first: the current h stays feasible, surfacing good
  // incumbents early.
  const int first = ArgmaxAlternative(pick, h);
  std::vector<int> order = {first};
  for (int a = 0; a < static_cast<int>(terms_[pick].size()); ++a) {
    if (a != first) order.push_back(a);
  }
  for (int a : order) {
    (*sel)[pick] = a;
    Recurse(sel);
  }
  (*sel)[pick] = -1;
}

Rational MaxMinSolver::SolveExactSelection(const std::vector<int>& sel,
                                           SetFn<Rational>* h_out) {
  // Seeded with the double search's incumbent basis (warm_best_): basis
  // column indices are scalar-type independent, and the replay's exact
  // feasibility check falls back to a cold start when the double basis
  // does not transfer.
  auto res = RunLp(&emodel_, sel, &warm_best_, /*canonical=*/true);
  if (h_out != nullptr) *h_out = emodel_.lp->ExtractSolution(res);
  return res.objective;
}

Rational MaxMinSolver::SolveExact(SetFn<Rational>* h_out) {
  FMMSW_CHECK(!best_sel_.empty());
  return SolveExactSelection(best_sel_, h_out);
}

}  // namespace fmmsw
