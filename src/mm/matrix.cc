#include "mm/matrix.h"

#include <algorithm>

#include "core/exec_context.h"
#include "mm/kernel.h"
#include "util/parallel.h"

namespace fmmsw {

bool Matrix::AnyNonZero() const {
  if (data_.empty()) return false;  // 0 x n / n x 0: no cells to scan
  for (int64_t v : data_) {
    if (v != 0) return true;
  }
  return false;
}

Matrix MultiplyNaive(const Matrix& a, const Matrix& b) {
  FMMSW_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const int64_t aik = a.At(i, k);
      if (aik == 0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        out.At(i, j) += aik * b.At(k, j);
      }
    }
  }
  return out;
}

Matrix MultiplyBlocked(const Matrix& a, const Matrix& b, ExecContext* ctx) {
  FMMSW_CHECK(a.cols() == b.rows());
  ExecContext& ec = ExecContext::Resolve(ctx);
  Matrix out(a.rows(), b.cols());
  if (a.rows() == 0 || a.cols() == 0 || b.cols() == 0) return out;
  // Output matrix, charged for the duration of the product.
  MemCharge charge(ec, static_cast<int64_t>(a.rows()) * b.cols() * 8);
  const SimdLevel level = ActiveSimdLevel();
  // Each task owns a slab of output rows, so the writes never overlap;
  // the slab product itself is the packed micro-kernel. Slab height
  // trades B-repacking (once per slab) against fan-out: at 128 rows the
  // repack is <1% of the slab's multiply work.
  constexpr int kSlab = 128;
  ParallelFor(
      ec, FaultSite::kMm, (a.rows() + kSlab - 1) / kSlab,
      [&](int64_t slab_begin, int64_t slab_end) {
        // No caller scratch: ParallelFor may invoke this chunk callback
        // once per claimed slab, so a local MmPackScratch would
        // re-allocate the pack buffers per slab. The nullptr path borrows
        // a per-worker context arena, whose capacity persists across
        // slabs and calls.
        for (int64_t slab = slab_begin; slab < slab_end; ++slab) {
          const int i0 = static_cast<int>(slab) * kSlab;
          const int rows = std::min(kSlab, a.rows() - i0);
          GemmAddAt(level, a.RowPtr(i0), a.cols(), b.RowPtr(0), b.cols(),
                    out.RowPtr(i0), out.cols(), rows, a.cols(), b.cols(),
                    &ec, nullptr);
        }
      });
  return out;
}

bool BitMatrix::AnyNonZero() const {
  for (uint64_t w : data_) {
    if (w != 0) return true;
  }
  return false;
}

BitMatrix BitMatrix::Multiply(const BitMatrix& a, const BitMatrix& b,
                              ExecContext* ctx) {
  FMMSW_CHECK(a.cols() == b.rows());
  ExecContext& ec = ExecContext::Resolve(ctx);
  BitMatrix out(a.rows(), b.cols());
  const int a_words = a.words_;
  const int b_words = b.words_;
  MemCharge charge(ec, static_cast<int64_t>(out.data_.size()) * 8);
  ParallelFor(
      ec, FaultSite::kMm, a.rows(),
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          uint64_t* out_row = &out.data_[static_cast<size_t>(i) * b_words];
          const uint64_t* a_row = &a.data_[static_cast<size_t>(i) * a_words];
          for (int wa = 0; wa < a_words; ++wa) {
            uint64_t bits = a_row[wa];
            while (bits != 0) {
              const int k = (wa << 6) + __builtin_ctzll(bits);
              bits &= bits - 1;
              const uint64_t* b_row =
                  &b.data_[static_cast<size_t>(k) * b_words];
              for (int w = 0; w < b_words; ++w) out_row[w] |= b_row[w];
            }
          }
        }
      },
      /*grain=*/16);
  return out;
}

}  // namespace fmmsw
