#include "mm/matrix.h"

#include <algorithm>

#include "util/parallel.h"

namespace fmmsw {

bool Matrix::AnyNonZero() const {
  for (int64_t v : data_) {
    if (v != 0) return true;
  }
  return false;
}

Matrix MultiplyNaive(const Matrix& a, const Matrix& b) {
  FMMSW_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const int64_t aik = a.At(i, k);
      if (aik == 0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        out.At(i, j) += aik * b.At(k, j);
      }
    }
  }
  return out;
}

Matrix MultiplyBlocked(const Matrix& a, const Matrix& b) {
  FMMSW_CHECK(a.cols() == b.rows());
  constexpr int kB = 64;
  Matrix out(a.rows(), b.cols());
  const int n = b.cols();
  // Each task owns a block of output rows, so the writes never overlap.
  ParallelFor(
      (a.rows() + kB - 1) / kB,
      [&](int64_t block_begin, int64_t block_end) {
        for (int64_t blk = block_begin; blk < block_end; ++blk) {
          const int i0 = static_cast<int>(blk) * kB;
          const int imax = std::min(i0 + kB, a.rows());
          for (int kk = 0; kk < a.cols(); kk += kB) {
            const int kmax = std::min(kk + kB, a.cols());
            for (int i = i0; i < imax; ++i) {
              const int64_t* arow = a.RowPtr(i);
              int64_t* orow = out.RowPtr(i);
              for (int k = kk; k < kmax; ++k) {
                const int64_t aik = arow[k];
                if (aik == 0) continue;
                const int64_t* brow = b.RowPtr(k);
                for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
              }
            }
          }
        }
      });
  return out;
}

bool BitMatrix::AnyNonZero() const {
  for (uint64_t w : data_) {
    if (w != 0) return true;
  }
  return false;
}

BitMatrix BitMatrix::Multiply(const BitMatrix& a, const BitMatrix& b) {
  FMMSW_CHECK(a.cols() == b.rows());
  BitMatrix out(a.rows(), b.cols());
  const int a_words = a.words_;
  const int b_words = b.words_;
  ParallelFor(
      a.rows(),
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          uint64_t* out_row = &out.data_[static_cast<size_t>(i) * b_words];
          const uint64_t* a_row = &a.data_[static_cast<size_t>(i) * a_words];
          for (int wa = 0; wa < a_words; ++wa) {
            uint64_t bits = a_row[wa];
            while (bits != 0) {
              const int k = (wa << 6) + __builtin_ctzll(bits);
              bits &= bits - 1;
              const uint64_t* b_row =
                  &b.data_[static_cast<size_t>(k) * b_words];
              for (int w = 0; w < b_words; ++w) out_row[w] |= b_row[w];
            }
          }
        }
      },
      /*grain=*/16);
  return out;
}

}  // namespace fmmsw
