#include "mm/matrix.h"

#include <algorithm>

namespace fmmsw {

bool Matrix::AnyNonZero() const {
  for (int64_t v : data_) {
    if (v != 0) return true;
  }
  return false;
}

Matrix MultiplyNaive(const Matrix& a, const Matrix& b) {
  FMMSW_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const int64_t aik = a.At(i, k);
      if (aik == 0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        out.At(i, j) += aik * b.At(k, j);
      }
    }
  }
  return out;
}

Matrix MultiplyBlocked(const Matrix& a, const Matrix& b) {
  FMMSW_CHECK(a.cols() == b.rows());
  constexpr int kB = 48;
  Matrix out(a.rows(), b.cols());
  for (int ii = 0; ii < a.rows(); ii += kB) {
    const int imax = std::min(ii + kB, a.rows());
    for (int kk = 0; kk < a.cols(); kk += kB) {
      const int kmax = std::min(kk + kB, a.cols());
      for (int jj = 0; jj < b.cols(); jj += kB) {
        const int jmax = std::min(jj + kB, b.cols());
        for (int i = ii; i < imax; ++i) {
          for (int k = kk; k < kmax; ++k) {
            const int64_t aik = a.At(i, k);
            if (aik == 0) continue;
            for (int j = jj; j < jmax; ++j) {
              out.At(i, j) += aik * b.At(k, j);
            }
          }
        }
      }
    }
  }
  return out;
}

bool BitMatrix::AnyNonZero() const {
  for (uint64_t w : data_) {
    if (w != 0) return true;
  }
  return false;
}

BitMatrix BitMatrix::Multiply(const BitMatrix& a, const BitMatrix& b) {
  FMMSW_CHECK(a.cols() == b.rows());
  BitMatrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    uint64_t* out_row = &out.data_[static_cast<size_t>(i) * out.words_];
    const uint64_t* a_row = &a.data_[static_cast<size_t>(i) * a.words_];
    for (int k = 0; k < a.cols(); ++k) {
      if (!((a_row[k >> 6] >> (k & 63)) & 1ULL)) continue;
      const uint64_t* b_row = &b.data_[static_cast<size_t>(k) * b.words_];
      for (int w = 0; w < b.words_; ++w) out_row[w] |= b_row[w];
    }
  }
  return out;
}

}  // namespace fmmsw
