#ifndef FMMSW_MM_MATRIX_H_
#define FMMSW_MM_MATRIX_H_

/// \file
/// Dense matrices and multiplication kernels.
///
/// The engine reduces heavy-part joins to Boolean / counting matrix
/// products (paper Section 2.5 and Appendix E.6). Kernels:
///   - MultiplyNaive / MultiplyBlocked: cubic reference and cache-blocked,
///   - MultiplyStrassen: Strassen recursion (omega = log2 7), the runnable
///     stand-in for fast MM (see DESIGN.md "Substitutions"),
///   - MultiplyRectangular: the square-blocking scheme realizing
///     omega-square(a,b,c) from Eq. (6),
///   - BitMatrix multiply: word-parallel Boolean product.
/// Counting products use int64 (semiring (+, x)); Boolean products use the
/// (OR, AND) semiring, which suffices for Boolean CQ evaluation.

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace fmmsw {

/// Row-major dense int64 matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  int64_t& At(int r, int c) {
    FMMSW_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  int64_t At(int r, int c) const {
    FMMSW_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  const std::vector<int64_t>& data() const { return data_; }

  /// Raw row access for the multiplication kernels.
  int64_t* RowPtr(int r) { return &data_[static_cast<size_t>(r) * cols_]; }
  const int64_t* RowPtr(int r) const {
    return &data_[static_cast<size_t>(r) * cols_];
  }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// True if any entry is non-zero.
  bool AnyNonZero() const;

 private:
  int rows_, cols_;
  std::vector<int64_t> data_;
};

/// Reference O(n^3) product (single-threaded, used as the differential
/// baseline by tests).
Matrix MultiplyNaive(const Matrix& a, const Matrix& b);

/// Cache-blocked cubic product (the combinatorial baseline kernel). Row
/// blocks run on the FMMSW_THREADS-sized global pool.
Matrix MultiplyBlocked(const Matrix& a, const Matrix& b);

/// Strassen's algorithm (cutoff to blocked below `cutoff`). Exact over
/// int64; the realized exponent is log2 7 ~ 2.807.
Matrix MultiplyStrassen(const Matrix& a, const Matrix& b, int cutoff = 64);

/// Rectangular product via square blocking (Eq. 6): partitions both inputs
/// into d x d square blocks, d = min(rows_a, cols_a, cols_b), and multiplies
/// block pairs with Strassen. Realizes n^{omega-square(a,b,c)}.
Matrix MultiplyRectangular(const Matrix& a, const Matrix& b,
                           int cutoff = 64);

/// Bit-packed Boolean matrix ((OR, AND) semiring).
class BitMatrix {
 public:
  BitMatrix() : rows_(0), cols_(0), words_(0) {}
  BitMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), words_((cols + 63) / 64),
        data_(static_cast<size_t>(rows) * words_, 0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void Set(int r, int c) {
    FMMSW_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    data_[static_cast<size_t>(r) * words_ + (c >> 6)] |= 1ULL << (c & 63);
  }
  bool Get(int r, int c) const {
    FMMSW_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return (data_[static_cast<size_t>(r) * words_ + (c >> 6)] >>
            (c & 63)) & 1ULL;
  }

  bool AnyNonZero() const;

  /// Word-parallel Boolean product: out[i][j] = OR_k (a[i][k] AND b[k][j]).
  /// Skips zero words of `a`, visits set bits via ctz, and spreads row
  /// blocks over the global thread pool.
  static BitMatrix Multiply(const BitMatrix& a, const BitMatrix& b);

 private:
  int rows_, cols_, words_;
  std::vector<uint64_t> data_;
};

}  // namespace fmmsw

#endif  // FMMSW_MM_MATRIX_H_
