#ifndef FMMSW_MM_MATRIX_H_
#define FMMSW_MM_MATRIX_H_

/// \file
/// Dense matrices and multiplication kernels.
///
/// The engine reduces heavy-part joins to Boolean / counting matrix
/// products (paper Section 2.5 and Appendix E.6). Kernels:
///   - MultiplyNaive: cubic reference, the differential baseline — the
///     only int64 kernel that does NOT route through the micro-kernel
///     layer, so tests can compare everything else against it,
///   - MultiplyBlocked: cache-blocked cubic product; row slabs run on the
///     context's pool, each slab through the packed micro-kernel of
///     mm/kernel.h (runtime AVX2 / scalar dispatch, FMMSW_SIMD override),
///   - MultiplyStrassen: Strassen recursion (omega = log2 7), the runnable
///     stand-in for fast MM (see DESIGN.md "Substitutions"); the cutoff
///     base case is the packed micro-kernel,
///   - MultiplyRectangular: the square-blocking scheme realizing
///     omega-square(a,b,c) from Eq. (6); blocks at or below the cutoff
///     multiply in place via the micro-kernel (no copy, no pow2 padding),
///     larger blocks recurse through Strassen,
///   - BitMatrix multiply: word-parallel Boolean product,
///   - MultiplyBitSliced (mm/kernel.h): 0/1 counting product via
///     bit-planes + popcount, for the engines' indicator matrices.
/// Counting products use int64 (semiring (+, x)) and every kernel is
/// bit-identical to MultiplyNaive; Boolean products use the (OR, AND)
/// semiring, which suffices for Boolean CQ evaluation.
///
/// The int64 kernels take an optional ExecContext (nullptr = process
/// default) supplying the thread pool, reusable pack scratch, and the
/// mm_* stats counters (core/exec_context.h).

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace fmmsw {

class ExecContext;

/// Row-major dense int64 matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  int64_t& At(int r, int c) {
    FMMSW_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  int64_t At(int r, int c) const {
    FMMSW_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  const std::vector<int64_t>& data() const { return data_; }

  /// Raw row access for the multiplication kernels.
  int64_t* RowPtr(int r) { return &data_[static_cast<size_t>(r) * cols_]; }
  const int64_t* RowPtr(int r) const {
    return &data_[static_cast<size_t>(r) * cols_];
  }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// True if the matrix has no cells (0 rows and/or 0 columns).
  bool empty() const { return data_.empty(); }

  /// True if any entry is non-zero (false for degenerate 0 x n / n x 0
  /// shapes, which hold no cells).
  bool AnyNonZero() const;

 private:
  int rows_, cols_;
  std::vector<int64_t> data_;
};

/// Default Strassen recursion cutoff, shared by every caller that does
/// not pick its own (MultiplyStrassen/MultiplyRectangular defaults, the
/// engine counting products via CountingProduct).
inline constexpr int kMmDefaultCutoff = 256;

/// Reference O(n^3) product (single-threaded, used as the differential
/// baseline by tests; deliberately bypasses the micro-kernel layer).
Matrix MultiplyNaive(const Matrix& a, const Matrix& b);

/// Cache-blocked cubic product (the combinatorial baseline kernel). Row
/// slabs run on the context's pool, each slab through the packed
/// micro-kernel (mm/kernel.h).
Matrix MultiplyBlocked(const Matrix& a, const Matrix& b,
                       ExecContext* ctx = nullptr);

/// Strassen's algorithm (cutoff to the packed micro-kernel below
/// `cutoff`). Exact over int64; the realized exponent is log2 7 ~ 2.807.
/// The default cutoff moved 64 -> 256 with the micro-kernel base case:
/// each extra recursion level multiplies the add/accumulate passes by
/// 7/4 while the packed kernel beats that overhead comfortably up to a
/// few hundred, and 50x fewer leaf calls keep sparse operands cheap
/// (each leaf pays a packing scan).
Matrix MultiplyStrassen(const Matrix& a, const Matrix& b,
                        int cutoff = kMmDefaultCutoff,
                        ExecContext* ctx = nullptr);

/// Rectangular product via square blocking (Eq. 6): partitions both inputs
/// into d x d square blocks, d = min(rows_a, cols_a, cols_b), and
/// multiplies block pairs with Strassen — except blocks at or below the
/// cutoff, which run the packed micro-kernel directly on strided views
/// (no copy, no pow2 padding). Realizes n^{omega-square(a,b,c)}.
Matrix MultiplyRectangular(const Matrix& a, const Matrix& b,
                           int cutoff = kMmDefaultCutoff,
                           ExecContext* ctx = nullptr);

/// Bit-packed Boolean matrix ((OR, AND) semiring).
class BitMatrix {
 public:
  BitMatrix() : rows_(0), cols_(0), words_(0) {}
  BitMatrix(int rows, int cols)
      : rows_(rows), cols_(cols), words_((cols + 63) / 64),
        data_(static_cast<size_t>(rows) * words_, 0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void Set(int r, int c) {
    FMMSW_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    data_[static_cast<size_t>(r) * words_ + (c >> 6)] |= 1ULL << (c & 63);
  }
  bool Get(int r, int c) const {
    FMMSW_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return (data_[static_cast<size_t>(r) * words_ + (c >> 6)] >>
            (c & 63)) & 1ULL;
  }

  bool AnyNonZero() const;

  /// Word-parallel Boolean product: out[i][j] = OR_k (a[i][k] AND b[k][j]).
  /// Skips zero words of `a`, visits set bits via ctz, and spreads row
  /// blocks over the context's pool (nullptr = process default).
  static BitMatrix Multiply(const BitMatrix& a, const BitMatrix& b,
                            ExecContext* ctx = nullptr);

 private:
  int rows_, cols_, words_;
  std::vector<uint64_t> data_;
};

}  // namespace fmmsw

#endif  // FMMSW_MM_MATRIX_H_
