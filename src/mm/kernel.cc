#include "mm/kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "core/exec_context.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FMMSW_MM_X86 1
#include <immintrin.h>
#else
#define FMMSW_MM_X86 0
#endif

namespace fmmsw {

namespace {

constexpr int kMr = kMmTileRows;
constexpr int kNr = kMmTileCols;
/// Depth of one packed panel pass: B strips stay L1-resident (kKc * kNr
/// int64s = 24 KiB) while an A slab streams against them.
constexpr int kKc = 384;

/// Inner kernel contract: acc (kMr x kNr, row-major) = sum over kk of
/// ap[kk * kMr + r] * bp[kk * kNr + j]. ap/bp are zero-padded packed
/// strips, so edge tiles need no masking here.
using MicroFn = void (*)(const int64_t* ap, const int64_t* bp, int kc,
                         int64_t* acc);

void MicroKernelScalar(const int64_t* ap, const int64_t* bp, int kc,
                       int64_t* acc) {
  std::memset(acc, 0, sizeof(int64_t) * kMr * kNr);
  for (int kk = 0; kk < kc; ++kk) {
    const int64_t* arow = ap + static_cast<size_t>(kk) * kMr;
    if ((arow[0] | arow[1] | arow[2] | arow[3]) == 0) continue;
    const int64_t* brow = bp + static_cast<size_t>(kk) * kNr;
    for (int r = 0; r < kMr; ++r) {
      const int64_t av = arow[r];
      if (av == 0) continue;  // indicator matrices are mostly zero
      int64_t* accr = acc + r * kNr;
      // Unsigned arithmetic: the documented contract is exact mod 2^64,
      // and signed overflow would be UB — uint64 wraps by definition and
      // compiles to the same imul/add.
      for (int j = 0; j < kNr; ++j) {
        accr[j] = static_cast<int64_t>(
            static_cast<uint64_t>(accr[j]) +
            static_cast<uint64_t>(av) * static_cast<uint64_t>(brow[j]));
      }
    }
  }
}

#if FMMSW_MM_X86

/// 4-lane 64-bit multiply mod 2^64: AVX2 has no vpmullq, so build it from
/// three 32x32->64 vpmuludq partial products. alo/ahi broadcast the low
/// and high halves of the (scalar) A value; b/bh are the B lanes and
/// their high halves. Identical to scalar imul's low 64 bits, which keeps
/// the kernel bit-compatible with the scalar path.
__attribute__((target("avx2"))) inline __m256i Mul64(__m256i alo,
                                                     __m256i ahi, __m256i b,
                                                     __m256i bh) {
  const __m256i lolo = _mm256_mul_epu32(alo, b);
  const __m256i lohi = _mm256_mul_epu32(alo, bh);
  const __m256i hilo = _mm256_mul_epu32(ahi, b);
  const __m256i cross = _mm256_add_epi64(lohi, hilo);
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void MicroKernelAvx2W32(const int64_t* ap,
                                                        const int64_t* bp,
                                                        int kc,
                                                        int64_t* acc) {
  // Narrow-value fast path: when every packed A and B value fits in
  // int32 (the packers verify — true for the engines' 0/1 indicator
  // matrices and the small Strassen combinations of them), the exact
  // 64-bit product is a single signed vpmuldq per vector instead of the
  // three-vpmuludq emulation below.
  __m256i c0a = _mm256_setzero_si256(), c0b = _mm256_setzero_si256();
  __m256i c1a = _mm256_setzero_si256(), c1b = _mm256_setzero_si256();
  __m256i c2a = _mm256_setzero_si256(), c2b = _mm256_setzero_si256();
  __m256i c3a = _mm256_setzero_si256(), c3b = _mm256_setzero_si256();
  for (int kk = 0; kk < kc; ++kk) {
    const int64_t* arow = ap + static_cast<size_t>(kk) * kMr;
    // One whole-quad zero skip (mostly-zero strips are common in the
    // engines' indicator panels); per-row branches are deliberately NOT
    // taken — at mixed densities their mispredictions cost more than the
    // multiplies they save, and a zero lane multiplies to zero anyway.
    if ((arow[0] | arow[1] | arow[2] | arow[3]) == 0) continue;
    const __m256i* brow =
        reinterpret_cast<const __m256i*>(bp + static_cast<size_t>(kk) * kNr);
    // vpmuldq reads the low 32 bits of each 64-bit lane as signed; an
    // int64 lane holding an int32-ranged value has exactly that value in
    // its low half.
    const __m256i b0 = _mm256_loadu_si256(brow);
    const __m256i b1 = _mm256_loadu_si256(brow + 1);
    const __m256i a0 = _mm256_set1_epi64x(arow[0]);
    const __m256i a1 = _mm256_set1_epi64x(arow[1]);
    const __m256i a2 = _mm256_set1_epi64x(arow[2]);
    const __m256i a3 = _mm256_set1_epi64x(arow[3]);
    c0a = _mm256_add_epi64(c0a, _mm256_mul_epi32(a0, b0));
    c0b = _mm256_add_epi64(c0b, _mm256_mul_epi32(a0, b1));
    c1a = _mm256_add_epi64(c1a, _mm256_mul_epi32(a1, b0));
    c1b = _mm256_add_epi64(c1b, _mm256_mul_epi32(a1, b1));
    c2a = _mm256_add_epi64(c2a, _mm256_mul_epi32(a2, b0));
    c2b = _mm256_add_epi64(c2b, _mm256_mul_epi32(a2, b1));
    c3a = _mm256_add_epi64(c3a, _mm256_mul_epi32(a3, b0));
    c3b = _mm256_add_epi64(c3b, _mm256_mul_epi32(a3, b1));
  }
  __m256i* out = reinterpret_cast<__m256i*>(acc);
  _mm256_storeu_si256(out + 0, c0a);
  _mm256_storeu_si256(out + 1, c0b);
  _mm256_storeu_si256(out + 2, c1a);
  _mm256_storeu_si256(out + 3, c1b);
  _mm256_storeu_si256(out + 4, c2a);
  _mm256_storeu_si256(out + 5, c2b);
  _mm256_storeu_si256(out + 6, c3a);
  _mm256_storeu_si256(out + 7, c3b);
}

/// One A value against the two loaded B vectors: ca/cb += av * b0/b1.
/// (A named helper, not a lambda: GCC lambdas do not inherit the
/// enclosing function's target attribute.)
__attribute__((target("avx2"))) inline void RowUpdate(int64_t av, __m256i b0,
                                                      __m256i b0h,
                                                      __m256i b1,
                                                      __m256i b1h,
                                                      __m256i& ca,
                                                      __m256i& cb) {
  if (av == 0) return;  // indicator matrices are mostly zero
  const uint64_t u = static_cast<uint64_t>(av);
  const __m256i alo =
      _mm256_set1_epi64x(static_cast<int64_t>(u & 0xffffffffULL));
  const __m256i ahi = _mm256_set1_epi64x(static_cast<int64_t>(u >> 32));
  ca = _mm256_add_epi64(ca, Mul64(alo, ahi, b0, b0h));
  cb = _mm256_add_epi64(cb, Mul64(alo, ahi, b1, b1h));
}

__attribute__((target("avx2"))) void MicroKernelAvx2(const int64_t* ap,
                                                     const int64_t* bp,
                                                     int kc, int64_t* acc) {
  // 4 x 8 accumulator tile = 8 ymm registers, two B vectors (+ their
  // shifted halves) live across the row updates.
  __m256i c0a = _mm256_setzero_si256(), c0b = _mm256_setzero_si256();
  __m256i c1a = _mm256_setzero_si256(), c1b = _mm256_setzero_si256();
  __m256i c2a = _mm256_setzero_si256(), c2b = _mm256_setzero_si256();
  __m256i c3a = _mm256_setzero_si256(), c3b = _mm256_setzero_si256();
  for (int kk = 0; kk < kc; ++kk) {
    const int64_t* arow = ap + static_cast<size_t>(kk) * kMr;
    if ((arow[0] | arow[1] | arow[2] | arow[3]) == 0) continue;
    const __m256i* brow =
        reinterpret_cast<const __m256i*>(bp + static_cast<size_t>(kk) * kNr);
    const __m256i b0 = _mm256_loadu_si256(brow);
    const __m256i b1 = _mm256_loadu_si256(brow + 1);
    const __m256i b0h = _mm256_srli_epi64(b0, 32);
    const __m256i b1h = _mm256_srli_epi64(b1, 32);
    RowUpdate(arow[0], b0, b0h, b1, b1h, c0a, c0b);
    RowUpdate(arow[1], b0, b0h, b1, b1h, c1a, c1b);
    RowUpdate(arow[2], b0, b0h, b1, b1h, c2a, c2b);
    RowUpdate(arow[3], b0, b0h, b1, b1h, c3a, c3b);
  }
  __m256i* out = reinterpret_cast<__m256i*>(acc);
  _mm256_storeu_si256(out + 0, c0a);
  _mm256_storeu_si256(out + 1, c0b);
  _mm256_storeu_si256(out + 2, c1a);
  _mm256_storeu_si256(out + 3, c1b);
  _mm256_storeu_si256(out + 4, c2a);
  _mm256_storeu_si256(out + 5, c2b);
  _mm256_storeu_si256(out + 6, c3a);
  _mm256_storeu_si256(out + 7, c3b);
}

#endif  // FMMSW_MM_X86

MicroFn MicroKernelFor(SimdLevel level) {
#if FMMSW_MM_X86
  if (level == SimdLevel::kAvx2) return &MicroKernelAvx2;
#else
  (void)level;
#endif
  return &MicroKernelScalar;
}

/// Kernel for chunks whose packed values all fit in int32 (`fallback` =
/// the general kernel for this level; the scalar kernel has no narrow
/// variant — imul is full-width either way).
MicroFn NarrowKernelFor(SimdLevel level, MicroFn fallback) {
#if FMMSW_MM_X86
  if (level == SimdLevel::kAvx2) return &MicroKernelAvx2W32;
#endif
  (void)level;
  return fallback;
}

SimdLevel ParseSimdEnv(SimdLevel hw) {
  const char* env = std::getenv("FMMSW_SIMD");
  if (env == nullptr) return hw;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    return SimdLevel::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0 || std::strcmp(env, "on") == 0) {
    return std::min(SimdLevel::kAvx2, hw);  // clamp to what can execute
  }
  return hw;  // "auto" and unrecognized values keep the probe result
}

}  // namespace

SimdLevel MaxSimdLevel() {
#if FMMSW_MM_X86
  return __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2
                                        : SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = ParseSimdEnv(MaxSimdLevel());
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void GemmAddAt(SimdLevel level, const int64_t* a, int lda, const int64_t* b,
               int ldb, int64_t* c, int ldc, int m, int k, int n,
               ExecContext* ctx, MmPackScratch* scratch) {
  if (m <= 0 || n <= 0 || k <= 0) return;  // degenerate shapes are no-ops
  ExecContext& ec = ExecContext::Resolve(ctx);
  // One poll per base-case product: every blocked slab, Strassen leaf and
  // rectangular block passes through here.
  ec.guard().Poll(FaultSite::kMm);
  Bump(ec.stats().mm_base_calls);
  if (level != SimdLevel::kScalar) Bump(ec.stats().mm_simd_calls);
  const MicroFn micro = MicroKernelFor(level);

  // Pack buffers: caller-provided scratch, else a free worker arena of
  // the context (losers of the atomic acquire — e.g. several slabs
  // multiplying concurrently — use call-local buffers). The lease is
  // RAII: a QueryAbort unwinding out of a poll below must not leave the
  // arena permanently busy.
  MmPackScratch local;
  ArenaLease lease;
  std::vector<uint64_t>* apv = nullptr;
  std::vector<uint64_t>* bpv = nullptr;
  if (scratch != nullptr) {
    apv = &scratch->a_pack;
    bpv = &scratch->b_pack;
  } else {
    lease = ArenaLease(ec);
    apv = lease ? &lease.get()->u64() : &local.a_pack;
    bpv = lease ? &lease.get()->u64b() : &local.b_pack;
  }

  const int mstrips = (m + kMr - 1) / kMr;
  const int nstrips = (n + kNr - 1) / kNr;
  const int kc_max = std::min(k, kKc);
  if (apv->size() < static_cast<size_t>(mstrips) * kMr * kc_max) {
    apv->resize(static_cast<size_t>(mstrips) * kMr * kc_max);
  }
  if (bpv->size() < static_cast<size_t>(nstrips) * kNr * kc_max) {
    bpv->resize(static_cast<size_t>(nstrips) * kNr * kc_max);
  }
  // int64_t and uint64_t are signed/unsigned siblings, so viewing the
  // arena's uint64 buffers as int64 panels is well-defined aliasing.
  int64_t* apack = reinterpret_cast<int64_t*>(apv->data());
  int64_t* bpack = reinterpret_cast<int64_t*>(bpv->data());

  int64_t pack_ns = 0;
  alignas(32) int64_t acc[kMr * kNr];
  // Per-strip nonzero flags of the current A chunk; strips of zeros (and
  // whole-zero chunks) contribute nothing and skip B packing + kernels —
  // sparse operands (the engines' indicator matrices, zero quadrants of
  // the Strassen embedding) keep their O(nnz)-ish cost. Products taller
  // than kMaxStrips tiles just forgo the skip (flags pinned nonzero).
  constexpr int kMaxStrips = 512;
  uint8_t strip_nonzero[kMaxStrips];
  for (int kk0 = 0; kk0 < k; kk0 += kKc) {
    const int kc = std::min(kKc, k - kk0);
    // The packers also range-check: when every A and B value of the chunk
    // fits in int32 the vector path can use the single-multiply narrow
    // kernel (see MicroKernelAvx2W32). `bad` collects the bits lost by
    // truncating each value to int32 — zero iff all values fit.
    uint64_t bad = 0;
    Stopwatch sw;
    // A chunk -> MR-tall strips, k-major, edge rows zero-padded.
    bool chunk_nonzero = false;
    for (int is = 0; is < mstrips; ++is) {
      const int i0 = is * kMr;
      const int iw = std::min(kMr, m - i0);
      int64_t* dst = apack + static_cast<size_t>(is) * kMr * kc;
      uint64_t any = 0;
      for (int kk = 0; kk < kc; ++kk) {
        const int col = kk0 + kk;
        for (int ii = 0; ii < iw; ++ii) {
          const int64_t v = a[static_cast<size_t>(i0 + ii) * lda + col];
          bad |= static_cast<uint64_t>(v ^ static_cast<int32_t>(v));
          any |= static_cast<uint64_t>(v);
          dst[ii] = v;
        }
        for (int ii = iw; ii < kMr; ++ii) dst[ii] = 0;
        dst += kMr;
      }
      if (is < kMaxStrips) strip_nonzero[is] = any != 0;
      chunk_nonzero |= any != 0;
    }
    if (!chunk_nonzero) {
      pack_ns += static_cast<int64_t>(sw.Seconds() * 1e9);
      continue;  // zero chunk: no B pack, no kernels
    }
    // B chunk -> NR-wide strips, k-major inside a strip, edge columns
    // zero-padded.
    for (int js = 0; js < nstrips; ++js) {
      const int j0 = js * kNr;
      const int jw = std::min(kNr, n - j0);
      int64_t* dst = bpack + static_cast<size_t>(js) * kNr * kc;
      for (int kk = 0; kk < kc; ++kk) {
        const int64_t* brow =
            b + static_cast<size_t>(kk0 + kk) * ldb + j0;
        for (int jj = 0; jj < jw; ++jj) {
          const int64_t v = brow[jj];
          bad |= static_cast<uint64_t>(v ^ static_cast<int32_t>(v));
          dst[jj] = v;
        }
        for (int jj = jw; jj < kNr; ++jj) dst[jj] = 0;
        dst += kNr;
      }
    }
    pack_ns += static_cast<int64_t>(sw.Seconds() * 1e9);
    const MicroFn chunk_micro =
        bad == 0 ? NarrowKernelFor(level, micro) : micro;

    // j-strip outer so one B strip stays hot while the A slab streams by.
    for (int js = 0; js < nstrips; ++js) {
      const int j0 = js * kNr;
      const int jw = std::min(kNr, n - j0);
      const int64_t* bstrip = bpack + static_cast<size_t>(js) * kNr * kc;
      for (int is = 0; is < mstrips; ++is) {
        if (is < kMaxStrips && !strip_nonzero[is]) continue;
        const int i0 = is * kMr;
        const int iw = std::min(kMr, m - i0);
        chunk_micro(apack + static_cast<size_t>(is) * kMr * kc, bstrip, kc,
                    acc);
        for (int ii = 0; ii < iw; ++ii) {
          int64_t* crow = c + static_cast<size_t>(i0 + ii) * ldc + j0;
          const int64_t* arow = acc + ii * kNr;
          // Unsigned add: mod-2^64 accumulation without signed-overflow UB.
          for (int jj = 0; jj < jw; ++jj) {
            crow[jj] = static_cast<int64_t>(static_cast<uint64_t>(crow[jj]) +
                                            static_cast<uint64_t>(arow[jj]));
          }
        }
      }
    }
  }
  Bump(ec.stats().mm_pack_ns, pack_ns);
}

bool IsZeroOne(const Matrix& m) {
  for (int64_t v : m.data()) {
    if (v != 0 && v != 1) return false;
  }
  return true;
}

Matrix MultiplyBitSliced(const Matrix& a, const Matrix& b,
                         ExecContext* ctx) {
  FMMSW_CHECK(a.cols() == b.rows());
  FMMSW_DCHECK(IsZeroOne(a) && IsZeroOne(b) &&
               "bit-sliced counting product requires 0/1 inputs");
  ExecContext& ec = ExecContext::Resolve(ctx);
  Matrix out(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || k == 0 || n == 0) return out;
  Bump(ec.stats().mm_bitsliced_calls);
  const int words = (k + 63) / 64;
  Stopwatch sw;
  // Bit planes + counting output, held until the product returns.
  MemCharge charge(ec, (static_cast<int64_t>(m) + n) * words * 8 +
                           static_cast<int64_t>(m) * n * 8);
  std::vector<uint64_t> abits(static_cast<size_t>(m) * words, 0);
  std::vector<uint64_t> bbits(static_cast<size_t>(n) * words, 0);
  for (int i = 0; i < m; ++i) {
    const int64_t* row = a.RowPtr(i);
    uint64_t* dst = &abits[static_cast<size_t>(i) * words];
    for (int kk = 0; kk < k; ++kk) {
      dst[kk >> 6] |= static_cast<uint64_t>(row[kk] != 0) << (kk & 63);
    }
  }
  // B packs transposed: one k-bit plane per output column. A straight
  // per-row scatter (for each kk, conditionally set one bit in all n
  // planes) pays a mispredict-prone branch per element and strides the
  // whole n * words bbits array per row. Blocked transpose instead: for
  // each plane word (64 consecutive kk) and each tile of columns,
  // accumulate the tile's words branchlessly in a small local buffer
  // (compare -> shift -> or vectorizes) and store each exactly once; B's
  // row segments stream contiguously and the write set per tile is
  // kBitPackTile * 8 bytes. 2.8-5.2x over the scatter at n = 512..4096.
  constexpr int kBitPackTile = 512;
  uint64_t tile[kBitPackTile];
  for (int j0 = 0; j0 < n; j0 += kBitPackTile) {
    const int jb = std::min(kBitPackTile, n - j0);
    for (int w = 0; w < words; ++w) {
      std::memset(tile, 0, sizeof(uint64_t) * jb);
      const int k1 = std::min(k, (w + 1) * 64);
      for (int kk = w * 64; kk < k1; ++kk) {
        const int64_t* row = b.RowPtr(kk) + j0;
        const int shift = kk & 63;
        for (int j = 0; j < jb; ++j) {
          tile[j] |= static_cast<uint64_t>(row[j] != 0) << shift;
        }
      }
      for (int j = 0; j < jb; ++j) {
        bbits[static_cast<size_t>(j0 + j) * words + w] = tile[j];
      }
    }
  }
  Bump(ec.stats().mm_pack_ns, static_cast<int64_t>(sw.Seconds() * 1e9));
  ParallelFor(
      ec, FaultSite::kMm, m,
      [&](int64_t row_begin, int64_t row_end) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const uint64_t* arow = &abits[static_cast<size_t>(i) * words];
          int64_t* orow = out.RowPtr(i);
          for (int j = 0; j < n; ++j) {
            const uint64_t* bcol = &bbits[static_cast<size_t>(j) * words];
            int64_t count = 0;
            for (int w = 0; w < words; ++w) {
              count += __builtin_popcountll(arow[w] & bcol[w]);
            }
            orow[j] = count;
          }
        }
      },
      /*grain=*/8);
  return out;
}

Matrix CountingProduct(const Matrix& a, const Matrix& b, MmKernel kernel,
                       ExecContext* ctx) {
  switch (kernel) {
    case MmKernel::kStrassen:
      return MultiplyRectangular(a, b, kMmDefaultCutoff, ctx);
    case MmKernel::kBitSliced:
    case MmKernel::kBoolean:
      // Engines with a real (OR, AND) path dispatch to BitMatrix::Multiply
      // themselves; a Boolean request reaching a counting-only path means
      // the caller only tests entries for zero, so the bit-sliced product
      // (identical (+, x) results, word-parallel cost) is the right fit.
      if (IsZeroOne(a) && IsZeroOne(b)) return MultiplyBitSliced(a, b, ctx);
      return MultiplyBlocked(a, b, ctx);
    case MmKernel::kNaive:
      break;
  }
  return MultiplyBlocked(a, b, ctx);
}

}  // namespace fmmsw
