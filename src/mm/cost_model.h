#ifndef FMMSW_MM_COST_MODEL_H_
#define FMMSW_MM_COST_MODEL_H_

/// \file
/// The MM cost model used by the plan interpreter: omega-square(a,b,c)
/// (Eq. 6) on a log_N scale, plus concrete operation-count predictions for
/// choosing between a for-loop join and a matrix multiplication at
/// execution time (paper Section 1.1.2: low-degree parts favor
/// combinatorial processing, high-degree parts favor MM).

#include <cstdint>

namespace fmmsw {

/// Exponent of multiplying n^a x n^b by n^b x n^c via square blocking.
double OmegaSquareExponent(double a, double b, double c, double omega);

/// Predicted scalar-operation count for multiplying an (m x k) by (k x n)
/// matrix with the square-blocking Strassen kernel at the given omega.
double PredictedMmOps(int64_t m, int64_t k, int64_t n, double omega);

/// Predicted operation count for the combinatorial pairwise join with the
/// given input sizes and join selectivity-driven intermediate size.
double PredictedJoinOps(int64_t left, int64_t right, int64_t output);

}  // namespace fmmsw

#endif  // FMMSW_MM_COST_MODEL_H_
