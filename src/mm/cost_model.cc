#include "mm/cost_model.h"

#include <algorithm>
#include <cmath>

namespace fmmsw {

double OmegaSquareExponent(double a, double b, double c, double omega) {
  return a + b + c - (3.0 - omega) * std::min(a, std::min(b, c));
}

double PredictedMmOps(int64_t m, int64_t k, int64_t n, double omega) {
  const double dm = static_cast<double>(std::max<int64_t>(m, 1));
  const double dk = static_cast<double>(std::max<int64_t>(k, 1));
  const double dn = static_cast<double>(std::max<int64_t>(n, 1));
  const double d = std::min(dm, std::min(dk, dn));
  // (m/d)(k/d)(n/d) block multiplies of cost d^omega each.
  return (dm / d) * (dk / d) * (dn / d) * std::pow(d, omega);
}

double PredictedJoinOps(int64_t left, int64_t right, int64_t output) {
  return static_cast<double>(left) + static_cast<double>(right) +
         static_cast<double>(output);
}

}  // namespace fmmsw
