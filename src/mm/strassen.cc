#include <algorithm>

#include "mm/matrix.h"

namespace fmmsw {

namespace {

/// Square sub-matrix views are materialized as padded power-of-two square
/// matrices for the recursion; sizes here are small enough (heavy parts of
/// size N^{2/(w+1)}) that the copies are dwarfed by the multiply.
struct Sq {
  int n = 0;
  std::vector<int64_t> d;
  int64_t& At(int r, int c) { return d[static_cast<size_t>(r) * n + c]; }
  int64_t At(int r, int c) const { return d[static_cast<size_t>(r) * n + c]; }
};

Sq MakeSq(int n) {
  Sq s;
  s.n = n;
  s.d.assign(static_cast<size_t>(n) * n, 0);
  return s;
}

Sq Add(const Sq& a, const Sq& b) {
  Sq out = MakeSq(a.n);
  for (size_t i = 0; i < out.d.size(); ++i) out.d[i] = a.d[i] + b.d[i];
  return out;
}

Sq Sub(const Sq& a, const Sq& b) {
  Sq out = MakeSq(a.n);
  for (size_t i = 0; i < out.d.size(); ++i) out.d[i] = a.d[i] - b.d[i];
  return out;
}

Sq Quadrant(const Sq& a, int qr, int qc) {
  const int h = a.n / 2;
  Sq out = MakeSq(h);
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < h; ++j) {
      out.At(i, j) = a.At(qr * h + i, qc * h + j);
    }
  }
  return out;
}

void PlaceQuadrant(Sq* a, const Sq& q, int qr, int qc) {
  const int h = a->n / 2;
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < h; ++j) {
      a->At(qr * h + i, qc * h + j) = q.At(i, j);
    }
  }
}

Sq MulBase(const Sq& a, const Sq& b) {
  Sq out = MakeSq(a.n);
  for (int i = 0; i < a.n; ++i) {
    for (int k = 0; k < a.n; ++k) {
      const int64_t aik = a.At(i, k);
      if (aik == 0) continue;
      for (int j = 0; j < a.n; ++j) out.At(i, j) += aik * b.At(k, j);
    }
  }
  return out;
}

Sq StrassenRec(const Sq& a, const Sq& b, int cutoff) {
  if (a.n <= cutoff) return MulBase(a, b);
  const Sq a11 = Quadrant(a, 0, 0), a12 = Quadrant(a, 0, 1);
  const Sq a21 = Quadrant(a, 1, 0), a22 = Quadrant(a, 1, 1);
  const Sq b11 = Quadrant(b, 0, 0), b12 = Quadrant(b, 0, 1);
  const Sq b21 = Quadrant(b, 1, 0), b22 = Quadrant(b, 1, 1);
  const Sq m1 = StrassenRec(Add(a11, a22), Add(b11, b22), cutoff);
  const Sq m2 = StrassenRec(Add(a21, a22), b11, cutoff);
  const Sq m3 = StrassenRec(a11, Sub(b12, b22), cutoff);
  const Sq m4 = StrassenRec(a22, Sub(b21, b11), cutoff);
  const Sq m5 = StrassenRec(Add(a11, a12), b22, cutoff);
  const Sq m6 = StrassenRec(Sub(a21, a11), Add(b11, b12), cutoff);
  const Sq m7 = StrassenRec(Sub(a12, a22), Add(b21, b22), cutoff);
  Sq out = MakeSq(a.n);
  PlaceQuadrant(&out, Add(Sub(Add(m1, m4), m5), m7), 0, 0);
  PlaceQuadrant(&out, Add(m3, m5), 0, 1);
  PlaceQuadrant(&out, Add(m2, m4), 1, 0);
  PlaceQuadrant(&out, Add(Add(Sub(m1, m2), m3), m6), 1, 1);
  return out;
}

int NextPow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Strassen on an arbitrary square size via zero padding.
Sq StrassenSquare(const Sq& a, const Sq& b, int cutoff) {
  const int p = NextPow2(a.n);
  if (p == a.n) return StrassenRec(a, b, cutoff);
  Sq pa = MakeSq(p), pb = MakeSq(p);
  for (int i = 0; i < a.n; ++i) {
    for (int j = 0; j < a.n; ++j) {
      pa.At(i, j) = a.At(i, j);
      pb.At(i, j) = b.At(i, j);
    }
  }
  Sq pc = StrassenRec(pa, pb, cutoff);
  Sq out = MakeSq(a.n);
  for (int i = 0; i < a.n; ++i) {
    for (int j = 0; j < a.n; ++j) out.At(i, j) = pc.At(i, j);
  }
  return out;
}

}  // namespace

Matrix MultiplyStrassen(const Matrix& a, const Matrix& b, int cutoff) {
  FMMSW_CHECK(a.cols() == b.rows());
  // Embed into a square of the max dimension; fine for the near-square
  // shapes the engine produces (use MultiplyRectangular otherwise).
  const int n = std::max({a.rows(), a.cols(), b.cols()});
  Sq sa = MakeSq(n), sb = MakeSq(n);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) sa.At(i, j) = a.At(i, j);
  }
  for (int i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) sb.At(i, j) = b.At(i, j);
  }
  Sq sc = StrassenSquare(sa, sb, cutoff);
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) out.At(i, j) = sc.At(i, j);
  }
  return out;
}

Matrix MultiplyRectangular(const Matrix& a, const Matrix& b, int cutoff) {
  FMMSW_CHECK(a.cols() == b.rows());
  const int d = std::min({a.rows(), a.cols(), b.cols()});
  if (d == 0) return Matrix(a.rows(), b.cols());
  // Partition into ceil(dim/d) blocks per axis and multiply d x d blocks
  // with Strassen — the Eq. (6) scheme.
  const int ra = (a.rows() + d - 1) / d;
  const int ca = (a.cols() + d - 1) / d;
  const int cb = (b.cols() + d - 1) / d;
  Matrix out(a.rows(), b.cols());
  for (int bi = 0; bi < ra; ++bi) {
    const int i0 = bi * d, i1 = std::min(i0 + d, a.rows());
    for (int bj = 0; bj < cb; ++bj) {
      const int j0 = bj * d, j1 = std::min(j0 + d, b.cols());
      for (int bk = 0; bk < ca; ++bk) {
        const int k0 = bk * d, k1 = std::min(k0 + d, a.cols());
        Matrix ablk(i1 - i0, k1 - k0), bblk(k1 - k0, j1 - j0);
        for (int i = i0; i < i1; ++i) {
          for (int k = k0; k < k1; ++k) ablk.At(i - i0, k - k0) = a.At(i, k);
        }
        for (int k = k0; k < k1; ++k) {
          for (int j = j0; j < j1; ++j) bblk.At(k - k0, j - j0) = b.At(k, j);
        }
        Matrix cblk = MultiplyStrassen(ablk, bblk, cutoff);
        for (int i = i0; i < i1; ++i) {
          for (int j = j0; j < j1; ++j) {
            out.At(i, j) += cblk.At(i - i0, j - j0);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace fmmsw
