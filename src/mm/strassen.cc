#include <algorithm>
#include <vector>

#include "core/exec_context.h"
#include "mm/kernel.h"
#include "mm/matrix.h"
#include "util/parallel.h"

namespace fmmsw {

namespace {

/// Strided view into a square sub-matrix. Quadrants are views — the
/// recursion never copies operands, and all temporaries live in one
/// scratch buffer allocated up front (the previous implementation
/// allocated ~30 vectors per recursion step, which dominated its runtime).
struct View {
  const int64_t* p;
  size_t stride;
  const int64_t* Row(int r) const { return p + static_cast<size_t>(r) * stride; }
};

struct MutView {
  int64_t* p;
  size_t stride;
  int64_t* Row(int r) const { return p + static_cast<size_t>(r) * stride; }
};

/// Per-multiply kernel state threaded through the recursion: the inner
/// kernel level is resolved once per top-level call, and one pack scratch
/// serves every (sequential) base-case product.
struct KernelCtx {
  SimdLevel level;
  ExecContext* ec;
  MmPackScratch* pack;
  QueryGuard* guard;
};

View Quad(View a, int n, int qr, int qc) {
  const int h = n / 2;
  return {a.p + static_cast<size_t>(qr) * h * a.stride + qc * h, a.stride};
}

MutView Quad(MutView a, int n, int qr, int qc) {
  const int h = n / 2;
  return {a.p + static_cast<size_t>(qr) * h * a.stride + qc * h, a.stride};
}

/// dst (contiguous n x n) = a + b.
void AddInto(View a, View b, int64_t* dst, int n) {
  for (int i = 0; i < n; ++i) {
    const int64_t* ra = a.Row(i);
    const int64_t* rb = b.Row(i);
    int64_t* rd = dst + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) rd[j] = ra[j] + rb[j];
  }
}

/// dst (contiguous n x n) = a - b.
void SubInto(View a, View b, int64_t* dst, int n) {
  for (int i = 0; i < n; ++i) {
    const int64_t* ra = a.Row(i);
    const int64_t* rb = b.Row(i);
    int64_t* rd = dst + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) rd[j] = ra[j] - rb[j];
  }
}

/// c += m (or c -= m with sign = -1), m contiguous.
void Accumulate(MutView c, const int64_t* m, int n, int64_t sign) {
  for (int i = 0; i < n; ++i) {
    int64_t* rc = c.Row(i);
    const int64_t* rm = m + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) rc[j] += sign * rm[j];
  }
}

/// c = a * b (micro-kernel base case; c is zeroed first).
void MulBase(View a, View b, MutView c, int n, const KernelCtx& kc) {
  for (int i = 0; i < n; ++i) {
    int64_t* rc = c.Row(i);
    std::fill(rc, rc + n, 0);
  }
  GemmAddAt(kc.level, a.p, static_cast<int>(a.stride), b.p,
            static_cast<int>(b.stride), c.p, static_cast<int>(c.stride), n,
            n, n, kc.ec, kc.pack);
}

/// c = a * b, n a power of two. `scratch` must hold StrassenScratch(n)
/// int64s; recursive calls run sequentially and reuse the tail.
void StrassenRec(View a, View b, MutView c, int n, int cutoff,
                 int64_t* scratch, const KernelCtx& kc) {
  if (n <= cutoff) {
    MulBase(a, b, c, n, kc);
    return;
  }
  // One poll per recursion node: 7^depth nodes, each doing O(h^2) adds
  // and a recursive product — a natural morsel boundary.
  kc.guard->Poll(FaultSite::kMm);
  const int h = n / 2;
  const size_t q = static_cast<size_t>(h) * h;
  int64_t* t1 = scratch;
  int64_t* t2 = scratch + q;
  int64_t* m = scratch + 2 * q;
  int64_t* tail = scratch + 3 * q;
  const View a11 = Quad(a, n, 0, 0), a12 = Quad(a, n, 0, 1);
  const View a21 = Quad(a, n, 1, 0), a22 = Quad(a, n, 1, 1);
  const View b11 = Quad(b, n, 0, 0), b12 = Quad(b, n, 0, 1);
  const View b21 = Quad(b, n, 1, 0), b22 = Quad(b, n, 1, 1);
  const MutView c11 = Quad(c, n, 0, 0), c12 = Quad(c, n, 0, 1);
  const MutView c21 = Quad(c, n, 1, 0), c22 = Quad(c, n, 1, 1);
  for (int i = 0; i < n; ++i) std::fill(c.Row(i), c.Row(i) + n, 0);
  const View vt1{t1, static_cast<size_t>(h)};
  const View vt2{t2, static_cast<size_t>(h)};
  const MutView vm{m, static_cast<size_t>(h)};

  // M1 = (A11 + A22)(B11 + B22): C11 += M1, C22 += M1.
  AddInto(a11, a22, t1, h);
  AddInto(b11, b22, t2, h);
  StrassenRec(vt1, vt2, vm, h, cutoff, tail, kc);
  Accumulate(c11, m, h, 1);
  Accumulate(c22, m, h, 1);
  // M2 = (A21 + A22) B11: C21 += M2, C22 -= M2.
  AddInto(a21, a22, t1, h);
  StrassenRec(vt1, b11, vm, h, cutoff, tail, kc);
  Accumulate(c21, m, h, 1);
  Accumulate(c22, m, h, -1);
  // M3 = A11 (B12 - B22): C12 += M3, C22 += M3.
  SubInto(b12, b22, t2, h);
  StrassenRec(a11, vt2, vm, h, cutoff, tail, kc);
  Accumulate(c12, m, h, 1);
  Accumulate(c22, m, h, 1);
  // M4 = A22 (B21 - B11): C11 += M4, C21 += M4.
  SubInto(b21, b11, t2, h);
  StrassenRec(a22, vt2, vm, h, cutoff, tail, kc);
  Accumulate(c11, m, h, 1);
  Accumulate(c21, m, h, 1);
  // M5 = (A11 + A12) B22: C11 -= M5, C12 += M5.
  AddInto(a11, a12, t1, h);
  StrassenRec(vt1, b22, vm, h, cutoff, tail, kc);
  Accumulate(c11, m, h, -1);
  Accumulate(c12, m, h, 1);
  // M6 = (A21 - A11)(B11 + B12): C22 += M6.
  SubInto(a21, a11, t1, h);
  AddInto(b11, b12, t2, h);
  StrassenRec(vt1, vt2, vm, h, cutoff, tail, kc);
  Accumulate(c22, m, h, 1);
  // M7 = (A12 - A22)(B21 + B22): C11 += M7.
  SubInto(a12, a22, t1, h);
  AddInto(b21, b22, t2, h);
  StrassenRec(vt1, vt2, vm, h, cutoff, tail, kc);
  Accumulate(c11, m, h, 1);
}

/// Scratch requirement: 3 quadrant temporaries per level, reused across
/// the 7 sequential recursive calls -> 3 * sum_i (n / 2^i)^2 / 4 < n^2.
size_t StrassenScratch(int n) {
  size_t total = 0;
  while (n > 1) {
    const size_t h = static_cast<size_t>(n) / 2;
    total += 3 * h * h;
    n /= 2;
  }
  return total;
}

int NextPow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Matrix MultiplyStrassen(const Matrix& a, const Matrix& b, int cutoff,
                        ExecContext* ctx) {
  FMMSW_CHECK(a.cols() == b.rows());
  if (cutoff < 2) cutoff = 2;
  // Embed into a zero-padded power-of-two square of the max dimension;
  // fine for the near-square shapes the engine produces (use
  // MultiplyRectangular otherwise).
  if (a.rows() == 0 || a.cols() == 0 || b.cols() == 0) {
    return Matrix(a.rows(), b.cols());
  }
  const int n = std::max({a.rows(), a.cols(), b.cols()});
  if (n <= cutoff) {
    // Below the recursion cutoff the whole product is one micro-kernel
    // panel call on the original buffers — no pow2 embedding, no copies.
    Matrix out(a.rows(), b.cols());
    MmPackScratch pack;
    GemmAddAt(ActiveSimdLevel(), a.RowPtr(0), a.cols(), b.RowPtr(0),
              b.cols(), out.RowPtr(0), out.cols(), a.rows(), a.cols(),
              b.cols(), ctx, &pack);
    return out;
  }
  ExecContext& ec = ExecContext::Resolve(ctx);
  const int p = NextPow2(n);
  // Three p x p pads plus the recursion scratch, held until the result
  // is copied out.
  MemCharge charge(ec, (3 * static_cast<int64_t>(p) * p +
                        static_cast<int64_t>(StrassenScratch(p))) *
                           8);
  std::vector<int64_t> pa(static_cast<size_t>(p) * p, 0);
  std::vector<int64_t> pb(static_cast<size_t>(p) * p, 0);
  std::vector<int64_t> pc(static_cast<size_t>(p) * p, 0);
  for (int i = 0; i < a.rows(); ++i) {
    std::copy(a.RowPtr(i), a.RowPtr(i) + a.cols(),
              pa.begin() + static_cast<size_t>(i) * p);
  }
  for (int i = 0; i < b.rows(); ++i) {
    std::copy(b.RowPtr(i), b.RowPtr(i) + b.cols(),
              pb.begin() + static_cast<size_t>(i) * p);
  }
  std::vector<int64_t> scratch(StrassenScratch(p));
  MmPackScratch pack;
  const KernelCtx kc{ActiveSimdLevel(), &ec, &pack, &ec.guard()};
  StrassenRec({pa.data(), static_cast<size_t>(p)},
              {pb.data(), static_cast<size_t>(p)},
              {pc.data(), static_cast<size_t>(p)}, p, cutoff,
              scratch.data(), kc);
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    std::copy(pc.begin() + static_cast<size_t>(i) * p,
              pc.begin() + static_cast<size_t>(i) * p + b.cols(),
              out.RowPtr(i));
  }
  return out;
}

Matrix MultiplyRectangular(const Matrix& a, const Matrix& b, int cutoff,
                           ExecContext* ctx) {
  FMMSW_CHECK(a.cols() == b.rows());
  ExecContext& ec = ExecContext::Resolve(ctx);
  const int d = std::min({a.rows(), a.cols(), b.cols()});
  if (d == 0) return Matrix(a.rows(), b.cols());
  // Partition into ceil(dim/d) blocks per axis — the Eq. (6) scheme. Each
  // output block is owned by one task, so the (bi, bj) grid parallelizes
  // without write conflicts. Blocks at or below the Strassen cutoff skip
  // the copy + pow2 padding entirely: the packed micro-kernel multiplies
  // the strided views in place and accumulates straight into `out`.
  const int ra = (a.rows() + d - 1) / d;
  const int ca = (a.cols() + d - 1) / d;
  const int cb = (b.cols() + d - 1) / d;
  const SimdLevel level = ActiveSimdLevel();
  Matrix out(a.rows(), b.cols());
  MemCharge charge(ec, static_cast<int64_t>(a.rows()) * b.cols() * 8);
  ParallelFor(
      ec, FaultSite::kMm, static_cast<int64_t>(ra) * cb,
      [&](int64_t begin, int64_t end) {
        for (int64_t task = begin; task < end; ++task) {
          const int bi = static_cast<int>(task / cb);
          const int bj = static_cast<int>(task % cb);
          const int i0 = bi * d, i1 = std::min(i0 + d, a.rows());
          const int j0 = bj * d, j1 = std::min(j0 + d, b.cols());
          for (int bk = 0; bk < ca; ++bk) {
            const int k0 = bk * d, k1 = std::min(k0 + d, a.cols());
            if (d <= cutoff) {
              // nullptr scratch -> persistent per-worker context arena
              // (a callback-local MmPackScratch would re-allocate per
              // claimed block; see MultiplyBlocked).
              GemmAddAt(level, a.RowPtr(i0) + k0, a.cols(),
                        b.RowPtr(k0) + j0, b.cols(), out.RowPtr(i0) + j0,
                        out.cols(), i1 - i0, k1 - k0, j1 - j0, &ec,
                        nullptr);
              continue;
            }
            Matrix ablk(i1 - i0, k1 - k0), bblk(k1 - k0, j1 - j0);
            for (int i = i0; i < i1; ++i) {
              for (int k = k0; k < k1; ++k) {
                ablk.At(i - i0, k - k0) = a.At(i, k);
              }
            }
            for (int k = k0; k < k1; ++k) {
              for (int j = j0; j < j1; ++j) {
                bblk.At(k - k0, j - j0) = b.At(k, j);
              }
            }
            Matrix cblk = MultiplyStrassen(ablk, bblk, cutoff, &ec);
            for (int i = i0; i < i1; ++i) {
              for (int j = j0; j < j1; ++j) {
                out.At(i, j) += cblk.At(i - i0, j - j0);
              }
            }
          }
        }
      });
  return out;
}

}  // namespace fmmsw
