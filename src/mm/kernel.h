#ifndef FMMSW_MM_KERNEL_H_
#define FMMSW_MM_KERNEL_H_

/// \file
/// Vectorized micro-kernel layer under the matrix-multiply hot paths.
///
/// The heavy-part plans reduce join evaluation to dense counting / Boolean
/// matrix products (paper Section 2.5, Appendix E.6), so the MM base case
/// is the innermost loop of every hybrid engine path. This layer supplies
/// it:
///
///   - GemmAddAt: a packed, register-blocked int64 panel product. A and B
///     are copied into contiguous tile-aligned scratch (MR x kc and
///     NR x kc strips, zero-padded edge tiles), then an unrolled micro
///     kernel accumulates MR x NR output tiles in registers. The inner
///     kernel is selected at runtime: AVX2 (64-bit lanes, the low-64 mul
///     emulated with three 32x32 vpmuludq products) when the CPU supports
///     it, a scalar strip kernel otherwise. Both accumulate with
///     well-defined mod-2^64 (unsigned) arithmetic, so every SIMD level
///     produces identical bits for any input, and all agree with
///     MultiplyNaive whenever its signed products and sums stay within
///     int64 (always true for the engines' indicator-derived matrices;
///     naive's own signed overflow would be UB).
///   - MultiplyBitSliced: a counting product for 0/1 indicator matrices —
///     exactly what the engines' heavy-part products are. Rows of A and
///     columns of B are packed into bit-planes; out[i][j] is the popcount
///     of a word-AND, 64 multiply-adds per word op.
///
/// Dispatch: ActiveSimdLevel() probes the CPU once (cpuid via
/// __builtin_cpu_supports) and honors the FMMSW_SIMD environment variable
/// ("off"/"scalar" forces the scalar kernels, "avx2" requests AVX2,
/// clamped to what the hardware supports). Tests drive both paths
/// in-process through the explicit-level entry points.
///
/// MultiplyBlocked, the Strassen cutoff base case, and the
/// MultiplyRectangular block products (mm/matrix.h) all route through
/// GemmAddAt; kernel launches and packing time are accounted on the
/// ExecContext (mm_base_calls, mm_simd_calls, mm_bitsliced_calls,
/// mm_pack_ns).

#include <cstdint>
#include <vector>

#include "mm/matrix.h"

namespace fmmsw {

class ExecContext;

/// Inner-kernel instruction sets, in increasing order of capability.
enum class SimdLevel {
  kScalar = 0,  ///< portable strip kernel
  kAvx2 = 1,    ///< 4 x 64-bit lanes, emulated 64-bit multiply
};

/// Highest level this CPU (and build) can execute.
SimdLevel MaxSimdLevel();

/// Level selected for the process: FMMSW_SIMD ("off"/"scalar" -> scalar,
/// "avx2" -> AVX2 if supported, unset/"auto" -> MaxSimdLevel), cached on
/// first call.
SimdLevel ActiveSimdLevel();

/// Short human-readable name ("scalar", "avx2") for benches and traces.
const char* SimdLevelName(SimdLevel level);

/// Micro-kernel tile: MR output rows by NR output columns accumulate in
/// registers. Exposed so tests can target exact-multiple and edge shapes.
inline constexpr int kMmTileRows = 4;  // MR
inline constexpr int kMmTileCols = 8;  // NR

/// Reusable packing buffers for GemmAddAt. Callers that issue many panel
/// products sequentially (the Strassen recursion) pass one scratch so the
/// panels are allocated once; without it GemmAddAt borrows a free
/// ExecContext worker arena, or falls back to call-local buffers.
struct MmPackScratch {
  std::vector<uint64_t> a_pack, b_pack;
};

/// c (m x n, row stride ldc) += a (m x k, stride lda) * b (k x n, stride
/// ldb). Exact mod-2^64 int64 product; degenerate shapes (any dimension
/// <= 0) are no-ops. Single-threaded — callers parallelize over disjoint
/// row slabs of c. `level` picks the inner kernel: production callers
/// resolve ActiveSimdLevel() once per product, tests compare levels
/// in-process.
void GemmAddAt(SimdLevel level, const int64_t* a, int lda, const int64_t* b,
               int ldb, int64_t* c, int ldc, int m, int k, int n,
               ExecContext* ctx = nullptr, MmPackScratch* scratch = nullptr);

/// True if every entry of m is 0 or 1 (the engines' indicator matrices).
bool IsZeroOne(const Matrix& m);

/// Bit-sliced counting product for 0/1 matrices: packs rows of a and
/// columns of b into k-bit planes and accumulates popcount(word AND word),
/// so each 64-wide slice of the inner dimension costs one AND + popcount
/// instead of 64 int64 multiply-adds. Requires 0/1 inputs (DCHECKed; the
/// engines know their indicator matrices, other callers go through
/// CountingProduct which verifies first). Row blocks run on the context's
/// pool. Exact: out == MultiplyNaive(a, b).
Matrix MultiplyBitSliced(const Matrix& a, const Matrix& b,
                         ExecContext* ctx = nullptr);

/// Counting-product kernel choice for the engine hybrid paths (the
/// Boolean (OR, AND) option is BitMatrix::Multiply, dispatched by the
/// engines themselves).
enum class MmKernel {
  kBoolean,    ///< bit-packed (OR, AND) product
  kStrassen,   ///< counting product via Strassen (omega = log2 7)
  kNaive,      ///< cubic counting product (blocked + micro-kernel)
  kBitSliced,  ///< 0/1 counting via bit-planes (falls back to cubic)
};

/// The counting product under `kernel`: kStrassen -> MultiplyRectangular,
/// kNaive -> MultiplyBlocked, kBitSliced -> MultiplyBitSliced when both
/// inputs verify as 0/1 (MultiplyBlocked otherwise). All choices return
/// results bit-identical to MultiplyNaive(a, b); kBoolean is invalid here.
Matrix CountingProduct(const Matrix& a, const Matrix& b, MmKernel kernel,
                       ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_MM_KERNEL_H_
