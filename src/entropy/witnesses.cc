#include "entropy/witnesses.h"

#include "util/check.h"

namespace fmmsw {

int AtomComposition::AddAtom(const Rational& entropy) {
  atom_entropy_.push_back(entropy);
  atom_vars_.emplace_back();
  return static_cast<int>(atom_entropy_.size()) - 1;
}

void AtomComposition::Attach(int var, int atom) {
  FMMSW_CHECK(atom >= 0 && atom < static_cast<int>(atom_vars_.size()));
  atom_vars_[atom].push_back(var);
}

SetFn<Rational> AtomComposition::Build(VarSet universe) const {
  SetFn<Rational> h(universe);
  for (VarSet s : Subsets(universe)) {
    Rational total(0);
    for (size_t atom = 0; atom < atom_entropy_.size(); ++atom) {
      bool owned = false;
      for (int v : atom_vars_[atom]) {
        if (s.Contains(v)) {
          owned = true;
          break;
        }
      }
      if (owned) total += atom_entropy_[atom];
    }
    h[s] = total;
  }
  return h;
}

SetFn<Rational> TriangleWitness(const Rational& omega) {
  const Rational denom = omega + Rational(1);
  const Rational big = (omega - Rational(2)) + Rational(1);  // w - 1
  AtomComposition c;
  int a = c.AddAtom(big / denom);
  int b = c.AddAtom(big / denom);
  int cc = c.AddAtom(big / denom);
  int d = c.AddAtom((Rational(3) - omega) / denom);
  c.Attach(0, a);  // X = (a, d)
  c.Attach(0, d);
  c.Attach(1, b);  // Y = (b, d)
  c.Attach(1, d);
  c.Attach(2, cc);  // Z = (c, d)
  c.Attach(2, d);
  return c.Build(VarSet::Full(3));
}

SetFn<Rational> CliqueWitness(int k) {
  AtomComposition c;
  for (int v = 0; v < k; ++v) {
    int a = c.AddAtom(Rational(1, 2));
    c.Attach(v, a);
  }
  return c.Build(VarSet::Full(k));
}

SetFn<Rational> FourCycleWitnessHigh() {
  // Variables of Hypergraph::Cycle(4): X=0, Y=1, Z=2, W=3 with edges
  // XY, YZ, ZW, WX. Lemma C.9 Case 1: X=(ab), Y=(cd), Z=(de), W=(ae).
  AtomComposition c;
  int a = c.AddAtom(Rational(1, 4));
  int b = c.AddAtom(Rational(1, 4));
  int cc = c.AddAtom(Rational(1, 4));
  int d = c.AddAtom(Rational(1, 4));
  int e = c.AddAtom(Rational(1, 2));
  c.Attach(0, a);
  c.Attach(0, b);
  c.Attach(1, cc);
  c.Attach(1, d);
  c.Attach(2, d);
  c.Attach(2, e);
  c.Attach(3, a);
  c.Attach(3, e);
  return c.Build(VarSet::Full(4));
}

SetFn<Rational> FourCycleWitnessLow(const Rational& omega) {
  // Lemma C.9 Case 2: atoms a = 2(w-1)/(2w+1), b..e = (w-1)/(2w+1),
  // f = (5-2w)/(2w+1); X=(bcf), Y=(def), Z=(aef), W=(abf).
  const Rational denom = Rational(2) * omega + Rational(1);
  const Rational w1 = (omega - Rational(1)) / denom;
  AtomComposition c;
  int a = c.AddAtom(Rational(2) * w1);  // 2(w-1)/(2w+1)
  int b = c.AddAtom(w1);
  int cc = c.AddAtom(w1);
  int d = c.AddAtom(w1);
  int e = c.AddAtom(w1);
  int f = c.AddAtom((Rational(5) - Rational(2) * omega) / denom);
  c.Attach(0, b);
  c.Attach(0, cc);
  c.Attach(0, f);
  c.Attach(1, d);
  c.Attach(1, e);
  c.Attach(1, f);
  c.Attach(2, a);
  c.Attach(2, e);
  c.Attach(2, f);
  c.Attach(3, a);
  c.Attach(3, b);
  c.Attach(3, f);
  return c.Build(VarSet::Full(4));
}

SetFn<Rational> Pyramid3Witness(const Rational& omega) {
  // Lemma C.13, variable order Y=0, X1=1, X2=2, X3=3.
  const Rational inv = Rational(1) / omega;
  SetFn<Rational> h(VarSet::Full(4));
  const VarSet y{0};
  for (VarSet s : Subsets(VarSet::Full(4))) {
    const bool has_y = s.ContainsAll(y);
    const int nx = (s - y).size();
    Rational v(0);
    if (!has_y) {
      // h of nx base variables: 1/w each, capped at 1 for all three.
      if (nx == 3) {
        v = Rational(1);
      } else {
        v = Rational(nx) * inv;
      }
    } else {
      switch (nx) {
        case 0:
          v = Rational(1) - inv;  // h(Y)
          break;
        case 1:
          v = Rational(1);  // h(Xi Y)
          break;
        case 2:
          v = (omega + Rational(1)) * inv;  // h(Xi Xj Y)
          break;
        case 3:
          v = Rational(2) - inv;  // h(all)
          break;
      }
    }
    h[s] = v;
  }
  return h;
}

}  // namespace fmmsw
