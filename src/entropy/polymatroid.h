#ifndef FMMSW_ENTROPY_POLYMATROID_H_
#define FMMSW_ENTROPY_POLYMATROID_H_

/// \file
/// Polymatroids and the Shannon cone (paper Section 3, Eq. 14-16).
///
/// A polymatroid is a set function h : 2^V -> R+ with h(empty) = 0 that is
/// monotone and submodular. The cone Gamma of all polymatroids is described
/// exactly by the *elemental* Shannon inequalities, which is what the width
/// LPs use:
///   - monotonicity:   h(V) - h(V \ {i}) >= 0            (one per vertex)
///   - submodularity:  h(Si) + h(Sj) - h(Sij) - h(S) >= 0
///                     for i < j and S subset of V \ {i,j}.
/// Edge-domination ED (h(e) <= 1 for every hyperedge) models relations of
/// size N on a log_N scale.

#include <vector>

#include "hypergraph/hypergraph.h"
#include "lp/model.h"
#include "util/check.h"
#include "util/rational.h"
#include "util/varset.h"

namespace fmmsw {

/// A set function over subsets of a fixed universe, stored densely by mask.
/// Storage is sized by the universe (masks of subsets are <= the universe
/// mask), not by kMaxVars — the width LPs construct one of these per solve,
/// so a 4-variable query allocates 16 slots instead of 65536.
template <typename T>
class SetFn {
 public:
  SetFn() : universe_() {}
  explicit SetFn(VarSet universe)
      : universe_(universe),
        values_(static_cast<size_t>(universe.mask()) + 1, T{}) {}

  VarSet universe() const { return universe_; }

  T& operator[](VarSet s) {
    FMMSW_DCHECK(universe_.ContainsAll(s));
    return values_[s.mask()];
  }
  const T& operator[](VarSet s) const {
    FMMSW_DCHECK(universe_.ContainsAll(s));
    return values_[s.mask()];
  }

  friend bool operator==(const SetFn& a, const SetFn& b) {
    return a.universe_ == b.universe_ && a.values_ == b.values_;
  }
  friend bool operator!=(const SetFn& a, const SetFn& b) { return !(a == b); }

 private:
  VarSet universe_;
  std::vector<T> values_;
};

/// An elemental Shannon inequality sum(pos) - sum(neg) >= 0, with empty-set
/// terms already dropped.
struct ElementalInequality {
  std::vector<VarSet> pos;
  std::vector<VarSet> neg;
  bool is_monotonicity = false;
};

/// All elemental inequalities generating Gamma over `universe`.
std::vector<ElementalInequality> ElementalInequalities(VarSet universe);

/// Checks h(empty)==0 plus every elemental inequality.
template <typename T>
bool IsPolymatroid(const SetFn<T>& h) {
  if (!(h[VarSet::Empty()] == T(0))) return false;
  for (const auto& ineq : ElementalInequalities(h.universe())) {
    T lhs(0);
    for (VarSet s : ineq.pos) lhs += h[s];
    for (VarSet s : ineq.neg) lhs -= h[s];
    if (lhs < T(0)) return false;
  }
  return true;
}

/// Checks h(e) <= 1 for every hyperedge of `hg`.
template <typename T>
bool IsEdgeDominated(const Hypergraph& hg, const SetFn<T>& h) {
  for (const VarSet& e : hg.edges()) {
    if (h[e] > T(1)) return false;
  }
  return true;
}

/// Builds LPs over Gamma intersect ED for a hypergraph: one LP variable per
/// non-empty subset of the vertex set, Shannon + edge-domination rows, and
/// helpers to append h(S) / h(Y|X) terms to further rows. This is the
/// common substrate of the subw LPs (Eq. 39) and the w-subw LPs (Eq. 34).
template <typename T>
class PolymatroidLp {
 public:
  explicit PolymatroidLp(const Hypergraph& hg)
      : universe_(hg.vertices()),
        var_of_(static_cast<size_t>(universe_.mask()) + 1, -1) {
    for (VarSet s : Subsets(universe_)) {
      if (s.empty()) continue;
      var_of_[s.mask()] = model_.AddVar();
    }
    for (const auto& ineq : ElementalInequalities(universe_)) {
      auto& row = model_.AddRow(Sense::kGe, T(0), "shannon");
      for (VarSet s : ineq.pos) AppendH(&row.coeffs, s, T(1));
      for (VarSet s : ineq.neg) AppendH(&row.coeffs, s, T(-1));
    }
    for (const VarSet& e : hg.edges()) {
      auto& row = model_.AddRow(Sense::kLe, T(1), "edge-dom");
      AppendH(&row.coeffs, e, T(1));
    }
  }

  LpModel<T>& model() { return model_; }
  const LpModel<T>& model() const { return model_; }
  VarSet universe() const { return universe_; }

  /// LP variable index of h(S); S must be a non-empty subset of the universe.
  int Var(VarSet s) const {
    FMMSW_CHECK(universe_.ContainsAll(s) && !s.empty());
    return var_of_[s.mask()];
  }

  /// Appends coeff * h(s) (no-op for the empty set, whose h is 0).
  void AppendH(std::vector<std::pair<int, T>>* coeffs, VarSet s,
               T coeff) const {
    if (s.empty()) return;
    coeffs->emplace_back(Var(s), coeff);
  }

  /// Appends coeff * h(Y|X) = coeff * (h(XY) - h(X)).
  void AppendConditional(std::vector<std::pair<int, T>>* coeffs, VarSet y,
                         VarSet x, T coeff) const {
    AppendH(coeffs, x | y, coeff);
    AppendH(coeffs, x, -coeff);
  }

  /// Extracts the h solution of a solved LP into a SetFn.
  SetFn<T> ExtractSolution(const LpResult<T>& res) const {
    SetFn<T> h(universe_);
    for (VarSet s : Subsets(universe_)) {
      if (s.empty()) continue;
      h[s] = res.primal[Var(s)];
    }
    return h;
  }

 private:
  VarSet universe_;
  LpModel<T> model_;
  std::vector<int> var_of_;
};

}  // namespace fmmsw

#endif  // FMMSW_ENTROPY_POLYMATROID_H_
