#include "entropy/polymatroid.h"

namespace fmmsw {

std::vector<ElementalInequality> ElementalInequalities(VarSet universe) {
  std::vector<ElementalInequality> out;
  const std::vector<int> members = universe.Members();
  // Elemental monotonicity: h(V) - h(V \ {i}) >= 0.
  for (int i : members) {
    ElementalInequality ineq;
    ineq.is_monotonicity = true;
    ineq.pos.push_back(universe);
    VarSet rest = universe;
    rest.Remove(i);
    if (!rest.empty()) ineq.neg.push_back(rest);
    out.push_back(std::move(ineq));
  }
  // Elemental submodularity: h(S+i) + h(S+j) - h(S+i+j) - h(S) >= 0.
  for (size_t a = 0; a < members.size(); ++a) {
    for (size_t b = a + 1; b < members.size(); ++b) {
      const int i = members[a], j = members[b];
      VarSet others = universe;
      others.Remove(i);
      others.Remove(j);
      for (VarSet s : Subsets(others)) {
        ElementalInequality ineq;
        VarSet si = s, sj = s, sij = s;
        si.Add(i);
        sj.Add(j);
        sij.Add(i);
        sij.Add(j);
        ineq.pos.push_back(si);
        ineq.pos.push_back(sj);
        ineq.neg.push_back(sij);
        if (!s.empty()) ineq.neg.push_back(s);
        out.push_back(std::move(ineq));
      }
    }
  }
  return out;
}

}  // namespace fmmsw
