#ifndef FMMSW_ENTROPY_WITNESSES_H_
#define FMMSW_ENTROPY_WITNESSES_H_

/// \file
/// The explicit lower-bound polymatroids the paper exhibits in Appendix C
/// (Figures 2-4). Most are built from compositions of independent "atoms":
/// each query variable is a tuple of atoms, and h(S) is the total entropy
/// of the atoms underneath S — such functions are automatically entropic,
/// hence polymatroids. The 3-pyramid witness (Lemma C.13) is given directly
/// by its value table. Tests verify each witness is a valid edge-dominated
/// polymatroid and that it attains the claimed width.

#include "entropy/polymatroid.h"
#include "util/rational.h"

namespace fmmsw {

/// Builds a polymatroid from independent atoms: variable v owns the atoms
/// in var_atoms[v]; h(S) = sum of entropies of the union of owned atoms.
class AtomComposition {
 public:
  /// Adds an atom with the given entropy; returns its id.
  int AddAtom(const Rational& entropy);

  /// Declares that variable `var` contains atom `atom`.
  void Attach(int var, int atom);

  /// Materializes h over the given universe.
  SetFn<Rational> Build(VarSet universe) const;

 private:
  std::vector<Rational> atom_entropy_;
  std::vector<std::vector<int>> atom_vars_;  // atom -> owning variables
};

/// Lemma C.5 / Figure 2: the triangle witness with h(X)=h(Y)=h(Z)=2/(w+1),
/// pairwise 1, total 2w/(w+1). Valid for any w in [2,3].
SetFn<Rational> TriangleWitness(const Rational& omega);

/// Lemmas C.6-C.8: k independent variables of entropy 1/2 each (the clique
/// witness; attains (w+1)/2, w/2+1 and the general k-clique value).
SetFn<Rational> CliqueWitness(int k);

/// Lemma C.9 Case 1 (w >= 5/2): the 4-cycle witness from atoms
/// a..d = 1/4, e = 1/2.
SetFn<Rational> FourCycleWitnessHigh();

/// Lemma C.9 Case 2 (w < 5/2): the 4-cycle witness parameterized by w.
SetFn<Rational> FourCycleWitnessLow(const Rational& omega);

/// Lemma C.13 / Figure 4: the 3-pyramid witness (value table), attaining
/// 2 - 1/w. Variable order: Y = 0, X1..X3 = 1..3 (Hypergraph::Pyramid(3)).
SetFn<Rational> Pyramid3Witness(const Rational& omega);

}  // namespace fmmsw

#endif  // FMMSW_ENTROPY_WITNESSES_H_
