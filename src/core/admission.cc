#include "core/admission.h"

#include <algorithm>
#include <chrono>

namespace fmmsw {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {}

AdmissionController::Ticket& AdmissionController::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    if (controller_ != nullptr) controller_->Release(cls_);
    controller_ = other.controller_;
    cls_ = other.cls_;
    other.controller_ = nullptr;
  }
  return *this;
}

AdmissionController::Ticket::~Ticket() {
  if (controller_ != nullptr) controller_->Release(cls_);
}

ExecResult AdmissionController::Admit(QueryClass cls,
                                      const QueryLimits& limits,
                                      ExecContext& ec, Ticket* ticket) {
  const int c = static_cast<int>(cls);
  const auto start = std::chrono::steady_clock::now();
  MutexLock lock(&mu_);
  // Fast path: free slot and nobody queued ahead — admit immediately.
  if (active_[c] < slots(cls) && queue_[c].empty()) {
    ++active_[c];
    Bump(ec.stats().admitted);
    *ticket = Ticket(this, cls);
    return {};
  }
  // Overload shed: every slot busy and the FIFO is full. Returning
  // kRejected without blocking is the point — a spike degrades to fast
  // failures the caller can retry elsewhere, not an unbounded queue.
  if (static_cast<int>(queue_[c].size()) >= config_.max_queued) {
    Bump(ec.stats().shed);
    return {ExecStatus::kRejected,
            "admission queue full (" + std::to_string(queue_[c].size()) +
                " waiters) for class " +
                (cls == QueryClass::kSmallProbe ? "small-probe"
                                                : "heavy-analytic")};
  }
  // FIFO wait, bounded by the query's own deadline. The loop re-checks
  // "am I at the front with a free slot" under mu_ after every wake
  // (cv_.wait re-acquires lock.native() — i.e. mu_ — before returning,
  // so the guarded reads below are always under the lock).
  const uint64_t id = next_ticket_++;
  queue_[c].push_back(id);
  const bool bounded = limits.deadline_ms > 0;
  const auto deadline =
      start + std::chrono::milliseconds(bounded ? limits.deadline_ms : 0);
  bool got = true;
  while (!(queue_[c].front() == id && active_[c] < slots(cls))) {
    if (bounded) {
      if (cv_.wait_until(lock.native(), deadline) ==
          std::cv_status::timeout) {
        got = queue_[c].front() == id && active_[c] < slots(cls);
        break;
      }
    } else {
      cv_.wait(lock.native());
    }
  }
  const int64_t waited_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  Bump(ec.stats().queued_ns, waited_ns);
  if (!got) {
    queue_[c].erase(std::find(queue_[c].begin(), queue_[c].end(), id));
    // A departure can unblock the waiter behind us (it may now be at
    // the front with a slot free).
    cv_.notify_all();
    return {ExecStatus::kDeadlineExceeded,
            "deadline passed after " + std::to_string(waited_ns / 1000000) +
                "ms queued for admission"};
  }
  queue_[c].pop_front();
  ++active_[c];
  Bump(ec.stats().admitted);
  // The next waiter may also be admissible (multi-slot classes).
  cv_.notify_all();
  *ticket = Ticket(this, cls);
  return {};
}

void AdmissionController::Release(QueryClass cls) {
  {
    MutexLock lock(&mu_);
    --active_[static_cast<int>(cls)];
  }
  cv_.notify_all();
}

int AdmissionController::active(QueryClass cls) const {
  MutexLock lock(&mu_);
  return active_[static_cast<int>(cls)];
}

int AdmissionController::queued(QueryClass cls) const {
  MutexLock lock(&mu_);
  return static_cast<int>(queue_[static_cast<int>(cls)].size());
}

}  // namespace fmmsw
