#ifndef FMMSW_CORE_API_H_
#define FMMSW_CORE_API_H_

/// \file
/// Public facade of the fmmsw library. A downstream user needs three
/// things: (1) define a Boolean conjunctive query as a hypergraph plus a
/// database, (2) ask for its widths (subw / w-subw, Tables 1-2), and
/// (3) evaluate it with the engine of their choice. See
/// examples/quickstart.cpp.

#include <string>

#include "core/exec_context.h"
#include "core/recovery.h"
#include "engine/elimination.h"
#include "hypergraph/hypergraph.h"
#include "relation/relation.h"
#include "util/rational.h"
#include "width/omega_subw.h"
#include "width/subw.h"

namespace fmmsw {

/// Width report for a query at a given MM exponent.
struct WidthReport {
  Rational rho_star;
  Rational fhtw;
  Rational subw;
  Rational omega_subw_lower;
  Rational omega_subw_upper;
  bool omega_subw_exact = false;
  int num_mm_terms = 0;
  long lps_solved = 0;
  long lp_warm_starts = 0;   ///< LPs that replayed a previous basis
  long lp_pivots = 0;        ///< total simplex pivots across all width LPs
  int64_t plan_ns = 0;       ///< wall time spent planning (all widths)
  bool from_cache = false;   ///< w-subw served by the process WidthCache
};

/// Computes every width of the query hypergraph at the given omega.
/// For clustered hypergraphs (cliques, pyramids, Lemma C.15) the w-subw is
/// exact; otherwise certified bounds are returned (add witnesses via
/// OmegaSubwOptions to tighten the lower bound).
/// `ctx` (nullptr = process default) supplies the planner thread pool,
/// the guardrail polled between LP solves, and the planner ExecStats
/// counters; results are identical at every thread count.
WidthReport ComputeWidths(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts = {},
                          ExecContext* ctx = nullptr);

/// Renders the report as a human-readable table.
std::string FormatWidthReport(const Hypergraph& h, const Rational& omega,
                              const WidthReport& report);

enum class EvalStrategy {
  kWcoj,        ///< generic worst-case optimal join (for-loops)
  kBestTd,      ///< fhtw-optimal tree decomposition plan
  kElimination, ///< GVEO interpreter with kAuto for-loop/MM choice
};

/// Evaluates the Boolean query with the chosen strategy. Specialized
/// faster algorithms for the paper's query classes live in
/// engine/{triangle,four_cycle,clique,pyramid}.h.
///
/// `ctx` supplies the thread pool, scratch arenas and per-op stats the
/// evaluation runs on (see core/exec_context.h); nullptr uses the
/// process-default context sized by FMMSW_THREADS.
bool EvaluateBoolean(const Hypergraph& h, const QueryInput& db,
                     EvalStrategy strategy = EvalStrategy::kWcoj,
                     ExecContext* ctx = nullptr);

/// Structural validation of a (query, database) pair: one relation per
/// hyperedge, each relation's schema equal to its edge's variable set,
/// and every edge variable inside the hypergraph's vertex range. Returns
/// kOk or kInvalidArgument with a message naming the first mismatch.
/// The guarded evaluation below runs this before touching the engines;
/// call it directly to validate inputs without evaluating.
ExecResult ValidateQuery(const Hypergraph& h, const QueryInput& db);

/// Status-returning evaluation with guardrails: validates inputs
/// (kInvalidArgument), arms `limits` — wall-clock deadline, memory
/// budget, cancellation via ctx->guard().Cancel() — on the context's
/// guard for the duration of the run, and converts a guardrail abort
/// unwinding out of the engines into the matching ExecStatus. On any
/// non-kOk status `*result` is untouched and the context is immediately
/// reusable for the next query (arenas released, stats preserved). See
/// the "Error handling & guardrails" section of the README.
ExecResult EvaluateBooleanGuarded(const Hypergraph& h, const QueryInput& db,
                                  bool* result,
                                  EvalStrategy strategy = EvalStrategy::kWcoj,
                                  ExecContext* ctx = nullptr,
                                  const QueryLimits& limits = {});

/// Guarded counting evaluation: validates, arms `limits`, and counts the
/// full join (WcojCount — no materialization, so max_output_rows does not
/// apply). On any non-kOk status `*count` is untouched.
ExecResult EvaluateCountGuarded(const Hypergraph& h, const QueryInput& db,
                                int64_t* count, ExecContext* ctx = nullptr,
                                const QueryLimits& limits = {});

/// Guarded full-join evaluation: validates, arms `limits`, and
/// materializes the join projected onto `output_vars` (canonically
/// sorted; max_output_rows applies). On any non-kOk status `*result` is
/// untouched.
ExecResult EvaluateJoinGuarded(const Hypergraph& h, const QueryInput& db,
                               VarSet output_vars, Relation* result,
                               ExecContext* ctx = nullptr,
                               const QueryLimits& limits = {});

/// \name Recovery entry points
/// Guarded evaluation with degraded-plan retry (core/recovery.h): each
/// call builds the query's degradation ladder from the engine/strategy.h
/// capability cards — for the canonical triangle query the full
/// MM-hybrid/Strassen -> blocked GEMM -> bit-sliced -> plain-WCOJ ladder
/// (Boolean: Strassen hybrid -> Boolean-product hybrid -> WCOJ); for
/// general queries elimination -> best-TD -> WCOJ (Boolean) or the
/// single-rung WCOJ (count/join) — and walks it with RunWithRecovery
/// under `limits` and `policy`. A retryable abort (memory budget,
/// capacity cap, injected fault-plan pressure) falls through to the next
/// cheaper rung; the answer returned is bit-identical to a clean run of
/// the winning rung at every thread count. On any non-kOk status the
/// output parameter is untouched. `report`, when non-null, records the
/// ladder walk (attempts, failures, winning rung).
/// @{
ExecResult EvaluateBooleanWithRecovery(
    const Hypergraph& h, const QueryInput& db, bool* result,
    ExecContext* ctx = nullptr, const QueryLimits& limits = {},
    const RetryPolicy& policy = {}, RecoveryReport* report = nullptr);
ExecResult EvaluateCountWithRecovery(
    const Hypergraph& h, const QueryInput& db, int64_t* count,
    ExecContext* ctx = nullptr, const QueryLimits& limits = {},
    const RetryPolicy& policy = {}, RecoveryReport* report = nullptr);
ExecResult EvaluateJoinWithRecovery(
    const Hypergraph& h, const QueryInput& db, VarSet output_vars,
    Relation* result, ExecContext* ctx = nullptr,
    const QueryLimits& limits = {}, const RetryPolicy& policy = {},
    RecoveryReport* report = nullptr);
/// @}

}  // namespace fmmsw

#endif  // FMMSW_CORE_API_H_
