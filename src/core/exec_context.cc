#include "core/exec_context.h"

namespace fmmsw {

void ExecStats::Reset() {
  join_calls = 0;
  join_output_tuples = 0;
  fused_joins = 0;
  fused_probe_tuples = 0;
  fused_drop_tuples = 0;
  fused_emit_tuples = 0;
  semijoin_calls = 0;
  semijoin_all_calls = 0;
  antijoin_calls = 0;
  project_calls = 0;
  union_calls = 0;
  select_calls = 0;
  partition_calls = 0;
  sort_order_hits = 0;
  sort_calls = 0;
  sort_rows = 0;
  sort_parallel = 0;
  sort_ns = 0;
  index_builds = 0;
  index_sharded_builds = 0;
  index_build_rows = 0;
  index_build_ns = 0;
  wcoj_runs = 0;
  wcoj_parallel_runs = 0;
  wcoj_tasks = 0;
  wcoj_coop_tasks = 0;
  wcoj_steal_claims = 0;
  mm_products = 0;
  mm_base_calls = 0;
  mm_simd_calls = 0;
  mm_bitsliced_calls = 0;
  mm_pack_ns = 0;
}

std::string ExecStats::ToString() const {
  std::string out;
  auto row = [&out](const char* name, const std::atomic<int64_t>& v) {
    const int64_t x = v.load(std::memory_order_relaxed);
    if (x == 0) return;
    out += name;
    out += " : ";
    out += std::to_string(x);
    out += "\n";
  };
  row("join_calls          ", join_calls);
  row("join_output_tuples  ", join_output_tuples);
  row("fused_joins         ", fused_joins);
  row("fused_probe_tuples  ", fused_probe_tuples);
  row("fused_drop_tuples   ", fused_drop_tuples);
  row("fused_emit_tuples   ", fused_emit_tuples);
  row("semijoin_calls      ", semijoin_calls);
  row("semijoin_all_calls  ", semijoin_all_calls);
  row("antijoin_calls      ", antijoin_calls);
  row("project_calls       ", project_calls);
  row("union_calls         ", union_calls);
  row("select_calls        ", select_calls);
  row("partition_calls     ", partition_calls);
  row("sort_order_hits     ", sort_order_hits);
  row("sort_calls          ", sort_calls);
  row("sort_rows           ", sort_rows);
  row("sort_parallel       ", sort_parallel);
  row("sort_ns             ", sort_ns);
  row("index_builds        ", index_builds);
  row("index_sharded_builds", index_sharded_builds);
  row("index_build_rows    ", index_build_rows);
  row("index_build_ns      ", index_build_ns);
  row("wcoj_runs           ", wcoj_runs);
  row("wcoj_parallel_runs  ", wcoj_parallel_runs);
  row("wcoj_tasks          ", wcoj_tasks);
  row("wcoj_coop_tasks     ", wcoj_coop_tasks);
  row("wcoj_steal_claims   ", wcoj_steal_claims);
  row("mm_products         ", mm_products);
  row("mm_base_calls       ", mm_base_calls);
  row("mm_simd_calls       ", mm_simd_calls);
  row("mm_bitsliced_calls  ", mm_bitsliced_calls);
  row("mm_pack_ns          ", mm_pack_ns);
  return out;
}

ExecContext::ExecContext() : pool_(&ThreadPool::Global()) {
  scratch_.resize(pool_->threads());
}

ExecContext::ExecContext(int threads)
    : owned_pool_(new ThreadPool(threads)), pool_(owned_pool_.get()) {
  scratch_.resize(pool_->threads());
}

ExecContext::~ExecContext() = default;

ExecContext::SortOrderScope::SortOrderScope(ExecContext& ec) : ec_(ec) {
  if (ec_.sort_cache_depth_++ == 0) ec_.sort_orders_.clear();
}

ExecContext::SortOrderScope::~SortOrderScope() {
  if (--ec_.sort_cache_depth_ == 0) ec_.sort_orders_.clear();
}

const std::vector<uint32_t>* ExecContext::FindSortOrder(
    const void* data, size_t rows, uint32_t xmask, uint32_t ymask) const {
  if (sort_cache_depth_ == 0) return nullptr;
  for (const SortOrderEntry& e : sort_orders_) {
    if (e.data == data && e.rows == rows && e.xmask == xmask &&
        e.ymask == ymask) {
      return &e.order;
    }
  }
  return nullptr;
}

void ExecContext::StoreSortOrder(const void* data, size_t rows,
                                 uint32_t xmask, uint32_t ymask,
                                 const std::vector<uint32_t>& order) {
  if (sort_cache_depth_ == 0) return;
  sort_orders_.push_back(SortOrderEntry{data, rows, xmask, ymask, order});
}

ExecContext& ExecContext::Default() {
  static ExecContext ctx;
  return ctx;
}

}  // namespace fmmsw
