#include "core/exec_context.h"

#include <chrono>
#include <cstdlib>

namespace fmmsw {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Site tags in FaultSite enum order (keep in sync — FaultSiteName and
/// the FMMSW_FAULT_PLAN parser both index by enum value).
const char* const kFaultSiteNames[kNumFaultSites] = {
    "wcoj", "sort", "index", "mm", "lp", "panda", "ops",
};

}  // namespace

const char* FaultSiteName(FaultSite site) {
  const int s = static_cast<int>(site);
  FMMSW_DCHECK(s >= 0 && s < kNumFaultSites);
  return kFaultSiteNames[s];
}

bool ParseFaultPlan(const std::string& spec, FaultPlan* plan,
                    std::string* error) {
  FaultPlan out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;  // tolerate empty clauses / trailing ';'
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      if (error != nullptr) {
        *error = "fault-plan clause '" + clause + "' has no ':'";
      }
      return false;
    }
    const std::string tag = clause.substr(0, colon);
    std::string count = clause.substr(colon + 1);
    int site = -1;
    for (int s = 0; s < kNumFaultSites; ++s) {
      if (tag == kFaultSiteNames[s]) {
        site = s;
        break;
      }
    }
    if (site < 0) {
      if (error != nullptr) {
        *error = "fault-plan clause '" + clause + "' names unknown site '" +
                 tag + "'";
      }
      return false;
    }
    const bool repeating = count.rfind("every-", 0) == 0;
    if (repeating) count = count.substr(6);
    // Hostile-input hardening: the digits-only check rejects embedded
    // NULs and junk; the length cap rejects overflow ordinals before
    // any conversion runs (atoll/strtoll overflow would be UB /
    // saturation, and a count that large is certainly a typo).
    constexpr size_t kMaxCountDigits = 18;  // < digits10(int64_t)
    long long n = 0;
    if (count.empty() || count.size() > kMaxCountDigits ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      if (error != nullptr) {
        *error = "fault-plan clause '" + clause +
                 "' needs a positive integer count";
      }
      return false;
    }
    for (char c : count) n = n * 10 + (c - '0');
    if (n <= 0) {
      if (error != nullptr) {
        *error = "fault-plan clause '" + clause +
                 "' needs a positive integer count";
      }
      return false;
    }
    (repeating ? out.every : out.at)[site] = n;
  }
  *plan = out;
  return true;
}

void QueryGuard::SetFaultPlan(const FaultPlan& plan) {
  // relaxed: driving-thread stores between guarded executions; the next
  // Arm()'s pool handshake publishes them to workers (same argument as
  // Arm below).
  for (int s = 0; s < kNumFaultSites; ++s) {
    plan_at_[s].store(plan.at[s], std::memory_order_relaxed);
    plan_every_[s].store(plan.every[s], std::memory_order_relaxed);
  }
  const bool active = !plan.empty();
  plan_set_.store(active, std::memory_order_relaxed);
  has_plan_.store(active, std::memory_order_relaxed);
  if (active) armed_.store(true, std::memory_order_relaxed);
}

void QueryGuard::Arm(const QueryLimits& limits) {
  // relaxed: every store below runs on the single driving thread before
  // the query's fan-out; ThreadPool::Run's mutex handshake publishes
  // them to the workers that will poll them, so none needs ordering of
  // its own.
  polls_.store(0, std::memory_order_relaxed);
  rows_.store(0, std::memory_order_relaxed);
  for (int s = 0; s < kNumFaultSites; ++s) {
    site_polls_[s].store(0, std::memory_order_relaxed);
  }
  // relaxed: driving-thread stores, published by the pool handshake
  // (see the function comment above).
  mem_budget_.store(limits.memory_budget_bytes, std::memory_order_relaxed);
  row_limit_.store(limits.max_output_rows, std::memory_order_relaxed);
  deadline_ns_.store(
      limits.deadline_ms > 0 ? SteadyNowNs() + limits.deadline_ms * 1000000
                             : 0,
      std::memory_order_relaxed);
  if (const char* env = std::getenv("FMMSW_FAULT_AT")) {
    const long long n = std::atoll(env);
    // relaxed: driving-thread store, published like the ones above.
    if (n > 0) fault_at_.store(n, std::memory_order_relaxed);
  }
  // A programmatic plan (SetFaultPlan) is sticky and shadows the
  // environment; otherwise FMMSW_FAULT_PLAN is re-read at every Arm so
  // an unsetenv + re-run is clean. A malformed env plan is ignored (the
  // guard must not throw from Arm): tests drive the parser directly.
  // relaxed: driving-thread stores, published like the ones above.
  if (!plan_set_.load(std::memory_order_relaxed)) {
    FaultPlan plan;
    const char* env = std::getenv("FMMSW_FAULT_PLAN");
    if (env != nullptr && *env != '\0') {
      ParseFaultPlan(env, &plan, nullptr);
    }
    for (int s = 0; s < kNumFaultSites; ++s) {
      plan_at_[s].store(plan.at[s], std::memory_order_relaxed);
      plan_every_[s].store(plan.every[s], std::memory_order_relaxed);
    }
    has_plan_.store(!plan.empty(), std::memory_order_relaxed);
  }
  // Cancel() issued before Arm() sticks: it targets "the next guarded
  // execution" and trips the first poll. armed_ goes true iff any poll
  // must take the slow path.
  // relaxed: driving-thread loads/store; pre-Arm writers (Cancel,
  // SetFaultAt, SetFaultPlan, SetPollHook) install before the run they
  // target.
  const bool armed = limits.deadline_ms > 0 ||
                     limits.memory_budget_bytes > 0 ||
                     limits.max_output_rows > 0 ||
                     fault_at_.load(std::memory_order_relaxed) > 0 ||
                     has_plan_.load(std::memory_order_relaxed) ||
                     has_hook_.load(std::memory_order_relaxed) ||
                     cancelled_.load(std::memory_order_relaxed);
  armed_.store(armed, std::memory_order_relaxed);
}

void QueryGuard::Disarm() {
  // relaxed: like Arm() — every store below runs on the driving thread
  // after the fan-in, so the pool handshake already ordered it against
  // every worker. A programmatic fault plan survives Disarm by design
  // (plan_set_): recovery retries re-arm and must stay under fault.
  armed_.store(false, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  deadline_ns_.store(0, std::memory_order_relaxed);
  mem_budget_.store(0, std::memory_order_relaxed);
  row_limit_.store(0, std::memory_order_relaxed);
  fault_at_.store(0, std::memory_order_relaxed);
  // relaxed: driving-thread stores after the fan-in (see the function
  // comment above) — clears an env-sourced plan; a sticky programmatic
  // plan (plan_set_) is left armed for the next run.
  if (!plan_set_.load(std::memory_order_relaxed)) {
    for (int s = 0; s < kNumFaultSites; ++s) {
      plan_at_[s].store(0, std::memory_order_relaxed);
      plan_every_[s].store(0, std::memory_order_relaxed);
    }
    has_plan_.store(false, std::memory_order_relaxed);
  }
}

void QueryGuard::SetPollHook(std::function<void(int64_t)> hook) {
  MutexLock lock(&hook_mu_);
  hook_ = std::move(hook);
  // relaxed: gate only — PollSlow re-checks under hook_mu_ before
  // invoking, so a stale read merely skips or takes the mutex once.
  has_hook_.store(static_cast<bool>(hook_), std::memory_order_relaxed);
}

void QueryGuard::PollSlow(FaultSite site) {
  // relaxed: poll ordinals are exact atomic RMWs (each ordinal is
  // observed by exactly one worker, which is what makes the fault plan
  // deterministic across thread counts); fault/limit loads are
  // published by Arm() before the fan-out (see Arm above) and latches
  // like cancelled_ are re-polled every morsel, so delayed visibility
  // delays an abort by one poll at most.
  const int64_t poll = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
  const int64_t fault = fault_at_.load(std::memory_order_relaxed);
  if (fault > 0 && poll >= fault) {
    throw QueryAbort(ExecStatus::kCancelled,
                     "fault injection fired at poll #" +
                         std::to_string(poll));
  }
  // relaxed: per-site ordinal RMWs are exact; the plan gate and rules
  // are published by Arm/SetFaultPlan before the fan-out (see the block
  // comment above).
  if (has_plan_.load(std::memory_order_relaxed)) {
    const int s = static_cast<int>(site);
    const int64_t ordinal =
        site_polls_[s].fetch_add(1, std::memory_order_relaxed) + 1;
    const int64_t at = plan_at_[s].load(std::memory_order_relaxed);
    if (at > 0 && ordinal >= at) ThrowPlanFault(site, ordinal);
    const int64_t every = plan_every_[s].load(std::memory_order_relaxed);
    if (every > 0 && ordinal % every == 0) ThrowPlanFault(site, ordinal);
  } else {
    // relaxed: diagnostic per-site ordinal (site_polls accessor).
    site_polls_[static_cast<int>(site)].fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  if (has_hook_.load(std::memory_order_relaxed)) {
    // Invoked under hook_mu_: a concurrent SetPollHook can never destroy
    // the std::function mid-call. Hooks are test instruments; the lock
    // is off the production path (has_hook_ false) entirely.
    MutexLock lock(&hook_mu_);
    if (hook_) hook_(poll);
  }
  // relaxed: latches and limits below — published by Arm() before the
  // fan-out; staleness delays the abort by one poll at most.
  if (cancelled_.load(std::memory_order_relaxed)) {
    throw QueryAbort(ExecStatus::kCancelled, "query cancelled");
  }
  const int64_t budget = mem_budget_.load(std::memory_order_relaxed);
  if (budget > 0) {
    const int64_t now =
        stats_->mem_current_bytes.load(std::memory_order_relaxed);
    if (now > budget) ThrowMemoryLimit(now, budget);
  }
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline > 0 && SteadyNowNs() > deadline) {
    throw QueryAbort(ExecStatus::kDeadlineExceeded,
                     "wall-clock deadline exceeded");
  }
}

void QueryGuard::ThrowMemoryLimit(int64_t now, int64_t budget) {
  throw QueryAbort(ExecStatus::kMemoryLimitExceeded,
                   "memory budget exceeded: " + std::to_string(now) +
                       " bytes tracked > " + std::to_string(budget) +
                       " byte budget");
}

void QueryGuard::ThrowRowLimit(int64_t now, int64_t limit) {
  throw QueryAbort(ExecStatus::kCapacityExceeded,
                   "max_output_rows exceeded: " + std::to_string(now) +
                       " rows emitted > limit " + std::to_string(limit));
}

void QueryGuard::ThrowPlanFault(FaultSite site, int64_t ordinal) {
  // kMemoryLimitExceeded, not kCancelled: plan faults simulate resource
  // pressure so the recovery ladder treats them as retryable.
  throw QueryAbort(ExecStatus::kMemoryLimitExceeded,
                   std::string("fault plan fired at site ") +
                       FaultSiteName(site) + " poll #" +
                       std::to_string(ordinal) +
                       " (simulated memory pressure)");
}

void ExecStats::Reset() {
  join_calls = 0;
  join_output_tuples = 0;
  fused_joins = 0;
  fused_probe_tuples = 0;
  fused_drop_tuples = 0;
  fused_emit_tuples = 0;
  semijoin_calls = 0;
  semijoin_all_calls = 0;
  antijoin_calls = 0;
  project_calls = 0;
  union_calls = 0;
  select_calls = 0;
  partition_calls = 0;
  sort_order_hits = 0;
  sort_calls = 0;
  sort_rows = 0;
  sort_parallel = 0;
  sort_ns = 0;
  index_builds = 0;
  index_sharded_builds = 0;
  index_build_rows = 0;
  index_build_ns = 0;
  wcoj_runs = 0;
  wcoj_parallel_runs = 0;
  wcoj_tasks = 0;
  wcoj_coop_tasks = 0;
  wcoj_steal_claims = 0;
  mm_products = 0;
  mm_base_calls = 0;
  mm_simd_calls = 0;
  mm_bitsliced_calls = 0;
  mm_pack_ns = 0;
  lp_solves = 0;
  lp_warm_starts = 0;
  lp_pivots = 0;
  width_cache_hits = 0;
  plan_ns = 0;
  mem_current_bytes = 0;
  mem_peak_bytes = 0;
  admitted = 0;
  queued_ns = 0;
  shed = 0;
  retries = 0;
  degraded_runs = 0;
  commits = 0;
  rollbacks = 0;
  snapshots_pinned = 0;
  versions_retired = 0;
  width_cache_evictions = 0;
}

std::string ExecStats::ToString() const {
  std::string out;
  auto row = [&out](const char* name, const std::atomic<int64_t>& v) {
    // relaxed: reporting snapshot — read after the run (pool fan-in
    // ordered the bumps) or as an intentionally racy live dump.
    const int64_t x = v.load(std::memory_order_relaxed);
    if (x == 0) return;
    out += name;
    out += " : ";
    out += std::to_string(x);
    out += "\n";
  };
  row("join_calls          ", join_calls);
  row("join_output_tuples  ", join_output_tuples);
  row("fused_joins         ", fused_joins);
  row("fused_probe_tuples  ", fused_probe_tuples);
  row("fused_drop_tuples   ", fused_drop_tuples);
  row("fused_emit_tuples   ", fused_emit_tuples);
  row("semijoin_calls      ", semijoin_calls);
  row("semijoin_all_calls  ", semijoin_all_calls);
  row("antijoin_calls      ", antijoin_calls);
  row("project_calls       ", project_calls);
  row("union_calls         ", union_calls);
  row("select_calls        ", select_calls);
  row("partition_calls     ", partition_calls);
  row("sort_order_hits     ", sort_order_hits);
  row("sort_calls          ", sort_calls);
  row("sort_rows           ", sort_rows);
  row("sort_parallel       ", sort_parallel);
  row("sort_ns             ", sort_ns);
  row("index_builds        ", index_builds);
  row("index_sharded_builds", index_sharded_builds);
  row("index_build_rows    ", index_build_rows);
  row("index_build_ns      ", index_build_ns);
  row("wcoj_runs           ", wcoj_runs);
  row("wcoj_parallel_runs  ", wcoj_parallel_runs);
  row("wcoj_tasks          ", wcoj_tasks);
  row("wcoj_coop_tasks     ", wcoj_coop_tasks);
  row("wcoj_steal_claims   ", wcoj_steal_claims);
  row("mm_products         ", mm_products);
  row("mm_base_calls       ", mm_base_calls);
  row("mm_simd_calls       ", mm_simd_calls);
  row("mm_bitsliced_calls  ", mm_bitsliced_calls);
  row("mm_pack_ns          ", mm_pack_ns);
  row("lp_solves           ", lp_solves);
  row("lp_warm_starts      ", lp_warm_starts);
  row("lp_pivots           ", lp_pivots);
  row("width_cache_hits    ", width_cache_hits);
  row("plan_ns             ", plan_ns);
  row("mem_current_bytes   ", mem_current_bytes);
  row("mem_peak_bytes      ", mem_peak_bytes);
  row("admitted            ", admitted);
  row("queued_ns           ", queued_ns);
  row("shed                ", shed);
  row("retries             ", retries);
  row("degraded_runs       ", degraded_runs);
  row("commits             ", commits);
  row("rollbacks           ", rollbacks);
  row("snapshots_pinned    ", snapshots_pinned);
  row("versions_retired    ", versions_retired);
  row("width_cache_evictions", width_cache_evictions);
  return out;
}

ExecContext::ExecContext() : pool_(&ThreadPool::Global()) {
  scratch_.resize(pool_->threads());
}

ExecContext::ExecContext(int threads)
    : owned_pool_(new ThreadPool(threads)), pool_(owned_pool_.get()) {
  scratch_.resize(pool_->threads());
}

ExecContext::~ExecContext() = default;

ExecContext::SortOrderScope::SortOrderScope(ExecContext& ec) : ec_(ec) {
  if (ec_.sort_cache_depth_++ == 0) ec_.sort_orders_.clear();
}

ExecContext::SortOrderScope::~SortOrderScope() {
  if (--ec_.sort_cache_depth_ == 0) ec_.sort_orders_.clear();
}

const std::vector<uint32_t>* ExecContext::FindSortOrder(
    const void* data, size_t rows, uint32_t xmask, uint32_t ymask) const {
  if (sort_cache_depth_ == 0) return nullptr;
  for (const SortOrderEntry& e : sort_orders_) {
    if (e.data == data && e.rows == rows && e.xmask == xmask &&
        e.ymask == ymask) {
      return &e.order;
    }
  }
  return nullptr;
}

void ExecContext::StoreSortOrder(const void* data, size_t rows,
                                 uint32_t xmask, uint32_t ymask,
                                 const std::vector<uint32_t>& order) {
  if (sort_cache_depth_ == 0) return;
  sort_orders_.push_back(SortOrderEntry{data, rows, xmask, ymask, order});
}

ExecContext& ExecContext::Default() {
  static ExecContext ctx;
  return ctx;
}

}  // namespace fmmsw
