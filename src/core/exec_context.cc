#include "core/exec_context.h"

#include <chrono>
#include <cstdlib>

namespace fmmsw {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void QueryGuard::Arm(const QueryLimits& limits) {
  // relaxed: every store below runs on the single driving thread before
  // the query's fan-out; ThreadPool::Run's mutex handshake publishes
  // them to the workers that will poll them, so none needs ordering of
  // its own.
  polls_.store(0, std::memory_order_relaxed);
  rows_.store(0, std::memory_order_relaxed);
  mem_budget_.store(limits.memory_budget_bytes, std::memory_order_relaxed);
  row_limit_.store(limits.max_output_rows, std::memory_order_relaxed);
  deadline_ns_.store(
      limits.deadline_ms > 0 ? SteadyNowNs() + limits.deadline_ms * 1000000
                             : 0,
      std::memory_order_relaxed);
  if (const char* env = std::getenv("FMMSW_FAULT_AT")) {
    const long long n = std::atoll(env);
    // relaxed: driving-thread store, published like the ones above.
    if (n > 0) fault_at_.store(n, std::memory_order_relaxed);
  }
  // Cancel() issued before Arm() sticks: it targets "the next guarded
  // execution" and trips the first poll. armed_ goes true iff any poll
  // must take the slow path.
  // relaxed: driving-thread loads/store; pre-Arm writers (Cancel,
  // SetFaultAt, SetPollHook) install before the run they target.
  const bool armed = limits.deadline_ms > 0 ||
                     limits.memory_budget_bytes > 0 ||
                     limits.max_output_rows > 0 ||
                     fault_at_.load(std::memory_order_relaxed) > 0 ||
                     has_hook_.load(std::memory_order_relaxed) ||
                     cancelled_.load(std::memory_order_relaxed);
  armed_.store(armed, std::memory_order_relaxed);
}

void QueryGuard::Disarm() {
  // relaxed: like Arm() — every store below runs on the driving thread
  // after the fan-in, so the pool handshake already ordered it against
  // every worker.
  armed_.store(false, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  deadline_ns_.store(0, std::memory_order_relaxed);
  mem_budget_.store(0, std::memory_order_relaxed);
  row_limit_.store(0, std::memory_order_relaxed);
  fault_at_.store(0, std::memory_order_relaxed);
}

void QueryGuard::SetPollHook(std::function<void(int64_t)> hook) {
  MutexLock lock(&hook_mu_);
  hook_ = std::move(hook);
  // relaxed: gate only — PollSlow re-checks under hook_mu_ before
  // invoking, so a stale read merely skips or takes the mutex once.
  has_hook_.store(static_cast<bool>(hook_), std::memory_order_relaxed);
}

void QueryGuard::PollSlow() {
  // relaxed: poll ordinal is an exact atomic RMW; fault/limit loads are
  // published by Arm() before the fan-out (see Arm above) and latches
  // like cancelled_ are re-polled every morsel, so delayed visibility
  // delays an abort by one poll at most.
  const int64_t poll = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
  const int64_t fault = fault_at_.load(std::memory_order_relaxed);
  if (fault > 0 && poll >= fault) {
    throw QueryAbort(ExecStatus::kCancelled,
                     "fault injection fired at poll #" +
                         std::to_string(poll));
  }
  if (has_hook_.load(std::memory_order_relaxed)) {
    // Invoked under hook_mu_: a concurrent SetPollHook can never destroy
    // the std::function mid-call. Hooks are test instruments; the lock
    // is off the production path (has_hook_ false) entirely.
    MutexLock lock(&hook_mu_);
    if (hook_) hook_(poll);
  }
  // relaxed: latches and limits below — published by Arm() before the
  // fan-out; staleness delays the abort by one poll at most.
  if (cancelled_.load(std::memory_order_relaxed)) {
    throw QueryAbort(ExecStatus::kCancelled, "query cancelled");
  }
  const int64_t budget = mem_budget_.load(std::memory_order_relaxed);
  if (budget > 0) {
    const int64_t now =
        stats_->mem_current_bytes.load(std::memory_order_relaxed);
    if (now > budget) ThrowMemoryLimit(now, budget);
  }
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline > 0 && SteadyNowNs() > deadline) {
    throw QueryAbort(ExecStatus::kDeadlineExceeded,
                     "wall-clock deadline exceeded");
  }
}

void QueryGuard::ThrowMemoryLimit(int64_t now, int64_t budget) {
  throw QueryAbort(ExecStatus::kMemoryLimitExceeded,
                   "memory budget exceeded: " + std::to_string(now) +
                       " bytes tracked > " + std::to_string(budget) +
                       " byte budget");
}

void QueryGuard::ThrowRowLimit(int64_t now, int64_t limit) {
  throw QueryAbort(ExecStatus::kCapacityExceeded,
                   "max_output_rows exceeded: " + std::to_string(now) +
                       " rows emitted > limit " + std::to_string(limit));
}

void ExecStats::Reset() {
  join_calls = 0;
  join_output_tuples = 0;
  fused_joins = 0;
  fused_probe_tuples = 0;
  fused_drop_tuples = 0;
  fused_emit_tuples = 0;
  semijoin_calls = 0;
  semijoin_all_calls = 0;
  antijoin_calls = 0;
  project_calls = 0;
  union_calls = 0;
  select_calls = 0;
  partition_calls = 0;
  sort_order_hits = 0;
  sort_calls = 0;
  sort_rows = 0;
  sort_parallel = 0;
  sort_ns = 0;
  index_builds = 0;
  index_sharded_builds = 0;
  index_build_rows = 0;
  index_build_ns = 0;
  wcoj_runs = 0;
  wcoj_parallel_runs = 0;
  wcoj_tasks = 0;
  wcoj_coop_tasks = 0;
  wcoj_steal_claims = 0;
  mm_products = 0;
  mm_base_calls = 0;
  mm_simd_calls = 0;
  mm_bitsliced_calls = 0;
  mm_pack_ns = 0;
  lp_solves = 0;
  lp_warm_starts = 0;
  lp_pivots = 0;
  width_cache_hits = 0;
  plan_ns = 0;
  mem_current_bytes = 0;
  mem_peak_bytes = 0;
}

std::string ExecStats::ToString() const {
  std::string out;
  auto row = [&out](const char* name, const std::atomic<int64_t>& v) {
    // relaxed: reporting snapshot — read after the run (pool fan-in
    // ordered the bumps) or as an intentionally racy live dump.
    const int64_t x = v.load(std::memory_order_relaxed);
    if (x == 0) return;
    out += name;
    out += " : ";
    out += std::to_string(x);
    out += "\n";
  };
  row("join_calls          ", join_calls);
  row("join_output_tuples  ", join_output_tuples);
  row("fused_joins         ", fused_joins);
  row("fused_probe_tuples  ", fused_probe_tuples);
  row("fused_drop_tuples   ", fused_drop_tuples);
  row("fused_emit_tuples   ", fused_emit_tuples);
  row("semijoin_calls      ", semijoin_calls);
  row("semijoin_all_calls  ", semijoin_all_calls);
  row("antijoin_calls      ", antijoin_calls);
  row("project_calls       ", project_calls);
  row("union_calls         ", union_calls);
  row("select_calls        ", select_calls);
  row("partition_calls     ", partition_calls);
  row("sort_order_hits     ", sort_order_hits);
  row("sort_calls          ", sort_calls);
  row("sort_rows           ", sort_rows);
  row("sort_parallel       ", sort_parallel);
  row("sort_ns             ", sort_ns);
  row("index_builds        ", index_builds);
  row("index_sharded_builds", index_sharded_builds);
  row("index_build_rows    ", index_build_rows);
  row("index_build_ns      ", index_build_ns);
  row("wcoj_runs           ", wcoj_runs);
  row("wcoj_parallel_runs  ", wcoj_parallel_runs);
  row("wcoj_tasks          ", wcoj_tasks);
  row("wcoj_coop_tasks     ", wcoj_coop_tasks);
  row("wcoj_steal_claims   ", wcoj_steal_claims);
  row("mm_products         ", mm_products);
  row("mm_base_calls       ", mm_base_calls);
  row("mm_simd_calls       ", mm_simd_calls);
  row("mm_bitsliced_calls  ", mm_bitsliced_calls);
  row("mm_pack_ns          ", mm_pack_ns);
  row("lp_solves           ", lp_solves);
  row("lp_warm_starts      ", lp_warm_starts);
  row("lp_pivots           ", lp_pivots);
  row("width_cache_hits    ", width_cache_hits);
  row("plan_ns             ", plan_ns);
  row("mem_current_bytes   ", mem_current_bytes);
  row("mem_peak_bytes      ", mem_peak_bytes);
  return out;
}

ExecContext::ExecContext() : pool_(&ThreadPool::Global()) {
  scratch_.resize(pool_->threads());
}

ExecContext::ExecContext(int threads)
    : owned_pool_(new ThreadPool(threads)), pool_(owned_pool_.get()) {
  scratch_.resize(pool_->threads());
}

ExecContext::~ExecContext() = default;

ExecContext::SortOrderScope::SortOrderScope(ExecContext& ec) : ec_(ec) {
  if (ec_.sort_cache_depth_++ == 0) ec_.sort_orders_.clear();
}

ExecContext::SortOrderScope::~SortOrderScope() {
  if (--ec_.sort_cache_depth_ == 0) ec_.sort_orders_.clear();
}

const std::vector<uint32_t>* ExecContext::FindSortOrder(
    const void* data, size_t rows, uint32_t xmask, uint32_t ymask) const {
  if (sort_cache_depth_ == 0) return nullptr;
  for (const SortOrderEntry& e : sort_orders_) {
    if (e.data == data && e.rows == rows && e.xmask == xmask &&
        e.ymask == ymask) {
      return &e.order;
    }
  }
  return nullptr;
}

void ExecContext::StoreSortOrder(const void* data, size_t rows,
                                 uint32_t xmask, uint32_t ymask,
                                 const std::vector<uint32_t>& order) {
  if (sort_cache_depth_ == 0) return;
  sort_orders_.push_back(SortOrderEntry{data, rows, xmask, ymask, order});
}

ExecContext& ExecContext::Default() {
  static ExecContext ctx;
  return ctx;
}

}  // namespace fmmsw
