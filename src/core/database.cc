#include "core/database.h"

#include <algorithm>

namespace fmmsw {

namespace {

/// Staging copies poll the guard between chunks of this many rows, so a
/// fault plan / memory budget lands at a deterministic row ordinal and
/// an abort never leaves a half-written version visible (staged
/// relations are private until the commit swap).
constexpr size_t kStageChunkRows = 4096;

/// Entries are kept sorted by name; shared by CatalogState::Find and
/// the commit merge.
struct VersionNameLess {
  bool operator()(const RelationVersion& v, const std::string& name) const {
    return v.name < name;
  }
};

const RelationVersion* FindIn(const std::vector<RelationVersion>& entries,
                              const std::string& name) {
  auto it = std::lower_bound(entries.begin(), entries.end(), name,
                             VersionNameLess{});
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

int64_t RelationBytes(const Relation& r) {
  return static_cast<int64_t>(r.size()) * r.arity() *
         static_cast<int64_t>(sizeof(Value));
}

}  // namespace

// ---------------------------------------------------------------------------
// CatalogState / Snapshot

const RelationVersion* CatalogState::Find(const std::string& name) const {
  return FindIn(entries, name);
}

std::vector<std::string> Snapshot::names() const {
  std::vector<std::string> out;
  if (state_ == nullptr) return out;
  out.reserve(state_->entries.size());
  for (const RelationVersion& v : state_->entries) out.push_back(v.name);
  return out;
}

const Relation* Snapshot::Find(const std::string& name) const {
  if (state_ == nullptr) return nullptr;
  const RelationVersion* v = state_->Find(name);
  return v == nullptr ? nullptr : v->rel.get();
}

RelationPtr Snapshot::Share(const std::string& name) const {
  if (state_ == nullptr) return nullptr;
  const RelationVersion* v = state_->Find(name);
  return v == nullptr ? nullptr : v->rel;
}

uint64_t Snapshot::VersionDigest(const std::string& name) const {
  if (state_ == nullptr) return 0;
  const RelationVersion* v = state_->Find(name);
  return v == nullptr ? 0 : v->digest;
}

ExecResult Snapshot::Bind(const std::vector<std::string>& atoms,
                          QueryInput* out) const {
  QueryInput bound;
  bound.relations.reserve(atoms.size());
  for (const std::string& name : atoms) {
    RelationPtr rel = Share(name);
    if (rel == nullptr) {
      return {ExecStatus::kInvalidArgument,
              "snapshot (epoch " + std::to_string(epoch()) +
                  ") has no relation named '" + name + "'"};
    }
    bound.relations.push_back(std::move(rel));
  }
  *out = std::move(bound);
  return {};
}

uint64_t Snapshot::BindingDigest(const std::vector<std::string>& atoms) const {
  // Order-sensitive fold (position i is hyperedge i): golden-ratio
  // rotate-and-xor so swapped bindings key differently.
  uint64_t h = 0x243f6a8885a308d3ull ^ static_cast<uint64_t>(atoms.size());
  for (const std::string& name : atoms) {
    h = (h << 7) | (h >> 57);
    h ^= VersionDigest(name) + 0x9e3779b97f4a7c15ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Database

Database::Database(const AdmissionConfig& admission)
    : state_(std::make_shared<const CatalogState>()), admission_(admission) {}

Snapshot Database::snapshot(ExecContext* ctx) const {
  ExecContext& ec = ExecContext::Resolve(ctx);
  Bump(ec.stats().snapshots_pinned);
  MutexLock lock(&mu_);
  return Snapshot(state_);
}

int64_t Database::epoch() const {
  MutexLock lock(&mu_);
  return state_->epoch;
}

Database::Transaction Database::Begin(ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  std::shared_ptr<const CatalogState> base;
  {
    MutexLock lock(&mu_);
    base = state_;
  }
  return Transaction(this, std::move(base), ec);
}

int64_t Database::CommitStaged(std::vector<RelationVersion>* staged) {
  MutexLock lock(&mu_);
  const CatalogState& cur = *state_;
  auto next = std::make_shared<CatalogState>();
  next->epoch = cur.epoch + 1;
  next->entries = cur.entries;  // shares every untouched version by pointer
  int64_t retired = 0;
  for (RelationVersion& op : *staged) {
    auto it = std::lower_bound(next->entries.begin(), next->entries.end(),
                               op.name, VersionNameLess{});
    const bool present = it != next->entries.end() && it->name == op.name;
    if (op.rel == nullptr) {  // staged drop
      if (present) {
        next->entries.erase(it);
        ++retired;
      }
      continue;
    }
    op.epoch = next->epoch;
    if (present) {
      *it = std::move(op);
      ++retired;
    } else {
      next->entries.insert(it, std::move(op));
    }
  }
  // The swap IS the commit: one pointer store under mu_. Readers that
  // pinned the old state keep it alive; new snapshots see epoch+1.
  state_ = std::move(next);
  return retired;
}

// ---------------------------------------------------------------------------
// Transaction

Database::Transaction::Transaction(Database* db,
                                   std::shared_ptr<const CatalogState> base,
                                   ExecContext& ec)
    : db_(db),
      base_(std::move(base)),
      ec_(&ec),
      charge_(new MemCharge(ec)) {}

Database::Transaction::~Transaction() {
  if (db_ != nullptr && !done_) Rollback();
}

const Relation* Database::Transaction::View(const std::string& name) const {
  // Last staged write wins within the transaction.
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it) {
    if (it->name == name) return it->rel.get();  // nullptr = staged drop
  }
  const RelationVersion* v = base_->Find(name);
  return v == nullptr ? nullptr : v->rel.get();
}

void Database::Transaction::Stage(const std::string& name, RelationPtr rel,
                                  uint64_t digest) {
  for (RelationVersion& v : staged_) {
    if (v.name == name) {
      v.rel = std::move(rel);
      v.digest = digest;
      return;
    }
  }
  RelationVersion v;
  v.name = name;
  v.rel = std::move(rel);
  v.digest = digest;
  staged_.push_back(std::move(v));
}

void Database::Transaction::Replace(const std::string& name, Relation rows) {
  FMMSW_CHECK(active() && "Replace on a consumed transaction");
  ec_->guard().Poll(FaultSite::kOps);
  // Canonical stored form: sorted + deduped (the sort layer polls
  // FaultSite::kSort itself, so large ingests stay abortable inside).
  rows.SortAndDedupe(ec_);
  ec_->guard().Poll(FaultSite::kOps);
  charge_->Add(RelationBytes(rows));
  const uint64_t digest = RelationStatsDigest(rows);
  Stage(name, std::make_shared<const Relation>(std::move(rows)), digest);
}

void Database::Transaction::Append(const std::string& name,
                                   const Relation& delta) {
  FMMSW_CHECK(active() && "Append on a consumed transaction");
  const Relation* base_rel = View(name);
  if (base_rel == nullptr) {
    Replace(name, delta);
    return;
  }
  if (base_rel->schema() != delta.schema()) {
    throw QueryAbort(ExecStatus::kInvalidArgument,
                     "Append('" + name + "'): delta schema " +
                         delta.schema().ToString() +
                         " != registered schema " +
                         base_rel->schema().ToString());
  }
  // Copy-on-write: the fresh version is built off to the side in
  // guard-polled chunks; the shared base version is never touched.
  Relation fresh(base_rel->schema());
  if (fresh.arity() == 0) {
    if (!base_rel->empty() || !delta.empty()) fresh.Add({});
  } else {
    fresh.Reserve(base_rel->size() + delta.size());
    for (const Relation* src : {base_rel, &delta}) {
      const size_t rows = src->size();
      for (size_t r = 0; r < rows; r += kStageChunkRows) {
        ec_->guard().Poll(FaultSite::kOps);
        const size_t n = std::min(kStageChunkRows, rows - r);
        fresh.AddRows(src->Row(r), n);
      }
    }
  }
  Replace(name, std::move(fresh));
}

void Database::Transaction::Drop(const std::string& name) {
  FMMSW_CHECK(active() && "Drop on a consumed transaction");
  ec_->guard().Poll(FaultSite::kOps);
  if (View(name) == nullptr) {
    throw QueryAbort(ExecStatus::kInvalidArgument,
                     "Drop('" + name + "'): no such relation");
  }
  Stage(name, nullptr, 0);
}

void Database::Transaction::Commit() {
  FMMSW_CHECK(active() && "Commit on a consumed transaction");
  // Last abortable point: a fault at this ordinal proves the
  // pre-swap/post-swap atomicity split (nothing staged is visible yet).
  ec_->guard().Poll(FaultSite::kOps);
  const int64_t retired = db_->CommitStaged(&staged_);
  done_ = true;
  staged_.clear();
  // Staged bytes graduated from transient staging memory to
  // catalog-owned state: release the charge so the query-plane balance
  // returns to its pre-transaction level.
  charge_.reset();
  Bump(ec_->stats().commits);
  Bump(ec_->stats().versions_retired, retired);
}

void Database::Transaction::Rollback() {
  FMMSW_CHECK(active() && "Rollback on a consumed transaction");
  done_ = true;
  staged_.clear();   // drops staged versions (last refs)
  charge_.reset();   // restores mem_current_bytes
  Bump(ec_->stats().rollbacks);
}

// ---------------------------------------------------------------------------
// Query entry points

ExecResult Database::QueryBoolean(const Snapshot& snap, const Hypergraph& h,
                                  const std::vector<std::string>& atoms,
                                  bool* result, const QueryOptions& opts,
                                  ExecContext* ctx,
                                  RecoveryReport* report) const {
  ExecContext& ec = ExecContext::Resolve(ctx);
  QueryInput db;
  ExecResult bound = snap.Bind(atoms, &db);
  if (!bound.ok()) return bound;
  AdmissionController::Ticket ticket;
  ExecResult admit = admission_.Admit(opts.klass, opts.limits, ec, &ticket);
  if (!admit.ok()) return admit;
  if (opts.use_recovery) {
    return EvaluateBooleanWithRecovery(h, db, result, &ec, opts.limits,
                                       opts.retry, report);
  }
  return EvaluateBooleanGuarded(h, db, result, opts.strategy, &ec,
                                opts.limits);
}

ExecResult Database::QueryCount(const Snapshot& snap, const Hypergraph& h,
                                const std::vector<std::string>& atoms,
                                int64_t* count, const QueryOptions& opts,
                                ExecContext* ctx,
                                RecoveryReport* report) const {
  ExecContext& ec = ExecContext::Resolve(ctx);
  QueryInput db;
  ExecResult bound = snap.Bind(atoms, &db);
  if (!bound.ok()) return bound;
  AdmissionController::Ticket ticket;
  ExecResult admit = admission_.Admit(opts.klass, opts.limits, ec, &ticket);
  if (!admit.ok()) return admit;
  if (opts.use_recovery) {
    return EvaluateCountWithRecovery(h, db, count, &ec, opts.limits,
                                     opts.retry, report);
  }
  return EvaluateCountGuarded(h, db, count, &ec, opts.limits);
}

ExecResult Database::QueryJoin(const Snapshot& snap, const Hypergraph& h,
                               const std::vector<std::string>& atoms,
                               VarSet output_vars, Relation* result,
                               const QueryOptions& opts, ExecContext* ctx,
                               RecoveryReport* report) const {
  ExecContext& ec = ExecContext::Resolve(ctx);
  QueryInput db;
  ExecResult bound = snap.Bind(atoms, &db);
  if (!bound.ok()) return bound;
  AdmissionController::Ticket ticket;
  ExecResult admit = admission_.Admit(opts.klass, opts.limits, ec, &ticket);
  if (!admit.ok()) return admit;
  if (opts.use_recovery) {
    return EvaluateJoinWithRecovery(h, db, output_vars, result, &ec,
                                    opts.limits, opts.retry, report);
  }
  return EvaluateJoinGuarded(h, db, output_vars, result, &ec, opts.limits);
}

ExecResult Database::PlanWidths(const Snapshot& snap, const Hypergraph& h,
                                const std::vector<std::string>& atoms,
                                const Rational& omega, WidthReport* out,
                                OmegaSubwOptions opts, ExecContext* ctx) const {
  ExecContext& ec = ExecContext::Resolve(ctx);
  if (atoms.size() != h.edges().size()) {
    return {ExecStatus::kInvalidArgument,
            "PlanWidths: " + std::to_string(atoms.size()) +
                " atom names for " + std::to_string(h.edges().size()) +
                " hyperedges"};
  }
  for (const std::string& name : atoms) {
    if (snap.Find(name) == nullptr) {
      return {ExecStatus::kInvalidArgument,
              "snapshot (epoch " + std::to_string(snap.epoch()) +
                  ") has no relation named '" + name + "'"};
    }
  }
  // Version-keyed planning: the digest rides into the WidthCache key,
  // so a commit to any bound relation misses the cache by construction.
  opts.stats_digest = snap.BindingDigest(atoms);
  *out = ComputeWidths(h, omega, opts, &ec);
  return {};
}

}  // namespace fmmsw
