#ifndef FMMSW_CORE_EXEC_CONTEXT_H_
#define FMMSW_CORE_EXEC_CONTEXT_H_

/// \file
/// The shared execution substrate threaded from the public facade
/// (core/api) through every engine down into the relational operators and
/// the PANDA executor. One ExecContext bundles
///
///   - a thread-pool handle (the process-wide FMMSW_THREADS pool by
///     default, or a private pool of an explicit size — tests use the
///     latter to compare thread counts inside one process),
///   - reusable scratch arenas, one per worker, so hot paths (radix sort,
///     degree grouping, WCOJ worker stacks) stop re-allocating their
///     temporaries on every call, and
///   - per-op stats counters: joins/semijoins executed, tuples
///     materialized, tuples *not* materialized thanks to fused
///     existence-only probes, WCOJ task fan-out, MM kernel launches, and
///     sort-order cache hits. Counters are relaxed atomics so operators
///     running inside parallel regions can bump them safely.
///
/// Every operator and engine entry point accepts an `ExecContext* ctx`
/// (nullptr = the process-default context, ExecContext::Default()). An
/// ExecContext is meant to be driven by one user thread at a time; worker
/// indices passed to scratch() come from ThreadPool::Run.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/parallel.h"

namespace fmmsw {

/// Per-op execution counters (relaxed atomics; see Bump below).
///
/// Index-build counters (the flat_index.h structures report through the
/// context they were built with):
///   - index_builds          : context-aware flat-index builds (FlatMultimap
///                             via ExistProbe/Join/Semijoin, bulk
///                             FlatInterner builds).
///   - index_sharded_builds  : the subset that took the parallel sharded
///                             path (disjoint per-shard sub-tables written
///                             by pool workers without locks).
///   - index_build_rows      : rows scanned into those indexes.
///   - index_build_ns        : nanoseconds spent inside index
///                             construction, summed across builds (and
///                             therefore across workers: builds running
///                             concurrently inside a parallel region each
///                             contribute their own elapsed time, so the
///                             total is aggregate build time and can
///                             exceed wall time). Benches subtract
///                             snapshots of this to report index-build
///                             time separately from enumeration time.
/// Wide-key sort-layer counters (relation/row_sort.h; every
/// comparator-free row sort — SortAndDedupe at any arity, the
/// generic-WCOJ trie build, degree-grouping orders — reports through the
/// context it ran on):
///   - sort_calls            : row sorts executed by the layer.
///   - sort_rows             : rows passed through those sorts.
///   - sort_parallel         : the subset that entered the pool-parallel
///                             radix regime (chunk histograms +
///                             chunk-ordered scatter; bit-identical to the
///                             serial sort, see util/radix.h — a racing
///                             fan-out on a shared pool can still degrade
///                             individual passes to the caller alone).
///   - sort_ns               : nanoseconds inside the sort layer
///                             (pack + radix + unpack), summed across
///                             calls and workers like index_build_ns.
/// WCOJ sub-level stealing counters:
///   - wcoj_coop_tasks       : top-level tasks whose depth-1 candidate
///                             range was executed cooperatively (claimed in
///                             blocks from a shared atomic cursor).
///   - wcoj_steal_claims     : depth-1 blocks claimed by a worker that had
///                             run out of whole tasks (the stealing path).
/// MM micro-kernel counters (mm/kernel.h; mm_products above counts
/// engine-level product launches, these count the kernel layer under it):
///   - mm_base_calls         : packed-panel base-case products (GemmAdd
///                             invocations: blocked slabs, Strassen cutoff
///                             leaves, rectangular in-place blocks).
///   - mm_simd_calls         : the subset that ran a vector inner kernel
///                             (AVX2; 0 under FMMSW_SIMD=off or on
///                             non-AVX2 hardware).
///   - mm_bitsliced_calls    : bit-sliced 0/1 counting products.
///   - mm_pack_ns            : nanoseconds spent packing A/B panels and
///                             bit-planes, summed across calls (and
///                             workers, like index_build_ns).
struct ExecStats {
  std::atomic<int64_t> join_calls{0};
  std::atomic<int64_t> join_output_tuples{0};
  std::atomic<int64_t> fused_joins{0};          ///< Join calls with exist filters
  std::atomic<int64_t> fused_probe_tuples{0};   ///< join pairs probed against filters
  std::atomic<int64_t> fused_drop_tuples{0};    ///< pairs rejected, never materialized
  std::atomic<int64_t> fused_emit_tuples{0};    ///< pairs surviving every filter
  std::atomic<int64_t> semijoin_calls{0};
  std::atomic<int64_t> semijoin_all_calls{0};
  std::atomic<int64_t> antijoin_calls{0};
  std::atomic<int64_t> project_calls{0};
  std::atomic<int64_t> union_calls{0};
  std::atomic<int64_t> select_calls{0};
  std::atomic<int64_t> partition_calls{0};
  std::atomic<int64_t> sort_order_hits{0};      ///< partition sort orders reused
  std::atomic<int64_t> sort_calls{0};           ///< wide-key row sorts executed
  std::atomic<int64_t> sort_rows{0};            ///< rows through the sort layer
  std::atomic<int64_t> sort_parallel{0};        ///< ...sorts run pool-parallel
  std::atomic<int64_t> sort_ns{0};              ///< wall ns inside the sort layer
  std::atomic<int64_t> index_builds{0};         ///< context-aware index builds
  std::atomic<int64_t> index_sharded_builds{0}; ///< ...that ran sharded/parallel
  std::atomic<int64_t> index_build_rows{0};     ///< rows scanned into indexes
  std::atomic<int64_t> index_build_ns{0};       ///< wall ns inside index builds
  std::atomic<int64_t> wcoj_runs{0};
  std::atomic<int64_t> wcoj_parallel_runs{0};
  std::atomic<int64_t> wcoj_tasks{0};           ///< top-level candidate runs fanned out
  std::atomic<int64_t> wcoj_coop_tasks{0};      ///< tasks run via shared depth-1 cursor
  std::atomic<int64_t> wcoj_steal_claims{0};    ///< depth-1 blocks claimed by dry workers
  std::atomic<int64_t> mm_products{0};          ///< matrix-kernel launches
  std::atomic<int64_t> mm_base_calls{0};        ///< packed micro-kernel products
  std::atomic<int64_t> mm_simd_calls{0};        ///< ...with a vector inner kernel
  std::atomic<int64_t> mm_bitsliced_calls{0};   ///< bit-sliced 0/1 counting products
  std::atomic<int64_t> mm_pack_ns{0};           ///< wall ns packing panels/planes

  void Reset();
  /// Human-readable counter dump (one `name : value` line per counter).
  std::string ToString() const;
};

/// Relaxed add on a stats counter.
inline void Bump(std::atomic<int64_t>& counter, int64_t delta = 1) {
  counter.fetch_add(delta, std::memory_order_relaxed);
}

/// Reusable per-worker scratch buffers. Callers resize/clear as needed;
/// capacity persists across calls, which is the whole point. Exclusive
/// use is enforced by TryAcquire: operators that may be reached from
/// inside parallel regions attempt the acquire and fall back to local
/// buffers when the arena is already held by another caller.
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(ScratchArena&& other) noexcept
      : u32_(std::move(other.u32_)),
        u64_(std::move(other.u64_)),
        u64b_(std::move(other.u64b_)),
        keyed_(std::move(other.keyed_)),
        keyedb_(std::move(other.keyedb_)) {
    // A held arena must never be relocated: the holder's reference would
    // dangle and the fresh busy_ flag would hand the buffers to a second
    // caller.
    FMMSW_DCHECK(!other.busy_.load(std::memory_order_relaxed) &&
                 "moving a ScratchArena that is still acquired");
  }

  /// Atomically claims the arena; returns false if another caller holds
  /// it (use local buffers instead).
  bool TryAcquire() {
    bool expected = false;
    return busy_.compare_exchange_strong(expected, true);
  }
  void Release() { busy_.store(false, std::memory_order_release); }

  std::vector<uint32_t>& u32() { return u32_; }
  std::vector<uint64_t>& u64() { return u64_; }
  /// Second 64-bit buffer, e.g. the ping-pong half of a radix sort.
  std::vector<uint64_t>& u64b() { return u64b_; }
  std::vector<std::pair<uint64_t, uint32_t>>& keyed() { return keyed_; }
  std::vector<std::pair<uint64_t, uint32_t>>& keyedb() { return keyedb_; }

 private:
  std::atomic<bool> busy_{false};
  std::vector<uint32_t> u32_;
  std::vector<uint64_t> u64_;
  std::vector<uint64_t> u64b_;
  std::vector<std::pair<uint64_t, uint32_t>> keyed_;
  std::vector<std::pair<uint64_t, uint32_t>> keyedb_;
};

class ExecContext {
 public:
  /// Shares the process-wide pool (sized by FMMSW_THREADS).
  ExecContext();
  /// Owns a private pool with exactly `threads` workers. Lets tests and
  /// embedders pick a parallelism level without touching the environment.
  explicit ExecContext(int threads);
  ~ExecContext();
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  ThreadPool& pool() const { return *pool_; }
  int threads() const { return pool_->threads(); }
  ExecStats& stats() const { return stats_; }
  /// Scratch arena of worker `worker` (0 = the calling thread outside
  /// parallel regions).
  ScratchArena& scratch(int worker = 0) { return scratch_[worker]; }

  // ---- Partition sort-order cache -------------------------------------
  // PartitionByDegree sorts its input once per (relation, X, Y). Within a
  // SortOrderScope (opened by e.g. the PANDA proof-sequence executor,
  // whose tables stay alive in its TableMap for the whole execution),
  // repeated partitions of the same stored table reuse the cached order
  // instead of re-sorting. The cache is keyed on the table's buffer
  // address + row count + column masks, so it is only safe while the
  // tables it refers to are pinned — hence the explicit scope, which
  // clears the cache on entry and exit.

  /// RAII activation of the sort-order cache (nestable).
  class SortOrderScope {
   public:
    explicit SortOrderScope(ExecContext& ec);
    ~SortOrderScope();
    SortOrderScope(const SortOrderScope&) = delete;
    SortOrderScope& operator=(const SortOrderScope&) = delete;

   private:
    ExecContext& ec_;
  };

  bool sort_cache_active() const { return sort_cache_depth_ > 0; }
  /// Cached row order for (data, rows, xmask, ymask), or nullptr.
  const std::vector<uint32_t>* FindSortOrder(const void* data, size_t rows,
                                             uint32_t xmask,
                                             uint32_t ymask) const;
  /// Stores a copy of `order` under the key (no-op outside a scope).
  void StoreSortOrder(const void* data, size_t rows, uint32_t xmask,
                      uint32_t ymask, const std::vector<uint32_t>& order);

  /// The process-default context (global pool, shared stats).
  static ExecContext& Default();
  static ExecContext& Resolve(ExecContext* ctx) {
    return ctx != nullptr ? *ctx : Default();
  }

 private:
  struct SortOrderEntry {
    const void* data;
    size_t rows;
    uint32_t xmask, ymask;
    std::vector<uint32_t> order;
  };

  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  mutable ExecStats stats_;
  std::vector<ScratchArena> scratch_;
  int sort_cache_depth_ = 0;
  std::vector<SortOrderEntry> sort_orders_;
};

}  // namespace fmmsw

#endif  // FMMSW_CORE_EXEC_CONTEXT_H_
