#ifndef FMMSW_CORE_EXEC_CONTEXT_H_
#define FMMSW_CORE_EXEC_CONTEXT_H_

/// \file
/// The shared execution substrate threaded from the public facade
/// (core/api) through every engine down into the relational operators and
/// the PANDA executor. One ExecContext bundles
///
///   - a thread-pool handle (the process-wide FMMSW_THREADS pool by
///     default, or a private pool of an explicit size — tests use the
///     latter to compare thread counts inside one process),
///   - reusable scratch arenas, one per worker, so hot paths (radix sort,
///     degree grouping, WCOJ worker stacks) stop re-allocating their
///     temporaries on every call, and
///   - per-op stats counters: joins/semijoins executed, tuples
///     materialized, tuples *not* materialized thanks to fused
///     existence-only probes, WCOJ task fan-out, MM kernel launches,
///     sort-order cache hits, and tracked memory (current/peak bytes).
///     Counters are relaxed atomics so operators running inside parallel
///     regions can bump them safely, and
///   - a QueryGuard: cooperative guardrails (cancellation, wall-clock
///     deadline, memory budget, max-output-rows) polled at every morsel
///     boundary of the exec pipeline and armed per run by the
///     status-returning entry points (RunGuarded below, the *Guarded
///     engine wrappers, core/api.h EvaluateBooleanGuarded). Each poll
///     point names its FaultSite plane, which the deterministic fault
///     harness (FaultPlan / FMMSW_FAULT_PLAN) keys on to inject
///     retryable aborts site-by-site; the recovery plane
///     (core/recovery.h) and admission controller (core/admission.h)
///     sit on top and report through the admitted/queued_ns/shed/
///     retries/degraded_runs counters.
///
/// Every operator and engine entry point accepts an `ExecContext* ctx`
/// (nullptr = the process-default context, ExecContext::Default()). An
/// ExecContext is meant to be driven by one user thread at a time; worker
/// indices passed to scratch() come from ThreadPool::Run.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/exec_status.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/thread_safety.h"

namespace fmmsw {

/// Per-op execution counters (relaxed atomics; see Bump below).
///
/// Index-build counters (the flat_index.h structures report through the
/// context they were built with):
///   - index_builds          : context-aware flat-index builds (FlatMultimap
///                             via ExistProbe/Join/Semijoin, bulk
///                             FlatInterner builds).
///   - index_sharded_builds  : the subset that took the parallel sharded
///                             path (disjoint per-shard sub-tables written
///                             by pool workers without locks).
///   - index_build_rows      : rows scanned into those indexes.
///   - index_build_ns        : nanoseconds spent inside index
///                             construction, summed across builds (and
///                             therefore across workers: builds running
///                             concurrently inside a parallel region each
///                             contribute their own elapsed time, so the
///                             total is aggregate build time and can
///                             exceed wall time). Benches subtract
///                             snapshots of this to report index-build
///                             time separately from enumeration time.
/// Wide-key sort-layer counters (relation/row_sort.h; every
/// comparator-free row sort — SortAndDedupe at any arity, the
/// generic-WCOJ trie build, degree-grouping orders — reports through the
/// context it ran on):
///   - sort_calls            : row sorts executed by the layer.
///   - sort_rows             : rows passed through those sorts.
///   - sort_parallel         : the subset that entered the pool-parallel
///                             radix regime (chunk histograms +
///                             chunk-ordered scatter; bit-identical to the
///                             serial sort, see util/radix.h — a racing
///                             fan-out on a shared pool can still degrade
///                             individual passes to the caller alone).
///   - sort_ns               : nanoseconds inside the sort layer
///                             (pack + radix + unpack), summed across
///                             calls and workers like index_build_ns.
/// WCOJ sub-level stealing counters:
///   - wcoj_coop_tasks       : top-level tasks whose depth-1 candidate
///                             range was executed cooperatively (claimed in
///                             blocks from a shared atomic cursor).
///   - wcoj_steal_claims     : depth-1 blocks claimed by a worker that had
///                             run out of whole tasks (the stealing path).
/// MM micro-kernel counters (mm/kernel.h; mm_products above counts
/// engine-level product launches, these count the kernel layer under it):
///   - mm_base_calls         : packed-panel base-case products (GemmAdd
///                             invocations: blocked slabs, Strassen cutoff
///                             leaves, rectangular in-place blocks).
///   - mm_simd_calls         : the subset that ran a vector inner kernel
///                             (AVX2; 0 under FMMSW_SIMD=off or on
///                             non-AVX2 hardware).
///   - mm_bitsliced_calls    : bit-sliced 0/1 counting products.
///   - mm_pack_ns            : nanoseconds spent packing A/B panels and
///                             bit-planes, summed across calls (and
///                             workers, like index_build_ns).
/// Contract (machine-enforced by tools/check_contracts.py): every counter
/// declared here must (a) carry a doc comment, (b) be zeroed in Reset(),
/// and (c) be printed by ToString(). Adding a counter means touching all
/// three places, or the `stats-coverage` lint fails the build.
struct ExecStats {
  std::atomic<int64_t> join_calls{0};           ///< Join operator invocations
  std::atomic<int64_t> join_output_tuples{0};   ///< tuples materialized by Join
  std::atomic<int64_t> fused_joins{0};          ///< Join calls with exist filters
  std::atomic<int64_t> fused_probe_tuples{0};   ///< join pairs probed against filters
  std::atomic<int64_t> fused_drop_tuples{0};    ///< pairs rejected, never materialized
  std::atomic<int64_t> fused_emit_tuples{0};    ///< pairs surviving every filter
  std::atomic<int64_t> semijoin_calls{0};       ///< Semijoin operator invocations
  std::atomic<int64_t> semijoin_all_calls{0};   ///< SemijoinAll (fused chain) calls
  std::atomic<int64_t> antijoin_calls{0};       ///< Antijoin operator invocations
  std::atomic<int64_t> project_calls{0};        ///< Project operator invocations
  std::atomic<int64_t> union_calls{0};          ///< Union operator invocations
  std::atomic<int64_t> select_calls{0};         ///< SelectEq operator invocations
  std::atomic<int64_t> partition_calls{0};      ///< PartitionByDegree invocations
  std::atomic<int64_t> sort_order_hits{0};      ///< partition sort orders reused
  std::atomic<int64_t> sort_calls{0};           ///< wide-key row sorts executed
  std::atomic<int64_t> sort_rows{0};            ///< rows through the sort layer
  std::atomic<int64_t> sort_parallel{0};        ///< ...sorts run pool-parallel
  std::atomic<int64_t> sort_ns{0};              ///< wall ns inside the sort layer
  std::atomic<int64_t> index_builds{0};         ///< context-aware index builds
  std::atomic<int64_t> index_sharded_builds{0}; ///< ...that ran sharded/parallel
  std::atomic<int64_t> index_build_rows{0};     ///< rows scanned into indexes
  std::atomic<int64_t> index_build_ns{0};       ///< wall ns inside index builds
  std::atomic<int64_t> wcoj_runs{0};            ///< generic-WCOJ executions
  std::atomic<int64_t> wcoj_parallel_runs{0};   ///< ...that fanned out on the pool
  std::atomic<int64_t> wcoj_tasks{0};           ///< top-level candidate runs fanned out
  std::atomic<int64_t> wcoj_coop_tasks{0};      ///< tasks run via shared depth-1 cursor
  std::atomic<int64_t> wcoj_steal_claims{0};    ///< depth-1 blocks claimed by dry workers
  std::atomic<int64_t> mm_products{0};          ///< matrix-kernel launches
  std::atomic<int64_t> mm_base_calls{0};        ///< packed micro-kernel products
  std::atomic<int64_t> mm_simd_calls{0};        ///< ...with a vector inner kernel
  std::atomic<int64_t> mm_bitsliced_calls{0};   ///< bit-sliced 0/1 counting products
  std::atomic<int64_t> mm_pack_ns{0};           ///< wall ns packing panels/planes
  // Planner counters (lp/ + width/; see the README "Planner" section):
  std::atomic<int64_t> lp_solves{0};            ///< simplex solves (double+exact)
  std::atomic<int64_t> lp_warm_starts{0};       ///< ...that replayed a prior basis
  std::atomic<int64_t> lp_pivots{0};            ///< total simplex pivots
  std::atomic<int64_t> width_cache_hits{0};     ///< WidthCache lookups served
  std::atomic<int64_t> plan_ns{0};              ///< wall ns inside width planning
  // Memory accounting (maintained by QueryGuard::ChargeMem/ReleaseMem;
  // charged at the data plane's large transient allocations — packed sort
  // records, trie buffers, flat-index slot arrays, MM pads/panels):
  std::atomic<int64_t> mem_current_bytes{0};    ///< tracked live allocation bytes
  std::atomic<int64_t> mem_peak_bytes{0};       ///< high-water mark of the above
  // Recovery & admission counters (core/recovery.h + core/admission.h):
  std::atomic<int64_t> admitted{0};             ///< queries admitted to a slot
  std::atomic<int64_t> queued_ns{0};            ///< wall ns queued for admission
  std::atomic<int64_t> shed{0};                 ///< queries shed with kRejected
  std::atomic<int64_t> retries{0};              ///< retryable aborts absorbed
  std::atomic<int64_t> degraded_runs{0};        ///< attempts below the top rung
  // Catalog & snapshot counters (core/database.h):
  std::atomic<int64_t> commits{0};              ///< catalog transactions committed
  std::atomic<int64_t> rollbacks{0};            ///< transactions rolled back
  std::atomic<int64_t> snapshots_pinned{0};     ///< catalog snapshots handed out
  std::atomic<int64_t> versions_retired{0};     ///< relation versions superseded
  std::atomic<int64_t> width_cache_evictions{0};///< WidthCache LRU evictions

  void Reset();
  /// Human-readable counter dump (one `name : value` line per counter).
  std::string ToString() const;
};

/// Relaxed add on a stats counter.
// relaxed: stats-only — counters are monotone sums read for reporting
// after the pool fan-in (which orders them); no control flow or data
// publication depends on their ordering mid-flight.
inline void Bump(std::atomic<int64_t>& counter, int64_t delta = 1) {
  counter.fetch_add(delta, std::memory_order_relaxed);
}

/// Stable tag identifying *which plane* a poll point sits in. Every
/// Poll() call site names its plane, which gives the fault harness a
/// deterministic per-site ordinal stream: the k-th mm poll of a run is
/// the k-th mm poll at every thread count, because per-site ordinals are
/// handed out by an atomic fetch_add (exactly one worker observes each
/// ordinal, regardless of interleaving). The `fault-site-coverage` lint
/// in tools/check_contracts.py keeps every tag wired to at least one
/// live call site.
enum class FaultSite {
  kWcoj = 0,  ///< generic-WCOJ task claims and depth-1 coop blocks
  kSort,      ///< radix sort passes and scatter chunks (util/radix)
  kIndex,     ///< sharded flat-index build chunks (relation/flat_index)
  kMm,        ///< MM slabs, Strassen recursions, bit-plane rows (mm/)
  kLp,        ///< simplex pivots and width-search steps (lp/ + width/)
  kPanda,     ///< PANDA proof-sequence steps (panda/)
  kOps,       ///< relational operators + TD/elimination glue loops
};
inline constexpr int kNumFaultSites = 7;

/// Lower-case tag name used by the FMMSW_FAULT_PLAN grammar, logs, and
/// the fault-site-coverage lint.
const char* FaultSiteName(FaultSite site);

/// A deterministic per-site fault schedule. For each site, at most one
/// rule of each kind:
///   - `at[s]  = n` (n > 0): every poll of site `s` with per-site
///     ordinal >= n throws — sticky, like a real resource violation, so
///     all workers of a fan-out abort promptly once one trips.
///   - `every[s] = k` (k > 0): polls whose per-site ordinal is a
///     multiple of k throw — a repeating schedule that survives
///     re-arms, for soaking retry loops.
/// Injected aborts carry ExecStatus::kMemoryLimitExceeded so they are
/// *retryable*: the recovery plane (core/recovery.h) treats them as
/// genuine memory pressure and walks its degradation ladder, which is
/// exactly the path CI soaks site-by-site. (The legacy single-counter
/// FMMSW_FAULT_AT/SetFaultAt harness keeps throwing kCancelled and is
/// unaffected.)
struct FaultPlan {
  int64_t at[kNumFaultSites] = {0, 0, 0, 0, 0, 0, 0};
  int64_t every[kNumFaultSites] = {0, 0, 0, 0, 0, 0, 0};

  bool empty() const {
    for (int s = 0; s < kNumFaultSites; ++s) {
      if (at[s] > 0 || every[s] > 0) return false;
    }
    return true;
  }
};

/// Parses the FMMSW_FAULT_PLAN grammar: `;`-separated clauses, each
/// `<site>:<n>` (fire at per-site poll n and after) or
/// `<site>:every-<k>` (fire at every k-th per-site poll), where <site>
/// is a FaultSiteName. Example: "wcoj:7;sort:every-64;lp:100".
/// Returns false (with a diagnostic in *error) on an unknown site tag,
/// a non-positive count, or a malformed clause; *plan is only written
/// on success.
bool ParseFaultPlan(const std::string& spec, FaultPlan* plan,
                    std::string* error);

/// Cooperative guardrails for one query at a time on an ExecContext:
/// a cancellation token, a wall-clock deadline, a memory budget, and a
/// max-output-rows limit (see QueryLimits in exec_status.h).
///
/// The engines call Poll(site) at every morsel boundary — WCOJ task
/// claims and depth-1 coop blocks, ParallelFor chunk claims, radix sort
/// passes and scatter chunks, sharded index-build chunks, MM
/// slabs/Strassen recursions, PANDA proof steps — naming the FaultSite
/// plane the boundary belongs to. The fast path is a single relaxed
/// load of `armed_`: an unguarded query (no limits armed, no Cancel()
/// issued) pays ~1ns per poll. When armed, a violation throws
/// QueryAbort, which unwinds through the (exception-safe) engines to
/// the status-returning entry point that armed the guard (RunGuarded
/// below).
///
/// Memory accounting runs unconditionally (it feeds the
/// mem_current_bytes/mem_peak_bytes stats); the budget is only enforced
/// while armed. An armed deadline reads the steady clock at every poll —
/// polls sit at morsel boundaries (the hot enumeration loops amortize
/// them locally, e.g. every 256 value runs), so the read is off the
/// per-tuple path. Violations are sticky until Disarm(), so every
/// worker inside a fan-out aborts at its next poll once any one of
/// them trips a limit.
///
/// Fault injection for the unwind tests, two harnesses:
///   - Legacy global counter: FMMSW_FAULT_AT=<n> in the environment
///     (read at Arm() time) or SetFaultAt(n) aborts the query with
///     kCancelled at the n-th armed poll of any site.
///   - Site-keyed plan: FMMSW_FAULT_PLAN=<grammar> (re-read at every
///     Arm(), so unsetenv + re-run is clean) or SetFaultPlan(plan)
///     injects *retryable* kMemoryLimitExceeded aborts on per-site
///     ordinals (see FaultPlan above). A programmatic plan is sticky
///     across Arm/Disarm — it shadows the environment until cleared
///     with SetFaultPlan(FaultPlan{}) — so a recovery ladder's re-armed
///     retries stay under fault, which is the point.
/// SetPollHook installs a callback invoked with each armed poll's
/// global ordinal (it may Cancel() or throw QueryAbort itself; it must
/// be thread-safe and must not call SetPollHook reentrantly — the hook
/// is invoked under hook_mu_).
///
/// Synchronization model (checked by clang -Wthread-safety and the
/// `relaxed-justified` lint): all guard state is either an atomic with a
/// written `// relaxed:` invariant or guarded by hook_mu_. Arm/Disarm
/// are called by the single driving thread *outside* any fan-out; the
/// pool's mutex handshake (ThreadPool::Run) publishes the armed limits
/// to workers, so the limit fields themselves need no ordering. Cancel()
/// may race in from any thread: its relaxed stores are latches whose
/// only consumer is a poll that retries forever, so delayed visibility
/// delays the abort by at most one poll, never loses it.
class QueryGuard {
 public:
  explicit QueryGuard(ExecStats* stats) : stats_(stats) {}

  // ---- external control (any thread, any time) ----
  /// Requests cancellation: the running query aborts with kCancelled at
  /// its next poll. Sticky until the owning guarded execution ends.
  void Cancel() {
    // relaxed: one-way latches polled repeatedly — a worker that misses
    // this store sees it on a later poll (violations are sticky until
    // Disarm), so ordering buys nothing and the store stays wait-free.
    cancelled_.store(true, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }
  bool cancelled() const {
    // relaxed: advisory read-back of the latch above.
    return cancelled_.load(std::memory_order_relaxed);
  }

  // ---- arm/disarm (done by RunGuarded around one execution) ----
  void Arm(const QueryLimits& limits);
  void Disarm();

  // ---- poll points ----
  /// Throws QueryAbort if the query was cancelled, the deadline passed,
  /// the memory budget is exceeded, or fault injection fires. `site`
  /// names the poll point's plane for the site-keyed fault harness.
  /// No-op (one relaxed load) when nothing is armed.
  void Poll(FaultSite site) {
    // relaxed: the ~1ns disarmed fast path. Arm() happens-before the
    // fan-out that polls (pool handshake), so an armed query always sees
    // true; an async Cancel() is a latch re-polled at the next morsel.
    if (!armed_.load(std::memory_order_relaxed)) return;
    PollSlow(site);
  }

  // ---- memory accounting ----
  /// Records `bytes` of tracked allocation; throws kMemoryLimitExceeded
  /// if an armed budget is now exceeded (the charge stays recorded — the
  /// caller's MemCharge releases it during unwind).
  void ChargeMem(int64_t bytes) {
    // relaxed: accounting sums — the fetch_add is an atomic RMW so the
    // running total is exact regardless of ordering; the peak CAS loop is
    // monotone; the budget comparison tolerates momentary staleness
    // (cooperative enforcement, re-checked at every charge and poll).
    const int64_t now =
        stats_->mem_current_bytes.fetch_add(bytes,
                                            std::memory_order_relaxed) +
        bytes;
    int64_t peak = stats_->mem_peak_bytes.load(std::memory_order_relaxed);
    while (now > peak && !stats_->mem_peak_bytes.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    const int64_t budget = mem_budget_.load(std::memory_order_relaxed);
    if (budget > 0 && now > budget) ThrowMemoryLimit(now, budget);
  }
  void ReleaseMem(int64_t bytes) {
    // relaxed: exact atomic RMW on the accounting sum (see ChargeMem).
    stats_->mem_current_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }

  // ---- output-row accounting (amortized batches from emit loops) ----
  /// Adds `rows` emitted tuples; throws kCapacityExceeded once an armed
  /// max_output_rows limit is crossed. Enforcement is amortized: callers
  /// flush local counts every few thousand emits, so the abort lands
  /// within one batch of the limit.
  void CountRows(int64_t rows) {
    // relaxed: limit fields are published by Arm() before the fan-out
    // (pool handshake); the row total is an exact atomic RMW and the
    // threshold check is re-run on every batch, so a stale-by-one-batch
    // view only shifts *where* the abort lands, never whether.
    const int64_t limit = row_limit_.load(std::memory_order_relaxed);
    if (limit <= 0) return;
    const int64_t now =
        rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
    if (now > limit) ThrowRowLimit(now, limit);
  }
  /// True when a max_output_rows limit is armed (emit loops skip their
  /// local batching entirely when it is not).
  bool row_limit_armed() const {
    // relaxed: published by Arm() before the fan-out (see CountRows).
    return row_limit_.load(std::memory_order_relaxed) > 0;
  }

  // ---- fault injection (tests) ----
  void SetFaultAt(int64_t poll_number) {
    // relaxed: test-only latch, installed before the run it targets;
    // same retry-until-seen argument as Cancel().
    fault_at_.store(poll_number, std::memory_order_relaxed);
    if (poll_number > 0) armed_.store(true, std::memory_order_relaxed);
  }
  /// Installs a programmatic site-keyed fault plan. Sticky across
  /// Arm/Disarm (so re-armed recovery retries stay under fault) and
  /// shadows FMMSW_FAULT_PLAN until cleared by passing an empty plan.
  /// Call from the driving thread between guarded executions only.
  void SetFaultPlan(const FaultPlan& plan);
  void SetPollHook(std::function<void(int64_t)> hook) FMMSW_EXCLUDES(hook_mu_);

  /// Armed polls observed since the last Arm().
  // relaxed: monotone test/diagnostic counter, read after the run.
  int64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  /// Armed polls of one site observed since the last Arm().
  int64_t site_polls(FaultSite site) const {
    // relaxed: monotone test/diagnostic counter, read after the run.
    return site_polls_[static_cast<int>(site)].load(
        std::memory_order_relaxed);
  }

 private:
  void PollSlow(FaultSite site) FMMSW_EXCLUDES(hook_mu_);
  [[noreturn]] void ThrowMemoryLimit(int64_t now, int64_t budget);
  [[noreturn]] void ThrowRowLimit(int64_t now, int64_t limit);
  [[noreturn]] void ThrowPlanFault(FaultSite site, int64_t ordinal);

  ExecStats* stats_;
  /// True iff any poll must take the slow path (limit armed, Cancel()
  /// issued, fault injection or hook installed).
  std::atomic<bool> armed_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = none
  std::atomic<int64_t> mem_budget_{0};   ///< bytes; 0 = none
  std::atomic<int64_t> row_limit_{0};    ///< rows; 0 = none
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> polls_{0};
  std::atomic<int64_t> fault_at_{0};     ///< 0 = disabled
  // Site-keyed fault plane. plan_at_/plan_every_ hold the active plan's
  // rules (0 = none); site_polls_ are the per-site ordinal streams,
  // reset at every Arm(). plan_set_ marks a sticky programmatic plan
  // (SetFaultPlan); otherwise Arm() re-reads FMMSW_FAULT_PLAN.
  std::atomic<int64_t> plan_at_[kNumFaultSites] = {};
  std::atomic<int64_t> plan_every_[kNumFaultSites] = {};
  std::atomic<int64_t> site_polls_[kNumFaultSites] = {};
  /// Fast gate: true iff any plan rule is active this arm.
  std::atomic<bool> has_plan_{false};
  /// True while a programmatic plan (SetFaultPlan) shadows the env.
  std::atomic<bool> plan_set_{false};
  /// Fast-path gate for hook_ below: polls skip the mutex entirely when
  /// no hook is installed (the production case).
  std::atomic<bool> has_hook_{false};
  /// Protects hook_ (a std::function is not atomically assignable; the
  /// mutex makes SetPollHook safe against concurrent armed polls).
  Mutex hook_mu_;
  std::function<void(int64_t)> hook_ FMMSW_GUARDED_BY(hook_mu_);
};

/// Reusable per-worker scratch buffers. Callers resize/clear as needed;
/// capacity persists across calls, which is the whole point. Exclusive
/// use is enforced by TryAcquire: operators that may be reached from
/// inside parallel regions attempt the acquire and fall back to local
/// buffers when the arena is already held by another caller.
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(ScratchArena&& other) noexcept
      : u32_(std::move(other.u32_)),
        u64_(std::move(other.u64_)),
        u64b_(std::move(other.u64b_)),
        keyed_(std::move(other.keyed_)),
        keyedb_(std::move(other.keyedb_)) {
    // A held arena must never be relocated: the holder's reference would
    // dangle and the fresh busy_ flag would hand the buffers to a second
    // caller.
    // relaxed: debug assertion on a context with no legitimate
    // concurrent holder; a racing acquire is itself the bug being
    // flagged.
    FMMSW_DCHECK(!other.busy_.load(std::memory_order_relaxed) &&
                 "moving a ScratchArena that is still acquired");
  }

  /// Atomically claims the arena; returns false if another caller holds
  /// it (use local buffers instead). The winning CAS (seq_cst, hence
  /// acquire) pairs with Release()'s release store: the new holder
  /// observes every buffer write the previous holder made.
  bool TryAcquire() {
    bool expected = false;
    return busy_.compare_exchange_strong(expected, true);
  }
  void Release() { busy_.store(false, std::memory_order_release); }

  std::vector<uint32_t>& u32() { return u32_; }
  std::vector<uint64_t>& u64() { return u64_; }
  /// Second 64-bit buffer, e.g. the ping-pong half of a radix sort.
  std::vector<uint64_t>& u64b() { return u64b_; }
  std::vector<std::pair<uint64_t, uint32_t>>& keyed() { return keyed_; }
  std::vector<std::pair<uint64_t, uint32_t>>& keyedb() { return keyedb_; }

 private:
  std::atomic<bool> busy_{false};
  std::vector<uint32_t> u32_;
  std::vector<uint64_t> u64_;
  std::vector<uint64_t> u64b_;
  std::vector<std::pair<uint64_t, uint32_t>> keyed_;
  std::vector<std::pair<uint64_t, uint32_t>> keyedb_;
};

class ExecContext {
 public:
  /// Shares the process-wide pool (sized by FMMSW_THREADS).
  ExecContext();
  /// Owns a private pool with exactly `threads` workers. Lets tests and
  /// embedders pick a parallelism level without touching the environment.
  explicit ExecContext(int threads);
  ~ExecContext();
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  ThreadPool& pool() const { return *pool_; }
  int threads() const { return pool_->threads(); }
  ExecStats& stats() const { return stats_; }
  /// Guardrails for the query currently driven on this context (poll
  /// points, cancellation, limits, memory accounting). One guarded
  /// execution at a time per context; see RunGuarded below.
  QueryGuard& guard() const { return guard_; }
  /// Scratch arena of worker `worker` (0 = the calling thread outside
  /// parallel regions).
  ScratchArena& scratch(int worker = 0) { return scratch_[worker]; }

  // ---- Partition sort-order cache -------------------------------------
  // PartitionByDegree sorts its input once per (relation, X, Y). Within a
  // SortOrderScope (opened by e.g. the PANDA proof-sequence executor,
  // whose tables stay alive in its TableMap for the whole execution),
  // repeated partitions of the same stored table reuse the cached order
  // instead of re-sorting. The cache is keyed on the table's buffer
  // address + row count + column masks, so it is only safe while the
  // tables it refers to are pinned — hence the explicit scope, which
  // clears the cache on entry and exit.

  /// RAII activation of the sort-order cache (nestable).
  class SortOrderScope {
   public:
    explicit SortOrderScope(ExecContext& ec);
    ~SortOrderScope();
    SortOrderScope(const SortOrderScope&) = delete;
    SortOrderScope& operator=(const SortOrderScope&) = delete;

   private:
    ExecContext& ec_;
  };

  bool sort_cache_active() const { return sort_cache_depth_ > 0; }
  /// Cached row order for (data, rows, xmask, ymask), or nullptr.
  const std::vector<uint32_t>* FindSortOrder(const void* data, size_t rows,
                                             uint32_t xmask,
                                             uint32_t ymask) const;
  /// Stores a copy of `order` under the key (no-op outside a scope).
  void StoreSortOrder(const void* data, size_t rows, uint32_t xmask,
                      uint32_t ymask, const std::vector<uint32_t>& order);

  /// The process-default context (global pool, shared stats).
  static ExecContext& Default();
  static ExecContext& Resolve(ExecContext* ctx) {
    return ctx != nullptr ? *ctx : Default();
  }

 private:
  struct SortOrderEntry {
    const void* data;
    size_t rows;
    uint32_t xmask, ymask;
    std::vector<uint32_t> order;
  };

  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  mutable ExecStats stats_;
  mutable QueryGuard guard_{&stats_};
  std::vector<ScratchArena> scratch_;
  int sort_cache_depth_ = 0;
  std::vector<SortOrderEntry> sort_orders_;
};

/// RAII lease of the first free worker arena on a context, or unbound
/// when every arena is held (callers fall back to local buffers). The
/// destructor releases during normal return *and* exception unwinding —
/// the raw TryAcquire/Release pattern would leave the arena busy forever
/// if a QueryAbort unwound between the two calls.
class ArenaLease {
 public:
  ArenaLease() = default;
  explicit ArenaLease(ExecContext& ec) {
    for (int w = 0; w < ec.threads(); ++w) {
      if (ec.scratch(w).TryAcquire()) {
        arena_ = &ec.scratch(w);
        break;
      }
    }
  }
  /// Leases exactly `arena` if it is free.
  explicit ArenaLease(ScratchArena& arena) {
    if (arena.TryAcquire()) arena_ = &arena;
  }
  ArenaLease(ArenaLease&& other) noexcept : arena_(other.arena_) {
    other.arena_ = nullptr;
  }
  ArenaLease& operator=(ArenaLease&& other) noexcept {
    if (this != &other) {
      if (arena_ != nullptr) arena_->Release();
      arena_ = other.arena_;
      other.arena_ = nullptr;
    }
    return *this;
  }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;
  ~ArenaLease() {
    if (arena_ != nullptr) arena_->Release();
  }

  /// The leased arena, or nullptr when unbound.
  ScratchArena* get() const { return arena_; }
  explicit operator bool() const { return arena_ != nullptr; }

 private:
  ScratchArena* arena_ = nullptr;
};

/// RAII memory charge against a context's guard: Add() records bytes
/// (and may throw kMemoryLimitExceeded once an armed budget is
/// exceeded); the destructor releases everything recorded so far, so an
/// unwinding QueryAbort leaves mem_current_bytes balanced. Default
/// construction is unbound (no-op), letting call sites charge only when
/// a context is available.
class MemCharge {
 public:
  MemCharge() = default;
  MemCharge(ExecContext& ec, int64_t bytes) : guard_(&ec.guard()) {
    try {
      Add(bytes);
    } catch (...) {
      // A throwing constructor never runs the destructor: release the
      // bytes ChargeMem already recorded or they outlive the unwind and
      // shrink every later query's budget on this context.
      if (bytes_ != 0) guard_->ReleaseMem(bytes_);
      throw;
    }
  }
  explicit MemCharge(ExecContext& ec) : guard_(&ec.guard()) {}
  MemCharge(MemCharge&& other) noexcept
      : guard_(other.guard_), bytes_(other.bytes_) {
    other.guard_ = nullptr;
    other.bytes_ = 0;
  }
  MemCharge& operator=(MemCharge&&) = delete;
  MemCharge(const MemCharge&) = delete;
  MemCharge& operator=(const MemCharge&) = delete;
  ~MemCharge() {
    if (guard_ != nullptr && bytes_ != 0) guard_->ReleaseMem(bytes_);
  }

  /// Charges `more` bytes. The local total is bumped before the guard
  /// call, so when ChargeMem throws over-budget the destructor still
  /// releases the full recorded amount.
  void Add(int64_t more) {
    if (guard_ == nullptr || more <= 0) return;
    bytes_ += more;
    guard_->ChargeMem(more);
  }
  int64_t bytes() const { return bytes_; }

 private:
  QueryGuard* guard_ = nullptr;
  int64_t bytes_ = 0;
};

/// Runs `fn` with `limits` armed on `ec`'s guard and converts a
/// QueryAbort (or std::bad_alloc) unwinding out of it into an
/// ExecResult. The guard is disarmed on every path — cancellation,
/// fault injection, and partial row/poll counts never leak into the
/// next query, so a failed ExecContext is immediately reusable (arenas
/// are released by RAII during the unwind; stats are preserved).
template <typename Fn>
ExecResult RunGuarded(ExecContext& ec, const QueryLimits& limits, Fn&& fn) {
  struct ArmScope {
    QueryGuard& g;
    ~ArmScope() { g.Disarm(); }
  } scope{ec.guard()};
  ec.guard().Arm(limits);
  ExecResult result;
  try {
    fn();
  } catch (const QueryAbort& e) {
    result.status = e.status();
    result.message = e.what();
  } catch (const std::bad_alloc&) {
    result.status = ExecStatus::kMemoryLimitExceeded;
    result.message = "allocation failed (std::bad_alloc)";
  }
  return result;
}

/// ParallelFor over a context's pool that polls the context's guard at
/// every chunk claim — the standard morsel boundary for data-parallel
/// loops (MM row slabs, rectangular block grids, bit-plane rows).
/// `site` tags the polls for the site-keyed fault harness (callers pass
/// the plane the loop body belongs to, e.g. FaultSite::kMm).
inline void ParallelFor(ExecContext& ec, FaultSite site, int64_t n,
                        const std::function<void(int64_t, int64_t)>& chunk,
                        int64_t grain = 1) {
  QueryGuard& g = ec.guard();
  ParallelFor(
      ec.pool(), n,
      [&g, site, &chunk](int64_t begin, int64_t end) {
        g.Poll(site);
        chunk(begin, end);
      },
      grain);
}

}  // namespace fmmsw

#endif  // FMMSW_CORE_EXEC_CONTEXT_H_
