#include "core/api.h"

#include <chrono>

#include "engine/strategy.h"
#include "engine/td_eval.h"
#include "engine/triangle.h"
#include "engine/wcoj.h"

namespace fmmsw {

WidthReport ComputeWidths(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  const auto t0 = std::chrono::steady_clock::now();
  WidthReport out;
  out.rho_star = RhoStar(h, &ec);
  out.fhtw = Fhtw(h, &ec);
  auto subw = SubmodularWidth(h, &ec);
  out.subw = subw.value;
  out.lps_solved += subw.lps_solved;
  out.lp_warm_starts += subw.lp_warm_starts;
  out.lp_pivots += subw.lp_pivots;
  auto osubw = OmegaSubw(h, omega, opts, &ec);
  out.omega_subw_lower = osubw.lower;
  out.omega_subw_upper = osubw.upper;
  out.omega_subw_exact = osubw.exact;
  out.num_mm_terms = osubw.num_mm_terms;
  out.lps_solved += osubw.lps_solved;
  out.lp_warm_starts += osubw.lp_warm_starts;
  out.lp_pivots += osubw.lp_pivots;
  out.from_cache = osubw.from_cache;
  out.plan_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

std::string FormatWidthReport(const Hypergraph& h, const Rational& omega,
                              const WidthReport& r) {
  std::string out;
  out += "query      : " + h.ToString() + "\n";
  out += "omega      : " + omega.ToString() + " (~" +
         std::to_string(omega.ToDouble()) + ")\n";
  out += "rho*       : " + r.rho_star.ToString() + " (~" +
         std::to_string(r.rho_star.ToDouble()) + ")\n";
  out += "fhtw       : " + r.fhtw.ToString() + " (~" +
         std::to_string(r.fhtw.ToDouble()) + ")\n";
  out += "subw       : " + r.subw.ToString() + " (~" +
         std::to_string(r.subw.ToDouble()) + ")\n";
  if (r.omega_subw_exact) {
    out += "w-subw     : " + r.omega_subw_upper.ToString() + " (~" +
           std::to_string(r.omega_subw_upper.ToDouble()) + ", exact)\n";
  } else {
    out += "w-subw     : in [" + r.omega_subw_lower.ToString() + ", " +
           r.omega_subw_upper.ToString() + "] (~" +
           std::to_string(r.omega_subw_lower.ToDouble()) + " .. ~" +
           std::to_string(r.omega_subw_upper.ToDouble()) + ")\n";
  }
  return out;
}

bool EvaluateBoolean(const Hypergraph& h, const QueryInput& db,
                     EvalStrategy strategy, ExecContext* ctx) {
  switch (strategy) {
    case EvalStrategy::kWcoj:
      return WcojBoolean(h, db, ctx);
    case EvalStrategy::kBestTd:
      return TdBooleanBest(h, db, ctx);
    case EvalStrategy::kElimination: {
      EliminationPlan plan = ForLoopPlan(h);
      return ExecutePlan(h, db, plan, {}, nullptr, ctx);
    }
  }
  return false;
}

ExecResult ValidateQuery(const Hypergraph& h, const QueryInput& db) {
  const auto invalid = [](std::string msg) {
    return ExecResult{ExecStatus::kInvalidArgument, std::move(msg)};
  };
  if (h.edges().empty()) {
    return invalid("query has no hyperedges");
  }
  if (db.relations.size() != h.edges().size()) {
    return invalid("database has " + std::to_string(db.relations.size()) +
                   " relations for " + std::to_string(h.edges().size()) +
                   " hyperedges");
  }
  for (size_t i = 0; i < h.edges().size(); ++i) {
    const VarSet edge = h.edges()[i];
    if (!h.vertices().ContainsAll(edge)) {
      return invalid("edge " + std::to_string(i) +
                     " uses variables outside the hypergraph's vertex set");
    }
    if (db.relations[i].schema() != edge) {
      return invalid("relation " + std::to_string(i) +
                     " schema does not match its hyperedge's variable set");
    }
  }
  return {};
}

ExecResult EvaluateBooleanGuarded(const Hypergraph& h, const QueryInput& db,
                                  bool* result, EvalStrategy strategy,
                                  ExecContext* ctx,
                                  const QueryLimits& limits) {
  ExecResult valid = ValidateQuery(h, db);
  if (!valid.ok()) return valid;
  ExecContext& ec = ExecContext::Resolve(ctx);
  return RunGuarded(ec, limits, [&] {
    *result = EvaluateBoolean(h, db, strategy, &ec);
  });
}

ExecResult EvaluateCountGuarded(const Hypergraph& h, const QueryInput& db,
                                int64_t* count, ExecContext* ctx,
                                const QueryLimits& limits) {
  ExecResult valid = ValidateQuery(h, db);
  if (!valid.ok()) return valid;
  ExecContext& ec = ExecContext::Resolve(ctx);
  return RunGuarded(ec, limits, [&] { *count = WcojCount(h, db, &ec); });
}

ExecResult EvaluateJoinGuarded(const Hypergraph& h, const QueryInput& db,
                               VarSet output_vars, Relation* result,
                               ExecContext* ctx, const QueryLimits& limits) {
  ExecResult valid = ValidateQuery(h, db);
  if (!valid.ok()) return valid;
  ExecContext& ec = ExecContext::Resolve(ctx);
  return RunGuarded(ec, limits, [&] {
    *result = WcojJoin(h, db, output_vars, nullptr, &ec);
  });
}

namespace {

/// Maps a strategy card to a Boolean-query rung closure. `*result` is
/// only written on normal return (an abort unwinds first), so a failed
/// rung can never leak a partial answer.
std::vector<PlanRung> BooleanLadder(const Hypergraph& h, const QueryInput& db,
                                    bool* result) {
  std::vector<PlanRung> ladder;
  if (IsTriangleQuery(h)) {
    for (const StrategyCard& card : TriangleBooleanLadder()) {
      if (card.uses_mm) {
        ladder.push_back({card.name, [&db, card, result](ExecContext& ec) {
                            *result = TriangleMm(db, card.omega, card.kernel,
                                                 nullptr, &ec);
                          }});
      } else {
        ladder.push_back({card.name, [&h, &db, result](ExecContext& ec) {
                            *result = WcojBoolean(h, db, &ec);
                          }});
      }
    }
    return ladder;
  }
  for (const StrategyCard& card : GenericBooleanLadder()) {
    const EvalStrategy strategy = card.name == "elimination"
                                      ? EvalStrategy::kElimination
                                  : card.name == "best-td"
                                      ? EvalStrategy::kBestTd
                                      : EvalStrategy::kWcoj;
    ladder.push_back({card.name, [&h, &db, strategy, result](ExecContext& ec) {
                        *result = EvaluateBoolean(h, db, strategy, &ec);
                      }});
  }
  return ladder;
}

std::vector<PlanRung> CountLadder(const Hypergraph& h, const QueryInput& db,
                                  int64_t* count) {
  std::vector<PlanRung> ladder;
  if (IsTriangleQuery(h)) {
    for (const StrategyCard& card : TriangleCountLadder()) {
      if (card.uses_mm) {
        ladder.push_back({card.name, [&db, card, count](ExecContext& ec) {
                            *count = TriangleCountMm(db, card.kernel, &ec);
                          }});
      } else {
        ladder.push_back({card.name, [&h, &db, count](ExecContext& ec) {
                            *count = WcojCount(h, db, &ec);
                          }});
      }
    }
    return ladder;
  }
  ladder.push_back({"wcoj", [&h, &db, count](ExecContext& ec) {
                      *count = WcojCount(h, db, &ec);
                    }});
  return ladder;
}

}  // namespace

ExecResult EvaluateBooleanWithRecovery(const Hypergraph& h, const QueryInput& db,
                                       bool* result, ExecContext* ctx,
                                       const QueryLimits& limits,
                                       const RetryPolicy& policy,
                                       RecoveryReport* report) {
  ExecResult valid = ValidateQuery(h, db);
  if (!valid.ok()) return valid;
  ExecContext& ec = ExecContext::Resolve(ctx);
  bool scratch = false;
  const ExecResult r = RunWithRecovery(ec, limits, policy,
                                       BooleanLadder(h, db, &scratch), report);
  if (r.ok()) *result = scratch;
  return r;
}

ExecResult EvaluateCountWithRecovery(const Hypergraph& h, const QueryInput& db,
                                     int64_t* count, ExecContext* ctx,
                                     const QueryLimits& limits,
                                     const RetryPolicy& policy,
                                     RecoveryReport* report) {
  ExecResult valid = ValidateQuery(h, db);
  if (!valid.ok()) return valid;
  ExecContext& ec = ExecContext::Resolve(ctx);
  int64_t scratch = 0;
  const ExecResult r = RunWithRecovery(ec, limits, policy,
                                       CountLadder(h, db, &scratch), report);
  if (r.ok()) *count = scratch;
  return r;
}

ExecResult EvaluateJoinWithRecovery(const Hypergraph& h, const QueryInput& db,
                                    VarSet output_vars, Relation* result,
                                    ExecContext* ctx,
                                    const QueryLimits& limits,
                                    const RetryPolicy& policy,
                                    RecoveryReport* report) {
  ExecResult valid = ValidateQuery(h, db);
  if (!valid.ok()) return valid;
  ExecContext& ec = ExecContext::Resolve(ctx);
  // One rung today: WcojJoin is already the memory-lightest strategy
  // that materializes the full join. The ladder shape still buys the
  // deadline re-arming and uniform reporting.
  Relation scratch;
  std::vector<PlanRung> ladder;
  ladder.push_back({"wcoj", [&h, &db, output_vars, &scratch](ExecContext& ec) {
                      scratch = WcojJoin(h, db, output_vars, nullptr, &ec);
                    }});
  const ExecResult r = RunWithRecovery(ec, limits, policy, ladder, report);
  if (r.ok()) *result = std::move(scratch);
  return r;
}

}  // namespace fmmsw
