#include "core/api.h"

#include <chrono>

#include "engine/td_eval.h"
#include "engine/wcoj.h"

namespace fmmsw {

WidthReport ComputeWidths(const Hypergraph& h, const Rational& omega,
                          const OmegaSubwOptions& opts, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  const auto t0 = std::chrono::steady_clock::now();
  WidthReport out;
  out.rho_star = RhoStar(h, &ec);
  out.fhtw = Fhtw(h, &ec);
  auto subw = SubmodularWidth(h, &ec);
  out.subw = subw.value;
  out.lps_solved += subw.lps_solved;
  out.lp_warm_starts += subw.lp_warm_starts;
  out.lp_pivots += subw.lp_pivots;
  auto osubw = OmegaSubw(h, omega, opts, &ec);
  out.omega_subw_lower = osubw.lower;
  out.omega_subw_upper = osubw.upper;
  out.omega_subw_exact = osubw.exact;
  out.num_mm_terms = osubw.num_mm_terms;
  out.lps_solved += osubw.lps_solved;
  out.lp_warm_starts += osubw.lp_warm_starts;
  out.lp_pivots += osubw.lp_pivots;
  out.from_cache = osubw.from_cache;
  out.plan_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

std::string FormatWidthReport(const Hypergraph& h, const Rational& omega,
                              const WidthReport& r) {
  std::string out;
  out += "query      : " + h.ToString() + "\n";
  out += "omega      : " + omega.ToString() + " (~" +
         std::to_string(omega.ToDouble()) + ")\n";
  out += "rho*       : " + r.rho_star.ToString() + " (~" +
         std::to_string(r.rho_star.ToDouble()) + ")\n";
  out += "fhtw       : " + r.fhtw.ToString() + " (~" +
         std::to_string(r.fhtw.ToDouble()) + ")\n";
  out += "subw       : " + r.subw.ToString() + " (~" +
         std::to_string(r.subw.ToDouble()) + ")\n";
  if (r.omega_subw_exact) {
    out += "w-subw     : " + r.omega_subw_upper.ToString() + " (~" +
           std::to_string(r.omega_subw_upper.ToDouble()) + ", exact)\n";
  } else {
    out += "w-subw     : in [" + r.omega_subw_lower.ToString() + ", " +
           r.omega_subw_upper.ToString() + "] (~" +
           std::to_string(r.omega_subw_lower.ToDouble()) + " .. ~" +
           std::to_string(r.omega_subw_upper.ToDouble()) + ")\n";
  }
  return out;
}

bool EvaluateBoolean(const Hypergraph& h, const Database& db,
                     EvalStrategy strategy, ExecContext* ctx) {
  switch (strategy) {
    case EvalStrategy::kWcoj:
      return WcojBoolean(h, db, ctx);
    case EvalStrategy::kBestTd:
      return TdBooleanBest(h, db, ctx);
    case EvalStrategy::kElimination: {
      EliminationPlan plan = ForLoopPlan(h);
      return ExecutePlan(h, db, plan, {}, nullptr, ctx);
    }
  }
  return false;
}

ExecResult ValidateQuery(const Hypergraph& h, const Database& db) {
  const auto invalid = [](std::string msg) {
    return ExecResult{ExecStatus::kInvalidArgument, std::move(msg)};
  };
  if (h.edges().empty()) {
    return invalid("query has no hyperedges");
  }
  if (db.relations.size() != h.edges().size()) {
    return invalid("database has " + std::to_string(db.relations.size()) +
                   " relations for " + std::to_string(h.edges().size()) +
                   " hyperedges");
  }
  for (size_t i = 0; i < h.edges().size(); ++i) {
    const VarSet edge = h.edges()[i];
    if (!h.vertices().ContainsAll(edge)) {
      return invalid("edge " + std::to_string(i) +
                     " uses variables outside the hypergraph's vertex set");
    }
    if (db.relations[i].schema() != edge) {
      return invalid("relation " + std::to_string(i) +
                     " schema does not match its hyperedge's variable set");
    }
  }
  return {};
}

ExecResult EvaluateBooleanGuarded(const Hypergraph& h, const Database& db,
                                  bool* result, EvalStrategy strategy,
                                  ExecContext* ctx,
                                  const QueryLimits& limits) {
  ExecResult valid = ValidateQuery(h, db);
  if (!valid.ok()) return valid;
  ExecContext& ec = ExecContext::Resolve(ctx);
  return RunGuarded(ec, limits, [&] {
    *result = EvaluateBoolean(h, db, strategy, &ec);
  });
}

}  // namespace fmmsw
