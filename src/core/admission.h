#ifndef FMMSW_CORE_ADMISSION_H_
#define FMMSW_CORE_ADMISSION_H_

/// \file
/// Admission control for concurrent guarded queries (ROADMAP item 1:
/// "a million small probe queries coexist with one giant analytic
/// join"). Callers declare a memory class up front — a small probe that
/// touches bounded state, or a heavy analytic join that may claim large
/// transient buffers — and the AdmissionController gates entry so that
/// at most `small_slots` probes and `heavy_slots` analytic queries hold
/// execution slots at once.
///
/// Waiting is FIFO per class (a ticket queue: arrivals enqueue a
/// monotone ticket id and are admitted strictly in id order, so
/// admission order is deterministic given arrival order) and bounded by
/// the query's own deadline: a waiter whose deadline passes leaves the
/// queue with kDeadlineExceeded. Overload is shed immediately — when
/// every slot is busy *and* the class's queue is at max_queued, Admit
/// returns kRejected without blocking, so a traffic spike degrades to
/// fast failures instead of an unbounded queue.
///
/// Observability flows through the context's ExecStats: `admitted`,
/// `queued_ns` (wall time spent waiting, summed), and `shed`
/// (kRejected returns), per the stats-coverage contract.

#include <cstdint>
#include <deque>

#include "core/exec_context.h"
#include "core/exec_status.h"
#include "util/thread_safety.h"

#include <condition_variable>

namespace fmmsw {

/// Declared memory class of a query, chosen by the caller (the
/// controller cannot infer it: the declaration is the contract).
enum class QueryClass {
  kSmallProbe = 0,   ///< bounded state: point lookups, Boolean probes
  kHeavyAnalytic,    ///< may claim large transient buffers (MM hybrids,
                     ///< full joins, width planning)
};
inline constexpr int kNumQueryClasses = 2;

/// Slot/queue sizing. Defaults follow the ROADMAP shape: many cheap
/// probes, one heavyweight at a time.
struct AdmissionConfig {
  int small_slots = 64;   ///< concurrent kSmallProbe slots
  int heavy_slots = 1;    ///< concurrent kHeavyAnalytic slots
  int max_queued = 16;    ///< per-class FIFO bound; beyond it, shed
};

/// Gate for concurrent guarded queries. Thread-safe; one controller is
/// meant to front a set of ExecContexts (one per driving thread).
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config = {});
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII slot held by an admitted query; releasing (destruction) wakes
  /// the class's next FIFO waiter. Default-constructed = not admitted.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : controller_(other.controller_), cls_(other.cls_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket();

    bool admitted() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, QueryClass cls)
        : controller_(controller), cls_(cls) {}

    AdmissionController* controller_ = nullptr;
    QueryClass cls_ = QueryClass::kSmallProbe;
  };

  /// Admits one query of class `cls`, blocking FIFO until a slot frees,
  /// `limits.deadline_ms` (measured from the Admit call) passes, or the
  /// queue overflows. On kOk, *ticket holds the slot until destroyed.
  /// Stats (admitted / queued_ns / shed) are bumped on `ec`.
  ExecResult Admit(QueryClass cls, const QueryLimits& limits,
                   ExecContext& ec, Ticket* ticket) FMMSW_EXCLUDES(mu_);

  /// Live slot holders / waiters of a class (deterministic test probes).
  int active(QueryClass cls) const FMMSW_EXCLUDES(mu_);
  int queued(QueryClass cls) const FMMSW_EXCLUDES(mu_);

 private:
  void Release(QueryClass cls) FMMSW_EXCLUDES(mu_);
  int slots(QueryClass cls) const {
    return cls == QueryClass::kSmallProbe ? config_.small_slots
                                          : config_.heavy_slots;
  }

  const AdmissionConfig config_;
  mutable Mutex mu_;
  /// Signalled on every release and queue departure; waiters re-check
  /// their FIFO position under mu_.
  std::condition_variable cv_;
  int active_[kNumQueryClasses] FMMSW_GUARDED_BY(mu_) = {0, 0};
  uint64_t next_ticket_ FMMSW_GUARDED_BY(mu_) = 1;
  std::deque<uint64_t> queue_[kNumQueryClasses] FMMSW_GUARDED_BY(mu_);
};

}  // namespace fmmsw

#endif  // FMMSW_CORE_ADMISSION_H_
