#ifndef FMMSW_CORE_EXEC_STATUS_H_
#define FMMSW_CORE_EXEC_STATUS_H_

/// \file
/// Terminal status taxonomy for guarded query execution, plus the
/// exception type that carries a violation out of the engines.
///
/// The engines signal guardrail violations (cancellation, deadline,
/// memory budget, capacity caps, bad input) by throwing QueryAbort from
/// a poll point or accounting site; the abort unwinds through the
/// operator/engine stack — which is exception-safe: scratch-arena leases
/// and memory charges are RAII, and ThreadPool::Run captures worker
/// exceptions and rethrows on the caller — until a status-returning
/// entry point (RunGuarded in exec_context.h, the *Guarded engine
/// wrappers, core/api.h EvaluateBooleanGuarded) converts it into an
/// ExecResult. Programmer errors (contract violations) remain
/// FMMSW_CHECK aborts; QueryAbort is reserved for data- and
/// resource-dependent failures a correct program can hit at runtime.
///
/// The recovery plane (core/recovery.h) splits the taxonomy into
/// *retryable* statuses — resource pressure a cheaper plan can dodge
/// (kMemoryLimitExceeded, kCapacityExceeded) — and *terminal* ones that
/// no retry can fix (kCancelled, kDeadlineExceeded, kInvalidArgument).
/// kRejected and kRetryExhausted are produced above the engines: by the
/// admission controller shedding an overloaded queue (core/admission.h)
/// and by RunWithRecovery running out of degradation-ladder rungs.

#include <stdexcept>
#include <string>

namespace fmmsw {

/// Terminal status of a guarded execution.
enum class ExecStatus {
  kOk = 0,
  kCancelled,            ///< QueryGuard::Cancel() (or fault injection) fired
  kDeadlineExceeded,     ///< wall-clock deadline passed at a poll point
  kMemoryLimitExceeded,  ///< tracked allocations exceeded the byte budget
  kCapacityExceeded,     ///< structural cap (2^30-entry flat index,
                         ///< max-output-rows limit, LP pivot budget) hit
  kInvalidArgument,      ///< malformed query/database (arity mismatch,
                         ///< unknown variable, edge/relation count skew)
  kRejected,             ///< shed by the admission controller: no slot and
                         ///< the bounded FIFO queue is full
  kRetryExhausted,       ///< every degradation-ladder rung (or the retry
                         ///< budget) failed with a retryable status
};

/// Stable lower-case name for a status (logs, bench JSON, tests). The
/// switch is total and has no default, so adding an ExecStatus value
/// without naming it here fails the -Wswitch/-Werror CI builds;
/// recovery_test round-trips every value.
inline const char* StatusString(ExecStatus s) {
  switch (s) {
    case ExecStatus::kOk: return "ok";
    case ExecStatus::kCancelled: return "cancelled";
    case ExecStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ExecStatus::kMemoryLimitExceeded: return "memory_limit_exceeded";
    case ExecStatus::kCapacityExceeded: return "capacity_exceeded";
    case ExecStatus::kInvalidArgument: return "invalid_argument";
    case ExecStatus::kRejected: return "rejected";
    case ExecStatus::kRetryExhausted: return "retry_exhausted";
  }
  return "unknown";
}

/// Exception carrying a non-kOk status out of the exec pipeline. Derives
/// from std::runtime_error so legacy callers that bypass the guarded
/// entry points still see a catchable exception instead of an abort.
class QueryAbort : public std::runtime_error {
 public:
  QueryAbort(ExecStatus status, const std::string& message)
      : std::runtime_error(message), status_(status) {}

  ExecStatus status() const { return status_; }

 private:
  ExecStatus status_;
};

/// Resource limits armed on a QueryGuard for one guarded execution.
/// Zero means "no limit" for every field.
struct QueryLimits {
  int64_t deadline_ms = 0;          ///< wall-clock budget from Arm() time
  int64_t memory_budget_bytes = 0;  ///< cap on tracked live allocations
  int64_t max_output_rows = 0;      ///< cap on emitted result tuples
};

/// Outcome of a guarded execution: a status plus a human-readable
/// failure detail (empty on kOk).
struct ExecResult {
  ExecStatus status = ExecStatus::kOk;
  std::string message;

  bool ok() const { return status == ExecStatus::kOk; }
};

}  // namespace fmmsw

#endif  // FMMSW_CORE_EXEC_STATUS_H_
