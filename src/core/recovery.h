#ifndef FMMSW_CORE_RECOVERY_H_
#define FMMSW_CORE_RECOVERY_H_

/// \file
/// Degraded-plan retry above the PR 6 guardrails: when a guarded
/// execution aborts for a *retryable* reason — it tripped its memory
/// budget, or a structural capacity cap like the planner's pivot limit
/// — re-execute the query down a deterministic degradation ladder of
/// successively cheaper strategies instead of surfacing the failure.
///
/// The ladder is a list of PlanRungs ordered by descending memory
/// appetite (built from the engine/strategy.h capability cards by the
/// core/api.h *WithRecovery entry points; callers can also hand-build
/// one). RunWithRecovery arms the caller's limits for each attempt —
/// re-deriving the wall-clock deadline from what *remains* of the
/// original budget, so retries never extend the caller's deadline — and
/// returns the first rung's result that completes, or:
///   - the terminal failure, unchanged in status, the moment any rung
///     fails for a non-retryable reason (kCancelled, kDeadlineExceeded,
///     kInvalidArgument — retrying cannot fix those), or
///   - kRetryExhausted when every rung (or the attempt budget) failed
///     retryably.
///
/// Determinism contract: each rung is itself bit-deterministic (the
/// repo's standing contract), and the ladder walk is a serial loop over
/// a fixed list, so a recovered run returns results bit-identical to a
/// clean run of the winning rung — at every thread count. Observability
/// flows through the `retries` / `degraded_runs` ExecStats counters and
/// the optional RecoveryReport.

#include <functional>
#include <string>
#include <vector>

#include "core/exec_context.h"
#include "core/exec_status.h"

namespace fmmsw {

/// Classification driving the retry decision: true for statuses caused
/// by resource pressure a cheaper plan can dodge (kMemoryLimitExceeded,
/// kCapacityExceeded — e.g. the planner LP's pivot budget), false for
/// everything a retry cannot fix.
bool IsRetryable(ExecStatus status);

/// One ladder rung: a named strategy closure. `run` must fully produce
/// the rung's answer into caller-owned storage (it only commits on
/// normal return — an abort unwinds before the caller reads anything).
struct PlanRung {
  std::string name;
  std::function<void(ExecContext&)> run;
};

/// Retry knobs.
struct RetryPolicy {
  /// Total attempt cap across the ladder (safety net; the ladder length
  /// is the natural bound).
  int max_attempts = 4;
  /// Re-arm each attempt with the *remaining* wall-clock budget instead
  /// of restarting the full deadline (only meaningful when the caller's
  /// limits carry a deadline).
  bool rearm_deadline = true;
  /// Give up (kDeadlineExceeded) instead of launching an attempt with
  /// less than this much wall-clock budget left.
  int64_t min_remaining_ms = 1;
};

/// What happened during one RunWithRecovery call.
struct RecoveryReport {
  int attempts = 0;           ///< rung executions launched
  int degraded_runs = 0;      ///< attempts below the top rung
  std::string winning_rung;   ///< name of the rung that completed (if any)
  std::vector<ExecResult> failures;  ///< per-failed-attempt results, in order
};

/// Walks `ladder` under `policy`, arming `limits` (deadline re-derived
/// per attempt) on `ec`'s guard around each rung. See the file comment
/// for the result contract. `report`, when non-null, is overwritten
/// with the walk's trace on every path.
ExecResult RunWithRecovery(ExecContext& ec, const QueryLimits& limits,
                           const RetryPolicy& policy,
                           const std::vector<PlanRung>& ladder,
                           RecoveryReport* report = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_CORE_RECOVERY_H_
