#include "core/recovery.h"

#include <chrono>

namespace fmmsw {

bool IsRetryable(ExecStatus status) {
  switch (status) {
    case ExecStatus::kMemoryLimitExceeded:
    case ExecStatus::kCapacityExceeded:
      return true;
    case ExecStatus::kOk:
    case ExecStatus::kCancelled:
    case ExecStatus::kDeadlineExceeded:
    case ExecStatus::kInvalidArgument:
    case ExecStatus::kRejected:
    case ExecStatus::kRetryExhausted:
      return false;
  }
  return false;
}

ExecResult RunWithRecovery(ExecContext& ec, const QueryLimits& limits,
                           const RetryPolicy& policy,
                           const std::vector<PlanRung>& ladder,
                           RecoveryReport* report) {
  RecoveryReport rep;
  const auto finish = [&](ExecResult r) {
    if (report != nullptr) *report = std::move(rep);
    return r;
  };
  if (ladder.empty()) {
    return finish({ExecStatus::kInvalidArgument,
                   "RunWithRecovery needs a non-empty ladder"});
  }
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < ladder.size(); ++i) {
    if (rep.attempts >= policy.max_attempts) {
      return finish(
          {ExecStatus::kRetryExhausted,
           "retry budget exhausted after " + std::to_string(rep.attempts) +
               " attempts (next rung would have been '" + ladder[i].name +
               "'): " +
               (rep.failures.empty() ? std::string("no failures recorded")
                                     : rep.failures.back().message)});
    }
    QueryLimits attempt = limits;
    if (limits.deadline_ms > 0 && policy.rearm_deadline) {
      const int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      const int64_t remaining = limits.deadline_ms - elapsed_ms;
      if (remaining < policy.min_remaining_ms) {
        return finish(
            {ExecStatus::kDeadlineExceeded,
             "deadline budget exhausted before rung '" + ladder[i].name +
                 "' (" + std::to_string(remaining) + "ms of " +
                 std::to_string(limits.deadline_ms) + "ms left)"});
      }
      attempt.deadline_ms = remaining;
    }
    ++rep.attempts;
    if (i > 0) {
      ++rep.degraded_runs;
      Bump(ec.stats().degraded_runs);
    }
    ExecResult r =
        RunGuarded(ec, attempt, [&] { ladder[i].run(ec); });
    if (r.ok()) {
      rep.winning_rung = ladder[i].name;
      return finish(r);
    }
    rep.failures.push_back(r);
    if (!IsRetryable(r.status)) {
      r.message = "rung '" + ladder[i].name + "': " + r.message;
      return finish(r);
    }
    Bump(ec.stats().retries);
  }
  return finish({ExecStatus::kRetryExhausted,
                 "every ladder rung failed retryably; last: " +
                     rep.failures.back().message});
}

}  // namespace fmmsw
