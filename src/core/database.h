#ifndef FMMSW_CORE_DATABASE_H_
#define FMMSW_CORE_DATABASE_H_

/// \file
/// Versioned catalog with snapshot-isolated queries (ROADMAP item 1:
/// "concurrent read queries over immutable relation snapshots with
/// copy-on-write updates").
///
/// A Database owns named relations as immutable versions
/// (`shared_ptr<const Relation>`), each stamped with the monotone epoch
/// of the commit that installed it and a content digest
/// (RelationStatsDigest). The whole catalog is one immutable
/// CatalogState published behind an annotated Mutex; readers pin a
/// Snapshot — a refcounted copy of the state pointer, O(1), no row
/// copies — and every query they run against it sees exactly that
/// epoch, no matter how many commits land meanwhile. Old versions stay
/// alive until the last snapshot (or binding) holding them drops;
/// nothing is ever mutated in place.
///
/// Writers stage through a Transaction: Replace/Append/Drop build fresh
/// relations off to the side (copy-on-write — untouched relations are
/// shared by pointer into the next state), polling the context's guard
/// at FaultSite::kOps morsel boundaries and charging staged bytes
/// through the memory plane. Commit() publishes all staged versions
/// with ONE atomic swap of the state pointer under the Mutex — before
/// the swap nothing is visible, after it everything is — so a
/// QueryAbort thrown from any staging or pre-swap poll leaves the
/// catalog bit-identical to the pre-transaction state, with
/// `mem_current_bytes` restored by the charge's RAII release. An
/// uncommitted Transaction rolls back on destruction.
///
/// Transactions serialize at the commit swap; staged versions are blind
/// writes (last committed writer wins per relation — there is no
/// optimistic read-set validation; see ROADMAP item 1 for what remains
/// above this layer).
///
/// Query{Boolean,Count,Join} / PlanWidths are the service entry points:
/// they bind a snapshot's pinned versions to a hypergraph's atoms
/// (zero-copy), pass through admission control, and route into the
/// existing guarded/recovery evaluation planes. PlanWidths keys the
/// process WidthCache with the snapshot's binding digest, so a commit
/// that changes any bound relation can never serve a stale cached plan.
///
/// Stats: commits / rollbacks / snapshots_pinned / versions_retired on
/// the driving context (stats-coverage contract, core/exec_context.h).

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/admission.h"
#include "core/api.h"
#include "core/exec_context.h"
#include "core/exec_status.h"
#include "core/recovery.h"
#include "hypergraph/hypergraph.h"
#include "relation/relation.h"
#include "util/rational.h"
#include "util/thread_safety.h"
#include "width/omega_subw.h"

namespace fmmsw {

/// One immutable, epoch-stamped version of a named relation.
struct RelationVersion {
  std::string name;
  RelationPtr rel;
  int64_t epoch = 0;    ///< epoch of the commit that installed this version
  uint64_t digest = 0;  ///< RelationStatsDigest(*rel), computed at staging
};

/// One immutable catalog version: the full name -> version map at one
/// epoch. Published as `shared_ptr<const CatalogState>` and never
/// mutated after the swap; entries are sorted by name (binary search).
struct CatalogState {
  int64_t epoch = 0;
  std::vector<RelationVersion> entries;

  /// The version of `name`, or nullptr if absent.
  const RelationVersion* Find(const std::string& name) const;
};

/// A pinned, consistent view of the whole catalog at one epoch.
/// Copyable and cheap (one shared_ptr); holding any Snapshot (or a
/// QueryInput bound from it) keeps every relation version it references
/// alive, so readers finish on their pinned epoch while commits stream
/// past. A default-constructed Snapshot is the empty catalog at epoch 0.
class Snapshot {
 public:
  Snapshot() = default;

  int64_t epoch() const { return state_ == nullptr ? 0 : state_->epoch; }
  size_t num_relations() const {
    return state_ == nullptr ? 0 : state_->entries.size();
  }
  /// Registered names in sorted order.
  std::vector<std::string> names() const;

  /// The pinned version of `name`, or nullptr if absent.
  const Relation* Find(const std::string& name) const;
  /// Shared handle to the pinned version (nullptr if absent) — share a
  /// version beyond the snapshot's lifetime without copying rows.
  RelationPtr Share(const std::string& name) const;
  /// Version digest of `name` (0 if absent).
  uint64_t VersionDigest(const std::string& name) const;

  /// Binds `atoms[i]` to hyperedge i: the binding shares the pinned
  /// versions by pointer (no row copies). kInvalidArgument if any name
  /// is not registered; the caller validates schema against the
  /// hypergraph via ValidateQuery (the Query* entry points do both).
  ExecResult Bind(const std::vector<std::string>& atoms,
                  QueryInput* out) const;

  /// Combined version digest of the named relations, order-sensitive —
  /// the WidthCache key component that makes cached plans
  /// version-aware. kInvalidArgument names are folded as absent (0).
  uint64_t BindingDigest(const std::vector<std::string>& atoms) const;

 private:
  friend class Database;
  explicit Snapshot(std::shared_ptr<const CatalogState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const CatalogState> state_;
};

/// Service-level evaluation options: admission class, guardrail limits
/// and the recovery ladder walk, composed by Database::Query*.
struct QueryOptions {
  QueryClass klass = QueryClass::kSmallProbe;
  QueryLimits limits;
  RetryPolicy retry;
  /// Walk the degradation ladder (Evaluate*WithRecovery). When false,
  /// one guarded attempt of `strategy` (Boolean) / the default engine.
  bool use_recovery = true;
  EvalStrategy strategy = EvalStrategy::kWcoj;
};

/// The versioned catalog. Thread-safe: any number of threads may pin
/// snapshots and run queries while writers stage and commit
/// transactions; the only shared mutable word is the state pointer,
/// swapped under `mu_`.
class Database {
 public:
  explicit Database(const AdmissionConfig& admission = {});
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Pins the current catalog version. O(1): copies the state pointer.
  Snapshot snapshot(ExecContext* ctx = nullptr) const FMMSW_EXCLUDES(mu_);
  /// Epoch of the latest committed state.
  int64_t epoch() const FMMSW_EXCLUDES(mu_);

  /// Staged catalog update. Build it with Begin(), stage versions with
  /// Replace/Append/Drop, then Commit() — or let it roll back. All
  /// staging runs on the Begin() context's driving thread and polls
  /// that context's guard at FaultSite::kOps, so guard limits and
  /// fault-plan ordinals cover ingest exactly like query execution: a
  /// QueryAbort out of any staging step (or the pre-swap commit poll)
  /// leaves the catalog untouched and the memory balance restored.
  /// Must not outlive its Database or ExecContext.
  class Transaction {
   public:
    Transaction(Transaction&& other) noexcept = default;
    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;
    Transaction& operator=(Transaction&&) = delete;
    /// Rolls back if neither Commit() nor Rollback() ran.
    ~Transaction();

    /// Stages `rows` (canonically sorted + deduped) as the next version
    /// of `name`; creates the relation if it is not registered.
    void Replace(const std::string& name, Relation rows);
    /// Copy-on-write append: stages a fresh version holding the current
    /// (staged or committed) rows of `name` plus `delta`'s rows. Equal
    /// to Replace(name, delta) when `name` is not registered. Throws
    /// QueryAbort(kInvalidArgument) on schema mismatch.
    void Append(const std::string& name, const Relation& delta);
    /// Stages removal of `name`. Throws QueryAbort(kInvalidArgument) if
    /// it is neither registered nor staged.
    void Drop(const std::string& name);

    /// Publishes every staged version in one atomic state swap (epoch =
    /// latest + 1). The transaction is consumed; staged bytes leave the
    /// transient memory balance (they are catalog-owned now).
    void Commit();
    /// Discards staged versions and releases their memory charge.
    void Rollback();
    /// True until Commit()/Rollback() consumes the transaction.
    bool active() const { return !done_; }
    /// Staged versions so far (test/observability probe).
    size_t staged_count() const { return staged_.size(); }

   private:
    friend class Database;
    Transaction(Database* db, std::shared_ptr<const CatalogState> base,
                ExecContext& ec);

    /// Current rows of `name` as this transaction sees them: staged
    /// version first, then the base snapshot. nullptr when absent
    /// (a staged drop is "absent").
    const Relation* View(const std::string& name) const;
    /// Installs (name -> version) in the staged set, last write wins.
    void Stage(const std::string& name, RelationPtr rel, uint64_t digest);

    Database* db_ = nullptr;
    std::shared_ptr<const CatalogState> base_;
    ExecContext* ec_ = nullptr;
    /// Staged versions in first-staged order; `rel == nullptr` = drop.
    std::vector<RelationVersion> staged_;
    /// Transient bytes held by staged versions; RAII-released on
    /// rollback/unwind, released on commit (data becomes catalog-owned).
    std::unique_ptr<MemCharge> charge_;
    bool done_ = false;
  };

  /// Opens a transaction against the current catalog version. `ctx`
  /// (nullptr = process default) supplies the guard polled during
  /// staging and the stats the commit/rollback counters land on.
  Transaction Begin(ExecContext* ctx = nullptr) FMMSW_EXCLUDES(mu_);

  /// \name Snapshot-isolated query entry points
  /// Bind the snapshot's pinned versions to `h`'s atoms by name
  /// (atoms[i] -> hyperedge i, zero-copy), pass admission control for
  /// `opts.klass`, then route into the recovery ladder
  /// (Evaluate*WithRecovery) or a single guarded attempt. The result is
  /// computed entirely against the pinned epoch: commits landing
  /// mid-query are invisible, and the answer is bit-identical to a
  /// direct Evaluate* call on a binding of the same versions.
  /// @{
  ExecResult QueryBoolean(const Snapshot& snap, const Hypergraph& h,
                          const std::vector<std::string>& atoms, bool* result,
                          const QueryOptions& opts = {},
                          ExecContext* ctx = nullptr,
                          RecoveryReport* report = nullptr) const;
  ExecResult QueryCount(const Snapshot& snap, const Hypergraph& h,
                        const std::vector<std::string>& atoms, int64_t* count,
                        const QueryOptions& opts = {},
                        ExecContext* ctx = nullptr,
                        RecoveryReport* report = nullptr) const;
  ExecResult QueryJoin(const Snapshot& snap, const Hypergraph& h,
                       const std::vector<std::string>& atoms,
                       VarSet output_vars, Relation* result,
                       const QueryOptions& opts = {},
                       ExecContext* ctx = nullptr,
                       RecoveryReport* report = nullptr) const;
  /// @}

  /// Width planning against a snapshot: ComputeWidths with the
  /// WidthCache keyed by the snapshot's binding digest, so a commit to
  /// any bound relation invalidates the cached entry for new queries.
  ExecResult PlanWidths(const Snapshot& snap, const Hypergraph& h,
                        const std::vector<std::string>& atoms,
                        const Rational& omega, WidthReport* out,
                        OmegaSubwOptions opts = {},
                        ExecContext* ctx = nullptr) const;

  /// The admission gate fronting the Query* entry points (test probe).
  AdmissionController& admission() const { return admission_; }

 private:
  /// The atomic commit point: builds epoch+1 from the live state plus
  /// `staged` (moving the staged versions in) and swaps the state
  /// pointer, all under mu_. Returns the number of versions retired
  /// (replaced or dropped). Nothing in here can throw once entered.
  int64_t CommitStaged(std::vector<RelationVersion>* staged)
      FMMSW_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::shared_ptr<const CatalogState> state_ FMMSW_GUARDED_BY(mu_);
  mutable AdmissionController admission_;
};

}  // namespace fmmsw

#endif  // FMMSW_CORE_DATABASE_H_
