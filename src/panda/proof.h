#ifndef FMMSW_PANDA_PROOF_H_
#define FMMSW_PANDA_PROOF_H_

/// \file
/// Proof sequences (Theorem E.8): step-by-step transformations of the RHS
/// of an w-Shannon inequality into its LHS, using exactly the four
/// primitive step kinds. Each step has a database-operation counterpart
/// (Theorem E.10), which is what panda/executor.h runs:
///
///   decomposition  h(XY) -> h(X) + h(Y|X)    = degree partition
///   composition    h(X) + h(Y|X) -> h(XY)    = join
///   monotonicity   h(XY) -> h(X)             = projection
///   submodularity  h(Y|X) -> h(Y|XZ)         = reinterpret conditioning
///
/// VerifyProofSequence replays the steps on a symbolic multiset of
/// weighted conditional terms, checking every consumption is available and
/// that the final multiset covers the inequality's LHS — a machine check
/// that a sequence really proves its inequality.

#include <vector>

#include "panda/inequality.h"
#include "util/rational.h"
#include "util/varset.h"

namespace fmmsw {

enum class ProofStepKind {
  kDecomposition,
  kComposition,
  kMonotonicity,
  kSubmodularity,
};

struct ProofStep {
  ProofStepKind kind;
  /// Meaning per kind (see file comment): kDecomposition splits h(x|pre)
  /// ... to keep the replay simple every step is expressed on conditional
  /// terms:
  ///   kDecomposition: consumes (x y | c), produces (x | c) and (y | c x)
  ///   kComposition:   consumes (x | c) and (y | c x), produces (x y | c)
  ///   kMonotonicity:  consumes (x y | c), produces (x | c)
  ///   kSubmodularity: consumes (y | c), produces (y | c z)
  VarSet x, y, z, c;
  Rational weight;
};

struct ProofSequence {
  std::vector<ProofStep> steps;
};

/// Replays the sequence from the inequality's RHS terms; returns true if
/// every step's inputs are available and the final multiset covers the
/// LHS (plain terms as (u|empty); each MM group as its alpha/beta/zeta
/// conditionals). Exact rational bookkeeping.
bool VerifyProofSequence(const OmegaShannonInequality& ineq,
                         const ProofSequence& seq, const Rational& omega);

/// The Figure-1 proof sequence for TriangleInequality(omega), with the
/// fused "submodularity steps" of Figure 1 expanded into primitive
/// submodularity + composition pairs.
ProofSequence TriangleProofSequence(const Rational& omega);

}  // namespace fmmsw

#endif  // FMMSW_PANDA_PROOF_H_
