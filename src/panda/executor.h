#ifndef FMMSW_PANDA_EXECUTOR_H_
#define FMMSW_PANDA_EXECUTOR_H_

/// \file
/// The proof-sequence -> database-operation executor (Theorem E.10 /
/// Figure 1): decompositions become degree partitions (heavy unary table +
/// light table), compositions become joins, monotonicities projections,
/// submodularities re-conditionings; terminal plain-LHS tables are checked
/// against the atoms and the terminal MM group is executed as a matrix
/// multiplication over the heavy tables.
///
/// Scope: the executor runs sequences over binary atoms whose MM groups
/// align with atoms (the class covering the paper's worked examples —
/// Figure 1 in particular). PandaTriangleBoolean is the end-to-end
/// instantiation: it *derives* the Figure-1 algorithm from
/// TriangleInequality + TriangleProofSequence instead of hard-coding it.

#include "engine/elimination.h"
#include "hypergraph/hypergraph.h"
#include "panda/proof.h"
#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

struct PandaStats {
  int64_t partitions = 0;
  int64_t joins = 0;
  int64_t plain_tables = 0;
  int64_t mm_executed = 0;
};

/// Executes the proof sequence for the inequality on the database.
/// `threshold` is the heavy/light degree threshold Delta (Figure 1 uses
/// Delta = N^{(w-1)/(w+1)}). Returns the Boolean query answer. Runs under
/// an ExecContext::SortOrderScope: decomposition steps re-partitioning a
/// table already held by the executor reuse its grouping sort order from
/// the context's arena.
bool ExecuteProofSequence(const Hypergraph& h, const QueryInput& db,
                          const OmegaShannonInequality& ineq,
                          const ProofSequence& seq, int64_t threshold,
                          MmKernel kernel = MmKernel::kBoolean,
                          PandaStats* stats = nullptr,
                          ExecContext* ctx = nullptr);

/// End-to-end: the Figure-1 triangle algorithm derived from its proof
/// sequence.
bool PandaTriangleBoolean(const QueryInput& db, double omega,
                          MmKernel kernel = MmKernel::kBoolean,
                          PandaStats* stats = nullptr,
                          ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_PANDA_EXECUTOR_H_
