#ifndef FMMSW_PANDA_INEQUALITY_H_
#define FMMSW_PANDA_INEQUALITY_H_

/// \file
/// w-Shannon inequalities (Definition E.3): inequalities of the form
///
///   sum_l lambda_l h(U_l)
///     + sum_j [a_j h(X_j|G_j) + b_j h(Y_j|G_j) + z_j h(Z_j|G_j)
///              + k_j h(G_j)]
///   <=  sum_i w_i h(Y_i | X_i)
///
/// with non-negative coefficients, k_j > 0 and every (a_j/k_j, b_j/k_j,
/// z_j/k_j) w-dominant (Definition E.1). The RHS terms correspond to input
/// relations (via degree bounds), the LHS groups to the cost of the
/// subqueries solved by for-loops (plain terms) or matrix multiplication
/// (MM groups). Validity is certified by LP: max over the Shannon cone of
/// (LHS - RHS) must be 0.

#include <vector>

#include "entropy/polymatroid.h"
#include "hypergraph/hypergraph.h"
#include "util/rational.h"
#include "util/varset.h"

namespace fmmsw {

class ExecContext;

/// w * h(y | x); x may be empty (unconditional).
struct CondTerm {
  VarSet y;
  VarSet x;
  Rational w;
};

/// lambda * h(u): cost of a for-loop subquery.
struct PlainLhsTerm {
  VarSet u;
  Rational lambda;
};

/// a h(X|G) + b h(Y|G) + z h(Z|G) + k h(G): cost of one MM branch.
struct MmLhsTerm {
  VarSet x, y, z, g;
  Rational alpha, beta, zeta, kappa;
};

struct OmegaShannonInequality {
  std::vector<PlainLhsTerm> plain;
  std::vector<MmLhsTerm> mm;
  std::vector<CondTerm> rhs;
};

/// Checks the Definition E.1/E.3 side conditions for the given omega.
bool CheckDominance(const OmegaShannonInequality& ineq,
                    const Rational& omega);

/// Evaluates LHS - RHS on a concrete set function.
Rational InequalitySlack(const OmegaShannonInequality& ineq,
                         const SetFn<Rational>& h);

/// Certifies validity over all polymatroids on `universe` by solving
/// max_{h in Gamma} (LHS - RHS); valid iff the optimum is 0.
bool VerifyShannon(const OmegaShannonInequality& ineq, VarSet universe,
                   ExecContext* ctx = nullptr);

/// The triangle inequality, Eq. (13):
///   w h(XYZ) + [h(X) + h(Y) + (w-2) h(Z)]
///     <= 2 h(XY) + (w-1) h(YZ) + (w-1) h(XZ).
OmegaShannonInequality TriangleInequality(const Rational& omega);

}  // namespace fmmsw

#endif  // FMMSW_PANDA_INEQUALITY_H_
