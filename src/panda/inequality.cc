#include "panda/inequality.h"

#include "core/exec_context.h"

#include "lp/simplex.h"
#include "util/check.h"

namespace fmmsw {

bool CheckDominance(const OmegaShannonInequality& ineq,
                    const Rational& omega) {
  for (const PlainLhsTerm& t : ineq.plain) {
    if (t.lambda < Rational(0)) return false;
  }
  for (const CondTerm& t : ineq.rhs) {
    if (t.w < Rational(0)) return false;
  }
  for (const MmLhsTerm& t : ineq.mm) {
    if (!(t.kappa > Rational(0))) return false;
    const Rational a = t.alpha / t.kappa;
    const Rational b = t.beta / t.kappa;
    const Rational z = t.zeta / t.kappa;
    // Definition E.1: alpha, beta >= 1, zeta >= 0, sum >= omega.
    if (a < Rational(1) || b < Rational(1) || z < Rational(0)) return false;
    if (a + b + z < omega) return false;
  }
  return true;
}

Rational InequalitySlack(const OmegaShannonInequality& ineq,
                         const SetFn<Rational>& h) {
  Rational lhs(0);
  for (const PlainLhsTerm& t : ineq.plain) lhs += t.lambda * h[t.u];
  for (const MmLhsTerm& t : ineq.mm) {
    lhs += t.alpha * (h[t.x | t.g] - h[t.g]);
    lhs += t.beta * (h[t.y | t.g] - h[t.g]);
    lhs += t.zeta * (h[t.z | t.g] - h[t.g]);
    lhs += t.kappa * h[t.g];
  }
  Rational rhs(0);
  for (const CondTerm& t : ineq.rhs) rhs += t.w * (h[t.y | t.x] - h[t.x]);
  return lhs - rhs;
}

bool VerifyShannon(const OmegaShannonInequality& ineq, VarSet universe,
                   ExecContext* ctx) {
  // Build max (LHS - RHS) over the Shannon cone (no edge domination: the
  // inequality must hold for all polymatroids). The cone is scale
  // invariant, so the optimum is 0 (valid) or unbounded (invalid); we add
  // h(universe) <= 1 to keep the LP bounded and test optimum == 0.
  Hypergraph cone(0);
  {
    // A hypergraph with the single edge = universe provides exactly the
    // h(universe) <= 1 normalization via edge domination.
    Hypergraph tmp(universe.size() == 0 ? 0 : universe.Members().back() + 1);
    tmp = tmp.Eliminate(tmp.vertices() - universe);
    tmp.AddEdge(universe);
    cone = tmp;
  }
  PolymatroidLp<Rational> lp(cone);
  auto append = [&](VarSet y, VarSet x, const Rational& coeff) {
    // coeff * h(y|x) into the objective.
    if (!(y | x).empty()) lp.model().AddObjective(lp.Var(y | x), coeff);
    if (!x.empty()) lp.model().AddObjective(lp.Var(x), -coeff);
  };
  for (const PlainLhsTerm& t : ineq.plain) {
    append(t.u, VarSet::Empty(), t.lambda);
  }
  for (const MmLhsTerm& t : ineq.mm) {
    append(t.x, t.g, t.alpha);
    append(t.y, t.g, t.beta);
    append(t.z, t.g, t.zeta);
    append(t.g, VarSet::Empty(), t.kappa);
  }
  for (const CondTerm& t : ineq.rhs) append(t.y, t.x, -t.w);
  if (ctx != nullptr) ctx->guard().Poll(FaultSite::kPanda);
  auto res = SolveSimplex(lp.model());
  FMMSW_CHECK(res.status == LpStatus::kOptimal);
  if (ctx != nullptr) {
    Bump(ctx->stats().lp_solves);
    Bump(ctx->stats().lp_pivots, res.pivots);
  }
  return res.objective <= Rational(0);
}

OmegaShannonInequality TriangleInequality(const Rational& omega) {
  // Variables X=0, Y=1, Z=2 (Hypergraph::Triangle()).
  OmegaShannonInequality ineq;
  ineq.plain.push_back(PlainLhsTerm{VarSet::Full(3), omega});
  ineq.mm.push_back(MmLhsTerm{VarSet{0}, VarSet{1}, VarSet{2},
                              VarSet::Empty(), Rational(1), Rational(1),
                              omega - Rational(2), Rational(1)});
  ineq.rhs.push_back(CondTerm{VarSet{0, 1}, VarSet::Empty(), Rational(2)});
  ineq.rhs.push_back(
      CondTerm{VarSet{1, 2}, VarSet::Empty(), omega - Rational(1)});
  ineq.rhs.push_back(
      CondTerm{VarSet{0, 2}, VarSet::Empty(), omega - Rational(1)});
  return ineq;
}

}  // namespace fmmsw
