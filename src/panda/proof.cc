#include "panda/proof.h"

#include <map>

#include "util/check.h"

namespace fmmsw {

namespace {

/// Key of a conditional term h(total | given), given a subset of total.
using TermKey = std::pair<uint32_t, uint32_t>;  // (given, total)

TermKey Key(VarSet given, VarSet total) {
  return {given.mask(), (given | total).mask()};
}

/// Weighted multiset of conditional terms.
class TermBag {
 public:
  void Add(VarSet given, VarSet total, const Rational& w) {
    if (w.IsZero()) return;
    bag_[Key(given, total)] += w;
  }
  /// Consumes weight w; returns false if not enough is available.
  bool Take(VarSet given, VarSet total, const Rational& w) {
    auto it = bag_.find(Key(given, total));
    if (it == bag_.end() || it->second < w) return false;
    it->second -= w;
    if (it->second.IsZero()) bag_.erase(it);
    return true;
  }

 private:
  std::map<TermKey, Rational> bag_;
};

}  // namespace

bool VerifyProofSequence(const OmegaShannonInequality& ineq,
                         const ProofSequence& seq, const Rational& omega) {
  TermBag bag;
  for (const CondTerm& t : ineq.rhs) bag.Add(t.x, t.x | t.y, t.w);
  for (const ProofStep& s : seq.steps) {
    FMMSW_CHECK(s.weight > Rational(0));
    switch (s.kind) {
      case ProofStepKind::kDecomposition:
        if (!bag.Take(s.c, s.c | s.x | s.y, s.weight)) return false;
        bag.Add(s.c, s.c | s.x, s.weight);
        bag.Add(s.c | s.x, s.c | s.x | s.y, s.weight);
        break;
      case ProofStepKind::kComposition:
        if (!bag.Take(s.c, s.c | s.x, s.weight)) return false;
        if (!bag.Take(s.c | s.x, s.c | s.x | s.y, s.weight)) return false;
        bag.Add(s.c, s.c | s.x | s.y, s.weight);
        break;
      case ProofStepKind::kMonotonicity:
        if (!bag.Take(s.c, s.c | s.x | s.y, s.weight)) return false;
        bag.Add(s.c, s.c | s.x, s.weight);
        break;
      case ProofStepKind::kSubmodularity:
        if (!bag.Take(s.c, s.c | s.y, s.weight)) return false;
        bag.Add(s.c | s.z, s.c | s.z | s.y, s.weight);
        break;
    }
  }
  // The final bag must cover the LHS.
  for (const PlainLhsTerm& t : ineq.plain) {
    if (!bag.Take(VarSet::Empty(), t.u, t.lambda)) return false;
  }
  for (const MmLhsTerm& t : ineq.mm) {
    if (!t.alpha.IsZero() && !bag.Take(t.g, t.g | t.x, t.alpha)) return false;
    if (!t.beta.IsZero() && !bag.Take(t.g, t.g | t.y, t.beta)) return false;
    if (!t.zeta.IsZero() && !bag.Take(t.g, t.g | t.z, t.zeta)) return false;
    if (!t.g.empty() && !bag.Take(VarSet::Empty(), t.g, t.kappa)) {
      return false;
    }
  }
  (void)omega;
  return true;
}

ProofSequence TriangleProofSequence(const Rational& omega) {
  const Rational gamma = omega - Rational(2);
  const VarSet x{0}, y{1}, z{2};
  ProofSequence seq;
  auto decomp = [&](VarSet a, VarSet b, VarSet c, Rational w) {
    seq.steps.push_back({ProofStepKind::kDecomposition, a, b, {}, c, w});
  };
  auto submod = [&](VarSet b, VarSet c, VarSet zz, Rational w) {
    seq.steps.push_back({ProofStepKind::kSubmodularity, {}, b, zz, c, w});
  };
  auto comp = [&](VarSet a, VarSet b, VarSet c, Rational w) {
    seq.steps.push_back({ProofStepKind::kComposition, a, b, {}, c, w});
  };
  // Figure 1, expanded into primitive steps:
  //   h(XY) -> h(X) + h(Y|X); h(Y|X) -> h(Y|XZ); h(XZ)+h(Y|XZ) -> h(XYZ)
  decomp(x, y, VarSet::Empty(), Rational(1));
  submod(y, x, z, Rational(1));
  comp(x | z, y, VarSet::Empty(), Rational(1));
  //   h(YZ) -> h(Y) + h(Z|Y); h(Z|Y) -> h(Z|XY); h(XY)+h(Z|XY) -> h(XYZ)
  decomp(y, z, VarSet::Empty(), Rational(1));
  submod(z, y, x, Rational(1));
  comp(x | y, z, VarSet::Empty(), Rational(1));
  //   gamma-weighted: h(XZ) -> h(Z) + h(X|Z); h(X|Z) -> h(X|YZ);
  //   h(YZ)+h(X|YZ) -> h(XYZ)
  if (!gamma.IsZero()) {
    decomp(z, x, VarSet::Empty(), gamma);
    submod(x, z, y, gamma);
    comp(y | z, x, VarSet::Empty(), gamma);
  }
  return seq;
}

}  // namespace fmmsw
