#include "panda/executor.h"

#include <cmath>

#include "core/exec_context.h"
#include "hypergraph/hypergraph.h"
#include "mm/matrix.h"
#include "relation/degree.h"
#include "relation/flat_index.h"
#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

namespace {

/// Packed (given, total) term key — the masks are 32-bit, so the pair is
/// exactly one flat-index key.
uint64_t Key(VarSet given, VarSet total) {
  return (static_cast<uint64_t>(given.mask()) << 32) |
         (given | total).mask();
}

/// Tables currently associated with conditional terms. Several tables can
/// share a key (e.g. the three Q_l tables of Figure 1 all sit on h(XYZ)).
/// Keys are interned through the flat index into dense slots (was a
/// std::map over std::pair keys). Stored tables are pinned for the
/// lifetime of the map — the sort-order cache keys on their buffers.
class TableMap {
 public:
  void Add(VarSet given, VarSet total, Relation table) {
    const int slot = keys_.Intern(Key(given, total));
    if (slot == static_cast<int>(tables_.size())) tables_.emplace_back();
    tables_[slot].push_back(std::move(table));
  }
  /// Last table registered for the key (the freshest derivation).
  const Relation* Find(VarSet given, VarSet total) const {
    const int slot = keys_.Find(Key(given, total));
    if (slot < 0 || tables_[slot].empty()) return nullptr;
    return &tables_[slot].back();
  }
  Relation Pop(VarSet given, VarSet total) {
    const int slot = keys_.Find(Key(given, total));
    FMMSW_CHECK(slot >= 0 && !tables_[slot].empty());
    Relation out = std::move(tables_[slot].back());
    tables_[slot].pop_back();
    return out;
  }
  const std::vector<Relation>* All(VarSet given, VarSet total) const {
    const int slot = keys_.Find(Key(given, total));
    return slot < 0 ? nullptr : &tables_[slot];
  }

 private:
  FlatInterner keys_;
  std::vector<std::vector<Relation>> tables_;
};

/// Finds an input relation with exactly the given schema.
const Relation* AtomWithSchema(const Hypergraph& h, const QueryInput& db,
                               VarSet schema) {
  for (size_t e = 0; e < h.edges().size(); ++e) {
    if (h.edges()[e] == schema) return &db.relations[e];
  }
  return nullptr;
}

}  // namespace

bool ExecuteProofSequence(const Hypergraph& h, const QueryInput& db,
                          const OmegaShannonInequality& ineq,
                          const ProofSequence& seq, int64_t threshold,
                          MmKernel kernel, PandaStats* stats,
                          ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  // Tables live in the TableMap for the whole execution, so repeated
  // decompositions of the same table can reuse its grouping sort order
  // through the context's arena (the order depends on (table, X, Y) but
  // not on the threshold).
  ExecContext::SortOrderScope sort_scope(ec);
  TableMap tables;
  // RHS terms start as the input atoms (Theorem E.10's initial
  // association). Unconditional terms must match an atom schema.
  for (const CondTerm& t : ineq.rhs) {
    const Relation* atom = AtomWithSchema(h, db, t.x | t.y);
    FMMSW_CHECK(atom != nullptr &&
                "RHS term does not correspond to an input atom");
    tables.Add(t.x, t.x | t.y, *atom);
  }

  for (const ProofStep& s : seq.steps) {
    // One poll per proof step: each step is at least a whole relational
    // operator, the executor's natural morsel.
    ec.guard().Poll(FaultSite::kPanda);
    switch (s.kind) {
      case ProofStepKind::kDecomposition: {
        // h(c,x,y): partition the table on deg(y | c x) at the threshold.
        const Relation* t = tables.Find(s.c, s.c | s.x | s.y);
        FMMSW_CHECK(t != nullptr);
        auto part = PartitionByDegree(*t, s.y, s.c | s.x, threshold, &ec);
        if (stats != nullptr) ++stats->partitions;
        tables.Add(s.c, s.c | s.x, std::move(part.heavy));
        tables.Add(s.c | s.x, s.c | s.x | s.y, std::move(part.light));
        break;
      }
      case ProofStepKind::kComposition: {
        const Relation* a = tables.Find(s.c, s.c | s.x);
        const Relation* b = tables.Find(s.c | s.x, s.c | s.x | s.y);
        FMMSW_CHECK(a != nullptr && b != nullptr);
        // The composed table is the join; but compositions consuming a
        // *heavy projection* table must instead join the light table's
        // counterpart with the other input — Figure 1 composes
        // h(XZ) + h(Y|XZ), where h(XZ) is the original atom T. Both cases
        // are the same Join call.
        Relation joined = Join(*a, *b, {}, &ec);
        if (stats != nullptr) ++stats->joins;
        tables.Add(s.c, s.c | s.x | s.y, std::move(joined));
        break;
      }
      case ProofStepKind::kMonotonicity: {
        const Relation* t = tables.Find(s.c, s.c | s.x | s.y);
        FMMSW_CHECK(t != nullptr);
        tables.Add(s.c, s.c | s.x, Project(*t, s.c | s.x, &ec));
        break;
      }
      case ProofStepKind::kSubmodularity: {
        // Re-conditioning only: the same tuples witness the weaker bound
        // h(y | c z) <= h(y | c).
        const Relation* t = tables.Find(s.c, s.c | s.y);
        FMMSW_CHECK(t != nullptr);
        tables.Add(s.c | s.z, s.c | s.z | s.y, *t);
        break;
      }
    }
  }

  // ---- Terminal checks. Plain LHS tables: any table on h(U) whose join
  // with all atoms is non-empty answers true (the omega-query-plan
  // semijoin of Appendix E.6). The per-atom filters run as one fused
  // single-pass SemijoinAll.
  for (const PlainLhsTerm& t : ineq.plain) {
    const auto* all = tables.All(VarSet::Empty(), t.u);
    if (all == nullptr) continue;
    std::vector<const Relation*> filters;
    for (size_t e = 0; e < h.edges().size(); ++e) {
      if (t.u.ContainsAll(h.edges()[e])) {
        filters.push_back(&db.relations[e]);
      }
    }
    for (const Relation& p : *all) {
      ec.guard().Poll(FaultSite::kPanda);
      if (stats != nullptr) ++stats->plain_tables;
      if (!SemijoinAll(p, filters, &ec).empty()) return true;
    }
  }

  // ---- Terminal MM groups: heavy unary tables on h(x), h(y), h(z);
  // matrices come from the atoms spanning (x,y) and (y,z); the result is
  // checked against the atom spanning (x,z).
  for (const MmLhsTerm& t : ineq.mm) {
    ec.guard().Poll(FaultSite::kPanda);
    FMMSW_CHECK(t.g.empty() &&
                "executor scope: group-by-free MM groups (Figure 1 class)");
    const Relation* rxy = AtomWithSchema(h, db, t.x | t.y);
    const Relation* ryz = AtomWithSchema(h, db, t.y | t.z);
    const Relation* rxz = AtomWithSchema(h, db, t.x | t.z);
    FMMSW_CHECK(rxy != nullptr && ryz != nullptr && rxz != nullptr &&
                "executor scope: MM group must align with binary atoms");
    // A dimension with a zero coefficient (e.g. zeta = 0 at omega = 2) has
    // no heavy table — its values stay unrestricted.
    Relation all_x = Project(*rxy, t.x, &ec);
    Relation all_y = Project(*rxy, t.y, &ec);
    Relation all_z = Project(*ryz, t.z, &ec);
    const Relation* hx = tables.Find(VarSet::Empty(), t.x);
    const Relation* hy = tables.Find(VarSet::Empty(), t.y);
    const Relation* hz = tables.Find(VarSet::Empty(), t.z);
    if (hx == nullptr) hx = &all_x;
    if (hy == nullptr) hy = &all_y;
    if (hz == nullptr) hz = &all_z;
    if (stats != nullptr) ++stats->mm_executed;
    Relation m1 = SemijoinAll(*rxy, {hx, hy}, &ec);
    Relation m2 = SemijoinAll(*ryz, {hy, hz}, &ec);
    if (m1.empty() || m2.empty()) continue;
    // Matrix-dimension interning on the flat index (was
    // std::unordered_map<Value, int>).
    FlatInterner xi, yi, zi;
    const int vx = t.x.First(), vy = t.y.First(), vz = t.z.First();
    for (size_t r = 0; r < m1.size(); ++r) {
      xi.InternValue(m1.Get(r, vx));
      yi.InternValue(m1.Get(r, vy));
    }
    for (size_t r = 0; r < m2.size(); ++r) {
      yi.InternValue(m2.Get(r, vy));
      zi.InternValue(m2.Get(r, vz));
    }
    Bump(ec.stats().mm_products);
    if (kernel == MmKernel::kBoolean) {
      BitMatrix a(xi.size(), yi.size());
      BitMatrix b(yi.size(), zi.size());
      for (size_t r = 0; r < m1.size(); ++r) {
        a.Set(xi.FindValue(m1.Get(r, vx)), yi.FindValue(m1.Get(r, vy)));
      }
      for (size_t r = 0; r < m2.size(); ++r) {
        b.Set(yi.FindValue(m2.Get(r, vy)), zi.FindValue(m2.Get(r, vz)));
      }
      BitMatrix m = BitMatrix::Multiply(a, b, &ec);
      for (size_t r = 0; r < rxz->size(); ++r) {
        const int ix = xi.FindValue(rxz->Get(r, vx));
        const int iz = zi.FindValue(rxz->Get(r, vz));
        if (ix >= 0 && iz >= 0 && m.Get(ix, iz)) return true;
      }
    } else {
      Matrix a(xi.size(), yi.size());
      Matrix b(yi.size(), zi.size());
      for (size_t r = 0; r < m1.size(); ++r) {
        a.At(xi.FindValue(m1.Get(r, vx)), yi.FindValue(m1.Get(r, vy))) = 1;
      }
      for (size_t r = 0; r < m2.size(); ++r) {
        b.At(yi.FindValue(m2.Get(r, vy)), zi.FindValue(m2.Get(r, vz))) = 1;
      }
      Matrix m = CountingProduct(a, b, kernel, &ec);
      for (size_t r = 0; r < rxz->size(); ++r) {
        const int ix = xi.FindValue(rxz->Get(r, vx));
        const int iz = zi.FindValue(rxz->Get(r, vz));
        if (ix >= 0 && iz >= 0 && m.At(ix, iz) != 0) return true;
      }
    }
  }
  return false;
}

bool PandaTriangleBoolean(const QueryInput& db, double omega, MmKernel kernel,
                          PandaStats* stats, ExecContext* ctx) {
  const double n = static_cast<double>(db.TotalSize());
  if (n == 0) return false;
  const int64_t threshold = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(
             std::pow(n, (omega - 1.0) / (omega + 1.0)))));
  // Snap omega to a small rational for the symbolic side.
  const Rational omega_q(static_cast<int64_t>(std::llround(omega * 1000000)),
                         1000000);
  OmegaShannonInequality ineq = TriangleInequality(omega_q);
  ProofSequence seq = TriangleProofSequence(omega_q);
  FMMSW_CHECK(VerifyProofSequence(ineq, seq, omega_q));
  return ExecuteProofSequence(Hypergraph::Triangle(), db, ineq, seq,
                              threshold, kernel, stats, ctx);
}

}  // namespace fmmsw
