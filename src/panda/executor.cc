#include "panda/executor.h"

#include <cmath>
#include <map>
#include <unordered_map>

#include "hypergraph/hypergraph.h"
#include "mm/matrix.h"
#include "relation/degree.h"
#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

namespace {

using TermKey = std::pair<uint32_t, uint32_t>;  // (given, total)

TermKey Key(VarSet given, VarSet total) {
  return {given.mask(), (given | total).mask()};
}

/// Tables currently associated with conditional terms. Several tables can
/// share a key (e.g. the three Q_l tables of Figure 1 all sit on h(XYZ)).
class TableMap {
 public:
  void Add(VarSet given, VarSet total, Relation table) {
    tables_[Key(given, total)].push_back(std::move(table));
  }
  /// Last table registered for the key (the freshest derivation).
  const Relation* Find(VarSet given, VarSet total) const {
    auto it = tables_.find(Key(given, total));
    if (it == tables_.end() || it->second.empty()) return nullptr;
    return &it->second.back();
  }
  Relation Pop(VarSet given, VarSet total) {
    auto it = tables_.find(Key(given, total));
    FMMSW_CHECK(it != tables_.end() && !it->second.empty());
    Relation out = std::move(it->second.back());
    it->second.pop_back();
    return out;
  }
  const std::vector<Relation>* All(VarSet given, VarSet total) const {
    auto it = tables_.find(Key(given, total));
    return it == tables_.end() ? nullptr : &it->second;
  }

 private:
  std::map<TermKey, std::vector<Relation>> tables_;
};

/// Finds an input relation with exactly the given schema.
const Relation* AtomWithSchema(const Hypergraph& h, const Database& db,
                               VarSet schema) {
  for (size_t e = 0; e < h.edges().size(); ++e) {
    if (h.edges()[e] == schema) return &db.relations[e];
  }
  return nullptr;
}

}  // namespace

bool ExecuteProofSequence(const Hypergraph& h, const Database& db,
                          const OmegaShannonInequality& ineq,
                          const ProofSequence& seq, int64_t threshold,
                          MmKernel kernel, PandaStats* stats) {
  TableMap tables;
  // RHS terms start as the input atoms (Theorem E.10's initial
  // association). Unconditional terms must match an atom schema.
  for (const CondTerm& t : ineq.rhs) {
    const Relation* atom = AtomWithSchema(h, db, t.x | t.y);
    FMMSW_CHECK(atom != nullptr &&
                "RHS term does not correspond to an input atom");
    tables.Add(t.x, t.x | t.y, *atom);
  }

  for (const ProofStep& s : seq.steps) {
    switch (s.kind) {
      case ProofStepKind::kDecomposition: {
        // h(c,x,y): partition the table on deg(y | c x) at the threshold.
        const Relation* t = tables.Find(s.c, s.c | s.x | s.y);
        FMMSW_CHECK(t != nullptr);
        auto part = PartitionByDegree(*t, s.y, s.c | s.x, threshold);
        if (stats != nullptr) ++stats->partitions;
        tables.Add(s.c, s.c | s.x, std::move(part.heavy));
        tables.Add(s.c | s.x, s.c | s.x | s.y, std::move(part.light));
        break;
      }
      case ProofStepKind::kComposition: {
        const Relation* a = tables.Find(s.c, s.c | s.x);
        const Relation* b = tables.Find(s.c | s.x, s.c | s.x | s.y);
        FMMSW_CHECK(a != nullptr && b != nullptr);
        // The composed table is the join; but compositions consuming a
        // *heavy projection* table must instead join the light table's
        // counterpart with the other input — Figure 1 composes
        // h(XZ) + h(Y|XZ), where h(XZ) is the original atom T. Both cases
        // are the same Join call.
        Relation joined = Join(*a, *b);
        if (stats != nullptr) ++stats->joins;
        tables.Add(s.c, s.c | s.x | s.y, std::move(joined));
        break;
      }
      case ProofStepKind::kMonotonicity: {
        const Relation* t = tables.Find(s.c, s.c | s.x | s.y);
        FMMSW_CHECK(t != nullptr);
        tables.Add(s.c, s.c | s.x, Project(*t, s.c | s.x));
        break;
      }
      case ProofStepKind::kSubmodularity: {
        // Re-conditioning only: the same tuples witness the weaker bound
        // h(y | c z) <= h(y | c).
        const Relation* t = tables.Find(s.c, s.c | s.y);
        FMMSW_CHECK(t != nullptr);
        tables.Add(s.c | s.z, s.c | s.z | s.y, *t);
        break;
      }
    }
  }

  // ---- Terminal checks. Plain LHS tables: any table on h(U) whose join
  // with all atoms is non-empty answers true (the omega-query-plan
  // semijoin of Appendix E.6).
  for (const PlainLhsTerm& t : ineq.plain) {
    const auto* all = tables.All(VarSet::Empty(), t.u);
    if (all == nullptr) continue;
    for (const Relation& p : *all) {
      if (stats != nullptr) ++stats->plain_tables;
      Relation reduced = p;
      for (size_t e = 0; e < h.edges().size(); ++e) {
        if (t.u.ContainsAll(h.edges()[e])) {
          reduced = Semijoin(reduced, db.relations[e]);
        }
      }
      if (!reduced.empty()) return true;
    }
  }

  // ---- Terminal MM groups: heavy unary tables on h(x), h(y), h(z);
  // matrices come from the atoms spanning (x,y) and (y,z); the result is
  // checked against the atom spanning (x,z).
  for (const MmLhsTerm& t : ineq.mm) {
    FMMSW_CHECK(t.g.empty() &&
                "executor scope: group-by-free MM groups (Figure 1 class)");
    const Relation* rxy = AtomWithSchema(h, db, t.x | t.y);
    const Relation* ryz = AtomWithSchema(h, db, t.y | t.z);
    const Relation* rxz = AtomWithSchema(h, db, t.x | t.z);
    FMMSW_CHECK(rxy != nullptr && ryz != nullptr && rxz != nullptr &&
                "executor scope: MM group must align with binary atoms");
    // A dimension with a zero coefficient (e.g. zeta = 0 at omega = 2) has
    // no heavy table — its values stay unrestricted.
    Relation all_x = Project(*rxy, t.x);
    Relation all_y = Project(*rxy, t.y);
    Relation all_z = Project(*ryz, t.z);
    const Relation* hx = tables.Find(VarSet::Empty(), t.x);
    const Relation* hy = tables.Find(VarSet::Empty(), t.y);
    const Relation* hz = tables.Find(VarSet::Empty(), t.z);
    if (hx == nullptr) hx = &all_x;
    if (hy == nullptr) hy = &all_y;
    if (hz == nullptr) hz = &all_z;
    if (stats != nullptr) ++stats->mm_executed;
    Relation m1 = Semijoin(Semijoin(*rxy, *hx), *hy);
    Relation m2 = Semijoin(Semijoin(*ryz, *hy), *hz);
    if (m1.empty() || m2.empty()) continue;
    std::unordered_map<Value, int> xi, yi, zi;
    auto intern = [](std::unordered_map<Value, int>* m, Value v) {
      auto [it, ins] = m->emplace(v, static_cast<int>(m->size()));
      (void)ins;
      return it->second;
    };
    const int vx = t.x.First(), vy = t.y.First(), vz = t.z.First();
    for (size_t r = 0; r < m1.size(); ++r) {
      intern(&xi, m1.Get(r, vx));
      intern(&yi, m1.Get(r, vy));
    }
    for (size_t r = 0; r < m2.size(); ++r) {
      intern(&yi, m2.Get(r, vy));
      intern(&zi, m2.Get(r, vz));
    }
    if (kernel == MmKernel::kBoolean) {
      BitMatrix a(static_cast<int>(xi.size()), static_cast<int>(yi.size()));
      BitMatrix b(static_cast<int>(yi.size()), static_cast<int>(zi.size()));
      for (size_t r = 0; r < m1.size(); ++r) {
        a.Set(xi.at(m1.Get(r, vx)), yi.at(m1.Get(r, vy)));
      }
      for (size_t r = 0; r < m2.size(); ++r) {
        b.Set(yi.at(m2.Get(r, vy)), zi.at(m2.Get(r, vz)));
      }
      BitMatrix m = BitMatrix::Multiply(a, b);
      for (size_t r = 0; r < rxz->size(); ++r) {
        auto ix = xi.find(rxz->Get(r, vx));
        auto iz = zi.find(rxz->Get(r, vz));
        if (ix != xi.end() && iz != zi.end() &&
            m.Get(ix->second, iz->second)) {
          return true;
        }
      }
    } else {
      Matrix a(static_cast<int>(xi.size()), static_cast<int>(yi.size()));
      Matrix b(static_cast<int>(yi.size()), static_cast<int>(zi.size()));
      for (size_t r = 0; r < m1.size(); ++r) {
        a.At(xi.at(m1.Get(r, vx)), yi.at(m1.Get(r, vy))) = 1;
      }
      for (size_t r = 0; r < m2.size(); ++r) {
        b.At(yi.at(m2.Get(r, vy)), zi.at(m2.Get(r, vz))) = 1;
      }
      Matrix m = kernel == MmKernel::kStrassen ? MultiplyRectangular(a, b)
                                               : MultiplyNaive(a, b);
      for (size_t r = 0; r < rxz->size(); ++r) {
        auto ix = xi.find(rxz->Get(r, vx));
        auto iz = zi.find(rxz->Get(r, vz));
        if (ix != xi.end() && iz != zi.end() &&
            m.At(ix->second, iz->second) != 0) {
          return true;
        }
      }
    }
  }
  return false;
}

bool PandaTriangleBoolean(const Database& db, double omega, MmKernel kernel,
                          PandaStats* stats) {
  const double n = static_cast<double>(db.TotalSize());
  if (n == 0) return false;
  const int64_t threshold = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(
             std::pow(n, (omega - 1.0) / (omega + 1.0)))));
  // Snap omega to a small rational for the symbolic side.
  const Rational omega_q(static_cast<int64_t>(std::llround(omega * 1000000)),
                         1000000);
  OmegaShannonInequality ineq = TriangleInequality(omega_q);
  ProofSequence seq = TriangleProofSequence(omega_q);
  FMMSW_CHECK(VerifyProofSequence(ineq, seq, omega_q));
  return ExecuteProofSequence(Hypergraph::Triangle(), db, ineq, seq,
                              threshold, kernel, stats);
}

}  // namespace fmmsw
