#ifndef FMMSW_ENGINE_TRIANGLE_H_
#define FMMSW_ENGINE_TRIANGLE_H_

/// \file
/// The triangle query Q_triangle (Eq. 2) — both the combinatorial
/// O(N^{3/2}) worst-case-optimal join and the paper's Figure-1 algorithm
/// running in ~O(N^{2w/(w+1)}):
///
///   partition R on deg(Y|X), S on deg(Z|Y), T on deg(X|Z) at
///   Delta = N^{(w-1)/(w+1)}; triangles with a light corner are found by
///   three N*Delta joins; the all-heavy core (at most N/Delta values per
///   corner) is detected by one matrix multiplication.
///
/// The database layout follows Hypergraph::Triangle(): relations
/// [R(X,Y), S(Y,Z), T(X,Z)] with X=0, Y=1, Z=2.

#include "engine/elimination.h"
#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

struct TriangleStats {
  int64_t heavy_x = 0, heavy_y = 0, heavy_z = 0;
  /// Surviving tuples of the fused light-corner joins (the filtered-away
  /// intermediate is never materialized; with limit 1 this is at most 1
  /// per corner).
  int64_t light_join_tuples = 0;
  int64_t mm_dim_x = 0, mm_dim_y = 0, mm_dim_z = 0;
  bool answer_from_light = false;
};

/// Combinatorial baseline: generic join, O(N^{3/2}).
bool TriangleCombinatorial(const QueryInput& db, ExecContext* ctx = nullptr);

/// The Figure-1 algorithm. `omega` sets the partition threshold
/// Delta = N^{(omega-1)/(omega+1)}; pass log2(7) when using the Strassen
/// kernel so threshold and kernel agree.
bool TriangleMm(const QueryInput& db, double omega,
                MmKernel kernel = MmKernel::kBoolean,
                TriangleStats* stats = nullptr, ExecContext* ctx = nullptr);

/// Triangle counting via integer matrix multiplication (trace of A^3 on
/// the heavy part is not enough for counts; this counts all triangles by
/// summing the entrywise product of (M1 x M2) with T). Used by tests to
/// cross-check against WcojCount.
int64_t TriangleCountMm(const QueryInput& db, MmKernel kernel,
                        ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_ENGINE_TRIANGLE_H_
