#include "engine/wcoj.h"

#include <algorithm>
#include <map>

#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

namespace {

/// Trie over a relation's columns, nested in the global variable order, so
/// that when GenericJoin reaches variable v every earlier variable of the
/// relation is already bound and the children keys are exactly the
/// candidate values.
struct Trie {
  std::map<Value, Trie> kids;
};

struct IndexedRelation {
  std::vector<int> vars;  // schema vars in instantiation order
  Trie root;
};

class GenericJoin {
 public:
  GenericJoin(const Hypergraph& h, const Database& db,
              const std::vector<int>& order)
      : order_(order) {
    FMMSW_CHECK(db.relations.size() == h.edges().size());
    // Position of each variable in the instantiation order.
    std::vector<int> pos(kMaxVars, -1);
    for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const Relation& r : db.relations) {
      IndexedRelation ir;
      ir.vars = r.vars();
      std::sort(ir.vars.begin(), ir.vars.end(),
                [&](int a, int b) { return pos[a] < pos[b]; });
      std::vector<int> cols;
      for (int v : ir.vars) cols.push_back(r.ColumnOf(v));
      for (size_t row = 0; row < r.size(); ++row) {
        Trie* node = &ir.root;
        for (int c : cols) node = &node->kids[r.Row(row)[c]];
      }
      rels_.push_back(std::move(ir));
    }
    nodes_.assign(rels_.size(), {});
    for (size_t i = 0; i < rels_.size(); ++i) {
      nodes_[i].push_back(&rels_[i].root);
    }
    assignment_.assign(kMaxVars, 0);
  }

  /// Visits every satisfying assignment; `emit` returns false to stop the
  /// enumeration early (Boolean mode).
  template <typename Emit>
  bool Run(const Emit& emit) {
    return Recurse(0, emit);
  }

 private:
  template <typename Emit>
  bool Recurse(size_t depth, const Emit& emit) {
    if (depth == order_.size()) return emit(assignment_);
    const int v = order_[depth];
    // Relations whose next trie level is v.
    std::vector<size_t> active;
    for (size_t i = 0; i < rels_.size(); ++i) {
      const size_t level = nodes_[i].size() - 1;
      if (level < rels_[i].vars.size() && rels_[i].vars[level] == v) {
        active.push_back(i);
      }
    }
    if (active.empty()) {
      // Unconstrained variable (possible after projections); nothing to
      // iterate — this only happens for vars absent from every relation.
      return Recurse(depth + 1, emit);
    }
    // Iterate the smallest candidate set, probing the others.
    size_t pivot = active[0];
    for (size_t i : active) {
      if (nodes_[i].back()->kids.size() < nodes_[pivot].back()->kids.size()) {
        pivot = i;
      }
    }
    for (const auto& [value, sub] : nodes_[pivot].back()->kids) {
      bool ok = true;
      for (size_t i : active) {
        if (i == pivot) continue;
        if (nodes_[i].back()->kids.find(value) ==
            nodes_[i].back()->kids.end()) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (size_t i : active) {
        nodes_[i].push_back(&nodes_[i].back()->kids.find(value)->second);
      }
      assignment_[v] = value;
      const bool keep_going = Recurse(depth + 1, emit);
      for (size_t i : active) nodes_[i].pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  std::vector<int> order_;
  std::vector<IndexedRelation> rels_;
  std::vector<std::vector<Trie*>> nodes_;
  std::vector<Value> assignment_;
};

std::vector<int> DefaultOrder(const Hypergraph& h) {
  return h.vertices().Members();
}

}  // namespace

bool WcojBoolean(const Hypergraph& h, const Database& db) {
  GenericJoin gj(h, db, DefaultOrder(h));
  bool found = false;
  gj.Run([&](const std::vector<Value>&) {
    found = true;
    return false;  // stop at the first witness
  });
  return found;
}

Relation WcojJoin(const Hypergraph& h, const Database& db, VarSet output_vars,
                  const std::vector<int>* order) {
  const std::vector<int> ord = order ? *order : DefaultOrder(h);
  GenericJoin gj(h, db, ord);
  Relation out(output_vars & h.vertices());
  const std::vector<int> out_vars = out.vars();
  std::vector<Value> tuple(out_vars.size());
  gj.Run([&](const std::vector<Value>& assignment) {
    for (size_t i = 0; i < out_vars.size(); ++i) {
      tuple[i] = assignment[out_vars[i]];
    }
    out.Add(tuple);
    return true;
  });
  out.SortAndDedupe();
  return out;
}

int64_t WcojCount(const Hypergraph& h, const Database& db) {
  GenericJoin gj(h, db, DefaultOrder(h));
  int64_t count = 0;
  gj.Run([&](const std::vector<Value>&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace fmmsw
