#include "engine/wcoj.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "core/exec_context.h"
#include "relation/ops.h"
#include "relation/row_sort.h"
#include "util/check.h"

namespace fmmsw {

namespace {

/// Sorted-range trie: each relation's rows are materialized once in a flat
/// buffer, columns permuted into the global instantiation order and rows
/// sorted lexicographically. A trie node is then a contiguous range of
/// that buffer; the children at depth d are the runs of equal values in
/// column d, and probing a value is a galloping search within the range.
/// No per-node allocation, no pointer chasing (compare the previous
/// std::map<Value, Trie> representation), and candidate enumeration walks
/// contiguous memory.
struct IndexedRelation {
  std::vector<int> vars;  // schema vars in instantiation order
  int arity = 0;
  std::vector<Value> data;  // sorted rows, columns in `vars` order

  Value At(uint32_t pos, size_t level) const {
    return data[static_cast<size_t>(pos) * arity + level];
  }
  uint32_t rows() const {
    return static_cast<uint32_t>(data.size() /
                                 std::max<size_t>(arity, 1));
  }
};

struct Range {
  uint32_t begin, end;
  uint32_t size() const { return end - begin; }
};

/// Mutable enumeration state: one range stack per relation plus the
/// current partial assignment. The trie data itself is shared read-only,
/// so parallel workers each own an EnumState and recurse independently.
struct EnumState {
  std::vector<std::vector<Range>> ranges;
  std::vector<Value> assignment;
  /// Per-worker run counter amortizing the guard polls of EnumerateRuns:
  /// persists across calls so short ranges still accumulate toward the
  /// next poll instead of resetting below the mask every time.
  uint32_t poll_tick = 0;
};

class GenericJoin {
 public:
  GenericJoin(const Hypergraph& h, const QueryInput& db,
              const std::vector<int>& order, ExecContext& ec)
      : order_(order), guard_(&ec.guard()), trie_charge_(ec) {
    FMMSW_CHECK(db.relations.size() == h.edges().size());
    // Position of each variable in the instantiation order.
    std::vector<int> pos(kMaxVars, -1);
    for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const Relation& r : db.relations) {
      IndexedRelation ir;
      ir.vars = r.vars();
      ir.arity = r.arity();
      total_rows_ += r.size();
      // contracts: allow(no-comparator-sort) sorts <= kMaxVars schema
      // variables once per relation at setup, not tuples.
      std::sort(ir.vars.begin(), ir.vars.end(),
                [&](int a, int b) { return pos[a] < pos[b]; });
      std::vector<int> cols;
      for (int v : ir.vars) cols.push_back(r.ColumnOf(v));
      // Trie buffers live for the whole join; charging before each build
      // lets a memory budget stop the query before the allocation, not
      // after.
      trie_charge_.Add(static_cast<int64_t>(r.size()) *
                       static_cast<int64_t>(cols.size()) * sizeof(Value));
      // The trie buffer is the projection onto `cols` in sorted row
      // order: pack those columns, radix-sort the packed keys
      // (comparator-free, pool-parallel for large relations), unpack
      // once. Relations whose column order matches the instantiation
      // order arrive presorted and skip the passes entirely.
      SortProjectedRows(r, cols, ec, &ir.data);
      rels_.push_back(std::move(ir));
    }
  }

  size_t total_rows() const { return total_rows_; }

  EnumState MakeState() const {
    EnumState st;
    st.ranges.resize(rels_.size());
    for (size_t i = 0; i < rels_.size(); ++i) {
      st.ranges[i].reserve(order_.size() + 2);
      st.ranges[i].push_back({0, rels_[i].rows()});
    }
    st.assignment.assign(kMaxVars, 0);
    return st;
  }

  /// Visits every satisfying assignment; `emit` returns false to stop the
  /// enumeration early (Boolean mode).
  template <typename Emit>
  bool Run(const Emit& emit) const {
    EnumState st = MakeState();
    return Recurse(&st, 0, emit);
  }

  // ---- Top-level task fan-out ----------------------------------------
  // The candidate runs of the first variable become independent subtrees:
  // each task pins the first variable to one matching value (with the
  // per-relation subranges already resolved) and a worker enumerates the
  // rest with its own range stacks.

  /// Expands depth 0 into tasks. Returns false (leaving no tasks) when
  /// the first variable is unconstrained — callers fall back to the
  /// serial path.
  bool CollectTopTasks() {
    task_values_.clear();
    task_ranges_.clear();
    active_.clear();
    if (order_.empty()) return false;
    const int v = order_[0];
    for (size_t i = 0; i < rels_.size(); ++i) {
      if (!rels_[i].vars.empty() && rels_[i].vars[0] == v) {
        active_.push_back(i);
      }
    }
    if (active_.empty()) return false;
    size_t pivot_a = 0;
    for (size_t a = 1; a < active_.size(); ++a) {
      if (rels_[active_[a]].rows() < rels_[active_[pivot_a]].rows()) {
        pivot_a = a;
      }
    }
    const IndexedRelation& pr = rels_[active_[pivot_a]];
    const uint32_t pend = pr.rows();
    std::vector<uint32_t> cursor(active_.size(), 0);
    std::vector<Range> sub(active_.size());
    uint32_t pos = 0;
    uint32_t runs = 0;
    while (pos < pend) {
      if ((++runs & 1023) == 0) guard_->Poll(FaultSite::kWcoj);
      const Value value = pr.At(pos, 0);
      uint32_t run_end = pos + 1;
      while (run_end < pend && pr.At(run_end, 0) == value) ++run_end;
      bool ok = true;
      for (size_t a = 0; a < active_.size(); ++a) {
        if (a == pivot_a) {
          sub[a] = {pos, run_end};
          continue;
        }
        const IndexedRelation& ir = rels_[active_[a]];
        const Range s = Seek(ir, 0, cursor[a], ir.rows(), value);
        cursor[a] = s.end;
        if (s.size() == 0) {
          ok = false;
          break;
        }
        sub[a] = s;
      }
      if (ok) {
        task_values_.push_back(value);
        task_ranges_.insert(task_ranges_.end(), sub.begin(), sub.end());
      }
      pos = run_end;
    }
    return true;
  }

  size_t task_count() const { return task_values_.size(); }

  /// Runs one top-level task on the given worker state; the state's
  /// stacks are rebalanced before returning. Returns false if `emit`
  /// stopped the enumeration.
  template <typename Emit>
  bool RunTask(EnumState* st, size_t task, const Emit& emit) const {
    const size_t na = active_.size();
    for (size_t a = 0; a < na; ++a) {
      std::vector<Range>& stack = st->ranges[active_[a]];
      stack.resize(1);
      stack.push_back(task_ranges_[task * na + a]);
    }
    st->assignment[order_[0]] = task_values_[task];
    const bool keep_going = Recurse(st, 1, emit);
    for (size_t a = 0; a < na; ++a) st->ranges[active_[a]].resize(1);
    return keep_going;
  }

  // ---- Depth-1 cooperative execution (sub-level stealing) ------------
  // A single heavy top-level task serializes the whole join if only whole
  // tasks are scheduled. For tasks whose depth-1 candidate range is large
  // enough, the range is instead *claimed in position blocks* from a
  // shared atomic cursor: the task's first claimant and any worker that
  // has run out of whole tasks pull blocks from the same cursor, so a
  // heavy hitter is split across however many workers go dry. A value run
  // is processed by the claimant of its first position (claimants skip a
  // run straddling in from the left and finish one extending past their
  // block), so the claims partition the depth-1 runs exactly — every
  // assignment is enumerated once, for any interleaving of claims.

  /// Resolves the depth-1 active set plus, per task, the pivot relation
  /// and its candidate range. Returns false when depth 1 cannot be
  /// executed cooperatively (single-variable order, or a second variable
  /// constrained by no relation).
  bool PrepareDepth1() {
    d1_active_.clear();
    d1_pivot_.clear();
    d1_range_.clear();
    if (order_.size() < 2) return false;
    const int v = order_[1];
    for (size_t i = 0; i < rels_.size(); ++i) {
      const bool active0 =
          std::find(active_.begin(), active_.end(), i) != active_.end();
      const size_t level = active0 ? 1 : 0;
      if (level < rels_[i].vars.size() && rels_[i].vars[level] == v) {
        d1_active_.push_back(i);
      }
    }
    if (d1_active_.empty() || d1_active_.size() > 64) return false;
    const size_t nt = task_count();
    d1_pivot_.resize(nt);
    d1_range_.resize(nt);
    for (size_t t = 0; t < nt; ++t) {
      size_t best = d1_active_[0];
      Range brange = RangeAtDepth1(t, best);
      for (size_t a = 1; a < d1_active_.size(); ++a) {
        const Range cand = RangeAtDepth1(t, d1_active_[a]);
        if (cand.size() < brange.size()) {
          best = d1_active_[a];
          brange = cand;
        }
      }
      d1_pivot_[t] = best;
      d1_range_[t] = brange;
    }
    return true;
  }

  uint32_t D1Begin(size_t task) const { return d1_range_[task].begin; }
  uint32_t D1End(size_t task) const { return d1_range_[task].end; }
  uint32_t D1Span(size_t task) const { return d1_range_[task].size(); }

  /// Cooperative execution of one task: claims depth-1 position blocks
  /// from `cursor` until the range is exhausted or `stop()` turns true
  /// (polled per block — a Boolean caller's global early exit), calling
  /// begin_block(task, lo) before each claimed block's enumeration.
  /// Returns false if `emit` stopped the run (the cursor is then poisoned
  /// so other participants stop claiming).
  template <typename Stop, typename BeginBlock, typename Emit>
  bool RunTaskCoop(EnumState* st, size_t task,
                   std::atomic<uint32_t>* cursor, uint32_t block,
                   const Stop& stop, const BeginBlock& begin_block,
                   const Emit& emit) const {
    const size_t na = active_.size();
    for (size_t a = 0; a < na; ++a) {
      std::vector<Range>& stack = st->ranges[active_[a]];
      stack.resize(1);
      stack.push_back(task_ranges_[task * na + a]);
    }
    st->assignment[order_[0]] = task_values_[task];
    const uint32_t end = d1_range_[task].end;
    bool keep_going = true;
    while (keep_going && !stop()) {
      // relaxed: work-claim RMW — atomicity alone hands each depth-1
      // position block to exactly one claimant (the claim partition is
      // what determinism rests on, and it holds under any ordering);
      // claimed blocks read only the shared immutable trie, and worker
      // outputs are published by the pool's fan-in.
      const uint32_t lo = cursor->fetch_add(block, std::memory_order_relaxed);
      if (lo >= end) break;
      guard_->Poll(FaultSite::kWcoj);
      begin_block(task, lo);
      keep_going = RunBlock(st, task, lo, std::min(lo + block, end), emit);
    }
    // relaxed: poison latch — saturating the cursor stops further
    // claims; racing claimants that already passed the fetch_add just
    // finish their block, which the early-exit contract permits.
    if (!keep_going) cursor->store(end, std::memory_order_relaxed);
    for (size_t a = 0; a < na; ++a) st->ranges[active_[a]].resize(1);
    return keep_going;
  }

 private:
  /// Enumerates the depth-1 runs *starting* in [lo, hi) of the task's
  /// pivot range (a straddling head run is skipped, a tail run is
  /// finished past hi) and recurses below them.
  template <typename Emit>
  bool RunBlock(EnumState* st, size_t task, uint32_t lo, uint32_t hi,
                const Emit& emit) const {
    const size_t pivot = d1_pivot_[task];
    const IndexedRelation& pr = rels_[pivot];
    const size_t plevel = st->ranges[pivot].size() - 1;
    const Range prange = d1_range_[task];
    uint32_t pos = lo;
    if (pos > prange.begin &&
        pr.At(pos, plevel) == pr.At(pos - 1, plevel)) {
      pos = UpperBound(pr, plevel, pos, prange.end, pr.At(pos, plevel));
    }
    return EnumerateRuns(st, d1_active_.data(), d1_active_.size(), pivot,
                         prange, pos, hi, /*next_depth=*/2, emit);
  }

  /// The one run-enumeration kernel shared by Recurse and RunBlock: walks
  /// the value runs of `pivot` whose start position lies in [lo, hi)
  /// (each run extends to its true end within prange, possibly past hi),
  /// Seek-probes the other `actives` with forward-only cursors, pushes
  /// the matched subranges, recurses at `next_depth` and unwinds. The
  /// bit-identical-across-thread-counts guarantee rests on serial and
  /// cooperative execution sharing this single implementation.
  template <typename Emit>
  bool EnumerateRuns(EnumState* st, const size_t* actives, size_t n_active,
                     size_t pivot, const Range& prange, uint32_t lo,
                     uint32_t hi, size_t next_depth, const Emit& emit) const {
    const IndexedRelation& pr = rels_[pivot];
    const size_t plevel = st->ranges[pivot].size() - 1;
    const int v = order_[next_depth - 1];
    // Forward-only probe cursors, one per active relation.
    uint32_t cursor[64];
    for (size_t a = 0; a < n_active; ++a) {
      cursor[a] = st->ranges[actives[a]].back().begin;
    }
    uint32_t pos = lo;
    while (pos < hi) {
      // Morsel-boundary poll, confined to the top two instantiation
      // levels and amortized to every 256th run (the worker-local tick
      // keeps the armed slow path — an atomic fetch_add on a shared
      // counter — off the per-run critical path; depth-1 coop block
      // claims still poll unconditionally, bounding abort latency).
      if (next_depth <= 2 && (++st->poll_tick & 255) == 0) guard_->Poll(FaultSite::kWcoj);
      const Value value = pr.At(pos, plevel);
      uint32_t run_end = pos + 1;
      while (run_end < prange.end && pr.At(run_end, plevel) == value) {
        ++run_end;
      }
      bool ok = true;
      size_t pushed = 0;
      for (size_t a = 0; a < n_active; ++a) {
        const size_t i = actives[a];
        if (i == pivot) continue;
        const Range sub = Seek(rels_[i], st->ranges[i].size() - 1, cursor[a],
                               st->ranges[i].back().end, value);
        cursor[a] = sub.end;
        if (sub.size() == 0) {
          ok = false;
          break;
        }
        st->ranges[i].push_back(sub);
        ++pushed;
      }
      if (!ok) {
        // Unwind the subranges pushed before the miss.
        for (size_t a = 0; a < n_active && pushed > 0; ++a) {
          const size_t i = actives[a];
          if (i == pivot) continue;
          st->ranges[i].pop_back();
          --pushed;
        }
        pos = run_end;
        continue;
      }
      st->ranges[pivot].push_back({pos, run_end});
      st->assignment[v] = value;
      const bool keep_going = Recurse(st, next_depth, emit);
      for (size_t a = 0; a < n_active; ++a) st->ranges[actives[a]].pop_back();
      if (!keep_going) return false;
      pos = run_end;
    }
    return true;
  }

  /// Depth-1 range of `rel` within task `t`: the task's resolved subrange
  /// for depth-0 active relations, the full relation otherwise.
  Range RangeAtDepth1(size_t t, size_t rel) const {
    for (size_t a = 0; a < active_.size(); ++a) {
      if (active_[a] == rel) return task_ranges_[t * active_.size() + a];
    }
    return {0, rels_[rel].rows()};
  }

  /// First position in [lo, hi) whose `level` column is >= v.
  static uint32_t LowerBound(const IndexedRelation& ir, size_t level,
                             uint32_t lo, uint32_t hi, Value v) {
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (ir.At(mid, level) < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First position in [lo, hi) whose `level` column is > v.
  static uint32_t UpperBound(const IndexedRelation& ir, size_t level,
                             uint32_t lo, uint32_t hi, Value v) {
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (ir.At(mid, level) <= v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Subrange of [from, end) holding value `v` in column `level`. The
  /// candidate values arrive in increasing order, so `from` is a cursor
  /// that only moves forward: gallop to bracket v, then binary search —
  /// amortized linear in the range instead of log per probe.
  static Range Seek(const IndexedRelation& ir, size_t level, uint32_t from,
                    uint32_t end, Value v) {
    uint32_t lo = from, step = 1;
    while (lo < end && ir.At(lo, level) < v) {
      from = lo + 1;
      lo += step;
      step <<= 1;
    }
    lo = LowerBound(ir, level, from, std::min(lo, end), v);
    if (lo >= end || ir.At(lo, level) != v) return {lo, lo};
    uint32_t hi = lo + 1, hstep = 1;
    uint32_t hfrom = hi;
    while (hi < end && ir.At(hi, level) == v) {
      hfrom = hi + 1;
      hi += hstep;
      hstep <<= 1;
    }
    hi = UpperBound(ir, level, hfrom, std::min(hi, end), v);
    return {lo, hi};
  }

  template <typename Emit>
  bool Recurse(EnumState* st, size_t depth, const Emit& emit) const {
    if (depth == order_.size()) return emit(st->assignment);
    const int v = order_[depth];
    // Relations whose next trie level is v.
    size_t active[64];
    size_t n_active = 0;
    for (size_t i = 0; i < rels_.size(); ++i) {
      const size_t level = st->ranges[i].size() - 1;
      if (level < rels_[i].vars.size() && rels_[i].vars[level] == v) {
        FMMSW_CHECK(n_active < 64);
        active[n_active++] = i;
      }
    }
    if (n_active == 0) {
      // Unconstrained variable (possible after projections); nothing to
      // iterate — this only happens for vars absent from every relation.
      return Recurse(st, depth + 1, emit);
    }
    // Iterate the relation with the smallest range, probing the others.
    size_t pivot = active[0];
    for (size_t a = 1; a < n_active; ++a) {
      if (st->ranges[active[a]].back().size() <
          st->ranges[pivot].back().size()) {
        pivot = active[a];
      }
    }
    const Range prange = st->ranges[pivot].back();
    return EnumerateRuns(st, active, n_active, pivot, prange, prange.begin,
                         prange.end, depth + 1, emit);
  }

  std::vector<int> order_;
  QueryGuard* guard_;
  MemCharge trie_charge_;  ///< trie buffers, held for the join's lifetime
  std::vector<IndexedRelation> rels_;
  size_t total_rows_ = 0;
  std::vector<size_t> active_;     // relations constrained at depth 0
  std::vector<Value> task_values_;
  std::vector<Range> task_ranges_;  // task_count() * active_.size()
  std::vector<size_t> d1_active_;  // relations constrained at depth 1
  std::vector<size_t> d1_pivot_;   // per task: depth-1 pivot relation
  std::vector<Range> d1_range_;    // per task: pivot's depth-1 range
};

std::vector<int> DefaultOrder(const Hypergraph& h) {
  return h.vertices().Members();
}

/// Minimum input size / task fan-out before the pool is engaged: tiny
/// joins (unit tests, inner TD bags) stay serial.
constexpr size_t kMinParallelRows = 512;
constexpr size_t kMinParallelTasks = 4;

/// Expands top-level tasks if the parallel path applies; returns the task
/// count (0 = run serial).
size_t PrepareParallel(ExecContext& ec, GenericJoin* gj) {
  if (ec.threads() <= 1) return 0;
  if (gj->total_rows() < kMinParallelRows) return 0;
  if (!gj->CollectTopTasks()) return 0;
  if (gj->task_count() < kMinParallelTasks) return 0;
  ExecStats& st = ec.stats();
  Bump(st.wcoj_parallel_runs);
  Bump(st.wcoj_tasks, static_cast<int64_t>(gj->task_count()));
  return gj->task_count();
}

/// Minimum depth-1 span before a task runs cooperatively: below this the
/// shared-cursor claims cost more than they balance.
constexpr uint32_t kCoopMinSpan = 1024;

/// Claim granularity: small enough that the tail of a heavy task is
/// spread across workers, large enough to amortize the atomic claim.
uint32_t CoopBlock(uint32_t span, int threads) {
  return std::max<uint32_t>(
      64, span / (16u * static_cast<uint32_t>(threads)));
}

/// Shared scheduling state of one parallel WCOJ execution: which tasks
/// run cooperatively and their depth-1 claim cursors.
struct CoopPlan {
  std::vector<uint8_t> coop;                   // per task
  std::vector<std::atomic<uint32_t>> cursors;  // per task: next depth-1 pos

  CoopPlan(GenericJoin* gj, size_t ntasks)
      : coop(ntasks, 0), cursors(ntasks) {
    if (!gj->PrepareDepth1()) return;
    for (size_t t = 0; t < ntasks; ++t) {
      if (gj->D1Span(t) >= kCoopMinSpan) {
        coop[t] = 1;
        // relaxed: initialization before the fan-out — DriveParallel's
        // pool handshake publishes the cursors to every worker.
        cursors[t].store(gj->D1Begin(t), std::memory_order_relaxed);
      }
    }
  }

  /// Cooperative task with the most unclaimed depth-1 positions (the
  /// heaviest in-flight task a dry worker should help), or SIZE_MAX.
  size_t Heaviest(const GenericJoin& gj) const {
    size_t best = SIZE_MAX;
    uint32_t best_left = 0;
    for (size_t t = 0; t < coop.size(); ++t) {
      if (!coop[t]) continue;
      // relaxed: scheduling heuristic — a stale cursor only makes a dry
      // worker pick a lighter task (or retry); actual work is still
      // handed out solely by the claiming fetch_add in RunTaskCoop.
      const uint32_t cur = cursors[t].load(std::memory_order_relaxed);
      const uint32_t end = gj.D1End(t);
      const uint32_t left = cur < end ? end - cur : 0;
      if (left > best_left) {
        best_left = left;
        best = t;
      }
    }
    return best;
  }
};

/// The one parallel WCOJ driver, shared by Boolean/Join/Count: claim
/// whole tasks (cooperative ones through their shared depth-1 cursors),
/// then let dry workers steal depth-1 blocks from the heaviest in-flight
/// task. `make_hooks(worker)` builds the per-worker callbacks:
///   - Emit(assignment) -> bool : consume one result (false = stop all)
///   - BeginBlock(task, lo)     : a new output segment starts (Join tags
///                                its merge segments here; no-op for
///                                Boolean/Count)
///   - Stop() -> bool           : global early-exit poll
/// Per-worker cleanup (e.g. flushing a local count) goes in the hooks
/// object's destructor, which runs on every exit path.
template <typename MakeHooks>
void DriveParallel(ExecContext& ec, GenericJoin& gj, size_t ntasks,
                   const MakeHooks& make_hooks) {
  CoopPlan plan(&gj, ntasks);
  ExecStats& stats = ec.stats();
  QueryGuard& guard = ec.guard();
  const int nthreads = ec.threads();
  std::atomic<int64_t> next(0);
  ec.pool().Run([&](int w) {
    EnumState st = gj.MakeState();
    auto hooks = make_hooks(w);
    auto emit = [&](const std::vector<Value>& a) { return hooks.Emit(a); };
    auto begin_block = [&](size_t t, uint32_t lo) { hooks.BeginBlock(t, lo); };
    auto steal_block = [&](size_t t, uint32_t lo) {
      Bump(stats.wcoj_steal_claims);
      hooks.BeginBlock(t, lo);
    };
    auto stop = [&] { return hooks.Stop(); };
    while (!stop()) {
      // relaxed: work-claim RMW — each whole task claimed exactly once;
      // outputs are published by the pool's fan-in (see RunTaskCoop).
      const int64_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= static_cast<int64_t>(ntasks)) break;
      guard.Poll(FaultSite::kWcoj);
      if (plan.coop[t]) {
        Bump(stats.wcoj_coop_tasks);
        if (!gj.RunTaskCoop(&st, t, &plan.cursors[t],
                            CoopBlock(gj.D1Span(t), nthreads), stop,
                            begin_block, emit)) {
          return;
        }
      } else {
        begin_block(t, 0);
        if (!gj.RunTask(&st, t, emit)) return;
      }
    }
    // Dry: steal depth-1 blocks from the heaviest unfinished coop task.
    while (!stop()) {
      guard.Poll(FaultSite::kWcoj);
      const size_t t = plan.Heaviest(gj);
      if (t == SIZE_MAX) return;
      if (!gj.RunTaskCoop(&st, t, &plan.cursors[t],
                          CoopBlock(gj.D1Span(t), nthreads), stop,
                          steal_block, emit)) {
        return;
      }
    }
  });
}

}  // namespace

bool WcojBoolean(const Hypergraph& h, const QueryInput& db, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  Bump(ec.stats().wcoj_runs);
  GenericJoin gj(h, db, DefaultOrder(h), ec);
  const size_t ntasks = PrepareParallel(ec, &gj);
  if (ntasks == 0) {
    bool found = false;
    gj.Run([&](const std::vector<Value>&) {
      found = true;
      return false;  // stop at the first witness
    });
    return found;
  }
  std::atomic<bool> found(false);
  DriveParallel(ec, gj, ntasks, [&](int) {
    struct Hooks {
      std::atomic<bool>* found;
      bool Emit(const std::vector<Value>&) {
        // relaxed: idempotent one-way latch; the authoritative read is
        // the fan-in-ordered load after DriveParallel returns.
        found->store(true, std::memory_order_relaxed);
        return false;  // stop at the first witness
      }
      void BeginBlock(size_t, uint32_t) {}
      bool Stop() const {
        // relaxed: early-exit hint — a stale false only costs redundant
        // side-effect-free enumeration before the next check.
        return found->load(std::memory_order_relaxed);
      }
    };
    return Hooks{&found};
  });
  return found.load();
}

Relation WcojJoin(const Hypergraph& h, const QueryInput& db, VarSet output_vars,
                  const std::vector<int>* order, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  Bump(ec.stats().wcoj_runs);
  const std::vector<int> ord = order ? *order : DefaultOrder(h);
  GenericJoin gj(h, db, ord, ec);
  Relation out(output_vars & h.vertices());
  const std::vector<int> out_vars = out.vars();
  if (out_vars.empty()) {
    // Nullary output: an existence test.
    if (WcojBoolean(h, db, ctx)) out.Add({});
    return out;
  }
  QueryGuard& guard = ec.guard();
  const int64_t row_bytes =
      static_cast<int64_t>(out_vars.size()) * sizeof(Value);
  constexpr int64_t kEmitBatch = 1024;  // row-limit/charge flush cadence
  const size_t ntasks = PrepareParallel(ec, &gj);
  if (ntasks == 0) {
    std::vector<Value> tuple(out_vars.size());
    MemCharge charge(ec);
    int64_t emitted = 0;
    gj.Run([&](const std::vector<Value>& assignment) {
      for (size_t i = 0; i < out_vars.size(); ++i) {
        tuple[i] = assignment[out_vars[i]];
      }
      out.AddRow(tuple.data());
      if ((++emitted & (kEmitBatch - 1)) == 0) {
        guard.CountRows(kEmitBatch);
        charge.Add(kEmitBatch * row_bytes);
      }
      return true;
    });
    out.SortAndDedupe(&ec);
    return out;
  }
  // Task fan-out with depth-1 stealing. Each worker appends tuples to its
  // own buffer, carved into segments tagged (task, depth-1 block start).
  // Claims partition the depth-1 runs of every cooperative task exactly,
  // so concatenating the segments in ascending tag order reproduces the
  // serial enumeration order no matter which worker claimed what — and
  // the canonical sort below makes the relation bit-identical across
  // thread counts either way.
  struct WorkerOut {
    std::vector<Value> data;
    std::vector<std::pair<uint64_t, size_t>> segs;  // (tag, start offset)
  };
  std::vector<WorkerOut> outs(static_cast<size_t>(ec.threads()));
  DriveParallel(ec, gj, ntasks, [&](int w) {
    struct Hooks {
      WorkerOut* out;
      std::vector<Value> tuple;
      const std::vector<int>* out_vars;
      QueryGuard* guard;
      int64_t row_bytes;
      int64_t emitted = 0;
      int64_t charged = 0;
      bool Emit(const std::vector<Value>& assignment) {
        for (size_t i = 0; i < out_vars->size(); ++i) {
          tuple[i] = assignment[(*out_vars)[i]];
        }
        out->data.insert(out->data.end(), tuple.begin(), tuple.end());
        if ((++emitted & (kEmitBatch - 1)) == 0) {
          // Charge before CountRows: if either throws, the destructor
          // below releases exactly what was recorded.
          charged += kEmitBatch * row_bytes;
          guard->ChargeMem(kEmitBatch * row_bytes);
          guard->CountRows(kEmitBatch);
        }
        return true;
      }
      void BeginBlock(size_t task, uint32_t lo) {
        out->segs.push_back(
            {(static_cast<uint64_t>(task) << 32) | lo, out->data.size()});
      }
      bool Stop() const { return false; }
      Hooks(const Hooks&) = delete;
      Hooks& operator=(const Hooks&) = delete;
      Hooks(WorkerOut* o, std::vector<Value> t, const std::vector<int>* ov,
            QueryGuard* g, int64_t rb)
          : out(o), tuple(std::move(t)), out_vars(ov), guard(g),
            row_bytes(rb) {}
      ~Hooks() {
        if (charged != 0) guard->ReleaseMem(charged);
      }
    };
    return Hooks{&outs[w], std::vector<Value>(out_vars.size()), &out_vars,
                 &guard, row_bytes};
  });
  // Deterministic merge: segments in ascending (task, block) order.
  struct MergeSeg {
    uint64_t tag;
    size_t w, begin, end;
  };
  std::vector<MergeSeg> merged;
  for (size_t w = 0; w < outs.size(); ++w) {
    const WorkerOut& o = outs[w];
    for (size_t s = 0; s < o.segs.size(); ++s) {
      const size_t begin = o.segs[s].second;
      const size_t end =
          s + 1 < o.segs.size() ? o.segs[s + 1].second : o.data.size();
      if (end > begin) merged.push_back({o.segs[s].first, w, begin, end});
    }
  }
  // contracts: allow(no-comparator-sort) O(workers * tasks) segment
  // descriptors once per parallel join, not tuples.
  std::sort(
      merged.begin(), merged.end(),
      [](const MergeSeg& a, const MergeSeg& b) { return a.tag < b.tag; });
  int64_t merged_bytes = 0;
  for (const MergeSeg& m : merged) {
    merged_bytes += static_cast<int64_t>(m.end - m.begin) * sizeof(Value);
  }
  MemCharge merge_charge(ec, merged_bytes);
  for (const MergeSeg& m : merged) {
    out.AddRows(&outs[m.w].data[m.begin],
                (m.end - m.begin) / out_vars.size());
  }
  // Canonical sort: makes the merged relation bit-identical across
  // thread counts; itself parallel (and itself thread-count-invariant)
  // through the wide-key layer.
  out.SortAndDedupe(&ec);
  return out;
}

int64_t WcojCount(const Hypergraph& h, const QueryInput& db, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  Bump(ec.stats().wcoj_runs);
  GenericJoin gj(h, db, DefaultOrder(h), ec);
  const size_t ntasks = PrepareParallel(ec, &gj);
  if (ntasks == 0) {
    int64_t count = 0;
    gj.Run([&](const std::vector<Value>&) {
      ++count;
      return true;
    });
    return count;
  }
  std::atomic<int64_t> total(0);
  DriveParallel(ec, gj, ntasks, [&](int) {
    struct Hooks {
      std::atomic<int64_t>* total = nullptr;
      int64_t local = 0;
      Hooks() = default;
      Hooks(Hooks&& o) noexcept : total(o.total), local(o.local) {
        o.total = nullptr;  // only the final owner flushes
      }
      bool Emit(const std::vector<Value>&) {
        ++local;
        return true;
      }
      void BeginBlock(size_t, uint32_t) {}
      bool Stop() const { return false; }
      // Flush on every exit path of the worker.
      ~Hooks() {
        if (total != nullptr) {
          // relaxed: per-worker partial sum — commutative RMW, read
          // only after the pool fan-in orders it.
          total->fetch_add(local, std::memory_order_relaxed);
        }
      }
    };
    Hooks h;
    h.total = &total;
    return h;
  });
  return total.load();
}

ExecResult WcojBooleanGuarded(const Hypergraph& h, const QueryInput& db,
                              bool* result, ExecContext* ctx,
                              const QueryLimits& limits) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  return RunGuarded(ec, limits,
                    [&] { *result = WcojBoolean(h, db, &ec); });
}

ExecResult WcojJoinGuarded(const Hypergraph& h, const QueryInput& db,
                           VarSet output_vars, Relation* result,
                           const std::vector<int>* order, ExecContext* ctx,
                           const QueryLimits& limits) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  return RunGuarded(ec, limits, [&] {
    *result = WcojJoin(h, db, output_vars, order, &ec);
  });
}

ExecResult WcojCountGuarded(const Hypergraph& h, const QueryInput& db,
                            int64_t* result, ExecContext* ctx,
                            const QueryLimits& limits) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  return RunGuarded(ec, limits, [&] { *result = WcojCount(h, db, &ec); });
}

}  // namespace fmmsw
