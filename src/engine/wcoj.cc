#include "engine/wcoj.h"

#include <algorithm>

#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

namespace {

/// Sorted-range trie: each relation's rows are materialized once in a flat
/// buffer, columns permuted into the global instantiation order and rows
/// sorted lexicographically. A trie node is then a contiguous range of
/// that buffer; the children at depth d are the runs of equal values in
/// column d, and probing a value is a galloping search within the range.
/// No per-node allocation, no pointer chasing (compare the previous
/// std::map<Value, Trie> representation), and candidate enumeration walks
/// contiguous memory.
struct IndexedRelation {
  std::vector<int> vars;  // schema vars in instantiation order
  int arity = 0;
  std::vector<Value> data;  // sorted rows, columns in `vars` order

  Value At(uint32_t pos, size_t level) const {
    return data[static_cast<size_t>(pos) * arity + level];
  }
};

struct Range {
  uint32_t begin, end;
  uint32_t size() const { return end - begin; }
};

class GenericJoin {
 public:
  GenericJoin(const Hypergraph& h, const Database& db,
              const std::vector<int>& order)
      : order_(order) {
    FMMSW_CHECK(db.relations.size() == h.edges().size());
    // Position of each variable in the instantiation order.
    std::vector<int> pos(kMaxVars, -1);
    for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const Relation& r : db.relations) {
      IndexedRelation ir;
      ir.vars = r.vars();
      ir.arity = r.arity();
      std::sort(ir.vars.begin(), ir.vars.end(),
                [&](int a, int b) { return pos[a] < pos[b]; });
      std::vector<int> cols;
      for (int v : ir.vars) cols.push_back(r.ColumnOf(v));
      std::vector<uint32_t> rows(r.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        rows[i] = static_cast<uint32_t>(i);
      }
      std::sort(rows.begin(), rows.end(), [&](uint32_t a, uint32_t b) {
        const Value* ra = r.Row(a);
        const Value* rb = r.Row(b);
        for (int c : cols) {
          if (ra[c] != rb[c]) return ra[c] < rb[c];
        }
        return false;
      });
      ir.data.resize(r.size() * cols.size());
      size_t w = 0;
      for (uint32_t row : rows) {
        const Value* src = r.Row(row);
        for (int c : cols) ir.data[w++] = src[c];
      }
      rels_.push_back(std::move(ir));
    }
    ranges_.resize(rels_.size());
    for (size_t i = 0; i < rels_.size(); ++i) {
      ranges_[i].push_back(
          {0, static_cast<uint32_t>(rels_[i].data.size() /
                                    std::max(rels_[i].arity, 1))});
    }
    assignment_.assign(kMaxVars, 0);
  }

  /// Visits every satisfying assignment; `emit` returns false to stop the
  /// enumeration early (Boolean mode).
  template <typename Emit>
  bool Run(const Emit& emit) {
    return Recurse(0, emit);
  }

 private:
  /// First position in [lo, hi) whose `level` column is >= v.
  static uint32_t LowerBound(const IndexedRelation& ir, size_t level,
                             uint32_t lo, uint32_t hi, Value v) {
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (ir.At(mid, level) < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First position in [lo, hi) whose `level` column is > v.
  static uint32_t UpperBound(const IndexedRelation& ir, size_t level,
                             uint32_t lo, uint32_t hi, Value v) {
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (ir.At(mid, level) <= v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Subrange of [from, end) holding value `v` in column `level`. The
  /// candidate values arrive in increasing order, so `from` is a cursor
  /// that only moves forward: gallop to bracket v, then binary search —
  /// amortized linear in the range instead of log per probe.
  static Range Seek(const IndexedRelation& ir, size_t level, uint32_t from,
                    uint32_t end, Value v) {
    uint32_t lo = from, step = 1;
    while (lo < end && ir.At(lo, level) < v) {
      from = lo + 1;
      lo += step;
      step <<= 1;
    }
    lo = LowerBound(ir, level, from, std::min(lo, end), v);
    if (lo >= end || ir.At(lo, level) != v) return {lo, lo};
    uint32_t hi = lo + 1, hstep = 1;
    uint32_t hfrom = hi;
    while (hi < end && ir.At(hi, level) == v) {
      hfrom = hi + 1;
      hi += hstep;
      hstep <<= 1;
    }
    hi = UpperBound(ir, level, hfrom, std::min(hi, end), v);
    return {lo, hi};
  }

  template <typename Emit>
  bool Recurse(size_t depth, const Emit& emit) {
    if (depth == order_.size()) return emit(assignment_);
    const int v = order_[depth];
    // Relations whose next trie level is v.
    size_t active[64];
    size_t n_active = 0;
    for (size_t i = 0; i < rels_.size(); ++i) {
      const size_t level = ranges_[i].size() - 1;
      if (level < rels_[i].vars.size() && rels_[i].vars[level] == v) {
        FMMSW_CHECK(n_active < 64);
        active[n_active++] = i;
      }
    }
    if (n_active == 0) {
      // Unconstrained variable (possible after projections); nothing to
      // iterate — this only happens for vars absent from every relation.
      return Recurse(depth + 1, emit);
    }
    // Iterate the relation with the smallest range, probing the others.
    size_t pivot = active[0];
    for (size_t a = 1; a < n_active; ++a) {
      if (ranges_[active[a]].back().size() < ranges_[pivot].back().size()) {
        pivot = active[a];
      }
    }
    const IndexedRelation& pr = rels_[pivot];
    const size_t plevel = ranges_[pivot].size() - 1;
    const Range prange = ranges_[pivot].back();
    // Forward-only probe cursors, one per active relation.
    uint32_t cursor[64];
    for (size_t a = 0; a < n_active; ++a) {
      cursor[a] = ranges_[active[a]].back().begin;
    }
    uint32_t pos = prange.begin;
    while (pos < prange.end) {
      const Value value = pr.At(pos, plevel);
      uint32_t run_end = pos + 1;
      while (run_end < prange.end && pr.At(run_end, plevel) == value) {
        ++run_end;
      }
      bool ok = true;
      size_t pushed = 0;
      for (size_t a = 0; a < n_active; ++a) {
        const size_t i = active[a];
        if (i == pivot) continue;
        const Range sub =
            Seek(rels_[i], ranges_[i].size() - 1, cursor[a],
                 ranges_[i].back().end, value);
        cursor[a] = sub.end;
        if (sub.size() == 0) {
          ok = false;
          break;
        }
        ranges_[i].push_back(sub);
        ++pushed;
      }
      if (!ok) {
        // Unwind the subranges pushed before the miss.
        for (size_t a = 0; a < n_active && pushed > 0; ++a) {
          const size_t i = active[a];
          if (i == pivot) continue;
          ranges_[i].pop_back();
          --pushed;
        }
        pos = run_end;
        continue;
      }
      ranges_[pivot].push_back({pos, run_end});
      assignment_[v] = value;
      const bool keep_going = Recurse(depth + 1, emit);
      for (size_t a = 0; a < n_active; ++a) ranges_[active[a]].pop_back();
      if (!keep_going) return false;
      pos = run_end;
    }
    return true;
  }

  std::vector<int> order_;
  std::vector<IndexedRelation> rels_;
  std::vector<std::vector<Range>> ranges_;
  std::vector<Value> assignment_;
};

std::vector<int> DefaultOrder(const Hypergraph& h) {
  return h.vertices().Members();
}

}  // namespace

bool WcojBoolean(const Hypergraph& h, const Database& db) {
  GenericJoin gj(h, db, DefaultOrder(h));
  bool found = false;
  gj.Run([&](const std::vector<Value>&) {
    found = true;
    return false;  // stop at the first witness
  });
  return found;
}

Relation WcojJoin(const Hypergraph& h, const Database& db, VarSet output_vars,
                  const std::vector<int>* order) {
  const std::vector<int> ord = order ? *order : DefaultOrder(h);
  GenericJoin gj(h, db, ord);
  Relation out(output_vars & h.vertices());
  const std::vector<int> out_vars = out.vars();
  std::vector<Value> tuple(out_vars.size());
  gj.Run([&](const std::vector<Value>& assignment) {
    for (size_t i = 0; i < out_vars.size(); ++i) {
      tuple[i] = assignment[out_vars[i]];
    }
    out.Add(tuple);
    return true;
  });
  out.SortAndDedupe();
  return out;
}

int64_t WcojCount(const Hypergraph& h, const Database& db) {
  GenericJoin gj(h, db, DefaultOrder(h));
  int64_t count = 0;
  gj.Run([&](const std::vector<Value>&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace fmmsw
