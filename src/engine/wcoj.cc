#include "engine/wcoj.h"

#include <algorithm>
#include <atomic>

#include "core/exec_context.h"
#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

namespace {

/// Sorted-range trie: each relation's rows are materialized once in a flat
/// buffer, columns permuted into the global instantiation order and rows
/// sorted lexicographically. A trie node is then a contiguous range of
/// that buffer; the children at depth d are the runs of equal values in
/// column d, and probing a value is a galloping search within the range.
/// No per-node allocation, no pointer chasing (compare the previous
/// std::map<Value, Trie> representation), and candidate enumeration walks
/// contiguous memory.
struct IndexedRelation {
  std::vector<int> vars;  // schema vars in instantiation order
  int arity = 0;
  std::vector<Value> data;  // sorted rows, columns in `vars` order

  Value At(uint32_t pos, size_t level) const {
    return data[static_cast<size_t>(pos) * arity + level];
  }
  uint32_t rows() const {
    return static_cast<uint32_t>(data.size() /
                                 std::max<size_t>(arity, 1));
  }
};

struct Range {
  uint32_t begin, end;
  uint32_t size() const { return end - begin; }
};

/// Mutable enumeration state: one range stack per relation plus the
/// current partial assignment. The trie data itself is shared read-only,
/// so parallel workers each own an EnumState and recurse independently.
struct EnumState {
  std::vector<std::vector<Range>> ranges;
  std::vector<Value> assignment;
};

class GenericJoin {
 public:
  GenericJoin(const Hypergraph& h, const Database& db,
              const std::vector<int>& order)
      : order_(order) {
    FMMSW_CHECK(db.relations.size() == h.edges().size());
    // Position of each variable in the instantiation order.
    std::vector<int> pos(kMaxVars, -1);
    for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const Relation& r : db.relations) {
      IndexedRelation ir;
      ir.vars = r.vars();
      ir.arity = r.arity();
      total_rows_ += r.size();
      std::sort(ir.vars.begin(), ir.vars.end(),
                [&](int a, int b) { return pos[a] < pos[b]; });
      std::vector<int> cols;
      for (int v : ir.vars) cols.push_back(r.ColumnOf(v));
      std::vector<uint32_t> rows(r.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        rows[i] = static_cast<uint32_t>(i);
      }
      std::sort(rows.begin(), rows.end(), [&](uint32_t a, uint32_t b) {
        const Value* ra = r.Row(a);
        const Value* rb = r.Row(b);
        for (int c : cols) {
          if (ra[c] != rb[c]) return ra[c] < rb[c];
        }
        return false;
      });
      ir.data.resize(r.size() * cols.size());
      size_t w = 0;
      for (uint32_t row : rows) {
        const Value* src = r.Row(row);
        for (int c : cols) ir.data[w++] = src[c];
      }
      rels_.push_back(std::move(ir));
    }
  }

  size_t total_rows() const { return total_rows_; }

  EnumState MakeState() const {
    EnumState st;
    st.ranges.resize(rels_.size());
    for (size_t i = 0; i < rels_.size(); ++i) {
      st.ranges[i].reserve(order_.size() + 2);
      st.ranges[i].push_back({0, rels_[i].rows()});
    }
    st.assignment.assign(kMaxVars, 0);
    return st;
  }

  /// Visits every satisfying assignment; `emit` returns false to stop the
  /// enumeration early (Boolean mode).
  template <typename Emit>
  bool Run(const Emit& emit) const {
    EnumState st = MakeState();
    return Recurse(&st, 0, emit);
  }

  // ---- Top-level task fan-out ----------------------------------------
  // The candidate runs of the first variable become independent subtrees:
  // each task pins the first variable to one matching value (with the
  // per-relation subranges already resolved) and a worker enumerates the
  // rest with its own range stacks.

  /// Expands depth 0 into tasks. Returns false (leaving no tasks) when
  /// the first variable is unconstrained — callers fall back to the
  /// serial path.
  bool CollectTopTasks() {
    task_values_.clear();
    task_ranges_.clear();
    active_.clear();
    if (order_.empty()) return false;
    const int v = order_[0];
    for (size_t i = 0; i < rels_.size(); ++i) {
      if (!rels_[i].vars.empty() && rels_[i].vars[0] == v) {
        active_.push_back(i);
      }
    }
    if (active_.empty()) return false;
    size_t pivot_a = 0;
    for (size_t a = 1; a < active_.size(); ++a) {
      if (rels_[active_[a]].rows() < rels_[active_[pivot_a]].rows()) {
        pivot_a = a;
      }
    }
    const IndexedRelation& pr = rels_[active_[pivot_a]];
    const uint32_t pend = pr.rows();
    std::vector<uint32_t> cursor(active_.size(), 0);
    std::vector<Range> sub(active_.size());
    uint32_t pos = 0;
    while (pos < pend) {
      const Value value = pr.At(pos, 0);
      uint32_t run_end = pos + 1;
      while (run_end < pend && pr.At(run_end, 0) == value) ++run_end;
      bool ok = true;
      for (size_t a = 0; a < active_.size(); ++a) {
        if (a == pivot_a) {
          sub[a] = {pos, run_end};
          continue;
        }
        const IndexedRelation& ir = rels_[active_[a]];
        const Range s = Seek(ir, 0, cursor[a], ir.rows(), value);
        cursor[a] = s.end;
        if (s.size() == 0) {
          ok = false;
          break;
        }
        sub[a] = s;
      }
      if (ok) {
        task_values_.push_back(value);
        task_ranges_.insert(task_ranges_.end(), sub.begin(), sub.end());
      }
      pos = run_end;
    }
    return true;
  }

  size_t task_count() const { return task_values_.size(); }

  /// Runs one top-level task on the given worker state; the state's
  /// stacks are rebalanced before returning. Returns false if `emit`
  /// stopped the enumeration.
  template <typename Emit>
  bool RunTask(EnumState* st, size_t task, const Emit& emit) const {
    const size_t na = active_.size();
    for (size_t a = 0; a < na; ++a) {
      std::vector<Range>& stack = st->ranges[active_[a]];
      stack.resize(1);
      stack.push_back(task_ranges_[task * na + a]);
    }
    st->assignment[order_[0]] = task_values_[task];
    const bool keep_going = Recurse(st, 1, emit);
    for (size_t a = 0; a < na; ++a) st->ranges[active_[a]].resize(1);
    return keep_going;
  }

 private:
  /// First position in [lo, hi) whose `level` column is >= v.
  static uint32_t LowerBound(const IndexedRelation& ir, size_t level,
                             uint32_t lo, uint32_t hi, Value v) {
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (ir.At(mid, level) < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First position in [lo, hi) whose `level` column is > v.
  static uint32_t UpperBound(const IndexedRelation& ir, size_t level,
                             uint32_t lo, uint32_t hi, Value v) {
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (ir.At(mid, level) <= v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Subrange of [from, end) holding value `v` in column `level`. The
  /// candidate values arrive in increasing order, so `from` is a cursor
  /// that only moves forward: gallop to bracket v, then binary search —
  /// amortized linear in the range instead of log per probe.
  static Range Seek(const IndexedRelation& ir, size_t level, uint32_t from,
                    uint32_t end, Value v) {
    uint32_t lo = from, step = 1;
    while (lo < end && ir.At(lo, level) < v) {
      from = lo + 1;
      lo += step;
      step <<= 1;
    }
    lo = LowerBound(ir, level, from, std::min(lo, end), v);
    if (lo >= end || ir.At(lo, level) != v) return {lo, lo};
    uint32_t hi = lo + 1, hstep = 1;
    uint32_t hfrom = hi;
    while (hi < end && ir.At(hi, level) == v) {
      hfrom = hi + 1;
      hi += hstep;
      hstep <<= 1;
    }
    hi = UpperBound(ir, level, hfrom, std::min(hi, end), v);
    return {lo, hi};
  }

  template <typename Emit>
  bool Recurse(EnumState* st, size_t depth, const Emit& emit) const {
    if (depth == order_.size()) return emit(st->assignment);
    const int v = order_[depth];
    // Relations whose next trie level is v.
    size_t active[64];
    size_t n_active = 0;
    for (size_t i = 0; i < rels_.size(); ++i) {
      const size_t level = st->ranges[i].size() - 1;
      if (level < rels_[i].vars.size() && rels_[i].vars[level] == v) {
        FMMSW_CHECK(n_active < 64);
        active[n_active++] = i;
      }
    }
    if (n_active == 0) {
      // Unconstrained variable (possible after projections); nothing to
      // iterate — this only happens for vars absent from every relation.
      return Recurse(st, depth + 1, emit);
    }
    // Iterate the relation with the smallest range, probing the others.
    size_t pivot = active[0];
    for (size_t a = 1; a < n_active; ++a) {
      if (st->ranges[active[a]].back().size() <
          st->ranges[pivot].back().size()) {
        pivot = active[a];
      }
    }
    const IndexedRelation& pr = rels_[pivot];
    const size_t plevel = st->ranges[pivot].size() - 1;
    const Range prange = st->ranges[pivot].back();
    // Forward-only probe cursors, one per active relation.
    uint32_t cursor[64];
    for (size_t a = 0; a < n_active; ++a) {
      cursor[a] = st->ranges[active[a]].back().begin;
    }
    uint32_t pos = prange.begin;
    while (pos < prange.end) {
      const Value value = pr.At(pos, plevel);
      uint32_t run_end = pos + 1;
      while (run_end < prange.end && pr.At(run_end, plevel) == value) {
        ++run_end;
      }
      bool ok = true;
      size_t pushed = 0;
      for (size_t a = 0; a < n_active; ++a) {
        const size_t i = active[a];
        if (i == pivot) continue;
        const Range sub = Seek(rels_[i], st->ranges[i].size() - 1, cursor[a],
                               st->ranges[i].back().end, value);
        cursor[a] = sub.end;
        if (sub.size() == 0) {
          ok = false;
          break;
        }
        st->ranges[i].push_back(sub);
        ++pushed;
      }
      if (!ok) {
        // Unwind the subranges pushed before the miss.
        for (size_t a = 0; a < n_active && pushed > 0; ++a) {
          const size_t i = active[a];
          if (i == pivot) continue;
          st->ranges[i].pop_back();
          --pushed;
        }
        pos = run_end;
        continue;
      }
      st->ranges[pivot].push_back({pos, run_end});
      st->assignment[v] = value;
      const bool keep_going = Recurse(st, depth + 1, emit);
      for (size_t a = 0; a < n_active; ++a) st->ranges[active[a]].pop_back();
      if (!keep_going) return false;
      pos = run_end;
    }
    return true;
  }

  std::vector<int> order_;
  std::vector<IndexedRelation> rels_;
  size_t total_rows_ = 0;
  std::vector<size_t> active_;     // relations constrained at depth 0
  std::vector<Value> task_values_;
  std::vector<Range> task_ranges_;  // task_count() * active_.size()
};

std::vector<int> DefaultOrder(const Hypergraph& h) {
  return h.vertices().Members();
}

/// Minimum input size / task fan-out before the pool is engaged: tiny
/// joins (unit tests, inner TD bags) stay serial.
constexpr size_t kMinParallelRows = 512;
constexpr size_t kMinParallelTasks = 4;

/// Expands top-level tasks if the parallel path applies; returns the task
/// count (0 = run serial).
size_t PrepareParallel(ExecContext& ec, GenericJoin* gj) {
  if (ec.threads() <= 1) return 0;
  if (gj->total_rows() < kMinParallelRows) return 0;
  if (!gj->CollectTopTasks()) return 0;
  if (gj->task_count() < kMinParallelTasks) return 0;
  ExecStats& st = ec.stats();
  Bump(st.wcoj_parallel_runs);
  Bump(st.wcoj_tasks, static_cast<int64_t>(gj->task_count()));
  return gj->task_count();
}

}  // namespace

bool WcojBoolean(const Hypergraph& h, const Database& db, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  Bump(ec.stats().wcoj_runs);
  GenericJoin gj(h, db, DefaultOrder(h));
  const size_t ntasks = PrepareParallel(ec, &gj);
  if (ntasks == 0) {
    bool found = false;
    gj.Run([&](const std::vector<Value>&) {
      found = true;
      return false;  // stop at the first witness
    });
    return found;
  }
  std::atomic<bool> found(false);
  std::atomic<int64_t> next(0);
  ec.pool().Run([&](int) {
    EnumState st = gj.MakeState();
    while (!found.load(std::memory_order_relaxed)) {
      const int64_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= static_cast<int64_t>(ntasks)) return;
      const bool keep_going = gj.RunTask(&st, t, [&](const std::vector<Value>&) {
        found.store(true, std::memory_order_relaxed);
        return false;
      });
      if (!keep_going) return;
    }
  });
  return found.load();
}

Relation WcojJoin(const Hypergraph& h, const Database& db, VarSet output_vars,
                  const std::vector<int>* order, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  Bump(ec.stats().wcoj_runs);
  const std::vector<int> ord = order ? *order : DefaultOrder(h);
  GenericJoin gj(h, db, ord);
  Relation out(output_vars & h.vertices());
  const std::vector<int> out_vars = out.vars();
  if (out_vars.empty()) {
    // Nullary output: an existence test.
    if (WcojBoolean(h, db, ctx)) out.Add({});
    return out;
  }
  const size_t ntasks = PrepareParallel(ec, &gj);
  if (ntasks == 0) {
    std::vector<Value> tuple(out_vars.size());
    gj.Run([&](const std::vector<Value>& assignment) {
      for (size_t i = 0; i < out_vars.size(); ++i) {
        tuple[i] = assignment[out_vars[i]];
      }
      out.AddRow(tuple.data());
      return true;
    });
    out.SortAndDedupe();
    return out;
  }
  // Chunked fan-out with per-chunk output buffers appended in chunk order:
  // chunks partition the (ordered) task list, so the merged enumeration
  // order is independent of scheduling — and the canonical sort below
  // makes the result bit-identical across thread counts either way.
  const size_t nchunks =
      std::min(ntasks, static_cast<size_t>(ec.threads()) * 4);
  std::vector<std::vector<Value>> bufs(nchunks);
  std::atomic<int64_t> next_chunk(0);
  ec.pool().Run([&](int) {
    EnumState st = gj.MakeState();
    std::vector<Value> tuple(out_vars.size());
    while (true) {
      const size_t c =
          static_cast<size_t>(next_chunk.fetch_add(1, std::memory_order_relaxed));
      if (c >= nchunks) return;
      std::vector<Value>& buf = bufs[c];
      const size_t begin = c * ntasks / nchunks;
      const size_t end = (c + 1) * ntasks / nchunks;
      for (size_t t = begin; t < end; ++t) {
        gj.RunTask(&st, t, [&](const std::vector<Value>& assignment) {
          for (size_t i = 0; i < out_vars.size(); ++i) {
            tuple[i] = assignment[out_vars[i]];
          }
          buf.insert(buf.end(), tuple.begin(), tuple.end());
          return true;
        });
      }
    }
  });
  for (const std::vector<Value>& buf : bufs) {
    if (!buf.empty()) out.AddRows(buf.data(), buf.size() / out_vars.size());
  }
  out.SortAndDedupe();
  return out;
}

int64_t WcojCount(const Hypergraph& h, const Database& db, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  Bump(ec.stats().wcoj_runs);
  GenericJoin gj(h, db, DefaultOrder(h));
  const size_t ntasks = PrepareParallel(ec, &gj);
  if (ntasks == 0) {
    int64_t count = 0;
    gj.Run([&](const std::vector<Value>&) {
      ++count;
      return true;
    });
    return count;
  }
  std::vector<int64_t> counts(ntasks, 0);
  std::atomic<int64_t> next(0);
  ec.pool().Run([&](int) {
    EnumState st = gj.MakeState();
    while (true) {
      const int64_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= static_cast<int64_t>(ntasks)) return;
      int64_t local = 0;
      gj.RunTask(&st, t, [&](const std::vector<Value>&) {
        ++local;
        return true;
      });
      counts[t] = local;
    }
  });
  int64_t count = 0;
  for (int64_t c : counts) count += c;
  return count;
}

}  // namespace fmmsw
