#include "engine/four_cycle.h"

#include <atomic>
#include <cmath>

#include "core/exec_context.h"
#include "mm/matrix.h"
#include "relation/degree.h"
#include "relation/flat_index.h"
#include "relation/ops.h"
#include "util/check.h"
#include "util/parallel.h"

namespace fmmsw {

namespace {

constexpr int kX = 0, kY = 1, kZ = 2, kW = 3;

/// Heavy values of `mid` (the middle vertex of a 2-path) in either of its
/// two incident relations, at the given threshold; returns the unary heavy
/// relation plus the light remainders of both relations.
struct MiddleSplit {
  Relation heavy;        // unary over {mid}
  Relation left_light;   // left relation restricted to light mid values
  Relation right_light;  // right relation restricted to light mid values
};

MiddleSplit SplitMiddle(const Relation& left, const Relation& right, int mid,
                        VarSet left_other, VarSet right_other, int64_t delta,
                        ExecContext* ec) {
  auto pl =
      PartitionByDegree(left, left_other, VarSet::Singleton(mid), delta, ec);
  auto pr = PartitionByDegree(right, right_other, VarSet::Singleton(mid),
                              delta, ec);
  MiddleSplit out;
  out.heavy = Union(pl.heavy, pr.heavy, ec);
  out.left_light = Antijoin(left, out.heavy, ec);
  out.right_light = Antijoin(right, out.heavy, ec);
  return out;
}

/// For each heavy middle value m of path a-m-b, the endpoint sets are
/// A_m = {a : left(a, m)} and B_m = {b : right(m, b)}; the callback
/// receives them and returns true to stop (answer found). Both incident
/// relations are indexed on the middle variable once (the naive version
/// re-scanned them per heavy value), and the heavy values are probed in
/// parallel on the context's pool — the callbacks only read shared state.
template <typename Check>
bool ForEachHeavy(ExecContext& ec, const Relation& heavy,
                  const Relation& left, const Relation& right, int mid,
                  VarSet left_other, VarSet right_other, const Check& check,
                  FourCycleStats* stats) {
  // The single-column gather below only supports unary endpoint sets
  // (always-on check: a wider VarSet would silently gather wrong columns).
  FMMSW_CHECK(left_other.size() == 1 && right_other.size() == 1);
  const KeySpec kleft(left, VarSet::Singleton(mid));
  const KeySpec kright(right, VarSet::Singleton(mid));
  const KeySpec kheavy(heavy, VarSet::Singleton(mid));
  const FlatMultimap ileft(left, kleft, &ec);
  const FlatMultimap iright(right, kright, &ec);
  const int lcol = left.ColumnOf(left_other.First());
  const int rcol = right.ColumnOf(right_other.First());
  // Probe count is approximate under early exit: workers already in
  // flight when the answer is found still increment it.
  std::atomic<int64_t> probes(0);
  const bool found = ParallelAnyOf(
      ec.pool(), static_cast<int64_t>(heavy.size()),
      [&](int64_t r) {
        // Probe with KeySpec so the key encoding stays mechanically
        // identical to the build side.
        const uint64_t key = kheavy.KeyOf(heavy.Row(r));
        Relation a_set(left_other & left.schema());
        for (int32_t row = ileft.First(key); row >= 0;
             row = ileft.Next(row)) {
          a_set.AddRow(&left.Row(row)[lcol]);
        }
        a_set.SortAndDedupe(&ec);
        Relation b_set(right_other & right.schema());
        for (int32_t row = iright.First(key); row >= 0;
             row = iright.Next(row)) {
          b_set.AddRow(&right.Row(row)[rcol]);
        }
        b_set.SortAndDedupe(&ec);
        // relaxed: stats-only sum, read after the fan-in below.
        probes.fetch_add(1, std::memory_order_relaxed);
        return check(a_set, b_set);
      },
      /*grain=*/8);
  if (stats != nullptr) stats->heavy_probes += probes.load();
  return found;
}

}  // namespace

bool FourCycleTd(const QueryInput& db, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  // Single TD {XYZ}, {ZWX}: materialize both bags fully (O(N^2)).
  const Relation& r = db.relations[0];
  const Relation& s = db.relations[1];
  const Relation& t = db.relations[2];
  const Relation& u = db.relations[3];
  Relation p = Project(Join(r, s, {}, &ec), VarSet{kX, kZ}, &ec);
  Relation q = Project(Join(t, u, {}, &ec), VarSet{kZ, kX}, &ec);
  return !Intersect(p, q, &ec).empty();
}

bool FourCycleCombinatorial(const QueryInput& db, FourCycleStats* stats,
                            ExecContext* ctx) {
  FMMSW_CHECK(db.relations.size() == 4);
  ExecContext& ec = ExecContext::Resolve(ctx);
  const Relation& r = db.relations[0];  // R(X,Y)
  const Relation& s = db.relations[1];  // S(Y,Z)
  const Relation& t = db.relations[2];  // T(Z,W)
  const Relation& u = db.relations[3];  // U(W,X)
  const double n = static_cast<double>(db.TotalSize());
  if (n == 0) return false;
  const int64_t delta =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(std::sqrt(n))));

  // Middle vertices of the two 2-paths: y on the R-S side, w on T-U.
  MiddleSplit ys = SplitMiddle(r, s, kY, VarSet{kX}, VarSet{kZ}, delta, &ec);
  MiddleSplit ws = SplitMiddle(t, u, kW, VarSet{kZ}, VarSet{kX}, delta, &ec);

  // Heavy y: O(N) probe per heavy value — find w adjacent to some z in
  // S[y] (via T) and some x in R[y] (via U).
  if (ForEachHeavy(ec, ys.heavy, r, s, kY, VarSet{kX}, VarSet{kZ},
                   [&](const Relation& xset, const Relation& zset) {
                     Relation wt =
                         Project(Semijoin(t, zset, &ec), VarSet{kW}, &ec);
                     Relation wu =
                         Project(Semijoin(u, xset, &ec), VarSet{kW}, &ec);
                     return !Intersect(wt, wu, &ec).empty();
                   },
                   stats)) {
    return true;
  }
  // Heavy w symmetric: find y adjacent to some x in U[w] and z in T[w].
  if (ForEachHeavy(ec, ws.heavy, t, u, kW, VarSet{kZ}, VarSet{kX},
                   [&](const Relation& zset, const Relation& xset) {
                     Relation yr =
                         Project(Semijoin(r, xset, &ec), VarSet{kY}, &ec);
                     Relation yss =
                         Project(Semijoin(s, zset, &ec), VarSet{kY}, &ec);
                     return !Intersect(yr, yss, &ec).empty();
                   },
                   stats)) {
    return true;
  }
  // Residual: both middles light. The first light 2-path set is
  // materialized (N * Delta); the second is never materialized — its join
  // carries a fused existence probe against the first, stopping at the
  // first witness.
  Relation p =
      Project(Join(ys.left_light, ys.right_light, {}, &ec), VarSet{kX, kZ},
              &ec);
  Relation q = Join(ws.left_light, ws.right_light,
                    {.exist_filter = &p, .limit = 1}, &ec);
  if (stats != nullptr) {
    stats->light_pairs =
        static_cast<int64_t>(p.size()) + static_cast<int64_t>(q.size());
  }
  return !q.empty();
}

bool FourCycleMm(const QueryInput& db, double omega, MmKernel kernel,
                 FourCycleStats* stats, ExecContext* ctx) {
  FMMSW_CHECK(db.relations.size() == 4);
  ExecContext& ec = ExecContext::Resolve(ctx);
  const Relation& r = db.relations[0];
  const Relation& s = db.relations[1];
  const Relation& t = db.relations[2];
  const Relation& u = db.relations[3];
  const double n = static_cast<double>(db.TotalSize());
  if (n == 0) return false;
  // Lemma C.9 Case-2 threshold exponent 2(w-1)/(2w+1), capped at 1/2 (the
  // w >= 5/2 regime where the combinatorial split is already optimal).
  const double exp_delta =
      std::min(0.5, 2.0 * (omega - 1.0) / (2.0 * omega + 1.0));
  const int64_t delta = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::pow(n, exp_delta))));

  MiddleSplit ys = SplitMiddle(r, s, kY, VarSet{kX}, VarSet{kZ}, delta, &ec);
  MiddleSplit ws = SplitMiddle(t, u, kW, VarSet{kZ}, VarSet{kX}, delta, &ec);

  // Light-light: intersect the two light 2-path sets (N * Delta each;
  // both are kept — the mixed cases below probe them per heavy value).
  Relation p =
      Project(Join(ys.left_light, ys.right_light, {}, &ec), VarSet{kX, kZ},
              &ec);
  Relation q =
      Project(Join(ws.left_light, ws.right_light, {}, &ec), VarSet{kZ, kX},
              &ec);
  if (stats != nullptr) {
    stats->light_pairs =
        static_cast<int64_t>(p.size()) + static_cast<int64_t>(q.size());
  }
  if (!Intersect(p, q, &ec).empty()) return true;

  // Mixed: light y, heavy w — probe P with each heavy w's neighborhoods.
  if (ForEachHeavy(ec, ws.heavy, t, u, kW, VarSet{kZ}, VarSet{kX},
                   [&](const Relation& zset, const Relation& xset) {
                     return !SemijoinAll(p, {&xset, &zset}, &ec).empty();
                   },
                   stats)) {
    return true;
  }
  // Mixed: heavy y, light w.
  if (ForEachHeavy(ec, ys.heavy, r, s, kY, VarSet{kX}, VarSet{kZ},
                   [&](const Relation& xset, const Relation& zset) {
                     return !SemijoinAll(q, {&xset, &zset}, &ec).empty();
                   },
                   stats)) {
    return true;
  }

  // Heavy-heavy core via rectangular MM: B1[w][y] over the shared x
  // dimension, B2[y][w] over the shared z dimension.
  Relation rh = Semijoin(r, ys.heavy, &ec);  // R(X,Y), heavy y
  Relation uh = Semijoin(u, ws.heavy, &ec);  // U(W,X), heavy w
  Relation sh = Semijoin(s, ys.heavy, &ec);  // S(Y,Z), heavy y
  Relation th = Semijoin(t, ws.heavy, &ec);  // T(Z,W), heavy w
  // A heavy-heavy cycle needs all four restricted relations non-empty.
  if (rh.empty() || uh.empty() || sh.empty() || th.empty()) return false;

  // The unary heavy sets bulk-intern through the context (sharded in
  // parallel when large); xi/zi intern across two relations each, so they
  // stay incremental.
  FlatInterner yi(ys.heavy, KeySpec(ys.heavy, ys.heavy.schema()), &ec);
  FlatInterner wi(ws.heavy, KeySpec(ws.heavy, ws.heavy.schema()), &ec);
  FlatInterner xi, zi;
  for (size_t row = 0; row < rh.size(); ++row) {
    xi.InternValue(rh.Get(row, kX));
  }
  for (size_t row = 0; row < uh.size(); ++row) {
    xi.InternValue(uh.Get(row, kX));
  }
  for (size_t row = 0; row < sh.size(); ++row) {
    zi.InternValue(sh.Get(row, kZ));
  }
  for (size_t row = 0; row < th.size(); ++row) {
    zi.InternValue(th.Get(row, kZ));
  }
  if (yi.size() == 0 || wi.size() == 0) return false;
  if (stats != nullptr) {
    stats->mm_dims[0] = static_cast<int64_t>(wi.size());
    stats->mm_dims[1] = static_cast<int64_t>(xi.size() + zi.size());
    stats->mm_dims[2] = static_cast<int64_t>(yi.size());
  }
  const int ny = yi.size();
  const int nw = wi.size();
  const int nx = xi.size();
  const int nz = zi.size();

  auto multiply = [&](const Matrix& a, const Matrix& b) {
    Bump(ec.stats().mm_products);
    return CountingProduct(a, b, kernel, &ec);
  };
  // B1 = U_h (w by x) times R_h (x by y).
  Matrix mu(nw, nx), mr(nx, ny);
  for (size_t row = 0; row < uh.size(); ++row) {
    mu.At(wi.FindValue(uh.Get(row, kW)), xi.FindValue(uh.Get(row, kX))) = 1;
  }
  for (size_t row = 0; row < rh.size(); ++row) {
    mr.At(xi.FindValue(rh.Get(row, kX)), yi.FindValue(rh.Get(row, kY))) = 1;
  }
  Matrix b1 = multiply(mu, mr);
  // B2 = S_h (y by z) times T_h (z by w).
  Matrix ms(ny, nz), mt(nz, nw);
  for (size_t row = 0; row < sh.size(); ++row) {
    ms.At(yi.FindValue(sh.Get(row, kY)), zi.FindValue(sh.Get(row, kZ))) = 1;
  }
  for (size_t row = 0; row < th.size(); ++row) {
    mt.At(zi.FindValue(th.Get(row, kZ)), wi.FindValue(th.Get(row, kW))) = 1;
  }
  Matrix b2 = multiply(ms, mt);
  for (int y = 0; y < ny; ++y) {
    for (int w = 0; w < nw; ++w) {
      if (b1.At(w, y) != 0 && b2.At(y, w) != 0) return true;
    }
  }
  return false;
}

}  // namespace fmmsw
