#include "engine/td_eval.h"

#include <map>

#include "core/exec_context.h"
#include "engine/wcoj.h"
#include "relation/ops.h"
#include "util/check.h"
#include "width/subw.h"

namespace fmmsw {

namespace {

/// Materializes the bag relation: the WCOJ join over the projections onto
/// the bag of every relation intersecting it. Sound (a superset of the
/// projection of the full join onto the bag) and O(N^{rho*(bag)}).
Relation MaterializeBag(const Hypergraph& h, const QueryInput& db, VarSet bag,
                        ExecContext* ec) {
  // Merge relations with the same projected schema by intersection so the
  // sub-hypergraph's edges and relations stay aligned.
  // contracts: allow(no-node-map) schema-keyed merge pool, O(#edges)
  // entries per bag.
  std::map<VarSet, Relation> by_schema;
  for (size_t e = 0; e < h.edges().size(); ++e) {
    const VarSet overlap = h.edges()[e] & bag;
    if (overlap.empty()) continue;
    Relation proj = Project(db.relations[e], bag, ec);
    auto it = by_schema.find(overlap);
    if (it == by_schema.end()) {
      by_schema.emplace(overlap, std::move(proj));
    } else {
      it->second = Intersect(it->second, proj, ec);
    }
  }
  Hypergraph sub(h.num_vars(), h.names());
  QueryInput sub_db;
  // Restrict the vertex set to the bag by eliminating the complement.
  sub = Hypergraph(h.num_vars(), h.names()).Eliminate(VarSet::Full(
      h.num_vars()) - bag);
  for (auto& [schema, rel] : by_schema) {
    sub.AddEdge(schema);
    sub_db.relations.push_back(std::move(rel));
  }
  FMMSW_CHECK(sub.edges().size() == sub_db.relations.size());
  return WcojJoin(sub, sub_db, bag, nullptr, ec);
}

}  // namespace

bool YannakakisBoolean(std::vector<Relation> bags,
                       const std::vector<std::pair<int, int>>& tree_edges,
                       ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  if (bags.empty()) return true;
  const int n = static_cast<int>(bags.size());
  std::vector<std::vector<int>> adj(n);
  for (auto [a, b] : tree_edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  // Bottom-up semijoin pass (iterative post-order from root 0).
  std::vector<int> order, stack = {0}, parent(n, -1);
  std::vector<bool> seen(n, false);
  seen[0] = true;
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    for (int nx : adj[cur]) {
      if (!seen[nx]) {
        seen[nx] = true;
        parent[nx] = cur;
        stack.push_back(nx);
      }
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int node = *it;
    if (parent[node] < 0) continue;
    bags[parent[node]] = Semijoin(bags[parent[node]], bags[node], &ec);
    if (bags[node].empty()) return false;
  }
  return !bags[0].empty();
}

bool TdBoolean(const Hypergraph& h, const QueryInput& db,
               const TreeDecomposition& td, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  FMMSW_CHECK(IsValidTd(h, td));
  std::vector<Relation> bags;
  bags.reserve(td.bags.size());
  for (VarSet bag : td.bags) {
    ec.guard().Poll(FaultSite::kOps);  // bag materializations are the TD plan's morsels
    bags.push_back(MaterializeBag(h, db, bag, &ec));
    if (bags.back().empty()) return false;
  }
  return YannakakisBoolean(std::move(bags), TreeEdges(td), &ec);
}

bool TdBooleanBest(const Hypergraph& h, const QueryInput& db,
                   ExecContext* ctx) {
  auto tds = EnumerateTds(h);
  FMMSW_CHECK(!tds.empty());
  const TreeDecomposition* best = &tds[0];
  Rational best_w;
  bool first = true;
  for (const auto& td : tds) {
    Rational w(0);
    for (VarSet bag : td.bags) {
      w = Rational::Max(w, FractionalEdgeCover(h, bag));
    }
    if (first || w < best_w) {
      best_w = w;
      best = &td;
      first = false;
    }
  }
  return TdBoolean(h, db, *best, ctx);
}

}  // namespace fmmsw
