#ifndef FMMSW_ENGINE_STRATEGY_H_
#define FMMSW_ENGINE_STRATEGY_H_

/// \file
/// Capability metadata for the evaluation strategies — the raw material
/// of the recovery plane's degradation ladders (core/recovery.h).
///
/// The paper's central observation is that one query admits a spectrum
/// of strategies with very different memory/time profiles: the
/// MM-hybrids materialize dense matrices and packed panels (fast, but
/// memory-hungry), while the plain worst-case-optimal join streams over
/// sorted tries with only per-worker stacks. A StrategyCard records
/// where each strategy sits on that spectrum; the ladders below order
/// them by *descending* memory appetite, so a query that trips its
/// memory budget on one rung retries on the next-cheaper rung and the
/// last rung (plain WCOJ) needs essentially no transient memory beyond
/// its input indexes.
///
/// Everything here is pure metadata — no ExecContext flows through, and
/// these functions never touch a database — so the ctx-threading lint
/// exempts them by name.

#include <string>
#include <vector>

#include "mm/kernel.h"

namespace fmmsw {

class Hypergraph;

/// One evaluation strategy's capability card. `memory_rank` is a
/// coarse, dimensionless ordering key (higher = hungrier); ladders sort
/// descending on it.
struct StrategyCard {
  std::string name;    ///< stable rung name (logs, RecoveryReport, tests)
  bool uses_mm = false;
  /// Counting/boolean kernel the rung dispatches (meaningful iff uses_mm).
  MmKernel kernel = MmKernel::kBoolean;
  /// Partition exponent for the degree-split hybrids: Delta =
  /// N^{(omega-1)/(omega+1)} (meaningful iff uses_mm).
  double omega = 3.0;
  int memory_rank = 0;
};

/// Degradation ladder for triangle *counting*:
/// Strassen counting product -> blocked cubic GEMM -> bit-sliced 0/1
/// product -> plain WCOJ count. Ordered by descending memory appetite.
const std::vector<StrategyCard>& TriangleCountLadder();

/// Degradation ladder for the *Boolean* triangle query:
/// Strassen-thresholded hybrid -> bit-packed Boolean product hybrid ->
/// plain WCOJ.
const std::vector<StrategyCard>& TriangleBooleanLadder();

/// Degradation ladder for a generic Boolean query, by EvalStrategy name
/// ("elimination" -> "best-td" -> "wcoj"): the GVEO interpreter and TD
/// plans materialize bags, the WCOJ streams.
const std::vector<StrategyCard>& GenericBooleanLadder();

/// True iff `h` is exactly the paper's triangle query in its canonical
/// layout (Hypergraph::Triangle(): vertices {X,Y,Z}, edges [XY, YZ, XZ]
/// in that order) — the layout the engine/triangle.h specializations
/// assume of their database argument.
bool IsTriangleQuery(const Hypergraph& h);

}  // namespace fmmsw

#endif  // FMMSW_ENGINE_STRATEGY_H_
