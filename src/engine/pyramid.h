#ifndef FMMSW_ENGINE_PYRAMID_H_
#define FMMSW_ENGINE_PYRAMID_H_

/// \file
/// The 3-pyramid query (Eq. 31, k = 3): apex Y = 0 joined to X1, X2, X3 by
/// binary relations plus a ternary base relation B(X1,X2,X3). Lemma C.13's
/// new algorithm runs in ~O(N^{2 - 1/w}), beating PANDA's N^{5/3}:
///
///   Delta = N^{1 - 1/w};
///   case 1 (some apex edge has light x_i): join the base with that light
///     part — N * Delta work;
///   case 2 (apex-degree of every x_i small): enumerate (y, x1, x2) from
///     the light-y parts and probe — N * Delta work;
///   case 3 (all heavy): eliminate Y by the matrix multiplication
///     MM(X2; X3; Y | X1) — for each x1 compatible with y, multiply the
///     X2-by-Y and Y-by-X3 Boolean matrices, then probe the base.
///
/// QueryInput layout per Hypergraph::Pyramid(3): relations
/// [R1(Y,X1), R2(Y,X2), R3(Y,X3), B(X1,X2,X3)].

#include "engine/elimination.h"
#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

struct PyramidStats {
  /// Surviving tuples of the fused case-1 join (the base-join intermediate
  /// is filtered by existence probes, never materialized).
  int64_t case1_tuples = 0;
  int64_t case2_tuples = 0;
  int64_t mm_groups = 0;
};

/// Combinatorial baseline: generic join (the PANDA-style N^{2-1/k} plan is
/// within a log factor of this on the generated workloads).
bool Pyramid3Combinatorial(const QueryInput& db, ExecContext* ctx = nullptr);

/// The Lemma C.13 MM algorithm at the given omega.
bool Pyramid3Mm(const QueryInput& db, double omega,
                MmKernel kernel = MmKernel::kBoolean,
                PyramidStats* stats = nullptr, ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_ENGINE_PYRAMID_H_
