#include "engine/elimination.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "core/exec_context.h"
#include "engine/wcoj.h"
#include "mm/cost_model.h"
#include "mm/matrix.h"
#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

namespace {

/// Execution state: the current hypergraph plus one relation per edge.
struct State {
  Hypergraph hg;
  std::vector<Relation> rels;  // aligned with hg.edges()
  bool definitely_empty = false;
};

/// Joins the incident relations with WCOJ and projects the block away
/// (the "for-loops" elimination).
void EliminateForLoop(State* s, VarSet block, EliminationStats* stats,
                      ExecContext* ec) {
  const std::vector<int> incident = s->hg.IncidentEdges(block);
  FMMSW_CHECK(!incident.empty());
  Hypergraph sub(s->hg.num_vars(), s->hg.names());
  sub = sub.Eliminate(VarSet::Full(s->hg.num_vars()) - s->hg.U(block));
  QueryInput sub_db;
  // contracts: allow(no-node-map) schema-keyed merge pool, O(#edges)
  // entries per elimination step.
  std::map<VarSet, Relation> merged;
  for (int e : incident) {
    auto it = merged.find(s->hg.edges()[e]);
    if (it == merged.end()) {
      merged.emplace(s->hg.edges()[e], s->rels[e]);
    } else {
      it->second = Intersect(it->second, s->rels[e], ec);
    }
  }
  for (auto& [schema, rel] : merged) {
    sub.AddEdge(schema);
    sub_db.relations.push_back(std::move(rel));
  }
  Relation result = WcojJoin(sub, sub_db, s->hg.N(block), nullptr, ec);
  if (stats != nullptr) {
    ++stats->forloop_steps;
    stats->intermediate_tuples += static_cast<int64_t>(result.size());
  }
  // Rebuild the state: next.hg's edges are the old non-incident edges
  // (deduped) plus N(block); relations are matched to edges by schema.
  State next;
  next.hg = s->hg.Eliminate(block);
  // contracts: allow(no-node-map) schema-keyed relation pool, O(#edges)
  // entries per elimination step.
  std::map<VarSet, Relation> pool;
  for (size_t e = 0; e < s->hg.edges().size(); ++e) {
    if (std::find(incident.begin(), incident.end(), static_cast<int>(e)) !=
        incident.end()) {
      continue;
    }
    auto it = pool.find(s->hg.edges()[e]);
    if (it == pool.end()) {
      pool.emplace(s->hg.edges()[e], s->rels[e]);
    } else {
      it->second = Intersect(it->second, s->rels[e], ec);
    }
  }
  const VarSet n = s->hg.N(block);
  if (!n.empty()) {
    auto it = pool.find(n);
    if (it == pool.end()) {
      pool.emplace(n, result);
    } else {
      it->second = Intersect(it->second, result, ec);
    }
  } else if (result.empty()) {
    next.definitely_empty = true;
  }
  next.rels.clear();
  for (const VarSet& e : next.hg.edges()) {
    auto it = pool.find(e);
    FMMSW_CHECK(it != pool.end());
    next.rels.push_back(it->second);
  }
  if (result.empty()) next.definitely_empty = true;
  *s = std::move(next);
}

/// Dense index assignment for composite keys.
class KeyIndex {
 public:
  int Intern(const std::vector<Value>& key) {
    auto [it, inserted] = map_.emplace(key, static_cast<int>(map_.size()));
    (void)inserted;
    return it->second;
  }
  int Find(const std::vector<Value>& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? -1 : it->second;
  }
  int size() const { return static_cast<int>(map_.size()); }
  /// Keys in index order.
  std::vector<std::vector<Value>> Reverse() const {
    std::vector<std::vector<Value>> out(map_.size());
    for (const auto& [k, v] : map_) out[v] = k;
    return out;
  }

 private:
  // contracts: allow(no-node-map) reference MM-step evaluator; keys are
  // variable-length Value tuples with no packed-key form yet (ROADMAP).
  std::map<std::vector<Value>, int> map_;
};

std::vector<Value> ExtractKey(const Relation& r, size_t row,
                              const std::vector<int>& cols) {
  std::vector<Value> key(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) key[i] = r.Row(row)[cols[i]];
  return key;
}

std::vector<int> ColsFor(const Relation& r, VarSet vars) {
  std::vector<int> cols;
  for (int v : (vars & r.schema()).Members()) cols.push_back(r.ColumnOf(v));
  return cols;
}

/// Eliminates `block` via the MM option `mm` (Appendix E.6): the incident
/// relations are covered by an A side (schema inside x|g|z) and a B side
/// (schema inside y|g|z); M1 = join of the A side, M2 = join of the B side;
/// for every G-value, multiply the |x|-by-|z| and |z|-by-|y| Boolean (or
/// counting) matrices and keep the non-zero output cells as the new
/// relation over x|y|g = N(block).
void EliminateMm(State* s, VarSet block, const MmExpr& mm,
                 const EliminationOptions& opts, EliminationStats* stats,
                 ExecContext* ec) {
  FMMSW_CHECK(mm.z == block);
  const VarSet a_side = mm.x | mm.g | block;
  const VarSet b_side = mm.y | mm.g | block;
  const std::vector<int> incident = s->hg.IncidentEdges(block);
  FMMSW_CHECK(!incident.empty());
  QueryInput a_db, b_db;
  Hypergraph a_hg(s->hg.num_vars(), s->hg.names());
  a_hg = a_hg.Eliminate(VarSet::Full(s->hg.num_vars()) - a_side);
  Hypergraph b_hg(s->hg.num_vars(), s->hg.names());
  b_hg = b_hg.Eliminate(VarSet::Full(s->hg.num_vars()) - b_side);
  for (int e : incident) {
    const VarSet schema = s->hg.edges()[e];
    bool placed = false;
    if (a_side.ContainsAll(schema)) {
      if (std::find(a_hg.edges().begin(), a_hg.edges().end(), schema) ==
          a_hg.edges().end()) {
        a_hg.AddEdge(schema);
        a_db.relations.push_back(s->rels[e]);
      } else {
        for (size_t i = 0; i < a_hg.edges().size(); ++i) {
          if (a_hg.edges()[i] == schema) {
            a_db.relations.Set(i, Intersect(a_db.relations[i], s->rels[e], ec));
          }
        }
      }
      placed = true;
    }
    if (b_side.ContainsAll(schema)) {
      if (std::find(b_hg.edges().begin(), b_hg.edges().end(), schema) ==
          b_hg.edges().end()) {
        b_hg.AddEdge(schema);
        b_db.relations.push_back(s->rels[e]);
      } else {
        for (size_t i = 0; i < b_hg.edges().size(); ++i) {
          if (b_hg.edges()[i] == schema) {
            b_db.relations.Set(i, Intersect(b_db.relations[i], s->rels[e], ec));
          }
        }
      }
      placed = true;
    }
    FMMSW_CHECK(placed &&
                "MM option does not cover an incident relation; invalid "
                "MmExpr for this step");
  }
  // M1(x, z, g) and M2(y, z, g).
  Relation m1 = WcojJoin(a_hg, a_db, a_side, nullptr, ec);
  Relation m2 = WcojJoin(b_hg, b_db, b_side, nullptr, ec);

  // Group rows by G-key; within each group build matrices over x/z and z/y.
  const std::vector<int> m1_g = ColsFor(m1, mm.g), m1_x = ColsFor(m1, mm.x),
                         m1_z = ColsFor(m1, block);
  const std::vector<int> m2_g = ColsFor(m2, mm.g), m2_y = ColsFor(m2, mm.y),
                         m2_z = ColsFor(m2, block);
  // contracts: allow(no-node-map) reference MM-step evaluator; keys are
  // variable-length Value tuples with no packed-key form yet (ROADMAP).
  std::map<std::vector<Value>, std::pair<std::vector<size_t>,
                                         std::vector<size_t>>>
      groups;
  for (size_t r = 0; r < m1.size(); ++r) {
    groups[ExtractKey(m1, r, m1_g)].first.push_back(r);
  }
  for (size_t r = 0; r < m2.size(); ++r) {
    groups[ExtractKey(m2, r, m2_g)].second.push_back(r);
  }

  const VarSet out_schema = mm.x | mm.y | mm.g;
  Relation result(out_schema);
  const std::vector<int> out_vars = result.vars();
  for (const auto& [gkey, rows] : groups) {
    if (rows.first.empty() || rows.second.empty()) continue;
    KeyIndex xs, ys, zs;
    for (size_t r : rows.first) {
      xs.Intern(ExtractKey(m1, r, m1_x));
      zs.Intern(ExtractKey(m1, r, m1_z));
    }
    for (size_t r : rows.second) {
      ys.Intern(ExtractKey(m2, r, m2_y));
      zs.Intern(ExtractKey(m2, r, m2_z));
    }
    if (stats != nullptr) {
      stats->mm_cells += static_cast<int64_t>(xs.size()) * zs.size() +
                         static_cast<int64_t>(zs.size()) * ys.size();
    }
    auto emit = [&](int xi, int yi, const std::vector<std::vector<Value>>&
                                        xkeys,
                    const std::vector<std::vector<Value>>& ykeys) {
      std::vector<Value> tuple(out_vars.size());
      const std::vector<int> xv = mm.x.Members(), yv = mm.y.Members(),
                             gv = mm.g.Members();
      for (size_t i = 0; i < out_vars.size(); ++i) {
        const int v = out_vars[i];
        for (size_t j = 0; j < xv.size(); ++j) {
          if (xv[j] == v) tuple[i] = xkeys[xi][j];
        }
        for (size_t j = 0; j < yv.size(); ++j) {
          if (yv[j] == v) tuple[i] = ykeys[yi][j];
        }
        for (size_t j = 0; j < gv.size(); ++j) {
          if (gv[j] == v) tuple[i] = gkey[j];
        }
      }
      result.Add(tuple);
    };
    const auto xkeys = xs.Reverse(), ykeys = ys.Reverse();
    Bump(ExecContext::Resolve(ec).stats().mm_products);
    if (opts.kernel == MmKernel::kBoolean) {
      BitMatrix ma(xs.size(), zs.size()), mb(zs.size(), ys.size());
      for (size_t r : rows.first) {
        ma.Set(xs.Find(ExtractKey(m1, r, m1_x)),
               zs.Find(ExtractKey(m1, r, m1_z)));
      }
      for (size_t r : rows.second) {
        mb.Set(zs.Find(ExtractKey(m2, r, m2_z)),
               ys.Find(ExtractKey(m2, r, m2_y)));
      }
      BitMatrix mc = BitMatrix::Multiply(ma, mb, ec);
      for (int i = 0; i < mc.rows(); ++i) {
        for (int j = 0; j < mc.cols(); ++j) {
          if (mc.Get(i, j)) emit(i, j, xkeys, ykeys);
        }
      }
    } else {
      Matrix ma(xs.size(), zs.size()), mb(zs.size(), ys.size());
      for (size_t r : rows.first) {
        ma.At(xs.Find(ExtractKey(m1, r, m1_x)),
              zs.Find(ExtractKey(m1, r, m1_z))) = 1;
      }
      for (size_t r : rows.second) {
        mb.At(zs.Find(ExtractKey(m2, r, m2_z)),
              ys.Find(ExtractKey(m2, r, m2_y))) = 1;
      }
      Matrix mc = CountingProduct(ma, mb, opts.kernel, ec);
      for (int i = 0; i < mc.rows(); ++i) {
        for (int j = 0; j < mc.cols(); ++j) {
          if (mc.At(i, j) != 0) emit(i, j, xkeys, ykeys);
        }
      }
    }
  }
  result.SortAndDedupe(ec);
  if (stats != nullptr) {
    ++stats->mm_steps;
    stats->intermediate_tuples += static_cast<int64_t>(result.size());
  }

  // Rebuild state exactly as the for-loop path does.
  State next;
  next.hg = s->hg.Eliminate(block);
  // contracts: allow(no-node-map) schema-keyed relation pool, O(#edges)
  // entries per elimination step.
  std::map<VarSet, Relation> pool;
  for (size_t e = 0; e < s->hg.edges().size(); ++e) {
    if (s->hg.edges()[e].Intersects(block)) continue;
    auto it = pool.find(s->hg.edges()[e]);
    if (it == pool.end()) {
      pool.emplace(s->hg.edges()[e], s->rels[e]);
    } else {
      it->second = Intersect(it->second, s->rels[e], ec);
    }
  }
  const VarSet n = s->hg.N(block);
  if (!n.empty()) {
    auto it = pool.find(n);
    if (it == pool.end()) {
      pool.emplace(n, result);
    } else {
      it->second = Intersect(it->second, result, ec);
    }
  }
  next.rels.clear();
  for (const VarSet& e : next.hg.edges()) {
    auto it = pool.find(e);
    FMMSW_CHECK(it != pool.end());
    next.rels.push_back(it->second);
  }
  if (result.empty()) next.definitely_empty = true;
  *s = std::move(next);
}

/// kAuto: crude operation-count comparison between the for-loop join and
/// the best MM option, using distinct-value counts as dimensions.
StepMethod ChooseMethod(const State& s, VarSet block, const MmExpr& mm,
                        const EliminationOptions& opts) {
  if (mm.x.empty() || mm.y.empty()) return StepMethod::kForLoop;
  int64_t total = 0;
  for (int e : s.hg.IncidentEdges(block)) {
    total += static_cast<int64_t>(s.rels[e].size());
  }
  // For-loop cost ~ product of two largest incident sizes (pessimistic),
  // MM cost ~ square-blocked product of the distinct-count dimensions.
  double forloop = static_cast<double>(total) * total;
  double dim = std::max<double>(1.0, std::sqrt(static_cast<double>(total)));
  double mm_cost = PredictedMmOps(static_cast<int64_t>(dim),
                                  static_cast<int64_t>(dim),
                                  static_cast<int64_t>(dim), opts.omega);
  return mm_cost < forloop ? StepMethod::kMm : StepMethod::kForLoop;
}

}  // namespace

EliminationPlan ForLoopPlan(const Hypergraph& h,
                            const std::vector<int>* order) {
  EliminationPlan plan;
  std::vector<int> ord = order ? *order : h.vertices().Members();
  for (int v : ord) {
    PlanStep step;
    step.block = VarSet::Singleton(v);
    step.method = StepMethod::kForLoop;
    plan.steps.push_back(step);
  }
  return plan;
}

bool ExecutePlan(const Hypergraph& h, const QueryInput& db,
                 const EliminationPlan& plan, const EliminationOptions& opts,
                 EliminationStats* stats, ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  FMMSW_CHECK(db.relations.size() == h.edges().size());
  State s;
  s.hg = h;
  s.rels = db.relations.Materialize();
  VarSet eliminated;
  for (const PlanStep& step : plan.steps) {
    ec.guard().Poll(FaultSite::kOps);  // elimination steps are the plan's morsels
    FMMSW_CHECK(s.hg.vertices().ContainsAll(step.block));
    if (s.definitely_empty) return false;
    for (const Relation& r : s.rels) {
      if (r.empty()) return false;
    }
    StepMethod method = step.method;
    if (method == StepMethod::kAuto) {
      method = ChooseMethod(s, step.block, step.mm, opts);
    }
    if (method == StepMethod::kMm) {
      EliminateMm(&s, step.block, step.mm, opts, stats, &ec);
    } else {
      EliminateForLoop(&s, step.block, stats, &ec);
    }
    eliminated = eliminated | step.block;
  }
  FMMSW_CHECK(eliminated == h.vertices() && "plan must eliminate all vars");
  if (s.definitely_empty) return false;
  for (const Relation& r : s.rels) {
    if (r.empty()) return false;
  }
  return true;
}

}  // namespace fmmsw
