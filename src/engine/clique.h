#ifndef FMMSW_ENGINE_CLIQUE_H_
#define FMMSW_ENGINE_CLIQUE_H_

/// \file
/// k-clique detection (Table 1 rows 2-5; Lemmas C.6-C.8): the vertex set is
/// split into three groups A, B, C of sizes ceil(k/3), ceil((k-1)/3),
/// floor(k/3); group sub-cliques are enumerated with the combinatorial
/// join, and a matrix product over (A-cliques) x (B-cliques) x (C-cliques)
/// detects a full clique — the Nesetril-Poljak / Eisenbrand-Grandoni
/// scheme realized through square MM, matching the paper's exponent
/// ceil(k/3)/2 + ceil((k-1)/3)/2 + floor(k/3)/2 * (w - 2).
///
/// The database layout follows Hypergraph::Clique(k): one relation per
/// vertex pair (i, j), i < j, in lexicographic order.

#include "engine/elimination.h"
#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

struct CliqueStats {
  int64_t group_cliques[3] = {0, 0, 0};  ///< matrix dimensions
};

/// Combinatorial baseline: generic join, O(N^{k/2}).
bool CliqueCombinatorial(int k, const QueryInput& db,
                         ExecContext* ctx = nullptr);

/// MM-based detection via the 3-group split.
bool CliqueMm(int k, const QueryInput& db, MmKernel kernel = MmKernel::kBoolean,
              CliqueStats* stats = nullptr, ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_ENGINE_CLIQUE_H_
