#ifndef FMMSW_ENGINE_FOUR_CYCLE_H_
#define FMMSW_ENGINE_FOUR_CYCLE_H_

/// \file
/// The 4-cycle query Q_square (Eq. 4) with variables X=0, Y=1, Z=2, W=3 and
/// relations [R(X,Y), S(Y,Z), T(Z,W), U(W,X)]:
///
///  - FourCycleTd: the single-TD plan, O(N^2) (fhtw = 2);
///  - FourCycleCombinatorial: degree partitioning at Delta = sqrt(N),
///    achieving the submodular width O(N^{3/2}) (Section 1.1.1 "Data
///    Partitioning"): heavy corners are handled by O(N) probes each, and
///    an all-light residual by intersecting the two light 2-path sets;
///  - FourCycleMm: the Yuster-Zwick-style hybrid (~O(N^{(4w-1)/(2w+1)}),
///    Table 1): light middle vertices combinatorially, the heavy-y /
///    heavy-w core by a rectangular matrix product. The mixed
///    (light-y, heavy-w) residual is resolved by per-heavy-w semijoins
///    against the light 2-path set — see EXPERIMENTS.md for the exponent
///    caveat on adversarial instances.

#include "engine/elimination.h"
#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

struct FourCycleStats {
  int64_t heavy_probes = 0;
  /// Materialized light 2-path tuples. In the combinatorial algorithm the
  /// second light set is fused (existence probe against the first), so
  /// only survivors count — the filtered-away intermediate never exists.
  int64_t light_pairs = 0;
  int64_t mm_dims[3] = {0, 0, 0};
};

/// One-bag-at-a-time TD plan (the O(N^2) baseline the paper's Section 1.1
/// motivates against).
bool FourCycleTd(const QueryInput& db, ExecContext* ctx = nullptr);

/// Degree-partitioned combinatorial algorithm, O(N^{3/2}).
bool FourCycleCombinatorial(const QueryInput& db,
                            FourCycleStats* stats = nullptr,
                            ExecContext* ctx = nullptr);

/// MM hybrid at the given omega.
bool FourCycleMm(const QueryInput& db, double omega,
                 MmKernel kernel = MmKernel::kBoolean,
                 FourCycleStats* stats = nullptr, ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_ENGINE_FOUR_CYCLE_H_
