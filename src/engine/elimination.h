#ifndef FMMSW_ENGINE_ELIMINATION_H_
#define FMMSW_ENGINE_ELIMINATION_H_

/// \file
/// The w-query-plan interpreter (Definition E.12): executes a generalized
/// variable elimination order where each block is eliminated either by a
/// for-loop join (WCOJ over the incident relations, then projecting the
/// block away) or by a matrix multiplication MM((A\B)\G; (B\A)\G; X | G)
/// over a chosen cover of the incident relations (Definition 4.5, executed
/// as in Appendix E.6: group by G, multiply Boolean matrices indexed by the
/// block values, keep non-zero entries).

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "mm/kernel.h"  // MmKernel / CountingProduct, shared by every engine
#include "relation/relation.h"
#include "width/mm_expr.h"

namespace fmmsw {

class ExecContext;

enum class StepMethod {
  kForLoop,  ///< join incident relations, project the block away
  kMm,       ///< matrix multiplication per the step's MmExpr
  kAuto,     ///< pick by the operation-count cost model at run time
};

struct PlanStep {
  VarSet block;
  StepMethod method = StepMethod::kAuto;
  /// For kMm: the option to execute; mm.z must equal `block`.
  MmExpr mm;
};

struct EliminationPlan {
  std::vector<PlanStep> steps;
};

struct EliminationOptions {
  MmKernel kernel = MmKernel::kBoolean;
  /// omega used by the kAuto cost model.
  double omega = 2.8073549;  // log2 7
};

struct EliminationStats {
  int64_t forloop_steps = 0;
  int64_t mm_steps = 0;
  int64_t mm_cells = 0;         ///< total matrix cells multiplied
  int64_t intermediate_tuples = 0;
};

/// Builds the all-singleton for-loop plan (equivalent to plain variable
/// elimination, i.e. a TD plan).
EliminationPlan ForLoopPlan(const Hypergraph& h,
                            const std::vector<int>* order = nullptr);

/// Executes the plan on the database; returns the Boolean answer. The plan
/// must eliminate every vertex of `h`. CHECKs that each MM step's
/// expression is valid for the hypergraph state it executes against.
bool ExecutePlan(const Hypergraph& h, const QueryInput& db,
                 const EliminationPlan& plan,
                 const EliminationOptions& opts = {},
                 EliminationStats* stats = nullptr,
                 ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_ENGINE_ELIMINATION_H_
