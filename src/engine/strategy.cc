#include "engine/strategy.h"

#include <cmath>

#include "hypergraph/hypergraph.h"

namespace fmmsw {

namespace {

// log2(7), the Strassen exponent: the degree-split threshold and the
// kernel must agree (see TriangleMm's omega parameter).
double StrassenOmega() { return std::log2(7.0); }

}  // namespace

const std::vector<StrategyCard>& TriangleCountLadder() {
  static const std::vector<StrategyCard> ladder = [] {
    std::vector<StrategyCard> l;
    l.push_back({"mm-strassen", true, MmKernel::kStrassen, StrassenOmega(), 3});
    l.push_back({"gemm-blocked", true, MmKernel::kNaive, 3.0, 2});
    l.push_back({"mm-bitsliced", true, MmKernel::kBitSliced, 3.0, 1});
    l.push_back({"wcoj", false, MmKernel::kBoolean, 3.0, 0});
    return l;
  }();
  return ladder;
}

const std::vector<StrategyCard>& TriangleBooleanLadder() {
  static const std::vector<StrategyCard> ladder = [] {
    std::vector<StrategyCard> l;
    l.push_back({"mm-strassen", true, MmKernel::kStrassen, StrassenOmega(), 2});
    l.push_back({"mm-boolean", true, MmKernel::kBoolean, 3.0, 1});
    l.push_back({"wcoj", false, MmKernel::kBoolean, 3.0, 0});
    return l;
  }();
  return ladder;
}

const std::vector<StrategyCard>& GenericBooleanLadder() {
  static const std::vector<StrategyCard> ladder = [] {
    std::vector<StrategyCard> l;
    l.push_back({"elimination", false, MmKernel::kBoolean, 3.0, 2});
    l.push_back({"best-td", false, MmKernel::kBoolean, 3.0, 1});
    l.push_back({"wcoj", false, MmKernel::kBoolean, 3.0, 0});
    return l;
  }();
  return ladder;
}

bool IsTriangleQuery(const Hypergraph& h) {
  const Hypergraph t = Hypergraph::Triangle();
  if (h.vertices() != t.vertices()) return false;
  if (h.edges().size() != t.edges().size()) return false;
  for (size_t i = 0; i < t.edges().size(); ++i) {
    if (h.edges()[i] != t.edges()[i]) return false;
  }
  return true;
}

}  // namespace fmmsw
