#include "engine/pyramid.h"

#include <atomic>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "engine/wcoj.h"
#include "hypergraph/hypergraph.h"
#include "mm/matrix.h"
#include "relation/degree.h"
#include "relation/ops.h"
#include "util/check.h"
#include "util/parallel.h"

namespace fmmsw {

namespace {

constexpr int kApex = 0;  // Y
constexpr int kX1 = 1, kX2 = 2, kX3 = 3;

uint64_t PairKey(Value a, Value b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

bool Pyramid3Combinatorial(const Database& db) {
  return WcojBoolean(Hypergraph::Pyramid(3), db);
}

bool Pyramid3Mm(const Database& db, double omega, MmKernel kernel,
                PyramidStats* stats) {
  FMMSW_CHECK(db.relations.size() == 4);
  const Relation& r1 = db.relations[0];  // R1(Y, X1)
  const Relation& r2 = db.relations[1];  // R2(Y, X2)
  const Relation& r3 = db.relations[2];  // R3(Y, X3)
  const Relation& base = db.relations[3];  // B(X1, X2, X3)
  const double n = static_cast<double>(db.TotalSize());
  if (n == 0) return false;
  const int64_t delta = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::pow(n, 1.0 - 1.0 / omega))));
  const int64_t sqrt_delta = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::sqrt(
             static_cast<double>(delta)))));

  const Relation* apex_rels[3] = {&r1, &r2, &r3};
  const int apex_vars[3] = {kX1, kX2, kX3};

  // ---- Case 1: some x_i is light in its apex relation. Join the base
  // with the light part (N * Delta tuples) and probe the other two.
  for (int i = 0; i < 3; ++i) {
    auto part = PartitionByDegree(*apex_rels[i], VarSet{kApex},
                                  VarSet::Singleton(apex_vars[i]), delta);
    Relation joined = Join(base, part.light);  // (X1,X2,X3,Y) with light xi
    if (stats != nullptr) {
      stats->case1_tuples += static_cast<int64_t>(joined.size());
    }
    for (int j = 0; j < 3; ++j) {
      if (j != i) joined = Semijoin(joined, *apex_rels[j]);
    }
    if (!joined.empty()) return true;
  }

  // ---- Case 2: y has small apex degrees in R1 and R2. Enumerate
  // (y, x3) in R3, loop over x1 in R1[y], x2 in R2[y], probe the base.
  auto p1 = PartitionByDegree(r1, VarSet{kX1}, VarSet{kApex}, sqrt_delta);
  auto p2 = PartitionByDegree(r2, VarSet{kX2}, VarSet{kApex}, sqrt_delta);
  Relation heavy_y = Union(p1.heavy, p2.heavy);  // unary over {Y}
  {
    std::unordered_set<uint64_t> base_x1x2;
    std::unordered_map<uint64_t, std::vector<Value>> base_by_x1x2;
    for (size_t row = 0; row < base.size(); ++row) {
      base_by_x1x2[PairKey(base.Get(row, kX1), base.Get(row, kX2))]
          .push_back(base.Get(row, kX3));
    }
    // Index light-y apex values.
    std::unordered_map<Value, std::vector<Value>> x1_of_y, x2_of_y;
    for (size_t row = 0; row < p1.light.size(); ++row) {
      x1_of_y[p1.light.Get(row, kApex)].push_back(p1.light.Get(row, kX1));
    }
    for (size_t row = 0; row < p2.light.size(); ++row) {
      x2_of_y[p2.light.Get(row, kApex)].push_back(p2.light.Get(row, kX2));
    }
    std::unordered_set<Value> heavy_y_set;
    for (size_t row = 0; row < heavy_y.size(); ++row) {
      heavy_y_set.insert(heavy_y.Row(row)[0]);
    }
    std::unordered_set<uint64_t> r3_pairs;  // (y, x3)
    for (size_t row = 0; row < r3.size(); ++row) {
      const Value y = r3.Get(row, kApex);
      if (heavy_y_set.count(y) > 0) continue;
      auto it1 = x1_of_y.find(y);
      auto it2 = x2_of_y.find(y);
      if (it1 == x1_of_y.end() || it2 == x2_of_y.end()) continue;
      const Value x3 = r3.Get(row, kX3);
      for (Value x1 : it1->second) {
        for (Value x2 : it2->second) {
          if (stats != nullptr) ++stats->case2_tuples;
          auto bit = base_by_x1x2.find(PairKey(x1, x2));
          if (bit == base_by_x1x2.end()) continue;
          for (Value bx3 : bit->second) {
            if (bx3 == x3) return true;
          }
        }
      }
    }
  }

  // ---- Case 3: all x_i heavy and y heavy. Eliminate Y with
  // MM(X2; X3; Y | X1): for each heavy x1, multiply the X2-by-Y and
  // Y-by-X3 Boolean matrices, then probe the base.
  auto h1 = PartitionByDegree(r1, VarSet{kApex}, VarSet{kX1}, delta).heavy;
  auto h2 = PartitionByDegree(r2, VarSet{kApex}, VarSet{kX2}, delta).heavy;
  auto h3 = PartitionByDegree(r3, VarSet{kApex}, VarSet{kX3}, delta).heavy;
  Relation r1h = Semijoin(Semijoin(r1, h1), heavy_y);
  Relation r2h = Semijoin(Semijoin(r2, h2), heavy_y);
  Relation r3h = Semijoin(Semijoin(r3, h3), heavy_y);
  if (r1h.empty() || r2h.empty() || r3h.empty()) return false;

  std::unordered_map<Value, std::vector<Value>> y_of_x1;
  for (size_t row = 0; row < r1h.size(); ++row) {
    y_of_x1[r1h.Get(row, kX1)].push_back(r1h.Get(row, kApex));
  }
  std::unordered_map<Value, std::vector<Value>> x2_of_y, x3_of_y;
  for (size_t row = 0; row < r2h.size(); ++row) {
    x2_of_y[r2h.Get(row, kApex)].push_back(r2h.Get(row, kX2));
  }
  for (size_t row = 0; row < r3h.size(); ++row) {
    x3_of_y[r3h.Get(row, kApex)].push_back(r3h.Get(row, kX3));
  }
  std::unordered_map<Value, std::vector<std::pair<Value, Value>>> base_by_x1;
  for (size_t row = 0; row < base.size(); ++row) {
    base_by_x1[base.Get(row, kX1)].emplace_back(base.Get(row, kX2),
                                                base.Get(row, kX3));
  }

  // Independent MM groups, one per heavy x1 — probe them in parallel
  // (each iteration only reads the shared indexes).
  std::vector<const std::pair<const Value, std::vector<Value>>*> groups;
  groups.reserve(y_of_x1.size());
  for (const auto& entry : y_of_x1) {
    if (base_by_x1.find(entry.first) != base_by_x1.end()) {
      groups.push_back(&entry);
    }
  }
  if (stats != nullptr) {
    stats->mm_groups += static_cast<int64_t>(groups.size());
  }
  return ParallelAnyOf(static_cast<int64_t>(groups.size()), [&](int64_t g) {
    const Value x1 = groups[g]->first;
    const std::vector<Value>& ys = groups[g]->second;
    auto bit = base_by_x1.find(x1);
    // Local indices for this group.
    std::unordered_map<Value, int> yi, x2i, x3i;
    auto intern = [](std::unordered_map<Value, int>* m, Value v) {
      auto [it, ins] = m->emplace(v, static_cast<int>(m->size()));
      (void)ins;
      return it->second;
    };
    for (Value y : ys) {
      intern(&yi, y);
      auto i2 = x2_of_y.find(y);
      if (i2 != x2_of_y.end()) {
        for (Value x2 : i2->second) intern(&x2i, x2);
      }
      auto i3 = x3_of_y.find(y);
      if (i3 != x3_of_y.end()) {
        for (Value x3 : i3->second) intern(&x3i, x3);
      }
    }
    if (x2i.empty() || x3i.empty()) return false;
    Matrix m1(static_cast<int>(x2i.size()), static_cast<int>(yi.size()));
    Matrix m2(static_cast<int>(yi.size()), static_cast<int>(x3i.size()));
    for (Value y : ys) {
      const int yc = yi.at(y);
      auto i2 = x2_of_y.find(y);
      if (i2 != x2_of_y.end()) {
        for (Value x2 : i2->second) m1.At(x2i.at(x2), yc) = 1;
      }
      auto i3 = x3_of_y.find(y);
      if (i3 != x3_of_y.end()) {
        for (Value x3 : i3->second) m2.At(yc, x3i.at(x3)) = 1;
      }
    }
    Matrix prod = kernel == MmKernel::kStrassen ? MultiplyRectangular(m1, m2)
                                                : MultiplyNaive(m1, m2);
    for (const auto& [x2, x3] : bit->second) {
      auto i2 = x2i.find(x2);
      auto i3 = x3i.find(x3);
      if (i2 != x2i.end() && i3 != x3i.end() &&
          prod.At(i2->second, i3->second) != 0) {
        return true;
      }
    }
    return false;
  });
}

}  // namespace fmmsw
