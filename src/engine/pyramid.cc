#include "engine/pyramid.h"

#include <cmath>

#include "core/exec_context.h"
#include "engine/wcoj.h"
#include "hypergraph/hypergraph.h"
#include "mm/matrix.h"
#include "relation/degree.h"
#include "relation/flat_index.h"
#include "relation/ops.h"
#include "util/check.h"
#include "util/parallel.h"

namespace fmmsw {

namespace {

constexpr int kApex = 0;  // Y
constexpr int kX1 = 1, kX2 = 2, kX3 = 3;

}  // namespace

bool Pyramid3Combinatorial(const QueryInput& db, ExecContext* ctx) {
  return WcojBoolean(Hypergraph::Pyramid(3), db, ctx);
}

bool Pyramid3Mm(const QueryInput& db, double omega, MmKernel kernel,
                PyramidStats* stats, ExecContext* ctx) {
  FMMSW_CHECK(db.relations.size() == 4);
  ExecContext& ec = ExecContext::Resolve(ctx);
  const Relation& r1 = db.relations[0];  // R1(Y, X1)
  const Relation& r2 = db.relations[1];  // R2(Y, X2)
  const Relation& r3 = db.relations[2];  // R3(Y, X3)
  const Relation& base = db.relations[3];  // B(X1, X2, X3)
  const double n = static_cast<double>(db.TotalSize());
  if (n == 0) return false;
  const int64_t delta = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::pow(n, 1.0 - 1.0 / omega))));
  const int64_t sqrt_delta = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::sqrt(
             static_cast<double>(delta)))));

  const Relation* apex_rels[3] = {&r1, &r2, &r3};

  // ---- Case 1: some x_i is light in its apex relation. Join the base
  // with the light part and check the other two apex relations — both
  // checks are fused into the join as existence-only probes, so the
  // N * Delta intermediate is never materialized; limit 1 stops at the
  // first witness.
  for (int i = 0; i < 3; ++i) {
    auto part = PartitionByDegree(*apex_rels[i], VarSet{kApex},
                                  VarSet::Singleton(kX1 + i), delta, &ec);
    const Relation* checks[2];
    int nchecks = 0;
    for (int j = 0; j < 3; ++j) {
      if (j != i) checks[nchecks++] = apex_rels[j];
    }
    Relation witness =
        Join(base, part.light,
             {.exist_filters = {checks[0], checks[1]}, .limit = 1}, &ec);
    if (stats != nullptr) {
      stats->case1_tuples += static_cast<int64_t>(witness.size());
    }
    if (!witness.empty()) return true;
  }

  // ---- Case 2: y has small apex degrees in R1 and R2. Enumerate
  // (y, x3) in R3, loop over x1 in R1[y], x2 in R2[y], probe the base.
  // All the per-value lookups run on flat indexes of the relations
  // themselves (no std::unordered_map side structures).
  auto p1 =
      PartitionByDegree(r1, VarSet{kX1}, VarSet{kApex}, sqrt_delta, &ec);
  auto p2 =
      PartitionByDegree(r2, VarSet{kX2}, VarSet{kApex}, sqrt_delta, &ec);
  Relation heavy_y = Union(p1.heavy, p2.heavy, &ec);  // unary over {Y}
  {
    const KeySpec kbase12(base, VarSet{kX1, kX2});
    const FlatMultimap base_by_x1x2(base, kbase12, &ec);
    const int base_x3_col = base.ColumnOf(kX3);
    const KeySpec k1(p1.light, VarSet{kApex});
    const KeySpec k2(p2.light, VarSet{kApex});
    const FlatMultimap x1_of_y(p1.light, k1, &ec);
    const FlatMultimap x2_of_y(p2.light, k2, &ec);
    const int l1_x1_col = p1.light.ColumnOf(kX1);
    const int l2_x2_col = p2.light.ColumnOf(kX2);
    const FlatInterner heavy_y_set(heavy_y,
                                   KeySpec(heavy_y, heavy_y.schema()), &ec);
    for (size_t row = 0; row < r3.size(); ++row) {
      const Value y = r3.Get(row, kApex);
      if (heavy_y_set.FindValue(y) >= 0) continue;
      const uint64_t ykey = static_cast<uint32_t>(y);
      const int32_t first1 = x1_of_y.First(ykey);
      if (first1 < 0) continue;
      const int32_t first2 = x2_of_y.First(ykey);
      if (first2 < 0) continue;
      const Value x3 = r3.Get(row, kX3);
      for (int32_t row1 = first1; row1 >= 0; row1 = x1_of_y.Next(row1)) {
        const Value x1 = p1.light.Row(row1)[l1_x1_col];
        for (int32_t row2 = first2; row2 >= 0; row2 = x2_of_y.Next(row2)) {
          const Value x2 = p2.light.Row(row2)[l2_x2_col];
          if (stats != nullptr) ++stats->case2_tuples;
          const uint64_t bkey =
              (static_cast<uint64_t>(static_cast<uint32_t>(x1)) << 32) |
              static_cast<uint32_t>(x2);
          for (int32_t brow = base_by_x1x2.First(bkey); brow >= 0;
               brow = base_by_x1x2.Next(brow)) {
            if (base.Row(brow)[base_x3_col] == x3) return true;
          }
        }
      }
    }
  }

  // ---- Case 3: all x_i heavy and y heavy. Eliminate Y with
  // MM(X2; X3; Y | X1): for each heavy x1, multiply the X2-by-Y and
  // Y-by-X3 Boolean matrices, then probe the base.
  auto h1 =
      PartitionByDegree(r1, VarSet{kApex}, VarSet{kX1}, delta, &ec).heavy;
  auto h2 =
      PartitionByDegree(r2, VarSet{kApex}, VarSet{kX2}, delta, &ec).heavy;
  auto h3 =
      PartitionByDegree(r3, VarSet{kApex}, VarSet{kX3}, delta, &ec).heavy;
  Relation r1h = SemijoinAll(r1, {&h1, &heavy_y}, &ec);
  Relation r2h = SemijoinAll(r2, {&h2, &heavy_y}, &ec);
  Relation r3h = SemijoinAll(r3, {&h3, &heavy_y}, &ec);
  if (r1h.empty() || r2h.empty() || r3h.empty()) return false;

  const KeySpec kr1h(r1h, VarSet{kX1});
  const FlatMultimap y_of_x1(r1h, kr1h, &ec);
  const int r1h_y_col = r1h.ColumnOf(kApex);
  const KeySpec kr2h(r2h, VarSet{kApex});
  const KeySpec kr3h(r3h, VarSet{kApex});
  const FlatMultimap x2_of_y(r2h, kr2h, &ec);
  const FlatMultimap x3_of_y(r3h, kr3h, &ec);
  const int r2h_x2_col = r2h.ColumnOf(kX2);
  const int r3h_x3_col = r3h.ColumnOf(kX3);
  const KeySpec kbase1(base, VarSet{kX1});
  const FlatMultimap base_by_x1(base, kbase1, &ec);
  const int base_x2_col = base.ColumnOf(kX2);
  const int base_x3_col = base.ColumnOf(kX3);

  // Independent MM groups, one per heavy x1 with base support — probe
  // them in parallel on the context's pool (each iteration only reads the
  // shared indexes).
  Relation x1s = Project(r1h, VarSet{kX1}, &ec);
  std::vector<Value> groups;
  groups.reserve(x1s.size());
  for (size_t row = 0; row < x1s.size(); ++row) {
    const Value x1 = x1s.Row(row)[0];
    if (base_by_x1.First(static_cast<uint32_t>(x1)) >= 0) {
      groups.push_back(x1);
    }
  }
  if (stats != nullptr) {
    stats->mm_groups += static_cast<int64_t>(groups.size());
  }
  return ParallelAnyOf(
      ec.pool(), static_cast<int64_t>(groups.size()), [&](int64_t g) {
        const Value x1 = groups[g];
        const uint64_t x1key = static_cast<uint32_t>(x1);
        // Local dense indices for this group.
        FlatInterner yi, x2i, x3i;
        for (int32_t row = y_of_x1.First(x1key); row >= 0;
             row = y_of_x1.Next(row)) {
          const Value y = r1h.Row(row)[r1h_y_col];
          yi.InternValue(y);
          const uint64_t ykey = static_cast<uint32_t>(y);
          for (int32_t r2row = x2_of_y.First(ykey); r2row >= 0;
               r2row = x2_of_y.Next(r2row)) {
            x2i.InternValue(r2h.Row(r2row)[r2h_x2_col]);
          }
          for (int32_t r3row = x3_of_y.First(ykey); r3row >= 0;
               r3row = x3_of_y.Next(r3row)) {
            x3i.InternValue(r3h.Row(r3row)[r3h_x3_col]);
          }
        }
        if (x2i.size() == 0 || x3i.size() == 0) return false;
        Matrix m1(x2i.size(), yi.size());
        Matrix m2(yi.size(), x3i.size());
        for (int32_t row = y_of_x1.First(x1key); row >= 0;
             row = y_of_x1.Next(row)) {
          const Value y = r1h.Row(row)[r1h_y_col];
          const int yc = yi.FindValue(y);
          const uint64_t ykey = static_cast<uint32_t>(y);
          for (int32_t r2row = x2_of_y.First(ykey); r2row >= 0;
               r2row = x2_of_y.Next(r2row)) {
            m1.At(x2i.FindValue(r2h.Row(r2row)[r2h_x2_col]), yc) = 1;
          }
          for (int32_t r3row = x3_of_y.First(ykey); r3row >= 0;
               r3row = x3_of_y.Next(r3row)) {
            m2.At(yc, x3i.FindValue(r3h.Row(r3row)[r3h_x3_col])) = 1;
          }
        }
        Bump(ec.stats().mm_products);
        Matrix prod = CountingProduct(m1, m2, kernel, &ec);
        for (int32_t brow = base_by_x1.First(x1key); brow >= 0;
             brow = base_by_x1.Next(brow)) {
          const int i2 = x2i.FindValue(base.Row(brow)[base_x2_col]);
          const int i3 = x3i.FindValue(base.Row(brow)[base_x3_col]);
          if (i2 >= 0 && i3 >= 0 && prod.At(i2, i3) != 0) return true;
        }
        return false;
      });
}

}  // namespace fmmsw
