#include "engine/clique.h"

#include "core/exec_context.h"
#include "engine/wcoj.h"
#include "hypergraph/hypergraph.h"
#include "mm/matrix.h"
#include "relation/flat_index.h"
#include "relation/ops.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace fmmsw {

namespace {

/// Edge index of pair (i, j), i < j, in Hypergraph::Clique(k)'s order.
int PairEdgeIndex(int k, int i, int j) {
  FMMSW_CHECK(i < j);
  int idx = 0;
  for (int a = 0; a < i; ++a) idx += k - a - 1;
  return idx + (j - i - 1);
}

/// Flat set of the pairs in a binary relation, keyed (first var value,
/// second var value). Reserved for the row count (an upper bound on
/// distinct pairs), so the build never grow-rehashes mid-insert.
FlatSet PairSet(const Relation& r, int v1, int v2) {
  FlatSet out;
  out.Reserve(r.size());
  for (size_t row = 0; row < r.size(); ++row) {
    const uint64_t a = static_cast<uint32_t>(r.Get(row, v1));
    const uint64_t b = static_cast<uint32_t>(r.Get(row, v2));
    out.Insert((a << 32) | b);
  }
  return out;
}

bool HasPair(const FlatSet& set, Value a, Value b) {
  return set.Contains(
      (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
      static_cast<uint32_t>(b));
}

/// Enumerates the sub-cliques of a variable group: the WCOJ join of the
/// pair relations inside the group, with singleton groups reduced to the
/// intersection of their incident projections.
Relation GroupCliques(int k, const QueryInput& db, const std::vector<int>& g,
                      ExecContext* ec) {
  VarSet group;
  for (int v : g) group.Add(v);
  if (g.size() == 1) {
    Relation acc;
    bool first = true;
    for (int other = 0; other < k; ++other) {
      if (other == g[0]) continue;
      const int e = PairEdgeIndex(k, std::min(g[0], other),
                                  std::max(g[0], other));
      Relation proj = Project(db.relations[e], group, ec);
      acc = first ? proj : Intersect(acc, proj, ec);
      first = false;
    }
    return acc;
  }
  Hypergraph sub(k);
  sub = sub.Eliminate(VarSet::Full(k) - group);
  QueryInput sub_db;
  for (size_t i = 0; i < g.size(); ++i) {
    for (size_t j = i + 1; j < g.size(); ++j) {
      const int a = std::min(g[i], g[j]), b = std::max(g[i], g[j]);
      sub.AddEdge(VarSet{a, b});
      sub_db.relations.push_back(db.relations.ptr(PairEdgeIndex(k, a, b)));
    }
  }
  return WcojJoin(sub, sub_db, group, nullptr, ec);
}

/// Cross-group compatibility: cliques ta, tb are compatible iff every
/// cross pair is present in its relation.
bool Compatible(int k, const QueryInput& db,
                const std::vector<FlatSet>& pair_sets,
                const std::vector<int>& ga, const Relation& ra, size_t rowa,
                const std::vector<int>& gb, const Relation& rb,
                size_t rowb) {
  (void)db;
  for (int va : ga) {
    for (int vb : gb) {
      const int lo = std::min(va, vb), hi = std::max(va, vb);
      const int e = PairEdgeIndex(k, lo, hi);
      const Value x = va < vb ? ra.Get(rowa, va) : rb.Get(rowb, vb);
      const Value y = va < vb ? rb.Get(rowb, vb) : ra.Get(rowa, va);
      if (!HasPair(pair_sets[e], x, y)) return false;
    }
  }
  return true;
}

}  // namespace

bool CliqueCombinatorial(int k, const QueryInput& db, ExecContext* ctx) {
  return WcojBoolean(Hypergraph::Clique(k), db, ctx);
}

bool CliqueMm(int k, const QueryInput& db, MmKernel kernel, CliqueStats* stats,
              ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  FMMSW_CHECK(k >= 3);
  FMMSW_CHECK(db.relations.size() ==
              static_cast<size_t>(k * (k - 1) / 2));
  // Group sizes floor(k/3), ceil((k-1)/3), ceil(k/3) (Lemma C.8).
  const int a_size = k / 3;
  const int b_size = (k + 1) / 3;
  const int c_size = (k + 2) / 3;
  FMMSW_CHECK(a_size + b_size + c_size == k);
  std::vector<int> ga, gb, gc;
  int v = 0;
  for (int i = 0; i < a_size; ++i) ga.push_back(v++);
  for (int i = 0; i < b_size; ++i) gb.push_back(v++);
  for (int i = 0; i < c_size; ++i) gc.push_back(v++);

  Relation la = GroupCliques(k, db, ga, &ec);
  Relation lb = GroupCliques(k, db, gb, &ec);
  Relation lc = GroupCliques(k, db, gc, &ec);
  if (stats != nullptr) {
    stats->group_cliques[0] = static_cast<int64_t>(la.size());
    stats->group_cliques[1] = static_cast<int64_t>(lb.size());
    stats->group_cliques[2] = static_cast<int64_t>(lc.size());
  }
  if (la.empty() || lb.empty() || lc.empty()) return false;

  std::vector<FlatSet> pair_sets;
  {
    // The pair-set builds are this engine's index-construction phase;
    // account them like the flat-index builds so benches can report the
    // time separately.
    Stopwatch sw;
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        const Relation& rel = db.relations[PairEdgeIndex(k, i, j)];
        pair_sets.push_back(PairSet(rel, i, j));
        Bump(ec.stats().index_builds);
        Bump(ec.stats().index_build_rows, static_cast<int64_t>(rel.size()));
      }
    }
    Bump(ec.stats().index_build_ns,
         static_cast<int64_t>(sw.Seconds() * 1e9));
  }

  const int na = static_cast<int>(la.size());
  const int nb = static_cast<int>(lb.size());
  const int nc = static_cast<int>(lc.size());
  auto compat = [&](const std::vector<int>& g1, const Relation& r1,
                    size_t row1, const std::vector<int>& g2,
                    const Relation& r2, size_t row2) {
    return Compatible(k, db, pair_sets, g1, r1, row1, g2, r2, row2);
  };
  // The compatibility fills and the final check only read the shared pair
  // sets; rows are partitioned across threads, so the row-local writes
  // (bit words / matrix cells of row i) never conflict.
  if (kernel == MmKernel::kBoolean) {
    BitMatrix mab(na, nb), mbc(nb, nc);
    ParallelFor(ec.pool(), na, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        for (int j = 0; j < nb; ++j) {
          if (compat(ga, la, i, gb, lb, j)) mab.Set(i, j);
        }
      }
    });
    ParallelFor(ec.pool(), nb, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        for (int j = 0; j < nc; ++j) {
          if (compat(gb, lb, i, gc, lc, j)) mbc.Set(i, j);
        }
      }
    });
    Bump(ec.stats().mm_products);
    BitMatrix p = BitMatrix::Multiply(mab, mbc, &ec);
    return ParallelAnyOf(ec.pool(), na, [&](int64_t i) {
      for (int j = 0; j < nc; ++j) {
        if (p.Get(i, j) && compat(ga, la, i, gc, lc, j)) return true;
      }
      return false;
    });
  }
  Matrix mab(na, nb), mbc(nb, nc);
  ParallelFor(ec.pool(), na, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      for (int j = 0; j < nb; ++j) {
        if (compat(ga, la, i, gb, lb, j)) mab.At(i, j) = 1;
      }
    }
  });
  ParallelFor(ec.pool(), nb, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      for (int j = 0; j < nc; ++j) {
        if (compat(gb, lb, i, gc, lc, j)) mbc.At(i, j) = 1;
      }
    }
  });
  Bump(ec.stats().mm_products);
  Matrix p = CountingProduct(mab, mbc, kernel, &ec);
  return ParallelAnyOf(ec.pool(), na, [&](int64_t i) {
    for (int j = 0; j < nc; ++j) {
      if (p.At(i, j) != 0 && compat(ga, la, i, gc, lc, j)) return true;
    }
    return false;
  });
}

}  // namespace fmmsw
