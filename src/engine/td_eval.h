#ifndef FMMSW_ENGINE_TD_EVAL_H_
#define FMMSW_ENGINE_TD_EVAL_H_

/// \file
/// Tree-decomposition evaluation (Section 1.1.1 "Tree Decompositions"):
/// each bag's subquery is solved with the worst-case optimal join, then the
/// bag relations are combined acyclically with Yannakakis semijoin passes.
/// Runs in O(N^{fhtw}) for the best TD; the submodular-width algorithms
/// run one TD per degree configuration instead.

#include "hypergraph/decomposition.h"
#include "hypergraph/hypergraph.h"
#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

/// Evaluates the Boolean query along the given TD: materializes each bag
/// via WCOJ (using only relations intersecting the bag, semijoin-reduced to
/// it), then runs Yannakakis over the join tree.
bool TdBoolean(const Hypergraph& h, const QueryInput& db,
               const TreeDecomposition& td, ExecContext* ctx = nullptr);

/// Picks the minimum-fhtw TD and evaluates along it.
bool TdBooleanBest(const Hypergraph& h, const QueryInput& db,
                   ExecContext* ctx = nullptr);

/// Yannakakis over already-materialized bag relations arranged in a join
/// tree: a bottom-up semijoin pass suffices for the Boolean answer.
bool YannakakisBoolean(std::vector<Relation> bags,
                       const std::vector<std::pair<int, int>>& tree_edges,
                       ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_ENGINE_TD_EVAL_H_
