#include "engine/triangle.h"

#include <cmath>
#include <unordered_map>

#include "engine/wcoj.h"
#include "hypergraph/hypergraph.h"
#include "mm/matrix.h"
#include "relation/degree.h"
#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

namespace {

constexpr int kX = 0, kY = 1, kZ = 2;

/// Dense index over the values appearing in a unary relation.
class ValueIndex {
 public:
  explicit ValueIndex(const Relation& unary) {
    map_.reserve(unary.size() * 2);
    for (size_t r = 0; r < unary.size(); ++r) {
      map_.emplace(unary.Row(r)[0], static_cast<int>(map_.size()));
    }
  }
  int Find(Value v) const {
    auto it = map_.find(v);
    return it == map_.end() ? -1 : it->second;
  }
  int size() const { return static_cast<int>(map_.size()); }

 private:
  std::unordered_map<Value, int> map_;
};

/// True if the join of `left` (over two vars) with `check` is non-empty.
bool JoinedNonEmpty(const Relation& left, const Relation& check) {
  return !Semijoin(left, check).empty();
}

}  // namespace

bool TriangleCombinatorial(const Database& db) {
  return WcojBoolean(Hypergraph::Triangle(), db);
}

bool TriangleMm(const Database& db, double omega, MmKernel kernel,
                TriangleStats* stats) {
  FMMSW_CHECK(db.relations.size() == 3);
  const Relation& r = db.relations[0];  // R(X,Y)
  const Relation& s = db.relations[1];  // S(Y,Z)
  const Relation& t = db.relations[2];  // T(X,Z)
  const double n = static_cast<double>(db.TotalSize());
  if (n == 0) return false;
  const int64_t delta = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(
             std::pow(n, (omega - 1.0) / (omega + 1.0)))));

  // Figure 1: three decomposition steps.
  auto pr = PartitionByDegree(r, VarSet{kY}, VarSet{kX}, delta);  // Rh(X)
  auto ps = PartitionByDegree(s, VarSet{kZ}, VarSet{kY}, delta);  // Sh(Y)
  auto pt = PartitionByDegree(t, VarSet{kX}, VarSet{kZ}, delta);  // Th(Z)
  if (stats != nullptr) {
    stats->heavy_x = static_cast<int64_t>(pr.heavy.size());
    stats->heavy_y = static_cast<int64_t>(ps.heavy.size());
    stats->heavy_z = static_cast<int64_t>(pt.heavy.size());
  }

  // Light corners: Q_l1 = T join R_l (then S), Q_l2 = R join S_l (then T),
  // Q_l3 = S join T_l (then R). Each join is at most N * Delta tuples.
  {
    Relation ql1 = Join(t, pr.light);
    if (stats != nullptr) {
      stats->light_join_tuples += static_cast<int64_t>(ql1.size());
    }
    if (JoinedNonEmpty(ql1, s)) {
      if (stats != nullptr) stats->answer_from_light = true;
      return true;
    }
    Relation ql2 = Join(r, ps.light);
    if (stats != nullptr) {
      stats->light_join_tuples += static_cast<int64_t>(ql2.size());
    }
    if (JoinedNonEmpty(ql2, t)) {
      if (stats != nullptr) stats->answer_from_light = true;
      return true;
    }
    Relation ql3 = Join(s, pt.light);
    if (stats != nullptr) {
      stats->light_join_tuples += static_cast<int64_t>(ql3.size());
    }
    if (JoinedNonEmpty(ql3, r)) {
      if (stats != nullptr) stats->answer_from_light = true;
      return true;
    }
  }

  // All-heavy core: M1 = Rh x Sh x R, M2 = Sh x Th x S, multiply, join T.
  Relation m1 = Semijoin(Semijoin(r, pr.heavy), ps.heavy);
  Relation m2 = Semijoin(Semijoin(s, ps.heavy), pt.heavy);
  if (m1.empty() || m2.empty()) return false;
  ValueIndex xi(pr.heavy);
  ValueIndex yi(ps.heavy);
  ValueIndex zi(pt.heavy);
  if (stats != nullptr) {
    stats->mm_dim_x = xi.size();
    stats->mm_dim_y = yi.size();
    stats->mm_dim_z = zi.size();
  }
  // Boolean product over heavy X x heavy Y x heavy Z.
  if (kernel == MmKernel::kBoolean) {
    BitMatrix a(xi.size(), yi.size()), b(yi.size(), zi.size());
    for (size_t row = 0; row < m1.size(); ++row) {
      a.Set(xi.Find(m1.Get(row, kX)), yi.Find(m1.Get(row, kY)));
    }
    for (size_t row = 0; row < m2.size(); ++row) {
      b.Set(yi.Find(m2.Get(row, kY)), zi.Find(m2.Get(row, kZ)));
    }
    BitMatrix m = BitMatrix::Multiply(a, b);
    for (size_t row = 0; row < t.size(); ++row) {
      const int x = xi.Find(t.Get(row, kX));
      const int z = zi.Find(t.Get(row, kZ));
      if (x >= 0 && z >= 0 && m.Get(x, z)) return true;
    }
    return false;
  }
  Matrix a(xi.size(), yi.size()), b(yi.size(), zi.size());
  for (size_t row = 0; row < m1.size(); ++row) {
    a.At(xi.Find(m1.Get(row, kX)), yi.Find(m1.Get(row, kY))) = 1;
  }
  for (size_t row = 0; row < m2.size(); ++row) {
    b.At(yi.Find(m2.Get(row, kY)), zi.Find(m2.Get(row, kZ))) = 1;
  }
  Matrix m = kernel == MmKernel::kStrassen ? MultiplyRectangular(a, b)
                                           : MultiplyNaive(a, b);
  for (size_t row = 0; row < t.size(); ++row) {
    const int x = xi.Find(t.Get(row, kX));
    const int z = zi.Find(t.Get(row, kZ));
    if (x >= 0 && z >= 0 && m.At(x, z) != 0) return true;
  }
  return false;
}

int64_t TriangleCountMm(const Database& db, MmKernel kernel) {
  FMMSW_CHECK(db.relations.size() == 3);
  const Relation& r = db.relations[0];
  const Relation& s = db.relations[1];
  const Relation& t = db.relations[2];
  // Index all X and Z values of T plus those in R/S (counts need exact
  // dimensions, not just the heavy part).
  Relation xs = Union(Project(r, VarSet{kX}), Project(t, VarSet{kX}));
  Relation ys = Union(Project(r, VarSet{kY}), Project(s, VarSet{kY}));
  Relation zs = Union(Project(s, VarSet{kZ}), Project(t, VarSet{kZ}));
  ValueIndex xi(xs), yi(ys), zi(zs);
  Matrix a(xi.size(), yi.size()), b(yi.size(), zi.size());
  for (size_t row = 0; row < r.size(); ++row) {
    a.At(xi.Find(r.Get(row, kX)), yi.Find(r.Get(row, kY))) = 1;
  }
  for (size_t row = 0; row < s.size(); ++row) {
    b.At(yi.Find(s.Get(row, kY)), zi.Find(s.Get(row, kZ))) = 1;
  }
  Matrix m = kernel == MmKernel::kStrassen ? MultiplyRectangular(a, b)
                                           : MultiplyNaive(a, b);
  int64_t count = 0;
  for (size_t row = 0; row < t.size(); ++row) {
    count += m.At(xi.Find(t.Get(row, kX)), zi.Find(t.Get(row, kZ)));
  }
  return count;
}

}  // namespace fmmsw
