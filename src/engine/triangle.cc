#include "engine/triangle.h"

#include <cmath>

#include "core/exec_context.h"
#include "engine/wcoj.h"
#include "hypergraph/hypergraph.h"
#include "mm/matrix.h"
#include "relation/degree.h"
#include "relation/flat_index.h"
#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

namespace {

constexpr int kX = 0, kY = 1, kZ = 2;

/// Dense index over the values appearing in a unary relation (flat
/// open-addressing interner; no per-node allocation). The bulk build is
/// context-aware: large inputs are interned via the sharded parallel path
/// with ids still in first-occurrence order.
class ValueIndex {
 public:
  ValueIndex(const Relation& unary, ExecContext* ctx)
      : map_(unary, KeySpec(unary, unary.schema()), ctx) {}
  int Find(Value v) const { return map_.FindValue(v); }
  int size() const { return map_.size(); }

 private:
  FlatInterner map_;
};

}  // namespace

bool TriangleCombinatorial(const QueryInput& db, ExecContext* ctx) {
  return WcojBoolean(Hypergraph::Triangle(), db, ctx);
}

bool TriangleMm(const QueryInput& db, double omega, MmKernel kernel,
                TriangleStats* stats, ExecContext* ctx) {
  FMMSW_CHECK(db.relations.size() == 3);
  ExecContext& ec = ExecContext::Resolve(ctx);
  const Relation& r = db.relations[0];  // R(X,Y)
  const Relation& s = db.relations[1];  // S(Y,Z)
  const Relation& t = db.relations[2];  // T(X,Z)
  const double n = static_cast<double>(db.TotalSize());
  if (n == 0) return false;
  const int64_t delta = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(
             std::pow(n, (omega - 1.0) / (omega + 1.0)))));

  // Figure 1: three decomposition steps.
  auto pr = PartitionByDegree(r, VarSet{kY}, VarSet{kX}, delta, &ec);
  auto ps = PartitionByDegree(s, VarSet{kZ}, VarSet{kY}, delta, &ec);
  auto pt = PartitionByDegree(t, VarSet{kX}, VarSet{kZ}, delta, &ec);
  if (stats != nullptr) {
    stats->heavy_x = static_cast<int64_t>(pr.heavy.size());
    stats->heavy_y = static_cast<int64_t>(ps.heavy.size());
    stats->heavy_z = static_cast<int64_t>(pt.heavy.size());
  }

  // Light corners: Q_l1 = T join R_l (check S), Q_l2 = R join S_l (check
  // T), Q_l3 = S join T_l (check R). The checking semijoin is fused into
  // the join as an existence-only probe, so the N * Delta intermediate is
  // never materialized — with limit 1 the first surviving triangle stops
  // the enumeration.
  {
    const struct {
      const Relation* a;
      const Relation* b;
      const Relation* check;
    } light[3] = {{&t, &pr.light, &s}, {&r, &ps.light, &t},
                  {&s, &pt.light, &r}};
    for (const auto& q : light) {
      Relation witness =
          Join(*q.a, *q.b, {.exist_filter = q.check, .limit = 1}, &ec);
      if (stats != nullptr) {
        stats->light_join_tuples += static_cast<int64_t>(witness.size());
      }
      if (!witness.empty()) {
        if (stats != nullptr) stats->answer_from_light = true;
        return true;
      }
    }
  }

  // All-heavy core: M1 = Rh x Sh x R, M2 = Sh x Th x S, multiply, join T.
  Relation m1 = SemijoinAll(r, {&pr.heavy, &ps.heavy}, &ec);
  Relation m2 = SemijoinAll(s, {&ps.heavy, &pt.heavy}, &ec);
  if (m1.empty() || m2.empty()) return false;
  ValueIndex xi(pr.heavy, &ec);
  ValueIndex yi(ps.heavy, &ec);
  ValueIndex zi(pt.heavy, &ec);
  if (stats != nullptr) {
    stats->mm_dim_x = xi.size();
    stats->mm_dim_y = yi.size();
    stats->mm_dim_z = zi.size();
  }
  Bump(ec.stats().mm_products);
  // Boolean product over heavy X x heavy Y x heavy Z.
  if (kernel == MmKernel::kBoolean) {
    BitMatrix a(xi.size(), yi.size()), b(yi.size(), zi.size());
    for (size_t row = 0; row < m1.size(); ++row) {
      a.Set(xi.Find(m1.Get(row, kX)), yi.Find(m1.Get(row, kY)));
    }
    for (size_t row = 0; row < m2.size(); ++row) {
      b.Set(yi.Find(m2.Get(row, kY)), zi.Find(m2.Get(row, kZ)));
    }
    BitMatrix m = BitMatrix::Multiply(a, b, &ec);
    for (size_t row = 0; row < t.size(); ++row) {
      const int x = xi.Find(t.Get(row, kX));
      const int z = zi.Find(t.Get(row, kZ));
      if (x >= 0 && z >= 0 && m.Get(x, z)) return true;
    }
    return false;
  }
  Matrix a(xi.size(), yi.size()), b(yi.size(), zi.size());
  for (size_t row = 0; row < m1.size(); ++row) {
    a.At(xi.Find(m1.Get(row, kX)), yi.Find(m1.Get(row, kY))) = 1;
  }
  for (size_t row = 0; row < m2.size(); ++row) {
    b.At(yi.Find(m2.Get(row, kY)), zi.Find(m2.Get(row, kZ))) = 1;
  }
  Matrix m = CountingProduct(a, b, kernel, &ec);
  for (size_t row = 0; row < t.size(); ++row) {
    const int x = xi.Find(t.Get(row, kX));
    const int z = zi.Find(t.Get(row, kZ));
    if (x >= 0 && z >= 0 && m.At(x, z) != 0) return true;
  }
  return false;
}

int64_t TriangleCountMm(const QueryInput& db, MmKernel kernel,
                        ExecContext* ctx) {
  FMMSW_CHECK(db.relations.size() == 3);
  ExecContext& ec = ExecContext::Resolve(ctx);
  const Relation& r = db.relations[0];
  const Relation& s = db.relations[1];
  const Relation& t = db.relations[2];
  // Index all X and Z values of T plus those in R/S (counts need exact
  // dimensions, not just the heavy part).
  Relation xs = Union(Project(r, VarSet{kX}, &ec), Project(t, VarSet{kX}, &ec),
                      &ec);
  Relation ys = Union(Project(r, VarSet{kY}, &ec), Project(s, VarSet{kY}, &ec),
                      &ec);
  Relation zs = Union(Project(s, VarSet{kZ}, &ec), Project(t, VarSet{kZ}, &ec),
                      &ec);
  ValueIndex xi(xs, &ec), yi(ys, &ec), zi(zs, &ec);
  Matrix a(xi.size(), yi.size()), b(yi.size(), zi.size());
  for (size_t row = 0; row < r.size(); ++row) {
    a.At(xi.Find(r.Get(row, kX)), yi.Find(r.Get(row, kY))) = 1;
  }
  for (size_t row = 0; row < s.size(); ++row) {
    b.At(yi.Find(s.Get(row, kY)), zi.Find(s.Get(row, kZ))) = 1;
  }
  Bump(ec.stats().mm_products);
  Matrix m = CountingProduct(a, b, kernel, &ec);
  int64_t count = 0;
  for (size_t row = 0; row < t.size(); ++row) {
    count += m.At(xi.Find(t.Get(row, kX)), zi.Find(t.Get(row, kZ)));
  }
  return count;
}

}  // namespace fmmsw
