#ifndef FMMSW_ENGINE_WCOJ_H_
#define FMMSW_ENGINE_WCOJ_H_

/// \file
/// Worst-case optimal join ("for-loops", Section 1.1.1): a GenericJoin-
/// style backtracking search that instantiates variables one at a time,
/// intersecting the candidate values from every relation covering the
/// variable. Runs in O(N^{rho*(Q)}) data complexity and is the
/// combinatorial building block for bag evaluation inside TD plans.
///
/// Parallel execution: when the context's pool has more than one thread,
/// the first variable's candidate runs are expanded into tasks and
/// partitioned across the pool. Each worker recurses with its own range
/// stacks over the shared read-only tries; outputs are merged in task
/// order (and WcojJoin canonically sorts), so results are identical for
/// every thread count.

#include "core/exec_status.h"
#include "hypergraph/hypergraph.h"
#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

/// Evaluates the Boolean query: is the full natural join non-empty?
bool WcojBoolean(const Hypergraph& h, const QueryInput& db,
                 ExecContext* ctx = nullptr);

/// Computes the full join result projected onto `output_vars` (pass the
/// full vertex set for the complete join). Variables are instantiated in
/// increasing index order unless `order` is given. Output is canonically
/// sorted and deduplicated.
Relation WcojJoin(const Hypergraph& h, const QueryInput& db, VarSet output_vars,
                  const std::vector<int>* order = nullptr,
                  ExecContext* ctx = nullptr);

/// Counts the tuples of the full join without materializing projections.
int64_t WcojCount(const Hypergraph& h, const QueryInput& db,
                  ExecContext* ctx = nullptr);

/// \name Guarded entry points
/// Status-returning variants that arm `limits` on the context's guard for
/// the duration of the call (see RunGuarded in core/exec_context.h). On
/// any non-kOk status the output parameter is untouched, the guard is
/// disarmed and the context is immediately reusable. WcojCountGuarded
/// enforces deadline/memory/cancellation but not max_output_rows (a count
/// materializes nothing).
/// @{
ExecResult WcojBooleanGuarded(const Hypergraph& h, const QueryInput& db,
                              bool* result, ExecContext* ctx = nullptr,
                              const QueryLimits& limits = {});
ExecResult WcojJoinGuarded(const Hypergraph& h, const QueryInput& db,
                           VarSet output_vars, Relation* result,
                           const std::vector<int>* order = nullptr,
                           ExecContext* ctx = nullptr,
                           const QueryLimits& limits = {});
ExecResult WcojCountGuarded(const Hypergraph& h, const QueryInput& db,
                            int64_t* result, ExecContext* ctx = nullptr,
                            const QueryLimits& limits = {});
/// @}

}  // namespace fmmsw

#endif  // FMMSW_ENGINE_WCOJ_H_
