#include "relation/ops.h"

#include <vector>

#include "relation/flat_index.h"

namespace fmmsw {

Relation Join(const Relation& a, const Relation& b, const JoinOpts& opts) {
  // Nullary relations are Boolean: true = {()} joins as identity, false
  // annihilates.
  if (a.arity() == 0 || b.arity() == 0) {
    Relation out;
    if (a.arity() == 0) {
      out = a.empty() ? Relation(b.schema()) : b;
    } else {
      out = b.empty() ? Relation(a.schema()) : a;
    }
    if (opts.set_semantics) out.SortAndDedupe();
    return out;
  }
  const VarSet shared = a.schema() & b.schema();

  // Probe the smaller side's index with the larger side.
  const bool a_build = a.size() <= b.size();
  const Relation& build = a_build ? a : b;
  const Relation& probe = a_build ? b : a;
  const KeySpec kbuild(build, shared);
  const KeySpec kprobe(probe, shared);
  const FlatMultimap index(build, kbuild);

  const VarSet out_schema = a.schema() | b.schema();
  Relation out(out_schema);
  // Resolve, once, where each output column comes from: probe columns win
  // for shared variables (both sides agree on their values).
  struct ColSrc {
    int out_col;
    int src_col;
  };
  std::vector<ColSrc> from_probe, from_build;
  {
    const std::vector<int> out_vars = out_schema.Members();
    for (size_t i = 0; i < out_vars.size(); ++i) {
      const int v = out_vars[i];
      if (probe.schema().Contains(v)) {
        from_probe.push_back({static_cast<int>(i), probe.ColumnOf(v)});
      } else {
        from_build.push_back({static_cast<int>(i), build.ColumnOf(v)});
      }
    }
  }

  const bool exact = kbuild.exact();
  std::vector<Value> tuple(out_schema.size());
  out.Reserve(probe.size());
  for (size_t pr = 0; pr < probe.size(); ++pr) {
    const Value* prow = probe.Row(pr);
    const uint64_t key = kprobe.KeyOf(prow);
    int32_t br = index.First(key);
    if (br < 0) continue;
    for (const ColSrc& s : from_probe) tuple[s.out_col] = prow[s.src_col];
    for (; br >= 0; br = index.Next(br)) {
      const Value* brow = build.Row(br);
      if (!exact && !RowKeysEqual(prow, kprobe, brow, kbuild)) continue;
      for (const ColSrc& s : from_build) tuple[s.out_col] = brow[s.src_col];
      out.AddRow(tuple.data());
    }
  }
  if (opts.set_semantics) out.SortAndDedupe();
  return out;
}

namespace {

/// Shared kernel of Semijoin/Antijoin: keep rows of `a` with
/// (keep_matching == has a join partner in b).
Relation FilterByMatch(const Relation& a, const Relation& b,
                       bool keep_matching) {
  const VarSet shared = a.schema() & b.schema();
  const KeySpec ka(a, shared);
  const KeySpec kb(b, shared);
  const FlatMultimap index(b, kb);
  const bool exact = kb.exact();
  Relation out(a.schema());
  for (size_t r = 0; r < a.size(); ++r) {
    const Value* arow = a.Row(r);
    int32_t br = index.First(ka.KeyOf(arow));
    bool match = br >= 0;
    if (!exact) {
      match = false;
      for (; br >= 0 && !match; br = index.Next(br)) {
        match = RowKeysEqual(arow, ka, b.Row(br), kb);
      }
    }
    if (match == keep_matching) out.AddRow(arow);
  }
  return out;
}

}  // namespace

Relation Semijoin(const Relation& a, const Relation& b) {
  if (b.arity() == 0) return b.empty() ? Relation(a.schema()) : a;
  if (a.arity() == 0) {
    return (!a.empty() && !b.empty()) ? a : Relation(a.schema());
  }
  return FilterByMatch(a, b, /*keep_matching=*/true);
}

Relation Antijoin(const Relation& a, const Relation& b) {
  if (b.arity() == 0) return b.empty() ? a : Relation(a.schema());
  if (a.arity() == 0) {
    return (!a.empty() && b.empty()) ? a : Relation(a.schema());
  }
  return FilterByMatch(a, b, /*keep_matching=*/false);
}

Relation Project(const Relation& a, VarSet keep) {
  const VarSet schema = a.schema() & keep;
  Relation out(schema);
  if (schema.empty()) {
    // Existence test: non-empty input projects to {()}.
    if (!a.empty()) out.Add({});
    return out;
  }
  const KeySpec spec(a, schema);
  const std::vector<int>& cols = spec.cols();
  Value tuple[kMaxVars];
  if (spec.exact()) {
    // Narrow output (<= 2 columns): dedupe on the fly with a flat set of
    // the packed keys — no sort pass over the materialized duplicates.
    FlatSet seen(a.size());
    for (size_t r = 0; r < a.size(); ++r) {
      const Value* row = a.Row(r);
      if (!seen.Insert(spec.KeyOf(row))) continue;
      for (size_t i = 0; i < cols.size(); ++i) tuple[i] = row[cols[i]];
      out.AddRow(tuple);
    }
    return out;
  }
  out.Reserve(a.size());
  for (size_t r = 0; r < a.size(); ++r) {
    const Value* row = a.Row(r);
    for (size_t i = 0; i < cols.size(); ++i) tuple[i] = row[cols[i]];
    out.AddRow(tuple);
  }
  out.SortAndDedupe();
  return out;
}

Relation SelectEq(const Relation& a, int var, Value value) {
  Relation out(a.schema());
  const int col = a.ColumnOf(var);
  for (size_t r = 0; r < a.size(); ++r) {
    const Value* row = a.Row(r);
    if (row[col] == value) out.AddRow(row);
  }
  return out;
}

Relation Intersect(const Relation& a, const Relation& b) {
  FMMSW_CHECK(a.schema() == b.schema());
  return Semijoin(a, b);
}

Relation Union(const Relation& a, const Relation& b) {
  FMMSW_CHECK(a.schema() == b.schema());
  if (a.arity() == 0) {
    Relation out(a.schema());
    if (!a.empty() || !b.empty()) out.Add({});
    return out;
  }
  Relation out(a.schema());
  out.Reserve(a.size() + b.size());
  if (!a.empty()) out.AddRows(a.Row(0), a.size());
  if (!b.empty()) out.AddRows(b.Row(0), b.size());
  out.SortAndDedupe();
  return out;
}

}  // namespace fmmsw
