#include "relation/ops.h"

#include <vector>

#include "core/exec_context.h"
#include "relation/flat_index.h"

namespace fmmsw {

namespace {

/// Resolves the effective fused-filter list: nullary filters collapse to
/// Boolean constants (an empty one annihilates — reported via the return
/// value — a non-empty one is a no-op).
bool CollectFilters(const JoinOpts& opts,
                    std::vector<const Relation*>* filters) {
  if (opts.exist_filter != nullptr) filters->push_back(opts.exist_filter);
  for (const Relation* f : opts.exist_filters) {
    if (f != nullptr) filters->push_back(f);
  }
  for (size_t i = 0; i < filters->size();) {
    const Relation* f = (*filters)[i];
    if (f->arity() == 0) {
      if (f->empty()) return false;  // "false" filter: nothing survives
      filters->erase(filters->begin() + i);
    } else {
      ++i;
    }
  }
  return true;
}

}  // namespace

Relation Join(const Relation& a, const Relation& b, const JoinOpts& opts,
              ExecContext* ctx) {
  ExecStats& st = ExecContext::Resolve(ctx).stats();
  Bump(st.join_calls);
  std::vector<const Relation*> filters;
  const bool satisfiable = CollectFilters(opts, &filters);
  if (!filters.empty() || opts.exist_filter != nullptr) {
    Bump(st.fused_joins);
  }

  // Nullary relations are Boolean: true = {()} joins as identity, false
  // annihilates.
  if (a.arity() == 0 || b.arity() == 0) {
    Relation out;
    if (a.arity() == 0) {
      out = a.empty() ? Relation(b.schema()) : b;
    } else {
      out = b.empty() ? Relation(a.schema()) : a;
    }
    if (!satisfiable) return Relation(out.schema());
    // Degenerate path: fall back to the semijoin chain the fused filters
    // are contracted to match.
    for (const Relation* f : filters) out = Semijoin(out, *f, ctx);
    if (opts.set_semantics) out.SortAndDedupe(ctx);
    Bump(st.join_output_tuples, static_cast<int64_t>(out.size()));
    return out;
  }
  const VarSet shared = a.schema() & b.schema();
  const VarSet out_schema = a.schema() | b.schema();
  Relation out(out_schema);
  // Empty input or unsatisfiable filter: no pair can survive — skip every
  // index build.
  if (!satisfiable || a.empty() || b.empty()) return out;

  // Probe the smaller side's index with the larger side.
  const bool a_build = a.size() <= b.size();
  const Relation& build = a_build ? a : b;
  const Relation& probe = a_build ? b : a;
  const KeySpec kbuild(build, shared);
  const KeySpec kprobe(probe, shared);
  const FlatMultimap index(build, kbuild, ctx);

  // Fused existence-only probes, keyed against the output-tuple layout.
  std::vector<ExistProbe> probes;
  probes.reserve(filters.size());
  for (const Relation* f : filters) probes.emplace_back(out, *f, ctx);

  // Resolve, once, where each output column comes from: probe columns win
  // for shared variables (both sides agree on their values).
  struct ColSrc {
    int out_col;
    int src_col;
  };
  std::vector<ColSrc> from_probe, from_build;
  {
    const std::vector<int> out_vars = out_schema.Members();
    for (size_t i = 0; i < out_vars.size(); ++i) {
      const int v = out_vars[i];
      if (probe.schema().Contains(v)) {
        from_probe.push_back({static_cast<int>(i), probe.ColumnOf(v)});
      } else {
        from_build.push_back({static_cast<int>(i), build.ColumnOf(v)});
      }
    }
  }

  const bool exact = kbuild.exact();
  int64_t probed = 0, dropped = 0;
  size_t emitted = 0;
  std::vector<Value> tuple(out_schema.size());
  out.Reserve(probes.empty() ? probe.size() : 0);
  // Guardrails: poll every 1024 probe rows and flush output accounting
  // (row limit + memory budget) in the same batches; the charge is
  // released when `charge` unwinds or the result is handed back.
  QueryGuard& guard = ExecContext::Resolve(ctx).guard();
  MemCharge charge(ExecContext::Resolve(ctx));
  const int64_t row_bytes =
      static_cast<int64_t>(out_schema.size()) * sizeof(Value);
  constexpr size_t kEmitBatch = 1024;
  size_t acct = 0;
  for (size_t pr = 0; pr < probe.size() && !(opts.limit > 0 &&
                                             emitted >= opts.limit);
       ++pr) {
    if ((pr & 1023) == 0) guard.Poll(FaultSite::kOps);
    const Value* prow = probe.Row(pr);
    const uint64_t key = kprobe.KeyOf(prow);
    int32_t br = index.First(key);
    if (br < 0) continue;
    for (const ColSrc& s : from_probe) tuple[s.out_col] = prow[s.src_col];
    for (; br >= 0; br = index.Next(br)) {
      const Value* brow = build.Row(br);
      if (!exact && !RowKeysEqual(prow, kprobe, brow, kbuild)) continue;
      for (const ColSrc& s : from_build) tuple[s.out_col] = brow[s.src_col];
      if (!probes.empty()) {
        ++probed;
        bool pass = true;
        for (const ExistProbe& p : probes) {
          if (!p.Contains(tuple.data())) {
            pass = false;
            break;
          }
        }
        if (!pass) {
          ++dropped;
          continue;
        }
      }
      out.AddRow(tuple.data());
      if ((++acct & (kEmitBatch - 1)) == 0) {
        guard.CountRows(static_cast<int64_t>(kEmitBatch));
        charge.Add(static_cast<int64_t>(kEmitBatch) * row_bytes);
      }
      if (opts.limit > 0 && ++emitted >= opts.limit) break;
    }
  }
  if (!probes.empty()) {
    Bump(st.fused_probe_tuples, probed);
    Bump(st.fused_drop_tuples, dropped);
    Bump(st.fused_emit_tuples, probed - dropped);
  }
  Bump(st.join_output_tuples, static_cast<int64_t>(out.size()));
  if (opts.set_semantics) out.SortAndDedupe(ctx);
  return out;
}

namespace {

/// Shared kernel of Semijoin/Antijoin: keep rows of `a` with
/// (keep_matching == has a join partner in b).
Relation FilterByMatch(const Relation& a, const Relation& b,
                       bool keep_matching, ExecContext* ctx) {
  if (a.empty()) return Relation(a.schema());
  if (b.empty()) return keep_matching ? Relation(a.schema()) : a;
  const VarSet shared = a.schema() & b.schema();
  const KeySpec ka(a, shared);
  const KeySpec kb(b, shared);
  const FlatMultimap index(b, kb, ctx);
  const bool exact = kb.exact();
  Relation out(a.schema());
  QueryGuard& guard = ExecContext::Resolve(ctx).guard();
  for (size_t r = 0; r < a.size(); ++r) {
    if ((r & 1023) == 0) guard.Poll(FaultSite::kOps);
    const Value* arow = a.Row(r);
    int32_t br = index.First(ka.KeyOf(arow));
    bool match = br >= 0;
    if (!exact) {
      match = false;
      for (; br >= 0 && !match; br = index.Next(br)) {
        match = RowKeysEqual(arow, ka, b.Row(br), kb);
      }
    }
    if (match == keep_matching) out.AddRow(arow);
  }
  return out;
}

}  // namespace

Relation Semijoin(const Relation& a, const Relation& b, ExecContext* ctx) {
  Bump(ExecContext::Resolve(ctx).stats().semijoin_calls);
  if (b.arity() == 0) return b.empty() ? Relation(a.schema()) : a;
  if (a.arity() == 0) {
    return (!a.empty() && !b.empty()) ? a : Relation(a.schema());
  }
  return FilterByMatch(a, b, /*keep_matching=*/true, ctx);
}

Relation SemijoinAll(const Relation& a,
                     const std::vector<const Relation*>& bs,
                     ExecContext* ctx) {
  ExecStats& st = ExecContext::Resolve(ctx).stats();
  Bump(st.semijoin_all_calls);
  // Nullary filters are Boolean constants; an empty one annihilates.
  std::vector<const Relation*> filters;
  filters.reserve(bs.size());
  for (const Relation* b : bs) {
    if (b->arity() == 0) {
      if (b->empty()) return Relation(a.schema());
    } else {
      filters.push_back(b);
    }
  }
  if (a.arity() == 0) {
    if (a.empty()) return Relation(a.schema());
    for (const Relation* b : filters) {
      if (b->empty()) return Relation(a.schema());
    }
    return a;
  }
  if (filters.empty()) return a;
  if (a.empty()) return Relation(a.schema());
  for (const Relation* b : filters) {
    // An empty filter rejects everything; skip the index builds.
    if (b->empty()) return Relation(a.schema());
  }
  std::vector<ExistProbe> probes;
  probes.reserve(filters.size());
  for (const Relation* b : filters) probes.emplace_back(a, *b, ctx);
  Relation out(a.schema());
  QueryGuard& guard = ExecContext::Resolve(ctx).guard();
  for (size_t r = 0; r < a.size(); ++r) {
    if ((r & 1023) == 0) guard.Poll(FaultSite::kOps);
    const Value* arow = a.Row(r);
    bool pass = true;
    for (const ExistProbe& p : probes) {
      if (!p.Contains(arow)) {
        pass = false;
        break;
      }
    }
    if (pass) out.AddRow(arow);
  }
  return out;
}

Relation SemijoinAll(const Relation& a,
                     std::initializer_list<const Relation*> bs,
                     ExecContext* ctx) {
  return SemijoinAll(a, std::vector<const Relation*>(bs), ctx);
}

Relation Antijoin(const Relation& a, const Relation& b, ExecContext* ctx) {
  Bump(ExecContext::Resolve(ctx).stats().antijoin_calls);
  if (b.arity() == 0) return b.empty() ? a : Relation(a.schema());
  if (a.arity() == 0) {
    return (!a.empty() && b.empty()) ? a : Relation(a.schema());
  }
  return FilterByMatch(a, b, /*keep_matching=*/false, ctx);
}

Relation Project(const Relation& a, VarSet keep, ExecContext* ctx) {
  Bump(ExecContext::Resolve(ctx).stats().project_calls);
  const VarSet schema = a.schema() & keep;
  Relation out(schema);
  if (schema.empty()) {
    // Existence test: non-empty input projects to {()}.
    if (!a.empty()) out.Add({});
    return out;
  }
  const KeySpec spec(a, schema);
  const std::vector<int>& cols = spec.cols();
  Value tuple[kMaxVars];
  if (spec.exact()) {
    // Narrow output (<= 2 columns): dedupe on the fly with a flat set of
    // the packed keys — no sort pass over the materialized duplicates.
    // Reserved for the input row count (>= distinct keys), so the set
    // never grow-rehashes mid-insert (asserted via grow_rehashes() in
    // relation_test).
    FlatSet seen;
    seen.Reserve(a.size());
    for (size_t r = 0; r < a.size(); ++r) {
      const Value* row = a.Row(r);
      if (!seen.Insert(spec.KeyOf(row))) continue;
      for (size_t i = 0; i < cols.size(); ++i) tuple[i] = row[cols[i]];
      out.AddRow(tuple);
    }
    return out;
  }
  out.Reserve(a.size());
  for (size_t r = 0; r < a.size(); ++r) {
    const Value* row = a.Row(r);
    for (size_t i = 0; i < cols.size(); ++i) tuple[i] = row[cols[i]];
    out.AddRow(tuple);
  }
  out.SortAndDedupe(ctx);
  return out;
}

Relation SelectEq(const Relation& a, int var, Value value, ExecContext* ctx) {
  Bump(ExecContext::Resolve(ctx).stats().select_calls);
  Relation out(a.schema());
  const int col = a.ColumnOf(var);
  for (size_t r = 0; r < a.size(); ++r) {
    const Value* row = a.Row(r);
    if (row[col] == value) out.AddRow(row);
  }
  return out;
}

Relation Intersect(const Relation& a, const Relation& b, ExecContext* ctx) {
  FMMSW_CHECK(a.schema() == b.schema());
  return Semijoin(a, b, ctx);
}

Relation Union(const Relation& a, const Relation& b, ExecContext* ctx) {
  FMMSW_CHECK(a.schema() == b.schema());
  Bump(ExecContext::Resolve(ctx).stats().union_calls);
  if (a.arity() == 0) {
    Relation out(a.schema());
    if (!a.empty() || !b.empty()) out.Add({});
    return out;
  }
  Relation out(a.schema());
  out.Reserve(a.size() + b.size());
  if (!a.empty()) out.AddRows(a.Row(0), a.size());
  if (!b.empty()) out.AddRows(b.Row(0), b.size());
  out.SortAndDedupe(ctx);
  return out;
}

}  // namespace fmmsw
