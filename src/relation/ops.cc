#include "relation/ops.h"

#include <unordered_map>
#include <vector>

namespace fmmsw {

namespace {

/// Hash of the values of `vars` (a subset of r's schema) in row `row`.
uint64_t KeyHash(const Relation& r, size_t row, const std::vector<int>& cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : cols) {
    const uint64_t v = static_cast<uint32_t>(r.Row(row)[c]);
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool KeysEqual(const Relation& a, size_t ra, const std::vector<int>& ca,
               const Relation& b, size_t rb, const std::vector<int>& cb) {
  for (size_t i = 0; i < ca.size(); ++i) {
    if (a.Row(ra)[ca[i]] != b.Row(rb)[cb[i]]) return false;
  }
  return true;
}

/// Column indices of the given query variables in r's schema.
std::vector<int> ColumnsOf(const Relation& r, const std::vector<int>& vars) {
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (int v : vars) cols.push_back(r.ColumnOf(v));
  return cols;
}

/// Builds a hash index over the shared-variable key of `r`.
std::unordered_multimap<uint64_t, size_t> BuildIndex(
    const Relation& r, const std::vector<int>& cols) {
  std::unordered_multimap<uint64_t, size_t> index;
  index.reserve(r.size() * 2);
  for (size_t row = 0; row < r.size(); ++row) {
    index.emplace(KeyHash(r, row, cols), row);
  }
  return index;
}

}  // namespace

Relation Join(const Relation& a, const Relation& b) {
  // Nullary relations are Boolean: true = {()} joins as identity, false
  // annihilates.
  if (a.arity() == 0) return a.empty() ? Relation(b.schema()) : b;
  if (b.arity() == 0) return b.empty() ? Relation(a.schema()) : a;
  const VarSet shared = a.schema() & b.schema();
  const std::vector<int> shared_vars = shared.Members();
  const std::vector<int> ca = ColumnsOf(a, shared_vars);
  const std::vector<int> cb = ColumnsOf(b, shared_vars);

  const VarSet out_schema = a.schema() | b.schema();
  Relation out(out_schema);
  const std::vector<int> out_vars = out_schema.Members();

  // Probe the smaller side's index with the larger side.
  const bool a_build = a.size() <= b.size();
  const Relation& build = a_build ? a : b;
  const Relation& probe = a_build ? b : a;
  const std::vector<int>& cbuild = a_build ? ca : cb;
  const std::vector<int>& cprobe = a_build ? cb : ca;
  auto index = BuildIndex(build, cbuild);

  std::vector<Value> tuple(out_vars.size());
  for (size_t pr = 0; pr < probe.size(); ++pr) {
    auto [lo, hi] = index.equal_range(KeyHash(probe, pr, cprobe));
    for (auto it = lo; it != hi; ++it) {
      const size_t br = it->second;
      if (!KeysEqual(probe, pr, cprobe, build, br, cbuild)) continue;
      for (size_t i = 0; i < out_vars.size(); ++i) {
        const int v = out_vars[i];
        if (probe.schema().Contains(v)) {
          tuple[i] = probe.Row(pr)[probe.ColumnOf(v)];
        } else {
          tuple[i] = build.Row(br)[build.ColumnOf(v)];
        }
      }
      out.Add(tuple);
    }
  }
  out.SortAndDedupe();
  return out;
}

Relation Semijoin(const Relation& a, const Relation& b) {
  if (b.arity() == 0) return b.empty() ? Relation(a.schema()) : a;
  if (a.arity() == 0) {
    return (!a.empty() && !b.empty()) ? a : Relation(a.schema());
  }
  const VarSet shared = a.schema() & b.schema();
  const std::vector<int> shared_vars = shared.Members();
  const std::vector<int> ca = ColumnsOf(a, shared_vars);
  const std::vector<int> cb = ColumnsOf(b, shared_vars);
  auto index = BuildIndex(b, cb);
  Relation out(a.schema());
  std::vector<Value> tuple(a.arity());
  for (size_t r = 0; r < a.size(); ++r) {
    auto [lo, hi] = index.equal_range(KeyHash(a, r, ca));
    bool match = false;
    for (auto it = lo; it != hi && !match; ++it) {
      match = KeysEqual(a, r, ca, b, it->second, cb);
    }
    if (match) {
      tuple.assign(a.Row(r), a.Row(r) + a.arity());
      out.Add(tuple);
    }
  }
  return out;
}

Relation Antijoin(const Relation& a, const Relation& b) {
  if (b.arity() == 0) return b.empty() ? a : Relation(a.schema());
  if (a.arity() == 0) {
    return (!a.empty() && b.empty()) ? a : Relation(a.schema());
  }
  const VarSet shared = a.schema() & b.schema();
  const std::vector<int> shared_vars = shared.Members();
  const std::vector<int> ca = ColumnsOf(a, shared_vars);
  const std::vector<int> cb = ColumnsOf(b, shared_vars);
  auto index = BuildIndex(b, cb);
  Relation out(a.schema());
  std::vector<Value> tuple(a.arity());
  for (size_t r = 0; r < a.size(); ++r) {
    auto [lo, hi] = index.equal_range(KeyHash(a, r, ca));
    bool match = false;
    for (auto it = lo; it != hi && !match; ++it) {
      match = KeysEqual(a, r, ca, b, it->second, cb);
    }
    if (!match) {
      tuple.assign(a.Row(r), a.Row(r) + a.arity());
      out.Add(tuple);
    }
  }
  return out;
}

Relation Project(const Relation& a, VarSet keep) {
  const VarSet schema = a.schema() & keep;
  Relation out(schema);
  const std::vector<int> cols = ColumnsOf(a, schema.Members());
  std::vector<Value> tuple(cols.size());
  for (size_t r = 0; r < a.size(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) tuple[i] = a.Row(r)[cols[i]];
    out.Add(tuple);
  }
  out.SortAndDedupe();
  return out;
}

Relation SelectEq(const Relation& a, int var, Value value) {
  Relation out(a.schema());
  const int col = a.ColumnOf(var);
  std::vector<Value> tuple(a.arity());
  for (size_t r = 0; r < a.size(); ++r) {
    if (a.Row(r)[col] != value) continue;
    tuple.assign(a.Row(r), a.Row(r) + a.arity());
    out.Add(tuple);
  }
  return out;
}

Relation Intersect(const Relation& a, const Relation& b) {
  FMMSW_CHECK(a.schema() == b.schema());
  return Semijoin(a, b);
}

Relation Union(const Relation& a, const Relation& b) {
  FMMSW_CHECK(a.schema() == b.schema());
  Relation out(a.schema());
  std::vector<Value> tuple(a.arity());
  for (size_t r = 0; r < a.size(); ++r) {
    tuple.assign(a.Row(r), a.Row(r) + a.arity());
    out.Add(tuple);
  }
  for (size_t r = 0; r < b.size(); ++r) {
    tuple.assign(b.Row(r), b.Row(r) + b.arity());
    out.Add(tuple);
  }
  out.SortAndDedupe();
  return out;
}

}  // namespace fmmsw
