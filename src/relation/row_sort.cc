#include "relation/row_sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "core/exec_context.h"
#include "util/radix.h"
#include "util/stopwatch.h"

namespace fmmsw {

namespace {

/// Packs the `cols` projection of each row into records of `out_stride`
/// words: col 2w in the high half of word w, col 2w+1 in the low half,
/// odd-arity pad zero (constant across records, so its bytes cost no
/// radix pass). Payload words past the key are left for the caller.
void PackKeys(const Value* data, size_t rows, int row_stride,
              const int* cols, int ncols, uint64_t* out, int out_stride) {
  const int words = PackedKeyWords(ncols);
  for (size_t i = 0; i < rows; ++i) {
    const Value* row = data + i * row_stride;
    uint64_t* rec = out + i * out_stride;
    for (int w = 0; w < words; ++w) {
      const int c1 = 2 * w + 1;
      uint64_t k = static_cast<uint64_t>(BiasValue(row[cols[2 * w]])) << 32;
      if (c1 < ncols) k |= BiasValue(row[cols[c1]]);
      rec[w] = k;
    }
  }
}

/// Inverse of PackKeys' key layout: writes each record's ncols values
/// (projection order) to consecutive output rows.
void UnpackKeys(const uint64_t* recs, size_t rows, int stride, int ncols,
                Value* out) {
  for (size_t i = 0; i < rows; ++i) {
    const uint64_t* rec = recs + i * stride;
    Value* row = out + i * static_cast<size_t>(ncols);
    for (int j = 0; j < ncols; ++j) {
      const uint64_t w = rec[j >> 1];
      row[j] = UnbiasValue(
          static_cast<uint32_t>((j & 1) ? w : (w >> 32)));
    }
  }
}

/// Arena-or-local storage for the packed records and the radix ping-pong
/// buffer. Callers inside parallel regions (or two threads sharing a
/// context) lose the atomic acquire and fall back to local vectors.
struct SortBuffers {
  explicit SortBuffers(ExecContext& ec)
      : arena(ec.scratch().TryAcquire() ? &ec.scratch() : nullptr) {}
  ~SortBuffers() {
    if (arena != nullptr) arena->Release();
  }
  SortBuffers(const SortBuffers&) = delete;
  SortBuffers& operator=(const SortBuffers&) = delete;

  std::vector<uint64_t>& recs() {
    return arena != nullptr ? arena->u64() : local_recs;
  }
  std::vector<uint64_t>& scratch() {
    return arena != nullptr ? arena->u64b() : local_scratch;
  }

  ScratchArena* arena;
  std::vector<uint64_t> local_recs, local_scratch;
};

void NoteSort(ExecContext& ec, size_t rows, bool parallel,
              const Stopwatch& sw) {
  ExecStats& st = ec.stats();
  Bump(st.sort_calls);
  Bump(st.sort_rows, static_cast<int64_t>(rows));
  if (parallel) Bump(st.sort_parallel);
  Bump(st.sort_ns, static_cast<int64_t>(sw.Seconds() * 1e9));
}

}  // namespace

void SortProjectedRows(const Relation& r, const std::vector<int>& cols,
                       ExecContext& ec, std::vector<Value>* out) {
  const size_t n = r.size();
  const int ncols = static_cast<int>(cols.size());
  out->resize(n * ncols);
  if (n == 0 || ncols == 0) return;
  Stopwatch sw;
  const int words = PackedKeyWords(ncols);
  SortBuffers bufs(ec);
  // Records + radix ping-pong scratch, the sort layer's big transients.
  MemCharge charge(ec, static_cast<int64_t>(2 * n * words) * 8);
  std::vector<uint64_t>& recs = bufs.recs();
  recs.resize(n * words);
  PackKeys(r.Row(0), n, r.arity(), cols.data(), ncols, recs.data(), words);
  const bool parallel = RadixSortRecords(recs.data(), n, words, words,
                                         bufs.scratch(), &ec.pool(),
                                         &ec.guard());
  UnpackKeys(recs.data(), n, words, ncols, out->data());
  NoteSort(ec, n, parallel, sw);
}

void SortedRowOrder(const Relation& r, const std::vector<int>& cols,
                    ExecContext& ec, std::vector<uint32_t>* order) {
  const size_t n = r.size();
  order->resize(n);
  if (cols.empty() || n == 0) {
    std::iota(order->begin(), order->end(), 0u);
    return;
  }
  Stopwatch sw;
  const int ncols = static_cast<int>(cols.size());
  const int words = PackedKeyWords(ncols);
  const int stride = words + 1;  // row index rides as a payload word
  SortBuffers bufs(ec);
  MemCharge charge(ec, static_cast<int64_t>(2 * n * stride) * 8);
  std::vector<uint64_t>& recs = bufs.recs();
  recs.resize(n * stride);
  PackKeys(r.Row(0), n, r.arity(), cols.data(), ncols, recs.data(), stride);
  for (size_t i = 0; i < n; ++i) recs[i * stride + words] = i;
  const bool parallel = RadixSortRecords(recs.data(), n, stride, words,
                                         bufs.scratch(), &ec.pool(),
                                         &ec.guard());
  for (size_t i = 0; i < n; ++i) {
    (*order)[i] = static_cast<uint32_t>(recs[i * stride + words]);
  }
  NoteSort(ec, n, parallel, sw);
}

void SortDedupeRowBuffer(std::vector<Value>* data, int arity,
                         ExecContext& ec) {
  FMMSW_DCHECK(arity > 0);
  const size_t n = data->size() / arity;
  if (n == 0) return;
  Stopwatch sw;
  // Identity column permutation: dedupe sorts whole rows as stored.
  int cols[kMaxVars];
  for (int c = 0; c < arity; ++c) cols[c] = c;
  const int words = PackedKeyWords(arity);
  SortBuffers bufs(ec);
  MemCharge charge(ec, static_cast<int64_t>(2 * n * words) * 8);
  std::vector<uint64_t>& recs = bufs.recs();
  recs.resize(n * words);
  PackKeys(data->data(), n, arity, cols, arity, recs.data(), words);
  const bool parallel = RadixSortRecords(recs.data(), n, words, words,
                                         bufs.scratch(), &ec.pool(),
                                         &ec.guard());
  // The packing is injective per layout, so equal packed words == equal
  // rows: dedupe adjacent records, then unpack the survivors once.
  size_t unique = 1;
  for (size_t i = 1; i < n; ++i) {
    if (std::memcmp(&recs[i * words], &recs[(unique - 1) * words],
                    sizeof(uint64_t) * words) != 0) {
      if (unique != i) {
        std::memcpy(&recs[unique * words], &recs[i * words],
                    sizeof(uint64_t) * words);
      }
      ++unique;
    }
  }
  data->resize(unique * arity);
  UnpackKeys(recs.data(), unique, words, arity, data->data());
  NoteSort(ec, n, parallel, sw);
}

}  // namespace fmmsw
