#include "relation/flat_index.h"

#include <atomic>
#include <utility>

#include "core/exec_context.h"
#include "util/radix.h"
#include "util/stopwatch.h"

namespace fmmsw {

namespace {

using flat_internal::kShardBits;
using flat_internal::kShardedBuildMinRows;
using flat_internal::MixKey;
using flat_internal::TableCapacity;

constexpr size_t kShards = size_t{1} << kShardBits;

struct ShardEntry {
  uint64_t key;
  uint32_t row;
};

/// Phase 1 of the sharded builds: workers scan disjoint row ranges
/// (chunks) of `r` into per-(chunk, shard) buffers; a row's shard is the
/// top kShardBits bits of MixKey of its packed key. Chunk boundaries are
/// fixed row ranges claimed through an atomic counter, so the work is
/// balanced across however many workers actually show up (one, when the
/// pool is contended by an enclosing parallel region) and concatenating
/// chunks 0..C-1 for a shard always yields ascending row order.
void PartitionRows(const Relation& r, const KeySpec& spec, ExecContext& ec,
                   size_t nchunks,
                   std::vector<std::vector<ShardEntry>>* bufs) {
  const size_t n = r.size();
  bufs->assign(nchunks * kShards, {});
  const int col = spec.arity() == 1 ? spec.cols()[0] : -1;
  std::atomic<size_t> next_chunk(0);
  QueryGuard& guard = ec.guard();
  ec.pool().Run([&](int) {
    while (true) {
      // relaxed: work-claim RMW — each chunk claimed exactly once; the
      // scanned buffers are published by the pool's fan-in.
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      guard.Poll(FaultSite::kIndex);
      std::vector<ShardEntry>* chunk_bufs = bufs->data() + c * kShards;
      const size_t begin = c * n / nchunks;
      const size_t end = (c + 1) * n / nchunks;
      for (size_t row = begin; row < end; ++row) {
        const uint64_t key =
            col >= 0 ? static_cast<uint32_t>(r.Row(row)[col])
                     : spec.KeyOf(r.Row(row));
        const size_t s = MixKey(key) >> (64 - kShardBits);
        chunk_bufs[s].push_back({key, static_cast<uint32_t>(row)});
      }
    }
  });
}

/// Lays out one contiguous sub-table per shard, each sized for its own
/// entry count at load factor <= 0.5 (so regional probing cannot
/// overflow). Returns the total slot count.
size_t LayoutShards(const std::vector<std::vector<ShardEntry>>& bufs,
                    size_t nchunks, std::vector<uint32_t>* shard_off,
                    std::vector<uint32_t>* shard_mask) {
  shard_off->resize(kShards);
  shard_mask->resize(kShards);
  uint64_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    size_t count = 0;
    for (size_t c = 0; c < nchunks; ++c) {
      count += bufs[c * kShards + s].size();
    }
    const uint32_t cap = TableCapacity(count);
    (*shard_off)[s] = static_cast<uint32_t>(total);
    (*shard_mask)[s] = cap - 1;
    total += cap;
  }
  FMMSW_CHECK(total < (uint64_t{1} << 32) && "sharded index slot overflow");
  return static_cast<size_t>(total);
}

}  // namespace

FlatMultimap::FlatMultimap(const Relation& r, const KeySpec& spec,
                           ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  ExecStats& st = ec.stats();
  Stopwatch sw;
  // pool().busy(): inside an enclosing parallel region the sharded build
  // would run its phases on one worker — strictly more work than the
  // serial scan — so it degrades to BuildSerial up front.
  if (ec.threads() > 1 && !ec.pool().busy() &&
      r.size() >= kShardedBuildMinRows) {
    BuildSharded(r, spec, ec);
    Bump(st.index_sharded_builds);
  } else {
    BuildSerial(r, spec);
  }
  Bump(st.index_builds);
  Bump(st.index_build_rows, static_cast<int64_t>(r.size()));
  Bump(st.index_build_ns, static_cast<int64_t>(sw.Seconds() * 1e9));
}

void FlatMultimap::BuildSharded(const Relation& r, const KeySpec& spec,
                                ExecContext& ec) {
  const size_t n = r.size();
  const size_t nchunks = static_cast<size_t>(ec.threads()) * 2;
  std::vector<std::vector<ShardEntry>> bufs;
  PartitionRows(r, spec, ec, nchunks, &bufs);
  shard_bits_ = kShardBits;
  const size_t total = LayoutShards(bufs, nchunks, &shard_off_, &shard_mask_);
  // Slot arrays + chain array: the build's dominant allocation (the
  // partition buffers hold the same n entries at 12 bytes each).
  MemCharge charge(ec, static_cast<int64_t>(total) * 12 +
                           static_cast<int64_t>(n) * 16);
  slot_key_.resize(total);
  slot_head_.assign(total, -1);
  next_.resize(n);
  // Phase 2: workers claim whole shards and write their sub-tables with
  // no synchronization — regions are disjoint and a key's rows all live
  // in one shard. Inserting in ascending row order with head prepending
  // keeps every equal-key chain in reverse row order, exactly like the
  // serial build, for any worker count.
  std::atomic<size_t> next_shard(0);
  QueryGuard& guard = ec.guard();
  ec.pool().Run([&](int) {
    while (true) {
      // relaxed: work-claim RMW — each shard claimed exactly once; the
      // disjoint sub-tables are published by the pool's fan-in.
      const size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (s >= kShards) return;
      guard.Poll(FaultSite::kIndex);
      const size_t base = shard_off_[s];
      const uint32_t m = shard_mask_[s];
      for (size_t c = 0; c < nchunks; ++c) {
        for (const ShardEntry& e : bufs[c * kShards + s]) {
          const int32_t row = static_cast<int32_t>(e.row);
          uint32_t i = static_cast<uint32_t>(MixKey(e.key)) & m;
          while (true) {
            const size_t slot = base + i;
            if (slot_head_[slot] < 0) {
              slot_key_[slot] = e.key;
              next_[row] = -1;
              slot_head_[slot] = row;
              break;
            }
            if (slot_key_[slot] == e.key) {
              next_[row] = slot_head_[slot];
              slot_head_[slot] = row;
              break;
            }
            i = (i + 1) & m;
          }
        }
      }
    }
  });
}

FlatInterner::FlatInterner(const Relation& r, const KeySpec& spec,
                           ExecContext* ctx) {
  ExecContext& ec = ExecContext::Resolve(ctx);
  ExecStats& st = ec.stats();
  Stopwatch sw;
  const size_t n = r.size();
  // See FlatMultimap above: serial scan beats a one-worker sharded build.
  if (ec.threads() > 1 && !ec.pool().busy() &&
      n >= kShardedBuildMinRows) {
    BuildSharded(r, spec, ec);
    Bump(st.index_sharded_builds);
  } else {
    const uint32_t cap = TableCapacity(n < 4 ? 4 : n);
    mask_ = cap - 1;
    slot_key_.resize(cap);
    slot_id_.assign(cap, -1);
    const int col = spec.arity() == 1 ? spec.cols()[0] : -1;
    for (size_t row = 0; row < n; ++row) {
      Intern(col >= 0 ? static_cast<uint32_t>(r.Row(row)[col])
                      : spec.KeyOf(r.Row(row)));
    }
  }
  Bump(st.index_builds);
  Bump(st.index_build_rows, static_cast<int64_t>(n));
  Bump(st.index_build_ns, static_cast<int64_t>(sw.Seconds() * 1e9));
}

void FlatInterner::BuildSharded(const Relation& r, const KeySpec& spec,
                                ExecContext& ec) {
  const size_t nchunks = static_cast<size_t>(ec.threads()) * 2;
  std::vector<std::vector<ShardEntry>> bufs;
  PartitionRows(r, spec, ec, nchunks, &bufs);
  shard_bits_ = kShardBits;
  const size_t total = LayoutShards(bufs, nchunks, &shard_off_, &shard_mask_);
  MemCharge charge(ec, static_cast<int64_t>(total) * 12 +
                           static_cast<int64_t>(r.size()) * 12);
  slot_key_.resize(total);
  slot_id_.assign(total, -1);
  // Phase 2: per shard, claim a slot for each distinct key and record its
  // first-occurrence row. Chunks are walked in order, so rows arrive
  // ascending and the first insertion of a key IS its first occurrence.
  // Ids stay pending (INT32_MAX) until phase 3 ranks them globally.
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> firsts(kShards);
  std::atomic<size_t> next_shard(0);
  QueryGuard& guard = ec.guard();
  ec.pool().Run([&](int) {
    while (true) {
      // relaxed: work-claim RMW — each shard claimed exactly once; the
      // disjoint sub-tables are published by the pool's fan-in.
      const size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (s >= kShards) return;
      guard.Poll(FaultSite::kIndex);
      const size_t base = shard_off_[s];
      const uint32_t m = shard_mask_[s];
      std::vector<std::pair<uint64_t, uint32_t>>& mine = firsts[s];
      for (size_t c = 0; c < nchunks; ++c) {
        for (const ShardEntry& e : bufs[c * kShards + s]) {
          uint32_t i = static_cast<uint32_t>(MixKey(e.key)) & m;
          while (true) {
            const size_t slot = base + i;
            if (slot_id_[slot] < 0) {
              slot_key_[slot] = e.key;
              slot_id_[slot] = INT32_MAX;  // claimed; ranked in phase 3
              mine.push_back({e.row, static_cast<uint32_t>(slot)});
              break;
            }
            if (slot_key_[slot] == e.key) break;  // later occurrence
            i = (i + 1) & m;
          }
        }
      }
    }
  });
  // Phase 3: dense ids in ascending first-occurrence order — identical to
  // the ids a serial row-by-row Intern loop would have assigned.
  std::vector<std::pair<uint64_t, uint32_t>> order;
  for (const auto& f : firsts) order.insert(order.end(), f.begin(), f.end());
  RadixSortKeyed(order);
  for (size_t p = 0; p < order.size(); ++p) {
    slot_id_[order[p].second] = static_cast<int32_t>(p);
  }
  size_ = static_cast<int32_t>(order.size());
}

}  // namespace fmmsw
