#include "relation/degree.h"

#include <map>
#include <set>
#include <unordered_map>

#include "relation/ops.h"

namespace fmmsw {

namespace {

/// Groups row indices by their X-value (restricted to r's schema).
std::map<std::vector<Value>, std::vector<size_t>> GroupByX(const Relation& r,
                                                           VarSet x) {
  const VarSet xs = x & r.schema();
  std::vector<int> cols;
  for (int v : xs.Members()) cols.push_back(r.ColumnOf(v));
  std::map<std::vector<Value>, std::vector<size_t>> groups;
  std::vector<Value> key(cols.size());
  for (size_t row = 0; row < r.size(); ++row) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = r.Row(row)[cols[i]];
    groups[key].push_back(row);
  }
  return groups;
}

/// Number of distinct Y\X projections among the given rows.
int64_t DistinctY(const Relation& r, const std::vector<size_t>& rows,
                  VarSet y, VarSet x) {
  const VarSet ys = (y - x) & r.schema();
  std::vector<int> cols;
  for (int v : ys.Members()) cols.push_back(r.ColumnOf(v));
  std::set<std::vector<Value>> seen;
  std::vector<Value> key(cols.size());
  for (size_t row : rows) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = r.Row(row)[cols[i]];
    seen.insert(key);
  }
  return static_cast<int64_t>(seen.size());
}

}  // namespace

int64_t Degree(const Relation& r, VarSet y, VarSet x) {
  int64_t best = 0;
  for (const auto& [key, rows] : GroupByX(r, x)) {
    best = std::max(best, DistinctY(r, rows, y, x));
  }
  return best;
}

DegreePartition PartitionByDegree(const Relation& r, VarSet y, VarSet x,
                                  int64_t threshold) {
  DegreePartition out;
  out.heavy = Relation(x & r.schema());
  out.light = Relation(r.schema());
  std::vector<int> xcols;
  for (int v : (x & r.schema()).Members()) xcols.push_back(r.ColumnOf(v));
  std::vector<Value> tuple;
  for (const auto& [key, rows] : GroupByX(r, x)) {
    if (DistinctY(r, rows, y, x) > threshold) {
      out.heavy.Add(key);
    } else {
      for (size_t row : rows) {
        tuple.assign(r.Row(row), r.Row(row) + r.arity());
        out.light.Add(tuple);
      }
    }
  }
  return out;
}

std::vector<Relation> DegreeBuckets(const Relation& r, VarSet y, VarSet x) {
  std::vector<Relation> buckets;
  std::vector<Value> tuple;
  for (const auto& [key, rows] : GroupByX(r, x)) {
    const int64_t deg = DistinctY(r, rows, y, x);
    int level = 0;
    while ((1LL << (level + 1)) <= deg) ++level;
    while (static_cast<int>(buckets.size()) <= level) {
      buckets.emplace_back(r.schema());
    }
    for (size_t row : rows) {
      tuple.assign(r.Row(row), r.Row(row) + r.arity());
      buckets[level].Add(tuple);
    }
  }
  return buckets;
}

}  // namespace fmmsw
