#include "relation/degree.h"

#include <algorithm>

#include "relation/ops.h"

namespace fmmsw {

namespace {

/// Row indices of `r` sorted by the X-key columns, then the Y columns —
/// one sort after which X-groups are contiguous runs and distinct Y values
/// within a group are adjacent. Replaces the per-group std::map/std::set
/// bookkeeping of the naive implementation.
struct GroupedOrder {
  std::vector<int> xcols, ycols;
  std::vector<uint32_t> order;

  GroupedOrder(const Relation& r, VarSet y, VarSet x) {
    for (int v : (x & r.schema()).Members()) xcols.push_back(r.ColumnOf(v));
    for (int v : ((y - x) & r.schema()).Members()) {
      ycols.push_back(r.ColumnOf(v));
    }
    order.resize(r.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<uint32_t>(i);
    }
    if (xcols.size() + ycols.size() <= 2) {
      // Binary-relation fast path: pack the (X, Y) key into one uint64
      // (order-preserving bias) and sort flat PODs instead of running an
      // indirect comparator over the row buffer.
      std::vector<int> cols = xcols;
      cols.insert(cols.end(), ycols.begin(), ycols.end());
      std::vector<std::pair<uint64_t, uint32_t>> keyed(r.size());
      for (size_t i = 0; i < keyed.size(); ++i) {
        const Value* row = r.Row(i);
        uint64_t key = 0;
        for (int c : cols) key = (key << 32) | BiasValue(row[c]);
        keyed[i] = {key, static_cast<uint32_t>(i)};
      }
      std::sort(keyed.begin(), keyed.end());
      for (size_t i = 0; i < keyed.size(); ++i) order[i] = keyed[i].second;
      return;
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const Value* ra = r.Row(a);
      const Value* rb = r.Row(b);
      for (int c : xcols) {
        if (ra[c] != rb[c]) return ra[c] < rb[c];
      }
      for (int c : ycols) {
        if (ra[c] != rb[c]) return ra[c] < rb[c];
      }
      return false;
    });
  }

  bool SameX(const Relation& r, uint32_t a, uint32_t b) const {
    const Value* ra = r.Row(a);
    const Value* rb = r.Row(b);
    for (int c : xcols) {
      if (ra[c] != rb[c]) return false;
    }
    return true;
  }

  bool SameY(const Relation& r, uint32_t a, uint32_t b) const {
    const Value* ra = r.Row(a);
    const Value* rb = r.Row(b);
    for (int c : ycols) {
      if (ra[c] != rb[c]) return false;
    }
    return true;
  }

  /// Calls fn(begin, end, distinct_y) for every X-group [begin, end) of
  /// the sorted order.
  template <typename Fn>
  void ForEachGroup(const Relation& r, const Fn& fn) const {
    size_t begin = 0;
    while (begin < order.size()) {
      size_t end = begin + 1;
      int64_t distinct = 1;
      while (end < order.size() && SameX(r, order[begin], order[end])) {
        if (!SameY(r, order[end - 1], order[end])) ++distinct;
        ++end;
      }
      fn(begin, end, distinct);
      begin = end;
    }
  }
};

}  // namespace

int64_t Degree(const Relation& r, VarSet y, VarSet x) {
  if (r.empty()) return 0;
  const GroupedOrder g(r, y, x);
  int64_t best = 0;
  g.ForEachGroup(r, [&](size_t, size_t, int64_t distinct) {
    best = std::max(best, distinct);
  });
  return best;
}

DegreePartition PartitionByDegree(const Relation& r, VarSet y, VarSet x,
                                  int64_t threshold) {
  DegreePartition out;
  out.heavy = Relation(x & r.schema());
  out.light = Relation(r.schema());
  const GroupedOrder g(r, y, x);
  Value key[kMaxVars];
  g.ForEachGroup(r, [&](size_t begin, size_t end, int64_t distinct) {
    if (distinct > threshold) {
      const Value* row = r.Row(g.order[begin]);
      for (size_t i = 0; i < g.xcols.size(); ++i) key[i] = row[g.xcols[i]];
      out.heavy.AddRow(key);
    } else {
      for (size_t i = begin; i < end; ++i) {
        out.light.AddRow(r.Row(g.order[i]));
      }
    }
  });
  return out;
}

std::vector<Relation> DegreeBuckets(const Relation& r, VarSet y, VarSet x) {
  std::vector<Relation> buckets;
  const GroupedOrder g(r, y, x);
  g.ForEachGroup(r, [&](size_t begin, size_t end, int64_t distinct) {
    int level = 0;
    while ((1LL << (level + 1)) <= distinct) ++level;
    while (static_cast<int>(buckets.size()) <= level) {
      buckets.emplace_back(r.schema());
    }
    for (size_t i = begin; i < end; ++i) {
      buckets[level].AddRow(r.Row(g.order[i]));
    }
  });
  return buckets;
}

}  // namespace fmmsw
