#include "relation/degree.h"

#include <algorithm>

#include "core/exec_context.h"
#include "relation/ops.h"
#include "relation/row_sort.h"

namespace fmmsw {

namespace {

/// Row indices of `r` sorted by the X-key columns, then the Y columns —
/// one sort after which X-groups are contiguous runs and distinct Y values
/// within a group are adjacent. Replaces the per-group std::map/std::set
/// bookkeeping of the naive implementation. Every arity routes through
/// the wide-key layer (relation/row_sort.h): the (X, Y) columns pack into
/// 1..8 order-preserving uint64 words with the row index as a payload
/// word, sorted by stable LSD radix on the context's pool and arena —
/// no comparator fallback for 3+ grouping columns anymore, which is also
/// what the PANDA executor's sort-order cache fills run through. Inside a
/// SortOrderScope the computed order is cached per (buffer, rows, X, Y)
/// and reused (the order is threshold-independent, so proof-sequence
/// steps re-partitioning the same pinned table skip the sort entirely).
struct GroupedOrder {
  std::vector<int> xcols, ycols;
  std::vector<uint32_t> order;

  GroupedOrder(const Relation& r, VarSet y, VarSet x,
               ExecContext* ctx = nullptr) {
    for (int v : (x & r.schema()).Members()) xcols.push_back(r.ColumnOf(v));
    for (int v : ((y - x) & r.schema()).Members()) {
      ycols.push_back(r.ColumnOf(v));
    }
    const void* key_data = r.empty() ? nullptr : r.Row(0);
    if (ctx != nullptr && ctx->sort_cache_active()) {
      const std::vector<uint32_t>* cached =
          ctx->FindSortOrder(key_data, r.size(), x.mask(), y.mask());
      if (cached != nullptr) {
        Bump(ctx->stats().sort_order_hits);
        order = *cached;
        return;
      }
    }
    std::vector<int> cols = xcols;
    cols.insert(cols.end(), ycols.begin(), ycols.end());
    SortedRowOrder(r, cols, ExecContext::Resolve(ctx), &order);
    if (ctx != nullptr && ctx->sort_cache_active()) {
      ctx->StoreSortOrder(key_data, r.size(), x.mask(), y.mask(), order);
    }
  }

  bool SameX(const Relation& r, uint32_t a, uint32_t b) const {
    const Value* ra = r.Row(a);
    const Value* rb = r.Row(b);
    for (int c : xcols) {
      if (ra[c] != rb[c]) return false;
    }
    return true;
  }

  bool SameY(const Relation& r, uint32_t a, uint32_t b) const {
    const Value* ra = r.Row(a);
    const Value* rb = r.Row(b);
    for (int c : ycols) {
      if (ra[c] != rb[c]) return false;
    }
    return true;
  }

  /// Calls fn(begin, end, distinct_y) for every X-group [begin, end) of
  /// the sorted order.
  template <typename Fn>
  void ForEachGroup(const Relation& r, const Fn& fn) const {
    size_t begin = 0;
    while (begin < order.size()) {
      size_t end = begin + 1;
      int64_t distinct = 1;
      while (end < order.size() && SameX(r, order[begin], order[end])) {
        if (!SameY(r, order[end - 1], order[end])) ++distinct;
        ++end;
      }
      fn(begin, end, distinct);
      begin = end;
    }
  }
};

}  // namespace

int64_t Degree(const Relation& r, VarSet y, VarSet x) {
  if (r.empty()) return 0;
  const GroupedOrder g(r, y, x);
  int64_t best = 0;
  g.ForEachGroup(r, [&](size_t, size_t, int64_t distinct) {
    best = std::max(best, distinct);
  });
  return best;
}

DegreePartition PartitionByDegree(const Relation& r, VarSet y, VarSet x,
                                  int64_t threshold, ExecContext* ctx) {
  Bump(ExecContext::Resolve(ctx).stats().partition_calls);
  DegreePartition out;
  out.heavy = Relation(x & r.schema());
  out.light = Relation(r.schema());
  const GroupedOrder g(r, y, x, ctx);
  Value key[kMaxVars];
  g.ForEachGroup(r, [&](size_t begin, size_t end, int64_t distinct) {
    if (distinct > threshold) {
      const Value* row = r.Row(g.order[begin]);
      for (size_t i = 0; i < g.xcols.size(); ++i) key[i] = row[g.xcols[i]];
      out.heavy.AddRow(key);
    } else {
      for (size_t i = begin; i < end; ++i) {
        out.light.AddRow(r.Row(g.order[i]));
      }
    }
  });
  return out;
}

std::vector<Relation> DegreeBuckets(const Relation& r, VarSet y, VarSet x,
                                    ExecContext* ctx) {
  std::vector<Relation> buckets;
  const GroupedOrder g(r, y, x, ctx);
  g.ForEachGroup(r, [&](size_t begin, size_t end, int64_t distinct) {
    int level = 0;
    while ((1LL << (level + 1)) <= distinct) ++level;
    while (static_cast<int>(buckets.size()) <= level) {
      buckets.emplace_back(r.schema());
    }
    for (size_t i = begin; i < end; ++i) {
      buckets[level].AddRow(r.Row(g.order[i]));
    }
  });
  return buckets;
}

}  // namespace fmmsw
