#ifndef FMMSW_RELATION_OPS_H_
#define FMMSW_RELATION_OPS_H_

/// \file
/// Relational operators: natural join (hash-based), semijoin, projection,
/// intersection and union. These are the "for-loop" primitives of the
/// engine; each elimination step in a query plan is compiled into a small
/// sequence of these (or a matrix multiplication).

#include "relation/relation.h"

namespace fmmsw {

/// Natural join of a and b on their shared variables (hash join on the
/// smaller input). Output schema: union of schemas; duplicates removed.
Relation Join(const Relation& a, const Relation& b);

/// Tuples of `a` that join with at least one tuple of `b`.
Relation Semijoin(const Relation& a, const Relation& b);

/// Projection onto keep (which may include variables absent from the
/// schema — they are ignored). Duplicates removed.
Relation Project(const Relation& a, VarSet keep);

/// Intersection of two relations with identical schemas.
Relation Intersect(const Relation& a, const Relation& b);

/// Union of two relations with identical schemas (deduplicated).
Relation Union(const Relation& a, const Relation& b);

/// Tuples of `a` NOT joining any tuple of `b` (anti-join).
Relation Antijoin(const Relation& a, const Relation& b);

/// Tuples of `a` whose variable `var` equals `value`.
Relation SelectEq(const Relation& a, int var, Value value);

}  // namespace fmmsw

#endif  // FMMSW_RELATION_OPS_H_
