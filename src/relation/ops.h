#ifndef FMMSW_RELATION_OPS_H_
#define FMMSW_RELATION_OPS_H_

/// \file
/// Relational operators: natural join (hash-based), semijoin, projection,
/// intersection and union. These are the "for-loop" primitives of the
/// engine; each elimination step in a query plan is compiled into a small
/// sequence of these (or a matrix multiplication).
///
/// Duplicate-handling contract (uniform across ops):
///   - Join     : emits one output tuple per matching input pair. If both
///                inputs are duplicate-free the output is duplicate-free,
///                so by default no dedup pass runs; JoinOpts.set_semantics
///                forces a SortAndDedupe of the output for callers that
///                feed it duplicate-carrying inputs and need a set back.
///   - Semijoin : filter on `a` — preserves `a`'s tuples (and their
///                multiplicity) that match; never introduces duplicates.
///   - Antijoin : filter on `a`, complement of Semijoin. Semijoin(a,b) and
///                Antijoin(a,b) partition `a`.
///   - Project  : output is always deduplicated (projection is the one op
///                that creates duplicates from duplicate-free input).
///   - Intersect: filter on `a` (via Semijoin); duplicate-free iff `a` is.
///   - Union    : output is always deduplicated (set union).
///   - SelectEq : filter on `a` — preserves matching tuples verbatim,
///                including duplicates (contrast with Union/Project: a
///                selection cannot create duplicates, so deduping here
///                would only mask duplicate inputs).
/// Nullary relations are Boolean: {()} ("true") is the join identity, the
/// empty nullary relation ("false") annihilates; Project onto the empty
/// set is an existence test.

#include "relation/relation.h"

namespace fmmsw {

/// Options for Join.
struct JoinOpts {
  /// Force set semantics: SortAndDedupe the output before returning. Only
  /// needed when an input may carry duplicate tuples (see contract above).
  bool set_semantics = false;
};

/// Natural join of a and b on their shared variables (hash join on the
/// smaller input). Output schema: union of schemas.
Relation Join(const Relation& a, const Relation& b, const JoinOpts& opts = {});

/// Tuples of `a` that join with at least one tuple of `b`.
Relation Semijoin(const Relation& a, const Relation& b);

/// Projection onto keep (which may include variables absent from the
/// schema — they are ignored). Duplicates removed.
Relation Project(const Relation& a, VarSet keep);

/// Intersection of two relations with identical schemas.
Relation Intersect(const Relation& a, const Relation& b);

/// Union of two relations with identical schemas (deduplicated).
Relation Union(const Relation& a, const Relation& b);

/// Tuples of `a` NOT joining any tuple of `b` (anti-join).
Relation Antijoin(const Relation& a, const Relation& b);

/// Tuples of `a` whose variable `var` equals `value` (no dedup; see
/// contract above).
Relation SelectEq(const Relation& a, int var, Value value);

}  // namespace fmmsw

#endif  // FMMSW_RELATION_OPS_H_
