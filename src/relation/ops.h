#ifndef FMMSW_RELATION_OPS_H_
#define FMMSW_RELATION_OPS_H_

/// \file
/// Relational operators: natural join (hash-based), semijoin, projection,
/// intersection and union. These are the "for-loop" primitives of the
/// engine; each elimination step in a query plan is compiled into a small
/// sequence of these (or a matrix multiplication).
///
/// Every operator takes an optional ExecContext (nullptr = the process
/// default): it supplies the per-op stats counters and, where relevant,
/// scratch arenas. This is a machine-enforced contract: the `ctx-threading`
/// rule of tools/check_contracts.py fails the build if a declaration in
/// this header (or engine/*.h) drops the ExecContext parameter. The engines own the enumeration fan-out; the only
/// parallel work an operator may start itself is the sharded flat-index
/// build (flat_index.h), which degrades to a serial build whenever the
/// context's pool is already busy with an enclosing parallel region — so
/// operators remain safe to call from inside parallel regions.
///
/// Guardrails: the probe loops poll the context's QueryGuard every 1024
/// rows and Join flushes output accounting (max_output_rows + memory
/// budget) in the same batches, so an armed limit aborts the operator
/// with QueryAbort within one batch of its boundary (see
/// core/exec_status.h; core/exec_context.h documents the full poll-point
/// map). The operators are exception-safe — index builds, sort scratch
/// and memory charges are RAII — so an abort unwinding out of one leaves
/// the context balanced and immediately reusable.
///
/// Duplicate-handling contract (uniform across ops):
///   - Join     : emits one output tuple per matching input pair. If both
///                inputs are duplicate-free the output is duplicate-free,
///                so by default no dedup pass runs; JoinOpts.set_semantics
///                forces a SortAndDedupe of the output for callers that
///                feed it duplicate-carrying inputs and need a set back.
///   - Semijoin : filter on `a` — preserves `a`'s tuples (and their
///                multiplicity) that match; never introduces duplicates.
///   - Antijoin : filter on `a`, complement of Semijoin. Semijoin(a,b) and
///                Antijoin(a,b) partition `a`.
///   - Project  : output is always deduplicated (projection is the one op
///                that creates duplicates from duplicate-free input).
///   - Intersect: filter on `a` (via Semijoin); duplicate-free iff `a` is.
///   - Union    : output is always deduplicated (set union).
///   - SelectEq : filter on `a` — preserves matching tuples verbatim,
///                including duplicates (contrast with Union/Project: a
///                selection cannot create duplicates, so deduping here
///                would only mask duplicate inputs).
/// Nullary relations are Boolean: {()} ("true") is the join identity, the
/// empty nullary relation ("false") annihilates; Project onto the empty
/// set is an existence test.
///
/// Fused-probe contract (existence-only filters):
///   - Join(a, b, {.exist_filter = &c}) is tuple-for-tuple equivalent to
///     Semijoin(Join(a, b), c) — each candidate pair is probed against c
///     on the variables c shares with the join's output schema, and pairs
///     with no partner in c are dropped *before* materialization (no
///     intermediate relation, no allocation for dropped pairs). Multiple
///     filters (exist_filter plus exist_filters) apply conjunctively, in
///     order, and match the corresponding Semijoin chain. Filters see
///     multiplicities exactly like Semijoin: they never introduce or
///     remove duplicates among surviving pairs.
///   - JoinOpts.limit > 0 stops the enumeration after `limit` surviving
///     pairs have been emitted (early exit for Boolean callers; with
///     set_semantics the dedup pass runs on the truncated output). The
///     cap applies to the hash-join path; degenerate nullary inputs may
///     return their full (at most single-tuple-wider) result.
///   - SemijoinAll(a, {b1, b2, ...}) is tuple-for-tuple equivalent to
///     Semijoin(...Semijoin(a, b1)..., bn) but builds every index once
///     and filters `a` in a single pass (one probe chain per row instead
///     of one intermediate relation per filter).
///   Per-probe work is visible on ExecContext::stats(): fused_probe_tuples
///   counts candidate pairs probed, fused_drop_tuples the pairs rejected
///   (i.e. tuples a materialize-then-filter plan would have allocated),
///   fused_emit_tuples the survivors.

#include <vector>

#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

/// Options for Join.
struct JoinOpts {
  /// Force set semantics: SortAndDedupe the output before returning. Only
  /// needed when an input may carry duplicate tuples (see contract above).
  bool set_semantics = false;
  /// Fused existence-only filter: drop candidate pairs with no join
  /// partner in this relation before materializing them (see the
  /// fused-probe contract above).
  const Relation* exist_filter = nullptr;
  /// Additional fused filters, applied conjunctively after exist_filter.
  std::vector<const Relation*> exist_filters = {};
  /// If > 0, stop after this many surviving tuples (early exit).
  size_t limit = 0;
};

/// Natural join of a and b on their shared variables (hash join on the
/// smaller input). Output schema: union of schemas.
Relation Join(const Relation& a, const Relation& b, const JoinOpts& opts = {},
              ExecContext* ctx = nullptr);

/// Tuples of `a` that join with at least one tuple of `b`.
Relation Semijoin(const Relation& a, const Relation& b,
                  ExecContext* ctx = nullptr);

/// Tuples of `a` joining at least one tuple of *every* relation in `bs`;
/// equivalent to the left-to-right Semijoin chain but single-pass (see the
/// fused-probe contract above).
Relation SemijoinAll(const Relation& a,
                     const std::vector<const Relation*>& bs,
                     ExecContext* ctx = nullptr);
Relation SemijoinAll(const Relation& a,
                     std::initializer_list<const Relation*> bs,
                     ExecContext* ctx = nullptr);

/// Projection onto keep (which may include variables absent from the
/// schema — they are ignored). Duplicates removed.
Relation Project(const Relation& a, VarSet keep, ExecContext* ctx = nullptr);

/// Intersection of two relations with identical schemas.
Relation Intersect(const Relation& a, const Relation& b,
                   ExecContext* ctx = nullptr);

/// Union of two relations with identical schemas (deduplicated).
Relation Union(const Relation& a, const Relation& b,
               ExecContext* ctx = nullptr);

/// Tuples of `a` NOT joining any tuple of `b` (anti-join).
Relation Antijoin(const Relation& a, const Relation& b,
                  ExecContext* ctx = nullptr);

/// Tuples of `a` whose variable `var` equals `value` (no dedup; see
/// contract above).
Relation SelectEq(const Relation& a, int var, Value value,
                  ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_RELATION_OPS_H_
