#ifndef FMMSW_RELATION_FLAT_INDEX_H_
#define FMMSW_RELATION_FLAT_INDEX_H_

/// \file
/// Flat open-addressing hash structures for the relational operators.
///
/// The join kernels key rows on the shared-variable columns. A KeySpec
/// resolves those columns once per operator call (O(1) per row afterwards)
/// and packs the key values into a single uint64:
///   - 0 columns: constant key (cross products),
///   - 1 column:  the value itself (exact, the fast path),
///   - 2 columns: both values side by side (exact),
///   - 3+ columns: a mixed hash (NOT injective — callers must verify
///     candidate rows with RowKeysEqual).
/// FlatMultimap/FlatSet are linear-probing tables over such packed keys;
/// chains of equal-key rows are threaded through a `next` array, so a
/// build costs two flat allocations and no per-node heap traffic (compare
/// std::unordered_multimap, which allocates per entry and chases pointers
/// per probe).
///
/// Sharded parallel builds: the context-aware constructors of FlatMultimap
/// and FlatInterner (and ExistProbe, which wraps a FlatMultimap) take an
/// ExecContext and, above kShardedBuildMinRows with a multi-worker pool,
/// build the table in parallel. Workers first scan disjoint row ranges
/// into per-chunk buffers keyed by the top kShardBits bits of MixKey;
/// each shard then becomes its own open-addressing sub-table, written by
/// exactly one worker — disjoint slot regions, no locks. Because a packed
/// key's rows all land in one shard and chunks are concatenated in row
/// order, every equal-key chain is built by inserting rows in ascending
/// order with head prepending, i.e. chains stay in reverse row order
/// exactly like the serial build: First/Next results are bit-identical
/// for every thread count (differential-tested in exec_pipeline_test.cc).

#include <cstdint>
#include <string>
#include <vector>

#include "core/exec_status.h"
#include "relation/relation.h"
#include "util/varset.h"

namespace fmmsw {

class ExecContext;

/// Precomputed column permutation mapping key variables (in increasing
/// variable order) to columns of one relation.
class KeySpec {
 public:
  KeySpec() = default;
  KeySpec(const Relation& r, VarSet key_vars) {
    for (int v : key_vars.Members()) cols_.push_back(r.ColumnOf(v));
  }

  const std::vector<int>& cols() const { return cols_; }
  int arity() const { return static_cast<int>(cols_.size()); }
  /// True if KeyOf is injective, i.e. equal packed keys imply equal key
  /// values and no verification is needed.
  bool exact() const { return cols_.size() <= 2; }

  /// Packed 64-bit key of a row (see file comment).
  uint64_t KeyOf(const Value* row) const {
    switch (cols_.size()) {
      case 0:
        return 0;
      case 1:
        return static_cast<uint32_t>(row[cols_[0]]);
      case 2:
        return (static_cast<uint64_t>(static_cast<uint32_t>(row[cols_[0]]))
                << 32) |
               static_cast<uint32_t>(row[cols_[1]]);
      default: {
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (int c : cols_) {
          h ^= static_cast<uint32_t>(row[c]) + 0x9e3779b97f4a7c15ULL +
               (h << 6) + (h >> 2);
        }
        return h;
      }
    }
  }

 private:
  std::vector<int> cols_;
};

/// Column-wise equality of two rows' key values under their own specs.
inline bool RowKeysEqual(const Value* a, const KeySpec& sa, const Value* b,
                         const KeySpec& sb) {
  for (size_t i = 0; i < sa.cols().size(); ++i) {
    if (a[sa.cols()[i]] != b[sb.cols()[i]]) return false;
  }
  return true;
}

namespace flat_internal {

/// Finalizer spreading packed keys across the table (splitmix64 tail).
inline uint64_t MixKey(uint64_t k) {
  k ^= k >> 30;
  k *= 0xbf58476d1ce4e5b9ULL;
  k ^= k >> 27;
  k *= 0x94d049bb133111ebULL;
  k ^= k >> 31;
  return k;
}

/// Smallest power-of-two capacity holding `entries` at load factor <= 0.5.
/// Computed in 64 bits: a 32-bit `cap <<= 1` wraps to 0 once cap reaches
/// 2^31 (entries > 2^30), turning the loop into an infinite hang. Row ids
/// are int32_t, so entry counts beyond 2^30 are rejected outright — as a
/// kCapacityExceeded QueryAbort, which the guarded entry points
/// (RunGuarded, core/api.h EvaluateBooleanGuarded) convert to a returned
/// status instead of killing the process over one oversized input.
inline uint32_t TableCapacity(size_t entries) {
  if (entries > (size_t{1} << 30)) {
    throw QueryAbort(ExecStatus::kCapacityExceeded,
                     "flat index capped at 2^30 entries (got " +
                         std::to_string(entries) + ")");
  }
  uint64_t cap = 8;
  while (cap < static_cast<uint64_t>(entries) * 2) cap <<= 1;
  return static_cast<uint32_t>(cap);
}

/// Shard fan-out of the parallel index builds (64 sub-tables, selected by
/// the top 6 bits of MixKey — independent of the low slot-index bits).
inline constexpr int kShardBits = 6;
/// Minimum rows before a context-aware build goes sharded: below this the
/// partition pass costs more than the serial scan it replaces.
inline constexpr size_t kShardedBuildMinRows = 8192;

}  // namespace flat_internal

/// Open-addressing multimap from packed key to the rows carrying it.
/// Rows with equal packed keys form a chain; iterate with
///   for (int32_t r = idx.First(key); r >= 0; r = idx.Next(r)) { ... }
///
/// Layout: with shard_bits_ == 0 (serial build) the table is one probe
/// region of mask_ + 1 slots. A sharded build splits the slot space into
/// 1 << kShardBits contiguous sub-tables; a key's shard is the top bits
/// of MixKey and probing wraps within the shard's own region. Lookup
/// results are identical under both layouts.
class FlatMultimap {
 public:
  /// Serial build (no context; kept for callers outside the pipeline).
  FlatMultimap(const Relation& r, const KeySpec& spec) {
    BuildSerial(r, spec);
  }

  /// Context-aware build: sharded across ctx's pool when the input is
  /// large enough, serial otherwise; records index-build stats either way
  /// (nullptr = the process-default context).
  FlatMultimap(const Relation& r, const KeySpec& spec, ExecContext* ctx);

  /// First row with the given packed key, or -1.
  int32_t First(uint64_t key) const {
    const uint64_t mix = flat_internal::MixKey(key);
    size_t base = 0;
    uint32_t m = mask_;
    if (shard_bits_ != 0) {
      const size_t s = mix >> (64 - shard_bits_);
      base = shard_off_[s];
      m = shard_mask_[s];
    }
    uint32_t i = static_cast<uint32_t>(mix) & m;
    while (true) {
      const int32_t head = slot_head_[base + i];
      if (head < 0) return -1;
      if (slot_key_[base + i] == key) return head;
      i = (i + 1) & m;
    }
  }

  /// Next row in the same-key chain, or -1.
  int32_t Next(int32_t row) const { return next_[row]; }

  /// True if the context-aware constructor took the sharded parallel path
  /// (exposed for tests and stats assertions).
  bool sharded() const { return shard_bits_ != 0; }

 private:
  void BuildSerial(const Relation& r, const KeySpec& spec) {
    const size_t n = r.size();
    const uint32_t cap = flat_internal::TableCapacity(n);
    mask_ = cap - 1;
    slot_key_.resize(cap);
    slot_head_.assign(cap, -1);
    next_.resize(n);
    if (spec.arity() == 1) {
      // Single-column fast path: no per-row dispatch on the key shape.
      const int col = spec.cols()[0];
      for (size_t row = 0; row < n; ++row) {
        Insert(static_cast<uint32_t>(r.Row(row)[col]),
               static_cast<int32_t>(row));
      }
    } else {
      for (size_t row = 0; row < n; ++row) {
        Insert(spec.KeyOf(r.Row(row)), static_cast<int32_t>(row));
      }
    }
  }

  void BuildSharded(const Relation& r, const KeySpec& spec, ExecContext& ec);

  void Insert(uint64_t key, int32_t row) {
    uint32_t i = static_cast<uint32_t>(flat_internal::MixKey(key)) & mask_;
    while (true) {
      if (slot_head_[i] < 0) {
        slot_key_[i] = key;
        next_[row] = -1;
        slot_head_[i] = row;
        return;
      }
      if (slot_key_[i] == key) {
        next_[row] = slot_head_[i];
        slot_head_[i] = row;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  int shard_bits_ = 0;
  uint32_t mask_ = 0;
  std::vector<uint32_t> shard_off_;   // per-shard region start
  std::vector<uint32_t> shard_mask_;  // per-shard region capacity - 1
  std::vector<uint64_t> slot_key_;
  std::vector<int32_t> slot_head_;  // -1 = empty slot
  std::vector<int32_t> next_;
};

/// Open-addressing set of packed keys (for on-the-fly dedup of narrow
/// outputs; only meaningful for exact KeySpecs).
///
/// Capacity contract: the constructor and Reserve presize for `expected`
/// entries at load factor <= 0.5, so a builder that knows its insert
/// count up front (the clique pair sets, Project's dedup set — both
/// Reserve the source row count, an upper bound on distinct keys) never
/// pays the insert-time Grow rehash. Grow remains as a safety net for
/// incremental callers that under-estimate; grow_rehashes() counts how
/// often it fired, so tests can assert presized builds never rehash.
class FlatSet {
 public:
  /// Presizes for `expected` entries (no Grow for up to that many
  /// distinct keys).
  explicit FlatSet(size_t expected = 0) {
    const uint32_t cap = flat_internal::TableCapacity(expected);
    mask_ = cap - 1;
    slot_key_.resize(cap);
    used_.assign(cap, 0);
  }

  /// Ensures capacity for `expected` total entries (existing + future),
  /// rehashing at most once — the bulk-builder alternative to paying
  /// O(log n) incremental Grows. Not counted by grow_rehashes(): this is
  /// the planned resize the counter exists to verify sufficient.
  void Reserve(size_t expected) {
    const uint32_t cap = flat_internal::TableCapacity(expected);
    if (cap <= used_.size()) return;
    Rehash(cap);
  }

  /// Inserts the key; returns true if it was absent.
  bool Insert(uint64_t key) {
    if (size_ * 2 >= used_.size()) {
      ++grow_rehashes_;
      Rehash(used_.size() * 2);
    }
    uint32_t i = static_cast<uint32_t>(flat_internal::MixKey(key)) & mask_;
    while (used_[i]) {
      if (slot_key_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slot_key_[i] = key;
    ++size_;
    return true;
  }

  /// Membership test.
  bool Contains(uint64_t key) const {
    uint32_t i = static_cast<uint32_t>(flat_internal::MixKey(key)) & mask_;
    while (used_[i]) {
      if (slot_key_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  size_t size() const { return size_; }
  /// Slot count (power of two; exposed so tests can assert that presized
  /// builds never rehash).
  size_t capacity() const { return used_.size(); }
  /// Insert-time Grow rehashes performed (0 for a correctly presized
  /// build — the stats hook behind the presize-no-rehash contract).
  int64_t grow_rehashes() const { return grow_rehashes_; }

 private:
  void Rehash(size_t cap) {
    std::vector<uint64_t> old_keys = std::move(slot_key_);
    std::vector<uint8_t> old_used = std::move(used_);
    mask_ = static_cast<uint32_t>(cap) - 1;
    slot_key_.assign(cap, 0);
    used_.assign(cap, 0);
    size_ = 0;
    for (size_t i = 0; i < old_used.size(); ++i) {
      if (old_used[i]) Insert(old_keys[i]);
    }
  }

  uint32_t mask_ = 0;
  size_t size_ = 0;
  int64_t grow_rehashes_ = 0;
  std::vector<uint64_t> slot_key_;
  std::vector<uint8_t> used_;
};

/// Open-addressing map from packed 64-bit key to a dense id assigned in
/// first-insertion order — the matrix-dimension interning pattern of the
/// MM engines and the PANDA executor (replaces std::unordered_map<Value,
/// int>: two flat arrays, no per-node allocation).
class FlatInterner {
 public:
  explicit FlatInterner(size_t expected = 0) {
    const uint32_t cap =
        flat_internal::TableCapacity(expected < 4 ? 4 : expected);
    mask_ = cap - 1;
    slot_key_.resize(cap);
    slot_id_.assign(cap, -1);
  }

  /// Bulk build: interns spec.KeyOf of every row of `r` in ascending row
  /// order, so ids equal the serial first-occurrence order for every
  /// thread count. With a multi-worker context and enough rows the build
  /// runs sharded on the pool; the result is then frozen — Find/size only
  /// (incremental Intern cannot grow the sharded layout).
  FlatInterner(const Relation& r, const KeySpec& spec, ExecContext* ctx);

  /// Id of the key, inserting it with the next dense id if absent. Only
  /// valid on incrementally built (non-sharded) interners.
  int Intern(uint64_t key) {
    FMMSW_DCHECK(shard_bits_ == 0 && "bulk sharded interner is frozen");
    if (static_cast<size_t>(size_) * 2 >= slot_id_.size()) Grow();
    uint32_t i = static_cast<uint32_t>(flat_internal::MixKey(key)) & mask_;
    while (slot_id_[i] >= 0) {
      if (slot_key_[i] == key) return slot_id_[i];
      i = (i + 1) & mask_;
    }
    slot_key_[i] = key;
    slot_id_[i] = size_;
    return size_++;
  }

  /// Id of the key, or -1 if absent.
  int Find(uint64_t key) const {
    const uint64_t mix = flat_internal::MixKey(key);
    size_t base = 0;
    uint32_t m = mask_;
    if (shard_bits_ != 0) {
      const size_t s = mix >> (64 - shard_bits_);
      base = shard_off_[s];
      m = shard_mask_[s];
    }
    uint32_t i = static_cast<uint32_t>(mix) & m;
    while (slot_id_[base + i] >= 0) {
      if (slot_key_[base + i] == key) return slot_id_[base + i];
      i = (i + 1) & m;
    }
    return -1;
  }

  /// Values-as-keys convenience (the common unary-dimension case).
  int InternValue(Value v) { return Intern(static_cast<uint32_t>(v)); }
  int FindValue(Value v) const { return Find(static_cast<uint32_t>(v)); }

  int size() const { return size_; }
  /// True if the bulk constructor took the sharded parallel path.
  bool sharded() const { return shard_bits_ != 0; }

 private:
  void BuildSharded(const Relation& r, const KeySpec& spec, ExecContext& ec);

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(slot_key_);
    std::vector<int32_t> old_ids = std::move(slot_id_);
    const uint32_t cap = static_cast<uint32_t>(old_ids.size()) * 2;
    mask_ = cap - 1;
    slot_key_.assign(cap, 0);
    slot_id_.assign(cap, -1);
    for (size_t i = 0; i < old_ids.size(); ++i) {
      if (old_ids[i] < 0) continue;
      uint32_t j =
          static_cast<uint32_t>(flat_internal::MixKey(old_keys[i])) & mask_;
      while (slot_id_[j] >= 0) j = (j + 1) & mask_;
      slot_key_[j] = old_keys[i];
      slot_id_[j] = old_ids[i];
    }
  }

  int shard_bits_ = 0;
  uint32_t mask_ = 0;
  int32_t size_ = 0;
  std::vector<uint32_t> shard_off_;   // per-shard region start
  std::vector<uint32_t> shard_mask_;  // per-shard region capacity - 1
  std::vector<uint64_t> slot_key_;
  std::vector<int32_t> slot_id_;  // -1 = empty slot
};

/// Existence-only probe against one relation: does any row of `b` agree
/// with a probe-side row on the variables the two schemas share? Builds
/// b's index once; Contains is O(1) per probe. This is the kernel behind
/// the fused join–semijoin paths (JoinOpts::exist_filter, SemijoinAll),
/// which filter candidate tuples *before* materializing them.
///
/// `probe_shape` only supplies the layout (schema/column map) of the rows
/// later passed to Contains; `b` must not be nullary (callers resolve
/// nullary relations as Boolean constants). The index build is
/// context-aware (sharded in parallel when worthwhile; see file comment).
class ExistProbe {
 public:
  ExistProbe(const Relation& probe_shape, const Relation& b,
             ExecContext* ctx = nullptr)
      : rel_(&b),
        probe_spec_(probe_shape, probe_shape.schema() & b.schema()),
        build_spec_(b, probe_shape.schema() & b.schema()),
        index_(b, build_spec_, ctx) {}

  bool Contains(const Value* row) const {
    int32_t r = index_.First(probe_spec_.KeyOf(row));
    if (build_spec_.exact() || r < 0) return r >= 0;
    for (; r >= 0; r = index_.Next(r)) {
      if (RowKeysEqual(row, probe_spec_, rel_->Row(r), build_spec_)) {
        return true;
      }
    }
    return false;
  }

 private:
  const Relation* rel_;
  KeySpec probe_spec_;
  KeySpec build_spec_;
  FlatMultimap index_;
};

}  // namespace fmmsw

#endif  // FMMSW_RELATION_FLAT_INDEX_H_
