#ifndef FMMSW_RELATION_RELATION_H_
#define FMMSW_RELATION_RELATION_H_

/// \file
/// In-memory relations over query variables.
///
/// A Relation stores tuples over a schema given as a VarSet of query
/// variables; columns are kept in increasing variable order, rows in a flat
/// row-major buffer. This aligns relations with hypergraph edges: the
/// relation for atom R(Z) has schema Z, and every engine operator
/// (join, semijoin, project, degree partition) is schema-driven, so plans
/// produced from GVEOs execute directly.
///
/// The var -> column map is cached at construction so ColumnOf is O(1);
/// operators resolve columns once per call (see KeySpec in flat_index.h)
/// and append rows through the raw-buffer AddRow path.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/varset.h"

namespace fmmsw {

class ExecContext;

using Value = int32_t;

/// Order-preserving bias: signed comparison of Value equals unsigned
/// comparison of the biased image. Shared by every packed sort/group key
/// (SortAndDedupe, degree grouping) so the convention cannot diverge.
inline uint32_t BiasValue(Value v) {
  return static_cast<uint32_t>(v) ^ 0x80000000u;
}
inline Value UnbiasValue(uint32_t u) {
  return static_cast<Value>(u ^ 0x80000000u);
}

class Relation {
 public:
  Relation() { col_of_.fill(-1); }
  explicit Relation(VarSet schema)
      : schema_(schema), vars_(schema.Members()) {
    col_of_.fill(-1);
    for (size_t i = 0; i < vars_.size(); ++i) {
      col_of_[vars_[i]] = static_cast<int8_t>(i);
    }
  }

  VarSet schema() const { return schema_; }
  /// Column order: schema variables in increasing index order.
  const std::vector<int>& vars() const { return vars_; }
  int arity() const { return static_cast<int>(vars_.size()); }
  size_t size() const {
    return vars_.empty() ? (empty_nullary_ ? 0 : 1)
                         : data_.size() / vars_.size();
  }
  bool empty() const { return size() == 0; }

  /// Pre-allocates room for `rows` additional tuples.
  void Reserve(size_t rows) { data_.reserve(data_.size() + rows * vars_.size()); }

  /// Appends a tuple; `values` are in column (increasing-variable) order.
  void Add(const std::vector<Value>& values) {
    FMMSW_DCHECK(static_cast<int>(values.size()) == arity());
    if (vars_.empty()) {
      empty_nullary_ = false;
      return;
    }
    data_.insert(data_.end(), values.begin(), values.end());
  }

  /// Raw-buffer append of arity() consecutive values in column order.
  void AddRow(const Value* values) {
    if (vars_.empty()) {
      empty_nullary_ = false;
      return;
    }
    data_.insert(data_.end(), values, values + vars_.size());
  }

  /// Bulk append of `rows` tuples stored contiguously in column order.
  void AddRows(const Value* values, size_t rows) {
    if (vars_.empty()) {
      if (rows > 0) empty_nullary_ = false;
      return;
    }
    data_.insert(data_.end(), values, values + rows * vars_.size());
  }

  /// Value of query variable `var` in row `row`.
  Value Get(size_t row, int var) const {
    const int col = ColumnOf(var);
    return data_[row * vars_.size() + col];
  }

  /// Raw access to row `row` (arity() consecutive values).
  const Value* Row(size_t row) const { return &data_[row * vars_.size()]; }

  /// Column index of a schema variable; O(1) via the cached map.
  int ColumnOf(int var) const {
    FMMSW_DCHECK(var >= 0 && var < kMaxVars);
    const int col = col_of_[var];
    FMMSW_CHECK(col >= 0 && "variable not in schema");
    return col;
  }

  /// Sorts rows lexicographically (signed value order) and removes
  /// duplicates. Comparator-free at every arity: rows route through the
  /// wide-key radix layer (relation/row_sort.h) on `ctx` (nullptr = the
  /// process-default context), which supplies the scratch arena and the
  /// pool for large inputs; the result is bit-identical at any thread
  /// count.
  void SortAndDedupe(ExecContext* ctx = nullptr);

  /// True if the relation contains the given tuple (column order).
  bool Contains(const std::vector<Value>& values) const;

  std::string ToString(int max_rows = 10) const;

 private:
  VarSet schema_;
  std::vector<int> vars_;
  std::array<int8_t, kMaxVars> col_of_;
  std::vector<Value> data_;
  // Nullary relations represent Boolean results: "true" holds one empty
  // tuple. Default-constructed nullary relations are empty ("false").
  bool empty_nullary_ = true;
};

/// Shared handle to one immutable relation version. Bindings, the
/// versioned catalog (core/database.h) and engine scratch all share
/// versions by pointer; nothing mutates a Relation behind one of these
/// (copy-on-write: updates build a fresh Relation and swap the pointer).
using RelationPtr = std::shared_ptr<const Relation>;

/// Content digest of a relation version: folds the schema, the row count
/// and every row value. Two versions with equal digests are treated as
/// interchangeable by version-keyed caches (width/width_cache.h), so the
/// digest must change whenever any result-affecting content changes.
uint64_t RelationStatsDigest(const Relation& r);

/// An ordered list of shared, immutable relation versions — the storage
/// behind QueryInput. Element access yields `const Relation&`, so engine
/// code reads bindings exactly as it would a plain vector of relations,
/// while the backing rows are shared by pointer with the catalog and with
/// other bindings. Replacing an element (Set) swaps the pointer and never
/// touches the old version, which stays valid for every other holder.
class RelationList {
 public:
  RelationList() = default;
  RelationList(std::initializer_list<Relation> rels) {
    ptrs_.reserve(rels.size());
    for (const Relation& r : rels) push_back(r);
  }

  size_t size() const { return ptrs_.size(); }
  bool empty() const { return ptrs_.empty(); }
  const Relation& operator[](size_t i) const { return *ptrs_[i]; }
  /// Shared handle to the i-th version (share without copying rows).
  const RelationPtr& ptr(size_t i) const { return ptrs_[i]; }

  void push_back(Relation r) {
    ptrs_.push_back(std::make_shared<const Relation>(std::move(r)));
  }
  void push_back(RelationPtr p) { ptrs_.push_back(std::move(p)); }
  /// Copy-on-write replacement of the i-th version.
  void Set(size_t i, Relation r) {
    ptrs_[i] = std::make_shared<const Relation>(std::move(r));
  }
  void Set(size_t i, RelationPtr p) { ptrs_[i] = std::move(p); }
  void Swap(size_t i, size_t j) { ptrs_[i].swap(ptrs_[j]); }
  void clear() { ptrs_.clear(); }
  void reserve(size_t n) { ptrs_.reserve(n); }

  /// Deep copy into plain mutable relations (engine-local scratch that
  /// needs to edit rows in place, e.g. variable elimination state).
  std::vector<Relation> Materialize() const {
    std::vector<Relation> out;
    out.reserve(ptrs_.size());
    for (const RelationPtr& p : ptrs_) out.push_back(*p);
    return out;
  }

  /// Forward iterator yielding `const Relation&` so range-for over a
  /// binding reads like iteration over a vector of relations.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Relation;
    using reference = const Relation&;
    using pointer = const Relation*;
    using difference_type = std::ptrdiff_t;
    explicit const_iterator(const RelationPtr* it) : it_(it) {}
    const Relation& operator*() const { return **it_; }
    const Relation* operator->() const { return it_->get(); }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }

   private:
    const RelationPtr* it_;
  };
  const_iterator begin() const { return const_iterator(ptrs_.data()); }
  const_iterator end() const {
    return const_iterator(ptrs_.data() + ptrs_.size());
  }

 private:
  std::vector<RelationPtr> ptrs_;
};

/// The relations bound to one query hypergraph: relations[i] is the
/// instance of the i-th hyperedge/atom. Versions are shared, immutable
/// snapshots (see RelationList); a binding built from a catalog Snapshot
/// pins its versions for the query's whole lifetime at zero row-copy
/// cost.
struct QueryInput {
  RelationList relations;

  /// Total input size N = sum of relation sizes.
  size_t TotalSize() const {
    size_t n = 0;
    for (const Relation& r : relations) n += r.size();
    return n;
  }
};

}  // namespace fmmsw

#endif  // FMMSW_RELATION_RELATION_H_
