#ifndef FMMSW_RELATION_RELATION_H_
#define FMMSW_RELATION_RELATION_H_

/// \file
/// In-memory relations over query variables.
///
/// A Relation stores tuples over a schema given as a VarSet of query
/// variables; columns are kept in increasing variable order, rows in a flat
/// row-major buffer. This aligns relations with hypergraph edges: the
/// relation for atom R(Z) has schema Z, and every engine operator
/// (join, semijoin, project, degree partition) is schema-driven, so plans
/// produced from GVEOs execute directly.

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/varset.h"

namespace fmmsw {

using Value = int32_t;

class Relation {
 public:
  Relation() = default;
  explicit Relation(VarSet schema)
      : schema_(schema), vars_(schema.Members()) {}

  VarSet schema() const { return schema_; }
  /// Column order: schema variables in increasing index order.
  const std::vector<int>& vars() const { return vars_; }
  int arity() const { return static_cast<int>(vars_.size()); }
  size_t size() const {
    return vars_.empty() ? (empty_nullary_ ? 0 : 1)
                         : data_.size() / vars_.size();
  }
  bool empty() const { return size() == 0; }

  /// Appends a tuple; `values` are in column (increasing-variable) order.
  void Add(const std::vector<Value>& values) {
    FMMSW_DCHECK(static_cast<int>(values.size()) == arity());
    if (vars_.empty()) {
      empty_nullary_ = false;
      return;
    }
    data_.insert(data_.end(), values.begin(), values.end());
  }

  /// Value of query variable `var` in row `row`.
  Value Get(size_t row, int var) const {
    const int col = ColumnOf(var);
    return data_[row * vars_.size() + col];
  }

  /// Raw access to row `row` (arity() consecutive values).
  const Value* Row(size_t row) const { return &data_[row * vars_.size()]; }

  /// Column index of a schema variable.
  int ColumnOf(int var) const {
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (vars_[i] == var) return static_cast<int>(i);
    }
    FMMSW_CHECK(false && "variable not in schema");
    return -1;
  }

  /// Sorts rows lexicographically and removes duplicates.
  void SortAndDedupe();

  /// True if the relation contains the given tuple (column order).
  bool Contains(const std::vector<Value>& values) const;

  std::string ToString(int max_rows = 10) const;

 private:
  VarSet schema_;
  std::vector<int> vars_;
  std::vector<Value> data_;
  // Nullary relations represent Boolean results: "true" holds one empty
  // tuple. Default-constructed nullary relations are empty ("false").
  bool empty_nullary_ = true;
};

/// A database instance for a query hypergraph: relations_[i] is the
/// instance of the i-th hyperedge/atom.
struct Database {
  std::vector<Relation> relations;

  /// Total input size N = sum of relation sizes.
  size_t TotalSize() const {
    size_t n = 0;
    for (const Relation& r : relations) n += r.size();
    return n;
  }
};

}  // namespace fmmsw

#endif  // FMMSW_RELATION_RELATION_H_
