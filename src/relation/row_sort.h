#ifndef FMMSW_RELATION_ROW_SORT_H_
#define FMMSW_RELATION_ROW_SORT_H_

/// \file
/// Wide-key row sorting: the comparator-free sort layer the data plane's
/// hot paths route through. A row's sort columns (in any requested
/// permutation) are packed two per uint64 word via BiasValue — the biased
/// images make unsigned word order equal signed value order, so
/// lexicographic compare of the 1..8 packed words IS lexicographic row
/// compare. The packed records then go through RadixSortRecords
/// (util/radix.h): presorted pre-scan, stable LSD counting passes over
/// only the varying key bytes, pool-parallel above
/// kRadixParallelMinRecords, bit-identical at every thread count.
///
/// Three entry points cover the routing sites:
///   - SortProjectedRows : the generic-WCOJ trie build (pack projected
///     columns -> sort -> one unpack; duplicates kept, stable).
///   - SortedRowOrder    : degree grouping / partition sort orders (a row
///     index rides as a payload word; ties keep input order).
///   - SortDedupeRowBuffer: Relation::SortAndDedupe for every arity
///     (dedup on the packed words, then one gather-unpack).
/// Each call borrows the context arena's u64 buffers when free (local
/// vectors otherwise), engages ctx's pool, and accounts itself in the
/// ExecStats sort_* counters.

#include <cstdint>
#include <vector>

#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

/// uint64 words in the packed key of `ncols` columns (two biased values
/// per word; odd arities zero-pad the last low half).
inline int PackedKeyWords(int ncols) { return (ncols + 1) / 2; }

/// Writes the projection of r onto `cols` (values in that column order),
/// rows sorted lexicographically by it (signed value order), to *out
/// (r.size() * cols.size() values). Stable; duplicates kept.
void SortProjectedRows(const Relation& r, const std::vector<int>& cols,
                       ExecContext& ec, std::vector<Value>* out);

/// Writes the stable permutation of r's row indices sorted
/// lexicographically by `cols` to *order; equal rows keep input order.
/// Empty `cols` yields the identity.
void SortedRowOrder(const Relation& r, const std::vector<int>& cols,
                    ExecContext& ec, std::vector<uint32_t>* order);

/// Sorts a flat row-major buffer of `arity`-column rows lexicographically
/// and removes duplicate rows in place.
void SortDedupeRowBuffer(std::vector<Value>* data, int arity,
                         ExecContext& ec);

}  // namespace fmmsw

#endif  // FMMSW_RELATION_ROW_SORT_H_
