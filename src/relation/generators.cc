#include "relation/generators.h"

#include "relation/ops.h"
#include "util/check.h"

namespace fmmsw {

Relation UniformRelation(VarSet schema, int64_t tuples, int64_t domain,
                         Rng* rng) {
  Relation r(schema);
  std::vector<Value> t(r.arity());
  for (int64_t i = 0; i < tuples; ++i) {
    for (Value& v : t) v = static_cast<Value>(rng->Uniform(0, domain - 1));
    r.Add(t);
  }
  r.SortAndDedupe();
  return r;
}

Relation ZipfRelation(VarSet schema, int64_t tuples, int64_t domain,
                      double alpha, Rng* rng) {
  Relation r(schema);
  std::vector<Value> t(r.arity());
  for (int64_t i = 0; i < tuples; ++i) {
    for (int c = 0; c < r.arity(); ++c) {
      t[c] = (c == 0)
                 ? static_cast<Value>(rng->Zipf(domain, alpha))
                 : static_cast<Value>(rng->Uniform(0, domain - 1));
    }
    r.Add(t);
  }
  r.SortAndDedupe();
  return r;
}

Relation DenseRelation(VarSet schema, int64_t domain, double density,
                       Rng* rng) {
  Relation r(schema);
  const int arity = r.arity();
  FMMSW_CHECK(arity <= 3 && "dense generator supports arity <= 3");
  std::vector<Value> t(arity);
  std::vector<int64_t> idx(arity, 0);
  while (true) {
    if (rng->Flip(density)) {
      for (int c = 0; c < arity; ++c) t[c] = static_cast<Value>(idx[c]);
      r.Add(t);
    }
    int c = 0;
    while (c < arity && ++idx[c] == domain) idx[c++] = 0;
    if (c == arity) break;
    if (arity == 0) break;
  }
  return r;
}

QueryInput MakeWorkload(const Hypergraph& h, const WorkloadOptions& opts) {
  Rng rng(opts.seed);
  // Relations are staged mutable here and only wrapped into shared
  // versions at the end: bindings hold immutable versions, so the
  // witness rows must be planted before the wrap.
  std::vector<Relation> staged;
  for (const VarSet& e : h.edges()) {
    switch (opts.kind) {
      case WorkloadKind::kUniform:
        staged.push_back(
            UniformRelation(e, opts.tuples_per_relation, opts.domain, &rng));
        break;
      case WorkloadKind::kZipf:
        staged.push_back(ZipfRelation(e, opts.tuples_per_relation,
                                      opts.domain, opts.zipf_alpha, &rng));
        break;
      case WorkloadKind::kDense:
        staged.push_back(
            DenseRelation(e, opts.domain, opts.dense_density, &rng));
        break;
    }
  }
  if (opts.plant_witness) {
    // One consistent assignment across all variables.
    std::vector<Value> assign(h.num_vars());
    for (int v = 0; v < h.num_vars(); ++v) {
      assign[v] = static_cast<Value>(rng.Uniform(0, opts.domain - 1));
    }
    for (size_t e = 0; e < h.edges().size(); ++e) {
      std::vector<Value> t;
      for (int v : h.edges()[e].Members()) t.push_back(assign[v]);
      staged[e].Add(t);
      staged[e].SortAndDedupe();
    }
  }
  QueryInput db;
  db.relations.reserve(staged.size());
  for (Relation& r : staged) db.relations.push_back(std::move(r));
  return db;
}

bool BruteForceBoolean(const Hypergraph& h, const QueryInput& db) {
  FMMSW_CHECK(db.relations.size() == h.edges().size());
  Relation acc;  // nullary "true"
  {
    Relation t(VarSet::Empty());
    t.Add({});
    acc = t;
  }
  for (const Relation& r : db.relations) {
    acc = Join(acc, r);
    if (acc.empty()) return false;
  }
  return !acc.empty();
}

}  // namespace fmmsw
