#ifndef FMMSW_RELATION_DEGREE_H_
#define FMMSW_RELATION_DEGREE_H_

/// \file
/// Degree statistics and degree-based partitioning (Definition E.9 and the
/// Decomposition Step of Section 2.5 / Theorem E.10).
///
/// deg_R(Y|X) is the maximum, over assignments x of X, of the number of
/// distinct Y\X-values co-occurring with x. The partition step splits R on
/// a threshold Delta: X-values of degree > Delta form the *heavy* part
/// (kept as the projection onto X — there are at most |R|/Delta of them),
/// the rest keep their full tuples in the *light* part. This is the exact
/// database operation matching the proof-sequence step
/// h(XY) -> h(X) + h(Y|X).

#include <vector>

#include "relation/relation.h"

namespace fmmsw {

class ExecContext;

/// deg_R(Y | X): max over x of |pi_{Y\X}(sigma_{X=x}(R))| (Definition E.9).
/// X and Y need not be disjoint; X may include variables outside R's
/// schema (they are ignored, matching the paper's convention).
int64_t Degree(const Relation& r, VarSet y, VarSet x);

struct DegreePartition {
  /// Projection onto X of the X-values with degree > threshold;
  /// |heavy| <= |R| / threshold.
  Relation heavy;
  /// Full tuples whose X-value has degree <= threshold;
  /// deg_light(Y|X) <= threshold.
  Relation light;
};

/// Splits R on deg(Y|X) at `threshold`. The grouping sort order depends
/// only on (R, X, Y), not on the threshold: within an active
/// ExecContext::SortOrderScope the order is cached and reused across
/// repeated partitions of the same pinned relation (the PANDA executor's
/// proof-sequence steps), and the packed-key sort borrows the context's
/// scratch arena instead of allocating.
DegreePartition PartitionByDegree(const Relation& r, VarSet y, VarSet x,
                                  int64_t threshold,
                                  ExecContext* ctx = nullptr);

/// Uniformization: buckets tuples of R by floor(log2 deg(Y|X)) of their
/// X-value. Bucket i holds X-values with degree in [2^i, 2^(i+1)); at most
/// 1 + log2 |R| buckets (the polylog factor in PANDA's ~O).
std::vector<Relation> DegreeBuckets(const Relation& r, VarSet y, VarSet x,
                                    ExecContext* ctx = nullptr);

}  // namespace fmmsw

#endif  // FMMSW_RELATION_DEGREE_H_
