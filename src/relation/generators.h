#ifndef FMMSW_RELATION_GENERATORS_H_
#define FMMSW_RELATION_GENERATORS_H_

/// \file
/// Synthetic workload generators (see DESIGN.md "Substitutions"): the paper
/// evaluates no concrete datasets, so the benchmark harness drives the
/// engine with instances spanning the degree regimes the theory
/// distinguishes — uniform sparse (light everywhere: combinatorial plans
/// win), dense small-domain (heavy everywhere: MM wins), and Zipf-skewed
/// (mixed: partitioning pays off).

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "relation/relation.h"
#include "util/random.h"

namespace fmmsw {

/// Uniform random relation over `schema` with ~`tuples` rows drawn from
/// [0, domain) per column (deduplicated).
Relation UniformRelation(VarSet schema, int64_t tuples, int64_t domain,
                         Rng* rng);

/// Zipf-skewed relation: first column Zipf(alpha), rest uniform.
Relation ZipfRelation(VarSet schema, int64_t tuples, int64_t domain,
                      double alpha, Rng* rng);

/// Dense relation: all tuples over [0, domain)^arity, then kept with
/// probability `density`. Small domains make every value heavy.
Relation DenseRelation(VarSet schema, int64_t domain, double density,
                       Rng* rng);

enum class WorkloadKind {
  kUniform,   ///< light everywhere
  kZipf,      ///< skewed degrees (heavy/light mix)
  kDense,     ///< heavy everywhere (the MM-friendly regime)
};

struct WorkloadOptions {
  WorkloadKind kind = WorkloadKind::kUniform;
  int64_t tuples_per_relation = 1000;
  /// Domain per variable; for kDense this is the whole story
  /// (tuples ~ domain^arity * density).
  int64_t domain = 1000;
  double zipf_alpha = 1.2;
  double dense_density = 0.5;
  uint64_t seed = 42;
  /// Insert one satisfying assignment so Boolean answers are positive.
  bool plant_witness = false;
};

/// One relation per hyperedge of `h`.
QueryInput MakeWorkload(const Hypergraph& h, const WorkloadOptions& opts);

/// Brute-force evaluation of the Boolean query by joining all relations
/// (exponential; ground truth for tests on small instances).
bool BruteForceBoolean(const Hypergraph& h, const QueryInput& db);

}  // namespace fmmsw

#endif  // FMMSW_RELATION_GENERATORS_H_
