#include "relation/relation.h"

#include <algorithm>

#include "util/radix.h"

namespace fmmsw {

void Relation::SortAndDedupe() {
  const size_t a = vars_.size();
  if (a == 0 || data_.empty()) return;
  if (a == 1) {
    if (data_.size() >= kRadixMinN) {
      // LSD radix on the order-preserving biased image (signed order ==
      // unsigned order of the biased keys).
      std::vector<uint32_t> keys(data_.size());
      for (size_t i = 0; i < keys.size(); ++i) keys[i] = BiasValue(data_[i]);
      RadixSortU32(keys);
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      data_.resize(keys.size());
      for (size_t i = 0; i < keys.size(); ++i) data_[i] = UnbiasValue(keys[i]);
      return;
    }
    std::sort(data_.begin(), data_.end());
    data_.erase(std::unique(data_.begin(), data_.end()), data_.end());
    return;
  }
  if (a == 2) {
    // Pack each row into one order-preserving uint64 and sort those — a
    // single flat sort (LSD radix above kRadixMinN) instead of an index
    // sort with indirect compares.
    const size_t n = data_.size() / 2;
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = (static_cast<uint64_t>(BiasValue(data_[2 * i])) << 32) |
                BiasValue(data_[2 * i + 1]);
    }
    RadixSortU64(keys);
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    data_.resize(keys.size() * 2);
    for (size_t i = 0; i < keys.size(); ++i) {
      data_[2 * i] = UnbiasValue(static_cast<uint32_t>(keys[i] >> 32));
      data_[2 * i + 1] = UnbiasValue(static_cast<uint32_t>(keys[i]));
    }
    return;
  }
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const Value* base = data_.data();
  std::sort(order.begin(), order.end(), [base, a](size_t x, size_t y) {
    return std::lexicographical_compare(base + x * a, base + (x + 1) * a,
                                        base + y * a, base + (y + 1) * a);
  });
  std::vector<Value> out;
  out.reserve(data_.size());
  for (size_t idx = 0; idx < order.size(); ++idx) {
    const Value* row = base + order[idx] * a;
    if (!out.empty() &&
        std::equal(row, row + a, out.end() - static_cast<long>(a))) {
      continue;
    }
    out.insert(out.end(), row, row + a);
  }
  data_ = std::move(out);
}

bool Relation::Contains(const std::vector<Value>& values) const {
  FMMSW_DCHECK(static_cast<int>(values.size()) == arity());
  if (vars_.empty()) return !empty_nullary_;
  const size_t a = vars_.size();
  for (size_t r = 0; r < size(); ++r) {
    if (std::equal(values.begin(), values.end(), data_.begin() + r * a)) {
      return true;
    }
  }
  return false;
}

std::string Relation::ToString(int max_rows) const {
  std::string out = "R" + schema_.ToString() + "[" + std::to_string(size()) +
                    " rows]{";
  const size_t limit = std::min<size_t>(size(), max_rows);
  for (size_t r = 0; r < limit; ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (int c = 0; c < arity(); ++c) {
      if (c > 0) out += ",";
      out += std::to_string(Row(r)[c]);
    }
    out += ")";
  }
  if (size() > limit) out += ", ...";
  out += "}";
  return out;
}

}  // namespace fmmsw
