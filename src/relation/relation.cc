#include "relation/relation.h"

#include <algorithm>

#include "core/exec_context.h"
#include "relation/row_sort.h"

namespace fmmsw {

void Relation::SortAndDedupe(ExecContext* ctx) {
  if (vars_.empty() || data_.empty()) return;
  // One comparator-free path for every arity: rows pack into 1..8
  // order-preserving uint64 words, the packed records radix-sort (pool-
  // parallel on large inputs, stable and bit-identical at any thread
  // count), duplicates collapse on the packed words, and a single
  // gather-unpack rewrites the buffer. See relation/row_sort.h.
  SortDedupeRowBuffer(&data_, static_cast<int>(vars_.size()),
                      ExecContext::Resolve(ctx));
}

namespace {

// SplitMix64 finalizer: the same avalanche used by the width-cache shape
// hash. Order-dependent folding is fine here because versions are stored
// canonically sorted (SortAndDedupe) before they are digested.
uint64_t DigestMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t RelationStatsDigest(const Relation& r) {
  uint64_t h = DigestMix(r.schema().mask());
  h = DigestMix(h ^ static_cast<uint64_t>(r.arity()));
  h = DigestMix(h ^ static_cast<uint64_t>(r.size()));
  const size_t a = static_cast<size_t>(r.arity());
  for (size_t row = 0; row < r.size(); ++row) {
    const Value* v = a == 0 ? nullptr : r.Row(row);
    for (size_t c = 0; c < a; ++c) {
      h = DigestMix(h ^ static_cast<uint64_t>(static_cast<uint32_t>(v[c])));
    }
  }
  return h;
}

bool Relation::Contains(const std::vector<Value>& values) const {
  FMMSW_DCHECK(static_cast<int>(values.size()) == arity());
  if (vars_.empty()) return !empty_nullary_;
  const size_t a = vars_.size();
  for (size_t r = 0; r < size(); ++r) {
    if (std::equal(values.begin(), values.end(), data_.begin() + r * a)) {
      return true;
    }
  }
  return false;
}

std::string Relation::ToString(int max_rows) const {
  std::string out = "R" + schema_.ToString() + "[" + std::to_string(size()) +
                    " rows]{";
  // Clamp negatives before widening: std::min<size_t> would convert a
  // negative max_rows to a huge size_t and print every row.
  const size_t limit =
      std::min(size(), static_cast<size_t>(std::max(max_rows, 0)));
  for (size_t r = 0; r < limit; ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (int c = 0; c < arity(); ++c) {
      if (c > 0) out += ",";
      out += std::to_string(Row(r)[c]);
    }
    out += ")";
  }
  if (size() > limit) out += ", ...";
  out += "}";
  return out;
}

}  // namespace fmmsw
