#include "relation/relation.h"

#include <algorithm>

namespace fmmsw {

void Relation::SortAndDedupe() {
  const size_t a = vars_.size();
  if (a == 0 || data_.empty()) return;
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return std::lexicographical_compare(
        data_.begin() + x * a, data_.begin() + (x + 1) * a,
        data_.begin() + y * a, data_.begin() + (y + 1) * a);
  });
  std::vector<Value> out;
  out.reserve(data_.size());
  for (size_t idx = 0; idx < order.size(); ++idx) {
    const Value* row = &data_[order[idx] * a];
    if (!out.empty() &&
        std::equal(row, row + a, out.end() - static_cast<long>(a))) {
      continue;
    }
    out.insert(out.end(), row, row + a);
  }
  data_ = std::move(out);
}

bool Relation::Contains(const std::vector<Value>& values) const {
  FMMSW_DCHECK(static_cast<int>(values.size()) == arity());
  if (vars_.empty()) return !empty_nullary_;
  const size_t a = vars_.size();
  for (size_t r = 0; r < size(); ++r) {
    if (std::equal(values.begin(), values.end(), data_.begin() + r * a)) {
      return true;
    }
  }
  return false;
}

std::string Relation::ToString(int max_rows) const {
  std::string out = "R" + schema_.ToString() + "[" + std::to_string(size()) +
                    " rows]{";
  const size_t limit = std::min<size_t>(size(), max_rows);
  for (size_t r = 0; r < limit; ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (int c = 0; c < arity(); ++c) {
      if (c > 0) out += ",";
      out += std::to_string(Row(r)[c]);
    }
    out += ")";
  }
  if (size() > limit) out += ", ...";
  out += "}";
  return out;
}

}  // namespace fmmsw
