// E-sort — the wide-key radix layer vs the comparator sorts it replaced,
// across an arity x size x domain sweep. Two workload shapes:
//   - dedupe_*   : Relation::SortAndDedupe (sort + collapse duplicates +
//                  gather-unpack) vs the pre-PR reference (index std::sort
//                  with indirect per-row compares + dedupe gather).
//   - triebuild_*: the generic-WCOJ trie-build shape (sort the projection,
//                  keep duplicates, materialize sorted rows) vs the pre-PR
//                  comparator index sort + per-row copy loop.
// Kernels: "comparator" (the replaced implementation, kept here as the
// measured baseline), "radix" (wide-key layer, 1-thread context), and
// "radix_mt4" (4-worker context; the pool-parallel passes, bit-identical
// to serial — only meaningful wall-clock-wise on multi-core hosts).
// Every radix result is verified against the comparator baseline before
// timing. JSON rows carry sort_ms (the ExecStats::sort_ns delta) so the
// in-layer time is split from the end-to-end number.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/exec_context.h"
#include "relation/relation.h"
#include "relation/row_sort.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace fmmsw {
namespace {

Relation RandomRows(int arity, size_t n, Value domain, Rng* rng) {
  Relation r(VarSet::Full(arity));
  std::vector<Value> row(arity);
  for (size_t i = 0; i < n; ++i) {
    for (int c = 0; c < arity; ++c) {
      // Centered on zero: negative values exercise the bias packing.
      row[c] = static_cast<Value>(rng->Uniform(-(domain / 2), domain / 2));
    }
    r.AddRow(row.data());
  }
  return r;
}

/// The pre-PR SortAndDedupe fallback for arity >= 3: index sort with an
/// indirect lexicographic comparator, then a dedupe gather.
std::vector<Value> ComparatorSortDedupe(const Relation& r) {
  const size_t a = static_cast<size_t>(r.arity());
  std::vector<size_t> order(r.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const Value* base = r.Row(0);
  std::sort(order.begin(), order.end(), [base, a](size_t x, size_t y) {
    return std::lexicographical_compare(base + x * a, base + (x + 1) * a,
                                        base + y * a, base + (y + 1) * a);
  });
  std::vector<Value> out;
  out.reserve(r.size() * a);
  for (size_t idx = 0; idx < order.size(); ++idx) {
    const Value* row = base + order[idx] * a;
    if (!out.empty() &&
        std::equal(row, row + a, out.end() - static_cast<long>(a))) {
      continue;
    }
    out.insert(out.end(), row, row + a);
  }
  return out;
}

/// The pre-PR trie build: comparator index sort over row indices plus the
/// per-row copy loop (duplicates kept).
std::vector<Value> ComparatorTrieBuild(const Relation& r) {
  const size_t a = static_cast<size_t>(r.arity());
  std::vector<uint32_t> order(r.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  const Value* base = r.Row(0);
  std::sort(order.begin(), order.end(), [base, a](uint32_t x, uint32_t y) {
    return std::lexicographical_compare(base + x * a, base + (x + 1) * a,
                                        base + y * a, base + (y + 1) * a);
  });
  std::vector<Value> out(r.size() * a);
  size_t w = 0;
  for (uint32_t row : order) {
    const Value* src = base + row * a;
    for (size_t c = 0; c < a; ++c) out[w++] = src[c];
  }
  return out;
}

double Time(const std::function<void()>& f, int reps) {
  Stopwatch sw;
  for (int i = 0; i < reps; ++i) f();
  return sw.Seconds() / reps;
}

void SweepConfig(int arity, size_t n, Value domain, const char* dtag) {
  Rng rng(17 + arity);
  const Relation input = RandomRows(arity, n, domain, &rng);
  const int reps = n <= 100000 ? 5 : 2;
  ExecContext ec1(1), ec4(4);
  std::vector<int> cols(arity);
  for (int c = 0; c < arity; ++c) cols[c] = c;
  char name[64];

  // ---- dedupe shape -----------------------------------------------------
  const std::vector<Value> dd_ref = ComparatorSortDedupe(input);
  for (ExecContext* ec : {&ec1, &ec4}) {
    Relation check = input;
    check.SortAndDedupe(ec);
    const std::vector<Value> got(check.Row(0),
                                 check.Row(0) + check.size() * arity);
    FMMSW_CHECK(got == dd_ref);
  }
  const double t_cmp = Time([&] { ComparatorSortDedupe(input); }, reps);
  const int64_t s1 = ec1.stats().sort_ns.load();
  const double t_radix = Time(
      [&] {
        Relation r = input;
        r.SortAndDedupe(&ec1);
      },
      reps);
  const double radix_sort_ms =
      static_cast<double>(ec1.stats().sort_ns.load() - s1) * 1e-6 / reps;
  const int64_t s4 = ec4.stats().sort_ns.load();
  const double t_mt = Time(
      [&] {
        Relation r = input;
        r.SortAndDedupe(&ec4);
      },
      reps);
  const double mt_sort_ms =
      static_cast<double>(ec4.stats().sort_ns.load() - s4) * 1e-6 / reps;
  std::snprintf(name, sizeof(name), "dedupe_a%d_%s", arity, dtag);
  bench::Json(name, static_cast<long long>(n), "comparator", t_cmp * 1e3);
  bench::Json(name, static_cast<long long>(n), "radix", t_radix * 1e3, -1.0,
              radix_sort_ms);
  bench::Json(name, static_cast<long long>(n), "radix_mt4", t_mt * 1e3,
              -1.0, mt_sort_ms);
  std::printf("%-22s n=%8zu  comparator=%9.3fms  radix=%9.3fms (%4.1fx)"
              "  mt4=%9.3fms\n",
              name, n, t_cmp * 1e3, t_radix * 1e3, t_cmp / t_radix,
              t_mt * 1e3);

  // ---- trie-build shape -------------------------------------------------
  const std::vector<Value> tb_ref = ComparatorTrieBuild(input);
  {
    std::vector<Value> got;
    SortProjectedRows(input, cols, ec1, &got);
    FMMSW_CHECK(got == tb_ref);
    SortProjectedRows(input, cols, ec4, &got);
    FMMSW_CHECK(got == tb_ref);
  }
  const double b_cmp = Time([&] { ComparatorTrieBuild(input); }, reps);
  const int64_t b1 = ec1.stats().sort_ns.load();
  const double b_radix = Time(
      [&] {
        std::vector<Value> out;
        SortProjectedRows(input, cols, ec1, &out);
      },
      reps);
  const double b_radix_sort_ms =
      static_cast<double>(ec1.stats().sort_ns.load() - b1) * 1e-6 / reps;
  const int64_t b4 = ec4.stats().sort_ns.load();
  const double b_mt = Time(
      [&] {
        std::vector<Value> out;
        SortProjectedRows(input, cols, ec4, &out);
      },
      reps);
  const double b_mt_sort_ms =
      static_cast<double>(ec4.stats().sort_ns.load() - b4) * 1e-6 / reps;
  std::snprintf(name, sizeof(name), "triebuild_a%d_%s", arity, dtag);
  bench::Json(name, static_cast<long long>(n), "comparator", b_cmp * 1e3);
  bench::Json(name, static_cast<long long>(n), "radix", b_radix * 1e3, -1.0,
              b_radix_sort_ms);
  bench::Json(name, static_cast<long long>(n), "radix_mt4", b_mt * 1e3,
              -1.0, b_mt_sort_ms);
  std::printf("%-22s n=%8zu  comparator=%9.3fms  radix=%9.3fms (%4.1fx)"
              "  mt4=%9.3fms\n",
              name, n, b_cmp * 1e3, b_radix * 1e3, b_cmp / b_radix,
              b_mt * 1e3);
}

void Run() {
  bench::Header(
      "Wide-key radix sort layer vs comparator sorts (verified, then timed)");
  for (int arity : {3, 4, 8}) {
    for (long long n : {4000, 16000, 262144, 1048576}) {
      if (!bench::StepEnabled(n)) continue;
      // Small domains are the paper's regime (dup-heavy, most key bytes
      // constant -> few radix passes); the big domain forces every byte.
      SweepConfig(arity, static_cast<size_t>(n), /*domain=*/512, "dsmall");
      SweepConfig(arity, static_cast<size_t>(n), /*domain=*/1 << 20,
                  "dbig");
    }
  }
}

}  // namespace
}  // namespace fmmsw

int main(int argc, char** argv) {
  fmmsw::bench::Init(argc, argv);
  fmmsw::Run();
  return 0;
}
