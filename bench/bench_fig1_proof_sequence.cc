// E3 — Figure 1: the proof sequence for the Shannon inequality (13) and
// the triangle algorithm derived from it. Prints the inequality, verifies
// it by LP over the Shannon cone, replays the proof sequence symbolically,
// then executes the derived algorithm and cross-checks it against the
// combinatorial join on three workload regimes.

#include <cstdio>

#include "bench_util.h"
#include "engine/triangle.h"
#include "panda/executor.h"
#include "panda/inequality.h"
#include "panda/proof.h"
#include "relation/generators.h"

namespace fmmsw {
namespace {

const char* StepName(ProofStepKind k) {
  switch (k) {
    case ProofStepKind::kDecomposition:
      return "decomposition";
    case ProofStepKind::kComposition:
      return "composition  ";
    case ProofStepKind::kMonotonicity:
      return "monotonicity ";
    case ProofStepKind::kSubmodularity:
      return "submodularity";
  }
  return "?";
}

void Run() {
  const Rational omega(2371552, 1000000);
  bench::Header("Figure 1: proof sequence for inequality (13)");
  auto ineq = TriangleInequality(omega);
  std::printf("inequality (13) at w = %s:\n", omega.ToString().c_str());
  std::printf("  w h(XYZ) + [h(X) + h(Y) + (w-2) h(Z)]\n");
  std::printf("    <= 2 h(XY) + (w-1) h(YZ) + (w-1) h(XZ)\n");
  bench::Row("w-dominance (Def E.1/E.3)", "holds",
             CheckDominance(ineq, omega) ? "holds" : "VIOLATED");
  // Run the Shannon-cone LP on a private context so the planner counters
  // (lps_solved / lp_warm_starts / plan time) are this check's alone.
  ExecContext ec;
  Stopwatch plan_sw;
  const bool shannon_ok = VerifyShannon(ineq, VarSet::Full(3), &ec);
  const double plan_ms = plan_sw.Seconds() * 1000.0;
  bench::Row("Shannon validity (LP over cone)", "valid",
             shannon_ok ? "valid" : "INVALID");
  char planner[128];
  std::snprintf(planner, sizeof(planner),
                "lps_solved=%lld lp_warm_starts=%lld plan_ms=%.2f",
                static_cast<long long>(ec.stats().lp_solves.load()),
                static_cast<long long>(ec.stats().lp_warm_starts.load()),
                plan_ms);
  bench::Row("planner counters (LP verify)", "-", planner);

  auto seq = TriangleProofSequence(omega);
  std::printf("\nproof sequence (%zu primitive steps; Figure 1 rows are\n"
              "submodularity+composition pairs):\n",
              seq.steps.size());
  const std::vector<std::string> names = {"X", "Y", "Z"};
  for (const ProofStep& s : seq.steps) {
    std::printf("  %s  x=%-6s y=%-6s z=%-6s c=%-6s weight=%s\n",
                StepName(s.kind), s.x.ToString(&names).c_str(),
                s.y.ToString(&names).c_str(), s.z.ToString(&names).c_str(),
                s.c.ToString(&names).c_str(), s.weight.ToString().c_str());
  }
  bench::Row("sequence replays RHS -> LHS", "verified",
             VerifyProofSequence(ineq, seq, omega) ? "verified" : "FAILED");

  std::printf("\nderived algorithm vs combinatorial join:\n");
  for (WorkloadKind kind : {WorkloadKind::kUniform, WorkloadKind::kZipf,
                            WorkloadKind::kDense}) {
    const char* kname = kind == WorkloadKind::kUniform ? "uniform"
                        : kind == WorkloadKind::kZipf  ? "zipf"
                                                       : "dense";
    int agree = 0, total = 0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      WorkloadOptions opts;
      opts.kind = kind;
      opts.tuples_per_relation = 400;
      opts.domain = kind == WorkloadKind::kDense ? 25 : 60;
      opts.seed = seed;
      opts.plant_witness = seed % 2 == 0;
      QueryInput db = MakeWorkload(Hypergraph::Triangle(), opts);
      PandaStats stats;
      const bool derived =
          PandaTriangleBoolean(db, 2.371552, MmKernel::kBoolean, &stats);
      const bool baseline = TriangleCombinatorial(db);
      ++total;
      if (derived == baseline) ++agree;
    }
    bench::Row(std::string("agreement (") + kname + ")",
               "10/10", std::to_string(agree) + "/" + std::to_string(total));
  }
}

}  // namespace
}  // namespace fmmsw

int main() {
  fmmsw::Run();
  return 0;
}
