// E9 — Example D.1: computing w-subw of the 4-clique by the mechanical
// Section-6 algorithm. The clustered form has exactly 10 MM terms
// (Eq. 28), hence full enumeration solves 3^10 = 59049 LPs; the
// branch-and-bound solver reaches the same value (w+1)/2 with orders of
// magnitude fewer LPs.

#include <cstdio>

#include "bench_util.h"
#include "hypergraph/hypergraph.h"
#include "util/stopwatch.h"
#include "width/closed_forms.h"
#include "width/omega_subw.h"

int main() {
  using namespace fmmsw;
  const Rational omega(2371552, 1000000);
  bench::Header("Example D.1: 4-clique w-subw via the mechanical algorithm");

  auto terms = ClusteredMmTerms(Hypergraph::Clique(4));
  bench::Row("MM terms in Eq. (28)", "10", std::to_string(terms.size()));
  const std::vector<std::string> names = {"X", "Y", "Z", "W"};
  for (const MmExpr& t : terms) {
    std::printf("    %s\n", t.ToString(&names).c_str());
  }

  {
    Stopwatch sw;
    OmegaSubwOptions full;
    full.full_enumeration = true;
    auto r = OmegaSubwClustered(Hypergraph::Clique(4), omega, full);
    bench::Row("full enumeration LPs", "3^10 = 59049",
               std::to_string(r.lps_solved),
               "(" + bench::Fmt(sw.Seconds()) + " s)");
    bench::Row("full enumeration value",
               closed_forms::OmegaSubwClique4(omega).ToString(),
               r.value.ToString(),
               r.value == closed_forms::OmegaSubwClique4(omega)
                   ? "MATCH (w+1)/2"
                   : "MISMATCH");
  }
  {
    Stopwatch sw;
    auto r = OmegaSubwClustered(Hypergraph::Clique(4), omega);
    bench::Row("branch-and-bound LPs", "<< 59049",
               std::to_string(r.lps_solved),
               "(" + bench::Fmt(sw.Seconds()) + " s)");
    bench::Row("branch-and-bound value",
               closed_forms::OmegaSubwClique4(omega).ToString(),
               r.value.ToString(),
               r.value == closed_forms::OmegaSubwClique4(omega)
                   ? "MATCH"
                   : "MISMATCH");
  }
  return 0;
}
